package mmptcp_test

import (
	"fmt"

	mmptcp "repro"
)

// ExampleRun runs a miniature version of the paper's headline workload
// and reports how many short flows completed.
func ExampleRun() {
	cfg := mmptcp.SmallConfig(mmptcp.ProtoMMPTCP, 25)
	cfg.Seed = 1
	res, err := mmptcp.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed %d/%d short flows\n", res.ShortSummary.Count, res.Spawned)
	fmt.Printf("long flows: %d\n", len(res.LongFlows))
	// Output:
	// completed 25/25 short flows
	// long flows: 21
}

// ExampleDial drives a single MMPTCP connection over a FatTree.
func ExampleDial() {
	eng := mmptcp.NewEngine()
	cfg := mmptcp.Config{Protocol: mmptcp.ProtoMMPTCP, K: 4}
	net, err := mmptcp.NewNetwork(eng, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	conn, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
		FlowID: 1, Src: 0, Dst: 63, Size: 70_000, RNG: mmptcp.NewRNG(42),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	conn.Start()
	eng.Run()
	fmt.Printf("delivered %d bytes, complete=%t\n",
		conn.Receiver().Delivered(), conn.Receiver().Complete())
	mc, _ := mmptcp.MMPTCPConn(conn)
	fmt.Printf("stayed in packet scatter: %t\n", !mc.Switched())
	// Output:
	// delivered 70000 bytes, complete=true
	// stayed in packet scatter: true
}

// ExamplePathCount shows the topology oracle MMPTCP uses for its
// packet-scatter duplicate-ACK threshold.
func ExamplePathCount() {
	eng := mmptcp.NewEngine()
	net, _ := mmptcp.NewNetwork(eng, mmptcp.Config{Protocol: mmptcp.ProtoTCP, K: 4})
	fmt.Println(mmptcp.PathCount(net, 0, 1))  // same edge switch
	fmt.Println(mmptcp.PathCount(net, 0, 63)) // different pod
	// Output:
	// 1
	// 4
}
