package mmptcp

// EngineBenchConfig is BenchmarkEngineThroughput's workload — the
// headline MMPTCP experiment on the bench-scale FatTree — shared with
// cmd/bench so the tracked "engine-throughput" row in BENCH.json always
// measures the same scenario as the in-repo benchmark.
func EngineBenchConfig(quick bool) Config {
	flows := 100
	if quick {
		flows = 50
	}
	cfg := SmallConfig(ProtoMMPTCP, flows)
	cfg.Seed = 1
	return cfg
}

// ChurnBenchConfig is the tracked fault-heavy benchmark scenario shared
// by BenchmarkXChurnRecompute and cmd/bench, so BENCH.json and the in-
// repo benchmark always measure the same workload: the ROADMAP's
// paper-scale 512-host K=8 FatTree (a 64-host K=4 in quick mode) under
// a high-churn MTBF/MTTR model with the routing mode under test. Churn
// concentrates at the access layer, as in production failure studies
// (server and ToR ports flap far more often than fabric cables), with a
// slower trickle of aggregation cable cuts keeping the fabric tables
// moving too. Flows are few — the scenario isolates the control plane's
// reconvergence work, which before incremental recompute dominated
// fault-heavy runs at this scale.
func ChurnBenchConfig(mode RoutingMode, quick bool) Config {
	var cfg Config
	if quick {
		cfg = SmallConfig(ProtoTCP, 20)
		cfg.MaxSimTime = 2 * Second
	} else {
		cfg = PaperConfig(ProtoTCP, 30)
		cfg.MaxSimTime = 3 * Second
	}
	cfg.Seed = 1
	cfg.Faults = FaultsConfig{
		Model: FaultModel{
			Layers: []FaultLayerModel{
				{Layer: LayerHost, MTBF: 1 * Second, MTTR: 50 * Millisecond},
				{Layer: LayerAgg, MTBF: 8 * Second, MTTR: 100 * Millisecond},
			},
			Horizon: cfg.MaxSimTime,
		},
		ReconvergeDelay: 10 * Millisecond,
	}
	cfg.Routing.Mode = mode
	return cfg
}

// SweepScaleBenchConfig is the tracked sweep-scale scenario shared with
// cmd/bench's sweep-scale rows: the bench-scale MMPTCP experiment run as
// a replicate sweep, where every replicate shares one Shape and only the
// seed varies — the case run-instance pooling exists for. The rows
// measure per-replicate setup cost (fresh build vs pooled reset — the
// setup_allocs_ratio CI guards), per-flow memory in exact vs streaming
// metrics mode, and the end-to-end pooled vs unpooled sweep.
func SweepScaleBenchConfig(quick bool) Config {
	flows := 200
	if quick {
		flows = 50
	}
	cfg := SmallConfig(ProtoMMPTCP, flows)
	cfg.Seed = 1
	return cfg
}

// ShardThroughputBenchConfig is the tracked parallel-engine comparison
// workload: exactly the engine-throughput scenario with the fabric
// partitioned across the given shard count (0 = the sequential oracle),
// so the shard-throughput/{seq,2,4} rows in BENCH.json measure the same
// experiment and their events/sec ratio is a like-for-like speedup.
func ShardThroughputBenchConfig(shards int, quick bool) Config {
	cfg := EngineBenchConfig(quick)
	cfg.Shards = shards
	return cfg
}

// ShardQuietBenchConfig is the tracked quiet-boundary variant of the
// shard-throughput comparison: the same bench-scale FatTree, but the
// workload is a sparse trickle of short flows with no long-flow
// background, so shard boundaries sit idle between bursts. Under the
// static window the coordinator still barriers once per lookahead
// bucket whenever any shard holds a pending event, flushing empty
// outboxes; EOT promises let adaptive mode stride across the gaps in a
// handful of wide windows. This is the scenario the barrier_ratio CI
// guard holds its >= 2x floor on — the dense shard-throughput workload
// keeps every heap head within one propagation delay of the clock, so
// no conservative promise can widen anything there (the adaptive rows
// on that workload pin "no slower", not "fewer barriers").
func ShardQuietBenchConfig(shards int, quick bool) Config {
	flows := 400
	if quick {
		flows = 120
	}
	cfg := SmallConfig(ProtoMMPTCP, flows)
	cfg.Seed = 1
	cfg.Shards = shards
	cfg.LongFraction = -1 // no long-flow background: boundaries go quiet between shorts
	cfg.LocalFraction = 1 // rack-local permutation: flows never cross the agg layer
	cfg.ArrivalRate = 4   // sparse arrivals: the fabric idles between bursts
	return cfg
}

// ShardScaleBenchConfig is the ROADMAP's K=16 target scenario: a
// 16-pod, 320-switch FatTree (3,456 hosts at full scale, 256 in quick
// mode) under a steady trickle of aggregation-cable churn with global
// repair — the fabric size the parallel engine exists for. cmd/bench
// runs it sequentially and with 4 shards and records the measured
// speedup; the CI guard holds the 2x floor only on runners with >= 4
// cores, since on fewer cores the windowed barrier can only add
// overhead.
func ShardScaleBenchConfig(shards int, quick bool) Config {
	cfg := Config{
		Topology:    TopoFatTree,
		K:           16,
		Protocol:    ProtoMMPTCP,
		ArrivalRate: 100,
		Seed:        1,
		Shards:      shards,
	}
	if quick {
		cfg.HostsPerEdge = 2 // 256 hosts; the switch fabric keeps its full 320-switch K=16 shape
		cfg.ShortFlows = 40
		cfg.MaxSimTime = 1 * Second
	} else {
		cfg.HostsPerEdge = 27 // 3,456 hosts — the ROADMAP's K=16 fabric
		cfg.ShortFlows = 200
		cfg.MaxSimTime = 2 * Second
	}
	// A K=16 tree has 1,024 aggregation cables regardless of host
	// count; a 60 s per-cable MTBF works out to ~17 cuts per simulated
	// second — enough reconvergence traffic to keep every pod's tables
	// moving without the control plane drowning the data plane.
	cfg.Faults = FaultsConfig{
		Model: FaultModel{
			Layers:  []FaultLayerModel{{Layer: LayerAgg, MTBF: 60 * Second, MTTR: 100 * Millisecond}},
			Horizon: cfg.MaxSimTime,
		},
		ReconvergeDelay: 10 * Millisecond,
	}
	cfg.Routing.Mode = RoutingGlobal
	return cfg
}

// StaggeredChurnBenchConfig is the tracked staggered-convergence
// scenario: ChurnBenchConfig's churn under global routing with
// per-switch FIB flips spread 2ms per hop from each failure, so the
// scheduling overhead (flip events, staged tables, window accounting)
// is measured against the atomic churn baseline on the same workload.
func StaggeredChurnBenchConfig(quick bool) Config {
	cfg := ChurnBenchConfig(RoutingGlobal, quick)
	cfg.Routing.Convergence = ConvergeStaggered
	cfg.Routing.PerHopDelay = 2 * Millisecond
	return cfg
}

// RedialChurnBenchConfig is the tracked transport-recovery scenario
// shared with cmd/bench's recovery rows: a multipath workload under
// local repair with a mid-run agg-core outage, so subflows pinned
// through the unreachable cores sit in RTO backoff until re-dialing
// replaces them — the work the recovery machinery exists for. With
// recovery false the identical scenario runs with the machinery
// disarmed; that row is the no-regression baseline the CI guard holds
// against the tracked BENCH.json, since arming the knobs must cost
// nothing until a re-dial actually fires.
func RedialChurnBenchConfig(recovery, quick bool) Config {
	var cfg Config
	if quick {
		cfg = SmallConfig(ProtoMPTCP, 40)
	} else {
		cfg = PaperConfig(ProtoMPTCP, 80)
	}
	cfg.MaxSimTime = 10 * Second
	cfg.Seed = 1
	cfg.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 2500*Millisecond),
		ReconvergeDelay: 25 * Millisecond,
	}
	if recovery {
		cfg.Transport = TransportConfig{DeadRTOs: 2, RedialBudget: 8}
	}
	return cfg
}
