package mmptcp

// EngineBenchConfig is BenchmarkEngineThroughput's workload — the
// headline MMPTCP experiment on the bench-scale FatTree — shared with
// cmd/bench so the tracked "engine-throughput" row in BENCH.json always
// measures the same scenario as the in-repo benchmark.
func EngineBenchConfig(quick bool) Config {
	flows := 100
	if quick {
		flows = 50
	}
	cfg := SmallConfig(ProtoMMPTCP, flows)
	cfg.Seed = 1
	return cfg
}

// ChurnBenchConfig is the tracked fault-heavy benchmark scenario shared
// by BenchmarkXChurnRecompute and cmd/bench, so BENCH.json and the in-
// repo benchmark always measure the same workload: the ROADMAP's
// paper-scale 512-host K=8 FatTree (a 64-host K=4 in quick mode) under
// a high-churn MTBF/MTTR model with the routing mode under test. Churn
// concentrates at the access layer, as in production failure studies
// (server and ToR ports flap far more often than fabric cables), with a
// slower trickle of aggregation cable cuts keeping the fabric tables
// moving too. Flows are few — the scenario isolates the control plane's
// reconvergence work, which before incremental recompute dominated
// fault-heavy runs at this scale.
func ChurnBenchConfig(mode RoutingMode, quick bool) Config {
	var cfg Config
	if quick {
		cfg = SmallConfig(ProtoTCP, 20)
		cfg.MaxSimTime = 2 * Second
	} else {
		cfg = PaperConfig(ProtoTCP, 30)
		cfg.MaxSimTime = 3 * Second
	}
	cfg.Seed = 1
	cfg.Faults = FaultsConfig{
		Model: FaultModel{
			Layers: []FaultLayerModel{
				{Layer: LayerHost, MTBF: 1 * Second, MTTR: 50 * Millisecond},
				{Layer: LayerAgg, MTBF: 8 * Second, MTTR: 100 * Millisecond},
			},
			Horizon: cfg.MaxSimTime,
		},
		ReconvergeDelay: 10 * Millisecond,
	}
	cfg.Routing.Mode = mode
	return cfg
}

// SweepScaleBenchConfig is the tracked sweep-scale scenario shared with
// cmd/bench's sweep-scale rows: the bench-scale MMPTCP experiment run as
// a replicate sweep, where every replicate shares one Shape and only the
// seed varies — the case run-instance pooling exists for. The rows
// measure per-replicate setup cost (fresh build vs pooled reset — the
// setup_allocs_ratio CI guards), per-flow memory in exact vs streaming
// metrics mode, and the end-to-end pooled vs unpooled sweep.
func SweepScaleBenchConfig(quick bool) Config {
	flows := 200
	if quick {
		flows = 50
	}
	cfg := SmallConfig(ProtoMMPTCP, flows)
	cfg.Seed = 1
	return cfg
}

// StaggeredChurnBenchConfig is the tracked staggered-convergence
// scenario: ChurnBenchConfig's churn under global routing with
// per-switch FIB flips spread 2ms per hop from each failure, so the
// scheduling overhead (flip events, staged tables, window accounting)
// is measured against the atomic churn baseline on the same workload.
func StaggeredChurnBenchConfig(quick bool) Config {
	cfg := ChurnBenchConfig(RoutingGlobal, quick)
	cfg.Routing.Convergence = ConvergeStaggered
	cfg.Routing.PerHopDelay = 2 * Millisecond
	return cfg
}
