package mmptcp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/routing"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// faultsRNGStream is the dedicated sim.RNG stream id for fault-plan
// randomness (model sampling, loss draws), distinct from the workload's
// root stream 0 so fault configuration never perturbs traffic.
const faultsRNGStream = 0xfa017

// Results is everything one experiment run measured.
type Results struct {
	Config Config

	// ShortFlows holds one record per short flow in spawn order — the
	// data behind the paper's Figures 1(b)/1(c) scatter plots. It is nil
	// when Config.Metrics.Mode is MetricsStreaming: streaming runs keep
	// no per-flow state, only the aggregates below.
	ShortFlows []metrics.FlowRecord
	// ShortSummary aggregates them (Figure 1(a)'s mean/stddev and the
	// §3 "116 ms (σ=101) vs 126 ms (σ=425)" comparison). In streaming
	// mode the counts, mean, stddev, min and max are still exact; the
	// percentiles carry a relative error of at most
	// 2^-Config.Metrics.HistPrecision.
	ShortSummary metrics.Summary
	// DeadlineMissRate is the fraction of short flows that missed
	// Config.Deadline — the paper's §1 framing of short-flow damage
	// ("even a single RTO may result in flow deadline violation").
	DeadlineMissRate float64

	// Snapshots is the rolling time series recorded when
	// Config.Metrics.SnapshotInterval is positive: one cumulative
	// Snapshot per interval of virtual time (percentile trajectories,
	// drop and routing counters). Nil when snapshots are disabled.
	Snapshots []metrics.Snapshot

	// LongFlows holds one record per background flow, with Delivered
	// bytes for throughput.
	LongFlows []metrics.FlowRecord
	// LongThroughputMbps is the mean per-flow goodput of the long
	// flows over their lifetime (§3: "both protocols achieve the same
	// average throughput for long flows").
	LongThroughputMbps float64

	// Layers reports loss rate, utilisation, and failure accounting
	// (blackholed packets/bytes, time-in-failure) per topology layer
	// (§3: "average loss rate at the core and aggregation layers").
	Layers map[netem.Layer]metrics.LayerStats

	// Blackholed is the network-wide count of packets swallowed by down
	// links (per-layer detail in Layers); zero on a healthy run.
	Blackholed int64
	// NoRouteDrops counts packets discarded at switches because every
	// candidate output link had been excluded by failure reconvergence.
	// Under global routing, upstream rerouting should shrink this
	// relative to the local baseline.
	NoRouteDrops int64
	// HopDrops counts packets discarded by the switches' hop-count
	// routing-loop backstop outside any convergence transient —
	// steady-state hop-limit noise. LoopDrops is the first-class count
	// of backstop drops that fell inside an open staggered-convergence
	// window, where switches disagreeing about the tables is what breeds
	// forwarding micro-loops; identically zero under atomic convergence.
	HopDrops  int64
	LoopDrops int64
	// FaultEvents is the number of scheduled network mutations in the
	// run's resolved fault plan (explicit events plus model samples).
	FaultEvents int
	// SwitchCrashes counts switch crash events applied (a switch crashed
	// twice counts twice), and CrashDrops the packets that reached a
	// crashed switch's forwarding plane.
	SwitchCrashes int64
	CrashDrops    int64

	// Routing reports the repair mode and, in global mode, the control
	// plane's recompute work.
	Routing metrics.RoutingStats

	// PhaseSwitches counts MMPTCP connections that entered phase two.
	// PhaseDeferrals counts the times long-flow connections postponed
	// that switch waiting for routing convergence to quiesce
	// (Config.Transport.DeferPhaseSwitch).
	PhaseSwitches  int
	PhaseDeferrals int

	// Redials counts subflow re-dial attempts across every connection
	// (Config.Transport.DeadRTOs > 0), and RedialRecovered how many of
	// the replacement subflows went on to acknowledge data — i.e. found
	// a live path. Both zero with recovery off.
	Redials         int
	RedialRecovered int

	// Shard reports the parallel engine's synchronization work: barrier
	// and window counts, elided wakeups, mean window width. On a
	// sequential run only Shards (=1) is set. Like Events and the link
	// totals, the counters include the documented post-Stop window
	// overrun, so they vary across lookahead modes even when the
	// flow-level results match.
	Shard metrics.ShardStats

	Elapsed sim.Time // virtual time when the run ended
	Events  uint64   // discrete events processed
	Spawned int      // short flows actually spawned
}

// RunInstance is one reusable engine+network pair — the expensive half
// of a run's setup. Everything else a run needs (transports, workload,
// faults, the routing control plane) is built per run on top of it, so
// an instance can be recycled across runs that share a Config Shape:
// build once with NewRunInstance, then alternate Reset and Run. RunSweep
// does this automatically under SweepOptions.Pool; the direct API exists
// for benchmarks and custom drivers.
//
// An instance is single-threaded: one run at a time, no concurrent use.
type RunInstance struct {
	shape Shape
	eng   *sim.Engine
	net   *topology.Network
	// fab is the sharded fabric bound over net: per-shard engines and the
	// lookahead coordinator for Config.Shards > 1, a direct pass-through
	// to eng otherwise. Its partition wiring survives Reset.
	fab *shard.Fabric
	// rec is the structured event recorder armed for the next run (nil
	// when the config's Trace section is off). It is re-armed — reused
	// when the trace options match, rebuilt otherwise — by Reset, so a
	// pooled flight recorder costs its storage once per instance.
	rec *trace.Recorder
}

// NewRunInstance builds the engine and topology for cfg. The returned
// instance is ready to Run cfg (or any config sharing its Shape and
// Seed); reuse under a different config requires Reset first.
func NewRunInstance(cfg Config) (*RunInstance, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	net, err := cfg.buildNetwork(eng)
	if err != nil {
		return nil, err
	}
	fab, err := shard.BuildWeighted(eng, net, cfg.Shards, cfg.ShardWeights)
	if err != nil {
		return nil, err
	}
	ri := &RunInstance{shape: cfg.shape(), eng: eng, net: net, fab: fab}
	ri.armRecorder(&cfg)
	return ri, nil
}

// Shape returns the structural key the instance serves.
func (ri *RunInstance) Shape() Shape { return ri.shape }

// SwitchLoads returns every switch's cumulative forwarded-packet count
// from the instance's last run, parallel to the built topology's
// switches — the measured-load input for Config.ShardWeights. Profile a
// representative run on an unweighted instance, feed the loads back as
// weights, and the re-built partition balances measured events instead
// of switch count.
func (ri *RunInstance) SwitchLoads() []float64 { return ri.net.SwitchLoads() }

// Recorder returns the structured event recorder armed for the
// instance's current run, or nil when tracing is off. After a run it
// holds the run's events; after Reset it is empty (or replaced, if the
// new config's trace options differ). Flight-recorder drivers read it
// between Run and the next Reset.
func (ri *RunInstance) Recorder() *trace.Recorder { return ri.rec }

// armRecorder points ri.rec at a recorder matching cfg's trace section:
// nil when tracing is off, the existing recorder reset in place when
// its options already match, a fresh one otherwise. cfg must have
// defaults applied. With tracing off this is a single nil store — the
// pooled Reset path stays allocation-free.
func (ri *RunInstance) armRecorder(cfg *Config) {
	if cfg.Trace.Mode == TraceOff {
		ri.rec = nil
		return
	}
	opts := cfg.recorderOptions()
	if ri.rec.Matches(opts) {
		ri.rec.Reset()
		return
	}
	ri.rec = trace.NewRecorder(opts)
}

// Reset restores the instance to the state a fresh NewRunInstance(cfg)
// would have: engine clock at zero with no pending events, every switch,
// link and host pristine, per-switch ECMP hash seeds re-derived from
// cfg.Seed. A config whose Shape differs from the instance's is rejected
// — a mismatched reuse would silently run on the wrong network. The
// steady-state Reset path allocates nothing.
func (ri *RunInstance) Reset(cfg Config) error {
	if err := cfg.applyDefaults(); err != nil {
		return err
	}
	if s := cfg.shape(); s != ri.shape {
		return fmt.Errorf("mmptcp: pooled instance of shape %+v cannot run config of shape %+v", ri.shape, s)
	}
	ri.eng.Reset()
	ri.net.Reset(cfg.Seed)
	ri.fab.Reset()
	ri.armRecorder(&cfg)
	return nil
}

// Run executes one experiment on the instance. The instance must be
// freshly built for cfg or Reset with it; Results are byte-identical to
// Run(cfg) on a throwaway instance (the pooled-determinism guarantee,
// locked in by TestPooledSweepByteIdentical).
func (ri *RunInstance) Run(ctx context.Context, cfg Config) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.validateWorkload(); err != nil {
		return nil, err
	}
	return runWith(ctx, cfg, ri)
}

// Run executes one experiment and returns its measurements.
func Run(cfg Config) (*Results, error) {
	return RunContext(context.Background(), cfg)
}

// ctxPollEvents is how many simulation events RunContext processes
// between context polls — frequent enough to abort a stuck run in
// milliseconds of wall time, rare enough to be free on the hot path.
const ctxPollEvents = 8192

// RunContext is Run with cancellation: the simulation polls ctx every few
// thousand events and aborts with ctx's error once it is cancelled. This
// is what lets RunSweep tear down a whole fleet of in-flight experiments
// the moment one of them fails.
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	inst, err := NewRunInstance(cfg)
	if err != nil {
		return nil, err
	}
	return inst.Run(ctx, cfg)
}

// RunTraced is Run plus the recorder: it executes one experiment with
// cfg's Trace section armed and returns the recorder holding the run's
// events alongside the Results. The recorder is nil when cfg.Trace.Mode
// is off — callers wanting a trace must ask for one. Results are
// byte-identical to an untraced Run of the same config (tracing
// observes, never perturbs); export the events with WriteJSONL or
// WriteChromeTrace.
func RunTraced(cfg Config) (*Results, *trace.Recorder, error) {
	inst, err := NewRunInstance(cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := inst.Run(context.Background(), cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, inst.rec, nil
}

// runPooled is the sweep worker's pooled path: draw an instance for the
// config's shape — resetting a recycled one — run, and park it again.
// Instances are only returned to the pool after a clean run; an aborted
// run's instance is dropped rather than parked dirty.
func runPooled(ctx context.Context, cfg Config, pool *sweep.InstancePool[Shape, *RunInstance]) (*Results, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.validateWorkload(); err != nil {
		return nil, err
	}
	shape := cfg.shape()
	inst, ok := pool.Get(shape)
	if ok {
		if err := inst.Reset(cfg); err != nil {
			return nil, err
		}
	} else {
		var err error
		inst, err = NewRunInstance(cfg)
		if err != nil {
			return nil, err
		}
	}
	res, err := inst.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pool.Put(shape, inst)
	return res, nil
}

// runWith is the body shared by every entry point. cfg has defaults
// applied and its workload validated; inst is fresh or Reset for cfg.
func runWith(ctx context.Context, cfg Config, inst *RunInstance) (*Results, error) {
	eng, net, fab := inst.eng, inst.net, inst.fab
	if ctx.Done() != nil {
		eng.SetInterrupt(ctxPollEvents, func() bool { return ctx.Err() != nil })
	}
	rootRNG := sim.NewRNG(cfg.Seed)

	// Arm the data plane's trace points. rec is nil on untraced runs —
	// the stores below then just re-assert the nil the resets left
	// behind, and every trace point stays a not-taken branch. On a
	// partitioned fabric each shard records into its own recorder
	// (merged back into rec after the run); flows record into their
	// source shard's.
	rec := inst.rec
	var recOpts trace.Options
	if rec != nil {
		recOpts = cfg.recorderOptions()
	}
	fab.InstallTracing(rec, recOpts)

	// Network dynamics. The fault plan draws from its own RNG stream —
	// not rootRNG — so a faulted run and its healthy twin share an
	// identical workload, and the comparison isolates the failures.
	var faultPlan *faults.Injector
	var controlPlane *routing.ControlPlane
	var err error
	if cfg.Faults.Active() {
		faultPlan, err = faults.Install(eng, faults.Target{
			Links:        net.Links,
			Switches:     net.Switches,
			SwitchLayers: net.SwitchLayers,
		}, cfg.Faults, sim.NewRNGStream(cfg.Seed, faultsRNGStream), cfg.MaxSimTime)
		if err != nil {
			return nil, err
		}
		faultPlan.SetRecorder(rec)
		// Failure-aware path counting: while any link is excluded from
		// routing, MMPTCP's duplicate-ACK threshold derives from the
		// live ECMP DAG instead of the static topology formula.
		net.SetDegraded(faultPlan.Degraded)
		if cfg.Routing.Mode == RoutingGlobal {
			// Global repair: wrap every router with a per-switch FIB and
			// rebuild the override tables (coalesced) on each
			// reconvergence-delayed link state change. Staggered
			// convergence and flap damping are the control plane's own
			// knobs.
			controlPlane, err = routing.Install(eng, net, cfg.routingConfig())
			if err != nil {
				return nil, err
			}
			controlPlane.SetRecorder(rec)
			faultPlan.OnRouteChange = controlPlane.Invalidate
		}
	}
	// The convergence signal MMPTCP's deferred phase switch consults.
	// Assigned only when a control plane exists (validation already
	// requires Routing.Mode global for DeferPhaseSwitch, but the control
	// plane is only installed when faults are active — a fault-free
	// deferring run simply observes a forever-closed window).
	var observer core.ConvergenceObserver
	if controlPlane != nil {
		observer = controlPlane
	}

	// Streaming accumulation: the streaming metrics mode's only
	// aggregate, and the snapshot time series' percentile source in
	// either mode (exact mode's final summary still comes from the full
	// record slice, so enabling snapshots never perturbs it).
	streaming := cfg.Metrics.Mode == MetricsStreaming
	var stream *metrics.StreamingSummary
	if streaming || cfg.Metrics.SnapshotInterval > 0 {
		stream, err = metrics.NewStreamingSummary(cfg.Metrics.HistPrecision, cfg.Deadline)
		if err != nil {
			return nil, err
		}
	}

	longFrac := cfg.LongFraction
	if longFrac < 0 {
		longFrac = 0
	}
	assign := workload.BuildPermutation(rootRNG.Split(), len(net.Hosts), longFrac)
	if cfg.HotspotFraction > 0 {
		assign.ApplyHotspot(workload.HotspotConfig{
			Fraction: cfg.HotspotFraction,
			Host:     cfg.HotspotHost,
		})
	}
	if cfg.LocalFraction > 0 {
		assign.ApplyLocality(cfg.LocalFraction, cfg.HostsPerEdge)
	}

	res := &Results{Config: cfg, Layers: make(map[netem.Layer]metrics.LayerStats)}

	// foldRedials accumulates a connection's re-dial and phase-deferral
	// accounting just before the connection is closed (afterwards the
	// subflow senders are torn down). With recovery off every call
	// returns zeros.
	foldRedials := func(c Conn) {
		r, rc := c.RedialStats()
		res.Redials += r
		res.RedialRecovered += rc
		if mc, ok := MMPTCPConn(c); ok {
			res.PhaseDeferrals += mc.Deferrals()
		}
	}

	// Long background flows: start at t=0, run for the whole
	// simulation.
	type longFlow struct {
		rec  metrics.FlowRecord
		conn Conn
	}
	var longs []*longFlow
	nextFlowID := uint64(1)
	for _, src := range assign.LongSenders {
		lf := &longFlow{rec: metrics.FlowRecord{
			ID:    nextFlowID,
			Src:   netem.NodeID(src),
			Dst:   netem.NodeID(assign.Partner[src]),
			Class: metrics.LongFlow,
			Proto: string(cfg.Protocol),
			Size:  -1,
			Start: 0,
		}}
		flowRec := fab.FlowRecorder(rec, src)
		conn, err := Dial(eng, net, cfg, DialConfig{
			FlowID:   nextFlowID,
			Src:      src,
			Dst:      assign.Partner[src],
			Size:     -1,
			RNG:      rootRNG.Split(),
			Recorder: flowRec,
			Observer: observer,
		})
		if err != nil {
			return nil, err
		}
		if flowRec != nil {
			flowRec.Record(eng.Now(), trace.KindFlowStart, nextFlowID, -1,
				int32(src), int32(assign.Partner[src]), -1, 0)
		}
		lf.conn = conn
		longs = append(longs, lf)
		conn.Start()
		nextFlowID++
	}

	// Short flows: Poisson arrivals, permutation destinations. Exact
	// mode keeps every record (spawnOrder preserves the paper's
	// scatter-plot ordering); streaming mode observes each flow into the
	// aggregates the moment it finishes and forgets it.
	shorts := make(map[uint64]*shortFlow, cfg.ShortFlows)
	var spawnOrder []uint64
	completed := 0
	shortBase := nextFlowID

	spawner := &workload.PoissonShortFlows{
		Eng:    eng,
		Assign: &assign,
		Rate:   cfg.ArrivalRate,
		Size:   cfg.ShortFlowSize,
		Total:  cfg.ShortFlows,
		Warmup: cfg.Warmup,
		BaseID: shortBase,
	}
	spawner.Spawn = func(id uint64, src, dst int, size int64) {
		sf := &shortFlow{rec: metrics.FlowRecord{
			ID:    id,
			Src:   netem.NodeID(src),
			Dst:   netem.NodeID(dst),
			Class: metrics.ShortFlow,
			Proto: string(cfg.Protocol),
			Size:  size,
			Start: eng.Now(),
		}}
		flowRec := fab.FlowRecorder(rec, src)
		conn, err := Dial(eng, net, cfg, DialConfig{
			FlowID: id, Src: src, Dst: dst, Size: size, RNG: rootRNG.Split(),
			Recorder: flowRec,
			Observer: observer,
		})
		if err != nil {
			panic(err) // config was validated; this cannot happen
		}
		if flowRec != nil {
			flowRec.Record(eng.Now(), trace.KindFlowStart, id, -1,
				int32(src), int32(dst), size, 0)
		}
		sf.conn = conn
		shorts[id] = sf
		if !streaming {
			spawnOrder = append(spawnOrder, id)
		}
		// Completion callbacks fire on the owning endpoint's engine (the
		// receiver's on the destination shard, the sender's on the source
		// shard); the fabric defers them to the coordinator, which replays
		// them in (time, shard) order — immediately in sequential mode.
		conn.Receiver().OnComplete = func() {
			fab.Defer(fab.HostShard(dst), func(at sim.Time) {
				sf.rec.Completed = true
				sf.rec.End = at
				if flowRec != nil {
					flowRec.Record(at, trace.KindFlowEnd, id, -1,
						int32(src), int32(dst), conn.Receiver().Delivered(), 0)
				}
				completed++
				if completed == cfg.ShortFlows && spawner.Spawned() == cfg.ShortFlows {
					fab.Stop()
				}
			})
		}
		conn.SetOnAllAcked(func() {
			fab.Defer(fab.HostShard(src), func(sim.Time) {
				// Sender finished too: snapshot stats and free endpoints.
				sf.fill()
				foldRedials(sf.conn)
				sf.conn.Close()
				sf.conn = nil
				if stream != nil {
					stream.Observe(sf.rec)
				}
				if streaming {
					delete(shorts, id)
				}
			})
		})
		conn.Start()
	}
	spawner.Start(rootRNG.Split())

	// Rolling snapshots: a recurring event samples the cumulative state
	// every interval. The extra events shift Results.Events (documented
	// on MetricsConfig); nothing else observes them.
	if iv := cfg.Metrics.SnapshotInterval; iv > 0 {
		var tick func()
		tick = func() {
			res.Snapshots = append(res.Snapshots, takeSnapshot(eng, net, spawner, stream, controlPlane))
			eng.Schedule(iv, tick)
		}
		eng.Schedule(iv, tick)
	}

	// Execute. The fabric runs the control engine directly in sequential
	// mode; with Shards > 1 it interleaves conservative-lookahead windows
	// with control barriers. A Stop issued by the final completion takes
	// effect at the barrier replaying it, with the completion's own
	// firing time as the run's end time (see shard.Fabric.Run for the
	// bounded window overrun this implies).
	var interrupt func() bool
	if ctx.Done() != nil {
		interrupt = func() bool { return ctx.Err() != nil }
	}
	_, elapsed := fab.Run(shard.RunOptions{
		Until:     cfg.MaxSimTime,
		Interrupt: interrupt,
		Adaptive:  cfg.Lookahead == LookaheadAdaptive,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fab.MergeTraces(rec)
	fab.FoldStats()
	res.Elapsed = elapsed
	res.Events = fab.Events()
	res.Spawned = spawner.Spawned()
	res.Shard = metrics.ShardStats{Shards: fab.Shards()}
	if fab.Shards() > 1 {
		st := fab.Stats()
		res.Shard.Mode = string(cfg.Lookahead)
		res.Shard.LookaheadNs = int64(fab.Lookahead())
		res.Shard.Barriers = st.Barriers
		res.Shard.ControlTurns = st.ControlTurns
		res.Shard.Windows = st.Windows
		res.Shard.ElidedWakeups = st.ElidedWakeups
		res.Shard.WidenedWindows = st.WidenedWindows
		res.Shard.MeanWindowNs = st.MeanWindowNs()
	}

	if streaming {
		// Whatever is left in the map never finished (or its sender was
		// still awaiting ACKs): account it, then summarise.
		for _, sf := range shorts {
			if sf.conn != nil {
				sf.fill()
				foldRedials(sf.conn)
				sf.conn.Close()
				sf.conn = nil
			}
			stream.Observe(sf.rec)
		}
		res.ShortSummary = stream.Summary()
		res.DeadlineMissRate = stream.MissRate()
	} else {
		// Collect short-flow records in spawn order.
		for _, id := range spawnOrder {
			sf := shorts[id]
			if sf.conn != nil { // still open at sim end
				sf.fill()
				foldRedials(sf.conn)
				sf.conn.Close()
				sf.conn = nil
			}
			res.ShortFlows = append(res.ShortFlows, sf.rec)
		}
		res.ShortSummary = metrics.Summarize(res.ShortFlows)
		res.DeadlineMissRate = metrics.DeadlineMissRate(res.ShortFlows, cfg.Deadline)
	}

	// Long flows: goodput over their lifetime.
	var tputSum float64
	for _, lf := range longs {
		lf.rec.Delivered = lf.conn.Receiver().Delivered()
		st := lf.conn.Stats()
		lf.rec.Timeouts = st.Timeouts
		lf.rec.FastRetransmits = st.FastRetransmits
		lf.rec.Retransmissions = st.Retransmissions
		lf.rec.SegmentsSent = st.SegmentsSent
		lf.rec.End = res.Elapsed
		if mc, ok := MMPTCPConn(lf.conn); ok && mc.Switched() {
			res.PhaseSwitches++
		}
		foldRedials(lf.conn)
		lf.conn.Close()
		tputSum += lf.rec.ThroughputMbps(res.Elapsed)
		res.LongFlows = append(res.LongFlows, lf.rec)
	}
	if len(longs) > 0 {
		res.LongThroughputMbps = tputSum / float64(len(longs))
	}

	res.Layers = metrics.LayerReport(net.Links, res.Elapsed)
	for _, ls := range res.Layers {
		res.Blackholed += ls.Blackholed
	}
	for _, sw := range net.Switches {
		res.NoRouteDrops += sw.NoRoute
		res.HopDrops += sw.Dropped
		res.LoopDrops += sw.LoopDrops
		res.SwitchCrashes += sw.Crashes
		res.CrashDrops += sw.CrashDrops
		res.Routing.TransientNoRoute += sw.TransientNoRoute
		res.Routing.StaleLookups += sw.StaleLookups
	}
	if faultPlan != nil {
		res.FaultEvents = len(faultPlan.Events)
	}
	res.Routing.Mode = string(cfg.Routing.Mode)
	res.Routing.Convergence = string(cfg.Routing.Convergence)
	if controlPlane != nil {
		st := controlPlane.Stats()
		res.Routing.Recomputes = st.Recomputes
		res.Routing.LastConvergence = st.LastConvergence
		res.Routing.Overrides = st.Overrides
		res.Routing.DstRecomputed = st.DstRecomputed
		res.Routing.DstSkipped = st.DstSkipped
		res.Routing.BFSRuns = st.BFSRuns
		res.Routing.Flips = st.Flips
		res.Routing.FirstFlip = st.FirstFlip
		res.Routing.LastFlip = st.LastFlip
		res.Routing.TransientTime = st.TransientTime
		res.Routing.Damped = st.Damped
	}
	return res, nil
}

// takeSnapshot samples the run's cumulative state: workload progress,
// the streaming short-flow summary, network-wide damage counters, and
// the control plane's work so far.
func takeSnapshot(eng *sim.Engine, net *topology.Network, spawner *workload.PoissonShortFlows, stream *metrics.StreamingSummary, cp *routing.ControlPlane) metrics.Snapshot {
	snap := metrics.Snapshot{
		At:      eng.Now(),
		Spawned: spawner.Spawned(),
		Short:   stream.Summary(),
	}
	for _, l := range net.Links {
		snap.Blackholed += l.TotalBlackholed()
	}
	for _, sw := range net.Switches {
		snap.NoRouteDrops += sw.NoRoute
		snap.HopDrops += sw.Dropped
		snap.LoopDrops += sw.LoopDrops
		snap.CrashDrops += sw.CrashDrops
	}
	if cp != nil {
		st := cp.Stats()
		snap.Recomputes = st.Recomputes
		snap.Overrides = st.Overrides
	}
	return snap
}

// shortFlow pairs one short flow's record with its live connection.
type shortFlow struct {
	rec  metrics.FlowRecord
	conn Conn
}

// fill snapshots sender statistics into the record (called once, when
// the sender finishes or the simulation ends).
func (sf *shortFlow) fill() {
	if sf.conn == nil {
		return
	}
	st := sf.conn.Stats()
	sf.rec.Timeouts = st.Timeouts
	sf.rec.FastRetransmits = st.FastRetransmits
	sf.rec.Retransmissions = st.Retransmissions
	sf.rec.SegmentsSent = st.SegmentsSent
	sf.rec.Delivered = sf.conn.Receiver().Delivered()
}
