package mmptcp

import (
	"reflect"
	"testing"
)

// faultedConfig is the failure scenario the acceptance tests share: the
// small FatTree with two agg-core cables cut shortly after the short
// flows start arriving, repaired mid-run, with a routing reconvergence
// delay that opens a real blackhole window.
func faultedConfig(proto Protocol, flows int) Config {
	cfg := tiny(proto, flows)
	cfg.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 600*Millisecond),
		ReconvergeDelay: 50 * Millisecond,
	}
	return cfg
}

func TestRunWithFaultsSmoke(t *testing.T) {
	res, err := Run(faultedConfig(ProtoMMPTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents != 8 { // 2 cables x 2 directions x (down + up)
		t.Errorf("fault events = %d, want 8", res.FaultEvents)
	}
	if res.Blackholed == 0 {
		t.Error("no packets blackholed despite a 50ms blackhole window")
	}
	agg := res.Layers[LayerAgg]
	if agg.Blackholed == 0 || agg.BlackholedBytes == 0 {
		t.Errorf("agg layer blackhole accounting empty: %+v", agg)
	}
	if agg.DownLinks != 4 {
		t.Errorf("agg down links = %d, want 4", agg.DownLinks)
	}
	// Both directions of both cables were down for 450ms each.
	if want := 4 * 450 * Millisecond; agg.DownTime != want {
		t.Errorf("agg down time = %v, want %v", agg.DownTime, want)
	}
	// The workload must be untouched by the fault plan: a healthy twin
	// spawns the identical flow sequence.
	healthy, err := Run(tiny(ProtoMMPTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i := range healthy.ShortFlows {
		if healthy.ShortFlows[i].Src != res.ShortFlows[i].Src ||
			healthy.ShortFlows[i].Dst != res.ShortFlows[i].Dst ||
			healthy.ShortFlows[i].Start != res.ShortFlows[i].Start {
			t.Fatalf("flow %d workload diverged between faulted and healthy run", i)
		}
	}
	if healthy.Blackholed != 0 || healthy.NoRouteDrops != 0 || healthy.FaultEvents != 0 {
		t.Errorf("healthy run shows failure artefacts: %d blackholed, %d no-route",
			healthy.Blackholed, healthy.NoRouteDrops)
	}
}

// TestFailureRobustnessShape is the acceptance scenario: with failed
// core links and a nonzero reconvergence delay, MMPTCP's packet scatter
// spreads the damage — its worst short flow suffers far less than
// single-path TCP's worst case, which stalls on the dead path for the
// whole blackhole window plus RTO backoff — and long-flow goodput
// recovers after repair and reconvergence instead of collapsing.
func TestFailureRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("failure comparison is slow")
	}
	tcpRes, err := Run(faultedConfig(ProtoTCP, 200))
	if err != nil {
		t.Fatal(err)
	}
	mmRes, err := Run(faultedConfig(ProtoMMPTCP, 200))
	if err != nil {
		t.Fatal(err)
	}
	mmHealthy, err := Run(tiny(ProtoMMPTCP, 200))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TCP    faulted: %v miss=%.2f long=%.2f blackholed=%d noroute=%d",
		tcpRes.ShortSummary, tcpRes.DeadlineMissRate, tcpRes.LongThroughputMbps,
		tcpRes.Blackholed, tcpRes.NoRouteDrops)
	t.Logf("MMPTCP faulted: %v miss=%.2f long=%.2f blackholed=%d noroute=%d",
		mmRes.ShortSummary, mmRes.DeadlineMissRate, mmRes.LongThroughputMbps,
		mmRes.Blackholed, mmRes.NoRouteDrops)
	t.Logf("MMPTCP healthy: %v long=%.2f", mmHealthy.ShortSummary, mmHealthy.LongThroughputMbps)

	if tcpRes.Blackholed == 0 || mmRes.Blackholed == 0 {
		t.Fatal("failure scenario blackholed nothing; the scenario is broken")
	}
	// The robustness claim, directionally: scatter's worst short flow
	// beats single-path TCP's worst case under the same failure.
	if mmRes.ShortSummary.MaxMs >= tcpRes.ShortSummary.MaxMs {
		t.Errorf("MMPTCP worst short FCT %.1fms >= TCP worst %.1fms under failure",
			mmRes.ShortSummary.MaxMs, tcpRes.ShortSummary.MaxMs)
	}
	// Long flows ride through: after repair plus reconvergence, MMPTCP
	// goodput ends within striking distance of the healthy twin.
	if mmRes.LongThroughputMbps < 0.5*mmHealthy.LongThroughputMbps {
		t.Errorf("MMPTCP long goodput %.2f collapsed vs healthy %.2f",
			mmRes.LongThroughputMbps, mmHealthy.LongThroughputMbps)
	}
}

// TestFaultedSweepDeterminism locks in the acceptance criterion that a
// faulted sweep is byte-identical at any worker count: same seeds + same
// schedules, serial vs parallel.
func TestFaultedSweepDeterminism(t *testing.T) {
	mkConfigs := func() []Config {
		var configs []Config
		for _, proto := range []Protocol{ProtoTCP, ProtoMMPTCP} {
			cfg := faultedConfig(proto, 40)
			configs = append(configs, cfg)
			deg := tiny(proto, 40)
			deg.Faults = FaultsConfig{
				Events: DegradeCables(LayerEdge, 2, 120*Millisecond, 400*Millisecond,
					0.5, 50*Microsecond, 0.02),
			}
			configs = append(configs, deg)
			model := tiny(proto, 40)
			model.MaxSimTime = 20 * Second
			model.Faults = FaultsConfig{
				Model: FaultModel{
					Layers:  []FaultLayerModel{{Layer: LayerAgg, MTBF: 2 * Second, MTTR: 200 * Millisecond}},
					Horizon: 5 * Second,
				},
				ReconvergeDelay: 10 * Millisecond,
			}
			configs = append(configs, model)
		}
		return configs
	}
	serial, err := RunSweep(mkConfigs(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(mkConfigs(), SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("config %d: faulted sweep diverged between 1 and 4 workers", i)
		}
	}
	// And the dynamics actually ran: the model configs sampled events.
	for i, res := range serial {
		if res.FaultEvents == 0 {
			t.Errorf("config %d resolved no fault events", i)
		}
		if res.Elapsed == 0 {
			t.Errorf("config %d did not run", i)
		}
	}
}
