// Package routing is the global routing control plane. Without it,
// reconvergence is link-local: each switch filters its own route-dead
// links out of its equal-cost sets (netem.LiveLinks), but upstream ECMP
// keeps hashing onto next hops that lost their only way forward — a core
// switch whose sole downlink to a pod died still receives that pod's
// traffic and drops it as NoRoute. The control plane closes that gap:
// every switch owns a FIB (its structural router, its own override
// table, and an epoch counter versioning applied updates), and whenever
// the fault injector flips a link's routing state (reconvergence-
// delayed), the plane recomputes global reachability with a breadth-
// first pass over the live links and overrides exactly the (switch,
// destination) entries whose equal-cost sets diverge from the structural
// fast path.
//
// Recompute is a two-stage pipeline. Stage one computes the target
// tables incrementally: hop-distance maps are cached per live-attachment
// signature (all hosts sharing the same set of live access switches
// share one reverse BFS) and stay valid across recomputes; a link
// transition invalidates only the signatures whose shortest-path DAG the
// flipped link can belong to (see entryDirty), and destinations whose
// distances and equal-cost sets are provably untouched are skipped
// entirely. Stage two distributes the targets. Under ConvergeAtomic
// (the default) every FIB flips in place at recompute time — one global
// table swap, the pre-staged behaviour bit for bit. Under
// ConvergeStaggered each FIB's flip is scheduled at its own virtual
// time: recompute time plus PerHopDelay for every hop the switch sits
// from the nearest element of the transition batch, the way real
// control planes converge outward from a failure. While flips are
// outstanding the fabric disagrees with itself — micro-loops and
// transient blackholes — and the FIBs make that observable: Stale
// reports a staged-but-unflipped table, Transient reports the open
// network-wide window, and Stats records the flip spread and cumulative
// window time.
//
// The plane also dampens churn: with Config.HoldDown set, a link whose
// routing state flips more than FlapThreshold times inside the trailing
// hold-down window stops triggering immediate recomputes — its pending
// transitions are folded into one deferred rebuild at window expiry, the
// way real control planes suppress flapping advertisements.
//
// The healthy network never pays for the indirection beyond a nil check:
// overrides exist only for destinations whose reachability actually
// changed, every other lookup falls through to the structural router.
// Recomputes are coalesced — any number of simultaneous link transitions
// trigger exactly one rebuild — and everything is deterministic: passes
// iterate hosts and switches in builder order and flips are scheduled in
// builder order, so identical fault schedules yield byte-identical
// routing at any sweep worker count. Incrementality is behaviour-neutral
// by construction; TestIncrementalMatchesFullRecompute asserts this
// against ForceFullRecompute, and the staggered path with PerHopDelay=0
// degenerates to atomic exactly (flips due "now" apply inline).
package routing

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ForceFullRecompute, when set, disables the incremental invalidation
// logic: every recompute discards the distance cache and rebuilds every
// destination, exactly like the pre-incremental control plane. It exists
// for the equivalence tests and for benchmarking the incremental win;
// runs must not toggle it concurrently (it is read at recompute time).
var ForceFullRecompute bool

// Mode selects the repair model for a run.
type Mode string

const (
	// Local is the baseline: switches exclude their own route-dead links
	// and nothing else — upstream ECMP stays oblivious.
	Local Mode = "local"
	// Global recomputes reachability network-wide after each
	// (reconvergence-delayed) link state change, so ECMP everywhere
	// steers around paths that cannot reach the destination.
	Global Mode = "global"
)

// ParseMode validates a mode string; empty means Local.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", Local:
		return Local, nil
	case Global:
		return Global, nil
	}
	return "", fmt.Errorf("routing: unknown mode %q (want %q or %q)", s, Local, Global)
}

// Convergence selects how recomputed tables reach the switches.
type Convergence string

const (
	// Atomic flips every switch's table at recompute time — one global
	// swap, no transient disagreement. This is the default and the
	// pre-staged behaviour bit for bit.
	Atomic Convergence = "atomic"
	// Staggered schedules each switch's flip at its own time: recompute
	// time plus Config.PerHopDelay per hop from the nearest element of
	// the transition batch. Switches disagree until the last flip lands,
	// opening the micro-loop / transient-blackhole window real control
	// planes exhibit.
	Staggered Convergence = "staggered"
)

// ParseConvergence validates a convergence string; empty means Atomic.
func ParseConvergence(s string) (Convergence, error) {
	switch Convergence(s) {
	case "", Atomic:
		return Atomic, nil
	case Staggered:
		return Staggered, nil
	}
	return "", fmt.Errorf("routing: unknown convergence %q (want %q or %q)", s, Atomic, Staggered)
}

// Config tunes an installed control plane. The zero value is the
// classic plane: atomic convergence, no flap damping.
type Config struct {
	// Convergence picks atomic (default) or staggered table flips.
	Convergence Convergence
	// PerHopDelay is the extra flip delay per hop a switch sits from the
	// nearest failed (or repaired) element, under Staggered convergence.
	// Zero makes Staggered degenerate to Atomic exactly. Must not be
	// negative.
	PerHopDelay sim.Time
	// HoldDown enables flap damping: a link whose routing state
	// transitions more than FlapThreshold times within this trailing
	// window stops triggering immediate recomputes; its pending flips
	// fold into one deferred rebuild at window expiry. Zero disables.
	HoldDown sim.Time
	// FlapThreshold is the number of transitions inside one hold-down
	// window a link may make before it is damped; defaults to 3 when
	// HoldDown is set. Must not be negative.
	FlapThreshold int
	// Workers bounds the goroutines a recompute may fan its breadth-first
	// passes across. Values below 2 keep the recompute fully serial (the
	// default). Parallelism changes nothing observable: missing distance
	// maps are discovered, counted and inserted in destination order on
	// the calling thread, and each map is a pure function of its job's
	// sources — only the map filling itself runs concurrently. The
	// sharded run harness sets this to its shard count.
	Workers int
}

// Validate checks the config for contradictions. Install runs it, and
// the public mmptcp.Config surface calls it up front so a bad value is
// rejected even on runs that never install a control plane.
func (c Config) Validate() error {
	conv, err := ParseConvergence(string(c.Convergence))
	if err != nil {
		return err
	}
	if c.PerHopDelay < 0 {
		return fmt.Errorf("routing: negative PerHopDelay %v", c.PerHopDelay)
	}
	if c.PerHopDelay > 0 && conv != Staggered {
		return fmt.Errorf("routing: PerHopDelay is only meaningful with Convergence %q", Staggered)
	}
	if c.HoldDown < 0 {
		return fmt.Errorf("routing: negative HoldDown %v", c.HoldDown)
	}
	if c.FlapThreshold < 0 {
		return fmt.Errorf("routing: negative FlapThreshold %d", c.FlapThreshold)
	}
	if c.FlapThreshold > 0 && c.HoldDown == 0 {
		return fmt.Errorf("routing: FlapThreshold %d without HoldDown does nothing (set the damping window too)", c.FlapThreshold)
	}
	return nil
}

// Stats reports the control plane's work during a run.
type Stats struct {
	// Recomputes counts global table rebuilds (coalesced: simultaneous
	// link transitions share one).
	Recomputes int
	// LastConvergence is the virtual time of the most recent rebuild.
	LastConvergence sim.Time
	// Overrides is the number of (switch, destination) entries whose
	// equal-cost sets diverge from the structural routers' live-filtered
	// answers after the last rebuild (entries installed only to pin the
	// static baseline are not counted). Under staggered convergence the
	// count is refreshed again when the transient window closes, so it
	// reflects the tables actually serving lookups.
	Overrides int

	// DstRecomputed counts destinations whose tables were reconciled
	// across all recomputes, and DstSkipped those proven untouched by
	// the transition batch and skipped outright. Before incremental
	// recompute every rebuild reconciled every destination, i.e.
	// DstSkipped was identically zero.
	DstRecomputed int
	DstSkipped    int
	// BFSRuns counts reverse breadth-first passes actually executed;
	// destinations sharing a live-attachment signature share one, and
	// cached passes from earlier recomputes are reused outright.
	BFSRuns int

	// Staggered-convergence accounting; identically zero under Atomic.
	// Flips counts per-switch table flips applied. FirstFlip and
	// LastFlip bracket the most recent transition's flip schedule (the
	// convergence spread), and TransientTime accumulates, across all
	// transitions, the virtual time during which at least one switch
	// still served a stale table.
	Flips         int
	FirstFlip     sim.Time
	LastFlip      sim.Time
	TransientTime sim.Time

	// Damped counts link transitions whose recompute was deferred by
	// the hold-down timer (zero unless Config.HoldDown is set).
	Damped int
}

// FIB is one switch's forwarding-table object: the structural base
// router, the override entries currently serving lookups, an optional
// staged table awaiting its scheduled flip, and the epoch counter
// versioning applied flips. On a healthy network override is nil and
// every lookup is a nil check plus the base call. FIB implements
// netem.VersionedRouter so the data plane can attribute damage done
// while the fabric disagrees with itself.
type FIB struct {
	cp   *ControlPlane
	base netem.Router
	// swID is the owning switch, for trace identity on flip events.
	swID netem.NodeID
	// override serves lookups; target, when non-nil, is the recomputed
	// table staged for this switch but not yet flipped in.
	override map[netem.NodeID][]*netem.Link
	target   map[netem.NodeID][]*netem.Link
	// flipAt is the scheduled flip time of the current target. Each
	// batch schedules its own flip event; an event is authoritative only
	// if it fires exactly at flipAt, so a batch that re-stages a switch
	// with a pending flip moves the flip to its own schedule instead of
	// letting the stale event install the fresher table early.
	flipAt sim.Time
	epoch  uint64
}

// NextLinks implements netem.Router: overrides first, structural fast
// path otherwise.
func (f *FIB) NextLinks(dst netem.NodeID) []*netem.Link {
	if f.override != nil {
		if eq, ok := f.override[dst]; ok {
			return eq
		}
	}
	return f.base.NextLinks(dst)
}

// Staging implements netem.VersionedRouter: whether staged convergence
// is enabled at all. Under atomic convergence the switch skips the
// per-lookup epoch consultation entirely.
func (f *FIB) Staging() bool { return f.cp.staggered() }

// Epoch implements netem.VersionedRouter: the number of table flips this
// switch has applied. Atomic convergence flips all switches in place and
// leaves epochs at zero.
func (f *FIB) Epoch() uint64 { return f.epoch }

// Stale implements netem.VersionedRouter: a recomputed table is staged
// at this switch but has not yet flipped in.
func (f *FIB) Stale() bool { return f.target != nil }

// Transient implements netem.VersionedRouter: the network-wide staggered
// window is open — some switch flipped to the new tables while another
// still serves the old ones.
func (f *FIB) Transient() bool { return f.cp.staleFIBs > 0 }

// ConvergenceObserver is the transport-facing view of the control
// plane's convergence state: whether routing is still settling after a
// topology change. MMPTCP's phase switch consults it to avoid re-homing
// a flow's subflows onto tables that are mid-flip (transiently looping
// or black-holing). Observing never schedules events or mutates state.
type ConvergenceObserver interface {
	// ConvergenceOpen reports that a convergence episode is in
	// progress: a recompute is pending or scheduled, flap damping is
	// holding transitions back, or staggered per-switch flips have not
	// all landed.
	ConvergenceOpen() bool
}

// ConvergenceOpen implements ConvergenceObserver for the global control
// plane: true while an invalidation awaits its recompute (dirty), a
// hold-down window defers transitions (deferredPending), or staged
// tables await their flips (staleFIBs).
func (cp *ControlPlane) ConvergenceOpen() bool {
	return cp.dirty || cp.deferredPending || cp.staleFIBs > 0
}

var _ ConvergenceObserver = (*ControlPlane)(nil)

// stage records dst's computed equal-cost set into the FIB's target
// table, lazily forking it from the serving table on the first actual
// divergence (an entry exists exactly when eq differs from the healthy
// structural baseline, the same invariant the serving table keeps).
func (f *FIB) stage(dst netem.NodeID, eq, healthy []*netem.Link) {
	cur := f.override
	if f.target != nil {
		cur = f.target
	}
	have, havePresent := cur[dst]
	wantPresent := !sameLinks(eq, healthy)
	if wantPresent == havePresent && (!wantPresent || sameLinks(eq, have)) {
		return
	}
	if f.target == nil {
		f.target = make(map[netem.NodeID][]*netem.Link, len(f.override)+1)
		for k, v := range f.override {
			f.target[k] = v
		}
		f.cp.staleFIBs++
		if f.cp.staleFIBs == 1 {
			f.cp.windowOpenedAt = f.cp.eng.Now()
		}
	}
	if wantPresent {
		f.target[dst] = eq
	} else {
		delete(f.target, dst)
	}
}

// applyFlip installs the staged table as the serving one and closes the
// transient window if this was the last stale FIB.
func (f *FIB) applyFlip() {
	if len(f.target) == 0 {
		f.override = nil // restore the documented nil-check fast path
	} else {
		f.override = f.target
	}
	f.target = nil
	f.epoch++
	cp := f.cp
	if cp.rec != nil {
		cp.rec.Record(cp.eng.Now(), trace.KindFIBFlip, 0, -1, int32(f.swID), -1,
			int64(f.epoch), int64(len(f.override)))
	}
	cp.stats.Flips++
	cp.staleFIBs--
	if cp.staleFIBs == 0 {
		cp.stats.TransientTime += cp.eng.Now() - cp.windowOpenedAt
		// The window just closed on tables the recompute-time override
		// count never saw. Flips nil empty maps themselves, so nothing
		// needs fixing on the forwarding path — just mark the stat stale
		// and let Stats() recount once when somebody actually reads it,
		// instead of scanning every FIB on every window close.
		cp.overridesStale = true
	}
}

// flip records one routing-visible link transition for the invalidation
// pass: the link's endpoints and the direction of the change.
type flip struct {
	u, v netem.NodeID // src and dst switch of the flipped link
	dead bool         // true: became route-dead; false: became route-live
}

// distEntry is one cached reverse-BFS result: hop distances from every
// reachable switch to the destinations sharing one live-attachment
// signature. epoch records the recompute that (re)built it.
type distEntry struct {
	dist  map[netem.NodeID]int32
	epoch uint64
}

// flapState tracks one link's most recent routing transitions — a ring
// of at most FlapThreshold+1 timestamps, enough to answer the exact
// trailing-window question "did more than FlapThreshold transitions
// land within the last HoldDown?" without a resettable counter's blind
// spot (steady flapping that straddles a fixed window's reset).
type flapState struct {
	times []sim.Time
	idx   int // oldest entry once the ring is full; next overwrite slot
}

// ControlPlane owns the FIBs of one built network and rebuilds their
// override entries on demand. Create with Install, trigger with
// Invalidate (typically wired to faults.Injector.OnRouteChange).
type ControlPlane struct {
	eng *sim.Engine
	net *topology.Network
	cfg Config

	// fibs is parallel to net.Switches.
	fibs []*FIB

	// healthy[i][j] is switch i's structural equal-cost set toward host
	// j on the undamaged network, snapshotted at install (builders hand
	// over healthy networks; faults only fire once the engine runs).
	// Reconciliation compares computed sets against these static
	// baselines — not against the live-filtered base lookup — so whether
	// a (switch, destination) override exists depends only on the
	// computed set, which is exactly the property that lets the
	// incremental pass skip destinations its predicate proves untouched.
	healthy [][][]*netem.Link

	// Immutable adjacency, computed once at install.
	out    map[netem.NodeID][]*netem.Link // outgoing links per node
	in     map[netem.NodeID][]*netem.Link // incoming links per node
	isHost map[netem.NodeID]bool
	ordOf  map[netem.NodeID]int // switch NodeID -> ordinal in builder order

	dirty bool
	// pending accumulates the switch-to-switch link transitions since
	// the last recompute; host-incident transitions never affect switch
	// tables except through the attachment signature, which is
	// recomputed per destination anyway. seeds carries the switch
	// endpoints of host-incident transitions: the invalidation pass
	// ignores them, but the staggered flip-delay BFS needs the failure's
	// location, and the hold-down expiry path needs them to see that
	// damped host-link transitions are still unconsumed.
	pending []flip
	seeds   []netem.NodeID
	// fullPending forces the next recompute to invalidate everything
	// (set by Invalidate(nil), the escape hatch for callers that cannot
	// name the changed link).
	fullPending bool

	// distCache maps a destination's live-attachment signature to its
	// cached distance map; entries survive recomputes until a flip
	// invalidates them. hostSig remembers each host's signature as of
	// its last reconciliation, so a host whose attachment changed is
	// reconciled even when its new signature's entry is cached.
	distCache map[string]*distEntry
	hostSig   [][]byte
	epoch     uint64

	// Staggered-convergence state: flipDist is the per-switch hop
	// distance from the current batch's seeds (reused across batches),
	// staleFIBs counts switches whose target table awaits its flip,
	// windowOpenedAt stamps when staleFIBs last left zero, and
	// overridesStale marks that flips changed serving tables after the
	// last override recount (Stats refreshes lazily).
	flipDist       []int32
	staleFIBs      int
	windowOpenedAt sim.Time
	overridesStale bool
	flipFn         func(any)

	// Flap damping state (active only with cfg.HoldDown > 0).
	flap            map[*netem.Link]*flapState
	deferredPending bool
	deferredFn      func()

	// Reusable scratch: recycled distance maps, the two BFS frontier
	// slices, the signature key buffer and the BFS source-link buffer.
	freeMaps []map[netem.NodeID]int32
	frontier []netem.NodeID
	next     []netem.NodeID
	keyBuf   []byte
	srcBuf   []*netem.Link

	// missing is the recompute scratch holding the BFS jobs of one pass:
	// the distance maps absent from distCache, discovered in destination
	// order and computed serially or across cfg.Workers goroutines.
	missing []bfsJob

	// recomputeFn is the cached engine callback (avoids a method-value
	// allocation per coalesced batch).
	recomputeFn func()

	// rec, when non-nil, receives structured trace events (recompute
	// start/end, per-switch FIB flips, damping defer/expiry); every
	// trace point is nil-guarded.
	rec *trace.Recorder

	stats Stats
}

// Install wraps every switch's router of the network with a FIB and
// returns the plane. Until the first Invalidate the FIBs are pure
// pass-throughs, so installing on a network that never degrades is
// behaviour-neutral. cfg tunes convergence and damping; the zero value
// is the classic atomic plane.
func Install(eng *sim.Engine, net *topology.Network, cfg Config) (*ControlPlane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HoldDown > 0 && cfg.FlapThreshold == 0 {
		cfg.FlapThreshold = 3
	}
	cp := &ControlPlane{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		out:       make(map[netem.NodeID][]*netem.Link),
		in:        make(map[netem.NodeID][]*netem.Link),
		isHost:    make(map[netem.NodeID]bool, len(net.Hosts)),
		ordOf:     make(map[netem.NodeID]int, len(net.Switches)),
		distCache: make(map[string]*distEntry),
		hostSig:   make([][]byte, len(net.Hosts)),
	}
	for _, l := range net.Links {
		cp.out[l.Src().ID()] = append(cp.out[l.Src().ID()], l)
		cp.in[l.Dst().ID()] = append(cp.in[l.Dst().ID()], l)
	}
	for _, h := range net.Hosts {
		cp.isHost[h.ID()] = true
	}
	for i, sw := range net.Switches {
		cp.ordOf[sw.ID()] = i
	}
	cp.fibs = make([]*FIB, 0, len(net.Switches))
	net.WrapRouters(func(sw *netem.Switch, base netem.Router) netem.Router {
		f := &FIB{cp: cp, base: base, swID: sw.ID()}
		cp.fibs = append(cp.fibs, f)
		return f
	})
	cp.healthy = make([][][]*netem.Link, len(cp.fibs))
	for i, f := range cp.fibs {
		cp.healthy[i] = make([][]*netem.Link, len(net.Hosts))
		for j, h := range net.Hosts {
			eq := f.base.NextLinks(h.ID())
			cp.healthy[i][j] = append([]*netem.Link(nil), eq...)
		}
	}
	cp.recomputeFn = cp.Recompute
	cp.flipFn = func(a any) {
		f := a.(*FIB)
		// Authoritative only when this event IS the current schedule: a
		// later batch that re-staged the switch moved flipAt to its own
		// time (and scheduled its own event), and an inline apply left
		// no target at all.
		if f.target != nil && eng.Now() == f.flipAt {
			f.applyFlip()
		}
	}
	if cfg.HoldDown > 0 {
		cp.flap = make(map[*netem.Link]*flapState)
		cp.deferredFn = cp.deferredRecompute
	}
	return cp, nil
}

// Stats returns the work counters. A still-open transient window (under
// sustained churn new batches can re-stage tables before the previous
// flips all land, so the fabric never fully agrees) is included in
// TransientTime up to the current virtual time, and the override count
// is refreshed if flips changed serving tables since the last recount.
func (cp *ControlPlane) Stats() Stats {
	if cp.overridesStale {
		cp.recountOverrides()
		cp.overridesStale = false
	}
	st := cp.stats
	if cp.staleFIBs > 0 {
		st.TransientTime += cp.eng.Now() - cp.windowOpenedAt
	}
	return st
}

func (cp *ControlPlane) staggered() bool { return cp.cfg.Convergence == Staggered }

// SetRecorder installs (or, with nil, removes) the structured event
// recorder. The run harness calls this right after Install.
func (cp *ControlPlane) SetRecorder(r *trace.Recorder) { cp.rec = r }

// Invalidate marks the tables stale and schedules one recompute at the
// current virtual time. Any number of Invalidate calls before that
// recompute runs coalesce into it — a switch crash that deadens dozens
// of ports at one instant costs a single table rebuild. The flipped link
// (its state already changed) scopes the recompute to the destinations
// it can affect; a nil link conservatively invalidates everything. A
// link the hold-down policy has damped defers the rebuild to the end of
// its flap window instead of triggering one now.
func (cp *ControlPlane) Invalidate(l *netem.Link) {
	damped := false
	if l == nil {
		cp.fullPending = true
	} else {
		u, v := l.Src().ID(), l.Dst().ID()
		// Host uplinks never appear in switch tables or distance maps,
		// and switch->host downlinks only matter through the
		// destination's attachment signature: neither needs an
		// invalidation record. Their switch endpoint is still recorded
		// as a seed — the staggered flip-delay pass starts there, and
		// the hold-down expiry path must see the transition as
		// unconsumed even in atomic mode.
		if !cp.isHost[u] && !cp.isHost[v] {
			cp.pending = append(cp.pending, flip{u: u, v: v, dead: l.RouteDead()})
		} else {
			if !cp.isHost[u] {
				cp.seeds = append(cp.seeds, u)
			}
			if !cp.isHost[v] {
				cp.seeds = append(cp.seeds, v)
			}
		}
		damped = cp.noteFlap(l)
	}
	if cp.dirty {
		return
	}
	if damped {
		cp.stats.Damped++
		if cp.rec != nil && l != nil {
			cp.rec.Record(cp.eng.Now(), trace.KindDampDefer, 0, -1,
				int32(l.Src().ID()), int32(l.Dst().ID()), int64(cp.stats.Damped), 0)
		}
		if !cp.deferredPending {
			cp.deferredPending = true
			cp.eng.Schedule(cp.cfg.HoldDown, cp.deferredFn)
		}
		return
	}
	cp.dirty = true
	cp.eng.Schedule(0, cp.recomputeFn)
}

// noteFlap records one routing transition of l and reports whether the
// link is damped: strictly more than FlapThreshold transitions inside
// the trailing HoldDown window ending now.
func (cp *ControlPlane) noteFlap(l *netem.Link) bool {
	if cp.cfg.HoldDown <= 0 {
		return false
	}
	now := cp.eng.Now()
	st := cp.flap[l]
	if st == nil {
		st = &flapState{times: make([]sim.Time, 0, cp.cfg.FlapThreshold+1)}
		cp.flap[l] = st
	}
	if len(st.times) == cp.cfg.FlapThreshold+1 {
		st.times[st.idx] = now
		st.idx = (st.idx + 1) % len(st.times)
	} else {
		st.times = append(st.times, now)
	}
	if len(st.times) <= cp.cfg.FlapThreshold {
		return false
	}
	// The ring holds the FlapThreshold+1 most recent transitions; the
	// link is flapping iff the oldest of them is still inside the
	// trailing window.
	return now-st.times[st.idx] <= cp.cfg.HoldDown
}

// deferredRecompute is the hold-down expiry callback: it rebuilds the
// tables only if damped transitions are still unconsumed (an undamped
// transition in the meantime will have folded them into its own
// recompute).
func (cp *ControlPlane) deferredRecompute() {
	cp.deferredPending = false
	if cp.dirty {
		return
	}
	if len(cp.pending) == 0 && len(cp.seeds) == 0 && !cp.fullPending {
		return
	}
	if cp.rec != nil {
		cp.rec.Record(cp.eng.Now(), trace.KindDampExpire, 0, -1, -1, -1,
			int64(len(cp.pending)+len(cp.seeds)), 0)
	}
	cp.Recompute()
}

// Recompute rebuilds the override entries invalidated by the transitions
// since the last pass — stage one of the pipeline — and then distributes
// them: atomically in place, or (staggered) as per-switch flips
// scheduled by distance from the batch's seeds. It is normally reached
// through Invalidate; tests may call it directly (a direct call with no
// recorded transitions re-verifies signatures but reuses every cached
// distance map).
func (cp *ControlPlane) Recompute() {
	cp.dirty = false
	cp.stats.Recomputes++
	cp.stats.LastConvergence = cp.eng.Now()
	cp.epoch++
	tracing := cp.rec != nil
	if tracing {
		cp.rec.Record(cp.eng.Now(), trace.KindRecomputeStart, 0, -1, -1, -1,
			int64(len(cp.pending)+len(cp.seeds)), int64(cp.stats.Recomputes))
	}
	recBefore, skipBefore := cp.stats.DstRecomputed, cp.stats.DstSkipped

	staggered := cp.staggered()
	if staggered {
		// Flip delays derive from the batch about to be consumed; compute
		// them before the invalidation pass clears it.
		cp.computeFlipDelays()
	}

	if ForceFullRecompute || cp.fullPending {
		for key, e := range cp.distCache {
			cp.dropEntry(key, e)
		}
	} else if len(cp.pending) > 0 {
		for key, e := range cp.distCache {
			if cp.entryDirty(e) {
				cp.dropEntry(key, e)
			}
		}
	}
	cp.pending = cp.pending[:0]
	cp.seeds = cp.seeds[:0]
	cp.fullPending = false

	// Stage the missing distance maps: one BFS job per distinct absent
	// signature, discovered in destination order. Inserting the entry
	// (with its recycled map) at discovery time both deduplicates jobs
	// and keeps the freeMaps pop order — and therefore every byte of the
	// result — identical to the lazy serial pass this replaces.
	cp.missing = cp.missing[:0]
	for _, h := range cp.net.Hosts {
		cp.signature(h.ID())
		if _, ok := cp.distCache[string(cp.keyBuf)]; ok {
			continue
		}
		e := &distEntry{dist: cp.grabMap(), epoch: cp.epoch}
		cp.distCache[string(cp.keyBuf)] = e
		cp.stats.BFSRuns++
		cp.missing = append(cp.missing, bfsJob{
			entry:   e,
			sources: append([]*netem.Link(nil), cp.srcBuf...),
		})
	}
	cp.runBFS()

	for i, h := range cp.net.Hosts {
		dst := h.ID()
		cp.signature(dst)
		e := cp.distCache[string(cp.keyBuf)]
		// A destination needs reconciling when its distances were
		// rebuilt this pass, or when its attachment signature changed
		// (same cached distances, different access links in the edge
		// switches' equal-cost sets). Otherwise nothing about its
		// tables can have moved and the whole destination is skipped.
		if e.epoch == cp.epoch || !bytes.Equal(cp.keyBuf, cp.hostSig[i]) {
			cp.reconcile(i, dst, e.dist, staggered)
			cp.hostSig[i] = append(cp.hostSig[i][:0], cp.keyBuf...)
			cp.stats.DstRecomputed++
		} else {
			cp.stats.DstSkipped++
		}
	}

	if staggered {
		cp.flushFlips()
	}
	cp.recountOverrides()
	cp.overridesStale = false
	if tracing {
		cp.rec.Record(cp.eng.Now(), trace.KindRecomputeEnd, 0, -1, -1, -1,
			int64(cp.stats.DstRecomputed-recBefore), int64(cp.stats.DstSkipped-skipBefore))
	}
}

// recountOverrides refreshes Stats.Overrides against the tables
// currently serving lookups, dropping empty override maps back to the
// nil-check fast path.
func (cp *ControlPlane) recountOverrides() {
	live := 0
	for _, f := range cp.fibs {
		if len(f.override) == 0 {
			// Fully healed: drop the empty map so the forwarding path
			// returns to the documented nil-check fast path.
			f.override = nil
			continue
		}
		// Count only entries that diverge from the live-filtered
		// structural answer. Reconciliation installs overrides against
		// the static healthy baseline (so override existence is a pure
		// function of the computed set — what makes skipping sound),
		// which also pins entries the live filter would have answered
		// identically; excluding those here keeps the reported metric
		// identical to the pre-incremental control plane's.
		for dst, eq := range f.override {
			if !sameLinks(eq, f.base.NextLinks(dst)) {
				live++
			}
		}
	}
	cp.stats.Overrides = live
}

// computeFlipDelays assigns every switch its hop distance from the
// nearest seed of the current transition batch (the endpoints of the
// flipped links), breadth-first over the live fabric. Switches the flood
// cannot reach — their side of a partition — converge one hop after the
// farthest reached switch, so every staged table still lands. A full
// invalidation (no nameable seeds) flips everything at distance zero,
// i.e. atomically.
func (cp *ControlPlane) computeFlipDelays() {
	if cp.flipDist == nil {
		cp.flipDist = make([]int32, len(cp.net.Switches))
	}
	if cp.fullPending || (len(cp.pending) == 0 && len(cp.seeds) == 0) {
		for i := range cp.flipDist {
			cp.flipDist[i] = 0
		}
		cp.seeds = cp.seeds[:0]
		return
	}
	for i := range cp.flipDist {
		cp.flipDist[i] = -1
	}
	frontier := cp.frontier[:0]
	seed := func(id netem.NodeID) {
		if ord, ok := cp.ordOf[id]; ok && cp.flipDist[ord] < 0 {
			cp.flipDist[ord] = 0
			frontier = append(frontier, id)
		}
	}
	for _, f := range cp.pending {
		seed(f.u)
		seed(f.v)
	}
	for _, id := range cp.seeds {
		seed(id)
	}
	cp.seeds = cp.seeds[:0]
	maxD := int32(0)
	next := cp.next[:0]
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			d := cp.flipDist[cp.ordOf[v]]
			for _, l := range cp.out[v] {
				if l.RouteDead() {
					continue
				}
				u := l.Dst().ID()
				ord, ok := cp.ordOf[u]
				if !ok || cp.flipDist[ord] >= 0 {
					continue
				}
				cp.flipDist[ord] = d + 1
				if d+1 > maxD {
					maxD = d + 1
				}
				next = append(next, u)
			}
		}
		frontier, next = next, frontier
	}
	cp.frontier, cp.next = frontier[:0], next[:0]
	for i := range cp.flipDist {
		if cp.flipDist[i] < 0 {
			cp.flipDist[i] = maxD + 1
		}
	}
}

// flushFlips distributes the staged tables: every FIB with a target
// flips at recompute time plus PerHopDelay per hop of flip distance —
// inline when that is now (the seeds themselves, or PerHopDelay zero),
// as a scheduled event otherwise. A switch re-staged while an earlier
// flip is still in flight moves to this batch's schedule (flipAt); the
// superseded event fires off-schedule and is ignored, so a fresher
// table is never installed earlier than its own flip time. Scheduling
// walks switches in builder order, so the flip sequence is
// deterministic.
func (cp *ControlPlane) flushFlips() {
	now := cp.eng.Now()
	first, last := sim.Time(-1), sim.Time(-1)
	for i, f := range cp.fibs {
		if f.target == nil {
			continue
		}
		at := now + sim.Time(cp.flipDist[i])*cp.cfg.PerHopDelay
		if first < 0 || at < first {
			first = at
		}
		if at > last {
			last = at
		}
		if at <= now {
			f.applyFlip()
			continue
		}
		if f.flipAt == at {
			// Re-staged onto an identical schedule; the event already in
			// flight for this exact time stays authoritative (flipAt is
			// only ever set alongside a scheduled event, and a past
			// flipAt cannot equal a future `at`).
			continue
		}
		f.flipAt = at
		cp.eng.ScheduleArg(at-now, cp.flipFn, f)
	}
	if first >= 0 {
		cp.stats.FirstFlip, cp.stats.LastFlip = first, last
	}
}

// dropEntry removes a cached distance map, recycling its storage.
func (cp *ControlPlane) dropEntry(key string, e *distEntry) {
	delete(cp.distCache, key)
	clear(e.dist)
	cp.freeMaps = append(cp.freeMaps, e.dist)
}

// entryDirty reports whether any pending flip can change the entry's
// distances or any equal-cost set derived from them. For a flipped link
// u->v judged against cached distances D (computed before the batch):
//
//   - D[v] absent: the reverse BFS never reaches the link, and v is a
//     switch (host-incident flips are filtered at Invalidate), so it is
//     in no equal-cost set either — unless the link came alive and u was
//     unreachable only for want of it.
//   - Link died: it mattered exactly when it was part of the shortest-
//     path DAG, i.e. D[u] == D[v]+1 (BFS relaxation guarantees
//     D[u] <= D[v]+1 while the link was live, so anything else means a
//     strictly longer detour that no table used).
//   - Link revived: it matters when it offers u a path at least as short
//     as the cached one (D[v]+1 <= D[u], joining or improving the DAG)
//     or when u was unreachable (D[u] absent).
//
// Transitions judged clean one by one compose: removals of non-DAG edges
// cannot lengthen any shortest path, and additions that improve no
// distance individually cannot improve one jointly (a first improved
// node would need an improving edge, contradicting per-edge cleanness).
func (cp *ControlPlane) entryDirty(e *distEntry) bool {
	for _, f := range cp.pending {
		dv, okv := e.dist[f.v]
		if !okv {
			continue
		}
		du, oku := e.dist[f.u]
		if f.dead {
			if oku && du == dv+1 {
				return true
			}
		} else if !oku || dv+1 <= du {
			return true
		}
	}
	return false
}

// signature rebuilds cp.keyBuf and cp.srcBuf for destination dst: the
// source switches of its live access downlinks in builder order (the
// live-attachment signature its distance map is keyed by; the map
// depends on nothing else).
func (cp *ControlPlane) signature(dst netem.NodeID) {
	cp.keyBuf = cp.keyBuf[:0]
	cp.srcBuf = cp.srcBuf[:0]
	for _, l := range cp.in[dst] {
		if !l.RouteDead() {
			cp.srcBuf = append(cp.srcBuf, l)
			id := l.Src().ID()
			cp.keyBuf = append(cp.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
	}
}

// grabMap recycles (or makes) an empty distance map.
func (cp *ControlPlane) grabMap() map[netem.NodeID]int32 {
	if n := len(cp.freeMaps); n > 0 {
		dist := cp.freeMaps[n-1]
		cp.freeMaps[n-1] = nil
		cp.freeMaps = cp.freeMaps[:n-1]
		return dist
	}
	return make(map[netem.NodeID]int32, len(cp.net.Switches))
}

// bfsJob is one missing distance map awaiting its breadth-first pass:
// the cache entry whose (empty) map to fill and the destination's live
// access downlinks to flood from.
type bfsJob struct {
	entry   *distEntry
	sources []*netem.Link
}

// runBFS fills every staged job's distance map — in order on the calling
// thread, or fanned across cfg.Workers goroutines when configured. Each
// job touches only its own map and read-only adjacency, so the filled
// maps are identical either way.
func (cp *ControlPlane) runBFS() {
	jobs := cp.missing
	if len(jobs) == 0 {
		return
	}
	workers := cp.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			cp.frontier, cp.next = cp.bfsInto(j.entry.dist, j.sources, cp.frontier, cp.next)
		}
	} else {
		var idx atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var frontier, next []netem.NodeID
				for {
					i := int(idx.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					frontier, next = cp.bfsInto(jobs[i].entry.dist, jobs[i].sources, frontier, next)
				}
			}()
		}
		wg.Wait()
	}
	for i := range jobs {
		jobs[i] = bfsJob{}
	}
	cp.missing = jobs[:0]
}

// bfsInto fills dist with hop distances from every switch to a
// destination whose live access downlinks are sources (each source's src
// switch is one hop away). Expansion walks the reversed live graph and
// never tunnels through hosts. The frontier scratch is threaded through
// and returned (emptied) so serial callers keep the plane's recycled
// slices and parallel workers keep their own.
func (cp *ControlPlane) bfsInto(dist map[netem.NodeID]int32, sources []*netem.Link, frontier, next []netem.NodeID) ([]netem.NodeID, []netem.NodeID) {
	frontier = frontier[:0]
	for _, l := range sources {
		id := l.Src().ID()
		if _, seen := dist[id]; !seen {
			dist[id] = 1
			frontier = append(frontier, id)
		}
	}
	next = next[:0]
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, l := range cp.in[v] {
				if l.RouteDead() {
					continue
				}
				u := l.Src().ID()
				if cp.isHost[u] {
					continue
				}
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier, next = next, frontier
	}
	return frontier[:0], next[:0]
}

// reconcile computes the equal-cost set of every switch for destination
// dst (host index hostIdx), given the live hop distances, and either
// installs it in place (atomic) or stages it for the switch's scheduled
// flip (staggered). A switch whose computed set matches its healthy
// structural baseline carries no override and falls through to the
// structural fast path.
func (cp *ControlPlane) reconcile(hostIdx int, dst netem.NodeID, dist map[netem.NodeID]int32, staggered bool) {
	for i, sw := range cp.net.Switches {
		f := cp.fibs[i]
		var eq []*netem.Link
		if d, ok := dist[sw.ID()]; ok {
			for _, l := range cp.out[sw.ID()] {
				if l.RouteDead() {
					continue
				}
				to := l.Dst().ID()
				if to == dst {
					if d == 1 {
						eq = append(eq, l)
					}
					continue
				}
				if nd, ok := dist[to]; ok && nd == d-1 {
					eq = append(eq, l)
				}
			}
		}
		if staggered {
			f.stage(dst, eq, cp.healthy[i][hostIdx])
			continue
		}
		if sameLinks(eq, cp.healthy[i][hostIdx]) {
			if f.override != nil {
				delete(f.override, dst)
			}
			continue
		}
		if f.override == nil {
			f.override = make(map[netem.NodeID][]*netem.Link)
		}
		f.override[dst] = eq
	}
}

// sameLinks reports whether two equal-cost sets are identical, element
// for element. Order matters: ECMP hashes index into the slice, and both
// sides derive their order from the builder's wiring order, so a healthy
// prefix compares equal without set arithmetic.
func sameLinks(a, b []*netem.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
