// Package routing is the global routing control plane. Without it,
// reconvergence is link-local: each switch filters its own route-dead
// links out of its equal-cost sets (netem.LiveLinks), but upstream ECMP
// keeps hashing onto next hops that lost their only way forward — a core
// switch whose sole downlink to a pod died still receives that pod's
// traffic and drops it as NoRoute. The control plane closes that gap: it
// owns a wrapped router per switch and, whenever the fault injector
// flips a link's routing state (reconvergence-delayed), recomputes
// global reachability with a breadth-first pass over the live links and
// overrides exactly the (switch, destination) entries whose equal-cost
// sets diverge from the structural fast path.
//
// The recompute is incremental. Hop-distance maps are cached per
// live-attachment signature (all hosts sharing the same set of live
// access switches share one reverse BFS) and stay valid across
// recomputes; a link transition invalidates only the signatures whose
// shortest-path DAG the flipped link can belong to, judged against the
// cached distances (see entryDirty). Destinations whose distances and
// whose switches' equal-cost sets are provably untouched are skipped
// entirely — no BFS, no table reconciliation — which is what makes
// high-churn studies on paper-scale (512-host) topologies cheap. BFS
// scratch (frontier slices, distance maps) is recycled across passes, so
// steady-state reconvergence does not allocate proportionally to the
// network.
//
// The healthy network never pays for the indirection beyond a nil check:
// overrides exist only for destinations whose reachability actually
// changed, every other lookup falls through to the structural router
// (the FatTree's allocation-free addressing-based sets, or the generic
// BFS tables). Recomputes are coalesced — any number of simultaneous
// link transitions (a switch crash kills dozens of ports at one instant)
// trigger exactly one table rebuild, scheduled at the same virtual time
// — and everything is deterministic: the pass iterates hosts and
// switches in builder order, so identical fault schedules yield
// byte-identical routing at any sweep worker count. Incrementality is
// behaviour-neutral by construction (skipped destinations have provably
// unchanged tables); TestIncrementalMatchesFullRecompute asserts this
// against ForceFullRecompute.
package routing

import (
	"bytes"
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ForceFullRecompute, when set, disables the incremental invalidation
// logic: every recompute discards the distance cache and rebuilds every
// destination, exactly like the pre-incremental control plane. It exists
// for the equivalence tests and for benchmarking the incremental win;
// runs must not toggle it concurrently (it is read at recompute time).
var ForceFullRecompute bool

// Mode selects the repair model for a run.
type Mode string

const (
	// Local is the baseline: switches exclude their own route-dead links
	// and nothing else — upstream ECMP stays oblivious.
	Local Mode = "local"
	// Global recomputes reachability network-wide after each
	// (reconvergence-delayed) link state change, so ECMP everywhere
	// steers around paths that cannot reach the destination.
	Global Mode = "global"
)

// ParseMode validates a mode string; empty means Local.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", Local:
		return Local, nil
	case Global:
		return Global, nil
	}
	return "", fmt.Errorf("routing: unknown mode %q (want %q or %q)", s, Local, Global)
}

// Stats reports the control plane's work during a run.
type Stats struct {
	// Recomputes counts global table rebuilds (coalesced: simultaneous
	// link transitions share one).
	Recomputes int
	// LastConvergence is the virtual time of the most recent rebuild.
	LastConvergence sim.Time
	// Overrides is the number of (switch, destination) entries whose
	// equal-cost sets diverge from the structural routers' live-filtered
	// answers after the last rebuild (entries installed only to pin the
	// static baseline are not counted).
	Overrides int

	// DstRecomputed counts destinations whose tables were reconciled
	// across all recomputes, and DstSkipped those proven untouched by
	// the transition batch and skipped outright. Before incremental
	// recompute every rebuild reconciled every destination, i.e.
	// DstSkipped was identically zero.
	DstRecomputed int
	DstSkipped    int
	// BFSRuns counts reverse breadth-first passes actually executed;
	// destinations sharing a live-attachment signature share one, and
	// cached passes from earlier recomputes are reused outright.
	BFSRuns int
}

// table is the per-switch router the control plane installs: overrides
// first, structural fast path otherwise. On a healthy network override
// is nil and every lookup is a nil check plus the base call.
type table struct {
	base     netem.Router
	override map[netem.NodeID][]*netem.Link
}

// NextLinks implements netem.Router.
func (t *table) NextLinks(dst netem.NodeID) []*netem.Link {
	if t.override != nil {
		if eq, ok := t.override[dst]; ok {
			return eq
		}
	}
	return t.base.NextLinks(dst)
}

// flip records one routing-visible link transition for the invalidation
// pass: the link's endpoints and the direction of the change.
type flip struct {
	u, v netem.NodeID // src and dst switch of the flipped link
	dead bool         // true: became route-dead; false: became route-live
}

// distEntry is one cached reverse-BFS result: hop distances from every
// reachable switch to the destinations sharing one live-attachment
// signature. epoch records the recompute that (re)built it.
type distEntry struct {
	dist  map[netem.NodeID]int32
	epoch uint64
}

// ControlPlane owns the wrapped routers of one built network and rebuilds
// their override entries on demand. Create with Install, trigger with
// Invalidate (typically wired to faults.Injector.OnRouteChange).
type ControlPlane struct {
	eng *sim.Engine
	net *topology.Network

	// tables is parallel to net.Switches.
	tables []*table

	// healthy[i][j] is switch i's structural equal-cost set toward host
	// j on the undamaged network, snapshotted at install (builders hand
	// over healthy networks; faults only fire once the engine runs).
	// Reconciliation compares computed sets against these static
	// baselines — not against the live-filtered base lookup — so whether
	// a (switch, destination) override exists depends only on the
	// computed set, which is exactly the property that lets the
	// incremental pass skip destinations its predicate proves untouched.
	healthy [][][]*netem.Link

	// Immutable adjacency, computed once at install.
	out    map[netem.NodeID][]*netem.Link // outgoing links per node
	in     map[netem.NodeID][]*netem.Link // incoming links per node
	isHost map[netem.NodeID]bool

	dirty bool
	// pending accumulates the switch-to-switch link transitions since
	// the last recompute; host-incident transitions never affect switch
	// tables except through the attachment signature, which is
	// recomputed per destination anyway.
	pending []flip
	// fullPending forces the next recompute to invalidate everything
	// (set by Invalidate(nil), the escape hatch for callers that cannot
	// name the changed link).
	fullPending bool

	// distCache maps a destination's live-attachment signature to its
	// cached distance map; entries survive recomputes until a flip
	// invalidates them. hostSig remembers each host's signature as of
	// its last reconciliation, so a host whose attachment changed is
	// reconciled even when its new signature's entry is cached.
	distCache map[string]*distEntry
	hostSig   [][]byte
	epoch     uint64

	// Reusable scratch: recycled distance maps, the two BFS frontier
	// slices, the signature key buffer and the BFS source-link buffer.
	freeMaps []map[netem.NodeID]int32
	frontier []netem.NodeID
	next     []netem.NodeID
	keyBuf   []byte
	srcBuf   []*netem.Link

	// recomputeFn is the cached engine callback (avoids a method-value
	// allocation per coalesced batch).
	recomputeFn func()

	stats Stats
}

// Install wraps every switch's router of the network with a control-plane
// table and returns the plane. Until the first Invalidate the tables are
// pure pass-throughs, so installing on a network that never degrades is
// behaviour-neutral.
func Install(eng *sim.Engine, net *topology.Network) *ControlPlane {
	cp := &ControlPlane{
		eng:       eng,
		net:       net,
		out:       make(map[netem.NodeID][]*netem.Link),
		in:        make(map[netem.NodeID][]*netem.Link),
		isHost:    make(map[netem.NodeID]bool, len(net.Hosts)),
		distCache: make(map[string]*distEntry),
		hostSig:   make([][]byte, len(net.Hosts)),
	}
	for _, l := range net.Links {
		cp.out[l.Src().ID()] = append(cp.out[l.Src().ID()], l)
		cp.in[l.Dst().ID()] = append(cp.in[l.Dst().ID()], l)
	}
	for _, h := range net.Hosts {
		cp.isHost[h.ID()] = true
	}
	cp.tables = make([]*table, 0, len(net.Switches))
	net.WrapRouters(func(sw *netem.Switch, base netem.Router) netem.Router {
		t := &table{base: base}
		cp.tables = append(cp.tables, t)
		return t
	})
	cp.healthy = make([][][]*netem.Link, len(cp.tables))
	for i, t := range cp.tables {
		cp.healthy[i] = make([][]*netem.Link, len(net.Hosts))
		for j, h := range net.Hosts {
			eq := t.base.NextLinks(h.ID())
			cp.healthy[i][j] = append([]*netem.Link(nil), eq...)
		}
	}
	cp.recomputeFn = cp.Recompute
	return cp
}

// Stats returns the work counters.
func (cp *ControlPlane) Stats() Stats { return cp.stats }

// Invalidate marks the tables stale and schedules one recompute at the
// current virtual time. Any number of Invalidate calls before that
// recompute runs coalesce into it — a switch crash that deadens dozens
// of ports at one instant costs a single table rebuild. The flipped link
// (its state already changed) scopes the recompute to the destinations
// it can affect; a nil link conservatively invalidates everything.
func (cp *ControlPlane) Invalidate(l *netem.Link) {
	if l == nil {
		cp.fullPending = true
	} else {
		u, v := l.Src().ID(), l.Dst().ID()
		// Host uplinks never appear in switch tables or distance maps,
		// and switch->host downlinks only matter through the
		// destination's attachment signature: neither needs an
		// invalidation record.
		if !cp.isHost[u] && !cp.isHost[v] {
			cp.pending = append(cp.pending, flip{u: u, v: v, dead: l.RouteDead()})
		}
	}
	if cp.dirty {
		return
	}
	cp.dirty = true
	cp.eng.Schedule(0, cp.recomputeFn)
}

// Recompute rebuilds the override entries invalidated by the transitions
// since the last pass. It is normally reached through Invalidate; tests
// may call it directly (a direct call with no recorded transitions
// re-verifies signatures but reuses every cached distance map).
func (cp *ControlPlane) Recompute() {
	cp.dirty = false
	cp.stats.Recomputes++
	cp.stats.LastConvergence = cp.eng.Now()
	cp.epoch++

	if ForceFullRecompute || cp.fullPending {
		for key, e := range cp.distCache {
			cp.dropEntry(key, e)
		}
	} else if len(cp.pending) > 0 {
		for key, e := range cp.distCache {
			if cp.entryDirty(e) {
				cp.dropEntry(key, e)
			}
		}
	}
	cp.pending = cp.pending[:0]
	cp.fullPending = false

	for i, h := range cp.net.Hosts {
		dst := h.ID()
		// Live-attachment signature: the source switches of the
		// destination's live access downlinks, in builder order. The
		// distance map depends on nothing else.
		cp.keyBuf = cp.keyBuf[:0]
		cp.srcBuf = cp.srcBuf[:0]
		for _, l := range cp.in[dst] {
			if !l.RouteDead() {
				cp.srcBuf = append(cp.srcBuf, l)
				id := l.Src().ID()
				cp.keyBuf = append(cp.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
		}
		e, ok := cp.distCache[string(cp.keyBuf)]
		if !ok {
			e = &distEntry{dist: cp.bfs(cp.srcBuf), epoch: cp.epoch}
			cp.distCache[string(cp.keyBuf)] = e
			cp.stats.BFSRuns++
		}
		// A destination needs reconciling when its distances were
		// rebuilt this pass, or when its attachment signature changed
		// (same cached distances, different access links in the edge
		// switches' equal-cost sets). Otherwise nothing about its
		// tables can have moved and the whole destination is skipped.
		if e.epoch == cp.epoch || !bytes.Equal(cp.keyBuf, cp.hostSig[i]) {
			cp.reconcile(i, dst, e.dist)
			cp.hostSig[i] = append(cp.hostSig[i][:0], cp.keyBuf...)
			cp.stats.DstRecomputed++
		} else {
			cp.stats.DstSkipped++
		}
	}

	live := 0
	for _, t := range cp.tables {
		if len(t.override) == 0 {
			// Fully healed: drop the empty map so the forwarding path
			// returns to the documented nil-check fast path.
			t.override = nil
			continue
		}
		// Count only entries that diverge from the live-filtered
		// structural answer. Reconciliation installs overrides against
		// the static healthy baseline (so override existence is a pure
		// function of the computed set — what makes skipping sound),
		// which also pins entries the live filter would have answered
		// identically; excluding those here keeps the reported metric
		// identical to the pre-incremental control plane's.
		for dst, eq := range t.override {
			if !sameLinks(eq, t.base.NextLinks(dst)) {
				live++
			}
		}
	}
	cp.stats.Overrides = live
}

// dropEntry removes a cached distance map, recycling its storage.
func (cp *ControlPlane) dropEntry(key string, e *distEntry) {
	delete(cp.distCache, key)
	clear(e.dist)
	cp.freeMaps = append(cp.freeMaps, e.dist)
}

// entryDirty reports whether any pending flip can change the entry's
// distances or any equal-cost set derived from them. For a flipped link
// u->v judged against cached distances D (computed before the batch):
//
//   - D[v] absent: the reverse BFS never reaches the link, and v is a
//     switch (host-incident flips are filtered at Invalidate), so it is
//     in no equal-cost set either — unless the link came alive and u was
//     unreachable only for want of it.
//   - Link died: it mattered exactly when it was part of the shortest-
//     path DAG, i.e. D[u] == D[v]+1 (BFS relaxation guarantees
//     D[u] <= D[v]+1 while the link was live, so anything else means a
//     strictly longer detour that no table used).
//   - Link revived: it matters when it offers u a path at least as short
//     as the cached one (D[v]+1 <= D[u], joining or improving the DAG)
//     or when u was unreachable (D[u] absent).
//
// Transitions judged clean one by one compose: removals of non-DAG edges
// cannot lengthen any shortest path, and additions that improve no
// distance individually cannot improve one jointly (a first improved
// node would need an improving edge, contradicting per-edge cleanness).
func (cp *ControlPlane) entryDirty(e *distEntry) bool {
	for _, f := range cp.pending {
		dv, okv := e.dist[f.v]
		if !okv {
			continue
		}
		du, oku := e.dist[f.u]
		if f.dead {
			if oku && du == dv+1 {
				return true
			}
		} else if !oku || dv+1 <= du {
			return true
		}
	}
	return false
}

// bfs returns hop distances from every switch to a destination whose
// live access downlinks are sources (each source's src switch is one hop
// away). Expansion walks the reversed live graph and never tunnels
// through hosts. The returned map and the frontier slices come from the
// plane's recycled scratch.
func (cp *ControlPlane) bfs(sources []*netem.Link) map[netem.NodeID]int32 {
	var dist map[netem.NodeID]int32
	if n := len(cp.freeMaps); n > 0 {
		dist = cp.freeMaps[n-1]
		cp.freeMaps[n-1] = nil
		cp.freeMaps = cp.freeMaps[:n-1]
	} else {
		dist = make(map[netem.NodeID]int32, len(cp.net.Switches))
	}
	frontier := cp.frontier[:0]
	for _, l := range sources {
		id := l.Src().ID()
		if _, seen := dist[id]; !seen {
			dist[id] = 1
			frontier = append(frontier, id)
		}
	}
	next := cp.next[:0]
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, l := range cp.in[v] {
				if l.RouteDead() {
					continue
				}
				u := l.Src().ID()
				if cp.isHost[u] {
					continue
				}
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier, next = next, frontier
	}
	cp.frontier, cp.next = frontier[:0], next[:0]
	return dist
}

// reconcile installs or clears the override entry of every switch for
// destination dst (host index hostIdx), given the live hop distances. A
// switch whose computed set matches its healthy structural baseline
// carries no override and falls through to the structural fast path.
func (cp *ControlPlane) reconcile(hostIdx int, dst netem.NodeID, dist map[netem.NodeID]int32) {
	for i, sw := range cp.net.Switches {
		t := cp.tables[i]
		var eq []*netem.Link
		if d, ok := dist[sw.ID()]; ok {
			for _, l := range cp.out[sw.ID()] {
				if l.RouteDead() {
					continue
				}
				to := l.Dst().ID()
				if to == dst {
					if d == 1 {
						eq = append(eq, l)
					}
					continue
				}
				if nd, ok := dist[to]; ok && nd == d-1 {
					eq = append(eq, l)
				}
			}
		}
		if sameLinks(eq, cp.healthy[i][hostIdx]) {
			if t.override != nil {
				delete(t.override, dst)
			}
			continue
		}
		if t.override == nil {
			t.override = make(map[netem.NodeID][]*netem.Link)
		}
		t.override[dst] = eq
	}
}

// sameLinks reports whether two equal-cost sets are identical, element
// for element. Order matters: ECMP hashes index into the slice, and both
// sides derive their order from the builder's wiring order, so a healthy
// prefix compares equal without set arithmetic.
func sameLinks(a, b []*netem.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
