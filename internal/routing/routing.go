// Package routing is the global routing control plane. Without it,
// reconvergence is link-local: each switch filters its own route-dead
// links out of its equal-cost sets (netem.LiveLinks), but upstream ECMP
// keeps hashing onto next hops that lost their only way forward — a core
// switch whose sole downlink to a pod died still receives that pod's
// traffic and drops it as NoRoute. The control plane closes that gap: it
// owns a wrapped router per switch and, whenever the fault injector
// flips a link's routing state (reconvergence-delayed), recomputes
// global reachability with a breadth-first pass over the live links and
// overrides exactly the (switch, destination) entries whose equal-cost
// sets diverge from the structural fast path.
//
// The healthy network never pays for the indirection beyond a nil check:
// overrides exist only for destinations whose reachability actually
// changed, every other lookup falls through to the structural router
// (the FatTree's allocation-free addressing-based sets, or the generic
// BFS tables). Recomputes are coalesced — any number of simultaneous
// link transitions (a switch crash kills dozens of ports at one instant)
// trigger exactly one table rebuild, scheduled at the same virtual time
// — and everything is deterministic: the pass iterates hosts and
// switches in builder order, so identical fault schedules yield
// byte-identical routing at any sweep worker count.
package routing

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Mode selects the repair model for a run.
type Mode string

const (
	// Local is the baseline: switches exclude their own route-dead links
	// and nothing else — upstream ECMP stays oblivious.
	Local Mode = "local"
	// Global recomputes reachability network-wide after each
	// (reconvergence-delayed) link state change, so ECMP everywhere
	// steers around paths that cannot reach the destination.
	Global Mode = "global"
)

// ParseMode validates a mode string; empty means Local.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", Local:
		return Local, nil
	case Global:
		return Global, nil
	}
	return "", fmt.Errorf("routing: unknown mode %q (want %q or %q)", s, Local, Global)
}

// Stats reports the control plane's work during a run.
type Stats struct {
	// Recomputes counts global table rebuilds (coalesced: simultaneous
	// link transitions share one).
	Recomputes int
	// LastConvergence is the virtual time of the most recent rebuild.
	LastConvergence sim.Time
	// Overrides is the number of (switch, destination) entries diverging
	// from the structural routers after the last rebuild.
	Overrides int
}

// table is the per-switch router the control plane installs: overrides
// first, structural fast path otherwise. On a healthy network override
// is nil and every lookup is a nil check plus the base call.
type table struct {
	base     netem.Router
	override map[netem.NodeID][]*netem.Link
}

// NextLinks implements netem.Router.
func (t *table) NextLinks(dst netem.NodeID) []*netem.Link {
	if t.override != nil {
		if eq, ok := t.override[dst]; ok {
			return eq
		}
	}
	return t.base.NextLinks(dst)
}

// ControlPlane owns the wrapped routers of one built network and rebuilds
// their override entries on demand. Create with Install, trigger with
// Invalidate (typically wired to faults.Injector.OnRouteChange).
type ControlPlane struct {
	eng *sim.Engine
	net *topology.Network

	// tables is parallel to net.Switches.
	tables []*table

	// Immutable adjacency, computed once at install.
	out    map[netem.NodeID][]*netem.Link // outgoing links per node
	in     map[netem.NodeID][]*netem.Link // incoming links per node
	isHost map[netem.NodeID]bool

	dirty bool
	stats Stats
}

// Install wraps every switch's router of the network with a control-plane
// table and returns the plane. Until the first Invalidate the tables are
// pure pass-throughs, so installing on a network that never degrades is
// behaviour-neutral.
func Install(eng *sim.Engine, net *topology.Network) *ControlPlane {
	cp := &ControlPlane{
		eng:    eng,
		net:    net,
		out:    make(map[netem.NodeID][]*netem.Link),
		in:     make(map[netem.NodeID][]*netem.Link),
		isHost: make(map[netem.NodeID]bool, len(net.Hosts)),
	}
	for _, l := range net.Links {
		cp.out[l.Src().ID()] = append(cp.out[l.Src().ID()], l)
		cp.in[l.Dst().ID()] = append(cp.in[l.Dst().ID()], l)
	}
	for _, h := range net.Hosts {
		cp.isHost[h.ID()] = true
	}
	cp.tables = make([]*table, 0, len(net.Switches))
	net.WrapRouters(func(sw *netem.Switch, base netem.Router) netem.Router {
		t := &table{base: base}
		cp.tables = append(cp.tables, t)
		return t
	})
	return cp
}

// Stats returns the work counters.
func (cp *ControlPlane) Stats() Stats { return cp.stats }

// Invalidate marks the tables stale and schedules one recompute at the
// current virtual time. Any number of Invalidate calls before that
// recompute runs coalesce into it — a switch crash that deadens dozens
// of ports at one instant costs a single table rebuild.
func (cp *ControlPlane) Invalidate() {
	if cp.dirty {
		return
	}
	cp.dirty = true
	cp.eng.Schedule(0, cp.Recompute)
}

// Recompute rebuilds every override entry from the live link state. It
// is normally reached through Invalidate; tests may call it directly.
func (cp *ControlPlane) Recompute() {
	cp.dirty = false
	cp.stats.Recomputes++
	cp.stats.LastConvergence = cp.eng.Now()

	// Distances from every switch to the destination are fully
	// determined by which of the destination's access downlinks are
	// route-live, so hosts sharing a live attachment signature (all
	// single-homed hosts under one edge switch, typically) share one BFS.
	cache := make(map[string]map[netem.NodeID]int32)
	var keyBuf []byte
	for _, h := range cp.net.Hosts {
		dst := h.ID()
		keyBuf = keyBuf[:0]
		var sources []*netem.Link
		for _, l := range cp.in[dst] {
			if !l.RouteDead() {
				sources = append(sources, l)
				id := l.Src().ID()
				keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
		}
		dist, ok := cache[string(keyBuf)]
		if !ok {
			dist = cp.bfs(sources)
			cache[string(keyBuf)] = dist
		}
		cp.reconcile(dst, dist)
	}

	live := 0
	for _, t := range cp.tables {
		if len(t.override) == 0 {
			// Fully healed: drop the empty map so the forwarding path
			// returns to the documented nil-check fast path.
			t.override = nil
			continue
		}
		live += len(t.override)
	}
	cp.stats.Overrides = live
}

// bfs returns hop distances from every switch to a destination whose
// live access downlinks are sources (each source's src switch is one hop
// away). Expansion walks the reversed live graph and never tunnels
// through hosts.
func (cp *ControlPlane) bfs(sources []*netem.Link) map[netem.NodeID]int32 {
	dist := make(map[netem.NodeID]int32, len(cp.net.Switches))
	var frontier []netem.NodeID
	for _, l := range sources {
		id := l.Src().ID()
		if _, seen := dist[id]; !seen {
			dist[id] = 1
			frontier = append(frontier, id)
		}
	}
	for len(frontier) > 0 {
		var next []netem.NodeID
		for _, v := range frontier {
			for _, l := range cp.in[v] {
				if l.RouteDead() {
					continue
				}
				u := l.Src().ID()
				if cp.isHost[u] {
					continue
				}
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

// reconcile installs or clears the override entry of every switch for
// destination dst, given the live hop distances.
func (cp *ControlPlane) reconcile(dst netem.NodeID, dist map[netem.NodeID]int32) {
	for i, sw := range cp.net.Switches {
		t := cp.tables[i]
		var eq []*netem.Link
		if d, ok := dist[sw.ID()]; ok {
			for _, l := range cp.out[sw.ID()] {
				if l.RouteDead() {
					continue
				}
				to := l.Dst().ID()
				if to == dst {
					if d == 1 {
						eq = append(eq, l)
					}
					continue
				}
				if nd, ok := dist[to]; ok && nd == d-1 {
					eq = append(eq, l)
				}
			}
		}
		if sameLinks(eq, t.base.NextLinks(dst)) {
			if t.override != nil {
				delete(t.override, dst)
			}
			continue
		}
		if t.override == nil {
			t.override = make(map[netem.NodeID][]*netem.Link)
		}
		t.override[dst] = eq
	}
}

// sameLinks reports whether two equal-cost sets are identical, element
// for element. Order matters: ECMP hashes index into the slice, and both
// sides derive their order from the builder's wiring order, so a healthy
// prefix compares equal without set arithmetic.
func sameLinks(a, b []*netem.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
