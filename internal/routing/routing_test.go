package routing

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// buildFatTree returns a K=4 FatTree (16 hosts, 8 edge + 8 agg + 4 core
// switches) with a control plane installed.
func buildFatTree(eng *sim.Engine) (*topology.Network, *ControlPlane) {
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	cp, err := Install(eng, &ft.Network, Config{})
	if err != nil {
		panic(err)
	}
	return &ft.Network, cp
}

// install wires a fault plan to the control plane the way run.go does.
func install(t *testing.T, eng *sim.Engine, net *topology.Network, cp *ControlPlane, cfg faults.Config) *faults.Injector {
	t.Helper()
	inj, err := faults.Install(eng, faults.Target{
		Links: net.Links, Switches: net.Switches, SwitchLayers: net.SwitchLayers,
	}, cfg, sim.NewRNG(1), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	inj.OnRouteChange = cp.Invalidate
	net.SetDegraded(inj.Degraded)
	return inj
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": Local, "local": Local, "global": Global} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestHealthyRecomputeInstallsNoOverrides locks in the fast-path
// guarantee: on an undamaged network the BFS pass agrees with every
// structural router exactly, so a recompute leaves zero overrides and
// forwarding identical to the base.
func TestHealthyRecomputeInstallsNoOverrides(t *testing.T) {
	eng := sim.NewEngine()
	net, cp := buildFatTree(eng)
	cp.Recompute()
	st := cp.Stats()
	if st.Recomputes != 1 || st.Overrides != 0 {
		t.Fatalf("healthy recompute: %+v, want 1 recompute and 0 overrides", st)
	}
	// Spot-check forwarding: every switch still yields non-empty sets
	// for every host.
	for _, sw := range net.Switches {
		for _, h := range net.Hosts {
			if len(sw.Router().NextLinks(h.ID())) == 0 {
				t.Fatalf("switch %d has no route to host %d after healthy recompute", sw.ID(), h.ID())
			}
		}
	}
}

// TestGlobalReconvergenceStopsUpstreamHashing is the subsystem's reason
// to exist: after agg(0,0)-core0 dies, core 0 cannot reach pod 0, and
// with only local repair the aggregation switches of other pods keep
// hashing pod-0 traffic onto core 0 (NoRoute at the core). The control
// plane must remove core 0 from their equal-cost sets for pod-0
// destinations — and nothing else.
func TestGlobalReconvergenceStopsUpstreamHashing(t *testing.T) {
	eng := sim.NewEngine()
	net, cp := buildFatTree(eng)
	// Switch ordinals: 0-7 edges, 8-15 aggs (pod p local a = 8+2p+a),
	// 16-19 cores. Cable 0 at the agg layer is agg(0,0)<->core0.
	agg10 := net.Switches[8+2*1+0] // pod 1, local index 0: uplinks to cores 0 and 1
	core0 := net.Switches[16]
	dstPod0 := net.Hosts[0].ID()
	dstPod1 := net.Hosts[4].ID()

	if n := len(agg10.Router().NextLinks(dstPod0)); n != 2 {
		t.Fatalf("healthy agg(1,0) has %d uplinks toward pod 0, want 2", n)
	}
	install(t, eng, net, cp, faults.Config{
		Events: faults.FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 0),
	})
	eng.RunUntil(20 * sim.Millisecond)

	eq := agg10.Router().NextLinks(dstPod0)
	if len(eq) != 1 {
		t.Fatalf("agg(1,0) equal-cost set toward pod 0 = %d links, want 1 (core 0 excluded)", len(eq))
	}
	if eq[0].Dst().ID() == core0.ID() {
		t.Fatal("agg(1,0) still routes pod-0 traffic via core 0, which lost its pod-0 downlink")
	}
	// Traffic toward pods core 0 can still reach is untouched: pod-1
	// destinations keep both uplinks at agg(2,0).
	agg20 := net.Switches[8+2*2+0]
	if n := len(agg20.Router().NextLinks(dstPod1)); n != 2 {
		t.Fatalf("agg(2,0) toward pod 1 = %d links, want 2 (core 0 is still fine there)", n)
	}
	st := cp.Stats()
	if st.Recomputes != 1 {
		t.Errorf("recomputes = %d, want 1 (both directions of the cable die at one instant)", st.Recomputes)
	}
	if st.Overrides == 0 {
		t.Error("no overrides installed despite changed reachability")
	}
	if st.LastConvergence != 10*sim.Millisecond {
		t.Errorf("last convergence at %v, want 10ms (instant reconvergence)", st.LastConvergence)
	}
	// The live path count shrank for pod-0 destinations: only 3 of the
	// 4 agg->core->agg paths survive from pod 1.
	if got := net.PathCount(dstPod1, dstPod0); got != 3 {
		t.Errorf("live path count pod1->pod0 = %d, want 3", got)
	}
}

// TestRecomputeCoalescing crashes a core switch — which deadens every
// port at one instant — and expects exactly one recompute for the crash
// and one for the restart, not one per port.
func TestRecomputeCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	net, cp := buildFatTree(eng)
	install(t, eng, net, cp, faults.Config{
		Events:          faults.FailSwitches([]int{16}, 10*sim.Millisecond, 50*sim.Millisecond),
		ReconvergeDelay: 5 * sim.Millisecond,
	})
	eng.Run()
	st := cp.Stats()
	if st.Recomputes != 2 {
		t.Errorf("recomputes = %d, want 2 (crash + restart, coalesced over 8 ports)", st.Recomputes)
	}
	if st.Overrides != 0 {
		t.Errorf("overrides = %d after full restart, want 0", st.Overrides)
	}
	if !cpCleared(cp) {
		t.Error("override maps not empty after the network healed")
	}
}

// cpCleared reports whether every table's override map is empty.
func cpCleared(cp *ControlPlane) bool {
	for _, tab := range cp.fibs {
		if len(tab.override) != 0 {
			return false
		}
	}
	return true
}

// TestGlobalLivenessAfterFaults verifies the liveness contract on every
// topology family: after a fault that does not physically partition the
// tested pair, a recomputed control plane still offers a positive live
// path count (and forwarding sets all the way to the destination).
func TestGlobalLivenessAfterFaults(t *testing.T) {
	cases := []struct {
		name     string
		build    func(eng *sim.Engine) *topology.Network
		cfg      faults.Config
		src, dst int
	}{
		{
			name: "fattree/single-link",
			build: func(eng *sim.Engine) *topology.Network {
				ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
				return &ft.Network
			},
			cfg: faults.Config{Events: faults.FailCables(netem.LayerAgg, 1, sim.Millisecond, 0)},
			src: 4, dst: 0,
		},
		{
			name: "fattree/switch-crash",
			build: func(eng *sim.Engine) *topology.Network {
				ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
				return &ft.Network
			},
			// Crash one core and one aggregation switch.
			cfg: faults.Config{Events: faults.FailSwitches([]int{16, 8}, sim.Millisecond, 0)},
			src: 4, dst: 0,
		},
		{
			name: "fattree/correlated-group",
			build: func(eng *sim.Engine) *topology.Network {
				ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
				return &ft.Network
			},
			// Both uplink cables of agg(0,0) die together (a line card).
			cfg: faults.Config{Model: faults.Model{
				Groups:  []faults.GroupModel{{Layer: netem.LayerAgg, Size: 2, MTBF: 2 * sim.Millisecond, MTTR: 10 * sim.Second}},
				Horizon: 4 * sim.Millisecond,
			}},
			src: 4, dst: 0,
		},
		{
			name: "vl2/single-link",
			build: func(eng *sim.Engine) *topology.Network {
				v := topology.NewVL2(eng, topology.VL2Config{DA: 4, DI: 2, HostsPerToR: 2, Link: topology.DefaultLinkConfig()})
				return &v.Network
			},
			cfg: faults.Config{Events: faults.FailCables(netem.LayerEdge, 1, sim.Millisecond, 0)},
			src: 2, dst: 0,
		},
		{
			name: "vl2/switch-crash",
			build: func(eng *sim.Engine) *topology.Network {
				v := topology.NewVL2(eng, topology.VL2Config{DA: 4, DI: 2, HostsPerToR: 2, Link: topology.DefaultLinkConfig()})
				return &v.Network
			},
			// Crash one intermediate switch (ToRs 0-7, aggs 8-11, ints 12-13).
			cfg: faults.Config{Events: faults.FailSwitches([]int{12}, sim.Millisecond, 0)},
			src: 2, dst: 0,
		},
		{
			name: "dumbbell/host-link",
			build: func(eng *sim.Engine) *topology.Network {
				d := topology.NewDumbbell(eng, topology.DumbbellConfig{HostsPerSide: 3, Link: topology.DefaultLinkConfig()})
				return &d.Network
			},
			// Host 1's access cable (host-layer links 2 and 3) dies;
			// host 0 <-> host 3 is untouched.
			cfg: faults.Config{Events: []faults.Event{
				{At: sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 2},
				{At: sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 3},
			}, ReconvergeDelay: sim.Millisecond},
			src: 0, dst: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			net := tc.build(eng)
			cp, err := Install(eng, net, Config{})
			if err != nil {
				t.Fatal(err)
			}
			install(t, eng, net, cp, tc.cfg)
			eng.RunUntil(100 * sim.Millisecond)
			if cp.Stats().Recomputes == 0 {
				t.Fatal("fault plan triggered no recompute")
			}
			src, dst := net.Hosts[tc.src].ID(), net.Hosts[tc.dst].ID()
			if physicallyConnected(net, src, dst) && net.PathCount(src, dst) <= 0 {
				t.Fatalf("pair %d->%d physically connected but live path count is 0", tc.src, tc.dst)
			}
			// The stronger contract, checked pairwise across the whole
			// network against an independent BFS: the control plane finds
			// a route exactly when the live graph has one.
			for _, hs := range net.Hosts {
				for _, hd := range net.Hosts {
					if hs == hd {
						continue
					}
					want := physicallyConnected(net, hs.ID(), hd.ID())
					got := net.PathCount(hs.ID(), hd.ID()) > 0
					if got != want {
						t.Fatalf("pair %d->%d: live path count says reachable=%t, independent BFS says %t",
							hs.ID(), hd.ID(), got, want)
					}
				}
			}
		})
	}
}

// physicallyConnected is an independent forward BFS over route-live
// links (never tunnelling through other hosts), used as ground truth for
// the control plane's reachability.
func physicallyConnected(net *topology.Network, src, dst netem.NodeID) bool {
	out := make(map[netem.NodeID][]*netem.Link)
	for _, l := range net.Links {
		if !l.RouteDead() {
			out[l.Src().ID()] = append(out[l.Src().ID()], l)
		}
	}
	isHost := make(map[netem.NodeID]bool)
	for _, h := range net.Hosts {
		isHost[h.ID()] = true
	}
	seen := map[netem.NodeID]bool{src: true}
	frontier := []netem.NodeID{src}
	for len(frontier) > 0 {
		var next []netem.NodeID
		for _, v := range frontier {
			for _, l := range out[v] {
				u := l.Dst().ID()
				if u == dst {
					return true
				}
				if seen[u] || isHost[u] {
					continue
				}
				seen[u] = true
				next = append(next, u)
			}
		}
		frontier = next
	}
	return false
}

// TestDumbbellHostLinkOverride pins down the sharper global-repair
// property on the dumbbell: once host 1's access cable is dead, the left
// switch's equal-cost set for host 1 must become empty at the *right*
// switch too (it learns the destination is gone), so cross-bottleneck
// traffic to a dead host dies at the first switch instead of crossing
// the shared bottleneck first.
func TestDumbbellHostLinkOverride(t *testing.T) {
	eng := sim.NewEngine()
	d := topology.NewDumbbell(eng, topology.DumbbellConfig{HostsPerSide: 3, Link: topology.DefaultLinkConfig()})
	net := &d.Network
	cp, err := Install(eng, net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Host-layer cable 1 (links 2 and 3) is host 1's access pair.
	install(t, eng, net, cp, faults.Config{Events: []faults.Event{
		{At: sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 2},
		{At: sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 3},
	}})
	eng.RunUntil(10 * sim.Millisecond)
	right := net.Switches[1]
	if n := len(right.Router().NextLinks(net.Hosts[0].ID())); n == 0 {
		t.Fatal("right switch lost its route to a healthy host")
	}
	if eq := right.Router().NextLinks(net.Hosts[1].ID()); len(eq) != 0 {
		t.Fatalf("right switch still forwards toward dead host 1 (%d links)", len(eq))
	}
}

// TestIncrementalSkipsUntouchedDestinations pins down the incremental
// win on the cheapest possible fault: a host access cable only affects
// its own destination, so the second such failure must recompute exactly
// one destination and skip every other, reusing every cached BFS.
func TestIncrementalSkipsUntouchedDestinations(t *testing.T) {
	eng := sim.NewEngine()
	net, cp := buildFatTree(eng)
	hosts := len(net.Hosts) // 16 on the K=4 tree
	install(t, eng, net, cp, faults.Config{Events: []faults.Event{
		// Host 0's access cable (host-layer links 0 and 1) at 10ms...
		{At: 10 * sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 0},
		{At: 10 * sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 1},
		// ...then host 1's (links 2 and 3) at 20ms.
		{At: 20 * sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 2},
		{At: 20 * sim.Millisecond, Kind: faults.LinkDown, Layer: netem.LayerHost, Index: 3},
	}})
	eng.RunUntil(30 * sim.Millisecond)
	st := cp.Stats()
	if st.Recomputes != 2 {
		t.Fatalf("recomputes = %d, want 2", st.Recomputes)
	}
	// First recompute is cold (every destination reconciled); the second
	// touches only host 1 — host flips invalidate nothing switch-side,
	// and host 1's new empty-attachment signature is already cached from
	// host 0's failure.
	if want := hosts + 1; st.DstRecomputed != want {
		t.Errorf("DstRecomputed = %d, want %d (cold pass + host 1 only)", st.DstRecomputed, want)
	}
	if want := hosts - 1; st.DstSkipped != want {
		t.Errorf("DstSkipped = %d, want %d", st.DstSkipped, want)
	}
	// 8 edge signatures + the empty signature on the cold pass; zero new
	// BFS work on the second.
	if st.BFSRuns != 9 {
		t.Errorf("BFSRuns = %d, want 9", st.BFSRuns)
	}
	// And the tables are still right: nobody forwards toward dead host 0.
	for _, sw := range net.Switches {
		if eq := sw.Router().NextLinks(net.Hosts[0].ID()); len(eq) != 0 {
			t.Fatalf("switch %d still forwards toward dead host 0", sw.ID())
		}
	}
}

// snapshotTables captures every (switch, destination) equal-cost set the
// control plane currently answers with.
func snapshotTables(net *topology.Network) [][][]*netem.Link {
	out := make([][][]*netem.Link, len(net.Switches))
	for i, sw := range net.Switches {
		out[i] = make([][]*netem.Link, len(net.Hosts))
		for j, h := range net.Hosts {
			eq := sw.Router().NextLinks(h.ID())
			out[i][j] = append([]*netem.Link(nil), eq...)
		}
	}
	return out
}

func tablesEqual(a, b [][][]*netem.Link) bool {
	for i := range a {
		for j := range a[i] {
			if len(a[i][j]) != len(b[i][j]) {
				return false
			}
			for k := range a[i][j] {
				if a[i][j][k] != b[i][j][k] {
					return false
				}
			}
		}
	}
	return true
}

// TestIncrementalMatchesFullRecompute is the equivalence torture test:
// random route-dead flips (kills and revivals, switch fabric and host
// access links alike) drive the incremental control plane, and after
// every coalesced batch the resulting tables must match a forced full
// rebuild bit for bit. This is the invariant that makes incremental
// recompute safe to ship without an opt-out.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	builders := map[string]func(eng *sim.Engine) *topology.Network{
		"fattree": func(eng *sim.Engine) *topology.Network {
			ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
			return &ft.Network
		},
		"vl2": func(eng *sim.Engine) *topology.Network {
			v := topology.NewVL2(eng, topology.VL2Config{DA: 4, DI: 2, HostsPerToR: 2, Link: topology.DefaultLinkConfig()})
			return &v.Network
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			net := build(eng)
			cp, err := Install(eng, net, Config{})
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(7)
			dead := make(map[*netem.Link]bool)
			for round := 0; round < 60; round++ {
				// Flip a random batch of links (1-4), biased toward
				// killing on even rounds and reviving on odd ones so the
				// network wanders through partial-failure states.
				batch := 1 + rng.Intn(4)
				for i := 0; i < batch; i++ {
					l := net.Links[rng.Intn(len(net.Links))]
					next := !dead[l]
					dead[l] = next
					l.SetRouteDead(next)
					cp.Invalidate(l)
				}
				// Fire the coalesced recompute.
				eng.Run()
				got := snapshotTables(net)
				// Force the pre-incremental behaviour on the same plane:
				// drop every cached distance and rebuild everything.
				ForceFullRecompute = true
				cp.Recompute()
				ForceFullRecompute = false
				want := snapshotTables(net)
				if !tablesEqual(got, want) {
					t.Fatalf("round %d: incremental tables diverge from full recompute", round)
				}
			}
		})
	}
}

// TestStaggeredFlipsSpreadByDistance drives the per-switch convergence
// model at unit level. Killing the agg(0,0)<->core0 cable with a 1ms
// per-hop delay must flip the seeds (agg(0,0), core 0) at recompute
// time, but the aggregation switches of the other pods — one hop from
// core 0 — keep serving their stale 2-uplink sets toward pod 0 for
// another millisecond, with the transient window open exactly that
// long.
func TestStaggeredFlipsSpreadByDistance(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	net := &ft.Network
	cp, err := Install(eng, net, Config{Convergence: Staggered, PerHopDelay: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	install(t, eng, net, cp, faults.Config{
		Events: faults.FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 0),
	})
	agg10 := net.Switches[8+2*1+0] // pod 1, local index 0: uplinks to cores 0 and 1
	core0 := net.Switches[16]
	dstPod0 := net.Hosts[0].ID()

	type probe struct {
		aggSet, coreSet     int
		aggStale, coreStale bool
		coreEpoch           uint64
		transient           bool
	}
	sample := func() probe {
		avr := agg10.Router().(netem.VersionedRouter)
		cvr := core0.Router().(netem.VersionedRouter)
		return probe{
			aggSet:    len(agg10.Router().NextLinks(dstPod0)),
			coreSet:   len(core0.Router().NextLinks(dstPod0)),
			aggStale:  avr.Stale(),
			coreStale: cvr.Stale(),
			coreEpoch: cvr.Epoch(),
			transient: avr.Transient(),
		}
	}
	var during, after probe
	eng.At(10*sim.Millisecond+sim.Microsecond, func() { during = sample() })
	eng.At(11*sim.Millisecond+sim.Microsecond, func() { after = sample() })
	eng.RunUntil(20 * sim.Millisecond)

	// Mid-window: core 0 (a seed, distance 0) flipped inline at
	// recompute time — its pod-0 set is already the recomputed 3-link
	// detour down into the other pods and back up via the surviving
	// cores, its epoch advanced, and it is not stale. agg(1,0) — one
	// hop out — still serves both uplinks from its old epoch and knows
	// it is stale.
	if during.coreEpoch != 1 || during.coreStale {
		t.Errorf("core 0 mid-window: epoch=%d stale=%t, want flipped at distance 0", during.coreEpoch, during.coreStale)
	}
	if during.coreSet != 3 {
		t.Errorf("core 0 set toward pod 0 mid-window = %d links, want the 3-link detour", during.coreSet)
	}
	if during.aggSet != 2 || !during.aggStale || !during.transient {
		t.Errorf("agg(1,0) mid-window = %+v, want stale 2-link set inside an open window", during)
	}
	// Window closed: agg(1,0) converged onto core 1 only.
	if after.aggSet != 1 || after.aggStale || after.transient {
		t.Errorf("agg(1,0) after window = %+v, want fresh 1-link set, window closed", after)
	}
	st := cp.Stats()
	if st.FirstFlip != 10*sim.Millisecond || st.LastFlip != 11*sim.Millisecond {
		t.Errorf("flip spread [%v, %v], want [10ms, 11ms]", st.FirstFlip, st.LastFlip)
	}
	if st.TransientTime != sim.Millisecond {
		t.Errorf("transient window = %v, want 1ms", st.TransientTime)
	}
	if st.Flips == 0 {
		t.Error("no per-switch flips recorded")
	}
	if vr := agg10.Router().(netem.VersionedRouter); vr.Epoch() != 1 {
		t.Errorf("agg(1,0) epoch = %d, want 1 (one applied flip)", vr.Epoch())
	}
	// The staggered tables must land exactly where an atomic plane
	// lands: a forced full rebuild changes nothing.
	got := snapshotTables(net)
	ForceFullRecompute = true
	cp.Recompute()
	ForceFullRecompute = false
	if !tablesEqual(got, snapshotTables(net)) {
		t.Error("staggered tables diverge from a full atomic rebuild after the window closed")
	}
}

// TestStaggeredZeroDelayFlipsInline pins the degenerate case the
// public equivalence suite relies on: with PerHopDelay zero, staggered
// convergence applies every flip inline at recompute time — no window,
// no scheduled events, tables bit-identical to atomic.
func TestStaggeredZeroDelayFlipsInline(t *testing.T) {
	engA, engS := sim.NewEngine(), sim.NewEngine()
	ftA := topology.NewFatTree(engA, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	ftS := topology.NewFatTree(engS, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	cpA, err := Install(engA, &ftA.Network, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cpS, err := Install(engS, &ftS.Network, Config{Convergence: Staggered})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.Config{Events: faults.FailCables(netem.LayerAgg, 2, 10*sim.Millisecond, 30*sim.Millisecond)}
	install(t, engA, &ftA.Network, cpA, cfg)
	install(t, engS, &ftS.Network, cpS, cfg)
	for _, at := range []sim.Time{20 * sim.Millisecond, 40 * sim.Millisecond} {
		engA.RunUntil(at)
		engS.RunUntil(at)
		// Same link pointers cannot be compared across two networks;
		// compare set sizes switch by switch, destination by destination.
		a, s := snapshotTables(&ftA.Network), snapshotTables(&ftS.Network)
		for i := range a {
			for j := range a[i] {
				if len(a[i][j]) != len(s[i][j]) {
					t.Fatalf("at %v: switch %d dst %d: atomic %d links, staggered-0 %d",
						at, i, j, len(a[i][j]), len(s[i][j]))
				}
			}
		}
	}
	if st := cpS.Stats(); st.TransientTime != 0 {
		t.Errorf("zero-delay staggered opened a %v transient window", st.TransientTime)
	}
}

// TestFlapStormDamping is the hold-down satellite: a cable flapping
// every millisecond must stop triggering recomputes once it crosses the
// flap threshold, its pending transitions folding into one deferred
// rebuild at window expiry — and the final tables must still be exactly
// right.
func TestFlapStormDamping(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	net := &ft.Network
	cp, err := Install(eng, net, Config{HoldDown: 50 * sim.Millisecond, FlapThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cable 0 at the agg layer flaps down/up every millisecond,
	// 25 cycles: 50 routing transitions per direction.
	var events []faults.Event
	for i := 0; i < 25; i++ {
		down := sim.Time(10+2*i) * sim.Millisecond
		events = append(events, cableEvents(faults.LinkDown, down)...)
		events = append(events, cableEvents(faults.LinkUp, down+sim.Millisecond)...)
	}
	install(t, eng, net, cp, faults.Config{Events: events})
	eng.RunUntil(200 * sim.Millisecond)

	st := cp.Stats()
	// Undamped, every one of the 50 transition instants would recompute.
	// With threshold 3 the first three instants rebuild immediately and
	// everything after defers into the hold-down expiry.
	if st.Recomputes > 6 {
		t.Errorf("flap storm caused %d recomputes, want <= 6 (damped)", st.Recomputes)
	}
	if st.Recomputes < 4 {
		t.Errorf("recomputes = %d, want >= 4 (3 immediate + deferred)", st.Recomputes)
	}
	if st.Damped < 40 {
		t.Errorf("only %d transitions damped, want >= 40", st.Damped)
	}
	// The cable ended up: tables must be fully healed.
	if st.Overrides != 0 || !cpCleared(cp) {
		t.Errorf("overrides = %d after the flapping cable healed, want 0", st.Overrides)
	}
	got := snapshotTables(net)
	ForceFullRecompute = true
	cp.Recompute()
	ForceFullRecompute = false
	if !tablesEqual(got, snapshotTables(net)) {
		t.Error("damped tables diverge from a full rebuild")
	}
}

// TestFlapTrailingWindow pins the damping predicate's exact trailing-
// window semantics: the link is damped iff more than FlapThreshold
// transitions landed within the last HoldDown, regardless of where a
// fixed window would have reset. Transitions at 10/55/58/62/65ms with a
// 50ms window and threshold 3: the window ending at 62ms holds only
// three recent transitions (10ms has aged out), but the one ending at
// 65ms holds four — a resetting counter (restarted at 62ms) would miss
// it forever.
func TestFlapTrailingWindow(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	net := &ft.Network
	cp, err := Install(eng, net, Config{HoldDown: 50 * sim.Millisecond, FlapThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := net.LinksAtLayer(netem.LayerAgg)[0]
	for _, at := range []sim.Time{10, 55, 58, 62, 65} {
		eng.At(at*sim.Millisecond, func() {
			l.SetRouteDead(!l.RouteDead())
			cp.Invalidate(l)
		})
	}
	var dampedAt62, dampedAt65 int
	eng.At(63*sim.Millisecond, func() { dampedAt62 = cp.Stats().Damped })
	eng.At(66*sim.Millisecond, func() { dampedAt65 = cp.Stats().Damped })
	eng.RunUntil(200 * sim.Millisecond)
	if dampedAt62 != 0 {
		t.Errorf("damped after 62ms = %d, want 0 (only 3 transitions in the trailing window)", dampedAt62)
	}
	if dampedAt65 != 1 {
		t.Errorf("damped after 65ms = %d, want 1 (4 transitions within 50ms)", dampedAt65)
	}
}

// TestDampedHostLinkStillReconverges pins the hold-down expiry path for
// host-incident transitions: a damped host access cable leaves nothing
// in the switch-to-switch flip log, so the deferred rebuild must key
// off the recorded seeds — otherwise the fabric keeps forwarding toward
// a host that died mid-flap forever.
func TestDampedHostLinkStillReconverges(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	net := &ft.Network
	cp, err := Install(eng, net, Config{HoldDown: 50 * sim.Millisecond, FlapThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Host 0's access cable (host-layer links 0 and 1) flaps
	// down/up/down; the third transition per link crosses the threshold
	// and is damped, and the cable stays dead.
	hostCable := func(kind faults.Kind, at sim.Time) []faults.Event {
		return []faults.Event{
			{At: at, Kind: kind, Layer: netem.LayerHost, Index: 0},
			{At: at, Kind: kind, Layer: netem.LayerHost, Index: 1},
		}
	}
	var events []faults.Event
	events = append(events, hostCable(faults.LinkDown, 10*sim.Millisecond)...)
	events = append(events, hostCable(faults.LinkUp, 11*sim.Millisecond)...)
	events = append(events, hostCable(faults.LinkDown, 12*sim.Millisecond)...)
	install(t, eng, net, cp, faults.Config{Events: events})
	eng.RunUntil(200 * sim.Millisecond)

	st := cp.Stats()
	if st.Damped == 0 {
		t.Fatal("the third flap was not damped; scenario exercises nothing")
	}
	// The deferred rebuild must have consumed the damped transitions:
	// nobody forwards toward dead host 0 any more.
	for _, sw := range net.Switches {
		if eq := sw.Router().NextLinks(net.Hosts[0].ID()); len(eq) != 0 {
			t.Fatalf("switch %d still forwards toward dead host 0 after hold-down expiry (%d links)", sw.ID(), len(eq))
		}
	}
	got := snapshotTables(net)
	ForceFullRecompute = true
	cp.Recompute()
	ForceFullRecompute = false
	if !tablesEqual(got, snapshotTables(net)) {
		t.Error("tables after the deferred rebuild diverge from a full rebuild")
	}
}

// TestRestagedFlipKeepsItsOwnSchedule pins the flip-event supersession
// rule: when a switch with a flip already in flight is re-staged by a
// later batch, the new target must land at the new batch's flip time —
// the superseded event fires off-schedule and must not install the
// fresher table early.
func TestRestagedFlipKeepsItsOwnSchedule(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	net := &ft.Network
	cp, err := Install(eng, net, Config{Convergence: Staggered, PerHopDelay: 5 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Kill both directions of the cable between the given switches.
	kill := func(a, b *netem.Switch) {
		for _, l := range net.Links {
			if (l.Src() == a && l.Dst() == b) || (l.Src() == b && l.Dst() == a) {
				l.SetRouteDead(true)
				cp.Invalidate(l)
			}
		}
	}
	agg00, agg10, agg20 := net.Switches[8], net.Switches[10], net.Switches[12]
	core0, core1 := net.Switches[16], net.Switches[17]
	// Batch 1 (10ms): agg(0,0)-core0 dies; agg(1,0) sits one hop out, so
	// its flip is scheduled for 15ms. Batch 2 (12ms): agg(1,0)-core1
	// dies; agg(1,0) is now a seed and flips inline, leaving the 15ms
	// event in flight with no target. Batch 3 (13ms): agg(2,0)-core0
	// dies; agg(1,0) is re-staged with an intended flip at 18ms. The
	// stale 15ms event must not install that table three milliseconds
	// early.
	eng.At(10*sim.Millisecond, func() { kill(agg00, core0) })
	eng.At(12*sim.Millisecond, func() { kill(agg10, core1) })
	eng.At(13*sim.Millisecond, func() { kill(agg20, core0) })

	vr := agg10.Router().(netem.VersionedRouter)
	epochs := make(map[sim.Time]uint64)
	stale := make(map[sim.Time]bool)
	for _, at := range []sim.Time{14 * sim.Millisecond, 16 * sim.Millisecond, 19 * sim.Millisecond} {
		at := at
		eng.At(at, func() { epochs[at] = vr.Epoch(); stale[at] = vr.Stale() })
	}
	eng.RunUntil(30 * sim.Millisecond)

	if epochs[14*sim.Millisecond] != 1 {
		t.Fatalf("epoch at 14ms = %d, want 1 (batch-2 inline flip)", epochs[14*sim.Millisecond])
	}
	if !stale[14*sim.Millisecond] {
		t.Fatal("agg(1,0) not stale at 14ms despite the batch-3 restage")
	}
	if epochs[16*sim.Millisecond] != 1 {
		t.Errorf("epoch at 16ms = %d, want 1 — the superseded 15ms event installed the batch-3 table early", epochs[16*sim.Millisecond])
	}
	if epochs[19*sim.Millisecond] != 2 || stale[19*sim.Millisecond] {
		t.Errorf("epoch at 19ms = %d (stale=%t), want 2 and fresh (flip landed at its own 18ms schedule)",
			epochs[19*sim.Millisecond], stale[19*sim.Millisecond])
	}
}

// cableEvents mirrors faults.cableEvents for cable 0 at the agg layer.
func cableEvents(kind faults.Kind, at sim.Time) []faults.Event {
	return []faults.Event{
		{At: at, Kind: kind, Layer: netem.LayerAgg, Index: 0},
		{At: at, Kind: kind, Layer: netem.LayerAgg, Index: 1},
	}
}

// TestInstallValidation rejects malformed convergence configs.
func TestInstallValidation(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	bad := []Config{
		{PerHopDelay: -sim.Millisecond},
		{HoldDown: -sim.Millisecond},
		{FlapThreshold: -1},
		{FlapThreshold: 3}, // threshold without a damping window does nothing
		{Convergence: "quantum"},
	}
	for _, cfg := range bad {
		if _, err := Install(eng, &ft.Network, cfg); err == nil {
			t.Errorf("Install accepted %+v", cfg)
		}
	}
	if _, err := ParseConvergence("staggered"); err != nil {
		t.Errorf("ParseConvergence rejected staggered: %v", err)
	}
	if got, err := ParseConvergence(""); err != nil || got != Atomic {
		t.Errorf("ParseConvergence(\"\") = %v, %v; want atomic", got, err)
	}
}

// TestRoutingLookupAllocationFree asserts the healthy fast path: with a
// control plane installed and no overrides live, a forwarding lookup
// through the wrapped router allocates nothing.
func TestRoutingLookupAllocationFree(t *testing.T) {
	eng := sim.NewEngine()
	net, cp := buildFatTree(eng)
	cp.Recompute() // healthy: installs zero overrides
	r := net.Switches[0].Router()
	dst := net.Hosts[len(net.Hosts)-1].ID()
	var sink []*netem.Link
	allocs := testing.AllocsPerRun(200, func() {
		sink = r.NextLinks(dst)
	})
	if allocs != 0 {
		t.Errorf("healthy routing lookup allocates %.1f per call, want 0", allocs)
	}
	_ = sink
}
