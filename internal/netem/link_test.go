package netem

import (
	"testing"

	"repro/internal/sim"
)

// sink is a Node that records received packets with their arrival times.
type sink struct {
	id      NodeID
	eng     *sim.Engine
	packets []*Packet
	times   []sim.Time
}

func newSink(eng *sim.Engine, id NodeID) *sink { return &sink{id: id, eng: eng} }

func (s *sink) ID() NodeID { return s.id }
func (s *sink) Receive(p *Packet, from *Link) {
	s.packets = append(s.packets, p)
	s.times = append(s.times, s.eng.Now())
}

func dataPacket(size int) *Packet {
	return &Packet{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80, Size: size, Flags: FlagData, PayloadLen: size - 60}
}

func TestLinkDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	src := newSink(eng, 1)
	dst := newSink(eng, 2)
	// 100 Mb/s, 20us propagation: 1500B takes 120us + 20us = 140us.
	l := NewLink(eng, src, dst, 100_000_000, 20*sim.Microsecond, 10, LayerHost)
	l.Enqueue(dataPacket(1500))
	eng.Run()
	if len(dst.packets) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.packets))
	}
	if got, want := dst.times[0], 140*sim.Microsecond; got != want {
		t.Errorf("delivery at %v, want %v", got, want)
	}
	if dst.packets[0].Hops != 1 {
		t.Errorf("hops = %d, want 1", dst.packets[0].Hops)
	}
}

func TestLinkSerialisesBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 20*sim.Microsecond, 10, LayerHost)
	l.Enqueue(dataPacket(1500))
	l.Enqueue(dataPacket(1500))
	eng.Run()
	if len(dst.packets) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(dst.packets))
	}
	// Second packet starts serialising when the first finishes (120us),
	// so it arrives at 240us + 20us.
	if got, want := dst.times[1], 260*sim.Microsecond; got != want {
		t.Errorf("second delivery at %v, want %v", got, want)
	}
}

func TestLinkDropTail(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 3, LayerAgg)
	// One in the transmitter + 3 queued fit; the rest drop.
	for i := 0; i < 10; i++ {
		l.Enqueue(dataPacket(1500))
	}
	eng.Run()
	if len(dst.packets) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(dst.packets))
	}
	if l.Stats.Drops != 6 {
		t.Errorf("drops = %d, want 6", l.Stats.Drops)
	}
	if l.Stats.DropBytes != 6*1500 {
		t.Errorf("drop bytes = %d, want %d", l.Stats.DropBytes, 6*1500)
	}
	if got := l.Stats.LossRate(); got <= 0.5 || got >= 0.7 {
		t.Errorf("loss rate = %v, want 0.6", got)
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 1_000_000_000, 0, 100, LayerHost)
	for i := 0; i < 50; i++ {
		p := dataPacket(100)
		p.Seq = int64(i)
		l.Enqueue(p)
	}
	eng.Run()
	if len(dst.packets) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(dst.packets))
	}
	for i, p := range dst.packets {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d: FIFO order violated", i, p.Seq)
		}
	}
}

func TestLinkQueueWrapAround(t *testing.T) {
	// Exercise the ring buffer across many fill/drain cycles.
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 1_000_000_000, 0, 4, LayerHost)
	total := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ { // 1 in transmitter + 4 queued, none drop
			p := dataPacket(100)
			p.Seq = int64(total)
			total++
			l.Enqueue(p)
		}
		eng.Run() // drain fully between rounds
	}
	if len(dst.packets) != total {
		t.Fatalf("delivered %d, want %d", len(dst.packets), total)
	}
	for i, p := range dst.packets {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d after wrap-around", i, p.Seq)
		}
	}
	if l.Stats.Drops != 0 {
		t.Errorf("drops = %d, want 0", l.Stats.Drops)
	}
}

func TestLinkUtilisationAndBusyTime(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 10, LayerCore)
	for i := 0; i < 5; i++ {
		l.Enqueue(dataPacket(1500)) // 120us each
	}
	eng.Run()
	if got, want := l.Stats.BusyTime, 600*sim.Microsecond; got != want {
		t.Errorf("busy time = %v, want %v", got, want)
	}
	if got := l.Stats.Utilisation(1200 * sim.Microsecond); got != 0.5 {
		t.Errorf("utilisation = %v, want 0.5", got)
	}
	if got := l.Stats.Utilisation(0); got != 0 {
		t.Errorf("utilisation over empty interval = %v, want 0", got)
	}
}

func TestLinkECNMarking(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 10, LayerAgg)
	l.ECNThreshold = 2
	for i := 0; i < 6; i++ {
		l.Enqueue(dataPacket(1500))
	}
	eng.Run()
	var marked int
	for _, p := range dst.packets {
		if p.CE {
			marked++
		}
	}
	// Packet 0 transmits immediately; packets 1,2 enqueue below
	// threshold; packets 3,4,5 see queue >= 2 and get marked.
	if marked != 3 {
		t.Errorf("marked = %d, want 3", marked)
	}
}

func TestLinkMaxQueueHighWater(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 10, LayerHost)
	for i := 0; i < 5; i++ {
		l.Enqueue(dataPacket(1500))
	}
	eng.Run()
	if l.Stats.MaxQueue != 4 {
		t.Errorf("max queue = %d, want 4", l.Stats.MaxQueue)
	}
}

func TestLinkInvalidConstruction(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newSink(eng, 1), newSink(eng, 2)
	for _, tc := range []struct {
		rate  int64
		limit int
	}{{0, 10}, {-5, 10}, {100, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(rate=%d, limit=%d) did not panic", tc.rate, tc.limit)
				}
			}()
			NewLink(eng, a, b, tc.rate, 0, tc.limit, LayerHost)
		}()
	}
}

func TestLayerString(t *testing.T) {
	for layer, want := range map[Layer]string{
		LayerHost: "host", LayerEdge: "edge", LayerAgg: "agg", LayerCore: "core", Layer(9): "layer(9)",
	} {
		if got := layer.String(); got != want {
			t.Errorf("Layer(%d).String() = %q, want %q", layer, got, want)
		}
	}
}

func TestLinkAvgQueue(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 10, LayerAgg)
	// 3 packets at t=0: one transmits (120us each), two queue.
	// Queue occupancy: 2 pkts for 120us, 1 pkt for 120us, 0 afterwards.
	for i := 0; i < 3; i++ {
		l.Enqueue(dataPacket(1500))
	}
	eng.Run()
	elapsed := eng.Now() // 360us
	wantIntegral := float64(2*120_000 + 1*120_000)
	got := l.Stats.AvgQueue(elapsed)
	want := wantIntegral / float64(elapsed)
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("avg queue = %v, want %v", got, want)
	}
	if l.Stats.AvgQueue(0) != 0 {
		t.Error("AvgQueue over empty interval must be 0")
	}
}

func TestLinkDownBlackholesEverything(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	// 100 Mb/s, 50us propagation: 1500B serialises in 120us.
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 50*sim.Microsecond, 10, LayerAgg)
	// 4 packets: one serialising, three queued.
	for i := 0; i < 4; i++ {
		l.Enqueue(dataPacket(1500))
	}
	// Fail mid-serialisation of the first packet: the queue drains into
	// the blackhole, the in-transmitter packet dies at txDone, and a
	// post-failure arrival dies at enqueue.
	eng.Schedule(60*sim.Microsecond, func() {
		l.SetDown(true)
		if !l.Down() {
			t.Error("link not down after SetDown(true)")
		}
		l.Enqueue(dataPacket(1500))
	})
	eng.Run()
	if len(dst.packets) != 0 {
		t.Fatalf("delivered %d packets through a down link", len(dst.packets))
	}
	if got := l.Stats.Blackholed; got != 5 {
		t.Errorf("blackholed = %d, want 5", got)
	}
	if got := l.Stats.BlackholedBytes; got != 5*1500 {
		t.Errorf("blackholed bytes = %d, want %d", got, 5*1500)
	}
	if l.Stats.Drops != 0 {
		t.Errorf("queue drops = %d, want 0 (failure losses are blackholes)", l.Stats.Drops)
	}
}

func TestLinkDownSwallowsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	// Long propagation so the packet is in flight when the link dies:
	// serialisation ends at 120us, delivery would be at 1120us.
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 1*sim.Millisecond, 10, LayerAgg)
	l.Enqueue(dataPacket(1500))
	eng.Schedule(500*sim.Microsecond, func() { l.SetDown(true) })
	eng.Run()
	if len(dst.packets) != 0 {
		t.Fatal("in-flight packet survived the failure")
	}
	// In-flight swallows are receive-side damage: they accumulate in the
	// rx counters (owned by the destination shard under sharding) and
	// fold into Stats on demand.
	if got := l.TotalBlackholed(); got != 1 {
		t.Errorf("blackholed = %d, want 1", got)
	}
	l.FoldRx()
	if l.Stats.Blackholed != 1 {
		t.Errorf("blackholed after FoldRx = %d, want 1", l.Stats.Blackholed)
	}
	if got := l.TotalBlackholed(); got != 1 {
		t.Errorf("blackholed after FoldRx = %d, want 1 (fold must not double-count)", got)
	}
	// The bits were serialised before the failure.
	if l.Stats.TxPackets != 1 {
		t.Errorf("tx packets = %d, want 1", l.Stats.TxPackets)
	}
}

func TestLinkRepairResumesDelivery(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 20*sim.Microsecond, 10, LayerAgg)
	eng.At(0, func() { l.SetDown(true) })
	eng.At(100*sim.Microsecond, func() { l.Enqueue(dataPacket(1500)) }) // blackholes
	eng.At(1*sim.Millisecond, func() { l.SetDown(false) })
	eng.At(2*sim.Millisecond, func() { l.Enqueue(dataPacket(1500)) }) // delivered
	eng.Run()
	if len(dst.packets) != 1 {
		t.Fatalf("delivered %d packets after repair, want 1", len(dst.packets))
	}
	if l.Stats.Blackholed != 1 {
		t.Errorf("blackholed = %d, want 1", l.Stats.Blackholed)
	}
	if got, want := l.TimeDown(eng.Now()), 1*sim.Millisecond; got != want {
		t.Errorf("time down = %v, want %v", got, want)
	}
	// SetDown is idempotent.
	l.SetDown(false)
	if got, want := l.TimeDown(eng.Now()), 1*sim.Millisecond; got != want {
		t.Errorf("time down after redundant SetDown = %v, want %v", got, want)
	}
}

func TestLinkTimeDownOpenInterval(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, newSink(eng, 1), newSink(eng, 2), 100_000_000, 0, 10, LayerAgg)
	eng.At(3*sim.Millisecond, func() { l.SetDown(true) })
	eng.At(10*sim.Millisecond, func() {})
	eng.Run()
	if got, want := l.TimeDown(10*sim.Millisecond), 7*sim.Millisecond; got != want {
		t.Errorf("open-interval time down = %v, want %v", got, want)
	}
}

func TestLinkRateFactorSlowsSerialisation(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 0, 10, LayerAgg)
	l.SetRateFactor(0.5) // 50 Mb/s: 1500B now takes 240us
	l.Enqueue(dataPacket(1500))
	eng.Run()
	if got, want := dst.times[0], 240*sim.Microsecond; got != want {
		t.Errorf("degraded delivery at %v, want %v", got, want)
	}
	l.SetRateFactor(1)
	if l.Rate() != 100_000_000 {
		t.Errorf("rate after restore = %d", l.Rate())
	}
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRateFactor(%v) did not panic", bad)
				}
			}()
			l.SetRateFactor(bad)
		}()
	}
}

func TestLinkExtraDelay(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 100_000_000, 20*sim.Microsecond, 10, LayerAgg)
	l.SetExtraDelay(100 * sim.Microsecond)
	l.Enqueue(dataPacket(1500)) // 120us tx + 120us prop
	eng.Run()
	if got, want := dst.times[0], 240*sim.Microsecond; got != want {
		t.Errorf("delayed delivery at %v, want %v", got, want)
	}
	l.SetExtraDelay(0)
	if l.PropDelay() != 20*sim.Microsecond {
		t.Errorf("prop after restore = %v", l.PropDelay())
	}
}

func TestLinkRandomLoss(t *testing.T) {
	eng := sim.NewEngine()
	dst := newSink(eng, 2)
	l := NewLink(eng, newSink(eng, 1), dst, 10_000_000_000, 0, 100000, LayerAgg)
	l.SetLossRate(0.3, sim.NewRNG(42))
	const n = 10000
	for i := 0; i < n; i++ {
		l.Enqueue(dataPacket(1500))
	}
	eng.Run()
	lost := int(l.Stats.RandomDrops)
	if lost < n/4 || lost > n/3+n/10 {
		t.Errorf("random drops = %d/%d, want about 30%%", lost, n)
	}
	if len(dst.packets)+lost != n {
		t.Errorf("accounting: delivered %d + lost %d != %d", len(dst.packets), lost, n)
	}
	if l.Stats.RandomDropBytes != int64(lost)*1500 {
		t.Errorf("random drop bytes = %d", l.Stats.RandomDropBytes)
	}
	l.SetLossRate(0, nil) // disable
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetLossRate(0.5, nil) did not panic")
			}
		}()
		l.SetLossRate(0.5, nil)
	}()
}
