package netem

// PacketPool is a free list of Packets shared by one simulated network.
// Packets are allocated per transmission on the hot path of every
// transport, and without recycling they dominate a run's allocation
// profile; the pool hands each terminal endpoint's packets (host
// delivery, switch and queue drops, blackholes) back to the producers.
//
// The pool is single-threaded, like everything else built on sim.Engine:
// one pool per network, one network per engine, one engine per goroutine.
// A nil *PacketPool is valid and disables recycling — Get falls back to
// the garbage collector and Put is a no-op — so hand-built test networks
// need no wiring.
type PacketPool struct {
	free []*Packet

	// Gets and Recycled count allocations served and packets returned,
	// for benchmarks asserting the recycle rate.
	Gets     int64
	Recycled int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, reusing a recycled one when available.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	pp.Gets++
	n := len(pp.free)
	if n == 0 {
		return &Packet{}
	}
	p := pp.free[n-1]
	pp.free[n-1] = nil
	pp.free = pp.free[:n-1]
	*p = Packet{}
	return p
}

// Put recycles a packet that has reached its terminal point. The caller
// must be the packet's sole owner: a packet handed to Put must not be
// referenced again (endpoints that need to keep packet data copy the
// fields out during HandlePacket).
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	pp.Recycled++
	pp.free = append(pp.free, p)
}
