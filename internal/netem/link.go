package netem

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Layer classifies where in the topology a link sits, for per-layer loss
// accounting (the paper reports loss rates at the core and aggregation
// layers separately).
type Layer uint8

// Link layers, named from the perspective of the data-centre hierarchy.
const (
	LayerHost Layer = iota // host NIC -> edge switch (and reverse)
	LayerEdge              // edge <-> aggregation
	LayerAgg               // aggregation <-> core
	LayerCore              // core (only used by exotic topologies)
)

// String returns the conventional name of the layer.
func (l Layer) String() string {
	switch l {
	case LayerHost:
		return "host"
	case LayerEdge:
		return "edge"
	case LayerAgg:
		return "agg"
	case LayerCore:
		return "core"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Node is anything that can terminate a link: a Host or a Switch.
type Node interface {
	ID() NodeID
	// Receive is invoked by a link when a packet finishes propagating.
	Receive(pkt *Packet, from *Link)
}

// LinkStats accumulates per-link counters used by the measurement layer.
type LinkStats struct {
	TxPackets int64    // packets fully serialised onto the wire
	TxBytes   int64    // bytes fully serialised onto the wire
	Enqueued  int64    // packets accepted into the queue or transmitter
	Drops     int64    // packets dropped at enqueue (queue full)
	DropBytes int64    // bytes dropped
	BusyTime  sim.Time // cumulative serialisation time (for utilisation)
	MaxQueue  int      // high-water mark of queue length (packets)

	// Blackholed counts packets swallowed by the link while it was down:
	// new arrivals, queued packets drained at failure time, and in-flight
	// packets whose delivery was suppressed. These are the paper's
	// robustness story — losses no transport signal announces except by
	// silence (duplicate ACKs never come; only timers fire).
	Blackholed      int64
	BlackholedBytes int64

	// RandomDrops counts packets dropped by injected random loss (link
	// degradation), as opposed to queue overflow.
	RandomDrops     int64
	RandomDropBytes int64

	// DownTime accumulates completed down intervals; see Link.TimeDown
	// for the live total including a still-open failure.
	DownTime  sim.Time
	downSince sim.Time

	// QueueIntegral accumulates queue length x time (packet·ns), for
	// time-averaged occupancy; lastQChange is internal bookkeeping.
	QueueIntegral int64
	lastQChange   sim.Time
}

// AvgQueue returns the time-averaged queue length in packets over the
// interval [0, elapsed].
func (s *LinkStats) AvgQueue(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.QueueIntegral) / float64(elapsed)
}

// Link is a unidirectional point-to-point link with a drop-tail FIFO
// output queue and store-and-forward transmission: a packet occupies the
// transmitter for size/bandwidth, then arrives at the destination after
// the propagation delay. A full-duplex cable is modelled as two Links.
type Link struct {
	eng  *sim.Engine
	src  Node
	dst  Node
	rate int64    // effective bits per second (baseRate scaled by degradation)
	prop sim.Time // effective propagation delay (baseProp + extra)

	baseRate int64
	baseProp sim.Time

	limit int // queue capacity in packets (not counting the in-flight one)
	queue []*Packet
	head  int // ring-buffer head index
	count int // packets in queue
	busy  bool

	// Fault state. down is the data plane: a down link blackholes
	// everything (in-flight, queued, and newly enqueued packets).
	// routeDead is the control plane: once set, routers exclude the link
	// from ECMP sets. The two are deliberately separate — the window
	// between a link going down and routing noticing it (the
	// reconvergence delay) is where failures hurt, and the faults
	// subsystem drives them independently.
	down      bool
	routeDead bool

	// lossRate, when positive, drops each enqueued packet with this
	// probability (random-loss degradation); draws come from lossRNG.
	lossRate float64
	lossRNG  *sim.RNG

	// ECNThreshold, when positive, marks packets with CE at enqueue if
	// the instantaneous queue length is at or above the threshold
	// (DCTCP-style marking). Zero disables marking.
	ECNThreshold int

	layer Layer
	name  string

	// pool recycles packets that terminate on this link (queue drops,
	// random loss, blackholes); nil disables recycling.
	pool *PacketPool

	// rec, when non-nil, receives structured trace events (enqueues,
	// marks, drops, link state). Every trace point is guarded by a nil
	// check so the disabled cost is one predictable branch.
	rec *trace.Recorder

	// Receive-side wiring. On a sequential engine rxSched is the same
	// engine, rxPool the same pool and rxRec the same recorder as the tx
	// side, and the rx counters stay zero-folded. On a shard boundary the
	// tx side (Enqueue/txDone and everything above) runs on the source
	// node's shard while delivery runs on the destination's: rxSched is
	// then the cross-shard outbox, and the rx-side blackhole accounting
	// goes into rxBlackholed/rxBlackholedBytes so the two threads never
	// write the same counters. FoldRx merges them at a barrier.
	rxSched           sim.EventScheduler
	rxPool            *PacketPool
	rxRec             *trace.Recorder
	rxBlackholed      int64
	rxBlackholedBytes int64

	// rxClass is the destination node's horizon class (see
	// sim.Engine.SetHorizonClasses), stamped on every delivery this link
	// schedules: crossing the link moves the packet to dst, so its
	// remaining influence distance is dst's, not the sender's. Zero (the
	// default, and always in sequential runs) is the sound "unknown".
	rxClass uint8

	// txDoneFn and deliverFn are the long-lived engine callbacks for the
	// two per-packet events of a transmission, created once so the hot
	// path schedules with ScheduleArg instead of allocating a closure
	// per packet.
	txDoneFn  func(any)
	deliverFn func(any)

	Stats LinkStats
}

// NewLink creates a link from src to dst. rate is in bits/second, prop is
// the propagation delay, and limit is the queue capacity in packets.
func NewLink(eng *sim.Engine, src, dst Node, rate int64, prop sim.Time, limit int, layer Layer) *Link {
	if rate <= 0 {
		panic("netem: link rate must be positive")
	}
	if limit < 1 {
		panic("netem: queue limit must be at least 1")
	}
	l := &Link{
		eng:      eng,
		src:      src,
		dst:      dst,
		rate:     rate,
		prop:     prop,
		baseRate: rate,
		baseProp: prop,
		limit:    limit,
		queue:    make([]*Packet, limit),
		layer:    layer,
		name:     fmt.Sprintf("%d->%d", src.ID(), dst.ID()),
	}
	l.rxSched = eng
	l.txDoneFn = func(a any) { l.txDone(a.(*Packet)) }
	l.deliverFn = func(a any) { l.deliver(a.(*Packet)) }
	return l
}

// SetPool installs the packet free list the link recycles dropped and
// blackholed packets into. Topology builders wire every link of a
// network to one shared pool; nil (the default) disables recycling.
// Both sides share it until Rebind splits them.
func (l *Link) SetPool(pp *PacketPool) { l.pool, l.rxPool = pp, pp }

// SetRecorder installs (or, with nil, removes) the structured event
// recorder on both sides of the link. The run harness re-installs per
// run, so a pooled instance never keeps recording into a previous run's
// recorder.
func (l *Link) SetRecorder(r *trace.Recorder) { l.rec, l.rxRec = r, r }

// SetRecorders installs separate recorders for the transmit and receive
// sides, used by sharded runs where the two sides execute on different
// shard threads and must append to different per-shard recorders.
func (l *Link) SetRecorders(tx, rx *trace.Recorder) { l.rec, l.rxRec = tx, rx }

// Rebind repoints the link's execution wiring for a sharded fabric: the
// transmit side (enqueue, serialisation, queue accounting) runs on
// txEng with txPool, while delivery is scheduled through rxSched (the
// destination shard's engine, or a cross-shard outbox) and recycles
// into rxPool. Passing the same engine and pool on both sides restores
// sequential behaviour.
func (l *Link) Rebind(txEng *sim.Engine, rxSched sim.EventScheduler, txPool, rxPool *PacketPool) {
	l.eng = txEng
	l.rxSched = rxSched
	l.pool = txPool
	l.rxPool = rxPool
}

// SetRxHorizonClass installs the destination node's horizon class,
// stamped on every delivery scheduled through rxSched. The sharded
// partitioner computes it per node; 0 restores the untagged default.
func (l *Link) SetRxHorizonClass(c uint8) { l.rxClass = c }

// FoldRx merges the receive-side blackhole counters into Stats. The
// coordinator calls it at a barrier (both shard threads paused) before
// reading Stats for reports or snapshots; on a sequential link it is a
// no-op after the first call since the rx counters stay zero.
func (l *Link) FoldRx() {
	l.Stats.Blackholed += l.rxBlackholed
	l.Stats.BlackholedBytes += l.rxBlackholedBytes
	l.rxBlackholed = 0
	l.rxBlackholedBytes = 0
}

// TotalBlackholed returns the blackholed-packet count across both sides
// without folding, for mid-run snapshots that must not mutate counters
// owned by a paused shard thread.
func (l *Link) TotalBlackholed() int64 { return l.Stats.Blackholed + l.rxBlackholed }

// traceIDs returns the link's endpoints as trace identity fields.
func (l *Link) traceIDs() (int32, int32) { return int32(l.src.ID()), int32(l.dst.ID()) }

// Src returns the sending node.
func (l *Link) Src() Node { return l.src }

// Dst returns the receiving node.
func (l *Link) Dst() Node { return l.dst }

// Layer returns the link's topology layer.
func (l *Link) Layer() Layer { return l.layer }

// Rate returns the link bandwidth in bits per second.
func (l *Link) Rate() int64 { return l.rate }

// PropDelay returns the propagation delay.
func (l *Link) PropDelay() sim.Time { return l.prop }

// QueueLen returns the instantaneous queue length in packets, excluding
// the packet currently being serialised.
func (l *Link) QueueLen() int { return l.count }

// Down reports whether the link is failed at the data plane.
func (l *Link) Down() bool { return l.down }

// RouteDead reports whether routers should exclude the link from ECMP
// next-hop sets (set after the reconvergence delay following a failure).
func (l *Link) RouteDead() bool { return l.routeDead }

// SetRouteDead marks the link dead (or alive again) for routing. Routers
// consult this through LiveLinks; the data plane is unaffected.
func (l *Link) SetRouteDead(dead bool) { l.routeDead = dead }

// SetDown fails or restores the link at the data plane. Failing a link
// blackholes its queued packets immediately (the in-flight one and any
// propagating packets are swallowed when their events fire) and makes
// Enqueue blackhole new arrivals; restoring re-enables transmission.
// Down time is accumulated in Stats for time-in-failure reporting.
func (l *Link) SetDown(down bool) {
	if down == l.down {
		return
	}
	now := l.eng.Now()
	if l.rec != nil {
		kind := trace.KindLinkUp
		if down {
			kind = trace.KindLinkDown
		}
		src, dst := l.traceIDs()
		l.rec.Record(now, kind, 0, -1, src, dst, int64(l.count), 0)
	}
	if down {
		l.down = true
		l.Stats.downSince = now
		// Drain the queue: everything buffered on a dead port is lost.
		if l.count > 0 {
			l.accountQueue()
			for l.count > 0 {
				p := l.queue[l.head]
				l.queue[l.head] = nil
				l.head = (l.head + 1) % l.limit
				l.count--
				l.blackhole(p)
			}
		}
		return
	}
	l.down = false
	l.Stats.DownTime += now - l.Stats.downSince
}

// TimeDown returns the total time the link has spent failed up to now,
// including a still-open failure interval.
func (l *Link) TimeDown(now sim.Time) sim.Time {
	d := l.Stats.DownTime
	if l.down && now > l.Stats.downSince {
		d += now - l.Stats.downSince
	}
	return d
}

// SetRateFactor scales the link bandwidth to factor times its built rate
// (capacity degradation). factor 1 restores full capacity. The packet
// currently serialising finishes at the old rate; subsequent packets use
// the new one. Factors outside (0, 1] panic: a fault cannot add capacity.
func (l *Link) SetRateFactor(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("netem: rate factor %v out of (0, 1]", factor))
	}
	r := int64(float64(l.baseRate) * factor)
	if r < 1 {
		r = 1
	}
	l.rate = r
}

// SetExtraDelay adds extra propagation delay on top of the built delay
// (path degradation). Zero restores the built delay.
func (l *Link) SetExtraDelay(extra sim.Time) {
	if extra < 0 {
		panic("netem: negative extra delay")
	}
	l.prop = l.baseProp + extra
}

// SetLossRate makes the link drop each enqueued packet with probability p
// using draws from rng (deterministic under the single-threaded engine).
// p = 0 disables injected loss; rng may then be nil.
func (l *Link) SetLossRate(p float64, rng *sim.RNG) {
	if p < 0 || p >= 1 {
		if p != 0 {
			panic(fmt.Sprintf("netem: loss rate %v out of [0, 1)", p))
		}
	}
	if p > 0 && rng == nil {
		panic("netem: loss rate needs an RNG")
	}
	l.lossRate = p
	l.lossRNG = rng
}

// Reset restores the link to its as-built state for run-instance
// reuse: queue emptied (queued packets recycled into the pool), fault
// and degradation state cleared, rate and delay back to the built
// values, statistics zeroed. In-flight packets are not the link's to
// reclaim — their delivery events die with the engine's own Reset.
// The built ECN threshold is part of the instance's shape and is kept.
func (l *Link) Reset() {
	for l.count > 0 {
		p := l.queue[l.head]
		l.queue[l.head] = nil
		l.head = (l.head + 1) % l.limit
		l.count--
		l.pool.Put(p)
	}
	l.head = 0
	l.busy = false
	l.down = false
	l.routeDead = false
	l.rate = l.baseRate
	l.prop = l.baseProp
	l.lossRate = 0
	l.lossRNG = nil
	l.rec = nil
	l.rxRec = nil
	l.rxBlackholed = 0
	l.rxBlackholedBytes = 0
	l.Stats = LinkStats{}
}

// blackhole accounts one packet swallowed by the down link and recycles
// it: a blackholed packet has reached its terminal point. This is the
// transmit-side variant (enqueue, tx-done, queue drain).
func (l *Link) blackhole(p *Packet) {
	l.Stats.Blackholed++
	l.Stats.BlackholedBytes += int64(p.Size)
	if l.rec != nil {
		src, dst := l.traceIDs()
		l.rec.Record(l.eng.Now(), trace.KindBlackhole, p.FlowID, p.Subflow, src, dst, p.Seq, 0)
	}
	l.pool.Put(p)
}

// blackholeRx is the receive-side blackhole: an in-flight packet whose
// delivery fires after the link failed. It runs on the destination
// shard's thread, so it touches only rx-side state.
func (l *Link) blackholeRx(p *Packet) {
	l.rxBlackholed++
	l.rxBlackholedBytes += int64(p.Size)
	if l.rxRec != nil {
		src, dst := l.traceIDs()
		l.rxRec.Record(l.rxSched.Now(), trace.KindBlackhole, p.FlowID, p.Subflow, src, dst, p.Seq, 0)
	}
	l.rxPool.Put(p)
}

// String identifies the link for diagnostics.
func (l *Link) String() string { return fmt.Sprintf("link[%s %s]", l.layer, l.name) }

// Enqueue accepts a packet for transmission. If the transmitter is idle
// the packet begins serialising immediately; otherwise it joins the FIFO
// queue, or is dropped if the queue is full. Dropped packets are counted
// in Stats and vanish (the loss signal reaches transports via duplicate
// ACKs or timeouts, as in a real network).
func (l *Link) Enqueue(p *Packet) {
	if l.down {
		l.blackhole(p)
		return
	}
	if l.lossRate > 0 && l.lossRNG.Float64() < l.lossRate {
		l.Stats.RandomDrops++
		l.Stats.RandomDropBytes += int64(p.Size)
		if l.rec != nil {
			src, dst := l.traceIDs()
			l.rec.Record(l.eng.Now(), trace.KindRandomDrop, p.FlowID, p.Subflow, src, dst, p.Seq, 0)
		}
		l.pool.Put(p)
		return
	}
	if !l.busy {
		l.Stats.Enqueued++
		if l.rec != nil {
			src, dst := l.traceIDs()
			l.rec.Record(l.eng.Now(), trace.KindEnqueue, p.FlowID, p.Subflow, src, dst, p.Seq, 0)
		}
		l.transmit(p)
		return
	}
	if l.count >= l.limit {
		l.Stats.Drops++
		l.Stats.DropBytes += int64(p.Size)
		if l.rec != nil {
			src, dst := l.traceIDs()
			l.rec.Record(l.eng.Now(), trace.KindQueueDrop, p.FlowID, p.Subflow, src, dst, p.Seq, int64(l.limit))
		}
		l.pool.Put(p)
		return
	}
	if l.ECNThreshold > 0 && l.count >= l.ECNThreshold {
		p.CE = true
		if l.rec != nil {
			src, dst := l.traceIDs()
			l.rec.Record(l.eng.Now(), trace.KindECNMark, p.FlowID, p.Subflow, src, dst, p.Seq, int64(l.count))
		}
	}
	l.Stats.Enqueued++
	if l.rec != nil {
		src, dst := l.traceIDs()
		l.rec.Record(l.eng.Now(), trace.KindEnqueue, p.FlowID, p.Subflow, src, dst, p.Seq, int64(l.count+1))
	}
	l.accountQueue()
	tail := (l.head + l.count) % l.limit
	l.queue[tail] = p
	l.count++
	if l.count > l.Stats.MaxQueue {
		l.Stats.MaxQueue = l.count
	}
}

// accountQueue folds the elapsed interval at the current queue length
// into the occupancy integral; callers invoke it immediately before
// changing the queue length.
func (l *Link) accountQueue() {
	now := l.eng.Now()
	l.Stats.QueueIntegral += int64(l.count) * int64(now-l.Stats.lastQChange)
	l.Stats.lastQChange = now
}

func (l *Link) transmit(p *Packet) {
	l.busy = true
	tx := sim.TransmissionTime(p.Size, l.rate)
	l.Stats.BusyTime += tx
	l.eng.ScheduleArg(tx, l.txDoneFn, p)
}

// txDone fires when the last bit of p has been serialised: the packet
// begins propagating and the transmitter picks up the next queued packet.
// If the link failed while p was serialising, p and the (already drained)
// queue are gone and the transmitter goes idle.
func (l *Link) txDone(p *Packet) {
	if l.down {
		l.blackhole(p)
		l.busy = false
		return
	}
	l.Stats.TxPackets++
	l.Stats.TxBytes += int64(p.Size)
	// Absolute-time scheduling through rxSched: on a sequential engine
	// this is exactly ScheduleArg(prop, ...); on a shard boundary it
	// routes the delivery into the destination shard's heap (via the
	// outbox), which is what makes the link the cut point of the fabric
	// partition. The delivery carries the destination node's horizon
	// class — the hop that re-tags influence distance as packets move
	// through the fabric.
	l.rxSched.AtArgClass(l.eng.Now()+l.prop, l.deliverFn, p, l.rxClass)
	if l.count > 0 {
		l.accountQueue()
		next := l.queue[l.head]
		l.queue[l.head] = nil
		l.head = (l.head + 1) % l.limit
		l.count--
		l.transmit(next)
		return
	}
	l.busy = false
}

// deliver fires when p finishes propagating: it arrives at the
// destination node, unless the link failed mid-propagation, in which
// case the packet is lost with everything else in flight.
func (l *Link) deliver(p *Packet) {
	if l.down {
		l.blackholeRx(p)
		return
	}
	p.Hops++
	l.dst.Receive(p, l)
}

// LossRate returns the fraction of enqueued packets that were dropped.
func (s *LinkStats) LossRate() float64 {
	offered := s.Enqueued + s.Drops
	if offered == 0 {
		return 0
	}
	return float64(s.Drops) / float64(offered)
}

// Utilisation returns the fraction of the interval [0, elapsed] during
// which the transmitter was busy.
func (s *LinkStats) Utilisation(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(elapsed)
}
