package netem

import (
	"fmt"

	"repro/internal/sim"
)

// Layer classifies where in the topology a link sits, for per-layer loss
// accounting (the paper reports loss rates at the core and aggregation
// layers separately).
type Layer uint8

// Link layers, named from the perspective of the data-centre hierarchy.
const (
	LayerHost Layer = iota // host NIC -> edge switch (and reverse)
	LayerEdge              // edge <-> aggregation
	LayerAgg               // aggregation <-> core
	LayerCore              // core (only used by exotic topologies)
)

// String returns the conventional name of the layer.
func (l Layer) String() string {
	switch l {
	case LayerHost:
		return "host"
	case LayerEdge:
		return "edge"
	case LayerAgg:
		return "agg"
	case LayerCore:
		return "core"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Node is anything that can terminate a link: a Host or a Switch.
type Node interface {
	ID() NodeID
	// Receive is invoked by a link when a packet finishes propagating.
	Receive(pkt *Packet, from *Link)
}

// LinkStats accumulates per-link counters used by the measurement layer.
type LinkStats struct {
	TxPackets int64    // packets fully serialised onto the wire
	TxBytes   int64    // bytes fully serialised onto the wire
	Enqueued  int64    // packets accepted into the queue or transmitter
	Drops     int64    // packets dropped at enqueue (queue full)
	DropBytes int64    // bytes dropped
	BusyTime  sim.Time // cumulative serialisation time (for utilisation)
	MaxQueue  int      // high-water mark of queue length (packets)

	// QueueIntegral accumulates queue length x time (packet·ns), for
	// time-averaged occupancy; lastQChange is internal bookkeeping.
	QueueIntegral int64
	lastQChange   sim.Time
}

// AvgQueue returns the time-averaged queue length in packets over the
// interval [0, elapsed].
func (s *LinkStats) AvgQueue(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.QueueIntegral) / float64(elapsed)
}

// Link is a unidirectional point-to-point link with a drop-tail FIFO
// output queue and store-and-forward transmission: a packet occupies the
// transmitter for size/bandwidth, then arrives at the destination after
// the propagation delay. A full-duplex cable is modelled as two Links.
type Link struct {
	eng  *sim.Engine
	src  Node
	dst  Node
	rate int64    // bits per second
	prop sim.Time // propagation delay

	limit int // queue capacity in packets (not counting the in-flight one)
	queue []*Packet
	head  int // ring-buffer head index
	count int // packets in queue
	busy  bool

	// ECNThreshold, when positive, marks packets with CE at enqueue if
	// the instantaneous queue length is at or above the threshold
	// (DCTCP-style marking). Zero disables marking.
	ECNThreshold int

	layer Layer
	name  string

	Stats LinkStats
}

// NewLink creates a link from src to dst. rate is in bits/second, prop is
// the propagation delay, and limit is the queue capacity in packets.
func NewLink(eng *sim.Engine, src, dst Node, rate int64, prop sim.Time, limit int, layer Layer) *Link {
	if rate <= 0 {
		panic("netem: link rate must be positive")
	}
	if limit < 1 {
		panic("netem: queue limit must be at least 1")
	}
	return &Link{
		eng:   eng,
		src:   src,
		dst:   dst,
		rate:  rate,
		prop:  prop,
		limit: limit,
		queue: make([]*Packet, limit),
		layer: layer,
		name:  fmt.Sprintf("%d->%d", src.ID(), dst.ID()),
	}
}

// Src returns the sending node.
func (l *Link) Src() Node { return l.src }

// Dst returns the receiving node.
func (l *Link) Dst() Node { return l.dst }

// Layer returns the link's topology layer.
func (l *Link) Layer() Layer { return l.layer }

// Rate returns the link bandwidth in bits per second.
func (l *Link) Rate() int64 { return l.rate }

// PropDelay returns the propagation delay.
func (l *Link) PropDelay() sim.Time { return l.prop }

// QueueLen returns the instantaneous queue length in packets, excluding
// the packet currently being serialised.
func (l *Link) QueueLen() int { return l.count }

// String identifies the link for diagnostics.
func (l *Link) String() string { return fmt.Sprintf("link[%s %s]", l.layer, l.name) }

// Enqueue accepts a packet for transmission. If the transmitter is idle
// the packet begins serialising immediately; otherwise it joins the FIFO
// queue, or is dropped if the queue is full. Dropped packets are counted
// in Stats and vanish (the loss signal reaches transports via duplicate
// ACKs or timeouts, as in a real network).
func (l *Link) Enqueue(p *Packet) {
	if !l.busy {
		l.Stats.Enqueued++
		l.transmit(p)
		return
	}
	if l.count >= l.limit {
		l.Stats.Drops++
		l.Stats.DropBytes += int64(p.Size)
		return
	}
	if l.ECNThreshold > 0 && l.count >= l.ECNThreshold {
		p.CE = true
	}
	l.Stats.Enqueued++
	l.accountQueue()
	tail := (l.head + l.count) % l.limit
	l.queue[tail] = p
	l.count++
	if l.count > l.Stats.MaxQueue {
		l.Stats.MaxQueue = l.count
	}
}

// accountQueue folds the elapsed interval at the current queue length
// into the occupancy integral; callers invoke it immediately before
// changing the queue length.
func (l *Link) accountQueue() {
	now := l.eng.Now()
	l.Stats.QueueIntegral += int64(l.count) * int64(now-l.Stats.lastQChange)
	l.Stats.lastQChange = now
}

func (l *Link) transmit(p *Packet) {
	l.busy = true
	tx := sim.TransmissionTime(p.Size, l.rate)
	l.Stats.BusyTime += tx
	l.eng.Schedule(tx, func() { l.txDone(p) })
}

// txDone fires when the last bit of p has been serialised: the packet
// begins propagating and the transmitter picks up the next queued packet.
func (l *Link) txDone(p *Packet) {
	l.Stats.TxPackets++
	l.Stats.TxBytes += int64(p.Size)
	l.eng.Schedule(l.prop, func() {
		p.Hops++
		l.dst.Receive(p, l)
	})
	if l.count > 0 {
		l.accountQueue()
		next := l.queue[l.head]
		l.queue[l.head] = nil
		l.head = (l.head + 1) % l.limit
		l.count--
		l.transmit(next)
		return
	}
	l.busy = false
}

// LossRate returns the fraction of enqueued packets that were dropped.
func (s *LinkStats) LossRate() float64 {
	offered := s.Enqueued + s.Drops
	if offered == 0 {
		return 0
	}
	return float64(s.Drops) / float64(offered)
}

// Utilisation returns the fraction of the interval [0, elapsed] during
// which the transmitter was busy.
func (s *LinkStats) Utilisation(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(elapsed)
}
