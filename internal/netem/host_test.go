package netem

import (
	"testing"

	"repro/internal/sim"
)

// recorder is an Endpoint that records delivered packets.
type recorder struct{ got []*Packet }

func (r *recorder) HandlePacket(p *Packet) { r.got = append(r.got, p) }

func TestHostDemux(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	a, b := &recorder{}, &recorder{}
	h.Register(10, 0, a)
	h.Register(10, 1, b)

	p0 := &Packet{FlowID: 10, Subflow: 0, Size: 100}
	p1 := &Packet{FlowID: 10, Subflow: 1, Size: 100}
	h.Receive(p0, nil)
	h.Receive(p1, nil)
	h.Receive(&Packet{FlowID: 99, Size: 100}, nil)

	if len(a.got) != 1 || a.got[0] != p0 {
		t.Errorf("endpoint a got %d packets", len(a.got))
	}
	if len(b.got) != 1 || b.got[0] != p1 {
		t.Errorf("endpoint b got %d packets", len(b.got))
	}
	if h.Unclaimed != 1 {
		t.Errorf("unclaimed = %d, want 1", h.Unclaimed)
	}
	if h.RxPackets != 3 {
		t.Errorf("rx packets = %d, want 3", h.RxPackets)
	}
}

func TestHostConnectionLevelFallback(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	conn := &recorder{}
	h.Register(10, -1, conn) // connection-level endpoint
	for sub := int8(0); sub < 4; sub++ {
		h.Receive(&Packet{FlowID: 10, Subflow: sub, Size: 100}, nil)
	}
	if len(conn.got) != 4 {
		t.Errorf("connection endpoint got %d packets, want 4", len(conn.got))
	}
}

func TestHostDuplicateRegistrationPanics(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	h.Register(10, 0, &recorder{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	h.Register(10, 0, &recorder{})
}

func TestHostUnregister(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	r := &recorder{}
	h.Register(10, 0, r)
	h.Unregister(10, 0)
	h.Receive(&Packet{FlowID: 10, Subflow: 0, Size: 100}, nil)
	if len(r.got) != 0 {
		t.Error("unregistered endpoint still receiving")
	}
	if h.Unclaimed != 1 {
		t.Errorf("unclaimed = %d, want 1", h.Unclaimed)
	}
	// Re-registering after unregister is allowed.
	h.Register(10, 0, r)
}

func TestHostSendViaUplink(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	dst := newSink(eng, 2)
	up := NewLink(eng, h, dst, 1_000_000_000, sim.Microsecond, 10, LayerHost)
	h.AttachUplink(up)
	h.Send(&Packet{Size: 1500})
	eng.Run()
	if len(dst.packets) != 1 {
		t.Fatalf("delivered %d, want 1", len(dst.packets))
	}
	if h.TxPackets != 1 {
		t.Errorf("tx packets = %d, want 1", h.TxPackets)
	}
}

func TestHostMultiHomedSendOn(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	d0, d1 := newSink(eng, 2), newSink(eng, 3)
	h.AttachUplink(NewLink(eng, h, d0, 1_000_000_000, 0, 10, LayerHost))
	h.AttachUplink(NewLink(eng, h, d1, 1_000_000_000, 0, 10, LayerHost))
	h.SendOn(&Packet{Size: 100}, 1)
	h.SendOn(&Packet{Size: 100}, 0)
	h.SendOn(&Packet{Size: 100}, 1)
	eng.Run()
	if len(d0.packets) != 1 || len(d1.packets) != 2 {
		t.Errorf("interface spread = %d/%d, want 1/2", len(d0.packets), len(d1.packets))
	}
}

func TestHostSendOnBadInterfacePanics(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	defer func() {
		if recover() == nil {
			t.Error("SendOn with no uplinks did not panic")
		}
	}()
	h.Send(&Packet{Size: 100})
}

func TestHostAttachForeignUplinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	other := NewHost(eng, 2)
	l := NewLink(eng, other, newSink(eng, 3), 1_000_000_000, 0, 10, LayerHost)
	defer func() {
		if recover() == nil {
			t.Error("attaching a foreign uplink did not panic")
		}
	}()
	h.AttachUplink(l)
}
