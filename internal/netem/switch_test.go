package netem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// staticRouter returns the same equal-cost set for every destination.
type staticRouter struct{ links []*Link }

func (r *staticRouter) NextLinks(dst NodeID) []*Link { return r.links }

func TestSwitchECMPDeterministicPerFlow(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	sinks := make([]*sink, 4)
	links := make([]*Link, 4)
	for i := range links {
		sinks[i] = newSink(eng, NodeID(i))
		links[i] = NewLink(eng, sw, sinks[i], 1_000_000_000, 0, 1000, LayerAgg)
	}
	sw.SetRouter(&staticRouter{links})

	// Same 5-tuple, many packets: all must take the same link.
	for i := 0; i < 100; i++ {
		sw.Receive(dataPacket(1500), nil)
	}
	eng.Run()
	nonEmpty := 0
	for _, s := range sinks {
		if len(s.packets) > 0 {
			nonEmpty++
			if len(s.packets) != 100 {
				t.Errorf("link got %d packets, want all 100 on one link", len(s.packets))
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("flow split across %d links; ECMP must be deterministic per flow", nonEmpty)
	}
}

func TestSwitchECMPSpreadsRandomPorts(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	sinks := make([]*sink, 4)
	links := make([]*Link, 4)
	for i := range links {
		sinks[i] = newSink(eng, NodeID(i))
		links[i] = NewLink(eng, sw, sinks[i], 10_000_000_000, 0, 100000, LayerAgg)
	}
	sw.SetRouter(&staticRouter{links})

	rng := sim.NewRNG(1)
	const n = 8000
	for i := 0; i < n; i++ {
		p := dataPacket(1500)
		p.SrcPort = uint16(rng.Intn(1 << 16)) // packet scatter
		sw.Receive(p, nil)
	}
	eng.Run()
	for i, s := range sinks {
		got := len(s.packets)
		if got < n/4-n/16 || got > n/4+n/16 {
			t.Errorf("link %d got %d packets, want about %d (uniform spread)", i, got, n/4)
		}
	}
}

func TestSwitchSingleLinkFastPath(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	dst := newSink(eng, 1)
	l := NewLink(eng, sw, dst, 1_000_000_000, 0, 10, LayerEdge)
	sw.SetRouter(&staticRouter{[]*Link{l}})
	sw.Receive(dataPacket(1500), nil)
	eng.Run()
	if len(dst.packets) != 1 {
		t.Fatalf("delivered %d, want 1", len(dst.packets))
	}
	if sw.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", sw.Forwarded)
	}
}

func TestSwitchHopBackstop(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	dst := newSink(eng, 1)
	l := NewLink(eng, sw, dst, 1_000_000_000, 0, 10, LayerEdge)
	sw.SetRouter(&staticRouter{[]*Link{l}})
	p := dataPacket(1500)
	p.Hops = maxHops + 1
	sw.Receive(p, nil)
	eng.Run()
	if len(dst.packets) != 0 {
		t.Fatalf("loop backstop failed: packet forwarded with %d hops", p.Hops)
	}
	if sw.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", sw.Dropped)
	}
}

// versionedRouter is a test VersionedRouter with controllable window
// state, standing in for the control plane's FIBs.
type versionedRouter struct {
	staticRouter
	staging   bool
	epoch     uint64
	stale     bool
	transient bool
}

func (r *versionedRouter) Staging() bool   { return r.staging }
func (r *versionedRouter) Epoch() uint64   { return r.epoch }
func (r *versionedRouter) Stale() bool     { return r.stale }
func (r *versionedRouter) Transient() bool { return r.transient }

// TestSwitchTransientDropClassification pins the loop-drop accounting:
// hop-backstop drops inside an open convergence window are LoopDrops,
// outside they stay hop-limit noise in Dropped; no-route drops inside
// the window additionally count as TransientNoRoute; and lookups served
// while the switch's own table is stale are counted.
func TestSwitchTransientDropClassification(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	dst := newSink(eng, 1)
	l := NewLink(eng, sw, dst, 1_000_000_000, 0, 10, LayerEdge)
	vr := &versionedRouter{staticRouter: staticRouter{[]*Link{l}}, staging: true}
	sw.SetRouter(vr)

	overHops := func() *Packet {
		p := dataPacket(1500)
		p.Hops = maxHops + 1
		return p
	}
	// Outside the window: hop-limit noise.
	sw.Receive(overHops(), nil)
	if sw.Dropped != 1 || sw.LoopDrops != 0 {
		t.Fatalf("outside window: dropped=%d loops=%d, want 1/0", sw.Dropped, sw.LoopDrops)
	}
	// Window open: the same drop is a micro-loop casualty.
	vr.transient = true
	sw.Receive(overHops(), nil)
	if sw.Dropped != 1 || sw.LoopDrops != 1 {
		t.Fatalf("inside window: dropped=%d loops=%d, want 1/1", sw.Dropped, sw.LoopDrops)
	}
	// Empty set inside the window: NoRoute and TransientNoRoute.
	vr.links = nil
	sw.Receive(dataPacket(1500), nil)
	if sw.NoRoute != 1 || sw.TransientNoRoute != 1 {
		t.Fatalf("window blackhole: noroute=%d transient=%d, want 1/1", sw.NoRoute, sw.TransientNoRoute)
	}
	vr.transient = false
	sw.Receive(dataPacket(1500), nil)
	if sw.NoRoute != 2 || sw.TransientNoRoute != 1 {
		t.Fatalf("steady blackhole: noroute=%d transient=%d, want 2/1", sw.NoRoute, sw.TransientNoRoute)
	}
	// Stale-table lookups are counted whether or not they forward.
	vr.links = []*Link{l}
	vr.stale = true
	sw.Receive(dataPacket(1500), nil)
	if sw.StaleLookups != 1 {
		t.Fatalf("stale lookups = %d, want 1", sw.StaleLookups)
	}
	vr.stale = false
	sw.Receive(dataPacket(1500), nil)
	if sw.StaleLookups != 1 {
		t.Fatalf("fresh lookup counted as stale: %d", sw.StaleLookups)
	}
	eng.Run()

	// A versioned router with staging disabled (atomic convergence) is
	// never consulted: its windows cannot open, so the switch keeps the
	// plain nil-check fast path and classifies drops as steady-state.
	sw2 := NewSwitch(eng, 101, 7)
	sw2.SetRouter(&versionedRouter{staticRouter: staticRouter{[]*Link{l}}, transient: true, stale: true})
	p := dataPacket(1500)
	p.Hops = maxHops + 1
	sw2.Receive(p, nil)
	if sw2.LoopDrops != 0 || sw2.Dropped != 1 || sw2.StaleLookups != 0 {
		t.Errorf("non-staging router consulted: loops=%d dropped=%d stale=%d",
			sw2.LoopDrops, sw2.Dropped, sw2.StaleLookups)
	}
	eng.Run()
}

func TestFlowHashProperties(t *testing.T) {
	// Property: the hash depends only on the 5-tuple and seed.
	f := func(src, dst int32, sport, dport uint16, seed uint32) bool {
		p1 := &Packet{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sport, DstPort: dport, Seq: 1, Size: 100}
		p2 := &Packet{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sport, DstPort: dport, Seq: 999, Size: 1500, Retx: true}
		return p1.FlowHash(seed) == p2.FlowHash(seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Different seeds give (almost always) different hashes: check on a
	// fixed tuple that at least most of 100 seeds differ from seed 0.
	p := &Packet{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4}
	base := p.FlowHash(0)
	same := 0
	for s := uint32(1); s <= 100; s++ {
		if p.FlowHash(s) == base {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 seeds collide with seed 0", same)
	}
}

func TestFlowHashSensitivity(t *testing.T) {
	base := &Packet{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4}
	variants := []*Packet{
		{Src: 2, Dst: 2, SrcPort: 3, DstPort: 4},
		{Src: 1, Dst: 3, SrcPort: 3, DstPort: 4},
		{Src: 1, Dst: 2, SrcPort: 5, DstPort: 4},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 6},
	}
	h := base.FlowHash(42)
	for i, v := range variants {
		if v.FlowHash(42) == h {
			t.Errorf("variant %d hash collides with base (weak hash)", i)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flags: FlagData, FlowID: 7, Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Seq: 100, PayloadLen: 1400}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
	ack := &Packet{Flags: FlagAck, AckSeq: 1400}
	if s := ack.String(); s == "" {
		t.Error("empty String() for ACK")
	}
	syn := &Packet{Flags: FlagSYN}
	fin := &Packet{Flags: FlagFIN}
	if syn.String() == fin.String() {
		t.Error("SYN and FIN render identically")
	}
}

func TestLiveLinksFiltering(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	links := make([]*Link, 4)
	for i := range links {
		links[i] = NewLink(eng, sw, newSink(eng, NodeID(i)), 1_000_000_000, 0, 10, LayerAgg)
	}
	// All alive: the exact input slice comes back (no allocation).
	if got := LiveLinks(links); &got[0] != &links[0] || len(got) != 4 {
		t.Error("all-alive fast path must return the input slice")
	}
	links[1].SetRouteDead(true)
	links[3].SetRouteDead(true)
	got := LiveLinks(links)
	if len(got) != 2 || got[0] != links[0] || got[1] != links[2] {
		t.Errorf("filtered set = %v, want links 0 and 2", got)
	}
	// Everything dead: empty, not nil-panicking.
	links[0].SetRouteDead(true)
	links[2].SetRouteDead(true)
	if got := LiveLinks(links); len(got) != 0 {
		t.Errorf("all-dead set has %d links", len(got))
	}
	links[1].SetRouteDead(false)
	if got := LiveLinks(links); len(got) != 1 || got[0] != links[1] {
		t.Error("revived link missing from live set")
	}
}

func TestSwitchNoRouteDropsGracefully(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	dst := newSink(eng, 1)
	l := NewLink(eng, sw, dst, 1_000_000_000, 0, 10, LayerEdge)
	sw.SetRouter(&staticRouter{nil}) // failure window: no surviving route
	sw.Receive(dataPacket(1500), nil)
	sw.Receive(dataPacket(1500), nil)
	eng.Run()
	if len(dst.packets) != 0 {
		t.Fatal("packets forwarded despite empty route set")
	}
	if sw.NoRoute != 2 {
		t.Errorf("no-route drops = %d, want 2", sw.NoRoute)
	}
	if sw.Forwarded != 0 {
		t.Errorf("forwarded = %d, want 0", sw.Forwarded)
	}
	// Routing heals: forwarding resumes.
	sw.SetRouter(&staticRouter{[]*Link{l}})
	sw.Receive(dataPacket(1500), nil)
	eng.Run()
	if len(dst.packets) != 1 {
		t.Error("forwarding did not resume after routes returned")
	}
}

func TestSwitchExcludesRouteDeadLink(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	sinks := make([]*sink, 4)
	links := make([]*Link, 4)
	for i := range links {
		sinks[i] = newSink(eng, NodeID(i))
		links[i] = NewLink(eng, sw, sinks[i], 10_000_000_000, 0, 100000, LayerAgg)
	}
	// Route through LiveLinks, as every topology router does.
	sw.SetRouter(&liveRouter{links})
	rng := sim.NewRNG(1)
	deadIdx := 2
	links[deadIdx].SetRouteDead(true)
	const n = 4000
	for i := 0; i < n; i++ {
		p := dataPacket(1500)
		p.SrcPort = uint16(rng.Intn(1 << 16)) // scatter across the set
		sw.Receive(p, nil)
	}
	eng.Run()
	if len(sinks[deadIdx].packets) != 0 {
		t.Errorf("route-dead link carried %d packets", len(sinks[deadIdx].packets))
	}
	// The survivors absorb the spray roughly evenly.
	for i, s := range sinks {
		if i == deadIdx {
			continue
		}
		if len(s.packets) < n/3-n/8 || len(s.packets) > n/3+n/8 {
			t.Errorf("survivor %d got %d packets, want about %d", i, len(s.packets), n/3)
		}
	}
}

// liveRouter is staticRouter with the liveness filtering every real
// Router implementation applies.
type liveRouter struct{ links []*Link }

func (r *liveRouter) NextLinks(dst NodeID) []*Link { return LiveLinks(r.links) }

func TestSwitchCrashState(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 100, 7)
	s := newSink(eng, 0)
	link := NewLink(eng, sw, s, 1_000_000_000, 0, 10, LayerAgg)
	sw.SetRouter(&staticRouter{[]*Link{link}})

	eng.At(10*sim.Millisecond, func() { sw.SetDown(true) })
	eng.At(20*sim.Millisecond, func() {
		if !sw.Down() {
			t.Error("switch not down")
		}
		// Redundant crash sources must not double-count.
		sw.SetDown(true)
		sw.Receive(dataPacket(1500), nil)
	})
	eng.At(30*sim.Millisecond, func() { sw.SetDown(false) })
	eng.Run()
	if sw.Down() {
		t.Error("switch still down after restart")
	}
	if sw.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", sw.Crashes)
	}
	if sw.CrashDrops != 1 || sw.Forwarded != 0 {
		t.Errorf("crashed switch forwarded: crash_drops=%d forwarded=%d", sw.CrashDrops, sw.Forwarded)
	}
	if sw.TimeDown(eng.Now()) != 20*sim.Millisecond {
		t.Errorf("downtime = %v, want 20ms", sw.TimeDown(eng.Now()))
	}
}
