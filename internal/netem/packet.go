// Package netem implements the packet-level network elements of the
// simulator: packets, unidirectional links with drop-tail FIFO queues and
// store-and-forward serialisation, hosts that demultiplex packets to
// transport endpoints, and switches that forward with hash-based ECMP
// (RFC 2992 style) over equal-cost next-hop sets.
//
// Everything is single-threaded on top of a sim.Engine. Layering follows
// the gopacket philosophy of explicit flows and endpoints: a packet's
// 5-tuple identifies its flow for ECMP purposes, while demultiplexing at
// hosts uses an explicit flow identifier (the simulation equivalent of a
// connection lookup).
package netem

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a node (host or switch) in the simulated network.
type NodeID int32

// MaxSackBlocks is the number of SACK ranges a packet can carry (the
// RFC 2018 practical limit with timestamps in play).
const MaxSackBlocks = 3

// Flag bits carried by a Packet.
const (
	FlagData uint8 = 1 << iota // carries payload bytes
	FlagAck                    // carries a cumulative acknowledgement
	FlagSYN                    // subflow establishment
	FlagFIN                    // sender finished
)

// Packet is a simulated network packet. Packets are allocated per
// transmission and carry both the routing fields used by switches and the
// transport fields used by the TCP/MPTCP/MMPTCP endpoints. A Packet must
// not be mutated after being handed to a link, except by the eventual
// receiving endpoint.
type Packet struct {
	// Routing fields (the ECMP 5-tuple; protocol is implicitly TCP).
	Src, Dst         NodeID
	SrcPort, DstPort uint16

	// Size is the total on-wire size in bytes (headers + payload).
	Size int

	// FlowID identifies the connection for endpoint demultiplexing, and
	// Subflow the subflow within an MPTCP/MMPTCP connection. Using an
	// explicit identifier rather than the port pair lets packet-scatter
	// flows randomise their source port per packet without breaking
	// receive-side demultiplexing, mirroring how MPTCP identifies
	// subflows by token rather than by 4-tuple alone.
	FlowID  uint64
	Subflow int8

	Flags uint8

	// Subflow-level sequence space (bytes).
	Seq        int64 // sequence number of first payload byte
	PayloadLen int   // payload bytes carried (0 for pure ACKs)
	AckSeq     int64 // cumulative ACK (valid when FlagAck set)

	// Data-level (connection-wide) sequence space for MPTCP/MMPTCP.
	DataSeq int64 // data sequence of first payload byte

	// EchoTS carries the timestamp echoed by the receiver for RTT
	// estimation (TCP timestamps, RFC 7323 style).
	SentTS sim.Time // stamped by the sender on transmission
	EchoTS sim.Time // echoed by the receiver in ACKs

	// EchoDup is set on an ACK when the data segment that triggered it
	// carried only already-received bytes — the DSACK-style signal
	// (RR-TCP, the paper's §2 alternative) that a retransmission was
	// spurious, used by adaptive duplicate-ACK thresholds.
	EchoDup bool

	// Sack carries up to MaxSackBlocks received-but-not-cumulative byte
	// ranges (RFC 2018 SACK blocks), attached by receivers whenever the
	// reorder buffer has holes; SackN is how many entries are valid.
	// Senders without SACK enabled ignore both. A fixed array rather
	// than a slice keeps ACK generation allocation-free — the bound
	// matches the three blocks that fit a real SACK option alongside
	// timestamps.
	Sack  [MaxSackBlocks][2]int64
	SackN uint8

	// Retx marks retransmitted data segments (used by stats only; RTT
	// sampling uses timestamps and is immune to retransmission
	// ambiguity).
	Retx bool

	// ECN congestion-experienced mark, set by queues whose ECN
	// threshold is exceeded (used by the DCTCP extension), and its
	// receiver echo on the returning ACK.
	CE     bool
	EchoCE bool

	// Hops counts traversed links, as a routing-loop backstop.
	Hops int
}

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return p.Flags&FlagData != 0 }

// IsAck reports whether the packet carries an acknowledgement.
func (p *Packet) IsAck() bool { return p.Flags&FlagAck != 0 }

// String renders a compact single-line summary for traces and tests.
func (p *Packet) String() string {
	kind := "?"
	switch {
	case p.Flags&FlagSYN != 0:
		kind = "SYN"
	case p.IsData():
		kind = "DATA"
	case p.IsAck():
		kind = "ACK"
	case p.Flags&FlagFIN != 0:
		kind = "FIN"
	}
	return fmt.Sprintf("%s flow=%d/%d %d:%d->%d:%d seq=%d len=%d ack=%d",
		kind, p.FlowID, p.Subflow, p.Src, p.SrcPort, p.Dst, p.DstPort,
		p.Seq, p.PayloadLen, p.AckSeq)
}

// FlowHash returns the ECMP hash of the packet's 5-tuple mixed with a
// per-switch seed. It is deterministic: the same 5-tuple always hashes to
// the same value at the same switch, which is exactly the property that
// per-packet source-port randomisation exploits to scatter packets.
func (p *Packet) FlowHash(seed uint32) uint32 {
	// FNV-1a over the 5-tuple bytes, seeded and fully unrolled: this runs
	// once per packet per switch hop, and a per-call mixing closure would
	// both allocate nothing yet keep the whole function from inlining.
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32) ^ seed
	h = (h ^ uint32(byte(p.Src))) * prime32
	h = (h ^ uint32(byte(p.Src>>8))) * prime32
	h = (h ^ uint32(byte(p.Src>>16))) * prime32
	h = (h ^ uint32(byte(p.Src>>24))) * prime32
	h = (h ^ uint32(byte(p.Dst))) * prime32
	h = (h ^ uint32(byte(p.Dst>>8))) * prime32
	h = (h ^ uint32(byte(p.Dst>>16))) * prime32
	h = (h ^ uint32(byte(p.Dst>>24))) * prime32
	h = (h ^ uint32(byte(p.SrcPort))) * prime32
	h = (h ^ uint32(byte(p.SrcPort>>8))) * prime32
	h = (h ^ uint32(byte(p.DstPort))) * prime32
	h = (h ^ uint32(byte(p.DstPort>>8))) * prime32
	// FNV's low bits are linear in the input bits, which would make the
	// modulo-N choices of consecutive switches perfectly correlated.
	// A murmur3-style avalanche finaliser decorrelates them.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
