package netem

import (
	"fmt"

	"repro/internal/sim"
)

// Endpoint is the interface implemented by transport endpoints (TCP
// senders and receivers, MPTCP subflows, MMPTCP packet-scatter flows).
// A host demultiplexes each received packet to the endpoint registered
// under the packet's (FlowID, Subflow) pair.
type Endpoint interface {
	HandlePacket(p *Packet)
}

type endpointKey struct {
	flow uint64
	sub  int8
}

// Host is an end system: it terminates one or more access links (more
// than one on multi-homed topologies) and demultiplexes packets to the
// transport endpoints registered on it.
type Host struct {
	id        NodeID
	eng       *sim.Engine
	uplinks   []*Link
	endpoints map[endpointKey]Endpoint

	// pool recycles packets: transports allocate from it via NewPacket,
	// and Receive returns every delivered packet to it once the endpoint
	// has consumed it. Nil disables recycling.
	pool *PacketPool

	// Stats
	RxPackets int64
	RxBytes   int64
	TxPackets int64
	Unclaimed int64 // packets with no registered endpoint (late/stale)
}

// NewHost creates a host with the given identifier. Uplinks are attached
// by the topology builder via AttachUplink.
func NewHost(eng *sim.Engine, id NodeID) *Host {
	return &Host{
		id:        id,
		eng:       eng,
		endpoints: make(map[endpointKey]Endpoint),
	}
}

// ID returns the host's node identifier.
func (h *Host) ID() NodeID { return h.id }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// SetPool installs the packet free list shared by the host's network;
// nil (the default) disables recycling.
func (h *Host) SetPool(pp *PacketPool) { h.pool = pp }

// Rebind repoints the host at a shard's engine and packet pool, so
// transports constructed against it schedule onto the owning shard's
// heap and recycle into a pool that shard alone touches. Sequential
// runs never call it.
func (h *Host) Rebind(eng *sim.Engine, pp *PacketPool) { h.eng, h.pool = eng, pp }

// NewPacket returns a zeroed packet for transmission, recycled from the
// network's pool when one is available. Transport endpoints allocate
// every outgoing packet through the host so delivery terminals can hand
// the memory back.
func (h *Host) NewPacket() *Packet { return h.pool.Get() }

// AttachUplink adds an access link whose source is this host. The first
// attached uplink is the default interface.
func (h *Host) AttachUplink(l *Link) {
	if l.Src() != Node(h) {
		panic("netem: uplink source is not this host")
	}
	h.uplinks = append(h.uplinks, l)
}

// Uplinks returns the host's access links (length > 1 only on
// multi-homed topologies).
func (h *Host) Uplinks() []*Link { return h.uplinks }

// Register binds an endpoint to (flowID, subflow) so that packets
// addressed to it are delivered. Registering over an existing binding
// panics: endpoint identifiers must be unique by construction.
func (h *Host) Register(flowID uint64, subflow int8, ep Endpoint) {
	k := endpointKey{flowID, subflow}
	if _, dup := h.endpoints[k]; dup {
		panic(fmt.Sprintf("netem: duplicate endpoint registration flow=%d sub=%d on host %d", flowID, subflow, h.id))
	}
	h.endpoints[k] = ep
}

// Unregister removes the binding for (flowID, subflow), if present.
func (h *Host) Unregister(flowID uint64, subflow int8) {
	delete(h.endpoints, endpointKey{flowID, subflow})
}

// Reset clears endpoint registrations and statistics for run-instance
// reuse. Transports unregister themselves on Close, so after a completed
// run the endpoint map is already empty; clearing it here makes reuse
// safe even after a run aborted mid-flight (context cancellation).
func (h *Host) Reset() {
	clear(h.endpoints)
	h.RxPackets = 0
	h.RxBytes = 0
	h.TxPackets = 0
	h.Unclaimed = 0
}

// Send transmits a packet out of the host's default interface.
func (h *Host) Send(p *Packet) { h.SendOn(p, 0) }

// SendOn transmits a packet out of interface iface (for multi-homed
// hosts). An out-of-range interface panics: callers choose interfaces
// from Uplinks and a mismatch is a programming error.
func (h *Host) SendOn(p *Packet, iface int) {
	if iface < 0 || iface >= len(h.uplinks) {
		panic(fmt.Sprintf("netem: host %d has no interface %d", h.id, iface))
	}
	h.TxPackets++
	h.uplinks[iface].Enqueue(p)
}

// Receive implements Node: it demultiplexes the packet to the endpoint
// registered under its (FlowID, Subflow) pair, then recycles it — host
// delivery is a packet's terminal point, so endpoints must copy out any
// fields they keep beyond HandlePacket. Packets for unknown endpoints
// are counted and discarded, which is what happens to segments that
// arrive after a connection has been torn down.
func (h *Host) Receive(p *Packet, from *Link) {
	h.RxPackets++
	h.RxBytes += int64(p.Size)
	if ep, ok := h.endpoints[endpointKey{p.FlowID, p.Subflow}]; ok {
		ep.HandlePacket(p)
		h.pool.Put(p)
		return
	}
	// Fall back to the connection-level endpoint (subflow -1), used by
	// receivers that accept every subflow of a connection.
	if ep, ok := h.endpoints[endpointKey{p.FlowID, -1}]; ok {
		ep.HandlePacket(p)
		h.pool.Put(p)
		return
	}
	h.Unclaimed++
	h.pool.Put(p)
}
