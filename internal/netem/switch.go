package netem

import (
	"fmt"

	"repro/internal/sim"
)

// Router computes the set of equal-cost output links a switch may use to
// reach a packet's destination. Implementations are provided by the
// topology package (structured FatTree routing, generic shortest-path
// tables for arbitrary graphs).
type Router interface {
	// NextLinks returns the equal-cost output links toward dst. It must
	// return a non-empty slice for every reachable destination, and the
	// returned slice must not be modified by the caller.
	NextLinks(dst NodeID) []*Link
}

// maxHops bounds packet forwarding as a routing-loop backstop. The
// deepest sane path in any supported topology is well under this.
const maxHops = 32

// Switch is an output-queued switch that forwards packets using
// hash-based ECMP: among the equal-cost links returned by its Router, it
// picks the one selected by a hash of the packet's 5-tuple mixed with a
// per-switch seed. Equal 5-tuples therefore always follow the same path
// (no intra-flow reordering from the network itself), while distinct
// source ports spread uniformly — the property both MPTCP subflows and
// MMPTCP's packet-scatter phase rely on.
type Switch struct {
	id     NodeID
	eng    *sim.Engine
	router Router
	seed   uint32

	// Stats
	Forwarded int64
	Dropped   int64 // packets discarded due to the hop-count backstop
}

// NewSwitch creates a switch. seed perturbs the ECMP hash so that
// different switches make independent choices for the same flow, as
// hardware hash functions with per-device keys do.
func NewSwitch(eng *sim.Engine, id NodeID, seed uint32) *Switch {
	return &Switch{id: id, eng: eng, seed: seed}
}

// ID returns the switch's node identifier.
func (s *Switch) ID() NodeID { return s.id }

// SetRouter installs the routing function. Topology builders call this
// once wiring is complete.
func (s *Switch) SetRouter(r Router) { s.router = r }

// Receive implements Node: look up the equal-cost set for the packet's
// destination, pick a link by flow hash, and enqueue.
func (s *Switch) Receive(p *Packet, from *Link) {
	if p.Hops > maxHops {
		s.Dropped++
		return
	}
	links := s.router.NextLinks(p.Dst)
	n := len(links)
	if n == 0 {
		panic(fmt.Sprintf("netem: switch %d has no route to %d", s.id, p.Dst))
	}
	var out *Link
	if n == 1 {
		out = links[0]
	} else {
		out = links[p.FlowHash(s.seed)%uint32(n)]
	}
	s.Forwarded++
	out.Enqueue(p)
}
