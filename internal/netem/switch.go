package netem

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Router computes the set of equal-cost output links a switch may use to
// reach a packet's destination. Implementations are provided by the
// topology package (structured FatTree routing, generic shortest-path
// tables for arbitrary graphs).
type Router interface {
	// NextLinks returns the equal-cost output links toward dst. For a
	// reachable destination on a healthy network the slice is non-empty;
	// during a failure window it may be empty if every candidate link
	// has been excluded by reconverged routing (the switch then drops
	// the packet). The returned slice must not be modified by the caller.
	NextLinks(dst NodeID) []*Link
}

// LiveLinks filters route-dead links (see Link.SetRouteDead) out of an
// equal-cost set. In the common all-alive case the input slice is
// returned unchanged, so the healthy forwarding path stays allocation
// free; during failure windows a fresh filtered slice — possibly empty —
// is built. Router implementations call this on every lookup, which is
// what makes them converge onto surviving paths after a failure.
func LiveLinks(links []*Link) []*Link {
	for i, l := range links {
		if l.routeDead {
			out := make([]*Link, i, len(links))
			copy(out, links[:i])
			for _, m := range links[i+1:] {
				if !m.routeDead {
					out = append(out, m)
				}
			}
			return out
		}
	}
	return links
}

// VersionedRouter is implemented by routers that version their tables —
// the routing control plane's per-switch FIBs. The switch consults it on
// every lookup so damage done while the fabric disagrees with itself
// (staggered convergence) is attributed to the transient window rather
// than folded into steady-state noise.
type VersionedRouter interface {
	Router
	// Staging reports whether staged (per-switch) convergence is enabled
	// for this router at all. A switch consults the epoch on lookup only
	// when it is: under atomic convergence Stale/Transient can never be
	// true, and the hot path stays a plain nil check.
	Staging() bool
	// Epoch returns the version of the table serving lookups: the number
	// of staged flips this switch has applied.
	Epoch() uint64
	// Stale reports whether a recomputed table is staged at this switch
	// but has not yet flipped in — lookups are served by the old epoch.
	Stale() bool
	// Transient reports whether the network-wide staggered window is
	// open: some switch has flipped to the new tables while another
	// still serves the old ones.
	Transient() bool
}

// maxHops bounds packet forwarding as a routing-loop backstop. The
// deepest sane path in any supported topology is well under this.
const maxHops = 32

// Switch is an output-queued switch that forwards packets using
// hash-based ECMP: among the equal-cost links returned by its Router, it
// picks the one selected by a hash of the packet's 5-tuple mixed with a
// per-switch seed. Equal 5-tuples therefore always follow the same path
// (no intra-flow reordering from the network itself), while distinct
// source ports spread uniformly — the property both MPTCP subflows and
// MMPTCP's packet-scatter phase rely on.
type Switch struct {
	id     NodeID
	eng    *sim.Engine
	router Router
	// vrouter caches the router's VersionedRouter view (nil for plain
	// routers), so the per-lookup epoch consultation is a nil check plus
	// at most one interface call rather than a type assertion.
	vrouter VersionedRouter
	seed    uint32

	// down marks a crashed switch (all ports dead, forwarding plane
	// gone). The faults subsystem drives it together with the incident
	// links; see SetDown.
	down      bool
	downSince sim.Time

	// pool recycles packets the switch drops (no route, hop backstop,
	// crashed forwarding plane); nil disables recycling.
	pool *PacketPool

	// rec, when non-nil, receives structured trace events for the
	// switch's drop classes; nil-guarded at every trace point.
	rec *trace.Recorder

	// Stats
	Forwarded int64
	Dropped   int64 // packets discarded due to the hop-count backstop
	// LoopDrops counts hop-backstop drops that happened while the
	// routing transient window was open — switches disagreeing about the
	// tables is what breeds forwarding micro-loops — as distinct from
	// the steady-state hop-limit noise in Dropped. Always zero under
	// atomic convergence.
	LoopDrops int64
	// NoRoute counts packets dropped because the router returned an
	// empty equal-cost set — every candidate link toward the destination
	// was excluded by failures. On a healthy network this stays zero.
	NoRoute int64
	// TransientNoRoute is the slice of NoRoute that fell inside an open
	// staggered-convergence window: blackholes bred by the fabric's
	// momentary disagreement rather than by the failure itself.
	TransientNoRoute int64
	// StaleLookups counts lookups served while a recomputed table was
	// staged at this switch but not yet flipped in — the traffic exposed
	// to the old epoch during the transient window.
	StaleLookups int64
	// Crashes counts how many times the switch went down, and CrashDrops
	// the packets that reached it while crashed (rare: the incident links
	// blackhole almost everything first, but a packet already queued on
	// an inbound link when the crash fires can still arrive).
	Crashes    int64
	CrashDrops int64
	// DownTime accumulates completed down intervals; TimeDown adds a
	// still-open one.
	DownTime sim.Time
}

// NewSwitch creates a switch. seed perturbs the ECMP hash so that
// different switches make independent choices for the same flow, as
// hardware hash functions with per-device keys do.
func NewSwitch(eng *sim.Engine, id NodeID, seed uint32) *Switch {
	return &Switch{id: id, eng: eng, seed: seed}
}

// ID returns the switch's node identifier.
func (s *Switch) ID() NodeID { return s.id }

// SetRouter installs the routing function. Topology builders call this
// once wiring is complete, and the routing control plane swaps in its
// per-switch FIB when global reconvergence is enabled.
func (s *Switch) SetRouter(r Router) {
	s.router = r
	s.vrouter = nil
	if vr, ok := r.(VersionedRouter); ok && vr.Staging() {
		s.vrouter = vr
	}
}

// Router returns the currently installed routing function.
func (s *Switch) Router() Router { return s.router }

// SetSeed replaces the per-switch ECMP hash seed. Topology builders seed
// switches at construction; run-instance pooling re-derives the same
// seed stream for a recycled network when the reused config carries a
// different experiment seed.
func (s *Switch) SetSeed(seed uint32) { s.seed = seed }

// Reset clears the switch's crash state and statistics for run-instance
// reuse. The router is deliberately untouched: restoring the as-built
// router after a control plane wrapped it is the topology's job (it is
// the one that recorded the base), via Network.Reset.
func (s *Switch) Reset() {
	s.down = false
	s.downSince = 0
	s.Forwarded = 0
	s.Dropped = 0
	s.LoopDrops = 0
	s.NoRoute = 0
	s.TransientNoRoute = 0
	s.StaleLookups = 0
	s.Crashes = 0
	s.CrashDrops = 0
	s.DownTime = 0
	s.rec = nil
}

// SetPool installs the packet free list the switch recycles dropped
// packets into; nil (the default) disables recycling.
func (s *Switch) SetPool(pp *PacketPool) { s.pool = pp }

// Rebind repoints the switch at its owning shard's engine and packet
// pool; see Host.Rebind.
func (s *Switch) Rebind(eng *sim.Engine, pp *PacketPool) { s.eng, s.pool = eng, pp }

// SetRecorder installs (or, with nil, removes) the structured event
// recorder; the run harness re-installs it per run.
func (s *Switch) SetRecorder(r *trace.Recorder) { s.rec = r }

// Down reports whether the switch is crashed.
func (s *Switch) Down() bool { return s.down }

// SetDown crashes or restarts the switch. The faults injector pairs this
// with failing/repairing every incident link, so the flag is mostly
// accounting: Crashes counts crash events, DownTime the time spent dead,
// and Receive discards anything that still arrives while down.
func (s *Switch) SetDown(down bool) {
	if down == s.down {
		return
	}
	now := s.eng.Now()
	if down {
		s.down = true
		s.Crashes++
		s.downSince = now
		return
	}
	s.down = false
	s.DownTime += now - s.downSince
}

// TimeDown returns the total time the switch has spent crashed up to
// now, including a still-open crash interval.
func (s *Switch) TimeDown(now sim.Time) sim.Time {
	d := s.DownTime
	if s.down && now > s.downSince {
		d += now - s.downSince
	}
	return d
}

// Receive implements Node: look up the equal-cost set for the packet's
// destination, pick a link by flow hash, and enqueue. A packet with no
// surviving route is counted and dropped — transports see the loss the
// same way they see a blackhole, through silence.
func (s *Switch) Receive(p *Packet, from *Link) {
	if s.down {
		s.CrashDrops++
		if s.rec != nil {
			s.rec.Record(s.eng.Now(), trace.KindCrashDrop, p.FlowID, p.Subflow, int32(s.id), -1, p.Seq, 0)
		}
		s.pool.Put(p)
		return
	}
	if p.Hops > maxHops {
		transient := s.vrouter != nil && s.vrouter.Transient()
		if transient {
			s.LoopDrops++
		} else {
			s.Dropped++
		}
		if s.rec != nil {
			kind := trace.KindHopDrop
			if transient {
				kind = trace.KindLoopDrop
			}
			s.rec.Record(s.eng.Now(), kind, p.FlowID, p.Subflow, int32(s.id), -1, int64(p.Hops), 0)
		}
		s.pool.Put(p)
		return
	}
	links := s.router.NextLinks(p.Dst)
	if s.vrouter != nil && s.vrouter.Stale() {
		s.StaleLookups++
	}
	n := len(links)
	if n == 0 {
		s.NoRoute++
		transient := int64(0)
		if s.vrouter != nil && s.vrouter.Transient() {
			s.TransientNoRoute++
			transient = 1
		}
		if s.rec != nil {
			s.rec.Record(s.eng.Now(), trace.KindNoRouteDrop, p.FlowID, p.Subflow, int32(s.id), -1, transient, 0)
		}
		s.pool.Put(p)
		return
	}
	var out *Link
	if n == 1 {
		out = links[0]
	} else {
		out = links[p.FlowHash(s.seed)%uint32(n)]
	}
	s.Forwarded++
	out.Enqueue(p)
}
