package netem

import (
	"testing"
	"testing/quick"
)

// TestPacketPoolRecycles checks Get returns a fully zeroed packet even
// after recycling a dirty one, and that the counters track traffic.
func TestPacketPoolRecycles(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	p.Src, p.Dst = 3, 4
	p.Flags = FlagData | FlagAck
	p.Seq, p.AckSeq, p.DataSeq = 100, 200, 300
	p.Sack[0] = [2]int64{1, 2}
	p.SackN = 1
	p.Hops = 7
	p.CE, p.EchoDup, p.Retx = true, true, true
	pp.Put(p)
	q := pp.Get()
	if q != p {
		t.Fatal("pool did not reuse the recycled packet")
	}
	if *q != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
	if pp.Gets != 2 || pp.Recycled != 1 {
		t.Errorf("counters = %d gets / %d recycled, want 2/1", pp.Gets, pp.Recycled)
	}
}

// TestPacketPoolNilSafe: a nil pool must behave like plain allocation,
// so hand-built test networks need no wiring.
func TestPacketPoolNilSafe(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pp.Put(p) // must not panic
}

// referenceFlowHash is the original closure-based FNV-1a implementation,
// kept verbatim as the fixture the unrolled hot-path version must match
// bit for bit: ECMP path choices — and therefore every simulation result
// — depend on this hash.
func referenceFlowHash(p *Packet, seed uint32) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32) ^ seed
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	mix(byte(p.Src))
	mix(byte(p.Src >> 8))
	mix(byte(p.Src >> 16))
	mix(byte(p.Src >> 24))
	mix(byte(p.Dst))
	mix(byte(p.Dst >> 8))
	mix(byte(p.Dst >> 16))
	mix(byte(p.Dst >> 24))
	mix(byte(p.SrcPort))
	mix(byte(p.SrcPort >> 8))
	mix(byte(p.DstPort))
	mix(byte(p.DstPort >> 8))
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// TestFlowHashMatchesReference pins the unrolled FlowHash to the
// original implementation over random 5-tuples and seeds.
func TestFlowHashMatchesReference(t *testing.T) {
	f := func(src, dst int32, sport, dport uint16, seed uint32) bool {
		p := &Packet{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sport, DstPort: dport}
		return p.FlowHash(seed) == referenceFlowHash(p, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
