// Package prof is the tiny shared profiling harness behind the
// -cpuprofile/-memprofile flags of cmd/mmptcpsim, cmd/figures and
// cmd/bench: start a CPU profile, run the workload, stop it, and write
// a heap profile at exit. It wraps runtime/pprof so the three commands
// share flag semantics (empty path = off) and error handling.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile written to path and returns the function
// that stops it; an empty path is a no-op (the returned stop function
// is still safe to call). Defer the stop function immediately.
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC (so
// the profile reflects live heap, not collectable garbage); an empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: write mem profile: %w", err)
	}
	return nil
}
