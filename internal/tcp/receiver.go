package tcp

import (
	"repro/internal/netem"
	"repro/internal/sim"
)

// ReceiverStats accumulates receive-side counters.
type ReceiverStats struct {
	DataPackets int64 // data packets received (including duplicates)
	DupBytes    int64 // payload bytes already present in the buffer
	AcksSent    int64
	MaxReorder  int // worst observed reorder-buffer fragmentation
}

// subState is the per-subflow receive state: a reorder buffer over the
// subflow's sequence space.
type subState struct {
	buf SeqSet
}

// Receiver is the receive side of a connection. A single Receiver serves
// every subflow of an MPTCP/MMPTCP connection (it registers at the
// connection level): it keeps one reorder buffer per subflow for
// cumulative ACK generation, and one data-level interval set to detect
// completion of the whole transfer.
type Receiver struct {
	eng  sim.EventScheduler
	cfg  Config
	host *netem.Host

	flowID uint64
	size   int64 // expected data bytes; -1 for unbounded flows

	subs map[int8]*subState
	data SeqSet

	delivered int64
	complete  bool

	// FirstDataAt and CompletedAt bracket the transfer for FCT
	// accounting (zero until the corresponding event happens).
	FirstDataAt sim.Time
	CompletedAt sim.Time

	Stats ReceiverStats

	// OnComplete fires once, when all size bytes have been received at
	// the data level.
	OnComplete func()
}

// NewReceiver creates a receiver for flowID expecting size data bytes
// (-1 for an unbounded background flow) and registers it on the host at
// the connection level, so it serves every subflow.
func NewReceiver(eng sim.EventScheduler, cfg Config, host *netem.Host, flowID uint64, size int64) *Receiver {
	cfg.applyDefaults()
	r := &Receiver{
		eng:    eng,
		cfg:    cfg,
		host:   host,
		flowID: flowID,
		size:   size,
		subs:   make(map[int8]*subState),
	}
	host.Register(flowID, -1, r)
	return r
}

// Delivered returns the number of distinct data-level bytes received.
func (r *Receiver) Delivered() int64 { return r.delivered }

// Complete reports whether the full transfer has been received.
func (r *Receiver) Complete() bool { return r.complete }

// HandlePacket implements netem.Endpoint: accept data, update the
// subflow reorder buffer and the data-level delivery set, and emit a
// cumulative ACK for the subflow.
func (r *Receiver) HandlePacket(p *netem.Packet) {
	if !p.IsData() {
		return
	}
	r.Stats.DataPackets++
	if r.FirstDataAt == 0 {
		r.FirstDataAt = r.eng.Now()
	}
	sub, ok := r.subs[p.Subflow]
	if !ok {
		sub = &subState{}
		r.subs[p.Subflow] = sub
	}
	newSub := sub.buf.Add(p.Seq, p.Seq+int64(p.PayloadLen))
	if newSub < int64(p.PayloadLen) {
		r.Stats.DupBytes += int64(p.PayloadLen) - newSub
	}
	if f := sub.buf.Fragments(); f > r.Stats.MaxReorder {
		r.Stats.MaxReorder = f
	}

	// Cumulative ACK for this subflow, echoing the sender timestamp.
	// A fully-duplicate segment raises the DSACK-style EchoDup signal;
	// out-of-order holdings are advertised as SACK blocks (RFC 2018).
	// The ACK comes from the network's packet pool and its SACK ranges
	// are written in place, so per-packet acknowledgement allocates
	// nothing.
	cum := sub.buf.ContiguousFrom(0)
	ack := r.host.NewPacket()
	ack.Src = r.host.ID()
	ack.Dst = p.Src
	ack.SrcPort = p.DstPort
	ack.DstPort = p.SrcPort
	ack.Size = r.cfg.HeaderBytes
	ack.FlowID = p.FlowID
	ack.Subflow = p.Subflow
	ack.Flags = netem.FlagAck
	ack.AckSeq = cum
	ack.EchoTS = p.SentTS
	ack.EchoDup = newSub == 0 && p.PayloadLen > 0
	ack.EchoCE = p.CE
	ack.SackN = uint8(sub.buf.BlocksInto(cum, &ack.Sack))
	r.Stats.AcksSent++
	r.host.Send(ack)

	// Data-level delivery tracking.
	r.delivered += r.data.Add(p.DataSeq, p.DataSeq+int64(p.PayloadLen))
	if r.size >= 0 && !r.complete && r.delivered >= r.size {
		r.complete = true
		r.CompletedAt = r.eng.Now()
		if r.OnComplete != nil {
			r.OnComplete()
		}
	}
}

// Close removes the receiver's host registration.
func (r *Receiver) Close() {
	r.host.Unregister(r.flowID, -1)
}
