package tcp

import "repro/internal/sim"

// Config carries the TCP parameters shared by all protocols in the
// simulation. The defaults mirror the ns-3 setup of the paper's era:
// 1400-byte segments, an initial window of 2 segments, duplicate-ACK
// threshold 3, a 200 ms minimum RTO (the mechanism behind the paper's
// short-flow tail) and a 1 s initial RTO before the first RTT sample.
type Config struct {
	MSS             int      // payload bytes per segment
	HeaderBytes     int      // on-wire header overhead per packet
	InitialWindow   int      // initial congestion window, in segments
	DupAckThreshold int      // duplicate ACKs triggering fast retransmit
	MinRTO          sim.Time // lower bound on the retransmission timeout
	MaxRTO          sim.Time // upper bound on the (backed-off) timeout
	InitialRTO      sim.Time // RTO before the first RTT sample
}

// DefaultConfig returns the simulation-wide default TCP parameters.
func DefaultConfig() Config {
	return Config{
		MSS:             1400,
		HeaderBytes:     60,
		InitialWindow:   2,
		DupAckThreshold: 3,
		MinRTO:          200 * sim.Millisecond,
		MaxRTO:          60 * sim.Second,
		InitialRTO:      1 * sim.Second,
	}
}

// SegmentsFor returns the number of segments needed to carry n bytes.
func (c Config) SegmentsFor(n int64) int {
	return int((n + int64(c.MSS) - 1) / int64(c.MSS))
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = d.HeaderBytes
	}
	if c.InitialWindow == 0 {
		c.InitialWindow = d.InitialWindow
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = d.DupAckThreshold
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = d.InitialRTO
	}
}
