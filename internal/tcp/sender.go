package tcp

import (
	"fmt"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SenderStats accumulates per-sender counters. The paper's Figure 1
// analysis hinges on Timeouts: "even a single RTO may result in flow
// deadline violation".
type SenderStats struct {
	SegmentsSent    int64 // data segments transmitted (including retransmissions)
	BytesSent       int64 // payload bytes transmitted (including retransmissions)
	Retransmissions int64 // retransmitted segments
	FastRetransmits int64 // fast-retransmit events entered
	Timeouts        int64 // retransmission timeouts fired
	AcksReceived    int64
	DupAcksReceived int64
	// SpuriousSignals counts DSACK-style duplicate-arrival echoes: each
	// one is evidence that a retransmission was unnecessary.
	SpuriousSignals int64
}

// mapping records which data-level chunk occupies a subflow-level
// segment, so retransmissions carry the same data sequence.
type mapping struct {
	subSeq  int64
	dataSeq int64
	n       int
}

// Sender is a TCP NewReno sender over the simulated network. One Sender
// drives one subflow; plain TCP is a single Sender with the identity
// source. It implements netem.Endpoint to consume ACKs.
type Sender struct {
	eng  sim.EventScheduler
	cfg  Config
	host *netem.Host

	iface   int
	dst     netem.NodeID
	flowID  uint64
	subflow int8
	srcPort uint16
	dstPort uint16

	// Scatter, when non-nil, supplies a fresh source port for every
	// data packet (MMPTCP packet-scatter phase). ACKs still identify
	// the flow via FlowID, so demultiplexing is unaffected; only the
	// ECMP hash changes per packet.
	scatter func() uint16

	// ifacePicker, when non-nil, chooses the outgoing interface per
	// packet (multi-homed hosts: the packet-scatter phase sprays
	// across every NIC, per the paper's multi-homing roadmap).
	ifacePicker func() int

	src DataSource
	cc  CongestionControl

	// DupThresh is the duplicate-ACK threshold for fast retransmit.
	// Plain TCP uses cfg.DupAckThreshold; the packet-scatter phase
	// raises it based on the topology's path count.
	dupThresh int

	// adaptive, when true, raises dupThresh by one for every
	// DSACK-style spurious-retransmission signal (RR-TCP, the paper's
	// §2 approach (2)), capped at adaptiveMax.
	adaptive    bool
	adaptiveMax int

	// SACK state (enabled via SenderOptions.EnableSACK): a scoreboard
	// of receiver-advertised ranges, and the holes already
	// retransmitted during the current recovery episode.
	sackEnabled bool
	sacked      SeqSet
	sackRetx    map[int64]bool

	// Congestion state, exported for congestion-control plug-ins.
	Cwnd     float64 // congestion window, bytes
	Ssthresh float64 // slow-start threshold, bytes

	sndUna   int64
	sndNxt   int64
	highSent int64 // highest sequence ever sent (Retx detection)
	limit    int64 // bytes granted by the source so far
	finished bool  // the source is exhausted; limit is final
	maps     []mapping

	dupAcks    int
	inRecovery bool
	recover    int64

	// Persistent-RTO detection (subflow re-dialing): consecRTOs counts
	// retransmission timeouts since the last new ACK; when it reaches
	// deadRTOs (> 0) the OnPersistentRTO hook fires so the owner can
	// declare the path dead. Zero deadRTOs disables the machinery
	// entirely — no counter comparison changes behaviour.
	deadRTOs   int
	consecRTOs int

	srtt   sim.Time
	rttvar sim.Time
	hasRTT bool
	rto    sim.Time
	timer  *sim.Timer

	done bool

	// rec, when non-nil, receives structured trace events; every trace
	// point is nil-guarded. lastCwnd/lastRTO remember the last recorded
	// values so cwnd/RTO events fire only on change (and only while
	// tracing — untraced runs never touch them).
	rec      *trace.Recorder
	lastCwnd int64
	lastRTO  sim.Time

	Stats SenderStats

	// OnAllAcked fires once when every granted byte has been
	// cumulatively acknowledged and the source is exhausted.
	OnAllAcked func()
	// OnCongestionEvent fires on every fast retransmit or timeout
	// (MMPTCP's congestion-event switching strategy hooks this).
	OnCongestionEvent func()
	// OnPersistentRTO fires when DeadRTOs consecutive timeouts elapse
	// without an intervening new ACK — the path is presumed dead. The
	// hook may Close the sender (subflow re-dialing does); onTimeout
	// detects that and stops touching the torn-down state.
	OnPersistentRTO func()
}

// SenderOptions bundles the identity of a sender's flow.
type SenderOptions struct {
	Host    *netem.Host
	Iface   int // uplink index (multi-homed hosts)
	Dst     netem.NodeID
	FlowID  uint64
	Subflow int8
	SrcPort uint16
	DstPort uint16
	Source  DataSource
	CC      CongestionControl // nil means RenoCC
	// DupThresh overrides cfg.DupAckThreshold when > 0.
	DupThresh int
	// ScatterPorts, when non-nil, randomises the source port per packet.
	ScatterPorts func() uint16
	// IfacePicker, when non-nil, chooses the outgoing interface per
	// packet (overrides Iface).
	IfacePicker func() int
	// AdaptiveDupThresh enables RR-TCP-style learning: every spurious
	// retransmission signalled by the receiver raises the duplicate-ACK
	// threshold by one, up to AdaptiveMax (default 64).
	AdaptiveDupThresh bool
	AdaptiveMax       int
	// EnableSACK turns on selective-acknowledgement recovery: during
	// fast recovery the sender retransmits the next un-SACKed hole per
	// ACK instead of one segment per RTT, repairing multi-loss windows
	// in roughly one round trip (RFC 2018/6675, simplified).
	EnableSACK bool
	// DeadRTOs, when > 0, arms persistent-RTO detection: after this
	// many consecutive timeouts without a new ACK the OnPersistentRTO
	// hook fires (once per streak). Zero leaves stalled senders backing
	// off forever, exactly as before.
	DeadRTOs int
	// Recorder, when non-nil, receives structured trace events for this
	// sender (segment sends, acks, cwnd/RTO moves, recovery episodes,
	// subflow lifecycle). Tracing observes only: it never schedules
	// events or perturbs the transmission sequence.
	Recorder *trace.Recorder
}

// NewSender creates a sender, registers it on its host for ACK delivery
// and leaves it idle until Start. Senders schedule against the host's
// engine — the same engine for every node sequentially, the owning
// shard's under the sharded fabric — so eng is accepted as the
// scheduling interface and callers pass the host's engine.
func NewSender(eng sim.EventScheduler, cfg Config, opt SenderOptions) *Sender {
	cfg.applyDefaults()
	if opt.Source == nil {
		panic("tcp: sender needs a data source")
	}
	cc := opt.CC
	if cc == nil {
		cc = RenoCC{}
	}
	dup := opt.DupThresh
	if dup <= 0 {
		dup = cfg.DupAckThreshold
	}
	adaptiveMax := opt.AdaptiveMax
	if adaptiveMax <= 0 {
		adaptiveMax = 64
	}
	s := &Sender{
		eng:         eng,
		cfg:         cfg,
		host:        opt.Host,
		iface:       opt.Iface,
		dst:         opt.Dst,
		flowID:      opt.FlowID,
		subflow:     opt.Subflow,
		srcPort:     opt.SrcPort,
		dstPort:     opt.DstPort,
		scatter:     opt.ScatterPorts,
		ifacePicker: opt.IfacePicker,
		src:         opt.Source,
		cc:          cc,
		dupThresh:   dup,
		adaptive:    opt.AdaptiveDupThresh,
		adaptiveMax: adaptiveMax,
		sackEnabled: opt.EnableSACK,
		deadRTOs:    opt.DeadRTOs,
		rec:         opt.Recorder,
		Cwnd:        float64(cfg.InitialWindow * cfg.MSS),
		Ssthresh:    1 << 30,
		rto:         cfg.InitialRTO,
	}
	s.timer = sim.NewTimer(eng, s.onTimeout)
	s.host.Register(s.flowID, s.subflow, s)
	return s
}

// Config returns the sender's TCP parameters.
func (s *Sender) Config() Config { return s.cfg }

// Start begins transmission.
func (s *Sender) Start() {
	if s.rec != nil {
		s.rec.Record(s.eng.Now(), trace.KindSubflowOpen, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), int64(s.srcPort), 0)
	}
	s.trySend()
}

// Done reports whether every granted byte has been acknowledged and the
// source is exhausted.
func (s *Sender) Done() bool { return s.done }

// Flight returns the number of unacknowledged bytes in flight.
func (s *Sender) Flight() int64 { return s.sndNxt - s.sndUna }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

// DupThresh returns the duplicate-ACK threshold in force.
func (s *Sender) DupThresh() int { return s.dupThresh }

// InRecovery reports whether the sender is in NewReno fast recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }

// Subflow returns the sender's subflow identifier.
func (s *Sender) Subflow() int8 { return s.subflow }

// SrcPort returns the sender's source port (the per-packet scatter
// port, when enabled, overrides it on the wire).
func (s *Sender) SrcPort() uint16 { return s.srcPort }

// Granted returns the number of bytes the source has granted so far.
func (s *Sender) Granted() int64 { return s.limit }

// Acked returns the cumulative acknowledged byte count.
func (s *Sender) Acked() int64 { return s.sndUna }

// HandlePacket implements netem.Endpoint: consume ACKs.
func (s *Sender) HandlePacket(p *netem.Packet) {
	if !p.IsAck() || s.done {
		return
	}
	s.Stats.AcksReceived++
	if s.rec != nil {
		s.rec.Record(s.eng.Now(), trace.KindAck, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), p.AckSeq, s.Flight())
	}
	if p.EchoTS > 0 {
		s.sampleRTT(s.eng.Now() - p.EchoTS)
	}
	if p.EchoDup {
		s.Stats.SpuriousSignals++
		if s.adaptive && s.dupThresh < s.adaptiveMax {
			s.dupThresh++
		}
	}
	if s.sackEnabled {
		for i := 0; i < int(p.SackN); i++ {
			s.sacked.Add(p.Sack[i][0], p.Sack[i][1])
		}
	}
	switch {
	case p.AckSeq > s.sndUna:
		if ecn, ok := s.cc.(ECNCapable); ok {
			ecn.OnECNEcho(s, int(p.AckSeq-s.sndUna), p.EchoCE)
		}
		s.onNewAck(p.AckSeq)
	case p.AckSeq == s.sndUna && s.Flight() > 0:
		s.Stats.DupAcksReceived++
		s.onDupAck()
	default:
		// Stale ACK (reordered below snd.una): ignore.
	}
	s.trySend()
	s.traceWindow()
	s.checkDone()
}

// traceWindow records cwnd/RTO trace events when either has moved since
// the last recording. Untraced runs exit on the first nil check.
func (s *Sender) traceWindow() {
	if s.rec == nil {
		return
	}
	if c := int64(s.Cwnd); c != s.lastCwnd {
		s.rec.Record(s.eng.Now(), trace.KindCwnd, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), c, int64(s.Ssthresh))
		s.lastCwnd = c
	}
	if s.rto != s.lastRTO {
		s.rec.Record(s.eng.Now(), trace.KindRTO, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), int64(s.rto), int64(s.srtt))
		s.lastRTO = s.rto
	}
}

func (s *Sender) onNewAck(ack int64) {
	acked := ack - s.sndUna
	s.sndUna = ack
	s.consecRTOs = 0 // forward progress: the path is alive
	// After a timeout rolls snd.nxt back, a late cumulative ACK for the
	// original transmissions can overtake it; snd.nxt never trails the
	// acknowledged prefix.
	if s.sndNxt < s.sndUna {
		s.sndNxt = s.sndUna
	}
	s.pruneMappings()
	if s.inRecovery {
		if ack >= s.recover {
			// Full acknowledgement: leave recovery, deflate.
			s.inRecovery = false
			s.Cwnd = s.Ssthresh
			s.dupAcks = 0
		} else {
			// Partial acknowledgement (RFC 6582): retransmit the next
			// hole, deflate by the amount acknowledged.
			s.Cwnd -= float64(acked)
			s.Cwnd += float64(s.cfg.MSS)
			if s.Cwnd < float64(s.cfg.MSS) {
				s.Cwnd = float64(s.cfg.MSS)
			}
			s.dupAcks = 0
			if s.sackEnabled {
				// The scoreboard knows which holes were already
				// repaired this episode; fill the next one.
				s.retransmitNextHole()
			} else {
				s.retransmitFirstUnacked()
			}
		}
	} else {
		s.dupAcks = 0
		s.cc.OnAck(s, int(acked))
	}
	s.restartTimer()
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	switch {
	case s.inRecovery:
		// Window inflation: each dup ACK signals a departed segment.
		s.Cwnd += float64(s.cfg.MSS)
		if s.sackEnabled {
			// SACK recovery: each returning ACK clocks out the next
			// un-SACKed hole, repairing multi-loss windows in ~1 RTT.
			s.retransmitNextHole()
		}
	case s.dupAcks == s.dupThresh:
		s.enterRecovery()
	}
}

func (s *Sender) enterRecovery() {
	s.Stats.FastRetransmits++
	s.Ssthresh = s.halfFlight()
	s.recover = s.sndNxt
	if s.rec != nil {
		s.rec.Record(s.eng.Now(), trace.KindFastRetransmit, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), s.recover, int64(s.Ssthresh))
	}
	s.inRecovery = true
	s.sackRetx = nil
	s.retransmitFirstUnacked()
	s.Cwnd = s.Ssthresh + float64(s.dupThresh*s.cfg.MSS)
	if s.OnCongestionEvent != nil {
		s.OnCongestionEvent()
	}
}

// halfFlight returns max(flight/2, 2*MSS): the NewReno ssthresh rule.
func (s *Sender) halfFlight() float64 {
	half := float64(s.Flight()) / 2
	floor := float64(2 * s.cfg.MSS)
	if half < floor {
		return floor
	}
	return half
}

func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	s.Stats.Timeouts++
	// Exponential backoff; the next valid RTT sample recomputes RTO.
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.Ssthresh = s.halfFlight()
	s.Cwnd = float64(s.cfg.MSS)
	s.inRecovery = false
	s.dupAcks = 0
	s.sackRetx = nil
	// Go-back-N: resume from the first unacknowledged byte.
	s.sndNxt = s.sndUna
	if s.rec != nil {
		// A timeout is also the trace's subflow-stall signal: the window
		// drained without a recovery path and only the timer moved us.
		s.rec.Record(s.eng.Now(), trace.KindTimeout, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), int64(s.rto), s.sndUna)
	}
	if s.OnCongestionEvent != nil {
		s.OnCongestionEvent()
	}
	if s.deadRTOs > 0 {
		s.consecRTOs++
		if s.consecRTOs >= s.deadRTOs && s.OnPersistentRTO != nil {
			s.consecRTOs = 0 // re-arm so the streak can fire again
			s.OnPersistentRTO()
			if s.done {
				return // the hook tore the sender down (re-dial)
			}
		}
	}
	s.trySend()
	s.traceWindow()
	// trySend restarts the timer when it transmits; if it could not
	// (e.g. zero flight because everything was acknowledged racefully),
	// ensure we are still armed while data is outstanding.
	if s.Flight() > 0 && !s.timer.Active() {
		s.timer.Reset(s.rto)
	}
}

// trySend transmits as long as the congestion window allows, granting
// new data from the source as needed.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	for s.Flight() < int64(s.Cwnd) {
		if s.sndNxt >= s.limit {
			if s.finished {
				break
			}
			dataSeq, n, exhausted := s.src.Next(s.cfg.MSS)
			if exhausted {
				s.finished = true
			}
			if n == 0 {
				break
			}
			s.maps = append(s.maps, mapping{s.limit, dataSeq, n})
			s.limit += int64(n)
		}
		m, ok := s.segmentAt(s.sndNxt)
		if !ok {
			panic(fmt.Sprintf("tcp: no mapping for seq %d (limit %d)", s.sndNxt, s.limit))
		}
		retx := m.subSeq < s.highSent
		s.transmit(m, retx)
		s.sndNxt = m.subSeq + int64(m.n)
		if s.sndNxt > s.highSent {
			s.highSent = s.sndNxt
		}
	}
	// A sender whose source is exhausted with nothing outstanding is
	// finished (covers subflows that never receive any allocation).
	s.checkDone()
}

// retransmitFirstUnacked resends the segment at snd.una (fast
// retransmit / NewReno partial-ACK retransmission).
func (s *Sender) retransmitFirstUnacked() {
	m, ok := s.segmentAt(s.sndUna)
	if !ok {
		return
	}
	if s.sackEnabled {
		if s.sackRetx == nil {
			s.sackRetx = make(map[int64]bool)
		}
		s.sackRetx[m.subSeq] = true
	}
	s.transmit(m, true)
	s.restartTimer()
}

// retransmitNextHole resends the lowest segment below the recovery
// point that the receiver has neither cumulatively ACKed nor SACKed and
// that has not been retransmitted during this recovery episode. It
// reports whether a retransmission happened.
func (s *Sender) retransmitNextHole() bool {
	if s.sackRetx == nil {
		s.sackRetx = make(map[int64]bool)
	}
	// Only bytes below the highest SACKed position can be presumed
	// lost; everything above may simply still be in flight.
	limit := s.sacked.MaxEnd()
	if limit > s.recover {
		limit = s.recover
	}
	for seq := s.sndUna; seq < limit; {
		m, ok := s.segmentAt(seq)
		if !ok {
			return false
		}
		end := m.subSeq + int64(m.n)
		if !s.sackRetx[m.subSeq] && !s.sacked.Contains(m.subSeq, end) {
			s.sackRetx[m.subSeq] = true
			s.transmit(m, true)
			s.restartTimer()
			return true
		}
		seq = end
	}
	return false
}

func (s *Sender) transmit(m mapping, retx bool) {
	sport := s.srcPort
	if s.scatter != nil {
		sport = s.scatter()
	}
	p := s.host.NewPacket()
	p.Src = s.host.ID()
	p.Dst = s.dst
	p.SrcPort = sport
	p.DstPort = s.dstPort
	p.Size = s.cfg.HeaderBytes + m.n
	p.FlowID = s.flowID
	p.Subflow = s.subflow
	p.Flags = netem.FlagData
	p.Seq = m.subSeq
	p.PayloadLen = m.n
	p.DataSeq = m.dataSeq
	p.SentTS = s.eng.Now()
	p.Retx = retx
	s.Stats.SegmentsSent++
	s.Stats.BytesSent += int64(m.n)
	if retx {
		s.Stats.Retransmissions++
	}
	if s.rec != nil {
		kind := trace.KindSegmentSend
		if retx {
			kind = trace.KindSegmentRetx
		}
		s.rec.Record(s.eng.Now(), kind, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), m.subSeq, int64(m.n))
	}
	iface := s.iface
	if s.ifacePicker != nil {
		iface = s.ifacePicker()
	}
	s.host.SendOn(p, iface)
	if !s.timer.Active() {
		s.timer.Reset(s.rto)
	}
}

// segmentAt finds the mapping entry containing seq.
func (s *Sender) segmentAt(seq int64) (mapping, bool) {
	i := sort.Search(len(s.maps), func(i int) bool {
		return s.maps[i].subSeq+int64(s.maps[i].n) > seq
	})
	if i == len(s.maps) || s.maps[i].subSeq > seq {
		return mapping{}, false
	}
	return s.maps[i], true
}

// pruneMappings discards mappings fully below snd.una.
func (s *Sender) pruneMappings() {
	i := 0
	for i < len(s.maps) && s.maps[i].subSeq+int64(s.maps[i].n) <= s.sndUna {
		i++
	}
	if i > 0 {
		s.maps = s.maps[i:]
	}
}

func (s *Sender) restartTimer() {
	if s.Flight() > 0 {
		s.timer.Reset(s.rto)
	} else {
		s.timer.Stop()
	}
}

func (s *Sender) sampleRTT(sample sim.Time) {
	if sample <= 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasRTT = true
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}

func (s *Sender) checkDone() {
	if s.done || !s.finished || s.sndUna < s.limit {
		return
	}
	s.done = true
	s.timer.Stop()
	if s.rec != nil {
		s.rec.Record(s.eng.Now(), trace.KindSubflowClose, s.flowID, s.subflow,
			int32(s.host.ID()), int32(s.dst), s.sndUna, 0)
	}
	if s.OnAllAcked != nil {
		s.OnAllAcked()
	}
}

// UnackedData returns the data-level intervals this sender was granted
// but has not yet cumulatively acknowledged, as {dataSeq, n} pairs in
// subflow-sequence order. A mapping straddling snd.una is clipped to
// its unacknowledged suffix. The redial path hands these back to the
// connection for re-pull by a replacement subflow.
func (s *Sender) UnackedData() [][2]int64 {
	if len(s.maps) == 0 {
		return nil
	}
	out := make([][2]int64, 0, len(s.maps))
	for _, m := range s.maps {
		start, n := m.dataSeq, int64(m.n)
		if skip := s.sndUna - m.subSeq; skip > 0 {
			start += skip
			n -= skip
		}
		if n > 0 {
			out = append(out, [2]int64{start, n})
		}
	}
	return out
}

// Close tears the sender down mid-flow: stops its timer (cancelling and
// recycling the pending timeout event), removes its host registration,
// and releases the per-flow state a stalled sender can pin — the
// sequence mappings and SACK scoreboard of everything still in flight.
// Late ACKs are then counted as unclaimed by the host, which recycles
// their packets to the pool as it does for every delivered packet.
func (s *Sender) Close() {
	s.done = true
	s.timer.Stop()
	s.host.Unregister(s.flowID, s.subflow)
	s.maps = nil
	s.sacked = SeqSet{}
	s.sackRetx = nil
	s.OnAllAcked = nil
	s.OnCongestionEvent = nil
	s.OnPersistentRTO = nil
}
