package tcp

// DataSource supplies data-level bytes to a sender. Plain TCP uses the
// identity BytesSource; MPTCP connections implement DataSource to map
// connection-level data onto subflows; MMPTCP uses a capped source for
// its packet-scatter phase.
//
// Allocation is permanent: once a chunk of data-level sequence space is
// granted to a sender, that sender is responsible for delivering it
// (including retransmissions). This mirrors MPTCP schedulers of the
// paper's era, which did not opportunistically re-inject data stranded
// on a stalled subflow.
type DataSource interface {
	// Next allocates up to maxBytes of new data. It returns the
	// data-level sequence number of the granted chunk, the number of
	// bytes granted (0 if nothing is available right now), and whether
	// the source is permanently exhausted for this sender.
	Next(maxBytes int) (dataSeq int64, n int, exhausted bool)
}

// BytesSource is the identity source used by plain TCP flows: data-level
// sequence equals subflow sequence. Size < 0 means unbounded (a
// long-running background flow that never finishes).
type BytesSource struct {
	Size int64 // total bytes, or -1 for unbounded
	next int64
}

// Next implements DataSource.
func (b *BytesSource) Next(maxBytes int) (int64, int, bool) {
	if b.Size >= 0 && b.next >= b.Size {
		return b.next, 0, true
	}
	n := int64(maxBytes)
	if b.Size >= 0 && b.next+n > b.Size {
		n = b.Size - b.next
	}
	seq := b.next
	b.next += n
	return seq, int(n), b.Size >= 0 && b.next >= b.Size
}

// Allocated returns the number of bytes granted so far.
func (b *BytesSource) Allocated() int64 { return b.next }
