package tcp

import (
	"repro/internal/netem"
	"repro/internal/sim"
)

// wire is a programmable middlebox used by transport tests: it forwards
// packets between two hosts and can drop or delay selected packets
// deterministically.
type wire struct {
	eng *sim.Engine
	id  netem.NodeID
	out map[netem.NodeID]*netem.Link

	// drop, when non-nil, discards packets for which it returns true.
	drop func(p *netem.Packet) bool
	// delay, when non-nil, adds extra forwarding latency per packet
	// (a crude reordering generator).
	delay func(p *netem.Packet) sim.Time

	dropped int
}

func (w *wire) ID() netem.NodeID { return w.id }

func (w *wire) Receive(p *netem.Packet, from *netem.Link) {
	if w.drop != nil && w.drop(p) {
		w.dropped++
		return
	}
	l := w.out[p.Dst]
	if w.delay != nil {
		if d := w.delay(p); d > 0 {
			w.eng.Schedule(d, func() { l.Enqueue(p) })
			return
		}
	}
	l.Enqueue(p)
}

// testNet is a two-host network joined by a programmable wire.
type testNet struct {
	eng  *sim.Engine
	a, b *netem.Host
	w    *wire
}

// newTestNet builds hostA(0) -- wire(2) -- hostB(1) with 1 Gb/s links,
// 10 us propagation per link and deep queues (loss only via w.drop).
func newTestNet() *testNet {
	eng := sim.NewEngine()
	a := netem.NewHost(eng, 0)
	b := netem.NewHost(eng, 1)
	w := &wire{eng: eng, id: 2, out: make(map[netem.NodeID]*netem.Link)}
	const rate = 1_000_000_000
	const prop = 10 * sim.Microsecond
	aw := netem.NewLink(eng, a, w, rate, prop, 10000, netem.LayerHost)
	bw := netem.NewLink(eng, b, w, rate, prop, 10000, netem.LayerHost)
	wa := netem.NewLink(eng, w, a, rate, prop, 10000, netem.LayerHost)
	wb := netem.NewLink(eng, w, b, rate, prop, 10000, netem.LayerHost)
	a.AttachUplink(aw)
	b.AttachUplink(bw)
	w.out[a.ID()] = wa
	w.out[b.ID()] = wb
	return &testNet{eng: eng, a: a, b: b, w: w}
}

// transfer wires a sender on host a and receiver on host b for size
// bytes and returns them (not yet started).
func (tn *testNet) transfer(cfg Config, flowID uint64, size int64) (*Sender, *Receiver) {
	rcv := NewReceiver(tn.eng, cfg, tn.b, flowID, size)
	snd := NewSender(tn.eng, cfg, SenderOptions{
		Host:    tn.a,
		Dst:     tn.b.ID(),
		FlowID:  flowID,
		SrcPort: 10000,
		DstPort: 80,
		Source:  &BytesSource{Size: size},
	})
	return snd, rcv
}
