package tcp

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func TestTransferNoLoss(t *testing.T) {
	tn := newTestNet()
	const size = 70000 // the paper's short-flow size: exactly 50 segments
	snd, rcv := tn.transfer(DefaultConfig(), 1, size)
	var doneAt sim.Time
	rcv.OnComplete = func() { doneAt = tn.eng.Now() }
	allAcked := false
	snd.OnAllAcked = func() { allAcked = true }
	snd.Start()
	tn.eng.Run()

	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	if rcv.Delivered() != size {
		t.Fatalf("delivered %d bytes, want %d", rcv.Delivered(), size)
	}
	if !allAcked || !snd.Done() {
		t.Fatal("sender did not observe completion")
	}
	if snd.Stats.Retransmissions != 0 || snd.Stats.Timeouts != 0 {
		t.Errorf("lossless transfer had %d retx, %d timeouts",
			snd.Stats.Retransmissions, snd.Stats.Timeouts)
	}
	if snd.Stats.SegmentsSent != 50 {
		t.Errorf("segments sent = %d, want 50", snd.Stats.SegmentsSent)
	}
	// Slow start from IW=2 over ~40us RTT: several RTTs, well under 10ms.
	if doneAt <= 0 || doneAt > 10*sim.Millisecond {
		t.Errorf("FCT = %v, want (0, 10ms]", doneAt)
	}
	if got := rcv.Stats.DupBytes; got != 0 {
		t.Errorf("receiver saw %d duplicate bytes", got)
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 70000)
	// Drop the first transmission of seq 14000 (the 11th segment), when
	// the window is large enough to generate 3 duplicate ACKs.
	dropped := false
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() && p.Seq == 14000 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd.Start()
	tn.eng.Run()

	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	if snd.Stats.FastRetransmits != 1 {
		t.Errorf("fast retransmits = %d, want 1", snd.Stats.FastRetransmits)
	}
	if snd.Stats.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (loss must be repaired by fast retx)", snd.Stats.Timeouts)
	}
	if snd.Stats.Retransmissions != 1 {
		t.Errorf("retransmissions = %d, want 1", snd.Stats.Retransmissions)
	}
}

func TestTailLossNeedsTimeout(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 70000)
	var doneAt sim.Time
	rcv.OnComplete = func() { doneAt = tn.eng.Now() }
	// Drop the first transmission of the last segment: no packets
	// follow it, so no duplicate ACKs are generated and only the RTO
	// can repair it.
	dropped := false
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() && p.Seq == 68600 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd.Start()
	tn.eng.Run()

	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	if snd.Stats.Timeouts < 1 {
		t.Errorf("timeouts = %d, want >= 1", snd.Stats.Timeouts)
	}
	if snd.Stats.FastRetransmits != 0 {
		t.Errorf("fast retransmits = %d, want 0", snd.Stats.FastRetransmits)
	}
	// The RTO floor dominates the FCT: this is the paper's core
	// mechanism for short-flow tail latency.
	if doneAt < cfg.MinRTO {
		t.Errorf("FCT = %v, want >= MinRTO %v", doneAt, cfg.MinRTO)
	}
}

func TestInitialWindowLossUsesInitialRTO(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 70000)
	var doneAt sim.Time
	rcv.OnComplete = func() { doneAt = tn.eng.Now() }
	// Drop the entire initial window (first 2 segments, first try).
	droppedSeqs := map[int64]bool{}
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() && p.Seq < 2800 && !droppedSeqs[p.Seq] {
			droppedSeqs[p.Seq] = true
			return true
		}
		return false
	}
	snd.Start()
	tn.eng.Run()

	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	// No RTT sample exists before the loss, so the first timeout fires
	// at the initial RTO (1s).
	if doneAt < cfg.InitialRTO {
		t.Errorf("FCT = %v, want >= initial RTO %v", doneAt, cfg.InitialRTO)
	}
	if snd.Stats.Timeouts < 1 {
		t.Errorf("timeouts = %d, want >= 1", snd.Stats.Timeouts)
	}
}

func TestRTOExponentialBackoff(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, _ := tn.transfer(cfg, 1, 1400)
	tn.w.drop = func(p *netem.Packet) bool { return p.IsData() } // black hole
	snd.Start()
	tn.eng.RunUntil(16 * sim.Second)

	// Timeouts at 1s, 3s, 7s, 15s (doubling from the 1s initial RTO):
	// four timeouts within 16s.
	if snd.Stats.Timeouts != 4 {
		t.Errorf("timeouts = %d, want 4 (exponential backoff)", snd.Stats.Timeouts)
	}
	if snd.RTO() != 16*sim.Second {
		t.Errorf("RTO after 4 backoffs = %v, want 16s", snd.RTO())
	}
}

func TestRTOBackoffCappedAtMaxRTO(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	cfg.MaxRTO = 2 * sim.Second
	snd, _ := tn.transfer(cfg, 1, 1400)
	tn.w.drop = func(p *netem.Packet) bool { return p.IsData() }
	snd.Start()
	tn.eng.RunUntil(20 * sim.Second)
	if snd.RTO() != 2*sim.Second {
		t.Errorf("RTO = %v, want capped at 2s", snd.RTO())
	}
	if snd.Stats.Timeouts < 8 {
		t.Errorf("timeouts = %d, want >= 8 with capped RTO", snd.Stats.Timeouts)
	}
}

func TestHighDupThreshToleratesReordering(t *testing.T) {
	// A jittery path reorders packets aggressively. With the standard
	// threshold of 3 the sender retransmits spuriously; with a raised
	// threshold (MMPTCP's packet-scatter setting) it does not.
	run := func(dupThresh int) *Sender {
		tn := newTestNet()
		cfg := DefaultConfig()
		rng := sim.NewRNG(42)
		tn.w.delay = func(p *netem.Packet) sim.Time {
			if p.IsData() {
				return sim.Time(rng.Intn(300)) * sim.Microsecond
			}
			return 0
		}
		rcv := NewReceiver(tn.eng, cfg, tn.b, 1, 140000)
		snd := NewSender(tn.eng, cfg, SenderOptions{
			Host: tn.a, Dst: tn.b.ID(), FlowID: 1,
			SrcPort: 10000, DstPort: 80,
			Source:    &BytesSource{Size: 140000},
			DupThresh: dupThresh,
		})
		snd.Start()
		tn.eng.Run()
		if !rcv.Complete() {
			t.Fatalf("dupThresh=%d: transfer did not complete", dupThresh)
		}
		return snd
	}
	standard := run(0) // default threshold 3
	raised := run(30)
	if standard.Stats.Retransmissions == 0 {
		t.Error("expected spurious retransmissions with threshold 3 under heavy reordering")
	}
	if raised.Stats.Retransmissions != 0 {
		t.Errorf("raised threshold still retransmitted %d segments", raised.Stats.Retransmissions)
	}
	if raised.DupThresh() != 30 {
		t.Errorf("DupThresh() = %d, want 30", raised.DupThresh())
	}
}

func TestScatterPortsVaryPerPacket(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	rng := sim.NewRNG(7)
	seen := map[uint16]bool{}
	var captured []uint16
	// Capture source ports at the wire.
	origOut := tn.w.out[tn.b.ID()]
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() {
			captured = append(captured, p.SrcPort)
		}
		return false
	}
	_ = origOut
	rcv := NewReceiver(tn.eng, cfg, tn.b, 1, 70000)
	snd := NewSender(tn.eng, cfg, SenderOptions{
		Host: tn.a, Dst: tn.b.ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source:       &BytesSource{Size: 70000},
		ScatterPorts: func() uint16 { return uint16(rng.Intn(1 << 16)) },
	})
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatal("scattered transfer did not complete")
	}
	for _, p := range captured {
		seen[p] = true
	}
	if len(seen) < 40 {
		t.Errorf("scatter used only %d distinct source ports over %d segments", len(seen), len(captured))
	}
	_ = snd
}

func TestSenderCwndEvolution(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 700000)
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	// Lossless slow start: cwnd must have grown well beyond the
	// initial window.
	if snd.Cwnd <= float64(cfg.InitialWindow*cfg.MSS) {
		t.Errorf("cwnd = %v never grew beyond initial %d", snd.Cwnd, cfg.InitialWindow*cfg.MSS)
	}
	if snd.SRTT() <= 0 {
		t.Error("no RTT sample recorded")
	}
	// Self-induced queueing inflates the RTT well beyond the 40us
	// propagation floor once the window is large; it must stay bounded
	// by the transfer duration.
	if snd.SRTT() > 50*sim.Millisecond {
		t.Errorf("SRTT = %v implausibly large", snd.SRTT())
	}
}

func TestFastRecoveryPartialAcks(t *testing.T) {
	// Drop two segments in the same window: NewReno repairs both within
	// one recovery episode via a partial ACK, without timeout.
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 140000)
	droppedSeqs := map[int64]bool{}
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() && (p.Seq == 28000 || p.Seq == 29400) && !droppedSeqs[p.Seq] {
			droppedSeqs[p.Seq] = true
			return true
		}
		return false
	}
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatal("transfer did not complete")
	}
	if snd.Stats.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (NewReno partial ACK should repair)", snd.Stats.Timeouts)
	}
	if snd.Stats.FastRetransmits != 1 {
		t.Errorf("fast retransmit episodes = %d, want 1", snd.Stats.FastRetransmits)
	}
	if snd.Stats.Retransmissions != 2 {
		t.Errorf("retransmissions = %d, want 2", snd.Stats.Retransmissions)
	}
}

func TestSenderCloseUnregisters(t *testing.T) {
	tn := newTestNet()
	snd, _ := tn.transfer(DefaultConfig(), 1, 70000)
	snd.Start()
	tn.eng.RunUntil(50 * sim.Microsecond)
	snd.Close()
	before := tn.a.Unclaimed
	tn.eng.Run()
	if tn.a.Unclaimed == before {
		t.Error("expected late ACKs to be unclaimed after Close")
	}
	if !snd.Done() {
		t.Error("Close must mark the sender done")
	}
}

func TestSenderZeroByteFlow(t *testing.T) {
	tn := newTestNet()
	snd, _ := tn.transfer(DefaultConfig(), 1, 0)
	completed := false
	snd.OnAllAcked = func() { completed = true }
	snd.Start()
	tn.eng.Run()
	if snd.Stats.SegmentsSent != 0 {
		t.Errorf("segments sent = %d for empty flow", snd.Stats.SegmentsSent)
	}
	if !completed || !snd.Done() {
		t.Error("zero-byte flow must complete immediately")
	}
}

func TestSenderStatsAccounting(t *testing.T) {
	tn := newTestNet()
	snd, rcv := tn.transfer(DefaultConfig(), 1, 70000)
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatal("incomplete")
	}
	if snd.Stats.BytesSent != 70000 {
		t.Errorf("bytes sent = %d, want 70000", snd.Stats.BytesSent)
	}
	if snd.Stats.AcksReceived != 50 {
		t.Errorf("acks received = %d, want 50", snd.Stats.AcksReceived)
	}
	if rcv.Stats.AcksSent != 50 {
		t.Errorf("acks sent = %d, want 50", rcv.Stats.AcksSent)
	}
	if rcv.Stats.DataPackets != 50 {
		t.Errorf("data packets = %d, want 50", rcv.Stats.DataPackets)
	}
	if rcv.FirstDataAt <= 0 || rcv.CompletedAt < rcv.FirstDataAt {
		t.Errorf("timestamps: first=%v completed=%v", rcv.FirstDataAt, rcv.CompletedAt)
	}
}

func TestAdaptiveDupThreshLearnsFromSpuriousRetx(t *testing.T) {
	// A jittery path causes spurious fast retransmissions; the receiver
	// signals each duplicate arrival (DSACK-style) and the adaptive
	// sender raises its threshold, so later reordering no longer
	// triggers retransmissions.
	tn := newTestNet()
	cfg := DefaultConfig()
	rng := sim.NewRNG(42)
	tn.w.delay = func(p *netem.Packet) sim.Time {
		if p.IsData() {
			return sim.Time(rng.Intn(300)) * sim.Microsecond
		}
		return 0
	}
	rcv := NewReceiver(tn.eng, cfg, tn.b, 1, 700_000)
	snd := NewSender(tn.eng, cfg, SenderOptions{
		Host: tn.a, Dst: tn.b.ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source:            &BytesSource{Size: 700_000},
		AdaptiveDupThresh: true,
	})
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatal("incomplete")
	}
	if snd.DupThresh() <= cfg.DupAckThreshold {
		t.Errorf("threshold never adapted: %d", snd.DupThresh())
	}
	if snd.Stats.SpuriousSignals == 0 {
		t.Error("no spurious signals recorded despite heavy reordering")
	}
	// After adaptation the retransmission rate must be far below the
	// non-adaptive baseline on the same path.
	base := func() *Sender {
		tn2 := newTestNet()
		rng2 := sim.NewRNG(42)
		tn2.w.delay = func(p *netem.Packet) sim.Time {
			if p.IsData() {
				return sim.Time(rng2.Intn(300)) * sim.Microsecond
			}
			return 0
		}
		rcv2 := NewReceiver(tn2.eng, cfg, tn2.b, 1, 700_000)
		s2 := NewSender(tn2.eng, cfg, SenderOptions{
			Host: tn2.a, Dst: tn2.b.ID(), FlowID: 1,
			SrcPort: 10000, DstPort: 80,
			Source: &BytesSource{Size: 700_000},
		})
		s2.Start()
		tn2.eng.Run()
		if !rcv2.Complete() {
			t.Fatal("baseline incomplete")
		}
		return s2
	}()
	if snd.Stats.Retransmissions*2 >= base.Stats.Retransmissions {
		t.Errorf("adaptive retx %d not clearly below baseline %d",
			snd.Stats.Retransmissions, base.Stats.Retransmissions)
	}
}

func TestAdaptiveDupThreshCapped(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 70_000)
	_ = rcv
	snd2 := NewSender(tn.eng, cfg, SenderOptions{
		Host: tn.a, Dst: tn.b.ID(), FlowID: 2,
		SrcPort: 10001, DstPort: 80,
		Source:            &BytesSource{Size: 1},
		AdaptiveDupThresh: true,
		AdaptiveMax:       5,
	})
	// Feed synthetic spurious signals directly.
	for i := 0; i < 50; i++ {
		snd2.HandlePacket(&netem.Packet{Flags: netem.FlagAck, EchoDup: true, FlowID: 2})
	}
	if snd2.DupThresh() != 5 {
		t.Errorf("threshold = %d, want capped at 5", snd2.DupThresh())
	}
	if snd2.Stats.SpuriousSignals != 50 {
		t.Errorf("signals = %d, want 50", snd2.Stats.SpuriousSignals)
	}
	_ = snd
}

func TestReceiverEchoDupSignal(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	rcv := NewReceiver(tn.eng, cfg, tn.b, 1, 70_000)
	_ = rcv
	// Capture ACKs arriving back at host a.
	var acks []*netem.Packet
	tn.a.Register(1, 0, endpointFunc(func(p *netem.Packet) { acks = append(acks, p) }))
	mk := func(seq int64) *netem.Packet {
		return &netem.Packet{
			Src: tn.a.ID(), Dst: tn.b.ID(), SrcPort: 10000, DstPort: 80,
			Size: 1460, FlowID: 1, Flags: netem.FlagData,
			Seq: seq, PayloadLen: 1400, DataSeq: seq, SentTS: 1,
		}
	}
	tn.a.Send(mk(0))
	tn.a.Send(mk(0)) // duplicate
	tn.a.Send(mk(1400))
	tn.eng.Run()
	if len(acks) != 3 {
		t.Fatalf("acks = %d", len(acks))
	}
	if acks[0].EchoDup {
		t.Error("first delivery flagged as duplicate")
	}
	if !acks[1].EchoDup {
		t.Error("duplicate delivery not flagged")
	}
	if acks[2].EchoDup {
		t.Error("fresh delivery flagged as duplicate")
	}
}

// endpointFunc adapts a function to netem.Endpoint.
type endpointFunc func(*netem.Packet)

func (f endpointFunc) HandlePacket(p *netem.Packet) { f(p) }

func TestSenderAccessors(t *testing.T) {
	tn := newTestNet()
	cfg := DefaultConfig()
	snd, rcv := tn.transfer(cfg, 1, 70000)
	if snd.Config().MSS != cfg.MSS {
		t.Error("Config accessor wrong")
	}
	if snd.InRecovery() {
		t.Error("fresh sender in recovery")
	}
	snd.Start()
	tn.eng.Run()
	if snd.Granted() != 70000 {
		t.Errorf("Granted = %d", snd.Granted())
	}
	if snd.Acked() != 70000 {
		t.Errorf("Acked = %d", snd.Acked())
	}
	// Receiver Close unregisters.
	rcv.Close()
	tn.b.Receive(&netem.Packet{FlowID: 1, Flags: netem.FlagData, PayloadLen: 1, Size: 61}, nil)
	if tn.b.Unclaimed != 1 {
		t.Error("closed receiver still claims packets")
	}
}

// TestSenderCloseReleasesResources closes a sender mid-recovery — RTO
// timer armed, a dropped segment under SACK repair, segments still in
// flight — and verifies the teardown contract subflow re-dialing relies
// on: the timer is cancelled, retransmission state is released for the
// garbage collector, the sender never transmits again, and every pooled
// packet the flow put on the wire drains back to the free list.
func TestSenderCloseReleasesResources(t *testing.T) {
	tn := newTestNet()
	pool := netem.NewPacketPool()
	tn.a.SetPool(pool)
	tn.b.SetPool(pool)

	cfg := DefaultConfig()
	const size = 1 << 20
	rcv := NewReceiver(tn.eng, cfg, tn.b, 1, size)
	snd := NewSender(tn.eng, cfg, SenderOptions{
		Host:       tn.a,
		Dst:        tn.b.ID(),
		FlowID:     1,
		SrcPort:    10000,
		DstPort:    80,
		Source:     &BytesSource{Size: size},
		EnableSACK: true,
	})
	snd.OnAllAcked = func() {}
	snd.OnCongestionEvent = func() {}
	snd.OnPersistentRTO = func() {}

	// Drop one mid-window data segment so the sender is holding SACK
	// scoreboard state when it is torn down.
	dropped := false
	tn.w.drop = func(p *netem.Packet) bool {
		if p.IsData() && !dropped && p.Seq > 20000 {
			dropped = true
			pool.Put(p) // the drop makes the wire the packet's terminal owner
			return true
		}
		return false
	}
	snd.Start()
	tn.eng.RunUntil(2 * sim.Millisecond)

	if !snd.timer.Active() {
		t.Fatal("precondition: RTO timer should be armed mid-flow")
	}
	sent := snd.Stats.SegmentsSent
	snd.Close()

	if snd.timer.Active() {
		t.Error("Close must cancel the RTO timer")
	}
	if !snd.Done() {
		t.Error("Close must mark the sender done")
	}
	if snd.maps != nil || snd.sackRetx != nil {
		t.Error("Close must release mapping and SACK-retransmit state")
	}
	if len(snd.sacked.ivs) != 0 {
		t.Error("Close must clear the SACK scoreboard")
	}
	if snd.OnAllAcked != nil || snd.OnCongestionEvent != nil || snd.OnPersistentRTO != nil {
		t.Error("Close must drop callbacks (they pin the owning connection)")
	}

	// Drain the in-flight packets: data still on the wire is delivered
	// and recycled by host b, and the resulting ACKs come back to host a
	// unclaimed, where the host recycles them. Nothing is transmitted
	// and no timer fires after Close.
	tn.eng.Run()
	if snd.Stats.SegmentsSent != sent {
		t.Errorf("sender transmitted after Close: %d -> %d segments", sent, snd.Stats.SegmentsSent)
	}
	if tn.a.Unclaimed == 0 {
		t.Error("expected late ACKs to arrive unclaimed after Close")
	}
	rcv.Close()
	if pool.Gets != pool.Recycled {
		t.Errorf("packet leak: %d allocated from the pool, %d recycled", pool.Gets, pool.Recycled)
	}
}
