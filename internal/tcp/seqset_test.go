package tcp

import (
	"testing"
	"testing/quick"
)

func TestSeqSetBasic(t *testing.T) {
	var s SeqSet
	if n := s.Add(0, 100); n != 100 {
		t.Fatalf("Add(0,100) new bytes = %d, want 100", n)
	}
	if n := s.Add(0, 100); n != 0 {
		t.Fatalf("duplicate Add new bytes = %d, want 0", n)
	}
	if n := s.Add(50, 150); n != 50 {
		t.Fatalf("overlapping Add new bytes = %d, want 50", n)
	}
	if got := s.Covered(); got != 150 {
		t.Fatalf("Covered = %d, want 150", got)
	}
	if got := s.ContiguousFrom(0); got != 150 {
		t.Fatalf("ContiguousFrom(0) = %d, want 150", got)
	}
	if s.Fragments() != 1 {
		t.Fatalf("Fragments = %d, want 1", s.Fragments())
	}
}

func TestSeqSetGapAndMerge(t *testing.T) {
	var s SeqSet
	s.Add(0, 10)
	s.Add(20, 30)
	if s.Fragments() != 2 {
		t.Fatalf("Fragments = %d, want 2", s.Fragments())
	}
	if got := s.ContiguousFrom(0); got != 10 {
		t.Fatalf("ContiguousFrom(0) = %d, want 10 (hole at 10)", got)
	}
	if s.Contains(5, 25) {
		t.Fatal("Contains(5,25) = true across a hole")
	}
	if !s.Contains(20, 30) {
		t.Fatal("Contains(20,30) = false")
	}
	// Fill the hole; everything merges.
	if n := s.Add(10, 20); n != 10 {
		t.Fatalf("hole fill new bytes = %d, want 10", n)
	}
	if s.Fragments() != 1 || s.Covered() != 30 {
		t.Fatalf("after merge: fragments=%d covered=%d", s.Fragments(), s.Covered())
	}
	if got := s.ContiguousFrom(0); got != 30 {
		t.Fatalf("ContiguousFrom(0) = %d, want 30", got)
	}
}

func TestSeqSetAdjacentMerge(t *testing.T) {
	var s SeqSet
	s.Add(10, 20)
	s.Add(20, 30) // adjacent, must merge
	if s.Fragments() != 1 {
		t.Fatalf("adjacent intervals did not merge: %d fragments", s.Fragments())
	}
	s.Add(0, 10)
	if s.Fragments() != 1 || s.ContiguousFrom(0) != 30 {
		t.Fatalf("fragments=%d contiguous=%d", s.Fragments(), s.ContiguousFrom(0))
	}
}

func TestSeqSetEmptyAdd(t *testing.T) {
	var s SeqSet
	if n := s.Add(10, 10); n != 0 {
		t.Fatalf("empty Add = %d", n)
	}
	if n := s.Add(10, 5); n != 0 {
		t.Fatalf("inverted Add = %d", n)
	}
	if s.Covered() != 0 || s.Fragments() != 0 {
		t.Fatal("empty adds modified the set")
	}
	if !s.Contains(5, 5) {
		t.Fatal("empty range must be contained")
	}
	if got := s.ContiguousFrom(0); got != 0 {
		t.Fatalf("ContiguousFrom on empty = %d", got)
	}
}

func TestSeqSetSpanningAdd(t *testing.T) {
	var s SeqSet
	s.Add(10, 20)
	s.Add(30, 40)
	s.Add(50, 60)
	// One add spanning all three plus the gaps.
	if n := s.Add(0, 70); n != 40 {
		t.Fatalf("spanning Add new bytes = %d, want 40", n)
	}
	if s.Fragments() != 1 || s.Covered() != 70 {
		t.Fatalf("fragments=%d covered=%d", s.Fragments(), s.Covered())
	}
}

// Property test against a naive bitmap model.
func TestSeqSetMatchesBitmapModel(t *testing.T) {
	type op struct{ Start, Len uint8 }
	f := func(ops []op) bool {
		var s SeqSet
		model := make([]bool, 600)
		for _, o := range ops {
			start := int64(o.Start)
			end := start + int64(o.Len%64)
			newBytes := s.Add(start, end)
			var modelNew int64
			for i := start; i < end; i++ {
				if !model[i] {
					model[i] = true
					modelNew++
				}
			}
			if newBytes != modelNew {
				return false
			}
		}
		// Covered must match.
		var covered int64
		for _, b := range model {
			if b {
				covered++
			}
		}
		if covered != s.Covered() {
			return false
		}
		// ContiguousFrom(0) must match the model's first hole.
		var contig int64
		for contig < int64(len(model)) && model[contig] {
			contig++
		}
		if s.ContiguousFrom(0) != contig {
			// When byte 0 is absent, ContiguousFrom(0) returns 0.
			if !(contig == 0 && s.ContiguousFrom(0) == 0) {
				return false
			}
		}
		// Random Contains probes.
		for probe := int64(0); probe < 64; probe += 7 {
			lo, hi := probe, probe+9
			want := true
			for i := lo; i < hi; i++ {
				if !model[i] {
					want = false
					break
				}
			}
			if s.Contains(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBytesSource(t *testing.T) {
	b := &BytesSource{Size: 3500}
	seq, n, done := b.Next(1400)
	if seq != 0 || n != 1400 || done {
		t.Fatalf("first Next = (%d,%d,%v)", seq, n, done)
	}
	seq, n, done = b.Next(1400)
	if seq != 1400 || n != 1400 || done {
		t.Fatalf("second Next = (%d,%d,%v)", seq, n, done)
	}
	seq, n, done = b.Next(1400)
	if seq != 2800 || n != 700 || !done {
		t.Fatalf("tail Next = (%d,%d,%v), want (2800,700,true)", seq, n, done)
	}
	_, n, done = b.Next(1400)
	if n != 0 || !done {
		t.Fatalf("exhausted Next = (%d,%v)", n, done)
	}
	if b.Allocated() != 3500 {
		t.Fatalf("Allocated = %d", b.Allocated())
	}
}

func TestBytesSourceUnbounded(t *testing.T) {
	b := &BytesSource{Size: -1}
	for i := 0; i < 1000; i++ {
		seq, n, done := b.Next(1400)
		if n != 1400 || done {
			t.Fatalf("unbounded Next = (%d,%d,%v)", seq, n, done)
		}
		if seq != int64(i)*1400 {
			t.Fatalf("seq = %d at step %d", seq, i)
		}
	}
}

func TestConfigSegmentsFor(t *testing.T) {
	c := DefaultConfig()
	cases := []struct {
		bytes int64
		want  int
	}{{0, 0}, {1, 1}, {1400, 1}, {1401, 2}, {70000, 50}}
	for _, tc := range cases {
		if got := c.SegmentsFor(tc.bytes); got != tc.want {
			t.Errorf("SegmentsFor(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestConfigApplyDefaultsFillsAllFields(t *testing.T) {
	var c Config
	c.applyDefaults()
	d := DefaultConfig()
	if c != d {
		t.Errorf("zero config after defaults = %+v, want %+v", c, d)
	}
	// Explicit values survive.
	custom := Config{MSS: 9000, HeaderBytes: 40, InitialWindow: 10, DupAckThreshold: 5,
		MinRTO: 1, MaxRTO: 2, InitialRTO: 3}
	withDefaults := custom
	withDefaults.applyDefaults()
	if withDefaults != custom {
		t.Errorf("explicit config mutated: %+v", withDefaults)
	}
}
