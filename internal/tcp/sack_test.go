package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/netem"
	"repro/internal/sim"
)

// sackTransfer runs one flow over the programmable wire with SACK on or
// off and a drop predicate, returning the sender.
func sackTransfer(t *testing.T, enableSACK bool, size int64, drop func(p *netem.Packet) bool) (*Sender, sim.Time) {
	t.Helper()
	tn := newTestNet()
	// A real WAN-ish RTT (~2 ms) so that per-RTT recovery rounds are
	// visible in the completion time.
	tn.w.delay = func(p *netem.Packet) sim.Time { return sim.Millisecond }
	cfg := DefaultConfig()
	rcv := NewReceiver(tn.eng, cfg, tn.b, 1, size)
	var doneAt sim.Time
	rcv.OnComplete = func() { doneAt = tn.eng.Now() }
	snd := NewSender(tn.eng, cfg, SenderOptions{
		Host: tn.a, Dst: tn.b.ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source:     &BytesSource{Size: size},
		EnableSACK: enableSACK,
	})
	tn.w.drop = drop
	snd.Start()
	tn.eng.Run()
	if !rcv.Complete() {
		t.Fatalf("transfer incomplete (sack=%v)", enableSACK)
	}
	return snd, doneAt
}

// dropBurst drops the first transmission of nLosses consecutive
// segments starting at startSeq.
func dropBurst(startSeq int64, nLosses int) func(p *netem.Packet) bool {
	dropped := map[int64]bool{}
	return func(p *netem.Packet) bool {
		if !p.IsData() {
			return false
		}
		idx := (p.Seq - startSeq) / 1400
		if p.Seq >= startSeq && idx < int64(nLosses) && !dropped[p.Seq] {
			dropped[p.Seq] = true
			return true
		}
		return false
	}
}

func TestSACKRepairsMultiLossInOneEpisode(t *testing.T) {
	// Five losses in one window. NewReno needs one RTT per hole (five
	// partial-ACK rounds); SACK repairs them all within the episode,
	// ack-clocked, with no timeout either way.
	const size = 280_000
	newReno, renoDone := sackTransfer(t, false, size, dropBurst(42_000, 5))
	sack, sackDone := sackTransfer(t, true, size, dropBurst(42_000, 5))

	if newReno.Stats.Timeouts != 0 || sack.Stats.Timeouts != 0 {
		t.Fatalf("timeouts: reno=%d sack=%d, want 0",
			newReno.Stats.Timeouts, sack.Stats.Timeouts)
	}
	if sack.Stats.Retransmissions != 5 {
		t.Errorf("SACK retransmissions = %d, want exactly the 5 lost segments",
			sack.Stats.Retransmissions)
	}
	if sackDone >= renoDone {
		t.Errorf("SACK FCT %v not faster than NewReno %v for multi-loss window",
			sackDone, renoDone)
	}
	if sack.Stats.FastRetransmits != 1 {
		t.Errorf("SACK recovery episodes = %d, want 1", sack.Stats.FastRetransmits)
	}
}

func TestSACKSingleLossMatchesNewReno(t *testing.T) {
	// With one loss the two recovery styles behave identically.
	reno, _ := sackTransfer(t, false, 140_000, dropBurst(14_000, 1))
	sack, _ := sackTransfer(t, true, 140_000, dropBurst(14_000, 1))
	if reno.Stats.Retransmissions != 1 || sack.Stats.Retransmissions != 1 {
		t.Errorf("retransmissions: reno=%d sack=%d, want 1 each",
			reno.Stats.Retransmissions, sack.Stats.Retransmissions)
	}
}

func TestSACKDoesNotReRetransmitSameHole(t *testing.T) {
	// Many dup ACKs arrive per loss; each hole must be retransmitted at
	// most once per episode even though every dup ACK offers a chance.
	sack, _ := sackTransfer(t, true, 280_000, dropBurst(28_000, 3))
	if sack.Stats.Retransmissions != 3 {
		t.Errorf("retransmissions = %d, want 3 (one per hole)", sack.Stats.Retransmissions)
	}
}

func TestSACKBlocksAdvertised(t *testing.T) {
	// Verify the receiver attaches correct blocks when a hole exists.
	tn := newTestNet()
	cfg := DefaultConfig()
	NewReceiver(tn.eng, cfg, tn.b, 1, 70_000)
	var acks []*netem.Packet
	tn.a.Register(1, 0, endpointFunc(func(p *netem.Packet) { acks = append(acks, p) }))
	mk := func(seq int64) *netem.Packet {
		return &netem.Packet{
			Src: tn.a.ID(), Dst: tn.b.ID(), SrcPort: 10000, DstPort: 80,
			Size: 1460, FlowID: 1, Flags: netem.FlagData,
			Seq: seq, PayloadLen: 1400, DataSeq: seq, SentTS: 1,
		}
	}
	tn.a.Send(mk(0))
	tn.a.Send(mk(2800)) // hole at 1400
	tn.a.Send(mk(5600))
	tn.eng.Run()
	if len(acks) != 3 {
		t.Fatalf("acks = %d", len(acks))
	}
	if acks[0].SackN != 0 {
		t.Error("in-order ACK carries SACK blocks")
	}
	if acks[1].SackN != 1 || acks[1].Sack[0] != [2]int64{2800, 4200} {
		t.Errorf("ack 1 blocks = %v (n=%d), want [[2800 4200]]", acks[1].Sack, acks[1].SackN)
	}
	// Two holes after the third segment: [1400,2800) and [4200,5600).
	if acks[2].SackN != 2 ||
		acks[2].Sack[0] != [2]int64{2800, 4200} ||
		acks[2].Sack[1] != [2]int64{5600, 7000} {
		t.Errorf("ack 2 blocks = %v (n=%d)", acks[2].Sack, acks[2].SackN)
	}
}

func TestSeqSetBlocks(t *testing.T) {
	var s SeqSet
	s.Add(0, 10)
	s.Add(20, 30)
	s.Add(40, 50)
	s.Add(60, 70)
	blocks := s.Blocks(10, 3)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (capped)", len(blocks))
	}
	if blocks[0] != [2]int64{20, 30} || blocks[2] != [2]int64{60, 70} {
		t.Errorf("blocks = %v", blocks)
	}
	// A block straddling `after` is clipped.
	if b := s.Blocks(5, 4); b[0] != [2]int64{5, 10} {
		t.Errorf("clipped block = %v", b[0])
	}
	if b := s.Blocks(100, 3); len(b) != 0 {
		t.Errorf("blocks above coverage = %v", b)
	}
}

// Property: Blocks never returns anything below `after`, never overlaps,
// is sorted, and every returned byte is actually covered by the set.
func TestSeqSetBlocksProperty(t *testing.T) {
	f := func(adds []uint8, afterRaw uint8) bool {
		var s SeqSet
		for i := 0; i+1 < len(adds); i += 2 {
			start := int64(adds[i])
			s.Add(start, start+int64(adds[i+1]%32))
		}
		after := int64(afterRaw)
		blocks := s.Blocks(after, 3)
		if len(blocks) > 3 {
			return false
		}
		prevEnd := int64(-1)
		for _, b := range blocks {
			if b[0] < after || b[0] >= b[1] {
				return false
			}
			if b[0] <= prevEnd {
				return false // unsorted or overlapping
			}
			prevEnd = b[1]
			if !s.Contains(b[0], b[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSeqSetMaxEnd(t *testing.T) {
	var s SeqSet
	if s.MaxEnd() != 0 {
		t.Error("MaxEnd on empty set")
	}
	s.Add(10, 20)
	s.Add(50, 60)
	if s.MaxEnd() != 60 {
		t.Errorf("MaxEnd = %d", s.MaxEnd())
	}
}
