package tcp

// CongestionControl decides how the congestion window grows on
// acknowledgements. Window *decreases* (fast retransmit, timeout) are
// protocol-invariant and live in the Sender; only the increase rule
// differs between plain TCP (Reno) and MPTCP's coupled LIA, which is
// provided by the mptcp package with access to all sibling subflows.
type CongestionControl interface {
	// OnAck is called for every ACK that advances snd.una, with the
	// number of newly acknowledged bytes. Implementations grow s.Cwnd
	// (slow start below Ssthresh, their own rule above it).
	OnAck(s *Sender, ackedBytes int)
}

// ECNCapable is implemented by congestion controls that react to the
// receiver's ECN echoes (DCTCP). The sender calls OnECNEcho for every
// acknowledgement that advances snd.una, before the growth hook.
type ECNCapable interface {
	OnECNEcho(s *Sender, ackedBytes int, marked bool)
}

// RenoCC is standard TCP NewReno window growth: exponential slow start
// below ssthresh, one segment per RTT in congestion avoidance.
type RenoCC struct{}

// OnAck implements CongestionControl.
func (RenoCC) OnAck(s *Sender, ackedBytes int) {
	mss := float64(s.cfg.MSS)
	if s.Cwnd < s.Ssthresh {
		// Slow start: grow by at most one MSS per ACK.
		inc := float64(ackedBytes)
		if inc > mss {
			inc = mss
		}
		s.Cwnd += inc
		return
	}
	// Congestion avoidance: ~one MSS per window's worth of ACKs.
	s.Cwnd += mss * float64(ackedBytes) / s.Cwnd
}
