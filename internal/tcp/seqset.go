// Package tcp implements the NewReno TCP endpoints the simulation's
// transport protocols are built from: a sender state machine with slow
// start, congestion avoidance, fast retransmit/recovery (RFC 6582) and
// RFC 6298 retransmission timeouts, and a receiver with a reorder buffer
// and cumulative ACKs.
//
// The same sender drives three protocols: plain TCP (identity data
// source, fixed source port), MPTCP subflows (connection data source,
// per-subflow source port, LIA coupled congestion control) and MMPTCP's
// packet-scatter phase (per-packet randomised source port and a
// topology-derived duplicate-ACK threshold).
package tcp

import "repro/internal/netem"

// SeqSet tracks a set of byte intervals over a sequence space, used by
// receivers for reorder buffers (subflow level) and delivery tracking
// (data level). Intervals are half-open [start, end) and kept sorted and
// disjoint. The zero value is an empty set.
type SeqSet struct {
	ivs []interval
}

type interval struct{ start, end int64 }

// Add inserts [start, end), merging with existing intervals. Adding an
// empty or inverted interval is a no-op. It returns the number of bytes
// newly covered (0 if the range was already fully present).
func (s *SeqSet) Add(start, end int64) int64 {
	if start >= end {
		return 0
	}
	// Find insertion window: all intervals overlapping or adjacent to
	// [start, end).
	lo := 0
	for lo < len(s.ivs) && s.ivs[lo].end < start {
		lo++
	}
	hi := lo
	for hi < len(s.ivs) && s.ivs[hi].start <= end {
		hi++
	}
	newStart, newEnd := start, end
	existing := int64(0)
	for i := lo; i < hi; i++ {
		iv := s.ivs[i]
		if iv.start < newStart {
			newStart = iv.start
		}
		if iv.end > newEnd {
			newEnd = iv.end
		}
		// Count already-covered bytes within [start, end).
		os, oe := iv.start, iv.end
		if os < start {
			os = start
		}
		if oe > end {
			oe = end
		}
		if oe > os {
			existing += oe - os
		}
	}
	merged := interval{newStart, newEnd}
	// Splice merged over s.ivs[lo:hi] in place: receivers call Add once
	// per data packet, so the temp-slice idiom would allocate on the
	// hottest receive path.
	switch {
	case hi == lo:
		// Pure insertion: open a slot at lo.
		s.ivs = append(s.ivs, interval{})
		copy(s.ivs[lo+1:], s.ivs[lo:])
		s.ivs[lo] = merged
	default:
		s.ivs[lo] = merged
		if hi > lo+1 {
			s.ivs = append(s.ivs[:lo+1], s.ivs[hi:]...)
		}
	}
	return (end - start) - existing
}

// Contains reports whether every byte of [start, end) is present.
func (s *SeqSet) Contains(start, end int64) bool {
	if start >= end {
		return true
	}
	for _, iv := range s.ivs {
		if iv.start <= start && end <= iv.end {
			return true
		}
	}
	return false
}

// ContiguousFrom returns the end of the contiguous range starting at
// base, or base itself if base is not covered. For a receiver this is
// rcv.nxt when called with the initial sequence number.
func (s *SeqSet) ContiguousFrom(base int64) int64 {
	for _, iv := range s.ivs {
		if iv.start <= base && base < iv.end {
			return iv.end
		}
	}
	return base
}

// Covered returns the total number of bytes in the set.
func (s *SeqSet) Covered() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.end - iv.start
	}
	return n
}

// Fragments returns the number of disjoint intervals (a measure of how
// fragmented the receive buffer is; useful in tests and traces).
func (s *SeqSet) Fragments() int { return len(s.ivs) }

// MaxEnd returns the highest covered byte position (0 for an empty set).
func (s *SeqSet) MaxEnd() int64 {
	if len(s.ivs) == 0 {
		return 0
	}
	return s.ivs[len(s.ivs)-1].end
}

// Blocks returns up to max intervals whose end lies strictly above
// `after`, clipped to start no earlier than after — the SACK blocks a
// receiver advertises for everything beyond its cumulative ACK.
func (s *SeqSet) Blocks(after int64, max int) [][2]int64 {
	var out [][2]int64
	for _, iv := range s.ivs {
		if iv.end <= after {
			continue
		}
		start := iv.start
		if start < after {
			start = after
		}
		out = append(out, [2]int64{start, iv.end})
		if len(out) == max {
			break
		}
	}
	return out
}

// BlocksInto is Blocks for the per-ACK hot path: it fills dst with the
// clipped intervals above `after` and returns how many were written,
// allocating nothing.
func (s *SeqSet) BlocksInto(after int64, dst *[netem.MaxSackBlocks][2]int64) int {
	n := 0
	for _, iv := range s.ivs {
		if iv.end <= after {
			continue
		}
		start := iv.start
		if start < after {
			start = after
		}
		dst[n] = [2]int64{start, iv.end}
		n++
		if n == len(dst) {
			break
		}
	}
	return n
}
