package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		got, err := Run(context.Background(), 50, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Run(0 jobs) = %v, %v; want nil, nil", got, err)
	}
}

func TestRunConcurrencyBound(t *testing.T) {
	const workers = 3
	var inflight, peak atomic.Int64
	_, err := Run(context.Background(), 40, Options{Workers: workers},
		func(_ context.Context, i int) (struct{}, error) {
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight jobs = %d, want <= %d", p, workers)
	}
}

func TestRunFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(context.Background(), 1000, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d jobs ran despite early error", n)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Run(ctx, 1000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d jobs ran despite cancellation", n)
	}
}

func TestRunOnDoneSerialisedAndComplete(t *testing.T) {
	var seen []int
	var lastDone int
	got, err := Run(context.Background(), 64, Options{
		Workers: 8,
		OnDone: func(done, total, index int) {
			// Serialised by the pool: plain slice append is safe, and
			// the done counter must be strictly increasing.
			if done != lastDone+1 || total != 64 {
				t.Errorf("OnDone(done=%d, total=%d) after done=%d", done, total, lastDone)
			}
			lastDone = done
			seen = append(seen, index)
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 || len(seen) != 64 {
		t.Fatalf("results=%d callbacks=%d, want 64/64", len(got), len(seen))
	}
	marks := make([]bool, 64)
	for _, i := range seen {
		if marks[i] {
			t.Fatalf("OnDone fired twice for index %d", i)
		}
		marks[i] = true
	}
}
