// Package sweep is a bounded worker pool for fanning many independent
// jobs — in this repository, whole simulation experiments — across OS
// threads. It is deliberately generic: a job is an index plus a closure,
// results land in a slice at their job's index, and nothing about the
// pool depends on what a job computes.
//
// Design constraints, in order:
//
//  1. Determinism. Results are identified by index, never by completion
//     order, so a sweep's output is identical for any worker count.
//  2. Bounded memory. Exactly Workers jobs are in flight; dispatch is an
//     atomic counter, not a buffered queue, so a million-job sweep holds
//     one slice and Workers goroutines.
//  3. Fail fast. The first job error cancels the shared context; workers
//     finish their current job and exit. The lowest-indexed observed
//     error is returned.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes one Run call.
type Options struct {
	// Workers is the maximum number of jobs in flight. Zero or negative
	// means runtime.GOMAXPROCS(0). It is further capped at the job count.
	Workers int

	// SlotsPerTask is how many OS threads one job occupies (a sharded
	// simulation runs SlotsPerTask engines in parallel). The effective
	// worker count becomes max(1, Workers/SlotsPerTask) so that
	// workers × shards never oversubscribes the Workers budget — with a
	// defaulted budget, never exceeds GOMAXPROCS. Zero or one means each
	// job is single-threaded (the default).
	SlotsPerTask int

	// OnDone, if non-nil, is called after each successful job with the
	// number of jobs finished so far, the total, and the finished job's
	// index. Calls are serialised by the pool, so OnDone may touch
	// shared state (progress bars, counters) without locking.
	OnDone func(done, total, index int)
}

// Run executes job(ctx, i) for every i in [0, n) on a pool of
// Options.Workers goroutines and returns the n results in index order.
//
// The context passed to jobs is derived from ctx and cancelled as soon as
// any job fails, so long-running jobs can abort early by observing it.
// Run itself returns the lowest-indexed error it observed, wrapped with
// the job index; if ctx is cancelled from outside, Run drains in-flight
// jobs and returns ctx's error.
func Run[T any](ctx context.Context, n int, opts Options, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.SlotsPerTask > 1 {
		workers /= opts.SlotsPerTask
		if workers < 1 {
			workers = 1
		}
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	var (
		next     atomic.Int64 // dispatch cursor
		mu       sync.Mutex   // guards done, firstErr*, serialises OnDone
		done     int
		firstErr error
		errIndex = -1
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				res, err := job(ctx, i)
				if err != nil {
					// Cancellation fallout (a sibling failed first, or
					// the caller cancelled) is not this job's fault:
					// don't let it shadow the root-cause error.
					if ctxErr := ctx.Err(); ctxErr == nil || !errors.Is(err, ctxErr) {
						mu.Lock()
						if errIndex < 0 || i < errIndex {
							firstErr, errIndex = err, i
						}
						mu.Unlock()
					}
					cancel()
					return
				}
				mu.Lock()
				results[i] = res
				done++
				if opts.OnDone != nil {
					opts.OnDone(done, n, i)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if errIndex >= 0 {
		return nil, fmt.Errorf("sweep: job %d: %w", errIndex, firstErr)
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
