package sweep

import "sync"

// InstancePool is a keyed free list of reusable job instances — in this
// repository, engine+network pairs recycled across sweep replicates that
// share a Config shape. It is deliberately generic, like Run: the pool
// neither builds nor resets instances (the caller owns that contract);
// it only parks idle ones between jobs so that at most Workers instances
// of a shape ever exist, however many replicates the sweep fans out.
//
// All methods are safe for concurrent use by the worker pool.
type InstancePool[K comparable, T any] struct {
	mu   sync.Mutex
	free map[K][]T

	hits, misses int64
}

// NewInstancePool returns an empty pool.
func NewInstancePool[K comparable, T any]() *InstancePool[K, T] {
	return &InstancePool[K, T]{free: make(map[K][]T)}
}

// Get removes and returns an idle instance for the key, reporting
// whether one was available. A miss means the caller should build a
// fresh instance (and later Put it back).
func (p *InstancePool[K, T]) Get(key K) (T, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.free[key]
	if n := len(list); n > 0 {
		v := list[n-1]
		var zero T
		list[n-1] = zero // drop the pool's reference
		p.free[key] = list[:n-1]
		p.hits++
		return v, true
	}
	p.misses++
	var zero T
	return zero, false
}

// Put parks an instance for reuse under the key. The caller must not
// touch the instance again until it Gets it back.
func (p *InstancePool[K, T]) Put(key K, v T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[key] = append(p.free[key], v)
}

// Stats reports pool effectiveness: hits are Gets served from the free
// list, misses are Gets that forced a fresh build. A steady-state pooled
// sweep's misses stay at the worker count.
func (p *InstancePool[K, T]) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
