package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// rec is a shorthand Record call with distinguishable payloads: event i
// carries A=i so tests can assert exactly which events survived.
func rec(r *Recorder, i int) {
	r.Record(sim.Time(i)*sim.Millisecond, KindSegmentSend, 1, 0, 10, 20, int64(i), 0)
}

// TestNilRecorderSafe: every method on a nil *Recorder is a no-op —
// this is the whole zero-overhead contract's API half.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindEnqueue, 1, 0, 0, 0, 0, 0)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Lost() != 0 {
		t.Error("nil recorder reports non-zero counters")
	}
	if r.Events() != nil {
		t.Error("nil recorder returned events")
	}
	if r.Matches(Options{Mode: Ring, Buffer: 1}) {
		t.Error("nil recorder matched options")
	}
}

// TestRingWrap: a full ring overwrites oldest-first and Events unrolls
// the survivors in record order.
func TestRingWrap(t *testing.T) {
	r := NewRecorder(Options{Mode: Ring, Buffer: 4})
	for i := 1; i <= 6; i++ {
		rec(r, i)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
	got := r.Events()
	for i, e := range got {
		if want := int64(i + 3); e.A != want {
			t.Errorf("event %d: A = %d, want %d (oldest-first unroll)", i, e.A, want)
		}
	}
	// Before wrapping, Events must not unroll from head.
	r2 := NewRecorder(Options{Mode: Ring, Buffer: 4})
	rec(r2, 1)
	rec(r2, 2)
	evs := r2.Events()
	if len(evs) != 2 || evs[0].A != 1 || evs[1].A != 2 {
		t.Errorf("partial ring events = %+v, want A=1,2", evs)
	}
}

// TestFullOverflow: full mode retains the first MaxEvents and counts
// the rest as lost.
func TestFullOverflow(t *testing.T) {
	r := NewRecorder(Options{Mode: Full, MaxEvents: 3})
	for i := 1; i <= 5; i++ {
		rec(r, i)
	}
	if r.Len() != 3 || r.Lost() != 2 || r.Total() != 5 {
		t.Fatalf("Len/Lost/Total = %d/%d/%d, want 3/2/5", r.Len(), r.Lost(), r.Total())
	}
	for i, e := range r.Events() {
		if want := int64(i + 1); e.A != want {
			t.Errorf("event %d: A = %d, want %d (first events kept)", i, e.A, want)
		}
	}
}

// TestFlowFilter: flow-scoped events outside the filter are dropped;
// flow 0 (fabric/control) always records.
func TestFlowFilter(t *testing.T) {
	r := NewRecorder(Options{Mode: Full, MaxEvents: 16, Flows: []uint64{2}})
	r.Record(0, KindSegmentSend, 1, 0, 0, 0, 0, 0) // filtered out
	r.Record(0, KindSegmentSend, 2, 0, 0, 0, 0, 0) // kept
	r.Record(0, KindLinkDown, 0, -1, 3, 4, 0, 0)   // fabric: always kept
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	for _, e := range r.Events() {
		if e.Flow != 2 && e.Flow != 0 {
			t.Errorf("filtered recorder kept flow %d", e.Flow)
		}
	}
}

// TestResetKeepsStorageAndFilter: Reset empties the recorder but keeps
// its identity — capacity, mode, and flow filter — so pooled reuse
// starts clean without rebuilding.
func TestResetKeepsStorageAndFilter(t *testing.T) {
	r := NewRecorder(Options{Mode: Ring, Buffer: 4, Flows: []uint64{2}})
	r.Record(0, KindAck, 2, 0, 0, 0, 0, 0)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("after Reset: Len/Total = %d/%d, want 0/0", r.Len(), r.Total())
	}
	r.Record(0, KindAck, 1, 0, 0, 0, 0, 0) // still filtered
	r.Record(0, KindAck, 2, 0, 0, 0, 0, 0)
	if r.Len() != 1 {
		t.Errorf("filter lost across Reset: Len = %d, want 1", r.Len())
	}
}

// TestMatches: option equivalence drives pooled recorder reuse.
func TestMatches(t *testing.T) {
	opts := Options{Mode: Ring, Buffer: 64, Flows: []uint64{1, 2}}
	r := NewRecorder(opts)
	if !r.Matches(opts) {
		t.Error("recorder does not match its own options")
	}
	if !r.Matches(Options{Mode: Ring, Buffer: 64, Flows: []uint64{2, 1}}) {
		t.Error("flow filter comparison is order-sensitive")
	}
	for _, o := range []Options{
		{Mode: Full, Buffer: 64, Flows: []uint64{1, 2}},
		{Mode: Ring, Buffer: 32, Flows: []uint64{1, 2}},
		{Mode: Ring, Buffer: 64, Flows: []uint64{1, 3}},
		{Mode: Ring, Buffer: 64},
	} {
		if r.Matches(o) {
			t.Errorf("matched differing options %+v", o)
		}
	}
	plain := NewRecorder(Options{Mode: Full, MaxEvents: 8})
	if !plain.Matches(Options{Mode: Full, MaxEvents: 8}) {
		t.Error("unfiltered recorder does not match its own options")
	}
	if plain.Matches(Options{Mode: Full, MaxEvents: 8, Flows: []uint64{1}}) {
		t.Error("unfiltered recorder matched a filtered request")
	}
}

// TestRecorderBadOptionsPanic: invalid options panic with the package's
// "trace:" prefix (the public Config layer validates first; this is the
// backstop for internal misuse).
func TestRecorderBadOptionsPanic(t *testing.T) {
	for _, o := range []Options{
		{Mode: Ring},
		{Mode: Full},
		{Mode: Mode(42), Buffer: 1, MaxEvents: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRecorder(%+v) did not panic", o)
				}
			}()
			NewRecorder(o)
		}()
	}
}

// TestRecordAllocationFree: in ring mode, recording into a warm
// recorder allocates nothing — the flight recorder can stay armed in
// sweeps without perturbing the allocation-free hot path.
func TestRecordAllocationFree(t *testing.T) {
	r := NewRecorder(Options{Mode: Ring, Buffer: 128})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		rec(r, i)
	})
	if allocs != 0 {
		t.Errorf("ring Record allocates %.2f per event, want 0", allocs)
	}
}

// TestWriteJSONL: the JSONL export is one valid object per line with
// the documented fields, oldest first.
func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(Options{Mode: Full, MaxEvents: 8})
	r.Record(2*sim.Millisecond, KindSegmentSend, 7, 1, 10, 20, 1400, 0)
	r.Record(3*sim.Millisecond, KindLinkDown, 0, -1, 5, 6, 0, 0)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(lines), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "seg-send" || lines[0]["ts_us"] != 2000.0 || lines[0]["flow"] != 7.0 {
		t.Errorf("first line = %v, want seg-send at 2000us on flow 7", lines[0])
	}
	if lines[1]["kind"] != "link-down" {
		t.Errorf("second line kind = %v, want link-down", lines[1]["kind"])
	}
	if _, present := lines[1]["flow"]; present {
		t.Error("fabric event serialised a flow field (should be omitted at 0)")
	}
}

// TestWriteChromeTrace validates the Chrome trace-event export against
// the schema perfetto loads: a traceEvents array where every row has
// name/ph/pid, flows appear as paired async b/e spans, fabric and
// control events as instants, and the three process_name metadata rows
// label the tracks.
func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(Options{Mode: Full, MaxEvents: 64})
	r.Record(1*sim.Millisecond, KindFlowStart, 3, -1, 10, 20, 70000, 0)
	r.Record(1*sim.Millisecond, KindSubflowOpen, 3, 0, 10, 20, 10000, 0)
	r.Record(2*sim.Millisecond, KindQueueDrop, 3, 0, 30, 31, 1400, 30)
	r.Record(3*sim.Millisecond, KindFaultInject, 0, -1, 30, 31, 1, 0)
	r.Record(4*sim.Millisecond, KindFIBFlip, 0, -1, 30, -1, 2, 5)
	r.Record(5*sim.Millisecond, KindSubflowClose, 3, 0, 10, 20, 70000, 0)
	r.Record(6*sim.Millisecond, KindFlowEnd, 3, -1, 10, 20, 70000, 0)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3+r.Len() {
		t.Fatalf("traceEvents has %d rows, want %d (3 metadata + %d events)",
			len(doc.TraceEvents), 3+r.Len(), r.Len())
	}
	metas, spans := 0, map[string][]string{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("row %d missing required field %q: %v", i, field, ev)
			}
		}
		switch ph := ev["ph"]; ph {
		case "M":
			metas++
			if ev["name"] != "process_name" {
				t.Errorf("metadata row with name %v", ev["name"])
			}
		case "b", "e":
			id, _ := ev["id"].(string)
			if id == "" {
				t.Errorf("async row %d has no id: %v", i, ev)
			}
			spans[id] = append(spans[id], ph.(string))
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("async row %d has no numeric ts", i)
			}
		case "i":
			if _, ok := ev["s"]; !ok {
				t.Errorf("instant row %d has no scope: %v", i, ev)
			}
		default:
			t.Errorf("row %d has unexpected phase %v", i, ph)
		}
	}
	if metas != 3 {
		t.Errorf("%d metadata rows, want 3 (flows/fabric/control)", metas)
	}
	for id, phases := range spans {
		opens, closes := 0, 0
		for _, ph := range phases {
			if ph == "b" {
				opens++
			} else {
				closes++
			}
		}
		if opens != closes {
			t.Errorf("async span %q has %d begins and %d ends", id, opens, closes)
		}
	}
	if len(spans) != 2 {
		t.Errorf("got %d async spans, want 2 (flow-3 and flow-3/sf-0)", len(spans))
	}
}
