package trace

import "sort"

// MergeInto folds the events retained by each src recorder into dst,
// producing one time-ordered stream: events sort by virtual time, with
// ties broken by stream (dst's own events first, then each src in
// argument order) and record order within a stream. The sharded fabric
// uses this to combine per-shard flight recorders with the control
// engine's recorder at export time, so the merged trace is
// schema-identical to a sequential run's: same event records, same
// retention policy (a ring keeps the last Buffer events of the merged
// stream; a full recorder counts overflow as lost).
//
// Accounting is preserved: dst's Total after the merge is the sum of
// events accepted across all recorders, and Lost carries the sources'
// discards forward. Nil sources are skipped; a nil dst is a no-op.
func MergeInto(dst *Recorder, srcs ...*Recorder) {
	if dst == nil {
		return
	}
	any := false
	for _, s := range srcs {
		if s != nil && (s.Total() > 0 || s.Len() > 0) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	merged := dst.Events()
	total := dst.total
	lost := dst.lost
	for _, s := range srcs {
		if s == nil {
			continue
		}
		merged = append(merged, s.Events()...)
		total += s.total
		lost += s.lost
	}
	// Stable sort on time alone: concatenation order (stream, then record
	// order) is exactly the tiebreak the determinism contract promises.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].At < merged[j].At })

	dst.Reset()
	for _, e := range merged {
		dst.Record(e.At, e.Kind, e.Flow, e.Sub, e.Node, e.Peer, e.A, e.B)
	}
	dst.total = total
	dst.lost += lost
}
