package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Kind identifies a structured trace event. The set covers the whole
// stack: transport (segment send/retransmit, acks, cwnd/RTO moves,
// subflow lifecycle, the MMPTCP phase switch), the emulated network
// (enqueues, ECN marks, every drop class, link state), the routing
// control plane (recomputes, per-switch FIB flips, flap damping) and
// the fault injector (inject/repair). Numeric values are internal —
// serialise via String(); new kinds append at the end.
type Kind uint8

const (
	KindFlowStart      Kind = iota // a=size bytes
	KindFlowEnd                    // a=bytes acked
	KindSegmentSend                // a=seq, b=payload len
	KindSegmentRetx                // a=seq, b=payload len
	KindAck                        // a=cumulative ack, b=bytes in flight
	KindCwnd                       // a=cwnd bytes, b=ssthresh bytes
	KindRTO                        // a=rto (sim.Time), b=srtt (sim.Time)
	KindFastRetransmit             // a=recovery point seq, b=ssthresh
	KindTimeout                    // a=backed-off rto (sim.Time), b=snd_una
	KindSubflowOpen                // a=src port
	KindSubflowClose               // a=bytes acked
	KindPhaseSwitch                // a=bytes handed over, b=subflow count
	KindEnqueue                    // link node->peer; a=seq, b=queue depth after
	KindECNMark                    // link node->peer; a=seq, b=queue depth
	KindQueueDrop                  // link node->peer; a=seq, b=queue limit
	KindRandomDrop                 // link node->peer; a=seq
	KindBlackhole                  // link node->peer; a=seq
	KindHopDrop                    // switch node; a=hop count
	KindLoopDrop                   // switch node; a=hop count
	KindNoRouteDrop                // switch node; a=1 if during a transient window
	KindCrashDrop                  // switch node; a=seq
	KindLinkDown                   // link node->peer
	KindLinkUp                     // link node->peer
	KindRecomputeStart             // a=coalesced transitions in batch
	KindRecomputeEnd               // a=destinations recomputed, b=skipped
	KindFIBFlip                    // switch node; a=epoch, b=override count
	KindDampDefer                  // link node->peer; a=flap count in window
	KindDampExpire                 // a=pending invalidations replayed
	KindFaultInject                // a=fault kind code
	KindFaultRepair                // a=fault kind code
	KindSubflowDead                // a=consecutive RTOs, b=bytes acked at death
	KindSubflowRedial              // a=new src port, b=attempt number
	KindPhaseDefer                 // a=deferrals so far, b=1 if forced by MaxDefer
	KindWindowEdge                 // coordinator window; a=width (ns), b=elided shard wakeups
	numKinds
)

var kindNames = [numKinds]string{
	"flow-start", "flow-end",
	"seg-send", "seg-retx", "ack", "cwnd", "rto",
	"fast-retx", "timeout",
	"subflow-open", "subflow-close", "phase-switch",
	"enqueue", "ecn-mark",
	"queue-drop", "random-drop", "blackhole",
	"hop-drop", "loop-drop", "noroute-drop", "crash-drop",
	"link-down", "link-up",
	"recompute-start", "recompute-end", "fib-flip",
	"damp-defer", "damp-expire",
	"fault-inject", "fault-repair",
	"subflow-dead", "subflow-redial", "phase-defer",
	"window-edge",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Event is one structured trace record: virtual time, kind, and a
// fixed-size identity/payload block. No pointers, no per-event heap
// allocation — ring mode writes into preallocated storage.
//
// Identity conventions: Flow is 0 for events not tied to a flow
// (routing, faults, link state) — flow IDs start at 1. Sub is the
// subflow ordinal (-1 when not subflow-scoped; MMPTCP's packet-scatter
// phase is subflow 0). Node/Peer are netem node IDs: for link-scoped
// events Node→Peer is the link direction; for switch-scoped events
// Node is the switch and Peer is -1; for transport events Node is the
// source host and Peer the destination host. A and B are per-kind
// payloads documented on the Kind constants.
type Event struct {
	At   sim.Time
	Kind Kind
	Sub  int8
	Node int32
	Peer int32
	Flow uint64
	A, B int64
}

// Mode selects the recorder's retention policy.
type Mode uint8

const (
	// Ring keeps the last Buffer events in O(1) memory — a flight
	// recorder that is always safe to leave armed in sweeps.
	Ring Mode = iota
	// Full keeps every event up to MaxEvents — for single-run
	// debugging; counts (but discards) overflow.
	Full
)

// Options configures a Recorder.
type Options struct {
	Mode      Mode
	Buffer    int      // Ring: capacity in events (required > 0)
	MaxEvents int      // Full: hard cap in events (required > 0)
	Flows     []uint64 // flow filter; empty = record all flow-scoped events
}

// Recorder is a structured event-trace sink. It is deliberately inert:
// recording reads caller state and appends to the recorder's own
// storage — it never schedules engine events, draws random numbers, or
// touches packet pools, so a traced run's Results are byte-identical
// to the untraced run's.
//
// All methods are safe on a nil *Recorder and return immediately —
// components hold a plain possibly-nil pointer and hot paths guard
// with a single `if rec != nil` branch, keeping the disabled cost to a
// predictable-not-taken branch (pinned by TestTraceDisabledAllocationFree
// and the engine-throughput bench guard).
//
// A Recorder is owned by one run (one engine) at a time; it is not
// safe for concurrent use. Pooled sweeps give each in-flight run its
// own recorder via RunInstance.
type Recorder struct {
	opts   Options
	filter map[uint64]struct{} // nil = no filtering
	buf    []Event
	head   int    // ring: next write index
	n      int    // ring: live events (<= len(buf))
	total  uint64 // events accepted (including overwritten/discarded)
	lost   uint64 // full mode: events discarded at MaxEvents
}

// NewRecorder builds a recorder. It panics on invalid options — the
// public Config layer validates user input first.
func NewRecorder(o Options) *Recorder {
	switch o.Mode {
	case Ring:
		if o.Buffer <= 0 {
			panic("trace: ring recorder needs Buffer > 0")
		}
	case Full:
		if o.MaxEvents <= 0 {
			panic("trace: full recorder needs MaxEvents > 0")
		}
	default:
		panic("trace: unknown recorder mode")
	}
	r := &Recorder{opts: o}
	if o.Mode == Ring {
		r.buf = make([]Event, o.Buffer)
	}
	if len(o.Flows) > 0 {
		r.filter = make(map[uint64]struct{}, len(o.Flows))
		for _, f := range o.Flows {
			r.filter[f] = struct{}{}
		}
	}
	return r
}

// Matches reports whether the recorder was built with equivalent
// options, so RunInstance.Reset can keep an armed recorder across
// replicates instead of rebuilding its storage.
func (r *Recorder) Matches(o Options) bool {
	if r == nil {
		return false
	}
	if r.opts.Mode != o.Mode || r.opts.Buffer != o.Buffer || r.opts.MaxEvents != o.MaxEvents {
		return false
	}
	if len(o.Flows) != len(r.filter) {
		return len(o.Flows) == 0 && r.filter == nil
	}
	for _, f := range o.Flows {
		if _, ok := r.filter[f]; !ok {
			return false
		}
	}
	return true
}

// Reset discards recorded events but keeps the storage and flow filter,
// returning the recorder to its armed, empty state. RunInstance.Reset
// calls this so a pooled replicate starts with a clean flight recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.head, r.n, r.total, r.lost = 0, 0, 0, 0
	if r.opts.Mode == Full {
		r.buf = r.buf[:0]
	}
}

// Record appends one event. at is the engine's virtual time at the
// trace point. Flow-scoped events (flow != 0) are subject to the flow
// filter; control-plane events (flow == 0) always record.
func (r *Recorder) Record(at sim.Time, kind Kind, flow uint64, sub int8, node, peer int32, a, b int64) {
	if r == nil {
		return
	}
	if flow != 0 && r.filter != nil {
		if _, ok := r.filter[flow]; !ok {
			return
		}
	}
	r.total++
	if r.opts.Mode == Ring {
		e := &r.buf[r.head]
		e.At, e.Kind, e.Flow, e.Sub, e.Node, e.Peer, e.A, e.B = at, kind, flow, sub, node, peer, a, b
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
		if r.n < len(r.buf) {
			r.n++
		}
		return
	}
	if len(r.buf) >= r.opts.MaxEvents {
		r.lost++
		return
	}
	r.buf = append(r.buf, Event{At: at, Kind: kind, Flow: flow, Sub: sub, Node: node, Peer: peer, A: a, B: b})
}

// Len is the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.opts.Mode == Ring {
		return r.n
	}
	return len(r.buf)
}

// Total is the number of events accepted by the recorder, including
// those since overwritten (ring) or discarded at the cap (full).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Lost is the number of events discarded in full mode after MaxEvents.
func (r *Recorder) Lost() uint64 {
	if r == nil {
		return 0
	}
	return r.lost
}

// Events returns the retained events in record order (oldest first),
// unrolling the ring. The slice is a copy; mutating it does not affect
// the recorder.
func (r *Recorder) Events() []Event {
	if r == nil || r.Len() == 0 {
		return nil
	}
	out := make([]Event, r.Len())
	if r.opts.Mode == Full {
		copy(out, r.buf)
		return out
	}
	// Unroll the ring: oldest surviving event is at head once wrapped.
	start := 0
	if r.n == len(r.buf) {
		start = r.head
	}
	n := copy(out, r.buf[start:start+min(r.n, len(r.buf)-start)])
	if n < r.n {
		copy(out[n:], r.buf[:r.n-n])
	}
	return out
}

// jsonlEvent is the stable JSONL schema: one object per line. ts_us is
// virtual time in microseconds.
type jsonlEvent struct {
	TsUs float64 `json:"ts_us"`
	Kind string  `json:"kind"`
	Flow uint64  `json:"flow,omitempty"`
	Sub  int8    `json:"sub"`
	Node int32   `json:"node"`
	Peer int32   `json:"peer"`
	A    int64   `json:"a"`
	B    int64   `json:"b"`
}

func tsMicros(t sim.Time) float64 {
	return float64(t) / 1e3 // sim.Time is nanoseconds
}

// WriteJSONL writes the retained events as JSON Lines, one event per
// line, oldest first.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		je := jsonlEvent{
			TsUs: tsMicros(e.At), Kind: e.Kind.String(),
			Flow: e.Flow, Sub: e.Sub, Node: e.Node, Peer: e.Peer, A: e.A, B: e.B,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event JSON record (the subset
// perfetto and chrome://tracing load: metadata, async begin/end,
// instants).
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat,omitempty"`
	Ph    string           `json:"ph"`
	Ts    float64          `json:"ts"`
	Pid   int              `json:"pid"`
	Tid   int64            `json:"tid"`
	ID    string           `json:"id,omitempty"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// Track (pid) layout in the Chrome trace: flows are async spans on the
// "flows" process, fabric events (queues, drops, FIB flips) are
// instants on per-switch/per-link tracks under "fabric", and
// control-plane events (faults, recomputes, damping) are global
// instants under "control".
const (
	chromePidFlows   = 1
	chromePidFabric  = 2
	chromePidControl = 3
)

// WriteChromeTrace writes the retained events as Chrome trace-event
// JSON, loadable in perfetto or chrome://tracing: flows (and their
// subflows) as async spans, switch/link activity as instants on fabric
// tracks, faults and routing control-plane activity as instants.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	rows := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		rows = append(rows, chromeFromEvent(e))
	}
	// Viewers sort by ts anyway, but emit sorted so the file is
	// deterministic and diffs cleanly.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Ts < rows[j].Ts })

	// Metadata rows carry a string arg, which the int64-typed event
	// Args can't, so the envelope is assembled by hand with both row
	// shapes sharing the traceEvents array.
	type chromeMeta struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	}
	metas := []chromeMeta{
		{Name: "process_name", Ph: "M", Pid: chromePidFlows, Args: map[string]string{"name": "flows"}},
		{Name: "process_name", Ph: "M", Pid: chromePidFabric, Args: map[string]string{"name": "fabric"}},
		{Name: "process_name", Ph: "M", Pid: chromePidControl, Args: map[string]string{"name": "control"}},
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	writeRow := func(v any) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, m := range metas {
		if err := writeRow(m); err != nil {
			return err
		}
	}
	for _, ce := range rows {
		if err := writeRow(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms"}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeFromEvent maps one structured event onto the Chrome trace
// vocabulary.
func chromeFromEvent(e Event) chromeEvent {
	ce := chromeEvent{Name: e.Kind.String(), Ts: tsMicros(e.At)}
	switch e.Kind {
	case KindFlowStart:
		return chromeEvent{
			Name: fmt.Sprintf("flow %d", e.Flow), Cat: "flow", Ph: "b",
			Ts: ce.Ts, Pid: chromePidFlows, Tid: int64(e.Flow),
			ID:   fmt.Sprintf("flow-%d", e.Flow),
			Args: map[string]int64{"src": int64(e.Node), "dst": int64(e.Peer), "size": e.A},
		}
	case KindFlowEnd:
		return chromeEvent{
			Name: fmt.Sprintf("flow %d", e.Flow), Cat: "flow", Ph: "e",
			Ts: ce.Ts, Pid: chromePidFlows, Tid: int64(e.Flow),
			ID:   fmt.Sprintf("flow-%d", e.Flow),
			Args: map[string]int64{"acked": e.A},
		}
	case KindSubflowOpen:
		return chromeEvent{
			Name: fmt.Sprintf("subflow %d", e.Sub), Cat: "subflow", Ph: "b",
			Ts: ce.Ts, Pid: chromePidFlows, Tid: int64(e.Flow),
			ID: fmt.Sprintf("flow-%d/sf-%d", e.Flow, e.Sub),
		}
	case KindSubflowClose:
		return chromeEvent{
			Name: fmt.Sprintf("subflow %d", e.Sub), Cat: "subflow", Ph: "e",
			Ts: ce.Ts, Pid: chromePidFlows, Tid: int64(e.Flow),
			ID:   fmt.Sprintf("flow-%d/sf-%d", e.Flow, e.Sub),
			Args: map[string]int64{"acked": e.A},
		}
	case KindFaultInject, KindFaultRepair, KindRecomputeStart, KindRecomputeEnd, KindDampExpire,
		KindWindowEdge:
		return chromeEvent{
			Name: e.Kind.String(), Cat: "control", Ph: "i", Scope: "g",
			Ts: ce.Ts, Pid: chromePidControl, Tid: 0,
			Args: map[string]int64{"node": int64(e.Node), "peer": int64(e.Peer), "a": e.A, "b": e.B},
		}
	case KindFIBFlip, KindHopDrop, KindLoopDrop, KindNoRouteDrop, KindCrashDrop:
		return chromeEvent{
			Name: e.Kind.String(), Cat: "fabric", Ph: "i", Scope: "t",
			Ts: ce.Ts, Pid: chromePidFabric, Tid: int64(e.Node),
			Args: map[string]int64{"flow": int64(e.Flow), "a": e.A, "b": e.B},
		}
	case KindEnqueue, KindECNMark, KindQueueDrop, KindRandomDrop, KindBlackhole,
		KindLinkDown, KindLinkUp, KindDampDefer:
		return chromeEvent{
			Name: e.Kind.String(), Cat: "fabric", Ph: "i", Scope: "t",
			Ts: ce.Ts, Pid: chromePidFabric, Tid: int64(e.Node),
			Args: map[string]int64{"peer": int64(e.Peer), "flow": int64(e.Flow), "a": e.A, "b": e.B},
		}
	default:
		// Remaining transport events: instants on the flow's track.
		return chromeEvent{
			Name: e.Kind.String(), Cat: "transport", Ph: "i", Scope: "t",
			Ts: ce.Ts, Pid: chromePidFlows, Tid: int64(e.Flow),
			Args: map[string]int64{"sub": int64(e.Sub), "a": e.A, "b": e.B},
		}
	}
}
