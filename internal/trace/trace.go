// Package trace is the simulator's observability layer. Sampler records
// time series from a running simulation — congestion windows, RTT
// estimates, queue occupancies — by polling caller-provided probes at a
// fixed virtual-time interval. Recorder is the structured event trace:
// a typed flight recorder for transport, network-emulation, routing and
// fault events with zero overhead when disabled. Both exist for
// debugging protocol dynamics; the experiment harness records through
// them but never depends on their output.
//
// All panics in this package carry the "trace:" prefix.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Series is one probe's samples.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Last returns the most recent sample (0 if none).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Sampler polls probes on a fixed virtual-time interval. Create with
// NewSampler, register probes with Add, then Start. The sampler
// self-schedules; it stops at MaxSamples (default 100000) or at Stop, so
// an engine Run bounded by RunUntil is unaffected by pending samples.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time

	// MaxSamples bounds the number of sampling rounds (default 100000).
	MaxSamples int

	probes  []func() float64
	series  []*Series
	rounds  int
	stopped bool
	started bool
}

// NewSampler creates a sampler with the given sampling interval.
func NewSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	if interval <= 0 {
		panic("trace: sampling interval must be positive")
	}
	return &Sampler{eng: eng, interval: interval, MaxSamples: 100_000}
}

// Add registers a probe. All probes are sampled at the same instants.
// Add panics after Start: the series would have misaligned lengths.
func (s *Sampler) Add(name string, probe func() float64) *Series {
	if s.started {
		panic("trace: Add after Start")
	}
	ser := &Series{Name: name}
	s.series = append(s.series, ser)
	s.probes = append(s.probes, probe)
	return ser
}

// Start begins sampling (the first round fires one interval from now).
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.eng.Schedule(s.interval, s.tick)
}

// Stop ends sampling after the current round.
func (s *Sampler) Stop() { s.stopped = true }

// Reset returns the sampler to its pre-Start state for run-instance
// pooling: recorded samples are discarded (each Series keeps its
// identity and capacity), the round counter and stop flag clear, and
// Start may be called again. Registered probes survive — but note they
// close over the *previous* run's transport objects, so probes that
// read per-flow state must be re-registered on a fresh Sampler instead.
//
// Call Reset alongside RunInstance.Reset: the engine reset drops the
// sampler's pending tick event, so without Reset a reused instance
// silently keeps a dead run's sampler state (started, never ticking)
// and its stale series.
func (s *Sampler) Reset() {
	for _, ser := range s.series {
		ser.Times = ser.Times[:0]
		ser.Values = ser.Values[:0]
	}
	s.rounds = 0
	s.stopped = false
	s.started = false
}

// Series returns the recorded series in registration order.
func (s *Sampler) Series() []*Series { return s.series }

func (s *Sampler) tick() {
	if s.stopped || s.rounds >= s.MaxSamples {
		return
	}
	s.rounds++
	now := s.eng.Now()
	for i, probe := range s.probes {
		s.series[i].Times = append(s.series[i].Times, now)
		s.series[i].Values = append(s.series[i].Values, probe())
	}
	s.eng.Schedule(s.interval, s.tick)
}

// WriteCSV emits all series as one CSV table: time_ms, then one column
// per series.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "time_ms"); err != nil {
		return err
	}
	for _, ser := range s.series {
		if _, err := fmt.Fprintf(w, ",%s", ser.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(s.series) == 0 {
		return nil
	}
	for i := range s.series[0].Times {
		if _, err := fmt.Fprintf(w, "%.3f", s.series[0].Times[i].Milliseconds()); err != nil {
			return err
		}
		for _, ser := range s.series {
			if _, err := fmt.Fprintf(w, ",%g", ser.Values[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
