package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSamplerRecordsAtInterval(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	v := 0.0
	ser := s.Add("v", func() float64 { return v })
	s.Start()
	// Drive the value over time.
	for i := 1; i <= 10; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Millisecond, func() { v = float64(i) })
	}
	eng.RunUntil(5500 * sim.Microsecond)
	if len(ser.Times) != 5 {
		t.Fatalf("samples = %d, want 5", len(ser.Times))
	}
	for i, ts := range ser.Times {
		if ts != sim.Time(i+1)*sim.Millisecond {
			t.Errorf("sample %d at %v", i, ts)
		}
	}
	// The setter at t=i ms runs before the sampler's tick at the same
	// instant (scheduled earlier), so sample i sees value i+1.
	if ser.Last() != 5 {
		t.Errorf("last = %v, want 5", ser.Last())
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	ser := s.Add("x", func() float64 { return 1 })
	s.Start()
	eng.At(3500*sim.Microsecond, s.Stop)
	eng.RunUntil(sim.Second)
	if len(ser.Values) != 3 {
		t.Fatalf("samples after stop = %d, want 3", len(ser.Values))
	}
}

func TestSamplerMaxSamples(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Microsecond)
	s.MaxSamples = 7
	ser := s.Add("x", func() float64 { return 0 })
	s.Start()
	eng.RunUntil(sim.Second)
	if len(ser.Values) != 7 {
		t.Fatalf("samples = %d, want capped at 7", len(ser.Values))
	}
}

func TestSamplerCSV(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	s.Add("a", func() float64 { return 1.5 })
	s.Add("b", func() float64 { return 2 })
	s.Start()
	eng.RunUntil(2 * sim.Millisecond)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "time_ms,a,b\n1.000,1.5,2\n2.000,1.5,2\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
}

func TestSamplerValidation(t *testing.T) {
	eng := sim.NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero interval did not panic")
			}
		}()
		NewSampler(eng, 0)
	}()
	s := NewSampler(eng, sim.Millisecond)
	s.Start()
	defer func() {
		if recover() == nil {
			t.Error("Add after Start did not panic")
		}
	}()
	s.Add("late", func() float64 { return 0 })
}

func TestSamplerEmptyCSV(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "time_ms\n" {
		t.Errorf("empty CSV = %q", b.String())
	}
}

func TestSamplerSeriesAndLast(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	a := s.Add("a", func() float64 { return 3 })
	if a.Last() != 0 {
		t.Error("Last on empty series should be 0")
	}
	s.Add("b", func() float64 { return 4 })
	s.Start()
	s.Start() // idempotent
	eng.RunUntil(3 * sim.Millisecond)
	all := s.Series()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("Series() = %v", all)
	}
	if a.Last() != 3 {
		t.Errorf("Last = %v", a.Last())
	}
}

// TestSamplerReset: Reset returns a used sampler to its pre-Start state
// for run-instance pooling — samples discarded, round counter and flags
// cleared, Start usable again — without losing series identity.
func TestSamplerReset(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, sim.Millisecond)
	ser := s.Add("x", func() float64 { return 1 })
	s.Start()
	eng.At(2500*sim.Microsecond, s.Stop)
	eng.RunUntil(10 * sim.Millisecond)
	if len(ser.Values) != 2 {
		t.Fatalf("pre-Reset samples = %d, want 2", len(ser.Values))
	}
	s.Reset()
	if len(ser.Times) != 0 || len(ser.Values) != 0 {
		t.Error("Reset left samples in the series")
	}
	if s.Series()[0] != ser {
		t.Error("Reset replaced the series object")
	}
	// The engine reset that accompanies pooling dropped the pending
	// tick; a fresh Start must sample again from a clean state.
	eng.Reset()
	s.Start()
	eng.RunUntil(3500 * sim.Microsecond)
	if len(ser.Values) != 3 {
		t.Errorf("post-Reset samples = %d, want 3 (stop flag must clear)", len(ser.Values))
	}
}
