// Package workload generates the paper's traffic: a permutation traffic
// matrix over the servers, with one third of the servers running
// long-lived background flows and the rest sending 70 KB short flows
// whose arrivals follow a Poisson process (Figure 1's caption), plus the
// hotspot and incast patterns from the paper's roadmap.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Assignment maps each host to its role and permutation partner.
type Assignment struct {
	Hosts int
	// Partner[i] is the fixed destination of host i (a derangement:
	// Partner[i] != i).
	Partner []int
	// LongSenders and ShortSenders partition the hosts that send.
	LongSenders  []int
	ShortSenders []int
}

// BuildPermutation draws a permutation traffic matrix: a random
// derangement assigns every host a destination, and a random subset of
// longFraction of the hosts is designated to run long background flows;
// the rest send short flows. The paper uses longFraction = 1/3 over 512
// hosts.
func BuildPermutation(rng *sim.RNG, hosts int, longFraction float64) Assignment {
	if hosts < 2 {
		panic(fmt.Sprintf("workload: need at least 2 hosts, got %d", hosts))
	}
	if longFraction < 0 || longFraction > 1 {
		panic(fmt.Sprintf("workload: longFraction %v out of [0,1]", longFraction))
	}
	a := Assignment{Hosts: hosts, Partner: rng.Derangement(hosts)}
	order := rng.Perm(hosts)
	nLong := int(float64(hosts) * longFraction)
	for i, h := range order {
		if i < nLong {
			a.LongSenders = append(a.LongSenders, h)
		} else {
			a.ShortSenders = append(a.ShortSenders, h)
		}
	}
	return a
}

// HotspotConfig redirects a fraction of short senders to a single hot
// destination (the paper's roadmap "effect of hotspots").
type HotspotConfig struct {
	// Fraction of short senders redirected to the hot host.
	Fraction float64
	// Host is the hot destination.
	Host int
}

// ApplyHotspot rewrites the partners of the first Fraction of short
// senders to point at the hot host. Senders equal to the hot host keep
// their original partner.
func (a *Assignment) ApplyHotspot(cfg HotspotConfig) {
	n := int(float64(len(a.ShortSenders)) * cfg.Fraction)
	for i := 0; i < n && i < len(a.ShortSenders); i++ {
		s := a.ShortSenders[i]
		if s != cfg.Host {
			a.Partner[s] = cfg.Host
		}
	}
}

// ApplyLocality rewrites the partners of the last fraction of short
// senders to a neighbour under the same edge switch (hosts are laid
// out in contiguous blocks of groupSize per edge), modelling the
// rack-local share of datacenter traffic. Local flows never touch the
// aggregation or core layers, so under a partitioned fabric they keep
// shard boundaries quiet. Taking senders from the tail keeps the knob
// composable with ApplyHotspot, which rewrites from the front. Groups
// of one host have no distinct neighbour and keep their partner.
func (a *Assignment) ApplyLocality(fraction float64, groupSize int) {
	if groupSize < 2 {
		return
	}
	n := int(float64(len(a.ShortSenders)) * fraction)
	for i := 0; i < n && i < len(a.ShortSenders); i++ {
		s := a.ShortSenders[len(a.ShortSenders)-1-i]
		g := s / groupSize * groupSize
		p := g + (s-g+1)%groupSize
		if p < a.Hosts && p != s {
			a.Partner[s] = p
		}
	}
}

// SpawnFunc launches one flow of size bytes from src to dst at the
// current simulation time. id is unique per flow.
type SpawnFunc func(id uint64, src, dst int, size int64)

// PoissonShortFlows schedules short-flow arrivals: each short sender
// independently draws exponential inter-arrival times with the given
// per-sender rate (flows/second), starting after warmup, until total
// flows have been spawned across all senders. The spawned flow always
// targets the sender's permutation partner.
type PoissonShortFlows struct {
	Eng     *sim.Engine
	Assign  *Assignment
	Rate    float64 // per-sender arrivals per second
	Size    int64   // bytes per flow (70 KB in the paper)
	Total   int     // stop after this many flows (0 = no limit)
	Warmup  sim.Time
	Spawn   SpawnFunc
	BaseID  uint64 // first flow ID to assign
	spawned int
	nextID  uint64
}

// Start seeds each sender's arrival process. rng provides the
// exponential draws (split per sender for determinism independent of
// event interleaving).
func (p *PoissonShortFlows) Start(rng *sim.RNG) {
	if p.Rate <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	if p.Spawn == nil {
		panic("workload: Spawn is required")
	}
	p.nextID = p.BaseID
	for _, src := range p.Assign.ShortSenders {
		src := src
		srcRNG := rng.Split()
		var arrive func()
		arrive = func() {
			if p.Total > 0 && p.spawned >= p.Total {
				return
			}
			p.spawned++
			id := p.nextID
			p.nextID++
			p.Spawn(id, src, p.Assign.Partner[src], p.Size)
			gap := sim.FromSeconds(srcRNG.ExpFloat64() / p.Rate)
			p.Eng.Schedule(gap, arrive)
		}
		first := p.Warmup + sim.FromSeconds(srcRNG.ExpFloat64()/p.Rate)
		p.Eng.At(first, arrive)
	}
}

// Spawned returns the number of flows launched so far.
func (p *PoissonShortFlows) Spawned() int { return p.spawned }

// Incast launches n simultaneous flows of size bytes from distinct
// senders to one receiver at time at — the paper's burst-tolerance
// scenario ("tolerance to sudden and high bursts of traffic").
type Incast struct {
	Eng     *sim.Engine
	Senders []int
	Dst     int
	Size    int64
	At      sim.Time
	Spawn   SpawnFunc
	BaseID  uint64
}

// Start schedules the burst.
func (ic *Incast) Start() {
	if ic.Spawn == nil {
		panic("workload: Spawn is required")
	}
	for i, src := range ic.Senders {
		if src == ic.Dst {
			continue
		}
		src := src
		id := ic.BaseID + uint64(i)
		ic.Eng.At(ic.At, func() { ic.Spawn(id, src, ic.Dst, ic.Size) })
	}
}
