package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestBuildPermutationProperties(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, hosts := range []int{2, 3, 16, 512} {
		a := BuildPermutation(rng, hosts, 1.0/3)
		if len(a.Partner) != hosts {
			t.Fatalf("hosts=%d: partner len %d", hosts, len(a.Partner))
		}
		seen := make([]bool, hosts)
		for i, p := range a.Partner {
			if p == i {
				t.Fatalf("hosts=%d: host %d sends to itself", hosts, i)
			}
			if p < 0 || p >= hosts || seen[p] {
				t.Fatalf("hosts=%d: partner map is not a permutation", hosts)
			}
			seen[p] = true
		}
		wantLong := int(float64(hosts) / 3)
		if len(a.LongSenders) != wantLong {
			t.Errorf("hosts=%d: long senders = %d, want %d", hosts, len(a.LongSenders), wantLong)
		}
		if len(a.LongSenders)+len(a.ShortSenders) != hosts {
			t.Errorf("hosts=%d: role partition broken", hosts)
		}
		// Roles are disjoint.
		role := make(map[int]bool)
		for _, h := range a.LongSenders {
			role[h] = true
		}
		for _, h := range a.ShortSenders {
			if role[h] {
				t.Fatalf("host %d has both roles", h)
			}
		}
	}
}

func TestBuildPermutationPanics(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		hosts int
		frac  float64
	}{{1, 0.3}, {8, -0.1}, {8, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("hosts=%d frac=%v did not panic", tc.hosts, tc.frac)
				}
			}()
			BuildPermutation(rng, tc.hosts, tc.frac)
		}()
	}
}

func TestPoissonShortFlows(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(42)
	a := BuildPermutation(rng, 32, 1.0/3)
	type spawn struct {
		id       uint64
		src, dst int
		at       sim.Time
	}
	var spawns []spawn
	p := &PoissonShortFlows{
		Eng:    eng,
		Assign: &a,
		Rate:   100, // per sender per second
		Size:   70_000,
		Total:  500,
		Warmup: 100 * sim.Millisecond,
		BaseID: 1000,
		Spawn: func(id uint64, src, dst int, size int64) {
			if size != 70_000 {
				t.Fatalf("size = %d", size)
			}
			spawns = append(spawns, spawn{id, src, dst, eng.Now()})
		},
	}
	p.Start(rng)
	eng.Run()

	if p.Spawned() != 500 || len(spawns) != 500 {
		t.Fatalf("spawned %d flows, want 500", len(spawns))
	}
	ids := map[uint64]bool{}
	shortSet := map[int]bool{}
	for _, s := range a.ShortSenders {
		shortSet[s] = true
	}
	for _, s := range spawns {
		if ids[s.id] {
			t.Fatalf("duplicate flow id %d", s.id)
		}
		ids[s.id] = true
		if s.id < 1000 {
			t.Fatalf("flow id %d below BaseID", s.id)
		}
		if !shortSet[s.src] {
			t.Fatalf("flow from non-short sender %d", s.src)
		}
		if s.dst != a.Partner[s.src] {
			t.Fatalf("flow %d->%d violates the permutation matrix", s.src, s.dst)
		}
		if s.at < 100*sim.Millisecond {
			t.Fatalf("flow spawned at %v, before warmup", s.at)
		}
	}
	// Aggregate rate sanity: 21 senders... hosts=32 -> 10 long, 22
	// short senders at 100 flows/s each = 2200 flows/s; 500 flows take
	// roughly 0.23s after warmup. Allow a factor of 2.
	dur := (eng.Now() - 100*sim.Millisecond).Seconds()
	wantDur := 500.0 / (float64(len(a.ShortSenders)) * 100)
	if dur < wantDur/2 || dur > wantDur*2 {
		t.Errorf("arrival duration %.3fs, want about %.3fs", dur, wantDur)
	}
}

func TestPoissonInterarrivalMean(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	a := Assignment{Hosts: 2, Partner: []int{1, 0}, ShortSenders: []int{0}}
	var times []sim.Time
	p := &PoissonShortFlows{
		Eng: eng, Assign: &a, Rate: 1000, Size: 1, Total: 5000,
		Spawn: func(id uint64, src, dst int, size int64) { times = append(times, eng.Now()) },
	}
	p.Start(rng)
	eng.Run()
	if len(times) != 5000 {
		t.Fatalf("spawned %d", len(times))
	}
	var sum float64
	for i := 1; i < len(times); i++ {
		sum += (times[i] - times[i-1]).Seconds()
	}
	mean := sum / float64(len(times)-1)
	if math.Abs(mean-0.001) > 0.0001 {
		t.Errorf("mean inter-arrival = %.6fs, want 0.001s", mean)
	}
}

func TestApplyHotspot(t *testing.T) {
	rng := sim.NewRNG(3)
	a := BuildPermutation(rng, 64, 1.0/3)
	hot := a.ShortSenders[len(a.ShortSenders)-1] // pick some host
	a.ApplyHotspot(HotspotConfig{Fraction: 0.5, Host: hot})
	n := int(float64(len(a.ShortSenders)) * 0.5)
	redirected := 0
	for i := 0; i < n; i++ {
		s := a.ShortSenders[i]
		if s == hot {
			continue
		}
		if a.Partner[s] == hot {
			redirected++
		}
	}
	if redirected < n-1 {
		t.Errorf("redirected %d of first %d short senders", redirected, n)
	}
	// No self-loops ever.
	for i, p := range a.Partner {
		if p == i {
			t.Fatalf("hotspot created self-loop at %d", i)
		}
	}
}

func TestIncast(t *testing.T) {
	eng := sim.NewEngine()
	var got []int
	var at []sim.Time
	ic := &Incast{
		Eng:     eng,
		Senders: []int{1, 2, 3, 5},
		Dst:     3, // sender 3 must be skipped
		Size:    14000,
		At:      50 * sim.Millisecond,
		BaseID:  7,
		Spawn: func(id uint64, src, dst int, size int64) {
			if dst != 3 || size != 14000 {
				t.Fatalf("bad spawn %d->%d size=%d", src, dst, size)
			}
			got = append(got, src)
			at = append(at, eng.Now())
		},
	}
	ic.Start()
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("spawned %d flows, want 3 (self excluded)", len(got))
	}
	for _, ts := range at {
		if ts != 50*sim.Millisecond {
			t.Errorf("burst at %v, want 50ms", ts)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	eng := sim.NewEngine()
	a := Assignment{Hosts: 2, Partner: []int{1, 0}, ShortSenders: []int{0}}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero rate did not panic")
			}
		}()
		(&PoissonShortFlows{Eng: eng, Assign: &a, Rate: 0, Spawn: func(uint64, int, int, int64) {}}).Start(sim.NewRNG(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil spawn did not panic")
			}
		}()
		(&PoissonShortFlows{Eng: eng, Assign: &a, Rate: 1}).Start(sim.NewRNG(1))
	}()
}

func TestApplyHotspotEdgeCases(t *testing.T) {
	// Fraction 0: a no-op, partners untouched.
	rng := sim.NewRNG(5)
	a := BuildPermutation(rng, 32, 0.25)
	before := append([]int(nil), a.Partner...)
	a.ApplyHotspot(HotspotConfig{Fraction: 0, Host: 1})
	for i := range before {
		if a.Partner[i] != before[i] {
			t.Fatalf("fraction 0 rewrote partner of %d", i)
		}
	}
	// Fraction 1: every short sender except the hot host itself points
	// at the hot host; long senders keep their partners.
	hot := a.ShortSenders[0]
	a.ApplyHotspot(HotspotConfig{Fraction: 1, Host: hot})
	for _, s := range a.ShortSenders {
		if s == hot {
			if a.Partner[s] == hot {
				t.Fatal("hot host redirected to itself")
			}
			continue
		}
		if a.Partner[s] != hot {
			t.Errorf("short sender %d not redirected", s)
		}
	}
	for _, s := range a.LongSenders {
		if a.Partner[s] != before[s] {
			t.Errorf("long sender %d partner rewritten by hotspot", s)
		}
	}
	// Fraction above 1 is clamped by the slice bound rather than
	// panicking.
	b := BuildPermutation(sim.NewRNG(6), 16, 0)
	b.ApplyHotspot(HotspotConfig{Fraction: 2.5, Host: 3})
	for _, s := range b.ShortSenders {
		if s != 3 && b.Partner[s] != 3 {
			t.Errorf("sender %d missed by over-unity fraction", s)
		}
	}
}

func TestApplyLocality(t *testing.T) {
	rng := sim.NewRNG(11)
	a := BuildPermutation(rng, 64, 1.0/3)
	before := append([]int(nil), a.Partner...)
	a.ApplyLocality(0.5, 4)
	n := int(float64(len(a.ShortSenders)) * 0.5)
	// The last n short senders point at a same-group neighbour; the rest
	// (and all long senders) keep their original partner.
	for i, s := range a.ShortSenders {
		if i >= len(a.ShortSenders)-n {
			if a.Partner[s]/4 != s/4 {
				t.Errorf("sender %d rewired to %d — crosses its group of 4", s, a.Partner[s])
			}
			if a.Partner[s] == s {
				t.Errorf("sender %d rewired to itself", s)
			}
		} else if a.Partner[s] != before[s] {
			t.Errorf("front sender %d rewritten by tail-end locality", s)
		}
	}
	for _, s := range a.LongSenders {
		if a.Partner[s] != before[s] {
			t.Errorf("long sender %d partner rewritten by locality", s)
		}
	}

	// Composable with a hotspot: hotspot takes the front, locality the
	// tail, and with fractions summing to 1 they partition the senders.
	b := BuildPermutation(sim.NewRNG(12), 64, 0)
	hot := b.ShortSenders[0]
	b.ApplyHotspot(HotspotConfig{Fraction: 0.5, Host: hot})
	b.ApplyLocality(0.5, 4)
	nb := len(b.ShortSenders) / 2
	for i, s := range b.ShortSenders {
		if i < nb && s != hot && b.Partner[s] != hot {
			t.Errorf("front sender %d lost its hotspot partner to locality", s)
		}
		if i >= len(b.ShortSenders)-nb && b.Partner[s]/4 != s/4 {
			t.Errorf("tail sender %d not rack-local after composition", s)
		}
	}

	// groupSize < 2 has no distinct neighbour: a no-op.
	c := BuildPermutation(sim.NewRNG(13), 16, 0)
	orig := append([]int(nil), c.Partner...)
	c.ApplyLocality(1, 1)
	for i := range orig {
		if c.Partner[i] != orig[i] {
			t.Fatalf("groupSize 1 rewrote partner of %d", i)
		}
	}
}

func TestIncastIDsAndValidation(t *testing.T) {
	eng := sim.NewEngine()
	var ids []uint64
	ic := &Incast{
		Eng:     eng,
		Senders: []int{4, 9, 2},
		Dst:     0,
		Size:    70_000,
		At:      0, // burst at t=0 is legal
		BaseID:  100,
		Spawn: func(id uint64, src, dst int, size int64) {
			ids = append(ids, id)
		},
	}
	ic.Start()
	eng.Run()
	// IDs are BaseID + position, so records stay collision-free even
	// with skipped senders.
	want := []uint64{100, 101, 102}
	if len(ids) != len(want) {
		t.Fatalf("spawned %d flows, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if id != want[i] {
			t.Errorf("flow %d has id %d, want %d", i, id, want[i])
		}
	}
	// A nil Spawn is a programming error and panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Incast without Spawn did not panic")
			}
		}()
		(&Incast{Eng: eng, Senders: []int{1}}).Start()
	}()
}
