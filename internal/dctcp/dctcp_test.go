package dctcp

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
)

// buildDumbbell returns a dumbbell whose bottleneck marks ECN above k
// packets of queue.
func buildDumbbell(eng *sim.Engine, k int) *topology.Dumbbell {
	link := topology.DefaultLinkConfig()
	link.RateBps = 1_000_000_000
	link.ECNThreshold = 0 // access links do not mark
	d := topology.NewDumbbell(eng, topology.DumbbellConfig{
		HostsPerSide:  2,
		Link:          link,
		BottleneckBps: 100_000_000,
	})
	d.BottleneckLR.ECNThreshold = k
	d.BottleneckRL.ECNThreshold = k
	return d
}

func runLongFlow(t *testing.T, withDCTCP bool, k int) (*topology.Dumbbell, *tcp.Sender, *tcp.Receiver) {
	t.Helper()
	eng := sim.NewEngine()
	d := buildDumbbell(eng, k)
	rcv := tcp.NewReceiver(eng, tcp.DefaultConfig(), d.Right(0), 1, -1)
	opt := tcp.SenderOptions{
		Host: d.Left(0), Dst: d.Right(0).ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source: &tcp.BytesSource{Size: -1},
	}
	if withDCTCP {
		opt.CC = &CC{}
	}
	snd := tcp.NewSender(eng, tcp.DefaultConfig(), opt)
	snd.Start()
	eng.RunUntil(3 * sim.Second)
	return d, snd, rcv
}

func TestDCTCPKeepsQueueShort(t *testing.T) {
	const k = 10
	_, _, _ = runLongFlow(t, true, k)

	dct, dctSnd, dctRcv := runLongFlow(t, true, k)
	reno, renoSnd, renoRcv := runLongFlow(t, false, 0)

	// Both must drive the bottleneck near capacity.
	dctMbps := float64(dctRcv.Delivered()) * 8 / 3 / 1e6
	renoMbps := float64(renoRcv.Delivered()) * 8 / 3 / 1e6
	if dctMbps < 80 {
		t.Errorf("DCTCP goodput = %.1f Mb/s, want near 100", dctMbps)
	}
	if renoMbps < 80 {
		t.Errorf("Reno goodput = %.1f Mb/s, want near 100", renoMbps)
	}
	// DCTCP's whole point: the standing queue stays near K while Reno
	// fills the buffer until drop-tail loss.
	dctQ := dct.BottleneckLR.Stats.MaxQueue
	renoQ := reno.BottleneckLR.Stats.MaxQueue
	if dctQ >= renoQ {
		t.Errorf("DCTCP max queue %d >= Reno max queue %d", dctQ, renoQ)
	}
	if dctQ > 5*k {
		t.Errorf("DCTCP max queue %d far above the marking threshold %d", dctQ, k)
	}
	// DCTCP avoids loss entirely in steady state on a clean path.
	if dct.BottleneckLR.Stats.Drops > renoSnd.Stats.Retransmissions {
		t.Errorf("DCTCP caused %d drops", dct.BottleneckLR.Stats.Drops)
	}
	if dctSnd.Stats.Timeouts > 0 {
		t.Errorf("DCTCP suffered %d timeouts on a clean path", dctSnd.Stats.Timeouts)
	}
}

func TestDCTCPAlphaConverges(t *testing.T) {
	eng := sim.NewEngine()
	d := buildDumbbell(eng, 10)
	cc := &CC{}
	rcv := tcp.NewReceiver(eng, tcp.DefaultConfig(), d.Right(0), 1, -1)
	snd := tcp.NewSender(eng, tcp.DefaultConfig(), tcp.SenderOptions{
		Host: d.Left(0), Dst: d.Right(0).ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source: &tcp.BytesSource{Size: -1},
		CC:     cc,
	})
	snd.Start()
	eng.RunUntil(3 * sim.Second)
	_ = rcv
	if cc.AlphaUpdates < 10 {
		t.Fatalf("alpha updated only %d times", cc.AlphaUpdates)
	}
	// In steady state only a small fraction of packets is marked.
	if a := cc.Alpha(); a <= 0 || a >= 0.9 {
		t.Errorf("alpha = %.3f, want converged into (0, 0.9)", a)
	}
	if cc.Cuts == 0 {
		t.Error("no proportional cuts despite marking")
	}
}

func TestDCTCPCutIsProportional(t *testing.T) {
	// Feed the CC synthetic echoes: with alpha converged low, a mark
	// must shave far less than half the window.
	eng := sim.NewEngine()
	d := buildDumbbell(eng, 10)
	cc := &CC{}
	snd := tcp.NewSender(eng, tcp.DefaultConfig(), tcp.SenderOptions{
		Host: d.Left(0), Dst: d.Right(0).ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source: &tcp.BytesSource{Size: -1},
		CC:     cc,
	})
	snd.Start() // puts the initial window in flight
	cc.initialized = true
	cc.alpha = 0.1
	cc.cutEnd = 0
	cc.windowEnd = 1 << 40 // keep alpha frozen during this probe
	before := snd.Cwnd
	cc.OnECNEcho(snd, 1400, true)
	if snd.Cwnd >= before {
		t.Fatal("no cut on mark")
	}
	want := before * (1 - 0.05)
	if snd.Cwnd < want*0.999 || snd.Cwnd > want*1.001 {
		t.Errorf("cwnd after cut = %.0f, want %.0f (alpha/2 proportional)", snd.Cwnd, want)
	}
	// Second mark in the same window must not cut again.
	mid := snd.Cwnd
	cc.OnECNEcho(snd, 1400, true)
	if snd.Cwnd < mid*0.999 {
		t.Error("second cut within one window")
	}
	if cc.Cuts != 1 {
		t.Errorf("cuts = %d, want 1", cc.Cuts)
	}
}

func TestECNEchoPlumbing(t *testing.T) {
	// CE set by a queue above threshold must round-trip into the
	// sender's CC via the receiver echo.
	eng := sim.NewEngine()
	d := buildDumbbell(eng, 1) // mark aggressively
	cc := &CC{}
	rcv := tcp.NewReceiver(eng, tcp.DefaultConfig(), d.Right(0), 1, 700_000)
	snd := tcp.NewSender(eng, tcp.DefaultConfig(), tcp.SenderOptions{
		Host: d.Left(0), Dst: d.Right(0).ID(), FlowID: 1,
		SrcPort: 10000, DstPort: 80,
		Source: &tcp.BytesSource{Size: 700_000},
		CC:     cc,
	})
	snd.Start()
	eng.Run()
	if !rcv.Complete() {
		t.Fatal("incomplete")
	}
	if cc.Cuts == 0 {
		t.Error("no ECN reaction despite aggressive marking")
	}
	_ = netem.FlagAck
}
