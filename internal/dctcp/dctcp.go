// Package dctcp implements Data Center TCP (Alizadeh et al., SIGCOMM
// 2010) as an additional single-path baseline. The paper's §1 positions
// DCTCP as the class of latency-oriented transports MMPTCP competes
// with: effective for short flows, but requiring switch support (ECN
// marking) and unable to exploit multipath.
//
// The switch side is netem's ECN threshold marking (mark when the
// instantaneous queue exceeds K packets); the receiver echoes CE marks
// on every ACK (this simulator ACKs per packet, which matches DCTCP's
// intent of precise mark feedback); this package provides the sender's
// congestion control: an EWMA estimate alpha of the marked byte
// fraction, updated once per window of data, and a proportional window
// cut of alpha/2 at most once per window.
package dctcp

import "repro/internal/tcp"

// DefaultG is the paper-recommended EWMA gain (1/16).
const DefaultG = 1.0 / 16

// CC is the DCTCP congestion control for one tcp.Sender. It grows the
// window exactly like Reno and reacts to ECN echoes instead of waiting
// for loss. Create one CC per sender.
type CC struct {
	// G is the EWMA gain for alpha; zero means DefaultG.
	G float64

	alpha       float64
	initialized bool

	// Per-observation-window accounting (one window of data, tracked
	// by cumulative-ACK position).
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64 // update alpha when snd.una passes this

	// cutEnd rate-limits window reductions to one per window of data.
	cutEnd int64

	// Stats.
	Cuts         int64
	AlphaUpdates int64
}

// Alpha returns the current marked-fraction estimate.
func (c *CC) Alpha() float64 { return c.alpha }

// OnAck implements tcp.CongestionControl (Reno-style growth).
func (c *CC) OnAck(s *tcp.Sender, ackedBytes int) {
	tcp.RenoCC{}.OnAck(s, ackedBytes)
}

// OnECNEcho implements tcp.ECNCapable: account the marked fraction,
// update alpha once per window, and cut proportionally when marks
// arrive.
func (c *CC) OnECNEcho(s *tcp.Sender, ackedBytes int, marked bool) {
	g := c.G
	if g == 0 {
		g = DefaultG
	}
	if !c.initialized {
		c.initialized = true
		// Start pessimistic (alpha=1, as Linux does): the first mark
		// halves the window; alpha then converges to the true marked
		// fraction within a few windows.
		c.alpha = 1
		c.windowEnd = s.Acked() + s.Flight()
		c.cutEnd = 0
	}
	c.ackedBytes += int64(ackedBytes)
	if marked {
		c.markedBytes += int64(ackedBytes)
	}

	// End of an observation window: fold the marked fraction into the
	// EWMA and start the next window.
	if s.Acked()+int64(ackedBytes) >= c.windowEnd {
		if c.ackedBytes > 0 {
			f := float64(c.markedBytes) / float64(c.ackedBytes)
			c.alpha = (1-g)*c.alpha + g*f
			c.AlphaUpdates++
		}
		c.ackedBytes = 0
		c.markedBytes = 0
		c.windowEnd = s.Acked() + int64(ackedBytes) + s.Flight()
	}

	// Proportional cut, at most once per window of data.
	if marked && s.Acked() >= c.cutEnd {
		mss := float64(s.Config().MSS)
		s.Cwnd *= 1 - c.alpha/2
		if s.Cwnd < mss {
			s.Cwnd = mss
		}
		// Leaving slow start on the first mark, like DCTCP does.
		if s.Ssthresh > s.Cwnd {
			s.Ssthresh = s.Cwnd
		}
		c.cutEnd = s.Acked() + s.Flight()
		c.Cuts++
	}
}

var (
	_ tcp.CongestionControl = (*CC)(nil)
	_ tcp.ECNCapable        = (*CC)(nil)
)
