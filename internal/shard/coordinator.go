package shard

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// RunOptions parameterises one coordinated run.
type RunOptions struct {
	// Until is the virtual-time horizon (the run's MaxSimTime).
	Until sim.Time
	// Interrupt, when non-nil, is polled at every barrier; returning
	// true abandons the run, as the sequential engine's SetInterrupt
	// hook does. Barriers recur at least every maxWindowFactor
	// lookaheads of virtual time (every single lookahead in
	// conservative mode), so polling latency is bounded.
	Interrupt func() bool
	// Adaptive selects traffic-adaptive lookahead: window edges widen
	// to the minimum earliest-output-time promise of the other shards
	// instead of the static conservative bound, and shards with nothing
	// to do below their edge are elided from the barrier. Off (the
	// default) is the conservative engine, byte-identical to PR 8.
	Adaptive bool
}

// worker is one shard's persistent execution thread: it parks on start,
// runs its engine to the received window edge, and reports on done. The
// channel pair is also the memory barrier that publishes everything the
// control thread wrote at the barrier (fault state, FIB flips, freshly
// dialed endpoints) to the shard thread and vice versa.
type worker struct {
	start chan sim.Time
	done  chan struct{}
}

func (f *Fabric) startWorkers() {
	f.workers = make([]worker, f.shards)
	for i := range f.workers {
		w := worker{start: make(chan sim.Time), done: make(chan struct{})}
		f.workers[i] = w
		go func(e *sim.Engine) {
			for limit := range w.start {
				e.RunUntil(limit)
				w.done <- struct{}{}
			}
		}(f.engines[i])
	}
}

func (f *Fabric) stopWorkers() {
	for i := range f.workers {
		close(f.workers[i].start)
	}
	f.workers = nil
}

// advanceShards raises every shard clock to t (the barrier time), so
// control-plane callbacks running at the barrier observe the barrier
// instant on whichever shard engine they consult, and events they
// schedule relative to a shard's now land in that shard's future.
// Clocks already past t (a shard that ran a wide adaptive window) stay
// put — AdvanceTo is monotone.
func (f *Fabric) advanceShards(t sim.Time) {
	for _, e := range f.engines {
		e.AdvanceTo(t)
	}
}

// Run executes the fabric until the horizon, a Stop request, or an
// interrupt. It returns whether the run was stopped (vs drained or
// timed out) and the virtual time it ended at — the stopping callback's
// own firing time when stopped, Until otherwise (matching
// sim.Engine.RunUntil's clock semantics). On a direct fabric this is
// exactly control.RunUntil.
//
// Stop granularity: a Stop issued by a deferred completion takes effect
// at the barrier that replays the completion. The window that produced
// it has already run to its edge, so shard engines may process events
// up to one window (at most maxWindowFactor lookaheads plus the
// distance to the next control event; one lookahead in conservative
// mode) past the stop time — events the sequential simulator never
// reaches. The overrun is deterministic (windows depend only on heap
// state, never on thread timing), and the returned stop time is exact;
// only cumulative counters (per-link stats, processed-event totals)
// include the overrun. This is the documented N-shard divergence from
// the sequential oracle — see the package comment.
func (f *Fabric) Run(opt RunOptions) (stopped bool, elapsed sim.Time) {
	if f.direct {
		f.control.RunUntil(opt.Until)
		return f.stopped, f.control.Now()
	}
	f.startWorkers()
	defer f.stopWorkers()

	until := opt.Until
	for {
		// Barrier: commit cross-shard deliveries, then replay deferred
		// completions in (time, shard) order. A completion may Stop the
		// run — that ends it at the completion's own firing time.
		f.stats.Barriers++
		f.flushOutboxes()
		f.flushDeferred()
		if f.stopped {
			return true, f.stopTime
		}
		if opt.Interrupt != nil && opt.Interrupt() {
			return false, f.control.Now()
		}

		c := f.control.PeekTime()
		s := sim.MaxTime
		for _, e := range f.engines {
			if t := e.PeekTime(); t < s {
				s = t
			}
		}
		if c > until && s > until {
			// Horizon reached (or fully drained): leave every clock at
			// the horizon, as RunUntil would.
			f.advanceShards(until)
			f.control.RunUntil(until)
			return false, until
		}
		if c <= s {
			// Control-plane turn. Shard clocks advance to the barrier
			// first so the control events (faults flipping link state,
			// the spawner dialing onto shard engines, snapshots reading
			// shard-owned counters) observe and schedule against the
			// barrier instant.
			f.stats.ControlTurns++
			f.advanceShards(c)
			f.control.RunUntil(c)
			continue
		}
		// Parallel window: shard i executes events strictly below its
		// edge. The conservative edge s + lookahead is always safe (a
		// cross-shard send at t >= s arrives at t + prop >= s +
		// lookahead; degradations only add delay on top of the as-built
		// propagation the lookahead was computed from, so the bound
		// survives faults); adaptive mode widens per shard where the
		// other shards' EOT promises allow it.
		cons := s + f.lookahead
		if cons > c {
			cons = c
		}
		if cons > until+1 {
			cons = until + 1
		}
		if opt.Adaptive {
			f.adaptiveEdges(s, cons, c, until)
		} else {
			for i := range f.edges {
				f.edges[i] = cons
			}
		}
		f.runWindow(s, cons)
	}
}

// adaptiveEdges fills f.edges with per-shard window edges from the
// other shards' earliest-output-time promises.
//
// Shard j's promise is the earliest instant anything it does — now or
// ever — can take effect on another shard. One hop of it is its next
// pending event time plus a distance term: at least the minimum
// propagation delay of j's outgoing boundary links, and wider when
// every pending event's horizon class says it sits deeper inside the
// shard — a rack-local packet at a host is several hops of propagation
// from the nearest boundary, and sim.Engine.HorizonBonus surfaces the
// minimum such distance over the live heap (outbox heads are folded in
// defensively, though flushOutboxes has always drained them by the
// time this runs). But the one-hop bound alone is unsound across
// barriers: shard j's heap head can move *backward* when a later flush
// commits an arrival below it, and a window edge granted on the
// strength of the old head would then sit above traffic j emits in
// response. The promise must therefore be the fixed point of
//
//	EOT_j = min(PeekTime_j + bonus_j, (min_{k != j} EOT_k) + outDelay_j)
//
// — own output no earlier than the heap's class-aware horizon, and any
// relay of another shard's output through j paying at least j's
// minimum boundary delay on the way back out.
//
// — the classical conservative earliest-input/earliest-output
// computation: whatever chain of cross-shard arrivals could reach j,
// each hop pays at least the source's minimum boundary delay, so the
// fixed point lower-bounds everything j can emit in any future window,
// not just the next one. Positive boundary delays (validated at build
// time) make the relaxation converge in at most shards-1 passes.
//
// Control-plane work (fault injections, routing callbacks, spawner
// dialing, snapshots) executes only at control turns, which every edge
// is capped at (the c term), so promises never need to model it.
// Whenever a promise cannot widen the window — dense boundary traffic
// (the EWMA gate), control work pending at c, ties at the conservative
// edge — the edge falls back to the conservative bound, so adaptive
// mode inherits the conservative engine's no-deadlock guarantee: edges
// never narrow below cons, and cons always admits the earliest pending
// event.
//
// Determinism: promises derive from heap state and as-built delays, the
// EWMA from committed delivery counts — never from thread timing — so
// the window sequence is a pure function of (seed, shards).
func (f *Fabric) adaptiveEdges(s, cons, c, until sim.Time) {
	// EWMA gate: when boundaries are busy the promises collapse to
	// (roughly) the conservative bound anyway; skip the promise pass
	// until traffic quietens.
	if len(f.ewma) > 0 {
		sum := 0.0
		for _, v := range f.ewma {
			sum += v
		}
		if sum >= busyBoundaryEWMA*float64(len(f.ewma)) {
			for i := range f.edges {
				f.edges[i] = cons
			}
			return
		}
	}
	for i, e := range f.engines {
		f.promises[i] = satAdd(e.PeekTime(), e.HorizonBonus(f.outDelay[i]))
	}
	for k, ob := range f.outboxes {
		// A buffered delivery is output already in flight: it lands at
		// d.at, so the source's promise can be no later.
		for _, d := range ob.pending {
			if d.at < f.promises[f.obSrc[k]] {
				f.promises[f.obSrc[k]] = d.at
			}
		}
	}
	// Relax to the fixed point: an arrival chain entering shard j before
	// its own head lowers what j can promise, by the chain's earliest
	// arrival plus j's minimum outgoing delay. Each pass propagates
	// chains one hop further; positive delays bound useful chains at
	// shards-1 hops, so the loop exits early once nothing moves.
	m1, m2, arg := sim.MaxTime, sim.MaxTime, -1
	for pass := 0; pass < f.shards; pass++ {
		m1, m2, arg = sim.MaxTime, sim.MaxTime, -1
		for j, p := range f.promises {
			if p < m1 {
				m1, m2, arg = p, m1, j
			} else if p < m2 {
				m2 = p
			}
		}
		changed := false
		for j := range f.promises {
			in := m1
			if j == arg {
				in = m2
			}
			if p := satAdd(in, f.outDelay[j]); p < f.promises[j] {
				f.promises[j] = p
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Shard i's edge is the minimum settled promise over the *other*
	// shards — computed for all i in one pass via the two smallest.
	capEdge := satAdd(s, f.maxWindow)
	for i := range f.edges {
		w := m1
		if i == arg {
			w = m2
		}
		// Promises are never below s + lookahead (every shard's next
		// event is >= s, every outgoing delay >= lookahead), so w >=
		// cons holds mathematically; the max is a guard, not a policy.
		if w < cons {
			w = cons
		}
		if w > capEdge {
			w = capEdge
		}
		if w > c {
			w = c
		}
		if w > until+1 {
			w = until + 1
		}
		f.edges[i] = w
	}
}

// satAdd is a+b saturating at MaxTime, so "never" (MaxTime) stays never
// instead of wrapping negative.
func satAdd(a, b sim.Time) sim.Time {
	if a >= sim.MaxTime-b {
		return sim.MaxTime
	}
	return a + b
}

// runWindow dispatches every shard with work strictly below its edge
// (f.edges) and waits for all of them — the barrier. Shards whose next
// event is at or past their edge are elided: no channel round-trip, no
// clock raise; their clocks catch up at the next control barrier or
// window they participate in. s is the window start (the earliest
// pending shard event) and cons the conservative edge, both for stats.
func (f *Fabric) runWindow(s, cons sim.Time) {
	if f.dispatched == nil {
		f.dispatched = make([]bool, f.shards)
	}
	maxEdge := s
	n := 0
	for i, e := range f.engines {
		edge := f.edges[i]
		if edge > maxEdge {
			maxEdge = edge
		}
		f.dispatched[i] = e.PeekTime() < edge
		if f.dispatched[i] {
			n++
			f.workers[i].start <- edge - 1
		}
	}
	for i := range f.engines {
		if f.dispatched[i] {
			<-f.workers[i].done
		}
	}
	elided := uint64(f.shards - n)
	f.stats.Windows++
	f.stats.ElidedWakeups += elided
	f.stats.WindowNsSum += maxEdge - s
	if maxEdge > cons {
		f.stats.WidenedWindows++
	}
	if f.winRec != nil {
		f.winRec.Record(s, trace.KindWindowEdge, 0, -1, int32(n), -1,
			int64(maxEdge-s), int64(elided))
	}
}
