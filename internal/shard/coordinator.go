package shard

import "repro/internal/sim"

// RunOptions parameterises one coordinated run.
type RunOptions struct {
	// Until is the virtual-time horizon (the run's MaxSimTime).
	Until sim.Time
	// Interrupt, when non-nil, is polled at every barrier; returning
	// true abandons the run, as the sequential engine's SetInterrupt
	// hook does. Barriers recur at least every lookahead of virtual
	// time, so polling latency is bounded.
	Interrupt func() bool
}

// worker is one shard's persistent execution thread: it parks on start,
// runs its engine to the received window edge, and reports on done. The
// channel pair is also the memory barrier that publishes everything the
// control thread wrote at the barrier (fault state, FIB flips, freshly
// dialed endpoints) to the shard thread and vice versa.
type worker struct {
	start chan sim.Time
	done  chan struct{}
}

func (f *Fabric) startWorkers() {
	f.workers = make([]worker, f.shards)
	for i := range f.workers {
		w := worker{start: make(chan sim.Time), done: make(chan struct{})}
		f.workers[i] = w
		go func(e *sim.Engine) {
			for limit := range w.start {
				e.RunUntil(limit)
				w.done <- struct{}{}
			}
		}(f.engines[i])
	}
}

func (f *Fabric) stopWorkers() {
	for i := range f.workers {
		close(f.workers[i].start)
	}
	f.workers = nil
}

// advanceShards raises every shard clock to t (the barrier time), so
// control-plane callbacks running at the barrier observe the barrier
// instant on whichever shard engine they consult, and events they
// schedule relative to a shard's now land in that shard's future.
func (f *Fabric) advanceShards(t sim.Time) {
	for _, e := range f.engines {
		e.AdvanceTo(t)
	}
}

// Run executes the fabric until the horizon, a Stop request, or an
// interrupt. It returns whether the run was stopped (vs drained or
// timed out) and the virtual time it ended at — the stopping callback's
// own firing time when stopped, Until otherwise (matching
// sim.Engine.RunUntil's clock semantics). On a direct fabric this is
// exactly control.RunUntil.
//
// Stop granularity: a Stop issued by a deferred completion takes effect
// at the barrier that replays the completion. The window that produced
// it has already run to its edge, so shard engines may process events
// up to one window (at most lookahead plus the distance to the next
// control event) past the stop time — events the sequential simulator
// never reaches. The overrun is deterministic (windows depend only on
// heap state, never on thread timing), and the returned stop time is
// exact; only cumulative counters (per-link stats, processed-event
// totals) include the overrun. This is the documented N-shard
// divergence from the sequential oracle — see the package comment.
func (f *Fabric) Run(opt RunOptions) (stopped bool, elapsed sim.Time) {
	if f.direct {
		f.control.RunUntil(opt.Until)
		return f.stopped, f.control.Now()
	}
	f.startWorkers()
	defer f.stopWorkers()

	until := opt.Until
	for {
		// Barrier: commit cross-shard deliveries, then replay deferred
		// completions in (time, shard) order. A completion may Stop the
		// run — that ends it at the completion's own firing time.
		f.flushOutboxes()
		f.flushDeferred()
		if f.stopped {
			return true, f.stopTime
		}
		if opt.Interrupt != nil && opt.Interrupt() {
			return false, f.control.Now()
		}

		c := f.control.PeekTime()
		s := sim.MaxTime
		for _, e := range f.engines {
			if t := e.PeekTime(); t < s {
				s = t
			}
		}
		if c > until && s > until {
			// Horizon reached (or fully drained): leave every clock at
			// the horizon, as RunUntil would.
			f.advanceShards(until)
			f.control.RunUntil(until)
			return false, until
		}
		if c <= s {
			// Control-plane turn. Shard clocks advance to the barrier
			// first so the control events (faults flipping link state,
			// the spawner dialing onto shard engines, snapshots reading
			// shard-owned counters) observe and schedule against the
			// barrier instant.
			f.advanceShards(c)
			f.control.RunUntil(c)
			continue
		}
		// Parallel window [s, w): every event strictly below w is
		// causally independent of anything another shard does in the
		// window, because a cross-shard send at t >= s arrives at
		// t + prop >= s + lookahead >= w. Degradations only ever add
		// delay on top of the as-built propagation the lookahead was
		// computed from, so the bound survives faults.
		w := s + f.lookahead
		if w > c {
			w = c
		}
		if w > until+1 {
			w = until + 1
		}
		f.runWindow(w - 1)
	}
}

// runWindow dispatches every shard with work below the window edge and
// waits for all of them — the barrier. Shards whose next event is at or
// past the edge are skipped; their clocks catch up at the next control
// barrier or window they participate in.
func (f *Fabric) runWindow(limit sim.Time) {
	if f.dispatched == nil {
		f.dispatched = make([]bool, f.shards)
	}
	for i, e := range f.engines {
		f.dispatched[i] = e.PeekTime() <= limit
		if f.dispatched[i] {
			f.workers[i].start <- limit
		}
	}
	for i := range f.engines {
		if f.dispatched[i] {
			<-f.workers[i].done
		}
	}
}
