// Package shard implements the parallel simulation core: it partitions a
// built topology into shards — each owning its own event heap, packet
// pool and slice of hosts, switches and links — and executes them
// concurrently under conservative lookahead. The minimum propagation
// delay across shard-boundary links is a hard lower bound on how far one
// shard's present can influence another's future, so every shard can
// safely run a bounded window ahead of the last synchronisation point
// without ever receiving an event in its past.
//
// The synchronisation protocol is bounded-lag with barriers: the
// coordinator computes a window edge W = min(S + L, C) from the earliest
// pending shard event S, the lookahead L and the earliest control-plane
// event C, dispatches every shard to execute events strictly below W,
// then flushes cross-shard deliveries and deferred completion callbacks
// at the barrier. A barrier is the degenerate form of a null-message
// broadcast — every shard learns every neighbour's horizon at once —
// which trades a little parallel slack for a deadlock-free protocol with
// no per-channel timestamp traffic.
//
// Determinism contract: runs are deterministic for a fixed (seed, shard
// count). Cross-shard deliveries are totally ordered by (timestamp,
// source shard, send order) before being committed to the destination
// heap — the deterministic-merge mode — so a run never depends on thread
// scheduling. With 1 shard (or 0, the default) the fabric runs in direct
// mode on the caller's engine and is byte-identical to the sequential
// simulator by construction. With N≥2 shards the event interleaving
// differs from the sequential order in bounded, documented ways —
// identical-nanosecond ties resolve control-first at barriers,
// same-instant cross-shard arrivals order by source shard, and a Stop
// lands on a window edge so shard engines overrun it by at most one
// window — so N-shard Results are deterministic but not byte-identical
// to the oracle; the sharded tests assert determinism plus the
// config-driven invariants (spawn and fault counts) against it.
package shard

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// delivery is one cross-shard event buffered in an outbox: a link
// delivery callback with its absolute arrival time.
type delivery struct {
	at  sim.Time
	fn  func(any)
	arg any
}

// outbox is the cross-shard half of a boundary link's receive side. It
// implements sim.EventScheduler so netem.Link can schedule deliveries
// through it without knowing about shards: AtArg buffers the event (the
// transmit shard's thread appends, nobody else touches pending until the
// barrier), and the coordinator commits the buffered deliveries to the
// destination engine in deterministic order at each barrier. Now() is
// only called from the destination shard's thread, while a delivery
// executes there.
type outbox struct {
	dst     *sim.Engine
	pending []delivery
}

func (o *outbox) Now() sim.Time { return o.dst.Now() }

func (o *outbox) AtArg(t sim.Time, fn func(any), arg any) *sim.Event {
	o.pending = append(o.pending, delivery{at: t, fn: fn, arg: arg})
	return nil
}

func (o *outbox) At(t sim.Time, fn func()) *sim.Event { panic("shard: outbox.At unused") }
func (o *outbox) Schedule(d sim.Time, fn func()) *sim.Event {
	panic("shard: outbox.Schedule unused")
}
func (o *outbox) ScheduleArg(d sim.Time, fn func(any), arg any) *sim.Event {
	panic("shard: outbox.ScheduleArg unused")
}

// deferredCall is a completion callback captured on a shard thread and
// replayed at the next barrier with the virtual time it fired at.
type deferredCall struct {
	at sim.Time
	fn func(at sim.Time)
}

// Fabric is a partitioned network bound to per-shard engines, plus the
// coordinator state to run them. Build it once per run instance (the
// wiring survives Network.Reset) and drive each run with Run.
type Fabric struct {
	control *sim.Engine
	net     *topology.Network
	shards  int

	// direct marks the 0/1-shard fabric: no partitioning, no worker
	// threads — every node stays bound to the control engine and Run is
	// a plain RunUntil. This is what makes the 1-shard fabric
	// byte-identical to the sequential simulator by construction rather
	// than by argument.
	direct bool

	engines   []*sim.Engine
	pools     []*netem.PacketPool
	swShard   []int
	hostShard []int
	lookahead sim.Time

	outboxes []*outbox // in (src shard, dst shard) order: the merge order
	deferred [][]deferredCall

	stopped  bool
	stopTime sim.Time

	shardRecs []*trace.Recorder

	workers    []worker
	deferIdx   []int  // flushDeferred scratch, kept to avoid per-barrier allocation
	dispatched []bool // runWindow scratch
}

// Build partitions net across `shards` engines and rebinds every host,
// switch and link to its owner. shards <= 1 builds a direct fabric that
// leaves the network untouched on the control engine. The partition
// comes from topology.Partition (per-pod on FatTrees, contiguous
// otherwise); hosts follow their access switch, so a host-switch cable
// is never a boundary.
func Build(control *sim.Engine, net *topology.Network, shards int) (*Fabric, error) {
	if shards <= 1 {
		return &Fabric{control: control, net: net, shards: 1, direct: true}, nil
	}
	assign, err := topology.Partition(net, shards)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		control:  control,
		net:      net,
		shards:   shards,
		swShard:  assign,
		deferred: make([][]deferredCall, shards),
		deferIdx: make([]int, shards),
	}
	f.engines = make([]*sim.Engine, shards)
	f.pools = make([]*netem.PacketPool, shards)
	for i := range f.engines {
		f.engines[i] = sim.NewEngine()
		f.pools[i] = netem.NewPacketPool()
	}

	nodeShard := make(map[netem.NodeID]int, len(net.Switches)+len(net.Hosts))
	for i, sw := range net.Switches {
		nodeShard[sw.ID()] = assign[i]
		sw.Rebind(f.engines[assign[i]], f.pools[assign[i]])
	}
	f.hostShard = make([]int, len(net.Hosts))
	for i, h := range net.Hosts {
		s := nodeShard[h.Uplinks()[0].Dst().ID()]
		f.hostShard[i] = s
		nodeShard[h.ID()] = s
		h.Rebind(f.engines[s], f.pools[s])
	}

	obIndex := make([]*outbox, shards*shards)
	f.lookahead = sim.MaxTime
	for _, l := range net.Links {
		tx := nodeShard[l.Src().ID()]
		rx := nodeShard[l.Dst().ID()]
		if tx == rx {
			l.Rebind(f.engines[tx], f.engines[tx], f.pools[tx], f.pools[tx])
			continue
		}
		ob := obIndex[tx*shards+rx]
		if ob == nil {
			ob = &outbox{dst: f.engines[rx]}
			obIndex[tx*shards+rx] = ob
		}
		l.Rebind(f.engines[tx], ob, f.pools[tx], f.pools[rx])
		if l.PropDelay() < f.lookahead {
			f.lookahead = l.PropDelay()
		}
	}
	if f.lookahead == sim.MaxTime {
		// Disconnected shards would also be fine (infinite lookahead),
		// but no supported topology produces them; treat as a partition
		// bug rather than silently running unsynchronised.
		return nil, fmt.Errorf("shard: partition of %s into %d shards has no boundary links", net.Kind, shards)
	}
	if f.lookahead <= 0 {
		return nil, fmt.Errorf("shard: zero-delay boundary link leaves no conservative lookahead (partition of %s into %d shards)", net.Kind, shards)
	}
	// Fixed (src, dst) flush order: this is the "shard" component of the
	// deterministic (time, shard, seq) merge order.
	for tx := 0; tx < shards; tx++ {
		for rx := 0; rx < shards; rx++ {
			if ob := obIndex[tx*shards+rx]; ob != nil {
				f.outboxes = append(f.outboxes, ob)
			}
		}
	}
	return f, nil
}

// Shards returns the shard count (1 for a direct fabric).
func (f *Fabric) Shards() int { return f.shards }

// Lookahead returns the conservative window bound: the minimum as-built
// propagation delay across shard-boundary links (0 for a direct fabric).
func (f *Fabric) Lookahead() sim.Time {
	if f.direct {
		return 0
	}
	return f.lookahead
}

// HostShard returns the shard owning host i.
func (f *Fabric) HostShard(i int) int {
	if f.direct {
		return 0
	}
	return f.hostShard[i]
}

// Events returns the total number of events processed across the control
// engine and every shard engine.
func (f *Fabric) Events() uint64 {
	total := f.control.Processed()
	for _, e := range f.engines {
		total += e.Processed()
	}
	return total
}

// Stop requests the run to stop, with the semantics of sim.Engine.Stop:
// the event (or deferred callback) that called it completes, nothing
// after it runs. Call only from the control thread — in practice from
// the completion callbacks the harness routes through Defer.
func (f *Fabric) Stop() {
	f.stopped = true
	if f.direct {
		f.control.Stop()
	}
}

// Defer hands a completion callback to the coordinator. On a shard
// thread (window execution) the callback and its firing time are
// buffered and replayed on the control thread at the next barrier, in
// (time, shard, buffer order); in direct mode it runs immediately.
// shard must be the shard whose engine the callback fires on (the
// receiver's for OnComplete, the sender's for OnAllAcked) — that
// engine's clock is the callback's firing time.
func (f *Fabric) Defer(shard int, fn func(at sim.Time)) {
	if f.direct {
		fn(f.control.Now())
		return
	}
	f.deferred[shard] = append(f.deferred[shard], deferredCall{at: f.engines[shard].Now(), fn: fn})
}

// InstallTracing arms the data plane's trace points for one run. rec may
// be nil (untraced: every recorder slot is cleared). On a direct fabric
// the single recorder serves every trace point, exactly as a sequential
// run; on a partitioned fabric each shard gets its own recorder (built
// from opts) so trace points never contend, and MergeTraces folds them
// back into rec time-ordered after the run.
func (f *Fabric) InstallTracing(rec *trace.Recorder, opts trace.Options) {
	if f.direct || rec == nil {
		f.shardRecs = nil
		for _, l := range f.net.Links {
			l.SetRecorder(rec)
		}
		for _, sw := range f.net.Switches {
			sw.SetRecorder(rec)
		}
		return
	}
	f.shardRecs = make([]*trace.Recorder, f.shards)
	for i := range f.shardRecs {
		f.shardRecs[i] = trace.NewRecorder(opts)
	}
	for i, sw := range f.net.Switches {
		sw.SetRecorder(f.shardRecs[f.swShard[i]])
	}
	nodeShard := func(n netem.Node) int {
		if int(n.ID()) < len(f.hostShard) {
			return f.hostShard[n.ID()]
		}
		return f.swShard[int(n.ID())-len(f.hostShard)]
	}
	for _, l := range f.net.Links {
		l.SetRecorders(f.shardRecs[nodeShard(l.Src())], f.shardRecs[nodeShard(l.Dst())])
	}
}

// FlowRecorder returns the recorder a flow sourced at host src should
// record into: the source shard's recorder on a partitioned fabric, rec
// itself otherwise.
func (f *Fabric) FlowRecorder(rec *trace.Recorder, src int) *trace.Recorder {
	if f.shardRecs == nil {
		return rec
	}
	return f.shardRecs[f.hostShard[src]]
}

// MergeTraces folds the per-shard recorders into rec, time-ordered.
// No-op on a direct or untraced fabric.
func (f *Fabric) MergeTraces(rec *trace.Recorder) {
	if f.shardRecs == nil || rec == nil {
		return
	}
	trace.MergeInto(rec, f.shardRecs...)
	f.shardRecs = nil
}

// FoldStats merges receive-side link counters into each link's Stats so
// reports see the whole picture; call after Run has returned.
func (f *Fabric) FoldStats() {
	for _, l := range f.net.Links {
		l.FoldRx()
	}
}

// Reset clears per-run coordinator state for instance reuse: shard
// engine heaps and clocks, buffered deliveries and completions, the stop
// latch. The partition wiring (engine/pool bindings, outbox routing)
// persists — that is the expensive half Build paid for. The control
// engine is the caller's to reset, alongside Network.Reset.
func (f *Fabric) Reset() {
	f.stopped = false
	f.stopTime = 0
	f.shardRecs = nil
	for _, e := range f.engines {
		e.Reset()
	}
	for _, ob := range f.outboxes {
		ob.pending = ob.pending[:0]
	}
	for i := range f.deferred {
		f.deferred[i] = f.deferred[i][:0]
	}
}

// flushOutboxes commits buffered cross-shard deliveries to their
// destination heaps. Outboxes are visited in (src, dst) order and each
// is stably sorted by arrival time, so the destination engine's
// tie-breaking sequence numbers realise the documented total order
// (time, source shard, send order) — identical every run. The buffers
// are nearly sorted already (transmit completions execute in time
// order; only links of differing delay sharing an outbox interleave),
// so a stable insertion sort beats the generic sort without allocating.
func (f *Fabric) flushOutboxes() {
	for _, ob := range f.outboxes {
		p := ob.pending
		if len(p) == 0 {
			continue
		}
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && p[j].at < p[j-1].at; j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
		for _, d := range p {
			ob.dst.AtArg(d.at, d.fn, d.arg)
		}
		for i := range p {
			p[i] = delivery{}
		}
		ob.pending = p[:0]
	}
}

// flushDeferred replays buffered completion callbacks on the control
// thread in (time, shard, buffer) order. A callback that calls Stop
// discards the rest, mirroring the sequential engine where Stop prevents
// any later event from running.
func (f *Fabric) flushDeferred() {
	idx := f.deferIdx
	for s := range idx {
		idx[s] = 0
	}
	for {
		best, bestShard := sim.MaxTime, -1
		for s := range f.deferred {
			if idx[s] < len(f.deferred[s]) && f.deferred[s][idx[s]].at < best {
				best, bestShard = f.deferred[s][idx[s]].at, s
			}
		}
		if bestShard < 0 {
			break
		}
		d := f.deferred[bestShard][idx[bestShard]]
		idx[bestShard]++
		d.fn(d.at)
		if f.stopped {
			f.stopTime = d.at
			break
		}
	}
	for s := range f.deferred {
		buf := f.deferred[s]
		for i := range buf {
			buf[i] = deferredCall{}
		}
		f.deferred[s] = buf[:0]
	}
}
