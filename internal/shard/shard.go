// Package shard implements the parallel simulation core: it partitions a
// built topology into shards — each owning its own event heap, packet
// pool and slice of hosts, switches and links — and executes them
// concurrently under conservative lookahead. The minimum propagation
// delay across shard-boundary links is a hard lower bound on how far one
// shard's present can influence another's future, so every shard can
// safely run a bounded window ahead of the last synchronisation point
// without ever receiving an event in its past.
//
// The synchronisation protocol is bounded-lag with barriers: the
// coordinator computes a window edge W = min(S + L, C) from the earliest
// pending shard event S, the lookahead L and the earliest control-plane
// event C, dispatches every shard to execute events strictly below W,
// then flushes cross-shard deliveries and deferred completion callbacks
// at the barrier. A barrier is the degenerate form of a null-message
// broadcast — every shard learns every neighbour's horizon at once —
// which trades a little parallel slack for a deadlock-free protocol with
// no per-channel timestamp traffic. Adaptive lookahead (RunOptions.
// Adaptive) replaces the static L with per-shard edges derived from the
// fixed point of the shards' earliest-output-time promises and elides
// idle shards from the barrier; see coordinator.go.
//
// Determinism contract: runs are deterministic for a fixed (seed, shard
// count) — and invariant across lookahead modes. Cross-shard deliveries
// are totally ordered by (timestamp, source shard, send order) on the
// destination heap, with the order key assigned when the source emits
// the delivery, not when a barrier commits it: same-nanosecond event
// order therefore never depends on where the synchronisation policy
// happened to place a barrier, which is what lets the adaptive and
// conservative engines produce identical Results from identical
// configs. With 1 shard (or 0, the default) the fabric runs in direct
// mode on the caller's engine and is byte-identical to the sequential
// simulator by construction. With N≥2 shards the event interleaving
// differs from the sequential order in bounded, documented ways —
// identical-nanosecond ties resolve control-first at barriers,
// same-instant cross-shard arrivals order after local events and by
// source shard, and a Stop lands on a window edge so shard engines
// overrun it by at most one window — so N-shard Results are
// deterministic but not byte-identical to the oracle; the sharded tests
// assert determinism plus the config-driven invariants (spawn and fault
// counts) against it.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// delivery is one cross-shard event buffered in an outbox: a link
// delivery callback with its absolute arrival time and its intrinsic
// ordering key (assigned at send time, not commit time).
type delivery struct {
	at    sim.Time
	key   uint64
	class uint8 // destination node's horizon class on the receiving engine
	fn    func(any)
	arg   any
}

// Delivery ordering keys. Committed deliveries must sort, among events
// at the same nanosecond on the destination engine, (a) after every
// locally scheduled event and (b) among themselves by (source shard,
// send order). Both properties are intrinsic to the simulation — they
// never depend on which barrier happened to commit the delivery — which
// is what makes same-nanosecond queue dynamics, and therefore Results,
// identical across synchronization policies (conservative vs adaptive
// windows commit the same deliveries at different barriers). The lane
// bit puts delivery keys above any insertion sequence the engine can
// reach; the source shard occupies the next bits; the low bits are the
// per-outbox send counter.
const (
	deliveryLane   = uint64(1) << 63
	deliverySrcSh  = 40
	deliveryKeyMax = uint64(1) << deliverySrcSh
)

// outbox is the cross-shard half of a boundary link's receive side. It
// implements sim.EventScheduler so netem.Link can schedule deliveries
// through it without knowing about shards: AtArg buffers the event (the
// transmit shard's thread appends, nobody else touches pending until the
// barrier), and the coordinator commits the buffered deliveries to the
// destination engine in deterministic order at each barrier. Now() is
// only called from the destination shard's thread, while a delivery
// executes there.
type outbox struct {
	dst     *sim.Engine
	src     int    // source shard, baked into delivery keys
	sent    uint64 // sends so far this run: the key's low bits
	pending []delivery
}

func (o *outbox) Now() sim.Time { return o.dst.Now() }

func (o *outbox) AtArg(t sim.Time, fn func(any), arg any) *sim.Event {
	return o.AtArgClass(t, fn, arg, 0)
}

func (o *outbox) AtArgClass(t sim.Time, fn func(any), arg any, class uint8) *sim.Event {
	if o.sent >= deliveryKeyMax {
		panic("shard: outbox send counter exhausted its key bits")
	}
	key := deliveryLane | uint64(o.src)<<deliverySrcSh | o.sent
	o.sent++
	o.pending = append(o.pending, delivery{at: t, key: key, class: class, fn: fn, arg: arg})
	return nil
}

func (o *outbox) At(t sim.Time, fn func()) *sim.Event { panic("shard: outbox.At unused") }
func (o *outbox) Schedule(d sim.Time, fn func()) *sim.Event {
	panic("shard: outbox.Schedule unused")
}
func (o *outbox) ScheduleArg(d sim.Time, fn func(any), arg any) *sim.Event {
	panic("shard: outbox.ScheduleArg unused")
}

const (
	// maxWindowFactor caps an adaptive window at this many conservative
	// lookaheads past the earliest pending event. It bounds how far
	// shard engines can overrun a Stop, how stale the interrupt poll can
	// get, and how long a barrier-starved fabric runs between memory
	// publication points; beyond ~64 the extra widening stops paying
	// because control-plane events cap the edge first.
	maxWindowFactor = 64

	// ewmaAlpha is the per-boundary deliveries-per-barrier EWMA gain
	// (1/8: responsive within a handful of barriers, yet smooth over
	// one-barrier bursts).
	ewmaAlpha = 1.0 / 8

	// maxHorizonClasses caps the per-shard horizon-class table
	// (including class 0): fabric partitions produce only a handful of
	// distinct node-to-boundary distances, and excess values quantise
	// down to the nearest kept one, which is always sound.
	maxHorizonClasses = 8

	// busyBoundaryEWMA gates the adaptive promise pass: when the mean
	// boundary EWMA is at or above this many committed deliveries per
	// barrier, traffic is dense enough that promises collapse to the
	// conservative bound anyway, so the coordinator skips the promise
	// computation and keeps the conservative edge until boundaries
	// quieten.
	busyBoundaryEWMA = 4.0
)

// deferredCall is a completion callback captured on a shard thread and
// replayed at the next barrier with the virtual time it fired at.
type deferredCall struct {
	at sim.Time
	fn func(at sim.Time)
}

// Fabric is a partitioned network bound to per-shard engines, plus the
// coordinator state to run them. Build it once per run instance (the
// wiring survives Network.Reset) and drive each run with Run.
type Fabric struct {
	control *sim.Engine
	net     *topology.Network
	shards  int

	// direct marks the 0/1-shard fabric: no partitioning, no worker
	// threads — every node stays bound to the control engine and Run is
	// a plain RunUntil. This is what makes the 1-shard fabric
	// byte-identical to the sequential simulator by construction rather
	// than by argument.
	direct bool

	engines   []*sim.Engine
	pools     []*netem.PacketPool
	swShard   []int
	hostShard []int
	lookahead sim.Time
	maxWindow sim.Time // adaptive-edge cap: maxWindowFactor * lookahead, saturated

	// outDelay[i] is the minimum as-built propagation delay over shard
	// i's outgoing boundary links — the "plus the boundary link delay"
	// term of shard i's earliest-output-time promise. MaxTime for a
	// shard with no outgoing boundary (it can never influence another).
	outDelay []sim.Time

	outboxes []*outbox // in (src shard, dst shard) order: the merge order
	obSrc    []int     // source shard per outbox, parallel to outboxes
	deferred [][]deferredCall

	// ewma[k] is outbox k's committed-deliveries-per-barrier EWMA
	// (alpha 1/8) — the per-boundary traffic signal feeding the window
	// policy (dense boundaries fall back to the conservative bound) and
	// exported through Stats for load-aware re-partitioning.
	ewma []float64

	stopped  bool
	stopTime sim.Time

	stats  Stats
	winRec *trace.Recorder // coordinator-side recorder for window-edge events

	shardRecs []*trace.Recorder

	// classDists[i] is shard i's horizon-class distance table (see
	// buildHorizonClasses), kept so Reset can re-install it after the
	// engines wipe their state.
	classDists [][]sim.Time

	workers    []worker
	deferIdx   []int      // flushDeferred scratch, kept to avoid per-barrier allocation
	dispatched []bool     // runWindow scratch
	promises   []sim.Time // adaptive-edge scratch: per-shard EOT promise
	edges      []sim.Time // adaptive-edge scratch: per-shard window edge
}

// Stats is the coordinator's per-run synchronization accounting,
// surfaced as the Results "Shard" block. All counters are deterministic
// for a fixed (seed, shard count, lookahead mode): they derive from
// heap states at barriers, never from thread timing.
type Stats struct {
	// Barriers counts coordinator barriers: every iteration of the run
	// loop — outbox flush, deferred replay, window computation.
	Barriers uint64
	// ControlTurns counts barriers resolved as control-plane turns
	// (the control engine ran instead of a parallel window).
	ControlTurns uint64
	// Windows counts dispatched parallel windows.
	Windows uint64
	// ElidedWakeups counts shard-window slots skipped: shards whose
	// next event and EOT promise both lay beyond their window edge, so
	// no channel round-trip woke them.
	ElidedWakeups uint64
	// WidenedWindows counts windows whose edge exceeded the
	// conservative bound — adaptive lookahead at work.
	WidenedWindows uint64
	// WindowNsSum accumulates window widths (max shard edge minus the
	// window start) for MeanWindowNs.
	WindowNsSum sim.Time
}

// MeanWindowNs is the mean parallel-window width in nanoseconds.
func (s Stats) MeanWindowNs() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.WindowNsSum) / float64(s.Windows)
}

// Stats returns the coordinator accounting for the last (or current)
// run. Zero for a direct fabric, which has no coordinator.
func (f *Fabric) Stats() Stats { return f.stats }

// BoundaryEWMA returns the per-boundary committed-deliveries-per-barrier
// EWMA, in the coordinator's (src shard, dst shard) outbox order — the
// measured traffic signal behind the adaptive window policy. Nil for a
// direct fabric.
func (f *Fabric) BoundaryEWMA() []float64 { return f.ewma }

// Build partitions net across `shards` engines and rebinds every host,
// switch and link to its owner. shards <= 1 builds a direct fabric that
// leaves the network untouched on the control engine. The partition
// comes from topology.Partition (per-pod on FatTrees, contiguous
// otherwise); hosts follow their access switch, so a host-switch cable
// is never a boundary.
func Build(control *sim.Engine, net *topology.Network, shards int) (*Fabric, error) {
	return BuildWeighted(control, net, shards, nil)
}

// BuildWeighted is Build with per-switch partition weights (see
// topology.PartitionWeighted): group boundaries balance summed weight —
// typically measured forwarded-packet loads from a profiling run —
// instead of switch count. Nil weights are exactly Build.
func BuildWeighted(control *sim.Engine, net *topology.Network, shards int, weights []float64) (*Fabric, error) {
	if shards <= 1 {
		return &Fabric{control: control, net: net, shards: 1, direct: true}, nil
	}
	assign, err := topology.PartitionWeighted(net, shards, weights)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		control:  control,
		net:      net,
		shards:   shards,
		swShard:  assign,
		deferred: make([][]deferredCall, shards),
		deferIdx: make([]int, shards),
		outDelay: make([]sim.Time, shards),
	}
	f.engines = make([]*sim.Engine, shards)
	f.pools = make([]*netem.PacketPool, shards)
	for i := range f.engines {
		f.engines[i] = sim.NewEngine()
		f.pools[i] = netem.NewPacketPool()
	}

	nodeShard := make(map[netem.NodeID]int, len(net.Switches)+len(net.Hosts))
	for i, sw := range net.Switches {
		nodeShard[sw.ID()] = assign[i]
		sw.Rebind(f.engines[assign[i]], f.pools[assign[i]])
	}
	f.hostShard = make([]int, len(net.Hosts))
	for i, h := range net.Hosts {
		s := nodeShard[h.Uplinks()[0].Dst().ID()]
		f.hostShard[i] = s
		nodeShard[h.ID()] = s
		h.Rebind(f.engines[s], f.pools[s])
	}

	obIndex := make([]*outbox, shards*shards)
	f.lookahead = sim.MaxTime
	for i := range f.outDelay {
		f.outDelay[i] = sim.MaxTime
	}
	for _, l := range net.Links {
		tx := nodeShard[l.Src().ID()]
		rx := nodeShard[l.Dst().ID()]
		if tx == rx {
			l.Rebind(f.engines[tx], f.engines[tx], f.pools[tx], f.pools[tx])
			continue
		}
		ob := obIndex[tx*shards+rx]
		if ob == nil {
			ob = &outbox{dst: f.engines[rx], src: tx}
			obIndex[tx*shards+rx] = ob
		}
		l.Rebind(f.engines[tx], ob, f.pools[tx], f.pools[rx])
		if l.PropDelay() < f.lookahead {
			f.lookahead = l.PropDelay()
		}
		if l.PropDelay() < f.outDelay[tx] {
			f.outDelay[tx] = l.PropDelay()
		}
	}
	if f.lookahead == sim.MaxTime {
		// Disconnected shards would also be fine (infinite lookahead),
		// but no supported topology produces them; treat as a partition
		// bug rather than silently running unsynchronised.
		return nil, fmt.Errorf("shard: partition of %s into %d shards has no boundary links", net.Kind, shards)
	}
	if f.lookahead <= 0 {
		return nil, fmt.Errorf("shard: zero-delay boundary link leaves no conservative lookahead (partition of %s into %d shards)", net.Kind, shards)
	}
	// Fixed (src, dst) flush order: this is the "shard" component of the
	// deterministic (time, shard, seq) merge order.
	for tx := 0; tx < shards; tx++ {
		for rx := 0; rx < shards; rx++ {
			if ob := obIndex[tx*shards+rx]; ob != nil {
				f.outboxes = append(f.outboxes, ob)
				f.obSrc = append(f.obSrc, tx)
			}
		}
	}
	f.ewma = make([]float64, len(f.outboxes))
	// Adaptive windows are capped at maxWindowFactor lookaheads so Stop
	// overrun, interrupt polling latency and snapshot staleness stay
	// bounded even on a fully idle fabric.
	if f.lookahead > sim.MaxTime/maxWindowFactor {
		f.maxWindow = sim.MaxTime
	} else {
		f.maxWindow = f.lookahead * maxWindowFactor
	}
	f.promises = make([]sim.Time, shards)
	f.edges = make([]sim.Time, shards)
	f.buildHorizonClasses(assign)
	return f, nil
}

// buildHorizonClasses computes, for every node, the minimum virtual
// time an event there needs before its consequences can reach another
// shard — the node's shortest influence path to (and across) a
// boundary link, each hop paying its as-built propagation delay
// (degradations only ever add delay, so the as-built figure is a sound
// floor, exactly as for the lookahead). The distances are quantised
// into at most maxHorizonClasses per-shard classes, installed on the
// shard engines (sim.SetHorizonClasses) and stamped onto each link's
// deliveries (SetRxHorizonClass), which is what lets an adaptive
// promise exceed PeekTime + outDelay when every pending event sits
// deep inside its shard: rack-local traffic at a host is three hops
// from the nearest boundary, so the shard can promise silence three
// propagation delays out, not one. Quantisation only ever rounds a
// node's distance down, so it degrades the promise, never soundness.
func (f *Fabric) buildHorizonClasses(assign []int) {
	net := f.net
	nNodes := len(net.Hosts) + len(net.Switches)
	shardOf := func(id int) int {
		if id < len(net.Hosts) {
			return f.hostShard[id]
		}
		return assign[id-len(net.Hosts)]
	}
	dist := make([]sim.Time, nNodes)
	for i := range dist {
		dist[i] = sim.MaxTime
	}
	// Bellman-Ford over the (small, shallow) fabric graph: dist(u) =
	// min over out-links u->v of prop + (0 if v is foreign else dist(v)).
	for changed := true; changed; {
		changed = false
		for _, l := range net.Links {
			u, v := int(l.Src().ID()), int(l.Dst().ID())
			cand := l.PropDelay()
			if shardOf(u) == shardOf(v) {
				cand = satAdd(dist[v], l.PropDelay())
			}
			if cand < dist[u] {
				dist[u] = cand
				changed = true
			}
		}
	}
	f.classDists = make([][]sim.Time, f.shards)
	classOf := make([]uint8, nNodes)
	vals := make([]sim.Time, 0, nNodes)
	for s := 0; s < f.shards; s++ {
		vals = vals[:0]
		for id := 0; id < nNodes; id++ {
			if shardOf(id) == s && dist[id] > 0 {
				vals = append(vals, dist[id])
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		table := make([]sim.Time, 1, maxHorizonClasses)
		for _, v := range vals {
			if v != table[len(table)-1] && len(table) < maxHorizonClasses {
				table = append(table, v)
			}
		}
		f.classDists[s] = table
		f.engines[s].SetHorizonClasses(table)
		for id := 0; id < nNodes; id++ {
			if shardOf(id) != s {
				continue
			}
			// Largest kept class distance not above the node's true
			// distance (rounding down keeps the promise sound).
			c := 0
			for k := 1; k < len(table) && table[k] <= dist[id]; k++ {
				c = k
			}
			classOf[id] = uint8(c)
		}
	}
	for _, l := range net.Links {
		l.SetRxHorizonClass(classOf[int(l.Dst().ID())])
	}
}

// Shards returns the shard count (1 for a direct fabric).
func (f *Fabric) Shards() int { return f.shards }

// Lookahead returns the conservative window bound: the minimum as-built
// propagation delay across shard-boundary links (0 for a direct fabric).
func (f *Fabric) Lookahead() sim.Time {
	if f.direct {
		return 0
	}
	return f.lookahead
}

// HostShard returns the shard owning host i.
func (f *Fabric) HostShard(i int) int {
	if f.direct {
		return 0
	}
	return f.hostShard[i]
}

// Events returns the total number of events processed across the control
// engine and every shard engine.
func (f *Fabric) Events() uint64 {
	total := f.control.Processed()
	for _, e := range f.engines {
		total += e.Processed()
	}
	return total
}

// Stop requests the run to stop, with the semantics of sim.Engine.Stop:
// the event (or deferred callback) that called it completes, nothing
// after it runs. Call only from the control thread — in practice from
// the completion callbacks the harness routes through Defer.
func (f *Fabric) Stop() {
	f.stopped = true
	if f.direct {
		f.control.Stop()
	}
}

// Defer hands a completion callback to the coordinator. On a shard
// thread (window execution) the callback and its firing time are
// buffered and replayed on the control thread at the next barrier, in
// (time, shard, buffer order); in direct mode it runs immediately.
// shard must be the shard whose engine the callback fires on (the
// receiver's for OnComplete, the sender's for OnAllAcked) — that
// engine's clock is the callback's firing time.
func (f *Fabric) Defer(shard int, fn func(at sim.Time)) {
	if f.direct {
		fn(f.control.Now())
		return
	}
	f.deferred[shard] = append(f.deferred[shard], deferredCall{at: f.engines[shard].Now(), fn: fn})
}

// InstallTracing arms the data plane's trace points for one run. rec may
// be nil (untraced: every recorder slot is cleared). On a direct fabric
// the single recorder serves every trace point, exactly as a sequential
// run; on a partitioned fabric each shard gets its own recorder (built
// from opts) so trace points never contend, and MergeTraces folds them
// back into rec time-ordered after the run.
func (f *Fabric) InstallTracing(rec *trace.Recorder, opts trace.Options) {
	// Window-edge events are coordinator-side: they record into rec
	// directly (the coordinator runs with every shard thread parked, so
	// there is no contention), and MergeInto keeps them time-ordered
	// against the merged shard events.
	f.winRec = rec
	if f.direct || rec == nil {
		f.shardRecs = nil
		for _, l := range f.net.Links {
			l.SetRecorder(rec)
		}
		for _, sw := range f.net.Switches {
			sw.SetRecorder(rec)
		}
		return
	}
	f.shardRecs = make([]*trace.Recorder, f.shards)
	for i := range f.shardRecs {
		f.shardRecs[i] = trace.NewRecorder(opts)
	}
	for i, sw := range f.net.Switches {
		sw.SetRecorder(f.shardRecs[f.swShard[i]])
	}
	nodeShard := func(n netem.Node) int {
		if int(n.ID()) < len(f.hostShard) {
			return f.hostShard[n.ID()]
		}
		return f.swShard[int(n.ID())-len(f.hostShard)]
	}
	for _, l := range f.net.Links {
		l.SetRecorders(f.shardRecs[nodeShard(l.Src())], f.shardRecs[nodeShard(l.Dst())])
	}
}

// FlowRecorder returns the recorder a flow sourced at host src should
// record into: the source shard's recorder on a partitioned fabric, rec
// itself otherwise.
func (f *Fabric) FlowRecorder(rec *trace.Recorder, src int) *trace.Recorder {
	if f.shardRecs == nil {
		return rec
	}
	return f.shardRecs[f.hostShard[src]]
}

// MergeTraces folds the per-shard recorders into rec, time-ordered.
// No-op on a direct or untraced fabric.
func (f *Fabric) MergeTraces(rec *trace.Recorder) {
	if f.shardRecs == nil || rec == nil {
		return
	}
	trace.MergeInto(rec, f.shardRecs...)
	f.shardRecs = nil
}

// FoldStats merges receive-side link counters into each link's Stats so
// reports see the whole picture; call after Run has returned.
func (f *Fabric) FoldStats() {
	for _, l := range f.net.Links {
		l.FoldRx()
	}
}

// Reset clears per-run coordinator state for instance reuse: shard
// engine heaps and clocks, buffered deliveries and completions, the stop
// latch. The partition wiring (engine/pool bindings, outbox routing)
// persists — that is the expensive half Build paid for. The control
// engine is the caller's to reset, alongside Network.Reset.
func (f *Fabric) Reset() {
	f.stopped = false
	f.stopTime = 0
	f.shardRecs = nil
	f.winRec = nil
	f.stats = Stats{}
	for i := range f.ewma {
		f.ewma[i] = 0
	}
	for i, e := range f.engines {
		e.Reset()
		e.SetHorizonClasses(f.classDists[i])
	}
	for _, ob := range f.outboxes {
		ob.pending = ob.pending[:0]
		ob.sent = 0
	}
	for i := range f.deferred {
		f.deferred[i] = f.deferred[i][:0]
	}
}

// flushOutboxes commits buffered cross-shard deliveries to their
// destination heaps. Each delivery carries its intrinsic ordering key
// (source shard, send order — assigned when the sending shard emitted
// it), so the destination heap realises the documented total order —
// same-nanosecond deliveries after same-nanosecond local events, then
// by (source shard, send order) — regardless of which barrier the
// commit lands on. The buffers are nearly sorted already (transmit
// completions execute in time order; only links of differing delay
// sharing an outbox interleave), so a stable insertion sort beats the
// generic sort without allocating; it exists only to keep heap pushes
// cheap, the keys alone fix the order.
func (f *Fabric) flushOutboxes() {
	for k, ob := range f.outboxes {
		p := ob.pending
		// Per-boundary traffic EWMA: committed deliveries per barrier,
		// updated on every flush (including empty ones — quiet boundaries
		// must decay toward zero to re-enable adaptive widening).
		f.ewma[k] += ewmaAlpha * (float64(len(p)) - f.ewma[k])
		if len(p) == 0 {
			continue
		}
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && p[j].at < p[j-1].at; j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
		for _, d := range p {
			ob.dst.AtArgKeyed(d.at, d.fn, d.arg, d.key, d.class)
		}
		for i := range p {
			p[i] = delivery{}
		}
		ob.pending = p[:0]
	}
}

// flushDeferred replays buffered completion callbacks on the control
// thread in (time, shard, buffer) order. A callback that calls Stop
// discards the rest, mirroring the sequential engine where Stop prevents
// any later event from running.
func (f *Fabric) flushDeferred() {
	idx := f.deferIdx
	for s := range idx {
		idx[s] = 0
	}
	for {
		best, bestShard := sim.MaxTime, -1
		for s := range f.deferred {
			if idx[s] < len(f.deferred[s]) && f.deferred[s][idx[s]].at < best {
				best, bestShard = f.deferred[s][idx[s]].at, s
			}
		}
		if bestShard < 0 {
			break
		}
		d := f.deferred[bestShard][idx[bestShard]]
		idx[bestShard]++
		d.fn(d.at)
		if f.stopped {
			f.stopTime = d.at
			break
		}
	}
	for s := range f.deferred {
		buf := f.deferred[s]
		for i := range buf {
			buf[i] = deferredCall{}
		}
		f.deferred[s] = buf[:0]
	}
}
