package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netem"
	"repro/internal/sim"
)

func rec(id uint64, fctMs float64, timeouts int64) FlowRecord {
	return FlowRecord{
		ID:        id,
		Class:     ShortFlow,
		Completed: true,
		Start:     0,
		End:       sim.Time(fctMs * float64(sim.Millisecond)),
		Timeouts:  timeouts,
	}
}

func TestSummarizeBasics(t *testing.T) {
	recs := []FlowRecord{
		rec(1, 100, 0),
		rec(2, 200, 1),
		rec(3, 300, 0),
		{ID: 4, Completed: false},
	}
	s := Summarize(recs)
	if s.Count != 3 || s.Incomplete != 1 {
		t.Fatalf("count=%d incomplete=%d", s.Count, s.Incomplete)
	}
	if math.Abs(s.MeanMs-200) > 1e-9 {
		t.Errorf("mean = %v, want 200", s.MeanMs)
	}
	wantStd := math.Sqrt((100.0*100 + 0 + 100*100) / 3)
	if math.Abs(s.StdMs-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v", s.StdMs, wantStd)
	}
	if s.MinMs != 100 || s.MaxMs != 300 {
		t.Errorf("min=%v max=%v", s.MinMs, s.MaxMs)
	}
	if s.P50Ms != 200 {
		t.Errorf("p50 = %v, want 200", s.P50Ms)
	}
	if s.WithRTO != 1 {
		t.Errorf("withRTO = %d, want 1", s.WithRTO)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.MeanMs != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	vals := []float64{10, 20, 30, 40}
	if got := percentile(vals, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(vals, 1); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(vals, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25", got)
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

// Property: mean and std match a naive recomputation; percentiles are
// monotone and bounded by [min, max].
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var recs []FlowRecord
		var sum float64
		for i, v := range raw {
			ms := float64(v%10000) + 1
			recs = append(recs, rec(uint64(i), ms, 0))
			sum += ms
		}
		s := Summarize(recs)
		mean := sum / float64(len(raw))
		if math.Abs(s.MeanMs-mean) > 1e-6 {
			return false
		}
		var sq float64
		for _, v := range raw {
			ms := float64(v%10000) + 1
			sq += (ms - mean) * (ms - mean)
		}
		if math.Abs(s.StdMs-math.Sqrt(sq/float64(len(raw)))) > 1e-6 {
			return false
		}
		return s.MinMs <= s.P50Ms && s.P50Ms <= s.P95Ms &&
			s.P95Ms <= s.P99Ms && s.P99Ms <= s.MaxMs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlowRecordFCTAndThroughput(t *testing.T) {
	r := FlowRecord{
		Completed: true,
		Start:     100 * sim.Millisecond,
		End:       250 * sim.Millisecond,
		Delivered: 12_500_000, // 100 Mb over 1s window below
	}
	if got := r.FCT(); got != 150*sim.Millisecond {
		t.Errorf("FCT = %v", got)
	}
	if got := r.ThroughputMbps(1100 * sim.Millisecond); math.Abs(got-100) > 1e-9 {
		t.Errorf("throughput = %v Mb/s, want 100", got)
	}
	incomplete := FlowRecord{Completed: false, End: 0}
	if incomplete.FCT() != 0 {
		t.Error("incomplete FCT should be 0")
	}
	if got := r.ThroughputMbps(50 * sim.Millisecond); got != 0 {
		t.Errorf("throughput over negative window = %v", got)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Record(FlowRecord{ID: 1, Class: ShortFlow})
	c.Record(FlowRecord{ID: 2, Class: LongFlow})
	c.Record(FlowRecord{ID: 3, Class: ShortFlow})
	if len(c.Flows()) != 3 {
		t.Fatalf("flows = %d", len(c.Flows()))
	}
	if got := len(c.ByClass(ShortFlow)); got != 2 {
		t.Errorf("short flows = %d", got)
	}
	if got := len(c.ByClass(LongFlow)); got != 1 {
		t.Errorf("long flows = %d", got)
	}
	if ShortFlow.String() != "short" || LongFlow.String() != "long" {
		t.Error("class names")
	}
}

func TestLayerReport(t *testing.T) {
	eng := sim.NewEngine()
	type nullNode struct{ netem.NodeID }
	a := netem.NewHost(eng, 1)
	b := netem.NewHost(eng, 2)
	agg := netem.NewLink(eng, a, b, 100_000_000, 0, 2, netem.LayerAgg)
	core := netem.NewLink(eng, a, b, 100_000_000, 0, 100, netem.LayerCore)
	for i := 0; i < 10; i++ {
		agg.Enqueue(&netem.Packet{Size: 1500, FlowID: 9, Flags: netem.FlagData})
	}
	core.Enqueue(&netem.Packet{Size: 1500, FlowID: 9, Flags: netem.FlagData})
	eng.Run()

	rep := LayerReport([]*netem.Link{agg, core}, eng.Now())
	ag := rep[netem.LayerAgg]
	if ag.Drops != 7 { // 1 in transmitter + 2 queued survive
		t.Errorf("agg drops = %d, want 7", ag.Drops)
	}
	if ag.LossRate <= 0.5 || ag.LossRate >= 0.8 {
		t.Errorf("agg loss rate = %v", ag.LossRate)
	}
	co := rep[netem.LayerCore]
	if co.Drops != 0 || co.TxPackets != 1 {
		t.Errorf("core stats: %+v", co)
	}
	if ag.Links != 1 || co.Links != 1 {
		t.Error("link counts wrong")
	}
	_ = nullNode{}
}

func TestHistogram(t *testing.T) {
	h := NewFCTHistogram(100, 500, 1000)
	for _, ms := range []float64{50, 99, 100, 101, 800, 5000} {
		h.Observe(sim.Time(ms * float64(sim.Millisecond)))
	}
	want := []int{3, 1, 1, 1} // <=100: 50,99,100; <=500: 101; <=1000: 800; over: 5000
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	fr := h.Fractions()
	if math.Abs(fr[0]-0.5) > 1e-9 {
		t.Errorf("fraction[0] = %v", fr[0])
	}
	empty := NewFCTHistogram(10)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Error("non-zero fraction on empty histogram")
		}
	}
}

func TestDeadlineMissRate(t *testing.T) {
	recs := []FlowRecord{
		rec(1, 50, 0),
		rec(2, 150, 0),
		rec(3, 250, 1),
		{ID: 4, Completed: false},
	}
	if got := DeadlineMissRate(recs, 200*sim.Millisecond); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5 (one late + one incomplete)", got)
	}
	if got := DeadlineMissRate(recs, 10*sim.Millisecond); got != 1 {
		t.Errorf("miss rate = %v, want 1", got)
	}
	if got := DeadlineMissRate(recs, sim.Second); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25 (incomplete only)", got)
	}
	if got := DeadlineMissRate(nil, sim.Second); got != 0 {
		t.Errorf("empty miss rate = %v", got)
	}
}

func TestLayerReportFailureAccounting(t *testing.T) {
	eng := sim.NewEngine()
	a := netem.NewHost(eng, 1)
	b := netem.NewHost(eng, 2)
	failed := netem.NewLink(eng, a, b, 100_000_000, 0, 10, netem.LayerAgg)
	healthy := netem.NewLink(eng, a, b, 100_000_000, 0, 10, netem.LayerAgg)
	lossy := netem.NewLink(eng, a, b, 100_000_000, 0, 10, netem.LayerEdge)
	lossy.SetLossRate(0.999999, sim.NewRNG(1)) // effectively always drops

	eng.At(10*sim.Millisecond, func() { failed.SetDown(true) })
	eng.At(11*sim.Millisecond, func() {
		for i := 0; i < 3; i++ {
			failed.Enqueue(&netem.Packet{Size: 1000, Flags: netem.FlagData})
			lossy.Enqueue(&netem.Packet{Size: 1000, Flags: netem.FlagData})
		}
		healthy.Enqueue(&netem.Packet{Size: 1000, Flags: netem.FlagData})
	})
	eng.At(30*sim.Millisecond, func() { failed.SetDown(false) })
	eng.At(40*sim.Millisecond, func() {})
	eng.Run()

	rep := LayerReport([]*netem.Link{failed, healthy, lossy}, eng.Now())
	ag := rep[netem.LayerAgg]
	if ag.Blackholed != 3 || ag.BlackholedBytes != 3000 {
		t.Errorf("agg blackholed = %d (%d bytes), want 3 (3000)", ag.Blackholed, ag.BlackholedBytes)
	}
	if ag.DownLinks != 1 {
		t.Errorf("agg down links = %d, want 1 (healthy link never failed)", ag.DownLinks)
	}
	if ag.DownTime != 20*sim.Millisecond {
		t.Errorf("agg down time = %v, want 20ms", ag.DownTime)
	}
	if ag.Drops != 0 {
		t.Errorf("blackholes leaked into queue drops: %d", ag.Drops)
	}
	ed := rep[netem.LayerEdge]
	if ed.RandomDrops != 3 {
		t.Errorf("edge random drops = %d, want 3", ed.RandomDrops)
	}
	if ed.Blackholed != 0 || ed.DownLinks != 0 {
		t.Errorf("injected loss misreported as failure: %+v", ed)
	}
	// A still-open failure interval is included via the elapsed clock.
	stillDown := netem.NewLink(eng, a, b, 100_000_000, 0, 10, netem.LayerCore)
	stillDown.SetDown(true) // at eng.Now() == 40ms
	rep2 := LayerReport([]*netem.Link{stillDown}, eng.Now()+5*sim.Millisecond)
	if got := rep2[netem.LayerCore].DownTime; got != 5*sim.Millisecond {
		t.Errorf("open-interval down time = %v, want 5ms", got)
	}
}
