// Package metrics collects and summarises the measurements the paper
// reports: per-flow completion times (mean, standard deviation,
// percentiles, the fraction of connections suffering at least one RTO),
// per-layer packet loss rates, long-flow throughput and link utilisation.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
)

// FlowClass distinguishes the paper's two traffic classes.
type FlowClass int

// Flow classes.
const (
	ShortFlow FlowClass = iota // latency-sensitive, 70 KB in the paper
	LongFlow                   // bandwidth-hungry background flows
)

// String names the class.
func (c FlowClass) String() string {
	if c == ShortFlow {
		return "short"
	}
	return "long"
}

// FlowRecord is the outcome of one flow.
type FlowRecord struct {
	ID        uint64
	Src, Dst  netem.NodeID
	Class     FlowClass
	Proto     string
	Size      int64    // bytes (-1 for unbounded long flows)
	Start     sim.Time // when the flow was initiated
	End       sim.Time // receiver-side completion (0 if incomplete)
	Completed bool

	Delivered int64 // data bytes received (for throughput of long flows)

	Timeouts        int64 // RTOs experienced by the connection
	FastRetransmits int64
	Retransmissions int64
	SegmentsSent    int64
}

// FCT returns the flow completion time (0 for incomplete flows).
func (r FlowRecord) FCT() sim.Time {
	if !r.Completed {
		return 0
	}
	return r.End - r.Start
}

// ThroughputMbps returns the flow's goodput in Mb/s over [Start, until].
func (r FlowRecord) ThroughputMbps(until sim.Time) float64 {
	d := until - r.Start
	if d <= 0 {
		return 0
	}
	return float64(r.Delivered) * 8 / d.Seconds() / 1e6
}

// Collector accumulates flow records for one experiment run.
type Collector struct {
	flows []FlowRecord
}

// Record appends a flow outcome.
func (c *Collector) Record(r FlowRecord) { c.flows = append(c.flows, r) }

// Flows returns every recorded flow.
func (c *Collector) Flows() []FlowRecord { return c.flows }

// ByClass returns the records of one class.
func (c *Collector) ByClass(class FlowClass) []FlowRecord {
	var out []FlowRecord
	for _, f := range c.flows {
		if f.Class == class {
			out = append(out, f)
		}
	}
	return out
}

// Summary are the aggregate FCT statistics the paper quotes (e.g. "116
// milliseconds (standard deviation is 101)" for MMPTCP vs "126 (425)"
// for MPTCP).
type Summary struct {
	Count      int     // completed flows
	Incomplete int     // flows that never finished
	MeanMs     float64 // mean FCT, milliseconds
	StdMs      float64 // standard deviation of FCT
	MinMs      float64
	P50Ms      float64
	P95Ms      float64
	P99Ms      float64
	MaxMs      float64
	// WithRTO is the number of completed flows that experienced at
	// least one retransmission timeout; Figure 1(a)'s growing standard
	// deviation is driven by this count.
	WithRTO int
}

// DeadlineMissRate returns the fraction of flows that failed to finish
// within the deadline (incomplete flows count as misses). The paper's
// §1 motivation: "short TCP flows missing their deadlines mainly due to
// retransmission timeouts", and "even a single RTO may result in flow
// deadline violation".
func DeadlineMissRate(recs []FlowRecord, deadline sim.Time) float64 {
	if len(recs) == 0 {
		return 0
	}
	missed := 0
	for _, r := range recs {
		if !r.Completed || r.FCT() > deadline {
			missed++
		}
	}
	return float64(missed) / float64(len(recs))
}

// Summarize computes FCT statistics over the completed flows in recs.
func Summarize(recs []FlowRecord) Summary {
	var s Summary
	var fcts []float64
	for _, r := range recs {
		if !r.Completed {
			s.Incomplete++
			continue
		}
		s.Count++
		fcts = append(fcts, r.FCT().Milliseconds())
		if r.Timeouts > 0 {
			s.WithRTO++
		}
	}
	if len(fcts) == 0 {
		return s
	}
	sort.Float64s(fcts)
	var sum float64
	for _, v := range fcts {
		sum += v
	}
	s.MeanMs = sum / float64(len(fcts))
	var sq float64
	for _, v := range fcts {
		d := v - s.MeanMs
		sq += d * d
	}
	s.StdMs = math.Sqrt(sq / float64(len(fcts)))
	s.MinMs = fcts[0]
	s.MaxMs = fcts[len(fcts)-1]
	s.P50Ms = percentile(fcts, 0.50)
	s.P95Ms = percentile(fcts, 0.95)
	s.P99Ms = percentile(fcts, 0.99)
	return s
}

// percentile interpolates the p-quantile of sorted values. Edge cases
// are defined rather than surprising: an empty slice yields 0, a single
// element is every quantile of itself, and p outside [0, 1] (or NaN) is
// clamped to the nearest valid quantile.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	} else if p > 1 {
		p = 1
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fms std=%.1fms p50=%.1f p95=%.1f p99=%.1f max=%.1f rto-flows=%d incomplete=%d",
		s.Count, s.MeanMs, s.StdMs, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs, s.WithRTO, s.Incomplete)
}

// RoutingStats reports the routing control plane's work during a run:
// which repair mode was active and, in global mode, how often the tables
// were rebuilt, when routing last converged, and how many (switch,
// destination) entries diverged from the structural fast path at run
// end. A local-mode (or healthy) run reports zero recomputes.
//
// The incremental-recompute counters make the control plane's scoping
// observable: DstRecomputed destinations had their tables reconciled,
// DstSkipped were proven untouched by the transition batch and skipped,
// and BFSRuns reverse breadth-first passes were actually executed
// (destinations sharing a live-attachment signature share one, and
// cached passes survive across recomputes). A full (non-incremental)
// rebuild would show DstSkipped == 0 and DstRecomputed == recomputes x
// hosts.
//
// The convergence fields describe how recomputed tables reached the
// switches. Under the default atomic model every switch flips at
// recompute time and they are all zero. Under staggered convergence
// Flips counts per-switch table flips, FirstFlip/LastFlip bracket the
// most recent transition's flip schedule (its convergence spread),
// TransientTime accumulates how long at least one switch served a stale
// table, and the window damage is split out: TransientNoRoute
// (blackholes bred by the disagreement rather than the failure itself)
// and StaleLookups (lookups served by a not-yet-flipped table); the
// micro-loop deaths live in Results.LoopDrops next to HopDrops, the
// counter they are distinguished from. Damped counts link transitions
// whose recompute the hold-down policy deferred.
type RoutingStats struct {
	Mode            string
	Convergence     string
	Recomputes      int
	LastConvergence sim.Time
	Overrides       int
	DstRecomputed   int
	DstSkipped      int
	BFSRuns         int

	Flips            int
	FirstFlip        sim.Time
	LastFlip         sim.Time
	TransientTime    sim.Time
	TransientNoRoute int64
	StaleLookups     int64
	Damped           int
}

// ShardStats is the parallel engine's synchronization accounting — the
// Results "Shard" block. On a sequential (direct) run only Shards is
// set (to 1) and Mode is empty; on a partitioned run the counters
// describe the coordinator's barrier work and are deterministic per
// (Seed, Shards, lookahead mode).
type ShardStats struct {
	// Shards is the engine count the run executed on (1 = sequential).
	Shards int
	// Mode is the lookahead policy ("conservative" or "adaptive");
	// empty on a sequential run, which has no synchronization window.
	Mode string
	// LookaheadNs is the conservative window bound: the minimum
	// propagation delay across shard-boundary links, in nanoseconds.
	LookaheadNs int64
	// Barriers counts coordinator barriers (every flush + window/control
	// decision); ControlTurns of them ran the control plane, Windows
	// dispatched a parallel window.
	Barriers     uint64
	ControlTurns uint64
	Windows      uint64
	// ElidedWakeups counts shard-window slots skipped without a channel
	// round-trip (the shard had nothing below its window edge).
	ElidedWakeups uint64
	// WidenedWindows counts windows whose edge exceeded the conservative
	// bound — nonzero only in adaptive mode.
	WidenedWindows uint64
	// MeanWindowNs is the mean parallel-window width in nanoseconds.
	MeanWindowNs float64
}

// LayerStats aggregates link counters at one topology layer.
type LayerStats struct {
	Links       int
	TxPackets   int64
	Drops       int64   // queue-overflow drops
	DropBytes   int64   // bytes lost to queue overflow
	LossRate    float64 // drops / (drops + enqueued)
	Utilisation float64 // mean busy fraction across links
	MaxQueue    int
	AvgQueue    float64 // time-averaged occupancy, packets, mean across links

	// Failure accounting (the faults subsystem's view of the layer).
	// Blackholed counts packets swallowed by down links — new arrivals,
	// drained queues and in-flight deliveries suppressed by a failure.
	Blackholed      int64
	BlackholedBytes int64
	// RandomDrops counts packets lost to injected random-loss
	// degradation, distinct from queue overflow.
	RandomDrops int64
	// DownTime is the summed time-in-failure across the layer's links,
	// and DownLinks how many of them were down at least once.
	DownTime  sim.Time
	DownLinks int
}

// LayerReport computes per-layer loss and utilisation over the links,
// for an observation window of length elapsed. The paper's §3 compares
// "the average loss rate at the core and aggregation layers".
func LayerReport(links []*netem.Link, elapsed sim.Time) map[netem.Layer]LayerStats {
	out := make(map[netem.Layer]LayerStats)
	type acc struct {
		enq, drops, dropB, tx  int64
		blackholed, blackholeB int64
		randomDrops            int64
		util, avgQ             float64
		links, downLinks       int
		maxQ                   int
		downTime               sim.Time
	}
	accs := make(map[netem.Layer]*acc)
	for _, l := range links {
		a := accs[l.Layer()]
		if a == nil {
			a = &acc{}
			accs[l.Layer()] = a
		}
		a.links++
		a.enq += l.Stats.Enqueued
		a.drops += l.Stats.Drops
		a.dropB += l.Stats.DropBytes
		a.tx += l.Stats.TxPackets
		a.blackholed += l.Stats.Blackholed
		a.blackholeB += l.Stats.BlackholedBytes
		a.randomDrops += l.Stats.RandomDrops
		if td := l.TimeDown(elapsed); td > 0 {
			a.downTime += td
			a.downLinks++
		}
		a.util += l.Stats.Utilisation(elapsed)
		a.avgQ += l.Stats.AvgQueue(elapsed)
		if l.Stats.MaxQueue > a.maxQ {
			a.maxQ = l.Stats.MaxQueue
		}
	}
	for layer, a := range accs {
		ls := LayerStats{
			Links:           a.links,
			TxPackets:       a.tx,
			Drops:           a.drops,
			DropBytes:       a.dropB,
			MaxQueue:        a.maxQ,
			Blackholed:      a.blackholed,
			BlackholedBytes: a.blackholeB,
			RandomDrops:     a.randomDrops,
			DownTime:        a.downTime,
			DownLinks:       a.downLinks,
		}
		if offered := a.enq + a.drops; offered > 0 {
			ls.LossRate = float64(a.drops) / float64(offered)
		}
		if a.links > 0 {
			ls.Utilisation = a.util / float64(a.links)
			ls.AvgQueue = a.avgQ / float64(a.links)
		}
		out[layer] = ls
	}
	return out
}

// Histogram buckets FCTs for a text rendering of the paper's scatter
// plots (Figures 1(b) and 1(c)). Bounds must be ascending; values above
// the last bound land in a dedicated overflow bucket, values below zero
// (or NaN milliseconds) in Underflow — outside-the-bounds observations
// are always defined and never silently skew Fractions.
type Histogram struct {
	BoundsMs []float64 // upper bounds; one extra overflow bucket
	Counts   []int
	// Underflow counts observations that precede every bucket: negative
	// FCTs (a malformed record) and NaNs. They are excluded from
	// Fractions — the in-range shares still describe the valid mass —
	// but visible here so a skewed input cannot hide.
	Underflow int
}

// NewFCTHistogram builds a histogram with the given millisecond bounds,
// sorted ascending (the bucket semantics require it; sorting here makes
// caller-supplied literals order-independent).
func NewFCTHistogram(boundsMs ...float64) *Histogram {
	sort.Float64s(boundsMs)
	return &Histogram{BoundsMs: boundsMs, Counts: make([]int, len(boundsMs)+1)}
}

// Observe adds one completed flow. Out-of-range values are defined:
// negative and NaN durations count in Underflow, anything above the last
// bound in the overflow bucket.
func (h *Histogram) Observe(fct sim.Time) {
	ms := fct.Milliseconds()
	if ms < 0 || math.IsNaN(ms) {
		h.Underflow++
		return
	}
	for i, b := range h.BoundsMs {
		if ms <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Fractions returns each bucket's share of the in-range total (underflow
// excluded; see Underflow). An empty histogram returns all zeros.
func (h *Histogram) Fractions() []float64 {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	out := make([]float64, len(h.Counts))
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
