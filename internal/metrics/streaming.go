package metrics

// Streaming FCT accumulation: HDR-style log-bucketed histograms whose
// memory is O(1) in flow count, so a million-flow sweep replicate costs
// the same few hundred kilobytes as a thousand-flow one. The exact
// per-flow record slice (Summarize over []FlowRecord) stays available as
// the oracle; StreamingSummary is the scale path, with a documented,
// tested bound on percentile error and exact mean/stddev/min/max/counts.

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sim"
)

// Histogram precision limits. Precision is the number of sub-bucket bits
// per power-of-two range: each recorded value lands in a bucket whose
// relative width is at most 2^-(precision-1), and quantile queries return
// the bucket midpoint, so the relative error against the underlying order
// statistic is at most 2^-precision.
const (
	// DefaultHistPrecision (10 bits, 1024 sub-buckets per octave) bounds
	// quantile error at 2^-10 < 0.1% — far below seed-to-seed variance —
	// while a full-range nanosecond histogram stays under ~250 KB.
	DefaultHistPrecision = 10
	// MaxHistPrecision caps the sub-bucket count: 16 bits is a 0.0015%
	// error bound and ~25 MB worst-case, past which exact mode is
	// strictly better.
	MaxHistPrecision = 16
	// MinHistPrecision keeps at least two sub-buckets per octave so the
	// error bound stays below 100%.
	MinHistPrecision = 1
)

// StreamHist is a log-bucketed streaming histogram of non-negative int64
// values (here: FCTs in nanoseconds). Values below 2^precision are
// recorded exactly (one bucket per value); above, buckets widen
// geometrically so that bucket width / bucket value <= 2^-(precision-1).
// Memory is O(log(max value) * 2^precision), independent of how many
// values are observed. The zero value is not ready; use NewStreamHist.
type StreamHist struct {
	precision uint
	counts    []int64 // grown lazily to the highest bucket observed
	total     int64
	underflow int64 // observations <= 0 (defined, counted, never bucketed)
}

// NewStreamHist returns a histogram with the given sub-bucket precision
// in bits. Precision outside [MinHistPrecision, MaxHistPrecision] errors:
// a zero or negative precision is almost always a forgotten default —
// callers wanting the default pass DefaultHistPrecision explicitly.
func NewStreamHist(precision int) (*StreamHist, error) {
	if precision < MinHistPrecision || precision > MaxHistPrecision {
		return nil, fmt.Errorf("metrics: histogram precision %d outside [%d, %d]",
			precision, MinHistPrecision, MaxHistPrecision)
	}
	return &StreamHist{precision: uint(precision)}, nil
}

// RelativeError returns the documented bound on quantile error: a value
// returned by Quantile is within this fraction of the order statistic at
// the queried rank.
func (h *StreamHist) RelativeError() float64 {
	return 1 / float64(uint64(1)<<h.precision)
}

// bucketIndex maps a positive value to its bucket. Values below
// 2^precision map to themselves (exact); above, the value is normalised
// to precision significant bits.
func (h *StreamHist) bucketIndex(v int64) int {
	u := uint64(v)
	sub := uint64(1) << h.precision
	if u < sub {
		return int(u)
	}
	exp := bits.Len64(u) - int(h.precision) // doublings past the exact region, >= 1
	mantissa := u >> uint(exp)              // in [sub/2, sub)
	return int(sub) + (exp-1)*int(sub)/2 + int(mantissa) - int(sub)/2
}

// bucketBounds inverts bucketIndex: the inclusive [lo, hi] value range of
// a bucket.
func (h *StreamHist) bucketBounds(idx int) (lo, hi int64) {
	sub := int64(1) << h.precision
	if int64(idx) < sub {
		return int64(idx), int64(idx)
	}
	half := int(sub) >> 1
	exp := (idx - int(sub)) / half
	mantissa := int64(idx-int(sub)-exp*half) + sub/2
	lo = mantissa << uint(exp+1)
	hi = lo + (int64(1) << uint(exp+1)) - 1
	return lo, hi
}

// Observe records one value. Non-positive values are defined: they are
// counted in an underflow bucket that Quantile treats as zero, so a
// degenerate input can never panic or silently skew the distribution of
// the positive mass.
func (h *StreamHist) Observe(v int64) {
	h.total++
	if v <= 0 {
		h.underflow++
		return
	}
	idx := h.bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
}

// Count returns the number of observations, including underflow.
func (h *StreamHist) Count() int64 { return h.total }

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// observed values: the midpoint of the bucket containing the order
// statistic of rank round(q * (n-1)). The estimate is within
// RelativeError of that order statistic. An empty histogram returns 0;
// q outside [0, 1] is clamped.
func (h *StreamHist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Round(q * float64(h.total-1))) // 0-based
	if rank < h.underflow {
		return 0
	}
	cum := h.underflow
	for idx, c := range h.counts {
		cum += c
		if cum > rank {
			lo, hi := h.bucketBounds(idx)
			return lo + (hi-lo)/2
		}
	}
	// Unreachable while counts are consistent with total; be defined.
	return 0
}

// Reset clears all observations, keeping the grown bucket array so a
// pooled run instance's steady-state reuse allocates nothing.
func (h *StreamHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.underflow = 0
}

// Buckets returns the memory footprint in buckets (for tests and the
// bench suite's O(1)-memory claim).
func (h *StreamHist) Buckets() int { return len(h.counts) }

// StreamingSummary accumulates the same Summary Summarize computes over
// a record slice, in O(1) memory per flow: count, incomplete and
// RTO-flow tallies, exact mean/stddev (running sums), exact min/max, and
// log-bucketed percentiles. It is the streaming metrics mode's
// accumulator; the exact mode stays the oracle against which its
// percentile error bound is tested.
type StreamingSummary struct {
	hist       *StreamHist
	count      int
	incomplete int
	withRTO    int
	missed     int // deadline misses (incomplete flows count)
	deadline   sim.Time
	sumMs      float64
	sumSqMs    float64
	minNs      int64
	maxNs      int64
}

// NewStreamingSummary returns an accumulator with the given histogram
// precision. Flows observed after their FCT exceeds deadline (or that
// never complete) count toward MissRate; a zero deadline disables miss
// accounting.
func NewStreamingSummary(precision int, deadline sim.Time) (*StreamingSummary, error) {
	h, err := NewStreamHist(precision)
	if err != nil {
		return nil, err
	}
	return &StreamingSummary{hist: h, deadline: deadline, minNs: math.MaxInt64}, nil
}

// Observe records one finished flow, exactly as Summarize would consume
// its record: incomplete flows tally Incomplete (and a deadline miss),
// completed flows contribute their FCT and RTO flag.
func (s *StreamingSummary) Observe(r FlowRecord) {
	if !r.Completed {
		s.incomplete++
		if s.deadline > 0 {
			s.missed++
		}
		return
	}
	fct := int64(r.FCT())
	s.count++
	if r.Timeouts > 0 {
		s.withRTO++
	}
	if s.deadline > 0 && r.FCT() > s.deadline {
		s.missed++
	}
	ms := sim.Time(fct).Milliseconds()
	s.sumMs += ms
	s.sumSqMs += ms * ms
	if fct < s.minNs {
		s.minNs = fct
	}
	if fct > s.maxNs {
		s.maxNs = fct
	}
	s.hist.Observe(fct)
}

// RelativeError returns the documented percentile error bound (the
// underlying histogram's).
func (s *StreamingSummary) RelativeError() float64 { return s.hist.RelativeError() }

// MissRate returns the fraction of observed flows that missed the
// deadline (DeadlineMissRate's streaming twin). Zero when no deadline
// was configured or nothing was observed.
func (s *StreamingSummary) MissRate() float64 {
	n := s.count + s.incomplete
	if s.deadline == 0 || n == 0 {
		return 0
	}
	return float64(s.missed) / float64(n)
}

// Summary renders the accumulated statistics. Count, Incomplete,
// WithRTO, MeanMs, StdMs, MinMs and MaxMs are exact; the percentiles
// carry the histogram's relative error bound.
func (s *StreamingSummary) Summary() Summary {
	out := Summary{Count: s.count, Incomplete: s.incomplete, WithRTO: s.withRTO}
	if s.count == 0 {
		return out
	}
	n := float64(s.count)
	out.MeanMs = s.sumMs / n
	variance := s.sumSqMs/n - out.MeanMs*out.MeanMs
	if variance > 0 {
		out.StdMs = math.Sqrt(variance)
	}
	out.MinMs = sim.Time(s.minNs).Milliseconds()
	out.MaxMs = sim.Time(s.maxNs).Milliseconds()
	out.P50Ms = sim.Time(s.hist.Quantile(0.50)).Milliseconds()
	out.P95Ms = sim.Time(s.hist.Quantile(0.95)).Milliseconds()
	out.P99Ms = sim.Time(s.hist.Quantile(0.99)).Milliseconds()
	return out
}

// Reset clears the accumulator for run-instance reuse, keeping the
// histogram's bucket capacity.
func (s *StreamingSummary) Reset() {
	s.hist.Reset()
	s.count = 0
	s.incomplete = 0
	s.withRTO = 0
	s.missed = 0
	s.sumMs = 0
	s.sumSqMs = 0
	s.minNs = math.MaxInt64
	s.maxNs = 0
}

// Snapshot is one periodic sample of a run's cumulative state — the
// rolling Results time series that lets a million-flow steady-state run
// report behaviour over time (percentile trajectories, drop and routing
// counters) without retaining per-flow records. All fields are
// cumulative since the start of the run, so deltas between consecutive
// snapshots isolate each interval.
type Snapshot struct {
	At sim.Time // virtual time of the sample

	// Workload progress.
	Spawned int // short flows spawned so far
	// Short summarises the short flows finished so far. Percentiles come
	// from the streaming histogram (error bound as documented); mean,
	// stddev, min, max and the counts are exact.
	Short Summary

	// Data-plane damage counters (network-wide cumulative).
	Blackholed   int64
	NoRouteDrops int64
	HopDrops     int64
	LoopDrops    int64
	CrashDrops   int64

	// Control-plane work (zero under local repair).
	Recomputes int
	Overrides  int
}
