package metrics

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

func TestNewStreamHistValidation(t *testing.T) {
	for _, p := range []int{-1, 0, MinHistPrecision - 1, MaxHistPrecision + 1, 100} {
		if _, err := NewStreamHist(p); err == nil {
			t.Errorf("precision %d: want error, got nil", p)
		}
	}
	for _, p := range []int{MinHistPrecision, DefaultHistPrecision, MaxHistPrecision} {
		if _, err := NewStreamHist(p); err != nil {
			t.Errorf("precision %d: unexpected error %v", p, err)
		}
	}
}

// TestStreamHistBucketRoundTrip checks the core bucket invariants for
// every precision: bucketBounds inverts bucketIndex, every value lands
// inside its bucket's [lo, hi], and the bucket midpoint is within the
// documented 2^-precision relative error of the value.
func TestStreamHistBucketRoundTrip(t *testing.T) {
	for p := MinHistPrecision; p <= MaxHistPrecision; p++ {
		h, err := NewStreamHist(p)
		if err != nil {
			t.Fatal(err)
		}
		eps := h.RelativeError()
		vals := []int64{1, 2, 3, 7, 100, 1023, 1024, 1025, 4095, 4097,
			1_000_000, 123_456_789, int64(1) << 40, math.MaxInt64 / 3}
		for _, v := range vals {
			idx := h.bucketIndex(v)
			lo, hi := h.bucketBounds(idx)
			if v < lo || v > hi {
				t.Fatalf("p=%d v=%d: bucket %d bounds [%d,%d] exclude the value", p, v, idx, lo, hi)
			}
			mid := lo + (hi-lo)/2
			if relErr := math.Abs(float64(mid-v)) / float64(v); relErr > eps {
				t.Errorf("p=%d v=%d: midpoint %d rel err %.6g > bound %.6g", p, v, mid, relErr, eps)
			}
			// Bounds invert the index exactly: both edges map back.
			if got := h.bucketIndex(lo); got != idx {
				t.Errorf("p=%d bucket %d: lo %d maps to bucket %d", p, idx, lo, got)
			}
			if got := h.bucketIndex(hi); got != idx {
				t.Errorf("p=%d bucket %d: hi %d maps to bucket %d", p, idx, hi, got)
			}
		}
	}
}

func TestStreamHistQuantileEdgeCases(t *testing.T) {
	h, err := NewStreamHist(DefaultHistPrecision)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	h.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("single-value histogram Quantile(%v) = %d, want 42", q, got)
		}
	}
	// Non-positive observations are counted but never bucketed, and read
	// back as zero at the low quantiles.
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) with underflow = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 42 {
		t.Errorf("Quantile(1) = %d, want 42", got)
	}
}

func TestStreamHistResetKeepsCapacity(t *testing.T) {
	h, err := NewStreamHist(DefaultHistPrecision)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v < 1_000_000; v *= 3 {
		h.Observe(v)
	}
	grown := h.Buckets()
	h.Reset()
	if h.Count() != 0 {
		t.Errorf("count after reset = %d", h.Count())
	}
	if h.Buckets() != grown {
		t.Errorf("reset truncated buckets: %d -> %d", grown, h.Buckets())
	}
	allocs := testing.AllocsPerRun(100, func() {
		for v := int64(1); v < 1_000_000; v *= 3 {
			h.Observe(v)
		}
		h.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state observe/reset allocates %.1f per cycle", allocs)
	}
}

// webSearchMix draws a web-search-like flow-size FCT mix: a large mass
// of sub-millisecond mice, a body of mid-size flows, and a heavy tail
// out to tens of seconds — the distribution shape (DCTCP's web-search
// workload) whose tail percentiles streaming mode must not distort.
func webSearchMix(rng *sim.RNG, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		var v int64
		switch {
		case u < 0.5: // mice: 50us..1ms
			v = 50_000 + rng.Int63n(950_000)
		case u < 0.9: // body: 1ms..100ms
			v = 1_000_000 + rng.Int63n(99_000_000)
		default: // elephant tail: 100ms..30s
			v = 100_000_000 + rng.Int63n(29_900_000_000)
		}
		out = append(out, v)
	}
	return out
}

// TestStreamingPercentileError is the documented accuracy bound:
// for each queried quantile q, the streaming estimate must be within
// RelativeError of the bracketing exact order statistics
// x[floor(q*(n-1))] and x[ceil(q*(n-1))].
func TestStreamingPercentileError(t *testing.T) {
	for _, prec := range []int{6, DefaultHistPrecision, 14} {
		h, err := NewStreamHist(prec)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(7)
		vals := webSearchMix(rng, 20_000)
		for _, v := range vals {
			h.Observe(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		eps := h.RelativeError()
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
			got := float64(h.Quantile(q))
			pos := q * float64(len(sorted)-1)
			lo := float64(sorted[int(math.Floor(pos))])
			hi := float64(sorted[int(math.Ceil(pos))])
			if got >= lo*(1-eps) && got <= hi*(1+eps) {
				continue
			}
			t.Errorf("prec=%d q=%v: estimate %.0f outside [%0.f, %.0f] +/- %.4g%%",
				prec, q, got, lo, hi, eps*100)
		}
	}
}

func TestStreamingSummaryMatchesSummarize(t *testing.T) {
	rng := sim.NewRNG(11)
	deadline := 200 * sim.Millisecond
	s, err := NewStreamingSummary(DefaultHistPrecision, deadline)
	if err != nil {
		t.Fatal(err)
	}
	var recs []FlowRecord
	for i := 0; i < 5_000; i++ {
		r := FlowRecord{ID: uint64(i), Completed: true, Start: 0}
		r.End = sim.Time(webSearchMix(rng, 1)[0])
		if rng.Float64() < 0.05 {
			r.Timeouts = 1
		}
		if rng.Float64() < 0.02 {
			r.Completed = false
			r.End = 0
		}
		recs = append(recs, r)
		s.Observe(r)
	}
	exact := Summarize(recs)
	got := s.Summary()

	// Counts and moments are exact, not approximate.
	if got.Count != exact.Count || got.Incomplete != exact.Incomplete || got.WithRTO != exact.WithRTO {
		t.Errorf("counts diverge: streaming %+v exact %+v", got, exact)
	}
	if math.Abs(got.MeanMs-exact.MeanMs) > 1e-6*exact.MeanMs {
		t.Errorf("mean: streaming %v exact %v", got.MeanMs, exact.MeanMs)
	}
	if math.Abs(got.StdMs-exact.StdMs) > 1e-5*exact.StdMs {
		t.Errorf("std: streaming %v exact %v", got.StdMs, exact.StdMs)
	}
	if got.MinMs != exact.MinMs || got.MaxMs != exact.MaxMs {
		t.Errorf("min/max: streaming %v/%v exact %v/%v", got.MinMs, got.MaxMs, exact.MinMs, exact.MaxMs)
	}
	// Percentiles: Summarize interpolates between order statistics while
	// the histogram returns a bucket midpoint of one of them, so the
	// documented bound is against the bracketing order stats, not the
	// interpolated value.
	var fcts []float64
	for _, r := range recs {
		if r.Completed {
			fcts = append(fcts, r.FCT().Milliseconds())
		}
	}
	sort.Float64s(fcts)
	eps := s.RelativeError()
	for _, pq := range []struct {
		got float64
		q   float64
	}{{got.P50Ms, 0.50}, {got.P95Ms, 0.95}, {got.P99Ms, 0.99}} {
		pos := pq.q * float64(len(fcts)-1)
		lo := fcts[int(math.Floor(pos))]
		hi := fcts[int(math.Ceil(pos))]
		if pq.got < lo*(1-eps)-1e-9 || pq.got > hi*(1+eps)+1e-9 {
			t.Errorf("q=%v: streaming %v outside order-stat bracket [%v, %v] +/- %.4g",
				pq.q, pq.got, lo, hi, eps)
		}
	}
	// Deadline accounting matches the exact computation.
	if want := DeadlineMissRate(recs, deadline); math.Abs(s.MissRate()-want) > 1e-12 {
		t.Errorf("miss rate: streaming %v exact %v", s.MissRate(), want)
	}

	// Reset produces a clean accumulator.
	s.Reset()
	if sum := s.Summary(); sum.Count != 0 || sum.Incomplete != 0 || sum.MeanMs != 0 {
		t.Errorf("summary after reset: %+v", sum)
	}
	if s.MissRate() != 0 {
		t.Errorf("miss rate after reset: %v", s.MissRate())
	}
}

func TestStreamingSummaryEmptyAndSingle(t *testing.T) {
	s, err := NewStreamingSummary(DefaultHistPrecision, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum := s.Summary(); sum != (Summary{}) {
		t.Errorf("empty summary = %+v", sum)
	}
	if s.MissRate() != 0 {
		t.Errorf("empty miss rate = %v", s.MissRate())
	}
	s.Observe(FlowRecord{Completed: true, Start: 0, End: 10 * sim.Millisecond})
	sum := s.Summary()
	if sum.Count != 1 || sum.MinMs != sum.MaxMs || sum.MinMs != 10 {
		t.Errorf("single-flow summary = %+v", sum)
	}
	for _, p := range []float64{sum.P50Ms, sum.P95Ms, sum.P99Ms} {
		if math.Abs(p-10) > 10*0.001 { // default precision: 2^-10 < 0.1%
			t.Errorf("single-flow percentile %v not ~10ms", p)
		}
	}
	if sum.StdMs != 0 {
		t.Errorf("single-flow std = %v", sum.StdMs)
	}
}
