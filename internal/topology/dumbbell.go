package topology

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

// DumbbellConfig describes the classic two-switch dumbbell: n hosts on
// each side, access links at Link.RateBps, and a single bottleneck link
// between the switches at BottleneckBps. It is the canonical topology for
// congestion-control unit tests and the coexistence (fairness)
// experiments, where several protocols share one bottleneck.
type DumbbellConfig struct {
	HostsPerSide  int
	Link          LinkConfig // access links
	BottleneckBps int64      // 0 means same as access links
	// BottleneckQueue overrides the bottleneck queue limit (packets);
	// 0 means Link.QueueLimit.
	BottleneckQueue int
}

// Dumbbell is a built dumbbell network. Hosts 0..n-1 are on the left,
// n..2n-1 on the right.
type Dumbbell struct {
	Network
	Cfg DumbbellConfig

	// Bottleneck links, left-to-right and right-to-left.
	BottleneckLR *netem.Link
	BottleneckRL *netem.Link
}

// Left returns the i-th left-side host.
func (d *Dumbbell) Left(i int) *netem.Host { return d.Hosts[i] }

// Right returns the i-th right-side host.
func (d *Dumbbell) Right(i int) *netem.Host { return d.Hosts[d.Cfg.HostsPerSide+i] }

// NewDumbbell builds the dumbbell and installs BFS-derived ECMP tables
// (trivially single-path here).
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.HostsPerSide < 1 {
		panic(fmt.Sprintf("topology: dumbbell needs at least 1 host per side, got %d", cfg.HostsPerSide))
	}
	cfg.Link.applyDefaults()
	if cfg.BottleneckBps == 0 {
		cfg.BottleneckBps = cfg.Link.RateBps
	}
	if cfg.BottleneckQueue == 0 {
		cfg.BottleneckQueue = cfg.Link.QueueLimit
	}

	d := &Dumbbell{Cfg: cfg}
	d.Eng = eng
	d.Kind = fmt.Sprintf("dumbbell(n=%d)", cfg.HostsPerSide)

	n := cfg.HostsPerSide
	id := netem.NodeID(0)
	for i := 0; i < 2*n; i++ {
		d.Hosts = append(d.Hosts, netem.NewHost(eng, id))
		id++
	}
	left := netem.NewSwitch(eng, id, 1)
	id++
	right := netem.NewSwitch(eng, id, 2)
	d.Switches = append(d.Switches, left, right)
	// Both switches sit at the core tier: their inter-switch cable is
	// the LayerCore bottleneck.
	d.SwitchLayers = append(d.SwitchLayers, netem.LayerCore, netem.LayerCore)

	for i := 0; i < n; i++ {
		up, _ := d.connectHost(d.Hosts[i], left, cfg.Link, netem.LayerHost)
		d.Hosts[i].AttachUplink(up)
	}
	for i := 0; i < n; i++ {
		up, _ := d.connectHost(d.Hosts[n+i], right, cfg.Link, netem.LayerHost)
		d.Hosts[n+i].AttachUplink(up)
	}
	bcfg := cfg.Link
	bcfg.RateBps = cfg.BottleneckBps
	bcfg.QueueLimit = cfg.BottleneckQueue
	d.BottleneckLR, d.BottleneckRL = d.connect(left, right, bcfg, netem.LayerCore)

	buildECMPTables(&d.Network)
	d.pathCount = func(src, dst netem.NodeID) int { return 1 }
	d.validate()
	return d
}
