package topology

import (
	"fmt"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// recorder collects packets delivered to a host endpoint.
type recorder struct{ got []*netem.Packet }

func (r *recorder) HandlePacket(p *netem.Packet) { r.got = append(r.got, p) }

// sendPacket injects one data packet from src to dst through the network.
func sendPacket(n *Network, src, dst int, sport, dport uint16, flowID uint64, seq int64) {
	p := &netem.Packet{
		Src: netem.NodeID(src), Dst: netem.NodeID(dst),
		SrcPort: sport, DstPort: dport,
		Size: 1460, Flags: netem.FlagData, PayloadLen: 1400,
		FlowID: flowID, Seq: seq,
	}
	n.Hosts[src].Send(p)
}

func TestFatTreeDimensions(t *testing.T) {
	tests := []struct {
		k, hpe                 int
		hosts, switches, links int
		oversub                float64
	}{
		// k=4, 1:1: 16 hosts, 4 pods x (2 edge + 2 agg) + 4 core = 20
		// switches. Links (duplex pairs x2): host 16 + edge-agg 16 + agg-core 16 = 48 -> 96.
		{4, 0, 16, 20, 96, 1},
		// Paper: k=8, 16 hosts/edge: 512 hosts, 8x(4+4)+16 = 80 switches.
		// host links 512 + edge-agg 8*4*4=128 + agg-core 8*4*4=128 -> 768 duplex -> 1536.
		{8, 16, 512, 80, 1536, 4},
	}
	for _, tc := range tests {
		eng := sim.NewEngine()
		cfg := FatTreeConfig{K: tc.k, HostsPerEdge: tc.hpe, Link: DefaultLinkConfig()}
		ft := NewFatTree(eng, cfg)
		if got := ft.NumHosts(); got != tc.hosts {
			t.Errorf("k=%d hpe=%d: hosts = %d, want %d", tc.k, tc.hpe, got, tc.hosts)
		}
		if got := len(ft.Switches); got != tc.switches {
			t.Errorf("k=%d hpe=%d: switches = %d, want %d", tc.k, tc.hpe, got, tc.switches)
		}
		if got := len(ft.Links); got != tc.links {
			t.Errorf("k=%d hpe=%d: links = %d, want %d", tc.k, tc.hpe, got, tc.links)
		}
		if got := ft.Cfg.Oversubscription(); got != tc.oversub {
			t.Errorf("k=%d hpe=%d: oversubscription = %v, want %v", tc.k, tc.hpe, got, tc.oversub)
		}
	}
}

func TestPaperFatTreeConfig(t *testing.T) {
	cfg := PaperFatTreeConfig()
	eng := sim.NewEngine()
	ft := NewFatTree(eng, cfg)
	if ft.NumHosts() != 512 {
		t.Errorf("paper config has %d hosts, want 512", ft.NumHosts())
	}
	if got := cfg.Oversubscription(); got != 4 {
		t.Errorf("paper config oversubscription = %v, want 4", got)
	}
}

func TestFatTreeInvalidK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("K=%d did not panic", k)
				}
			}()
			NewFatTree(sim.NewEngine(), FatTreeConfig{K: k})
		}()
	}
}

func TestFatTreeAllPairsDelivery(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	n := ft.NumHosts()
	flowID := uint64(0)
	recs := make(map[uint64]*recorder)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			flowID++
			rec := &recorder{}
			recs[flowID] = rec
			ft.Hosts[dst].Register(flowID, 0, rec)
			sendPacket(&ft.Network, src, dst, uint16(1000+src), 80, flowID, 0)
		}
	}
	eng.Run()
	for id, rec := range recs {
		if len(rec.got) != 1 {
			t.Fatalf("flow %d delivered %d packets, want 1", id, len(rec.got))
		}
	}
	// No host should have unclaimed packets (routing never transits hosts).
	for i, h := range ft.Hosts {
		if h.Unclaimed != 0 {
			t.Errorf("host %d has %d unclaimed packets", i, h.Unclaimed)
		}
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	// Same edge: host0 -> host1 is host-edge-host = 2 links.
	// Same pod, different edge: host0 -> host2 = 4 links.
	// Different pod: host0 -> host15 = 6 links.
	cases := []struct {
		src, dst, hops int
	}{{0, 1, 2}, {0, 2, 4}, {0, 15, 6}}
	for i, tc := range cases {
		rec := &recorder{}
		id := uint64(100 + i)
		ft.Hosts[tc.dst].Register(id, 0, rec)
		sendPacket(&ft.Network, tc.src, tc.dst, 1234, 80, id, 0)
		eng.Run()
		if len(rec.got) != 1 {
			t.Fatalf("case %d: delivered %d", i, len(rec.got))
		}
		if rec.got[0].Hops != tc.hops {
			t.Errorf("%d->%d: hops = %d, want %d", tc.src, tc.dst, rec.got[0].Hops, tc.hops)
		}
	}
}

func TestFatTreePathCountFormula(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 1},  // self
		{0, 1, 1},  // same edge
		{0, 2, 2},  // same pod, different edge: k/2
		{0, 15, 4}, // different pod: (k/2)^2
	}
	for _, tc := range cases {
		if got := ft.PathCount(netem.NodeID(tc.src), netem.NodeID(tc.dst)); got != tc.want {
			t.Errorf("PathCount(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

// TestFatTreePathCountMatchesDAG verifies the closed-form path count
// against an exhaustive count over the ECMP forwarding DAG.
func TestFatTreePathCountMatchesDAG(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, HostsPerEdge: 4, Link: DefaultLinkConfig()})
	for src := 0; src < ft.NumHosts(); src += 3 {
		for dst := 0; dst < ft.NumHosts(); dst += 5 {
			if src == dst {
				continue
			}
			want := countShortestPaths(&ft.Network, netem.NodeID(src), netem.NodeID(dst))
			got := ft.PathCount(netem.NodeID(src), netem.NodeID(dst))
			if got != want {
				t.Fatalf("PathCount(%d,%d) = %d, DAG count = %d", src, dst, got, want)
			}
		}
	}
}

// TestFatTreeStructuredRoutingMatchesBFS compares the structured routers
// against the generic BFS-derived equal-cost tables link by link.
func TestFatTreeStructuredRoutingMatchesBFS(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, HostsPerEdge: 3, Link: DefaultLinkConfig()})

	// Snapshot structured next-hop sets.
	type key struct {
		sw  netem.NodeID
		dst netem.NodeID
	}
	structured := make(map[key]map[*netem.Link]bool)
	for _, sw := range ft.Switches {
		r := ft.routers[sw.ID()]
		for h := 0; h < ft.NumHosts(); h++ {
			set := make(map[*netem.Link]bool)
			for _, l := range r.NextLinks(netem.NodeID(h)) {
				set[l] = true
			}
			structured[key{sw.ID(), netem.NodeID(h)}] = set
		}
	}

	// Rebuild with BFS tables and compare.
	buildECMPTables(&ft.Network)
	for _, sw := range ft.Switches {
		r := ft.routers[sw.ID()]
		for h := 0; h < ft.NumHosts(); h++ {
			want := structured[key{sw.ID(), netem.NodeID(h)}]
			links := r.NextLinks(netem.NodeID(h))
			if len(links) != len(want) {
				t.Fatalf("switch %d -> host %d: BFS set size %d, structured %d",
					sw.ID(), h, len(links), len(want))
			}
			for _, l := range links {
				if !want[l] {
					t.Fatalf("switch %d -> host %d: BFS chose %v not in structured set", sw.ID(), h, l)
				}
			}
		}
	}
}

func TestFatTreeNoIntraFlowReordering(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	rec := &recorder{}
	ft.Hosts[15].Register(1, 0, rec)
	for i := 0; i < 100; i++ {
		sendPacket(&ft.Network, 0, 15, 5555, 80, 1, int64(i))
	}
	eng.Run()
	if len(rec.got) != 100 {
		t.Fatalf("delivered %d, want 100", len(rec.got))
	}
	for i, p := range rec.got {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d arrived with seq %d: fixed 5-tuple must not reorder", i, p.Seq)
		}
	}
}

func TestFatTreeScatterUsesAllCores(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig(), Seed: 3})
	rec := &recorder{}
	ft.Hosts[15].Register(1, 0, rec)
	rng := sim.NewRNG(9)
	const pkts = 2000
	for i := 0; i < pkts; i++ {
		i := i
		// Pace injections at the access-link rate so nothing drops.
		eng.At(sim.Time(i)*150*sim.Microsecond, func() {
			sendPacket(&ft.Network, 0, 15, uint16(rng.Intn(1<<16)), 80, 1, int64(i))
		})
	}
	eng.Run()
	if len(rec.got) != pkts {
		t.Fatalf("delivered %d, want %d (no drops expected at this load)", len(rec.got), pkts)
	}
	// Every agg->core link out of pod 0 should have carried traffic.
	used := 0
	total := 0
	for _, l := range ft.LinksAtLayer(netem.LayerAgg) {
		if _, isSwitch := l.Src().(*netem.Switch); !isSwitch {
			continue
		}
		total++
		if l.Stats.TxPackets > 0 {
			used++
		}
	}
	// 4 agg->core uplinks carry pod0->core traffic, 4 core->agg links
	// carry core->pod3. With 2000 scattered packets all 8 must be hit.
	if used < 8 {
		t.Errorf("only %d/%d agg-layer links carried scattered traffic", used, total)
	}
}

func TestFatTreeLocators(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, HostsPerEdge: 4, Link: DefaultLinkConfig()})
	// 4 pods x 2 edges x 4 hosts = 32 hosts; hostsPerPod = 8.
	cases := []struct {
		host, pod, edgeIdx int
	}{{0, 0, 0}, {3, 0, 0}, {4, 0, 1}, {8, 1, 0}, {31, 3, 1}}
	for _, tc := range cases {
		if got := ft.PodOf(netem.NodeID(tc.host)); got != tc.pod {
			t.Errorf("PodOf(%d) = %d, want %d", tc.host, got, tc.pod)
		}
		if got := ft.EdgeIndexOf(netem.NodeID(tc.host)); got != tc.edgeIdx {
			t.Errorf("EdgeIndexOf(%d) = %d, want %d", tc.host, got, tc.edgeIdx)
		}
	}
}

func TestLinksAtLayer(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	if got := len(ft.LinksAtLayer(netem.LayerHost)); got != 32 {
		t.Errorf("host links = %d, want 32", got)
	}
	if got := len(ft.LinksAtLayer(netem.LayerEdge)); got != 32 {
		t.Errorf("edge links = %d, want 32", got)
	}
	if got := len(ft.LinksAtLayer(netem.LayerAgg)); got != 32 {
		t.Errorf("agg links = %d, want 32", got)
	}
}

func ExampleFatTreeConfig_Oversubscription() {
	fmt.Println(PaperFatTreeConfig().Oversubscription())
	// Output: 4
}

func TestFatTreeRoutersExcludeRouteDeadLinks(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	src, dst := netem.NodeID(0), netem.NodeID(f.NumHosts()-1) // inter-pod pair

	// Walk the routers' view from the source edge switch upward.
	edge := f.routers[f.Hosts[src].Uplinks()[0].Dst().ID()]
	up := edge.NextLinks(dst)
	if len(up) != 2 {
		t.Fatalf("edge equal-cost set = %d links, want 2 agg uplinks", len(up))
	}
	// Kill one agg uplink for routing: the set shrinks.
	up[0].SetRouteDead(true)
	if got := edge.NextLinks(dst); len(got) != 1 || got[0] != up[1] {
		t.Fatalf("route-dead agg uplink still in the set: %v", got)
	}
	// Kill both: the edge router reports no route (the switch counts
	// and drops; see netem).
	up[1].SetRouteDead(true)
	if got := edge.NextLinks(dst); len(got) != 0 {
		t.Fatalf("empty failure window returned %d links", len(got))
	}
	up[0].SetRouteDead(false)
	up[1].SetRouteDead(false)

	// Same at the aggregation layer (core uplinks)...
	agg := f.routers[up[0].Dst().ID()]
	coreUp := agg.NextLinks(dst)
	if len(coreUp) != 2 {
		t.Fatalf("agg equal-cost set = %d links, want 2 core uplinks", len(coreUp))
	}
	coreUp[1].SetRouteDead(true)
	if got := agg.NextLinks(dst); len(got) != 1 || got[0] != coreUp[0] {
		t.Fatal("route-dead core uplink still in the agg set")
	}
	coreUp[1].SetRouteDead(false)

	// ...and at the core, whose per-pod set is a single link.
	core := f.routers[coreUp[0].Dst().ID()]
	down := core.NextLinks(dst)
	if len(down) != 1 {
		t.Fatalf("core pod set = %d links, want 1", len(down))
	}
	down[0].SetRouteDead(true)
	if got := core.NextLinks(dst); len(got) != 0 {
		t.Fatal("core kept forwarding toward a route-dead pod downlink")
	}
	down[0].SetRouteDead(false)

	// Packets still flow end to end once everything is revived.
	if got := edge.NextLinks(dst); len(got) != 2 {
		t.Fatalf("revived edge set = %d links", len(got))
	}
}

func TestTableRouterExcludesRouteDeadLinks(t *testing.T) {
	eng := sim.NewEngine()
	// VL2 uses BFS-derived TableRouters everywhere.
	v := NewVL2(eng, VL2Config{DA: 4, DI: 4, HostsPerToR: 2, Link: DefaultLinkConfig()})
	// ToR 0 homes to aggs {0,1}, ToR 2 to aggs {2,3}: no shared agg, so
	// the shortest path crosses the intermediate mesh and the source ToR
	// has a genuinely multipath equal-cost set.
	src, dst := netem.NodeID(0), netem.NodeID(4)
	tor := v.routers[v.Hosts[src].Uplinks()[0].Dst().ID()]
	set := tor.NextLinks(dst)
	if len(set) < 2 {
		t.Fatalf("ToR equal-cost set = %d links; VL2 should be multipath", len(set))
	}
	dead := set[0]
	dead.SetRouteDead(true)
	filtered := tor.NextLinks(dst)
	if len(filtered) != len(set)-1 {
		t.Fatalf("filtered set = %d links, want %d", len(filtered), len(set)-1)
	}
	for _, l := range filtered {
		if l == dead {
			t.Fatal("route-dead link survived TableRouter filtering")
		}
	}
	dead.SetRouteDead(false)
	if got := tor.NextLinks(dst); len(got) != len(set) {
		t.Fatal("revived link missing from the set")
	}
}
