package topology

import "fmt"

// Partition assigns every switch of the network to one of `shards`
// groups and returns the assignment as a slice parallel to n.Switches.
// Builders that know their structure install a partitionHint — the
// FatTree groups whole pods so the only cut links are the thin
// agg<->core tier — and everything else falls back to a contiguous
// split in builder order, which at least keeps each switch's pod/stage
// neighbours (adjacent by construction in every builder here) on the
// same shard.
//
// The assignment is deterministic: same network shape and shard count,
// same partition. That determinism is part of the sharded engine's
// reproducibility contract.
func Partition(n *Network, shards int) ([]int, error) {
	ns := len(n.Switches)
	if shards < 1 {
		return nil, fmt.Errorf("topology: shard count %d < 1", shards)
	}
	if shards > ns {
		return nil, fmt.Errorf("topology: %d shards exceed the %d switches of %s", shards, ns, n.Kind)
	}
	var assign []int
	if n.partitionHint != nil {
		assign = n.partitionHint(shards)
	}
	if assign == nil {
		assign = make([]int, ns)
		for i := range assign {
			assign[i] = i * shards / ns
		}
	}
	if len(assign) != ns {
		return nil, fmt.Errorf("topology: partition hint returned %d assignments for %d switches", len(assign), ns)
	}
	seen := make([]bool, shards)
	for i, s := range assign {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("topology: switch %d assigned to shard %d of %d", i, s, shards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("topology: shard %d of %d is empty", s, shards)
		}
	}
	return assign, nil
}
