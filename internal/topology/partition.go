package topology

import "fmt"

// Partition assigns every switch of the network to one of `shards`
// groups and returns the assignment as a slice parallel to n.Switches.
// Builders that know their structure install a partitionHint — the
// FatTree groups whole pods so the only cut links are the thin
// agg<->core tier — and everything else falls back to a contiguous
// split in builder order, which at least keeps each switch's pod/stage
// neighbours (adjacent by construction in every builder here) on the
// same shard.
//
// The assignment is deterministic: same network shape and shard count,
// same partition. That determinism is part of the sharded engine's
// reproducibility contract.
func Partition(n *Network, shards int) ([]int, error) {
	return PartitionWeighted(n, shards, nil)
}

// PartitionWeighted is Partition with per-switch weights — typically
// measured forwarded-packet loads from Network.SwitchLoads after a
// profiling run — so group boundaries balance summed weight instead of
// switch count. Structure still wins over weight: builder hints keep
// pods whole and weighting only moves the pod-group boundaries, because
// a weight-optimal cut through a pod's fat bipartite wiring would
// multiply boundary links and shrink the conservative lookahead.
//
// A nil or empty weights slice degenerates to Partition. Otherwise the
// slice must be parallel to n.Switches and non-negative, with positive
// total weight. Determinism: same shape, shard count and weights, same
// partition.
func PartitionWeighted(n *Network, shards int, weights []float64) ([]int, error) {
	ns := len(n.Switches)
	if shards < 1 {
		return nil, fmt.Errorf("topology: shard count %d < 1", shards)
	}
	if shards > ns {
		return nil, fmt.Errorf("topology: %d shards exceed the %d switches of %s", shards, ns, n.Kind)
	}
	if len(weights) > 0 {
		if len(weights) != ns {
			return nil, fmt.Errorf("topology: %d partition weights for %d switches of %s", len(weights), ns, n.Kind)
		}
		total := 0.0
		for i, w := range weights {
			if w < 0 {
				return nil, fmt.Errorf("topology: negative partition weight %g for switch %d", w, i)
			}
			total += w
		}
		if total <= 0 {
			weights = nil // all-zero: no signal, fall back to counting
		}
	} else {
		weights = nil
	}
	var assign []int
	if weights != nil && n.weightedHint != nil {
		assign = n.weightedHint(shards, weights)
	}
	if assign == nil && weights == nil && n.partitionHint != nil {
		assign = n.partitionHint(shards)
	}
	if assign == nil {
		if weights != nil {
			assign = splitWeighted(ns, shards, func(i int) float64 { return weights[i] })
		} else {
			assign = make([]int, ns)
			for i := range assign {
				assign[i] = i * shards / ns
			}
		}
	}
	if len(assign) != ns {
		return nil, fmt.Errorf("topology: partition hint returned %d assignments for %d switches", len(assign), ns)
	}
	seen := make([]bool, shards)
	for i, s := range assign {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("topology: switch %d assigned to shard %d of %d", i, s, shards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("topology: shard %d of %d is empty", s, shards)
		}
	}
	return assign, nil
}

// splitWeighted assigns m ordered items to `shards` contiguous groups,
// closing each group once its proportional share of the total weight is
// consumed. Every group receives at least one item (a skewed weight
// vector degrades the balance, never the validity), and the output is a
// pure function of (m, shards, weights).
func splitWeighted(m, shards int, w func(int) float64) []int {
	out := make([]int, m)
	total := 0.0
	for i := 0; i < m; i++ {
		total += w(i)
	}
	if total <= 0 {
		for i := range out {
			out[i] = i * shards / m
		}
		return out
	}
	acc, g := 0.0, 0
	for i := 0; i < m; i++ {
		if i > 0 && g < shards-1 {
			// Advance when this group's share is met — or when the
			// remaining groups need every remaining item to stay
			// non-empty. At most one advance per item, so no group is
			// ever skipped.
			if shards-1-g >= m-i || acc >= total*float64(g+1)/float64(shards) {
				g++
			}
		}
		out[i] = g
		acc += w(i)
	}
	return out
}

// SwitchLoads returns every switch's cumulative forwarded-packet count
// as a weight vector parallel to Switches — the measured-load input to
// PartitionWeighted after a profiling run of the same workload.
func (n *Network) SwitchLoads() []float64 {
	out := make([]float64, len(n.Switches))
	for i, sw := range n.Switches {
		out[i] = float64(sw.Forwarded)
	}
	return out
}
