package topology

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

// MultiHomedConfig describes the paper's future-work topology: a k-ary
// FatTree in which every server is dual-homed, attached to two distinct
// edge switches in its pod. The paper's roadmap argues that "the more
// parallel paths at the access layer, the higher the burst tolerance".
//
// The wiring keeps the FatTree fabric identical and adds, for every
// host, a second access link to the next edge switch in the pod
// (wrapping around), so edge switches carry 2x the host links.
type MultiHomedConfig struct {
	K            int // pods; must be even and >= 4 (needs >= 2 edges per pod)
	HostsPerEdge int // primary-homed hosts per edge switch; 0 means k/2
	Link         LinkConfig
	Seed         uint64
}

// MultiHomed is a built dual-homed FatTree.
type MultiHomed struct {
	Network
	Cfg MultiHomedConfig

	hostsPerEdge int
	edgePerPod   int
	hostsPerPod  int
	numHosts     int
}

// NumHosts returns the number of servers.
func (m *MultiHomed) NumHosts() int { return m.numHosts }

// NewMultiHomed builds the dual-homed FatTree. Routing uses BFS-derived
// ECMP tables (structured routing becomes irregular with dual homing, and
// the generic tables are exact).
func NewMultiHomed(eng *sim.Engine, cfg MultiHomedConfig) *MultiHomed {
	if cfg.K < 4 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("topology: multi-homed FatTree K must be even and >= 4, got %d", cfg.K))
	}
	cfg.Link.applyDefaults()
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = cfg.K / 2
	}

	k := cfg.K
	half := k / 2
	m := &MultiHomed{
		Cfg:          cfg,
		hostsPerEdge: cfg.HostsPerEdge,
		edgePerPod:   half,
		hostsPerPod:  half * cfg.HostsPerEdge,
	}
	m.Eng = eng
	m.Kind = fmt.Sprintf("multihomed-fattree(k=%d,hosts/edge=%d)", k, cfg.HostsPerEdge)
	m.numHosts = k * m.hostsPerPod

	nextID := netem.NodeID(0)
	for i := 0; i < m.numHosts; i++ {
		m.Hosts = append(m.Hosts, netem.NewHost(eng, nextID))
		nextID++
	}
	m.setHashSalt(0x5eed_fa77_ee00_0002)
	seedRNG := sim.NewRNG(cfg.Seed ^ m.hashSalt)
	mkSwitch := func(tier netem.Layer) *netem.Switch {
		sw := netem.NewSwitch(eng, nextID, seedRNG.Uint32())
		nextID++
		m.Switches = append(m.Switches, sw)
		m.SwitchLayers = append(m.SwitchLayers, tier)
		return sw
	}
	numEdge := k * half
	edges := make([]*netem.Switch, numEdge)
	for i := range edges {
		edges[i] = mkSwitch(netem.LayerEdge)
	}
	aggs := make([]*netem.Switch, k*half)
	for i := range aggs {
		aggs[i] = mkSwitch(netem.LayerAgg)
	}
	cores := make([]*netem.Switch, half*half)
	for i := range cores {
		cores[i] = mkSwitch(netem.LayerCore)
	}

	// Host links: primary to edge e, secondary to edge (e+1) mod half
	// within the pod.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for i := 0; i < cfg.HostsPerEdge; i++ {
				h := m.Hosts[(p*half+e)*cfg.HostsPerEdge+i]
				primary := edges[p*half+e]
				secondary := edges[p*half+(e+1)%half]
				up1, _ := m.connectHost(h, primary, cfg.Link, netem.LayerHost)
				up2, _ := m.connectHost(h, secondary, cfg.Link, netem.LayerHost)
				h.AttachUplink(up1)
				h.AttachUplink(up2)
			}
		}
	}
	// Fabric identical to the plain FatTree.
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				m.connect(edges[p*half+e], aggs[p*half+a], cfg.Link, netem.LayerEdge)
			}
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				m.connect(aggs[p*half+a], cores[a*half+j], cfg.Link, netem.LayerAgg)
			}
		}
	}

	buildECMPTables(&m.Network)
	m.pathCount = func(src, dst netem.NodeID) int {
		return countShortestPaths(&m.Network, src, dst)
	}
	m.validate()
	return m
}
