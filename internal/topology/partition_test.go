package topology

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestSplitWeightedNonEmptyGroups: splitWeighted must keep every group
// non-empty no matter how skewed the weights are — a profiling run that
// concentrates all load on one hotspot switch degrades balance, never
// validity.
func TestSplitWeightedNonEmptyGroups(t *testing.T) {
	cases := []struct {
		name string
		m, s int
		w    func(int) float64
	}{
		{"uniform", 12, 4, func(int) float64 { return 1 }},
		{"front-loaded", 10, 5, func(i int) float64 {
			if i == 0 {
				return 1e9
			}
			return 0
		}},
		{"back-loaded", 10, 5, func(i int) float64 {
			if i == 9 {
				return 1e9
			}
			return 0
		}},
		{"all-zero", 8, 3, func(int) float64 { return 0 }},
		{"tight", 4, 4, func(i int) float64 { return float64(i * i) }},
	}
	for _, c := range cases {
		out := splitWeighted(c.m, c.s, c.w)
		if len(out) != c.m {
			t.Fatalf("%s: %d assignments for %d items", c.name, len(out), c.m)
		}
		seen := make([]bool, c.s)
		prev := 0
		for i, g := range out {
			if g < 0 || g >= c.s {
				t.Fatalf("%s: item %d in group %d of %d", c.name, i, g, c.s)
			}
			if g < prev || g > prev+1 {
				t.Fatalf("%s: groups not contiguous at item %d (%d after %d)", c.name, i, g, prev)
			}
			prev = g
			seen[g] = true
		}
		for g, ok := range seen {
			if !ok {
				t.Errorf("%s: group %d empty", c.name, g)
			}
		}
	}
}

// TestSplitWeightedBalances: with one dominant item the weighted split
// should isolate it rather than cut by count.
func TestSplitWeightedBalances(t *testing.T) {
	// Item 5 carries half the total weight of 10 items split in two: it
	// completes the first group's share, so the boundary lands right
	// after it instead of at the count midpoint (item 5).
	w := func(i int) float64 {
		if i == 5 {
			return 9
		}
		return 1
	}
	out := splitWeighted(10, 2, w)
	if out[5] != 0 || out[6] != 1 {
		t.Errorf("boundary not placed by weight: %v", out)
	}
}

// TestPartitionWeightedValidation covers the weighted partitioner's
// refusals and fallbacks.
func TestPartitionWeightedValidation(t *testing.T) {
	ft := NewFatTree(sim.NewEngine(), FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	n := &ft.Network
	ns := len(ft.Switches)

	if _, err := PartitionWeighted(n, 2, make([]float64, ns-1)); err == nil {
		t.Error("accepted weight vector shorter than switch count")
	}
	bad := make([]float64, ns)
	bad[3] = -1
	if _, err := PartitionWeighted(n, 2, bad); err == nil {
		t.Error("accepted negative weight")
	}
	// All-zero weights carry no signal: identical to the unweighted path.
	zero, err := PartitionWeighted(n, 2, make([]float64, ns))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Partition(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, plain) {
		t.Errorf("all-zero weights diverge from unweighted partition:\n%v\n%v", zero, plain)
	}
}

// TestPartitionWeightedFatTree: weighting moves pod-group boundaries but
// never cuts a pod, and the result is deterministic.
func TestPartitionWeightedFatTree(t *testing.T) {
	ft := NewFatTree(sim.NewEngine(), FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	n := &ft.Network
	// K=4: 8 edges, 8 aggs (2 per pod each), 4 cores. Load pod 3's edge
	// switches so heavily it deserves a shard of its own.
	w := make([]float64, len(ft.Switches))
	for i := range w {
		w[i] = 1
	}
	w[6], w[7] = 1000, 1000 // pod 3's edges
	a, err := PartitionWeighted(n, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionWeighted(n, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("weighted partition is nondeterministic")
	}
	for pod := 0; pod < 4; pod++ {
		shard := a[pod*2]
		for i := 0; i < 2; i++ {
			if a[pod*2+i] != shard || a[8+pod*2+i] != shard {
				t.Errorf("pod %d split across shards: %v", pod, a[:16])
			}
		}
	}
	// The loaded pod should sit alone on its shard while the three quiet
	// pods share the other.
	loaded := a[6]
	for pod := 0; pod < 3; pod++ {
		if a[pod*2] == loaded {
			t.Errorf("quiet pod %d shares shard %d with the hotspot pod: %v", pod, loaded, a[:16])
		}
	}
}

// TestSwitchLoadsShape: the load vector is parallel to Switches and
// reflects forwarding counters.
func TestSwitchLoadsShape(t *testing.T) {
	ft := NewFatTree(sim.NewEngine(), FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	loads := ft.SwitchLoads()
	if len(loads) != len(ft.Switches) {
		t.Fatalf("%d loads for %d switches", len(loads), len(ft.Switches))
	}
	for i, l := range loads {
		if l != 0 {
			t.Errorf("fresh switch %d reports load %g", i, l)
		}
	}
	ft.Switches[2].Forwarded = 42
	if got := ft.SwitchLoads()[2]; got != 42 {
		t.Errorf("SwitchLoads()[2] = %g, want 42", got)
	}
}
