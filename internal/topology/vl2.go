package topology

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

// VL2Config describes a VL2-style Clos network (Greenberg et al.,
// SIGCOMM 2009/2011, the paper's reference [3]): ToR switches dual-homed
// to aggregation switches, and a complete bipartite mesh between
// aggregation and intermediate switches. Fabric links run at a multiple
// of the server rate (VL2 used 10x), and flows are Valiant-load-balanced
// by ECMP through the intermediates.
//
// The paper notes that topologies like VL2 "incorporate centralised
// components which can provide similar information" to FatTree
// addressing — i.e. the path count MMPTCP's packet-scatter threshold
// needs. Here that oracle is derived from the routing DAG.
type VL2Config struct {
	// DA is the number of aggregation switches (even). Each ToR
	// connects to 2 of them; intermediates connect to all of them.
	DA int
	// DI is the number of intermediate switches.
	DI int
	// HostsPerToR is the number of servers per ToR switch.
	HostsPerToR int
	// FabricMultiple scales ToR-agg and agg-intermediate link rates
	// relative to the server links (VL2: 10). 0 means 10.
	FabricMultiple int
	Link           LinkConfig // server-link parameters
	Seed           uint64
}

// VL2 is a built VL2-style Clos network.
type VL2 struct {
	Network
	Cfg      VL2Config
	numHosts int
}

// NumHosts returns the number of servers.
func (v *VL2) NumHosts() int { return v.numHosts }

// NewVL2 builds the Clos, wires fabric links at FabricMultiple times the
// server rate, installs BFS-derived ECMP tables and a DAG-based
// path-count oracle.
func NewVL2(eng *sim.Engine, cfg VL2Config) *VL2 {
	if cfg.DA < 2 || cfg.DA%2 != 0 {
		panic(fmt.Sprintf("topology: VL2 DA must be even and >= 2, got %d", cfg.DA))
	}
	if cfg.DI < 1 {
		panic(fmt.Sprintf("topology: VL2 DI must be >= 1, got %d", cfg.DI))
	}
	if cfg.HostsPerToR < 1 {
		panic(fmt.Sprintf("topology: VL2 needs hosts per ToR >= 1, got %d", cfg.HostsPerToR))
	}
	cfg.Link.applyDefaults()
	if cfg.FabricMultiple == 0 {
		cfg.FabricMultiple = 10
	}

	// VL2 sizing: DA*DI/4... we keep it simple and direct: the number
	// of ToRs is DA*2 (each agg pairs with 4 ToR uplinks in VL2's
	// formulation; any count works for the simulation, so expose it as
	// DA ToR pairs).
	numToR := cfg.DA * 2
	v := &VL2{Cfg: cfg}
	v.Eng = eng
	v.Kind = fmt.Sprintf("vl2(da=%d,di=%d,hosts/tor=%d)", cfg.DA, cfg.DI, cfg.HostsPerToR)
	v.numHosts = numToR * cfg.HostsPerToR

	nextID := netem.NodeID(0)
	for i := 0; i < v.numHosts; i++ {
		v.Hosts = append(v.Hosts, netem.NewHost(eng, nextID))
		nextID++
	}
	v.setHashSalt(0x5eed_fa77_ee00_0003)
	seedRNG := sim.NewRNG(cfg.Seed ^ v.hashSalt)
	mkSwitch := func(tier netem.Layer) *netem.Switch {
		sw := netem.NewSwitch(eng, nextID, seedRNG.Uint32())
		nextID++
		v.Switches = append(v.Switches, sw)
		v.SwitchLayers = append(v.SwitchLayers, tier)
		return sw
	}
	tors := make([]*netem.Switch, numToR)
	for i := range tors {
		tors[i] = mkSwitch(netem.LayerEdge)
	}
	aggs := make([]*netem.Switch, cfg.DA)
	for i := range aggs {
		aggs[i] = mkSwitch(netem.LayerAgg)
	}
	ints := make([]*netem.Switch, cfg.DI)
	for i := range ints {
		ints[i] = mkSwitch(netem.LayerCore)
	}

	// Server links.
	for t := 0; t < numToR; t++ {
		for i := 0; i < cfg.HostsPerToR; i++ {
			h := v.Hosts[t*cfg.HostsPerToR+i]
			up, _ := v.connectHost(h, tors[t], cfg.Link, netem.LayerHost)
			h.AttachUplink(up)
		}
	}
	fabric := cfg.Link
	fabric.RateBps = cfg.Link.RateBps * int64(cfg.FabricMultiple)
	// Each ToR dual-homes to two aggregation switches.
	for t := 0; t < numToR; t++ {
		a1 := t % cfg.DA
		a2 := (t + 1) % cfg.DA
		v.connect(tors[t], aggs[a1], fabric, netem.LayerEdge)
		v.connect(tors[t], aggs[a2], fabric, netem.LayerEdge)
	}
	// Complete bipartite agg <-> intermediate mesh.
	for a := 0; a < cfg.DA; a++ {
		for i := 0; i < cfg.DI; i++ {
			v.connect(aggs[a], ints[i], fabric, netem.LayerAgg)
		}
	}

	buildECMPTables(&v.Network)
	v.pathCount = func(src, dst netem.NodeID) int {
		return countShortestPaths(&v.Network, src, dst)
	}
	v.validate()
	return v
}
