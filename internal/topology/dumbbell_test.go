package topology

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func TestDumbbellDelivery(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{HostsPerSide: 3, Link: DefaultLinkConfig()})
	if len(d.Hosts) != 6 || len(d.Switches) != 2 {
		t.Fatalf("dimensions: %d hosts, %d switches", len(d.Hosts), len(d.Switches))
	}
	// Left i -> right i, and right 0 -> left 2 (reverse direction).
	for i := 0; i < 3; i++ {
		rec := &recorder{}
		id := uint64(i + 1)
		d.Right(i).Register(id, 0, rec)
		sendPacket(&d.Network, i, 3+i, 1000, 80, id, 0)
		eng.Run()
		if len(rec.got) != 1 {
			t.Fatalf("left %d -> right %d: delivered %d", i, i, len(rec.got))
		}
		if rec.got[0].Hops != 3 {
			t.Errorf("hops = %d, want 3", rec.got[0].Hops)
		}
	}
	rec := &recorder{}
	d.Left(2).Register(99, 0, rec)
	sendPacket(&d.Network, 3, 2, 1000, 80, 99, 0)
	eng.Run()
	if len(rec.got) != 1 {
		t.Fatal("reverse direction failed")
	}
}

func TestDumbbellSameSideDelivery(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{HostsPerSide: 2, Link: DefaultLinkConfig()})
	rec := &recorder{}
	d.Left(1).Register(7, 0, rec)
	sendPacket(&d.Network, 0, 1, 1000, 80, 7, 0)
	eng.Run()
	if len(rec.got) != 1 {
		t.Fatal("same-side delivery failed")
	}
	if rec.got[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (host-switch-host)", rec.got[0].Hops)
	}
	// Same-side traffic must not touch the bottleneck.
	if d.BottleneckLR.Stats.TxPackets != 0 || d.BottleneckRL.Stats.TxPackets != 0 {
		t.Error("same-side traffic crossed the bottleneck")
	}
}

func TestDumbbellBottleneckParameters(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DumbbellConfig{
		HostsPerSide:    2,
		Link:            LinkConfig{RateBps: 1_000_000_000, Delay: 10 * sim.Microsecond, QueueLimit: 50},
		BottleneckBps:   100_000_000,
		BottleneckQueue: 25,
	}
	d := NewDumbbell(eng, cfg)
	if d.BottleneckLR.Rate() != 100_000_000 {
		t.Errorf("bottleneck rate = %d", d.BottleneckLR.Rate())
	}
	// Access links keep the configured rate.
	up := d.Left(0).Uplinks()[0]
	if up.Rate() != 1_000_000_000 {
		t.Errorf("access rate = %d", up.Rate())
	}
	if d.PathCount(0, 3) != 1 {
		t.Errorf("dumbbell path count = %d, want 1", d.PathCount(0, 3))
	}
}

func TestDumbbellInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HostsPerSide=0 did not panic")
		}
	}()
	NewDumbbell(sim.NewEngine(), DumbbellConfig{HostsPerSide: 0})
}

func TestMultiHomedDelivery(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMultiHomed(eng, MultiHomedConfig{K: 4, Link: DefaultLinkConfig()})
	if m.NumHosts() != 16 {
		t.Fatalf("hosts = %d, want 16", m.NumHosts())
	}
	for _, h := range m.Hosts {
		if len(h.Uplinks()) != 2 {
			t.Fatalf("host %d has %d uplinks, want 2", h.ID(), len(h.Uplinks()))
		}
	}
	// All-pairs smoke: every packet delivered, never through a host.
	flowID := uint64(0)
	recs := make(map[uint64]*recorder)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			flowID++
			rec := &recorder{}
			recs[flowID] = rec
			m.Hosts[dst].Register(flowID, 0, rec)
			sendPacket(&m.Network, src, dst, uint16(1000+src), 80, flowID, 0)
		}
	}
	eng.Run()
	for id, rec := range recs {
		if len(rec.got) != 1 {
			t.Fatalf("flow %d delivered %d packets", id, len(rec.got))
		}
	}
	for i, h := range m.Hosts {
		if h.Unclaimed != 0 {
			t.Errorf("host %d saw %d unclaimed packets (routed through a host?)", i, h.Unclaimed)
		}
	}
}

func TestMultiHomedSecondInterfaceDelivery(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMultiHomed(eng, MultiHomedConfig{K: 4, Link: DefaultLinkConfig()})
	rec := &recorder{}
	m.Hosts[15].Register(1, 0, rec)
	p := &netem.Packet{
		Src: 0, Dst: 15, SrcPort: 1000, DstPort: 80,
		Size: 1460, Flags: netem.FlagData, FlowID: 1,
	}
	m.Hosts[0].SendOn(p, 1) // second interface
	eng.Run()
	if len(rec.got) != 1 {
		t.Fatal("delivery via secondary interface failed")
	}
}

func TestMultiHomedPathCountExceedsSingleHomed(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMultiHomed(eng, MultiHomedConfig{K: 4, Link: DefaultLinkConfig()})
	single := NewFatTree(sim.NewEngine(), FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	// Inter-pod paths: dual homing doubles access-layer choice on both
	// ends, so the count must strictly exceed the single-homed count.
	mh := m.PathCount(0, 15)
	sh := single.PathCount(0, 15)
	if mh <= sh {
		t.Errorf("multi-homed paths = %d, single-homed = %d; want strictly more", mh, sh)
	}
}

func TestMultiHomedInvalidK(t *testing.T) {
	for _, k := range []int{0, 2, 3, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("K=%d did not panic", k)
				}
			}()
			NewMultiHomed(sim.NewEngine(), MultiHomedConfig{K: k})
		}()
	}
}
