package topology

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// k16 builds the K=16 fabric the parallel engine targets: 16 pods of
// 8+8 switches, 64 cores, and 27 hosts per edge for 3,456 servers —
// paper-scale arity at a CI-friendly host count.
func k16(eng *sim.Engine) *FatTree {
	return NewFatTree(eng, FatTreeConfig{K: 16, HostsPerEdge: 27, Link: DefaultLinkConfig()})
}

func TestFatTreeK16Dimensions(t *testing.T) {
	ft := k16(sim.NewEngine())
	if got := ft.NumHosts(); got != 3456 {
		t.Errorf("hosts = %d, want 3456", got)
	}
	// 16 pods x (8 edge + 8 agg) + (16/2)^2 core = 320.
	if got := len(ft.Switches); got != 320 {
		t.Errorf("switches = %d, want 320", got)
	}
	// Duplex cables: 3456 host + 16*8*8 edge-agg + 16*8*8 agg-core =
	// 5504, i.e. 11008 unidirectional links.
	if got := len(ft.Links); got != 11008 {
		t.Errorf("links = %d, want 11008", got)
	}
	for _, tc := range []struct {
		layer netem.Layer
		want  int
	}{
		{netem.LayerHost, 6912},
		{netem.LayerEdge, 2048},
		{netem.LayerAgg, 2048},
	} {
		if got := len(ft.LinksAtLayer(tc.layer)); got != tc.want {
			t.Errorf("%s links = %d, want %d", tc.layer, got, tc.want)
		}
	}
	if got := ft.Cfg.Oversubscription(); got != 3.375 {
		t.Errorf("oversubscription = %v, want 3.375 (2*27/16)", got)
	}
}

func TestFatTreeK16PathCounts(t *testing.T) {
	ft := k16(sim.NewEngine())
	cases := []struct {
		src, dst, want int
	}{
		{0, 1, 1},     // same edge
		{0, 27, 8},    // same pod, different edge: k/2
		{0, 3455, 64}, // different pod: (k/2)^2
	}
	for _, tc := range cases {
		if got := ft.PathCount(netem.NodeID(tc.src), netem.NodeID(tc.dst)); got != tc.want {
			t.Errorf("PathCount(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

// TestFatTreeK16Liveness routes one cross-pod flow out of every pod
// through the structured routers and checks delivery and hop count —
// the arity-16 router arithmetic (locators, core striping) exercised
// end to end on every pod.
func TestFatTreeK16Liveness(t *testing.T) {
	eng := sim.NewEngine()
	ft := k16(eng)
	hostsPerPod := ft.NumHosts() / 16
	recs := make(map[uint64]*recorder)
	for pod := 0; pod < 16; pod++ {
		src := pod * hostsPerPod
		dst := ((pod+5)%16)*hostsPerPod + hostsPerPod - 1
		id := uint64(1 + pod)
		rec := &recorder{}
		recs[id] = rec
		ft.Hosts[dst].Register(id, 0, rec)
		sendPacket(&ft.Network, src, dst, uint16(1000+pod), 80, id, 0)
	}
	eng.Run()
	for id, rec := range recs {
		if len(rec.got) != 1 {
			t.Fatalf("flow %d delivered %d packets, want 1", id, len(rec.got))
		}
		if rec.got[0].Hops != 6 {
			t.Errorf("flow %d took %d hops, want 6 (cross-pod)", id, rec.got[0].Hops)
		}
	}
}

// TestFatTreeK16ConstructionAllocsLinear is the allocation budget for
// big fabrics: building the 3,456-host K=16 tree must cost a bounded
// number of allocations per element (host + switch + link), within 2x
// of the K=8 tree's per-element cost — i.e. construction stays linear
// in fabric size with no superlinear or per-pair blowup.
func TestFatTreeK16ConstructionAllocsLinear(t *testing.T) {
	perElem := func(build func(*sim.Engine) *FatTree) float64 {
		var elems int
		allocs := testing.AllocsPerRun(3, func() {
			ft := build(sim.NewEngine())
			elems = len(ft.Hosts) + len(ft.Switches) + len(ft.Links)
		})
		return allocs / float64(elems)
	}
	k8 := perElem(func(eng *sim.Engine) *FatTree {
		return NewFatTree(eng, FatTreeConfig{K: 8, HostsPerEdge: 16, Link: DefaultLinkConfig()})
	})
	k16 := perElem(k16)
	if k16 > 2*k8 {
		t.Errorf("K=16 construction allocates %.2f per element vs %.2f at K=8; growth is superlinear", k16, k8)
	}
}

// TestPartitionFatTreePodAffinity pins the partitioner's FatTree hint:
// at 16 shards on a K=16 tree every pod's 16 switches land on a single
// shard (so edge-agg cables are never boundaries), the 64 cores spread
// across all shards, and no shard is empty.
func TestPartitionFatTreePodAffinity(t *testing.T) {
	ft := k16(sim.NewEngine())
	assign, err := Partition(&ft.Network, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(ft.Switches) {
		t.Fatalf("assignment covers %d switches, want %d", len(assign), len(ft.Switches))
	}
	// Builder order: 128 edges (8 per pod), 128 aggs (8 per pod), 64
	// cores. Pod p owns edges [8p, 8p+8) and aggs [128+8p, 128+8p+8).
	seen := make(map[int]bool)
	for pod := 0; pod < 16; pod++ {
		shard := assign[pod*8]
		for i := 0; i < 8; i++ {
			if e := assign[pod*8+i]; e != shard {
				t.Errorf("pod %d edge %d on shard %d, pod on %d", pod, i, e, shard)
			}
			if a := assign[128+pod*8+i]; a != shard {
				t.Errorf("pod %d agg %d on shard %d, pod on %d", pod, i, a, shard)
			}
		}
		seen[shard] = true
	}
	if len(seen) != 16 {
		t.Errorf("pods cover %d shards, want 16", len(seen))
	}
	coreShards := make(map[int]bool)
	for i := 256; i < 320; i++ {
		if assign[i] < 0 || assign[i] >= 16 {
			t.Fatalf("core %d assigned out-of-range shard %d", i, assign[i])
		}
		coreShards[assign[i]] = true
	}
	if len(coreShards) != 16 {
		t.Errorf("cores cover %d shards, want 16", len(coreShards))
	}
}

// TestPartitionErrors covers the partitioner's refusals.
func TestPartitionErrors(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	if _, err := Partition(&ft.Network, 0); err == nil {
		t.Error("Partition accepted 0 shards")
	}
	if _, err := Partition(&ft.Network, len(ft.Switches)+1); err == nil {
		t.Error("Partition accepted more shards than switches")
	}
}
