package topology

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

// FatTreeConfig describes a k-ary FatTree (Al-Fares et al., SIGCOMM 2008)
// with configurable over-subscription at the edge: attaching more than
// k/2 hosts per edge switch over-subscribes the edge uplinks. The paper's
// topology — 512 servers at 4:1 — is K=8 with 16 hosts per edge switch
// (16 host links vs 4 uplinks per edge switch).
type FatTreeConfig struct {
	K            int // pods; must be even and >= 2
	HostsPerEdge int // hosts per edge switch; 0 means k/2 (1:1)
	Link         LinkConfig
	Seed         uint64 // perturbs per-switch ECMP hash seeds
}

// PaperFatTreeConfig returns the evaluation topology from the paper:
// a 4:1 over-subscribed FatTree with 512 servers (K=8, 16 hosts/edge).
func PaperFatTreeConfig() FatTreeConfig {
	return FatTreeConfig{K: 8, HostsPerEdge: 16, Link: DefaultLinkConfig()}
}

// Oversubscription returns the edge over-subscription ratio, e.g. 4 for
// the paper's 4:1 configuration.
func (c FatTreeConfig) Oversubscription() float64 {
	hpe := c.HostsPerEdge
	if hpe == 0 {
		hpe = c.K / 2
	}
	return float64(hpe) / float64(c.K/2)
}

// FatTree is a built k-ary FatTree network.
type FatTree struct {
	Network
	Cfg FatTreeConfig

	hostsPerEdge int
	edgePerPod   int // k/2
	aggPerPod    int // k/2
	hostsPerPod  int
	numHosts     int
}

// NumHosts returns the number of servers in the tree.
func (f *FatTree) NumHosts() int { return f.numHosts }

// PodOf returns the pod index of a host.
func (f *FatTree) PodOf(h netem.NodeID) int { return int(h) / f.hostsPerPod }

// EdgeIndexOf returns the pod-local edge-switch index of a host.
func (f *FatTree) EdgeIndexOf(h netem.NodeID) int {
	return (int(h) % f.hostsPerPod) / f.hostsPerEdge
}

// edgeOf returns the global edge-switch ordinal of a host.
func (f *FatTree) edgeOf(h netem.NodeID) int {
	return int(h) / f.hostsPerEdge
}

// NewFatTree builds the FatTree, wires every link, installs structured
// ECMP routers on every switch and sets up the path-count oracle.
func NewFatTree(eng *sim.Engine, cfg FatTreeConfig) *FatTree {
	if cfg.K < 2 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("topology: FatTree K must be even and >= 2, got %d", cfg.K))
	}
	cfg.Link.applyDefaults()
	if cfg.HostsPerEdge == 0 {
		cfg.HostsPerEdge = cfg.K / 2
	}

	k := cfg.K
	half := k / 2
	f := &FatTree{
		Cfg:          cfg,
		hostsPerEdge: cfg.HostsPerEdge,
		edgePerPod:   half,
		aggPerPod:    half,
		hostsPerPod:  half * cfg.HostsPerEdge,
	}
	f.Eng = eng
	f.Kind = fmt.Sprintf("fattree(k=%d,hosts/edge=%d)", k, cfg.HostsPerEdge)
	f.numHosts = k * f.hostsPerPod

	numEdge := k * half
	numAgg := k * half
	numCore := half * half

	// Node IDs: hosts first, then edge, agg, core switches.
	nextID := netem.NodeID(0)
	for i := 0; i < f.numHosts; i++ {
		f.Hosts = append(f.Hosts, netem.NewHost(eng, nextID))
		nextID++
	}
	f.setHashSalt(0x5eed_fa77_ee00_0001)
	seedRNG := sim.NewRNG(cfg.Seed ^ f.hashSalt)
	mkSwitch := func(tier netem.Layer) *netem.Switch {
		sw := netem.NewSwitch(eng, nextID, seedRNG.Uint32())
		nextID++
		f.Switches = append(f.Switches, sw)
		f.SwitchLayers = append(f.SwitchLayers, tier)
		return sw
	}
	edges := make([]*netem.Switch, numEdge)
	for i := range edges {
		edges[i] = mkSwitch(netem.LayerEdge)
	}
	aggs := make([]*netem.Switch, numAgg)
	for i := range aggs {
		aggs[i] = mkSwitch(netem.LayerAgg)
	}
	cores := make([]*netem.Switch, numCore)
	for i := range cores {
		cores[i] = mkSwitch(netem.LayerCore)
	}

	// Routers, populated while wiring.
	edgeRouters := make([]*fatTreeEdgeRouter, numEdge)
	for i := range edgeRouters {
		edgeRouters[i] = &fatTreeEdgeRouter{
			f:         f,
			edge:      i,
			hostLinks: make([][]*netem.Link, cfg.HostsPerEdge),
		}
	}
	aggRouters := make([]*fatTreeAggRouter, numAgg)
	for i := range aggRouters {
		aggRouters[i] = &fatTreeAggRouter{
			f:         f,
			pod:       i / half,
			edgeLinks: make([][]*netem.Link, half),
		}
	}
	coreRouters := make([]*fatTreeCoreRouter, numCore)
	for i := range coreRouters {
		coreRouters[i] = &fatTreeCoreRouter{f: f, podLinks: make([][]*netem.Link, k)}
	}

	// Host <-> edge links.
	for e := 0; e < numEdge; e++ {
		for i := 0; i < cfg.HostsPerEdge; i++ {
			h := f.Hosts[e*cfg.HostsPerEdge+i]
			up, down := f.connectHost(h, edges[e], cfg.Link, netem.LayerHost)
			h.AttachUplink(up)
			edgeRouters[e].hostLinks[i] = []*netem.Link{down}
		}
	}
	// Edge <-> agg links (full bipartite within each pod).
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				eg := p*half + e
				ag := p*half + a
				up, down := f.connect(edges[eg], aggs[ag], cfg.Link, netem.LayerEdge)
				edgeRouters[eg].upLinks = append(edgeRouters[eg].upLinks, up)
				aggRouters[ag].edgeLinks[e] = []*netem.Link{down}
			}
		}
	}
	// Agg <-> core links: agg switch with pod-local index a connects to
	// the k/2 core switches in group a (cores a*half .. a*half+half-1).
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			ag := p*half + a
			for j := 0; j < half; j++ {
				c := a*half + j
				up, down := f.connect(aggs[ag], cores[c], cfg.Link, netem.LayerAgg)
				aggRouters[ag].upLinks = append(aggRouters[ag].upLinks, up)
				coreRouters[c].podLinks[p] = []*netem.Link{down}
			}
		}
	}

	for i, sw := range edges {
		f.setRouter(sw, edgeRouters[i])
	}
	for i, sw := range aggs {
		f.setRouter(sw, aggRouters[i])
	}
	for i, sw := range cores {
		f.setRouter(sw, coreRouters[i])
	}

	// Shard partitioning keeps pods whole: the edge and aggregation
	// switches of pod p all land on shard p*shards/k, so the only
	// cross-shard links are the agg<->core tier (plus core placement:
	// cores spread round-robin, balancing the core heap load). More
	// shards than pods would split pods — fall back to the generic
	// contiguous split rather than pretend the hint still helps.
	f.partitionHint = func(shards int) []int {
		if shards > k {
			return nil
		}
		assign := make([]int, len(f.Switches))
		for i := range assign {
			switch {
			case i < numEdge: // edge: pod i/half
				assign[i] = (i / half) * shards / k
			case i < numEdge+numAgg: // agg: pod (i-numEdge)/half
				assign[i] = ((i - numEdge) / half) * shards / k
			default: // core
				assign[i] = (i - numEdge - numAgg) % shards
			}
		}
		return assign
	}

	// Load-aware variant of the same structure: pods stay whole, but the
	// pod-group boundaries balance summed switch weight (measured
	// forwarded packets) instead of pod count, and each core switch goes
	// to the currently lightest shard rather than round-robin. Cut links
	// remain agg<->core only, so the conservative lookahead is identical
	// to the unweighted partition.
	f.weightedHint = func(shards int, w []float64) []int {
		if shards > k {
			return nil
		}
		podW := make([]float64, k)
		for i := 0; i < numEdge; i++ {
			podW[i/half] += w[i]
		}
		for i := 0; i < numAgg; i++ {
			podW[i/half] += w[numEdge+i]
		}
		podShard := splitWeighted(k, shards, func(p int) float64 { return podW[p] })
		assign := make([]int, len(f.Switches))
		load := make([]float64, shards)
		for i := 0; i < numEdge; i++ {
			s := podShard[i/half]
			assign[i] = s
			load[s] += w[i]
		}
		for i := 0; i < numAgg; i++ {
			s := podShard[i/half]
			assign[numEdge+i] = s
			load[s] += w[numEdge+i]
		}
		for i := 0; i < numCore; i++ {
			s := 0
			for j := 1; j < shards; j++ {
				if load[j] < load[s] {
					s = j
				}
			}
			assign[numEdge+numAgg+i] = s
			load[s] += w[numEdge+numAgg+i]
		}
		return assign
	}

	f.pathCount = func(src, dst netem.NodeID) int {
		switch {
		case src == dst:
			return 1
		case f.edgeOf(src) == f.edgeOf(dst):
			return 1 // via the shared edge switch
		case f.PodOf(src) == f.PodOf(dst):
			return half // one path per aggregation switch
		default:
			return half * half // agg choice x core choice
		}
	}
	f.validate()
	return f
}

// fatTreeEdgeRouter forwards down to a local host or up to any
// aggregation switch in the pod.
type fatTreeEdgeRouter struct {
	f         *FatTree
	edge      int             // global edge ordinal
	hostLinks [][]*netem.Link // single-element sets, indexed by local host
	upLinks   []*netem.Link   // all agg uplinks (equal cost)
}

func (r *fatTreeEdgeRouter) NextLinks(dst netem.NodeID) []*netem.Link {
	if r.f.edgeOf(dst) == r.edge {
		return netem.LiveLinks(r.hostLinks[int(dst)%r.f.hostsPerEdge])
	}
	return netem.LiveLinks(r.upLinks)
}

// fatTreeAggRouter forwards down to the destination's edge switch when
// the destination is in this pod, otherwise up to any attached core.
type fatTreeAggRouter struct {
	f         *FatTree
	pod       int
	edgeLinks [][]*netem.Link // single-element sets, indexed by pod-local edge
	upLinks   []*netem.Link   // core uplinks (equal cost)
}

func (r *fatTreeAggRouter) NextLinks(dst netem.NodeID) []*netem.Link {
	if r.f.PodOf(dst) == r.pod {
		return netem.LiveLinks(r.edgeLinks[r.f.EdgeIndexOf(dst)])
	}
	return netem.LiveLinks(r.upLinks)
}

// fatTreeCoreRouter forwards down to the aggregation switch of the
// destination's pod (each core connects to exactly one agg per pod).
type fatTreeCoreRouter struct {
	f        *FatTree
	podLinks [][]*netem.Link // single-element sets, indexed by pod
}

func (r *fatTreeCoreRouter) NextLinks(dst netem.NodeID) []*netem.Link {
	return netem.LiveLinks(r.podLinks[r.f.PodOf(dst)])
}
