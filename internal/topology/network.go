// Package topology builds the simulated data-centre networks the paper's
// experiments run on: k-ary FatTrees with configurable over-subscription
// (the paper's setup is a 512-server, 4:1 over-subscribed FatTree), a
// dual-homed FatTree variant (the paper's future-work topology), and a
// dumbbell used by unit tests and the coexistence experiments.
//
// Each topology provides hash-based ECMP routing (structured routers for
// the FatTree, breadth-first-search equal-cost tables for everything
// else) and a PathCount oracle that MMPTCP's packet-scatter phase uses to
// derive its dynamic duplicate-ACK threshold — the paper's "FatTree IP
// addressing scheme can be exploited to calculate the number of available
// paths" proposal.
package topology

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

// LinkConfig carries the physical parameters shared by all builders.
type LinkConfig struct {
	RateBps      int64    // link bandwidth in bits/s
	Delay        sim.Time // per-link propagation delay
	QueueLimit   int      // drop-tail queue capacity in packets
	ECNThreshold int      // DCTCP-style marking threshold; 0 disables

	// HostEgressQueue sizes the host->switch direction of access links.
	// A real sender does not drop its own packets at its NIC — the
	// qdisc backpressures — so this should be much deeper than switch
	// ports. 0 means 32x QueueLimit.
	HostEgressQueue int
}

// DefaultLinkConfig mirrors the parameter regime of the paper's
// literature (100 Mb/s links, 20 us per hop, 100-packet buffers).
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		RateBps:    100_000_000,
		Delay:      20 * sim.Microsecond,
		QueueLimit: 100,
	}
}

func (c *LinkConfig) applyDefaults() {
	d := DefaultLinkConfig()
	if c.RateBps == 0 {
		c.RateBps = d.RateBps
	}
	if c.Delay == 0 {
		c.Delay = d.Delay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = d.QueueLimit
	}
	if c.HostEgressQueue == 0 {
		c.HostEgressQueue = 32 * c.QueueLimit
	}
}

// hostEgress returns a copy of the config with the queue limit set for
// the host->switch direction of an access link.
func (c LinkConfig) hostEgress() LinkConfig {
	out := c
	out.QueueLimit = c.HostEgressQueue
	return out
}

// Network is a built topology: hosts, switches, every unidirectional
// link (for statistics), and a path-count oracle.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*netem.Host
	Switches []*netem.Switch
	// SwitchLayers tiers Switches (parallel slices): a switch's tier is
	// the layer of its uplinks (edge LayerEdge, aggregation LayerAgg,
	// core/intermediate LayerCore). Builders register every switch here
	// so the faults subsystem can address whole tiers (switch-crash
	// models) and the routing control plane can report per-tier work.
	SwitchLayers []netem.Layer
	Links        []*netem.Link
	Kind         string

	// Pool is the packet free list shared by every node and link of the
	// network (see installPool); exposed for benchmarks that assert the
	// recycle rate.
	Pool *netem.PacketPool

	// routers keeps each switch's effective router so that path counting
	// can follow the ECMP DAG (netem.Switch deliberately hides it). The
	// routing control plane swaps wrapped routers in via WrapRouters.
	routers map[netem.NodeID]netem.Router

	// baseRouters snapshots each switch's as-built router (parallel to
	// Switches, captured by validate) so Reset can unwind whatever a
	// routing control plane wrapped around it.
	baseRouters []netem.Router

	// hashSalt recreates the builder's per-switch ECMP hash seed stream
	// when a pooled network is reused under a new experiment seed;
	// hashSeeded marks builders that derive switch seeds from the seed
	// at all (the dumbbell's fixed seeds never change).
	hashSalt   uint64
	hashSeeded bool

	// pathCount returns the number of distinct equal-cost paths between
	// two hosts on the healthy network; see PathCount.
	pathCount func(src, dst netem.NodeID) int

	// degraded, when set, reports whether any link is currently excluded
	// from routing; while true PathCount follows the live routing DAG
	// instead of the static oracle. The run harness wires it to the
	// fault injector.
	degraded func() bool

	// partitionHint, when set by a builder, maps a shard count to a
	// per-switch shard assignment exploiting the topology's structure
	// (the FatTree keeps pods whole). Nil means Partition's generic
	// contiguous split. Returning nil from the hint also falls back.
	partitionHint func(shards int) []int

	// weightedHint is partitionHint's load-aware sibling: given
	// per-switch weights it balances summed weight across groups while
	// preserving the same structural constraints. Nil (or a nil return)
	// falls back to the generic weighted contiguous split.
	weightedHint func(shards int, weights []float64) []int
}

// setRouter installs a router on a switch and records it for path
// counting.
func (n *Network) setRouter(sw *netem.Switch, r netem.Router) {
	sw.SetRouter(r)
	if n.routers == nil {
		n.routers = make(map[netem.NodeID]netem.Router)
	}
	n.routers[sw.ID()] = r
}

// PathCount returns the number of distinct shortest paths between two
// hosts. MMPTCP uses it to size the packet-scatter duplicate-ACK
// threshold. It returns 1 when src == dst or when the oracle is missing.
//
// On a healthy network the static oracle answers (for the FatTree, the
// paper's addressing formula — allocation-free). While the network is
// degraded (see SetDegraded) the count instead follows the live ECMP
// DAG through the installed routers, so dead paths no longer inflate
// the duplicate-ACK threshold of flows dialed during a failure.
func (n *Network) PathCount(src, dst netem.NodeID) int {
	if src == dst || n.pathCount == nil {
		return 1
	}
	if n.degraded != nil && n.degraded() {
		return countShortestPaths(n, src, dst)
	}
	return n.pathCount(src, dst)
}

// SetDegraded installs the oracle telling PathCount whether any link is
// currently excluded from routing. The run harness points it at the
// fault injector; nil (the default) means permanently healthy.
func (n *Network) SetDegraded(f func() bool) { n.degraded = f }

// WrapRouters replaces every switch's router with wrap(switch, current),
// in builder order, updating both the forwarding plane and the router
// view that path counting follows. The routing control plane uses this
// to interpose its override tables in front of the structural routers.
func (n *Network) WrapRouters(wrap func(sw *netem.Switch, base netem.Router) netem.Router) {
	for _, sw := range n.Switches {
		n.setRouter(sw, wrap(sw, n.routers[sw.ID()]))
	}
}

// Host returns the host with index i (hosts are numbered 0..len-1 and
// host index equals NodeID by construction in all builders).
func (n *Network) Host(i int) *netem.Host { return n.Hosts[i] }

// LinksAtLayer returns all unidirectional links whose layer matches.
func (n *Network) LinksAtLayer(layer netem.Layer) []*netem.Link {
	var out []*netem.Link
	for _, l := range n.Links {
		if l.Layer() == layer {
			out = append(out, l)
		}
	}
	return out
}

// connect wires a full-duplex cable between a and b as two unidirectional
// links with identical parameters and records them in n.Links.
func (n *Network) connect(a, b netem.Node, cfg LinkConfig, layer netem.Layer) (ab, ba *netem.Link) {
	ab = netem.NewLink(n.Eng, a, b, cfg.RateBps, cfg.Delay, cfg.QueueLimit, layer)
	ba = netem.NewLink(n.Eng, b, a, cfg.RateBps, cfg.Delay, cfg.QueueLimit, layer)
	ab.ECNThreshold = cfg.ECNThreshold
	ba.ECNThreshold = cfg.ECNThreshold
	n.Links = append(n.Links, ab, ba)
	return ab, ba
}

// connectHost wires a host's access cable: the host->switch direction
// gets the deep host-egress queue (a sender backpressures rather than
// dropping its own packets), the switch->host direction a normal switch
// port queue.
func (n *Network) connectHost(h, sw netem.Node, cfg LinkConfig, layer netem.Layer) (up, down *netem.Link) {
	up = netem.NewLink(n.Eng, h, sw, cfg.RateBps, cfg.Delay, cfg.HostEgressQueue, layer)
	down = netem.NewLink(n.Eng, sw, h, cfg.RateBps, cfg.Delay, cfg.QueueLimit, layer)
	up.ECNThreshold = cfg.ECNThreshold
	down.ECNThreshold = cfg.ECNThreshold
	n.Links = append(n.Links, up, down)
	return up, down
}

// TableRouter is a routing table mapping destination host to an
// equal-cost set of output links. It implements netem.Router.
type TableRouter struct {
	table map[netem.NodeID][]*netem.Link
}

// NextLinks implements netem.Router. Links excluded by failure
// reconvergence are filtered out; the set may be empty while every
// candidate is dead.
func (r *TableRouter) NextLinks(dst netem.NodeID) []*netem.Link {
	return netem.LiveLinks(r.table[dst])
}

// buildECMPTables computes, for every switch, the full equal-cost
// shortest-path next-hop sets toward every host, by breadth-first search
// from each host over the reversed link graph. It installs a TableRouter
// on each switch. This is the generic fallback used by non-FatTree
// topologies, and the reference implementation the FatTree's structured
// routers are tested against.
func buildECMPTables(n *Network) {
	// Adjacency: outgoing links per node.
	out := make(map[netem.NodeID][]*netem.Link)
	// Incoming links per node (reversed graph).
	in := make(map[netem.NodeID][]*netem.Link)
	for _, l := range n.Links {
		out[l.Src().ID()] = append(out[l.Src().ID()], l)
		in[l.Dst().ID()] = append(in[l.Dst().ID()], l)
	}

	routers := make(map[netem.NodeID]*TableRouter, len(n.Switches))
	for _, sw := range n.Switches {
		r := &TableRouter{table: make(map[netem.NodeID][]*netem.Link)}
		routers[sw.ID()] = r
		n.setRouter(sw, r)
	}

	// Hosts never forward: BFS treats every host other than the
	// destination as a dead end, so routes cannot tunnel through a
	// dual-homed server.
	isHost := make(map[netem.NodeID]bool, len(n.Hosts))
	for _, h := range n.Hosts {
		isHost[h.ID()] = true
	}

	for _, h := range n.Hosts {
		dst := h.ID()
		dist := make(map[netem.NodeID]int32)
		frontier := []netem.NodeID{dst}
		dist[dst] = 0
		for len(frontier) > 0 {
			var next []netem.NodeID
			for _, v := range frontier {
				for _, l := range in[v] {
					u := l.Src().ID()
					if isHost[u] && u != dst {
						continue
					}
					if _, seen := dist[u]; !seen {
						dist[u] = dist[v] + 1
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
		for _, sw := range n.Switches {
			d, ok := dist[sw.ID()]
			if !ok {
				continue
			}
			var eq []*netem.Link
			for _, l := range out[sw.ID()] {
				nd, ok := dist[l.Dst().ID()]
				if ok && nd == d-1 {
					eq = append(eq, l)
				}
			}
			if len(eq) > 0 {
				routers[sw.ID()].table[dst] = eq
			}
		}
	}
}

// countShortestPaths returns the number of distinct shortest paths from
// src to dst host following the installed routing tables. It is used as
// the generic path-count oracle (and as the reference the FatTree formula
// is tested against). The count follows the ECMP DAG, so it reflects the
// paths packets can actually take.
//
// The walk must tolerate cycles: under staggered convergence the
// switches momentarily disagree about the tables (each FIB flips at its
// own time), and a stale switch can point back at one that already
// flipped — the forwarding micro-loop the data plane counts as
// LoopDrops. A node revisited while still on the DFS stack contributes
// zero paths (a loop is not a way to the destination) instead of
// recursing forever.
func countShortestPaths(n *Network, src, dst netem.NodeID) int {
	if src == dst {
		return 1
	}
	// The first hop from a host is its uplink(s); afterwards, follow
	// each switch's equal-cost set. Memoised DFS; inProgress marks nodes
	// on the active stack so transient routing cycles terminate. A count
	// computed beneath a cycle is stack-dependent (it excluded whatever
	// ancestors happened to be in progress), so it is returned but NOT
	// memoised — only cycle-free subgraphs cache, which keeps the walk
	// exact on mixed-epoch tables at the cost of re-visiting the few
	// nodes that can reach a loop.
	const inProgress = -1
	memo := make(map[netem.NodeID]int)
	var visit func(id netem.NodeID) (int, bool)
	visit = func(id netem.NodeID) (int, bool) {
		if id == dst {
			return 1, false
		}
		if v, ok := memo[id]; ok {
			if v == inProgress {
				return 0, true
			}
			return v, false
		}
		r, ok := n.routers[id]
		if !ok {
			return 0, false
		}
		memo[id] = inProgress
		total, tainted := 0, false
		for _, l := range r.NextLinks(dst) {
			c, t := visit(l.Dst().ID())
			total += c
			tainted = tainted || t
		}
		if tainted {
			delete(memo, id)
		} else {
			memo[id] = total
		}
		return total, tainted
	}
	total := 0
	for _, up := range n.Hosts[src].Uplinks() {
		// A route-dead access link contributes no paths: the sender's
		// own NIC link is as much a part of the live DAG as the fabric.
		if up.RouteDead() {
			continue
		}
		c, _ := visit(up.Dst().ID())
		total += c
	}
	return total
}

// validate panics if the network is structurally broken; builders call it
// before returning. It checks that every host has at least one uplink,
// then finishes construction by wiring the shared packet pool and
// snapshotting the as-built routers for Reset.
func (n *Network) validate() {
	for i, h := range n.Hosts {
		if len(h.Uplinks()) == 0 {
			panic(fmt.Sprintf("topology: host %d has no uplink", i))
		}
	}
	n.installPool()
	n.baseRouters = make([]netem.Router, len(n.Switches))
	for i, sw := range n.Switches {
		n.baseRouters[i] = n.routers[sw.ID()]
	}
}

// setHashSalt records the seed-stream salt a builder used to derive
// per-switch ECMP hash seeds (sim.NewRNG(seed ^ salt), one Uint32 per
// switch in creation order), enabling Reset to re-key a recycled
// network to a new experiment seed exactly as a fresh build would.
func (n *Network) setHashSalt(salt uint64) {
	n.hashSalt = salt
	n.hashSeeded = true
}

// Reset restores a built network to its pristine state for reuse by
// another run sharing the same shape (run-instance pooling): every
// switch's counters, crash state and as-built router; every link's
// queue, fault/degradation state and statistics; every host's endpoint
// table and counters; and the path-count degradation oracle. When the
// builder derived per-switch ECMP hash seeds from the experiment seed,
// they are re-derived for the new seed, so a recycled network is
// observationally identical to one freshly built with it. The shared
// packet pool keeps its free list — that reuse is the point — and the
// steady-state Reset path allocates nothing.
//
// The caller owns the engine half of the contract: Reset drops no
// events, so it must follow (or precede) sim.Engine.Reset, which
// discards the in-flight deliveries referencing this network.
func (n *Network) Reset(seed uint64) {
	for i, sw := range n.Switches {
		sw.Reset()
		n.setRouter(sw, n.baseRouters[i])
	}
	for _, l := range n.Links {
		l.Reset()
	}
	for _, h := range n.Hosts {
		h.Reset()
	}
	n.degraded = nil
	if n.hashSeeded {
		var rng sim.RNG
		rng.Reseed(seed^n.hashSalt, 0)
		for _, sw := range n.Switches {
			sw.SetSeed(rng.Uint32())
		}
	}
}

// installPool attaches one packet free list to every host, switch and
// link of the built network: transports allocate outgoing packets from
// it (via Host.NewPacket) and every terminal point — host delivery,
// switch drops, queue drops, blackholes — recycles into it, making the
// steady-state data path allocation-free.
func (n *Network) installPool() {
	if n.Pool == nil {
		n.Pool = netem.NewPacketPool()
	}
	for _, h := range n.Hosts {
		h.SetPool(n.Pool)
	}
	for _, sw := range n.Switches {
		sw.SetPool(n.Pool)
	}
	for _, l := range n.Links {
		l.SetPool(n.Pool)
	}
}
