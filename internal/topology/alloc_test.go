package topology

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// TestHealthyForwardingAllocationFree is the data-plane allocation
// regression: on a healthy FatTree, a full packet journey — pooled
// allocation at the source host, store-and-forward over every hop, ECMP
// hashing at each switch, delivery and recycling at the destination —
// must not allocate once the pools are warm. This is the property the
// engine's event free list, the network's packet pool and the unrolled
// FlowHash exist to provide.
func TestHealthyForwardingAllocationFree(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	src := ft.Hosts[0]
	dst := ft.Hosts[len(ft.Hosts)-1] // cross-pod: the longest path
	var sport uint16 = 1024
	forward := func() {
		p := src.NewPacket()
		p.Src = src.ID()
		p.Dst = dst.ID()
		p.SrcPort = sport
		p.DstPort = 80
		p.Size = 1500
		p.PayloadLen = 1460
		p.FlowID = 1
		p.Flags = netem.FlagData
		sport++ // vary the ECMP choice across runs
		src.Send(p)
		eng.Run()
	}
	before := dst.RxPackets
	// Warm the pools beyond AllocsPerRun's single warm-up call.
	for i := 0; i < 32; i++ {
		forward()
	}
	const runs = 200
	if allocs := testing.AllocsPerRun(runs, forward); allocs != 0 {
		t.Errorf("healthy forwarding allocates %.2f per packet journey, want 0", allocs)
	}
	if got := dst.RxPackets - before; got < 32+runs {
		t.Fatalf("only %d packets delivered; the measured path did not run", got)
	}
	if ft.Pool == nil || ft.Pool.Recycled == 0 {
		t.Error("network pool recycled nothing; delivery terminal is not returning packets")
	}
}

// TestTraceDisabledAllocationFree pins the trace subsystem's
// zero-overhead-when-disabled contract on the data plane: with a nil
// recorder explicitly installed on every link and switch — exactly the
// state an untraced run arms — the full packet journey must stay
// allocation-free. Every trace point is compiled in; disabled, each
// must cost only its nil-guard branch.
func TestTraceDisabledAllocationFree(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Link: DefaultLinkConfig()})
	for _, l := range ft.Links {
		l.SetRecorder(nil)
	}
	for _, sw := range ft.Switches {
		sw.SetRecorder(nil)
	}
	src := ft.Hosts[0]
	dst := ft.Hosts[len(ft.Hosts)-1]
	var sport uint16 = 1024
	forward := func() {
		p := src.NewPacket()
		p.Src = src.ID()
		p.Dst = dst.ID()
		p.SrcPort = sport
		p.DstPort = 80
		p.Size = 1500
		p.PayloadLen = 1460
		p.FlowID = 1
		p.Flags = netem.FlagData
		sport++
		src.Send(p)
		eng.Run()
	}
	before := dst.RxPackets
	for i := 0; i < 32; i++ {
		forward()
	}
	const runs = 200
	if allocs := testing.AllocsPerRun(runs, forward); allocs != 0 {
		t.Errorf("forwarding with tracing disabled allocates %.2f per packet journey, want 0", allocs)
	}
	if got := dst.RxPackets - before; got < 32+runs {
		t.Fatalf("only %d packets delivered; the measured path did not run", got)
	}
}
