package topology

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func TestVL2Dimensions(t *testing.T) {
	eng := sim.NewEngine()
	v := NewVL2(eng, VL2Config{DA: 4, DI: 4, HostsPerToR: 5, Link: DefaultLinkConfig()})
	if v.NumHosts() != 40 { // 8 ToRs x 5 hosts
		t.Errorf("hosts = %d, want 40", v.NumHosts())
	}
	// 8 ToRs + 4 aggs + 4 intermediates.
	if len(v.Switches) != 16 {
		t.Errorf("switches = %d, want 16", len(v.Switches))
	}
	// Fabric links run 10x faster than server links.
	var serverRate, fabricRate int64
	for _, l := range v.Links {
		switch l.Layer() {
		case netem.LayerHost:
			serverRate = l.Rate()
		case netem.LayerAgg:
			fabricRate = l.Rate()
		}
	}
	if fabricRate != 10*serverRate {
		t.Errorf("fabric %d vs server %d, want 10x", fabricRate, serverRate)
	}
}

func TestVL2AllPairsDelivery(t *testing.T) {
	eng := sim.NewEngine()
	v := NewVL2(eng, VL2Config{DA: 4, DI: 2, HostsPerToR: 2, Link: DefaultLinkConfig()})
	n := v.NumHosts()
	flowID := uint64(0)
	recs := make(map[uint64]*recorder)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			flowID++
			rec := &recorder{}
			recs[flowID] = rec
			v.Hosts[dst].Register(flowID, 0, rec)
			sendPacket(&v.Network, src, dst, uint16(1000+src), 80, flowID, 0)
		}
	}
	eng.Run()
	for id, rec := range recs {
		if len(rec.got) != 1 {
			t.Fatalf("flow %d delivered %d packets", id, len(rec.got))
		}
	}
	for i, h := range v.Hosts {
		if h.Unclaimed != 0 {
			t.Errorf("host %d saw unclaimed packets", i)
		}
	}
}

func TestVL2PathDiversity(t *testing.T) {
	eng := sim.NewEngine()
	v := NewVL2(eng, VL2Config{DA: 4, DI: 4, HostsPerToR: 2, Link: DefaultLinkConfig()})
	// ToR0 homes to aggs {0,1}, ToR2 to aggs {2,3} (disjoint): 16 paths
	// climb to an intermediate (2 agg choices x 4 intermediates x 2
	// descending aggs) and 4 more transit a sibling ToR at equal length
	// (pure shortest-path ECMP does not enforce VL2's up-down rule).
	paths := v.PathCount(0, netem.NodeID(2*2)) // first host of ToR2
	if paths != 20 {
		t.Errorf("disjoint-agg inter-ToR path count = %d, want 20", paths)
	}
	// ToR0 and ToR1 share agg 1: the 2-hop route through it is the
	// unique shortest path.
	if got := v.PathCount(0, netem.NodeID(1*2)); got != 1 {
		t.Errorf("shared-agg path count = %d, want 1", got)
	}
	// Same ToR: single path through the ToR switch.
	if got := v.PathCount(0, 1); got != 1 {
		t.Errorf("same-ToR path count = %d, want 1", got)
	}
}

func TestVL2InvalidConfigs(t *testing.T) {
	cases := []VL2Config{
		{DA: 0, DI: 1, HostsPerToR: 1},
		{DA: 3, DI: 1, HostsPerToR: 1},
		{DA: 2, DI: 0, HostsPerToR: 1},
		{DA: 2, DI: 1, HostsPerToR: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewVL2(sim.NewEngine(), cfg)
		}()
	}
}
