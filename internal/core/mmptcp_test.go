package core

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
)

func fatTree4(eng *sim.Engine) *topology.FatTree {
	return topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig(), Seed: 1})
}

func dialFT(eng *sim.Engine, ft *topology.FatTree, cfg Config, flowID uint64, src, dst int, size int64, seed uint64) *Conn {
	return Dial(eng, cfg, Options{
		SrcHost:   ft.Host(src),
		DstHost:   ft.Host(dst),
		FlowID:    flowID,
		Size:      size,
		PathCount: ft.PathCount(netem.NodeID(src), netem.NodeID(dst)),
		RNG:       sim.NewRNG(seed),
	})
}

func TestShortFlowStaysInPacketScatter(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	// 70 KB < 100 KB threshold: the paper expects short flows to finish
	// entirely inside the PS phase.
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, 70_000, 42)
	var doneAt sim.Time
	conn.Receiver().OnComplete = func() { doneAt = eng.Now() }
	acked := false
	conn.OnAllAcked = func() { acked = true }
	conn.Start()
	eng.Run()

	if !conn.Receiver().Complete() {
		t.Fatal("transfer did not complete")
	}
	if conn.Switched() {
		t.Error("70KB flow switched to MPTCP; must finish in PS phase")
	}
	if conn.MPTCP() != nil {
		t.Error("MPTCP connection created for a PS-only flow")
	}
	if !acked {
		t.Error("OnAllAcked did not fire")
	}
	if conn.Receiver().Delivered() != 70_000 {
		t.Errorf("delivered %d", conn.Receiver().Delivered())
	}
	if doneAt <= 0 {
		t.Error("no FCT recorded")
	}
	// Inter-pod in k=4: 4 paths, so the PS dup-ACK threshold is 4.
	if got := conn.PacketScatter().DupThresh(); got != 4 {
		t.Errorf("PS dup threshold = %d, want 4", got)
	}
}

func TestLongFlowSwitchesAtDataVolume(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	const size = 300_000
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, size, 7)
	switchFired := false
	conn.OnSwitch = func() { switchFired = true }
	acked := false
	conn.OnAllAcked = func() { acked = true }
	conn.Start()
	eng.Run()

	if !conn.Receiver().Complete() {
		t.Fatal("transfer did not complete")
	}
	if !conn.Switched() || !switchFired {
		t.Fatal("300KB flow did not switch to MPTCP")
	}
	if conn.SwitchedAt() <= 0 {
		t.Error("no switch time recorded")
	}
	if conn.MPTCP() == nil {
		t.Fatal("no MPTCP connection after switch")
	}
	if !acked {
		t.Error("OnAllAcked did not fire")
	}
	// The PS phase carried exactly the threshold bytes (no loss here).
	if got := conn.PacketScatter().Granted(); got != 100_000 {
		t.Errorf("PS granted %d bytes, want 100000", got)
	}
	// MPTCP subflows are numbered from 1 (PS holds subflow 0) and
	// carried the remainder.
	mp := conn.MPTCP()
	if got := mp.Stats().BytesSent; got < size-100_000 {
		t.Errorf("MPTCP phase sent %d bytes, want >= %d", got, size-100_000)
	}
	if conn.Receiver().Delivered() != size {
		t.Errorf("delivered %d, want %d", conn.Receiver().Delivered(), size)
	}
}

func TestFlowExactlyAtThresholdDoesNotSwitch(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, 100_000, 3)
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	if conn.Switched() {
		t.Error("flow of exactly SwitchBytes switched; nothing remained to hand over")
	}
}

func TestUnboundedFlowSwitchesAndKeepsDelivering(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, -1, 11)
	conn.Start()
	eng.RunUntil(500 * sim.Millisecond)
	if !conn.Switched() {
		t.Fatal("unbounded flow never switched")
	}
	d1 := conn.Receiver().Delivered()
	if d1 < 100_000 {
		t.Fatalf("delivered only %d in 500ms", d1)
	}
	eng.RunUntil(1000 * sim.Millisecond)
	if conn.Receiver().Delivered() <= d1 {
		t.Fatal("MPTCP phase stalled")
	}
	// PS phase must have drained: it stops at the threshold.
	if got := conn.PacketScatter().Granted(); got != 100_000 {
		t.Errorf("PS granted %d, want exactly the threshold", got)
	}
	if !conn.PacketScatter().Done() {
		t.Error("PS flow still active long after the switch")
	}
}

// dropWire is a programmable middlebox for deterministic loss and
// reordering in congestion-event tests.
type dropWire struct {
	eng  *sim.Engine
	id   netem.NodeID
	out  map[netem.NodeID]*netem.Link
	drop func(p *netem.Packet) bool
}

func (w *dropWire) ID() netem.NodeID { return w.id }
func (w *dropWire) Receive(p *netem.Packet, from *netem.Link) {
	if w.drop != nil && w.drop(p) {
		return
	}
	w.out[p.Dst].Enqueue(p)
}

func newWireNet(eng *sim.Engine) (a, b *netem.Host, w *dropWire) {
	a = netem.NewHost(eng, 0)
	b = netem.NewHost(eng, 1)
	w = &dropWire{eng: eng, id: 2, out: make(map[netem.NodeID]*netem.Link)}
	const rate = 1_000_000_000
	aw := netem.NewLink(eng, a, w, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	bw := netem.NewLink(eng, b, w, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	wa := netem.NewLink(eng, w, a, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	wb := netem.NewLink(eng, w, b, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	a.AttachUplink(aw)
	b.AttachUplink(bw)
	w.out[a.ID()] = wa
	w.out[b.ID()] = wb
	return a, b, w
}

func TestCongestionEventSwitchWire(t *testing.T) {
	eng := sim.NewEngine()
	a, b, w := newWireNet(eng)
	cfg := DefaultConfig()
	cfg.Strategy = SwitchCongestionEvent
	conn := Dial(eng, cfg, Options{
		SrcHost: a, DstHost: b, FlowID: 1, Size: 400_000,
		PathCount: 1, RNG: sim.NewRNG(21),
	})
	dropped := false
	w.drop = func(p *netem.Packet) bool {
		if p.IsData() && p.Subflow == 0 && p.Seq == 14_000 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	if !conn.Switched() {
		t.Fatal("congestion event did not trigger the switch")
	}
	if conn.PacketScatter().Stats.FastRetransmits != 1 {
		t.Errorf("PS fast retransmits = %d, want 1", conn.PacketScatter().Stats.FastRetransmits)
	}
	// The switch happened at the congestion event, so the PS phase
	// carried less than the flow (new data stopped immediately).
	psBytes := conn.PacketScatter().Granted()
	if psBytes >= 400_000 {
		t.Errorf("PS granted %d; the switch should have capped it", psBytes)
	}
	if conn.MPTCP() == nil {
		t.Fatal("no MPTCP phase")
	}
}

func TestCongestionEventNoCongestionNeverSwitches(t *testing.T) {
	eng := sim.NewEngine()
	a, b, _ := newWireNet(eng)
	cfg := DefaultConfig()
	cfg.Strategy = SwitchCongestionEvent
	conn := Dial(eng, cfg, Options{
		SrcHost: a, DstHost: b, FlowID: 1, Size: 400_000,
		PathCount: 1, RNG: sim.NewRNG(5),
	})
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	if conn.Switched() {
		t.Error("lossless congestion-event flow switched")
	}
	if conn.Stats().Timeouts != 0 || conn.Stats().FastRetransmits != 0 {
		t.Error("unexpected congestion on clean path")
	}
}

func TestPSReorderingToleranceEndToEnd(t *testing.T) {
	// Scattered packets over a jittery path: the raised threshold must
	// avoid spurious retransmissions where plain TCP's 3 would not.
	run := func(pathCount int) *Conn {
		eng := sim.NewEngine()
		a, b, w := newWireNet(eng)
		rng := sim.NewRNG(17)
		origOut := w.out[b.ID()]
		cfg := DefaultConfig()
		conn := Dial(eng, cfg, Options{
			SrcHost: a, DstHost: b, FlowID: 1, Size: 70_000,
			PathCount: pathCount, RNG: rng,
		})
		// Delay every 5th data packet by 200us on the wire.
		count := 0
		w.drop = func(p *netem.Packet) bool {
			if p.IsData() {
				count++
				if count%5 == 0 {
					pp := p
					w.eng.Schedule(200*sim.Microsecond, func() { origOut.Enqueue(pp) })
					return true // swallowed here, re-enqueued later
				}
			}
			return false
		}
		conn.Start()
		eng.Run()
		if !conn.Receiver().Complete() {
			t.Fatalf("pathCount=%d: incomplete", pathCount)
		}
		return conn
	}
	standard := run(1)  // dup thresh 3
	tolerant := run(30) // dup thresh 30
	if standard.Stats().Retransmissions == 0 {
		t.Error("expected spurious retransmissions with threshold 3 under reordering")
	}
	if tolerant.Stats().Retransmissions != 0 {
		t.Errorf("raised threshold still produced %d retransmissions",
			tolerant.Stats().Retransmissions)
	}
}

func TestMMPTCPScatterSpreadsOverCoreLinks(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, 70_000, 99)
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	// The PS phase must have used more than one agg-layer link out of
	// pod 0 (a fixed-path TCP flow would use exactly one).
	used := 0
	for _, l := range ft.LinksAtLayer(netem.LayerAgg) {
		if l.Stats.TxPackets > 0 {
			used++
		}
	}
	if used < 4 {
		t.Errorf("scattered flow used %d agg-layer links, want >= 4", used)
	}
}

func TestStrategyString(t *testing.T) {
	if SwitchDataVolume.String() != "data-volume" ||
		SwitchCongestionEvent.String() != "congestion-event" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy renders empty")
	}
}

func TestMMPTCPStatsAggregation(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, 300_000, 31)
	conn.Start()
	eng.Run()
	st := conn.Stats()
	if st.BytesSent < 300_000 {
		t.Errorf("aggregated bytes sent = %d, want >= 300000", st.BytesSent)
	}
	ps := conn.PacketScatter().Stats
	mp := conn.MPTCP().Stats()
	if st.SegmentsSent != ps.SegmentsSent+mp.SegmentsSent {
		t.Error("stats aggregation mismatch")
	}
}

func TestMMPTCPClose(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := dialFT(eng, ft, DefaultConfig(), 1, 0, 15, 300_000, 8)
	conn.Start()
	eng.RunUntil(20 * sim.Millisecond)
	conn.Close()
	eng.Run()
	if conn.Receiver().Complete() {
		t.Error("closed connection completed")
	}
}

var _ tcp.DataSource = (*psSource)(nil)

func TestPSScattersAcrossInterfacesWhenMultiHomed(t *testing.T) {
	eng := sim.NewEngine()
	m := topology.NewMultiHomed(eng, topology.MultiHomedConfig{K: 4, Link: topology.DefaultLinkConfig()})
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: m.Hosts[0], DstHost: m.Hosts[15],
		FlowID: 1, Size: 70_000,
		PathCount: m.PathCount(0, 15), RNG: sim.NewRNG(3),
	})
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	if conn.Switched() {
		t.Fatal("short flow switched")
	}
	// The PS phase alone must have used both NICs.
	for i, up := range m.Hosts[0].Uplinks() {
		if up.Stats.TxPackets == 0 {
			t.Errorf("uplink %d idle during packet scatter", i)
		}
	}
}

func TestAdaptiveThresholdModeEndToEnd(t *testing.T) {
	// The RR-TCP-like mode (§2 approach 2) must converge: the scattered
	// flow's spurious retransmissions raise the threshold until
	// reordering is tolerated, without any topology knowledge.
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	cfg := DefaultConfig()
	cfg.Threshold = ThresholdAdaptive
	// A large PS budget so the scattered phase sees enough reordering.
	cfg.SwitchBytes = 2_000_000
	conn := dialFT(eng, ft, cfg, 1, 0, 15, 2_000_000, 42)
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	ps := conn.PacketScatter()
	if ps.Stats.SpuriousSignals == 0 {
		t.Skip("no reordering observed on this seed; nothing to adapt to")
	}
	if ps.DupThresh() <= cfg.TCP.DupAckThreshold && ps.DupThresh() <= 3 {
		t.Errorf("adaptive threshold never rose: %d", ps.DupThresh())
	}
}

func TestThresholdModeString(t *testing.T) {
	if ThresholdTopology.String() != "topology" || ThresholdAdaptive.String() != "adaptive" {
		t.Error("threshold mode names wrong")
	}
	if ThresholdMode(7).String() == "" {
		t.Error("unknown mode renders empty")
	}
}
