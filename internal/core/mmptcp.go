// Package core implements MMPTCP, the paper's contribution: a hybrid
// data-centre transport that runs in two phases.
//
// Phase one — Packet Scatter (PS) — transmits under a single TCP
// congestion window while randomising the source port of every data
// packet, so hash-based ECMP sprays the flow's packets across all
// available paths. Latency-sensitive short flows are expected to finish
// entirely inside this phase. Out-of-order arrivals are rendered
// harmless by raising the duplicate-ACK threshold using topology
// knowledge (the number of equal-cost paths between the endpoints,
// derivable from FatTree addressing — the paper's proposal (1) in §2).
//
// Phase two begins when a switching strategy fires: the connection opens
// standard MPTCP subflows (with LIA coupled congestion control) for the
// remaining data and stops assigning new data to the PS flow, which
// "is deactivated when its window gets emptied" — it drains and
// retransmits what it was already responsible for, then falls silent.
// Two strategies from §2 are implemented: switching after a configured
// data volume, and switching at the first congestion event.
package core

import (
	"fmt"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Strategy selects when MMPTCP leaves the packet-scatter phase.
type Strategy int

const (
	// SwitchDataVolume switches once SwitchBytes of data have been
	// assigned to the PS flow (§2 "Data Volume"). The paper's early
	// evaluation found this does not hurt long-flow throughput because
	// the MPTCP subflows wrap up access-link capacity within a few RTTs.
	SwitchDataVolume Strategy = iota
	// SwitchCongestionEvent switches when congestion is first inferred,
	// i.e. at the first fast retransmission or RTO (§2 "Congestion
	// Event").
	SwitchCongestionEvent
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SwitchDataVolume:
		return "data-volume"
	case SwitchCongestionEvent:
		return "congestion-event"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ThresholdMode selects how the PS phase obtains its reordering-tolerant
// duplicate-ACK threshold — the paper's §2 approaches (1) and (2).
type ThresholdMode int

const (
	// ThresholdTopology derives the threshold from the number of
	// equal-cost paths between the endpoints, computable from FatTree
	// addressing (approach 1).
	ThresholdTopology ThresholdMode = iota
	// ThresholdAdaptive starts at the standard 3 and raises the
	// threshold on every DSACK-style spurious-retransmission signal,
	// like RR-TCP (approach 2).
	ThresholdAdaptive
	// ThresholdStandard keeps the plain-TCP threshold of 3 — the
	// strawman the paper's §2 mechanisms exist to beat (scattering
	// with threshold 3 misreads reordering as loss).
	ThresholdStandard
)

// String names the mode.
func (m ThresholdMode) String() string {
	switch m {
	case ThresholdTopology:
		return "topology"
	case ThresholdAdaptive:
		return "adaptive"
	case ThresholdStandard:
		return "standard"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parametrises MMPTCP connections.
type Config struct {
	TCP      tcp.Config
	Subflows int // MPTCP-phase subflows; default 8 (the paper's setting)

	Strategy Strategy
	// SwitchBytes is the data-volume threshold; default 100 KB, chosen
	// so the paper's 70 KB short flows complete inside the PS phase.
	SwitchBytes int64

	// Threshold selects between the topology-derived and the adaptive
	// (RR-TCP-like) duplicate-ACK threshold for the PS phase.
	Threshold ThresholdMode

	// DupThreshFor maps the number of equal-cost paths between the
	// endpoints to the PS-phase duplicate-ACK threshold. The default is
	// max(3, paths): with paths ways for packets to overtake each
	// other, fewer than that many duplicate ACKs is not evidence of
	// loss. The MPTCP phase always uses the standard threshold of 3.
	DupThreshFor func(paths int) int

	// JoinDelay staggers MPTCP-phase subflow starts (0 = simultaneous).
	JoinDelay sim.Time

	// SACK enables selective-acknowledgement recovery in both phases.
	SACK bool

	// DeadRTOs / RedialBackoff / RedialBudget arm subflow re-dialing in
	// the MPTCP phase (passed through to mptcp.Config; see its docs).
	// The PS phase never re-dials: its per-packet scatter ports already
	// re-hash every transmission across the ECMP paths.
	DeadRTOs      int
	RedialBackoff sim.Time
	RedialBudget  int

	// DeferPhaseSwitch holds the packet-scatter→subflow switch open
	// while the routing control plane reports an unconverged state
	// (Options.Observer), so fresh subflows are not pinned onto tables
	// that are mid-flip. The switch is forced after MaxDefer regardless
	// (default 50ms), bounding how long a flow can stay in PS.
	DeferPhaseSwitch bool
	MaxDefer         sim.Time
}

// ConvergenceObserver is the routing-state signal the phase switch
// consults; *routing.ControlPlane satisfies it. Declared locally so the
// transport does not import the control plane.
type ConvergenceObserver interface {
	ConvergenceOpen() bool
}

// DefaultConfig returns the paper's MMPTCP configuration.
func DefaultConfig() Config {
	return Config{
		TCP:         tcp.DefaultConfig(),
		Subflows:    8,
		Strategy:    SwitchDataVolume,
		SwitchBytes: 100_000,
	}
}

func (c *Config) applyDefaults() {
	if c.Subflows == 0 {
		c.Subflows = 8
	}
	if c.SwitchBytes == 0 {
		c.SwitchBytes = 100_000
	}
	if c.DupThreshFor == nil {
		c.DupThreshFor = func(paths int) int {
			if paths < 3 {
				return 3
			}
			return paths
		}
	}
	if c.DeferPhaseSwitch && c.MaxDefer == 0 {
		c.MaxDefer = 50 * sim.Millisecond
	}
}

// Options identifies a connection's endpoints.
type Options struct {
	SrcHost *netem.Host
	DstHost *netem.Host
	FlowID  uint64
	Size    int64 // total bytes; -1 for unbounded background flows
	// PathCount is the number of equal-cost paths between the hosts,
	// from the topology's oracle (FatTree addressing in the paper).
	PathCount int
	DstPort   uint16   // default 80
	RNG       *sim.RNG // required: port randomisation
	// Recorder, when non-nil, traces both phases (PS sender, MPTCP
	// subflows) and the phase-switch instant.
	Recorder *trace.Recorder
	// Observer, when non-nil with Config.DeferPhaseSwitch, supplies the
	// open-convergence signal the phase switch waits out.
	Observer ConvergenceObserver
}

// Conn is an MMPTCP connection: a packet-scatter sender, a shared
// receiver, and an MPTCP connection created at phase switch.
type Conn struct {
	eng sim.EventScheduler // the source host's engine: sender-side scheduling
	cfg Config
	opt Options

	rcv   *tcp.Receiver
	ps    *tcp.Sender
	psSrc *psSource
	mp    *mptcp.Connection // nil until the phase switch

	switched   bool
	switchedAt sim.Time

	// Phase-switch deferral state (DeferPhaseSwitch): deferring marks
	// an open deferral episode anchored at deferStart, deferrals counts
	// postponements, pollArmed dedups the re-check events.
	deferring  bool
	deferStart sim.Time
	deferrals  int
	pollArmed  bool

	psDone bool
	mpDone bool
	closed bool

	// OnAllAcked fires once when both phases have delivered and had
	// acknowledged all of their data.
	OnAllAcked func()
	// OnSwitch fires when the connection enters the MPTCP phase.
	OnSwitch func()
}

// Dial creates the connection (idle until Start). Each endpoint binds to
// its own host's engine — the receiver to the destination's, the senders
// to the source's — which is the same engine sequentially and the owning
// shards' engines under a sharded fabric; eng is accepted for
// compatibility.
func Dial(eng sim.EventScheduler, cfg Config, opt Options) *Conn {
	cfg.applyDefaults()
	if opt.RNG == nil {
		panic("core: Options.RNG is required")
	}
	if opt.DstPort == 0 {
		opt.DstPort = 80
	}
	if opt.PathCount <= 0 {
		opt.PathCount = 1
	}
	_ = eng
	c := &Conn{eng: opt.SrcHost.Engine(), cfg: cfg, opt: opt}
	c.rcv = tcp.NewReceiver(opt.DstHost.Engine(), cfg.TCP, opt.DstHost, opt.FlowID, opt.Size)

	cap := int64(-1)
	if cfg.Strategy == SwitchDataVolume {
		cap = cfg.SwitchBytes
	}
	c.psSrc = &psSource{size: opt.Size, cap: cap}

	rng := opt.RNG
	// On multi-homed hosts the scatter phase sprays across every NIC
	// too: the paper's roadmap argues access-layer path diversity
	// raises burst tolerance.
	var ifacePicker func() int
	if n := len(opt.SrcHost.Uplinks()); n > 1 {
		ifacePicker = func() int { return rng.Intn(n) }
	}
	psOpts := tcp.SenderOptions{
		Host:    opt.SrcHost,
		Dst:     opt.DstHost.ID(),
		FlowID:  opt.FlowID,
		Subflow: 0,
		SrcPort: uint16(10000 + rng.Intn(50000)),
		DstPort: opt.DstPort,
		Source:  c.psSrc,
		// The PS phase runs a single plain-TCP window; only the
		// duplicate-ACK threshold and per-packet ports differ.
		DupThresh:    cfg.DupThreshFor(opt.PathCount),
		ScatterPorts: func() uint16 { return uint16(1024 + rng.Intn(64000)) },
		IfacePicker:  ifacePicker,
		EnableSACK:   cfg.SACK,
		Recorder:     opt.Recorder,
	}
	switch cfg.Threshold {
	case ThresholdAdaptive:
		// RR-TCP-like: start at the standard threshold and learn from
		// spurious-retransmission signals.
		psOpts.DupThresh = cfg.TCP.DupAckThreshold
		psOpts.AdaptiveDupThresh = true
	case ThresholdStandard:
		psOpts.DupThresh = cfg.TCP.DupAckThreshold
	}
	c.ps = tcp.NewSender(opt.SrcHost.Engine(), cfg.TCP, psOpts)
	c.ps.OnAllAcked = func() {
		c.psDone = true
		c.checkDone()
	}
	c.psSrc.onExhausted = c.maybeSwitch
	if cfg.Strategy == SwitchCongestionEvent {
		c.ps.OnCongestionEvent = func() {
			if !c.switched {
				c.psSrc.capNow()
				c.maybeSwitch()
			}
		}
	}
	return c
}

// Start begins the packet-scatter phase.
func (c *Conn) Start() { c.ps.Start() }

// Receiver returns the connection's receive endpoint.
func (c *Conn) Receiver() *tcp.Receiver { return c.rcv }

// PacketScatter returns the PS-phase sender (subflow 0).
func (c *Conn) PacketScatter() *tcp.Sender { return c.ps }

// MPTCP returns the phase-two connection, or nil before the switch.
func (c *Conn) MPTCP() *mptcp.Connection { return c.mp }

// Switched reports whether the connection has entered the MPTCP phase.
func (c *Conn) Switched() bool { return c.switched }

// SwitchedAt returns the phase-switch time (0 if it never happened).
func (c *Conn) SwitchedAt() sim.Time { return c.switchedAt }

// Deferrals returns how many times the phase switch was postponed
// waiting for routing convergence.
func (c *Conn) Deferrals() int { return c.deferrals }

// RedialStats reports MPTCP-phase re-dial attempts and recoveries
// (zero before the phase switch).
func (c *Conn) RedialStats() (redials, recovered int) {
	if c.mp == nil {
		return 0, 0
	}
	return c.mp.RedialStats()
}

// Stats aggregates sender statistics over both phases.
func (c *Conn) Stats() tcp.SenderStats {
	agg := c.ps.Stats
	if c.mp != nil {
		m := c.mp.Stats()
		agg.SegmentsSent += m.SegmentsSent
		agg.BytesSent += m.BytesSent
		agg.Retransmissions += m.Retransmissions
		agg.FastRetransmits += m.FastRetransmits
		agg.Timeouts += m.Timeouts
		agg.AcksReceived += m.AcksReceived
		agg.DupAcksReceived += m.DupAcksReceived
	}
	return agg
}

// maybeSwitch enters the MPTCP phase if data remains beyond what the PS
// phase was allowed to carry. It is invoked when the PS source caps out
// (data-volume) or at the first congestion event.
func (c *Conn) maybeSwitch() {
	if c.switched || c.closed {
		return
	}
	handover := c.psSrc.allocated
	if c.opt.Size >= 0 && handover >= c.opt.Size {
		return // the whole flow fit in the PS phase
	}
	if c.cfg.DeferPhaseSwitch && c.opt.Observer != nil && c.opt.Observer.ConvergenceOpen() {
		now := c.eng.Now()
		if !c.deferring {
			c.deferring = true
			c.deferStart = now
		}
		if now-c.deferStart < c.cfg.MaxDefer {
			// Convergence window still open and the deferral bound not
			// yet reached: postpone, and poll again soon. The re-check
			// interval never overshoots deferStart+MaxDefer, so the
			// forced switch lands exactly at the bound under sustained
			// churn.
			c.deferrals++
			if c.opt.Recorder != nil {
				c.opt.Recorder.Record(now, trace.KindPhaseDefer, c.opt.FlowID, 0,
					int32(c.opt.SrcHost.ID()), int32(c.opt.DstHost.ID()),
					int64(c.deferrals), 0)
			}
			if !c.pollArmed {
				c.pollArmed = true
				interval := c.cfg.MaxDefer / 8
				if interval < sim.Millisecond {
					interval = sim.Millisecond
				}
				if rem := c.deferStart + c.cfg.MaxDefer - now; interval > rem {
					interval = rem
				}
				c.eng.Schedule(interval, func() {
					c.pollArmed = false
					c.maybeSwitch()
				})
			}
			return
		}
		// MaxDefer elapsed with churn still in progress: switch anyway.
		if c.opt.Recorder != nil {
			c.opt.Recorder.Record(now, trace.KindPhaseDefer, c.opt.FlowID, 0,
				int32(c.opt.SrcHost.ID()), int32(c.opt.DstHost.ID()),
				int64(c.deferrals), 1)
		}
	}
	c.switched = true
	c.switchedAt = c.eng.Now()
	if c.opt.Recorder != nil {
		c.opt.Recorder.Record(c.switchedAt, trace.KindPhaseSwitch, c.opt.FlowID, 0,
			int32(c.opt.SrcHost.ID()), int32(c.opt.DstHost.ID()),
			handover, int64(c.cfg.Subflows))
	}
	c.mp = mptcp.Dial(c.eng, mptcp.Config{
		TCP:           c.cfg.TCP,
		Subflows:      c.cfg.Subflows,
		JoinDelay:     c.cfg.JoinDelay,
		SACK:          c.cfg.SACK,
		DeadRTOs:      c.cfg.DeadRTOs,
		RedialBackoff: c.cfg.RedialBackoff,
		RedialBudget:  c.cfg.RedialBudget,
	}, mptcp.Options{
		SrcHost:     c.opt.SrcHost,
		DstHost:     c.opt.DstHost,
		FlowID:      c.opt.FlowID,
		Size:        c.opt.Size,
		DataStart:   handover,
		SubflowBase: 1, // subflow 0 is the PS flow
		DstPort:     c.opt.DstPort,
		RNG:         c.opt.RNG,
		Receiver:    c.rcv,
		Recorder:    c.opt.Recorder,
	})
	c.mp.OnAllAcked = func() {
		c.mpDone = true
		c.checkDone()
	}
	// Defer the actual start to a fresh event: maybeSwitch can be
	// reached from inside the PS sender's transmission loop, and the
	// new subflows' sends must not interleave with it re-entrantly.
	c.eng.Schedule(0, c.mp.Start)
	if c.OnSwitch != nil {
		c.OnSwitch()
	}
}

func (c *Conn) checkDone() {
	if c.closed || !c.psDone {
		return
	}
	if c.switched && !c.mpDone {
		return
	}
	if c.OnAllAcked != nil {
		done := c.OnAllAcked
		c.OnAllAcked = nil
		done()
	}
}

// Close tears down both phases.
func (c *Conn) Close() {
	c.closed = true
	c.ps.Close()
	if c.mp != nil {
		c.mp.Close()
	}
	c.rcv.Close()
}

// psSource feeds the packet-scatter sender: the identity mapping over
// [0, min(size, cap)), where cap is the data-volume threshold (or is
// imposed at the first congestion event). When the source caps out with
// data remaining it reports exhaustion to the sender — which then only
// drains its window — and notifies the connection to switch phases.
type psSource struct {
	size      int64 // flow size; -1 unbounded
	cap       int64 // PS-phase byte budget; -1 unbounded (congestion-event strategy)
	allocated int64

	onExhausted func()
	notified    bool
}

// Next implements tcp.DataSource.
func (p *psSource) Next(maxBytes int) (int64, int, bool) {
	limit := p.limit()
	if limit >= 0 && p.allocated >= limit {
		p.notify()
		return p.allocated, 0, true
	}
	n := int64(maxBytes)
	if limit >= 0 && p.allocated+n > limit {
		n = limit - p.allocated
	}
	seq := p.allocated
	p.allocated += n
	exhausted := limit >= 0 && p.allocated >= limit
	if exhausted {
		p.notify()
	}
	return seq, int(n), exhausted
}

// limit returns the effective PS byte budget (-1 for unlimited).
func (p *psSource) limit() int64 {
	switch {
	case p.size < 0:
		return p.cap
	case p.cap < 0:
		return p.size
	case p.cap < p.size:
		return p.cap
	default:
		return p.size
	}
}

// capNow freezes the budget at what has already been allocated (the
// congestion-event switch: no new data enters the PS flow).
func (p *psSource) capNow() {
	p.cap = p.allocated
	p.notify()
}

func (p *psSource) notify() {
	if p.notified || p.onExhausted == nil {
		return
	}
	p.notified = true
	p.onExhausted()
}
