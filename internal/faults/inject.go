package faults

import (
	"repro/internal/netem"
	"repro/internal/sim"
)

// Injector owns a resolved, scheduled fault plan for one run. Install
// builds it from a Config and the network's links, registers every
// mutation on the engine, and the plan then replays itself as the clock
// advances — the run needs no further involvement.
type Injector struct {
	eng        *sim.Engine
	reconverge sim.Time

	// Events is the resolved schedule (explicit plus sampled), in firing
	// order, for reporting and debugging.
	Events []Event

	// Overlap counters. A link can be failed by several sources at once
	// (an explicit schedule plus a sampled model); outages must union,
	// not last-event-wins, or an early repair from one source would
	// silently cut short another source's outage. dataDown drives
	// Link.SetDown, routeDown drives Link.SetRouteDead (reconvergence
	// delayed); each link changes state only on 0<->1 transitions.
	dataDown  map[*netem.Link]int
	routeDown map[*netem.Link]int
}

// failLink registers one more failure source on l, taking the link down
// on the first.
func (inj *Injector) failLink(l *netem.Link) {
	inj.dataDown[l]++
	if inj.dataDown[l] == 1 {
		l.SetDown(true)
	}
}

// repairLink removes one failure source from l, bringing the link up
// when the last is gone. Unmatched repairs (a LinkUp with no prior
// LinkDown) are no-ops.
func (inj *Injector) repairLink(l *netem.Link) {
	if inj.dataDown[l] == 0 {
		return
	}
	inj.dataDown[l]--
	if inj.dataDown[l] == 0 {
		l.SetDown(false)
	}
}

// deadenRoute / reviveRoute are the routing-plane twins of
// failLink/repairLink, invoked reconvergence-delayed.
func (inj *Injector) deadenRoute(l *netem.Link) {
	inj.routeDown[l]++
	if inj.routeDown[l] == 1 {
		l.SetRouteDead(true)
	}
}

func (inj *Injector) reviveRoute(l *netem.Link) {
	if inj.routeDown[l] == 0 {
		return
	}
	inj.routeDown[l]--
	if inj.routeDown[l] == 0 {
		l.SetRouteDead(false)
	}
}

// Install resolves cfg against the given links (grouped by their layer,
// in slice order — builders append them deterministically), samples the
// model if present using rng, validates everything, and schedules the
// mutations on eng. horizon bounds model sampling (typically the run's
// MaxSimTime). rng is only consumed when the config needs randomness
// (model sampling, loss injection), always in a fixed order.
func Install(eng *sim.Engine, links []*netem.Link, cfg Config, rng *sim.RNG, horizon sim.Time) (*Injector, error) {
	byLayer := make(map[netem.Layer][]*netem.Link)
	for _, l := range links {
		byLayer[l.Layer()] = append(byLayer[l.Layer()], l)
	}
	linksAt := func(layer netem.Layer) int { return len(byLayer[layer]) }

	events := append([]Event(nil), cfg.Events...)
	if len(cfg.Model.Layers) > 0 {
		sampled, err := cfg.Model.Sample(rng.Split(), func(layer netem.Layer) int {
			return len(byLayer[layer]) / 2
		}, horizon)
		if err != nil {
			return nil, err
		}
		events = append(events, sampled...)
	}
	if err := validate(events, linksAt); err != nil {
		return nil, err
	}
	sortEvents(events)

	inj := &Injector{
		eng:        eng,
		reconverge: cfg.ReconvergeDelay,
		Events:     events,
		dataDown:   make(map[*netem.Link]int),
		routeDown:  make(map[*netem.Link]int),
	}
	for _, ev := range events {
		ev := ev
		targets := byLayer[ev.Layer]
		if ev.Index >= 0 {
			targets = targets[ev.Index : ev.Index+1]
		}
		// Loss injection needs an RNG per event; split it now so RNG
		// consumption is fixed at install time regardless of when (or
		// whether) the event fires before the run ends.
		var lossRNG *sim.RNG
		if ev.Kind == Degrade && ev.LossRate > 0 {
			lossRNG = rng.Split()
		}
		targets2 := targets
		eng.At(ev.At, func() { inj.apply(ev, targets2, lossRNG) })
	}
	return inj, nil
}

// apply executes one event against its resolved target links.
func (inj *Injector) apply(ev Event, targets []*netem.Link, lossRNG *sim.RNG) {
	for _, l := range targets {
		l := l
		switch ev.Kind {
		case LinkDown:
			inj.failLink(l)
			// The blackhole window: data keeps dying on the link until
			// routing notices, reconverge later.
			if inj.reconverge > 0 {
				inj.eng.Schedule(inj.reconverge, func() { inj.deadenRoute(l) })
			} else {
				inj.deadenRoute(l)
			}
		case LinkUp:
			inj.repairLink(l)
			// Repair is symmetric: the link carries traffic the instant
			// it is up, but ECMP only re-admits it after reconvergence.
			if inj.reconverge > 0 {
				inj.eng.Schedule(inj.reconverge, func() { inj.reviveRoute(l) })
			} else {
				inj.reviveRoute(l)
			}
		case Degrade:
			if ev.CapacityFactor != 0 {
				l.SetRateFactor(ev.CapacityFactor)
			}
			if ev.ExtraDelay != 0 {
				l.SetExtraDelay(ev.ExtraDelay)
			}
			if ev.LossRate != 0 {
				l.SetLossRate(ev.LossRate, lossRNG)
			}
		case Restore:
			l.SetRateFactor(1)
			l.SetExtraDelay(0)
			l.SetLossRate(0, nil)
		}
	}
}
