package faults

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Target is the injectable view of a built network: every unidirectional
// link, every switch, and each switch's tier (the layer of its uplinks),
// all in builder order. topology.Network exposes exactly these slices;
// keeping the coupling to three fields lets the injector drive hand-built
// networks in tests too.
type Target struct {
	Links    []*netem.Link
	Switches []*netem.Switch
	// SwitchLayers tiers Switches (parallel slices) for the sampled
	// switch-failure model. May be nil when no SwitchModel is used.
	SwitchLayers []netem.Layer
}

// Injector owns a resolved, scheduled fault plan for one run. Install
// builds it from a Config and the network's links, registers every
// mutation on the engine, and the plan then replays itself as the clock
// advances — the run needs no further involvement.
type Injector struct {
	eng        *sim.Engine
	reconverge sim.Time

	// Events is the resolved schedule (explicit plus sampled), in firing
	// order, for reporting and debugging.
	Events []Event

	// OnRouteChange, when set, fires after every routing-visible link
	// transition (a link becoming route-dead or route-live, i.e. after
	// the reconvergence delay), with the transitioned link — its new
	// state already applied. The global routing control plane hooks
	// this to trigger a coalesced, transition-scoped table recompute;
	// the default local behaviour needs no notification because routers
	// filter route-dead links on every lookup.
	OnRouteChange func(*netem.Link)

	// Overlap counters. A link can be failed by several sources at once
	// (an explicit schedule plus a sampled model); outages must union,
	// not last-event-wins, or an early repair from one source would
	// silently cut short another source's outage. dataDown drives
	// Link.SetDown, routeDown drives Link.SetRouteDead (reconvergence
	// delayed); each link changes state only on 0<->1 transitions.
	dataDown  map[*netem.Link]int
	routeDown map[*netem.Link]int
	// switchDown refcounts crash sources per switch ordinal, and
	// switchCrashes accounts how many crashes each switch suffered.
	switchDown    map[int]int
	switchCrashes map[int]int

	// switches and switchPorts resolve switch ordinals to the switch and
	// its incident links (both directions of every port).
	switches    []*netem.Switch
	switchPorts map[int][]*netem.Link

	// routeDeadLinks counts links currently excluded by routing; the
	// topology's live path-count oracle polls it through Degraded.
	routeDeadLinks int

	// rec, when non-nil, receives structured trace events for every
	// applied fault mutation; nil-guarded at each trace point.
	rec *trace.Recorder
}

// SetRecorder installs (or, with nil, removes) the structured event
// recorder. The run harness calls this right after Install.
func (inj *Injector) SetRecorder(r *trace.Recorder) { inj.rec = r }

// Degraded reports whether any link is currently excluded from routing.
// While true, path counts must be derived from the live routing DAG
// rather than the static topology formula.
func (inj *Injector) Degraded() bool { return inj.routeDeadLinks > 0 }

// RouteDeadLinks returns how many links routing currently excludes.
func (inj *Injector) RouteDeadLinks() int { return inj.routeDeadLinks }

// CrashesBySwitch returns per-switch crash counts keyed by switch
// ordinal (only switches that crashed at least once appear).
func (inj *Injector) CrashesBySwitch() map[int]int {
	out := make(map[int]int, len(inj.switchCrashes))
	for s, n := range inj.switchCrashes {
		out[s] = n
	}
	return out
}

// failLink registers one more failure source on l, taking the link down
// on the first.
func (inj *Injector) failLink(l *netem.Link) {
	inj.dataDown[l]++
	if inj.dataDown[l] == 1 {
		l.SetDown(true)
	}
}

// repairLink removes one failure source from l, bringing the link up
// when the last is gone. Unmatched repairs (a LinkUp with no prior
// LinkDown) are no-ops.
func (inj *Injector) repairLink(l *netem.Link) {
	if inj.dataDown[l] == 0 {
		return
	}
	inj.dataDown[l]--
	if inj.dataDown[l] == 0 {
		l.SetDown(false)
	}
}

// deadenRoute / reviveRoute are the routing-plane twins of
// failLink/repairLink, invoked reconvergence-delayed.
func (inj *Injector) deadenRoute(l *netem.Link) {
	inj.routeDown[l]++
	if inj.routeDown[l] == 1 {
		l.SetRouteDead(true)
		inj.routeDeadLinks++
		if inj.OnRouteChange != nil {
			inj.OnRouteChange(l)
		}
	}
}

func (inj *Injector) reviveRoute(l *netem.Link) {
	if inj.routeDown[l] == 0 {
		return
	}
	inj.routeDown[l]--
	if inj.routeDown[l] == 0 {
		l.SetRouteDead(false)
		inj.routeDeadLinks--
		if inj.OnRouteChange != nil {
			inj.OnRouteChange(l)
		}
	}
}

// crashSwitch registers one more crash source on switch ordinal s,
// taking the switch (and all its ports) down on the first.
func (inj *Injector) crashSwitch(s int) {
	inj.switchDown[s]++
	if inj.switchDown[s] > 1 {
		return
	}
	inj.switchCrashes[s]++
	inj.switches[s].SetDown(true)
	for _, l := range inj.switchPorts[s] {
		inj.failLink(l)
		inj.scheduleRouteChange(l, true)
	}
}

// restartSwitch removes one crash source from switch ordinal s, bringing
// it back up when the last is gone. Unmatched restarts are no-ops.
func (inj *Injector) restartSwitch(s int) {
	if inj.switchDown[s] == 0 {
		return
	}
	inj.switchDown[s]--
	if inj.switchDown[s] > 0 {
		return
	}
	inj.switches[s].SetDown(false)
	for _, l := range inj.switchPorts[s] {
		inj.repairLink(l)
		inj.scheduleRouteChange(l, false)
	}
}

// scheduleRouteChange applies the routing-plane side of a link state
// change after the reconvergence delay (immediately when the delay is
// zero).
func (inj *Injector) scheduleRouteChange(l *netem.Link, dead bool) {
	fn := inj.reviveRoute
	if dead {
		fn = inj.deadenRoute
	}
	if inj.reconverge > 0 {
		inj.eng.Schedule(inj.reconverge, func() { fn(l) })
		return
	}
	fn(l)
}

// Install resolves cfg against the target network (links grouped by
// their layer, switches by ordinal — builders order both
// deterministically), samples the model if present using rng, validates
// everything, and schedules the mutations on eng. horizon bounds model
// sampling (typically the run's MaxSimTime). rng is only consumed when
// the config needs randomness (model sampling, loss injection), always
// in a fixed order.
func Install(eng *sim.Engine, target Target, cfg Config, rng *sim.RNG, horizon sim.Time) (*Injector, error) {
	if cfg.ReconvergeDelay < 0 {
		// A negative delay would schedule the routing-plane transition
		// before the data-plane event that caused it; reject it loudly
		// instead of letting the engine clamp it somewhere surprising.
		return nil, fmt.Errorf("faults: negative ReconvergeDelay %v", cfg.ReconvergeDelay)
	}
	byLayer := make(map[netem.Layer][]*netem.Link)
	for _, l := range target.Links {
		byLayer[l.Layer()] = append(byLayer[l.Layer()], l)
	}
	linksAt := func(layer netem.Layer) int { return len(byLayer[layer]) }

	events := append([]Event(nil), cfg.Events...)
	if cfg.Model.active() {
		sampled, err := cfg.Model.Sample(rng.Split(), func(layer netem.Layer) int {
			return len(byLayer[layer]) / 2
		}, func(layer netem.Layer) []int {
			var ords []int
			for i, tier := range target.SwitchLayers {
				if tier == layer {
					ords = append(ords, i)
				}
			}
			return ords
		}, horizon)
		if err != nil {
			return nil, err
		}
		events = append(events, sampled...)
	}
	if err := validate(events, linksAt, len(target.Switches)); err != nil {
		return nil, err
	}
	sortEvents(events)

	inj := &Injector{
		eng:           eng,
		reconverge:    cfg.ReconvergeDelay,
		Events:        events,
		dataDown:      make(map[*netem.Link]int),
		routeDown:     make(map[*netem.Link]int),
		switchDown:    make(map[int]int),
		switchCrashes: make(map[int]int),
		switches:      target.Switches,
	}

	// Resolve switch ordinals to incident links once, and only if any
	// event needs it.
	needPorts := false
	for _, ev := range events {
		if ev.Kind == SwitchDown || ev.Kind == SwitchUp {
			needPorts = true
			break
		}
	}
	if needPorts {
		ordOf := make(map[netem.NodeID]int, len(target.Switches))
		for i, sw := range target.Switches {
			ordOf[sw.ID()] = i
		}
		inj.switchPorts = make(map[int][]*netem.Link)
		for _, l := range target.Links {
			if s, ok := ordOf[l.Src().ID()]; ok {
				inj.switchPorts[s] = append(inj.switchPorts[s], l)
			}
			if s, ok := ordOf[l.Dst().ID()]; ok {
				inj.switchPorts[s] = append(inj.switchPorts[s], l)
			}
		}
	}

	for _, ev := range events {
		ev := ev
		var targets []*netem.Link
		var switchOrds []int
		switch ev.Kind {
		case SwitchDown, SwitchUp:
			if ev.Index >= 0 {
				switchOrds = []int{ev.Index}
			} else {
				switchOrds = make([]int, len(target.Switches))
				for i := range switchOrds {
					switchOrds[i] = i
				}
			}
		default:
			targets = byLayer[ev.Layer]
			if ev.Index >= 0 {
				targets = targets[ev.Index : ev.Index+1]
			}
		}
		// Loss injection needs an RNG per event; split it now so RNG
		// consumption is fixed at install time regardless of when (or
		// whether) the event fires before the run ends.
		var lossRNG *sim.RNG
		if ev.Kind == Degrade && ev.LossRate > 0 {
			lossRNG = rng.Split()
		}
		targets2, ords2 := targets, switchOrds
		eng.At(ev.At, func() { inj.apply(ev, targets2, ords2, lossRNG) })
	}
	return inj, nil
}

// apply executes one event against its resolved target links or switch
// ordinals.
func (inj *Injector) apply(ev Event, targets []*netem.Link, switchOrds []int, lossRNG *sim.RNG) {
	// Repairs (up/restore) trace as fault-repair, everything else as
	// fault-inject, with the fault kind in the payload.
	traceKind := trace.KindFaultInject
	switch ev.Kind {
	case LinkUp, Restore, SwitchUp:
		traceKind = trace.KindFaultRepair
	}
	for _, s := range switchOrds {
		if inj.rec != nil {
			inj.rec.Record(inj.eng.Now(), traceKind, 0, -1,
				int32(inj.switches[s].ID()), -1, int64(ev.Kind), 0)
		}
		switch ev.Kind {
		case SwitchDown:
			inj.crashSwitch(s)
		case SwitchUp:
			inj.restartSwitch(s)
		}
	}
	for _, l := range targets {
		l := l
		if inj.rec != nil {
			inj.rec.Record(inj.eng.Now(), traceKind, 0, -1,
				int32(l.Src().ID()), int32(l.Dst().ID()), int64(ev.Kind), 0)
		}
		switch ev.Kind {
		case LinkDown:
			inj.failLink(l)
			// The blackhole window: data keeps dying on the link until
			// routing notices, reconverge later.
			inj.scheduleRouteChange(l, true)
		case LinkUp:
			inj.repairLink(l)
			// Repair is symmetric: the link carries traffic the instant
			// it is up, but ECMP only re-admits it after reconvergence.
			inj.scheduleRouteChange(l, false)
		case Degrade:
			if ev.CapacityFactor != 0 {
				l.SetRateFactor(ev.CapacityFactor)
			}
			if ev.ExtraDelay != 0 {
				l.SetExtraDelay(ev.ExtraDelay)
			}
			if ev.LossRate != 0 {
				l.SetLossRate(ev.LossRate, lossRNG)
			}
		case Restore:
			l.SetRateFactor(1)
			l.SetExtraDelay(0)
			l.SetLossRate(0, nil)
		}
	}
}
