package faults

import (
	"reflect"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// buildNet returns a small FatTree for injector tests.
func buildNet(eng *sim.Engine) *topology.Network {
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	return &ft.Network
}

// target adapts a built network to the injector's view.
func target(net *topology.Network) Target {
	return Target{Links: net.Links, Switches: net.Switches, SwitchLayers: net.SwitchLayers}
}

func TestFailCablesShape(t *testing.T) {
	evs := FailCables(netem.LayerAgg, 2, 10*sim.Millisecond, 50*sim.Millisecond)
	if len(evs) != 8 { // 2 cables x 2 directions x (down + up)
		t.Fatalf("events = %d, want 8", len(evs))
	}
	wantIdx := map[int]bool{0: true, 1: true, 2: true, 3: true}
	downs, ups := 0, 0
	for _, ev := range evs {
		if ev.Layer != netem.LayerAgg {
			t.Errorf("event layer %v", ev.Layer)
		}
		if !wantIdx[ev.Index] {
			t.Errorf("unexpected link index %d", ev.Index)
		}
		switch ev.Kind {
		case LinkDown:
			downs++
			if ev.At != 10*sim.Millisecond {
				t.Errorf("down at %v", ev.At)
			}
		case LinkUp:
			ups++
			if ev.At != 50*sim.Millisecond {
				t.Errorf("up at %v", ev.At)
			}
		}
	}
	if downs != 4 || ups != 4 {
		t.Errorf("downs=%d ups=%d, want 4/4", downs, ups)
	}
	// upAt == 0: no repairs.
	if evs := FailCables(netem.LayerAgg, 1, sim.Millisecond, 0); len(evs) != 2 {
		t.Errorf("unrepaired events = %d, want 2", len(evs))
	}
}

func TestDegradeCablesShape(t *testing.T) {
	evs := DegradeCables(netem.LayerEdge, 1, sim.Millisecond, 2*sim.Millisecond, 0.5, 10*sim.Microsecond, 0.01)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	if evs[0].Kind != Degrade || evs[0].CapacityFactor != 0.5 || evs[0].LossRate != 0.01 {
		t.Errorf("bad degrade event %+v", evs[0])
	}
	if evs[2].Kind != Restore || evs[3].Kind != Restore {
		t.Error("missing restore events")
	}
}

func TestInstallValidation(t *testing.T) {
	bad := []Config{
		{Events: []Event{{At: -1, Kind: LinkDown, Layer: netem.LayerAgg, Index: 0}}},
		{Events: []Event{{Kind: LinkDown, Layer: netem.LayerCore, Index: 0}}},     // FatTree has no LayerCore links
		{Events: []Event{{Kind: LinkDown, Layer: netem.LayerAgg, Index: 999999}}}, // out of range
		{Events: []Event{{Kind: LinkDown, Layer: netem.LayerAgg, Index: -2}}},     // below -1
		{Events: []Event{{Kind: Kind(99), Layer: netem.LayerAgg, Index: 0}}},      // unknown kind
		{Events: []Event{{Kind: Degrade, Layer: netem.LayerAgg, Index: 0}}},       // degrades nothing
		{Events: []Event{{Kind: Degrade, Layer: netem.LayerAgg, CapacityFactor: 2}}},
		{Events: []Event{{Kind: Degrade, Layer: netem.LayerAgg, LossRate: 1.5}}},
		{Model: Model{Layers: []LayerModel{{Layer: netem.LayerAgg}}}}, // zero MTBF/MTTR
		{Model: Model{Layers: []LayerModel{{Layer: netem.LayerCore, MTBF: 1, MTTR: 1}}}},
		// A negative reconvergence delay would schedule the routing
		// transition before the failure that caused it.
		{Events: []Event{{Kind: LinkDown, Layer: netem.LayerAgg, Index: 0}}, ReconvergeDelay: -sim.Millisecond},
	}
	for i, cfg := range bad {
		eng := sim.NewEngine()
		net := buildNet(eng)
		if _, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second); err == nil {
			t.Errorf("case %d: Install accepted invalid config", i)
		}
	}
}

func TestInjectorDownUpWithReconvergence(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	agg := net.LinksAtLayer(netem.LayerAgg)
	cfg := Config{
		Events:          FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 30*sim.Millisecond),
		ReconvergeDelay: 5 * sim.Millisecond,
	}
	inj, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Events) != 4 {
		t.Fatalf("resolved events = %d", len(inj.Events))
	}
	type obs struct {
		down, routeDead bool
	}
	at := func(ts sim.Time, want obs) {
		eng.At(ts, func() {
			if agg[0].Down() != want.down || agg[0].RouteDead() != want.routeDead {
				t.Errorf("t=%v: down=%v routeDead=%v, want %+v",
					ts, agg[0].Down(), agg[0].RouteDead(), want)
			}
		})
	}
	at(9*sim.Millisecond, obs{false, false})  // healthy
	at(12*sim.Millisecond, obs{true, false})  // blackhole window
	at(16*sim.Millisecond, obs{true, true})   // reconverged around the corpse
	at(31*sim.Millisecond, obs{false, true})  // repaired, not yet re-admitted
	at(36*sim.Millisecond, obs{false, false}) // fully healed
	eng.Run()
	// Both directions of cable 0 toggled.
	if agg[1].TimeDown(eng.Now()) != 20*sim.Millisecond {
		t.Errorf("reverse direction down for %v, want 20ms", agg[1].TimeDown(eng.Now()))
	}
}

func TestInjectorOverlappingOutagesUnion(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	agg := net.LinksAtLayer(netem.LayerAgg)
	// Two overlapping outages on cable 0: [10ms, 40ms] and [20ms, 60ms].
	// The link must stay down for the union [10ms, 60ms] — the first
	// repair must not cut the second outage short.
	evs := append(
		FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 40*sim.Millisecond),
		FailCables(netem.LayerAgg, 1, 20*sim.Millisecond, 60*sim.Millisecond)...)
	if _, err := Install(eng, target(net), Config{Events: evs, ReconvergeDelay: 5 * sim.Millisecond},
		sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.At(45*sim.Millisecond, func() {
		if !agg[0].Down() {
			t.Error("first repair ended the overlapping second outage early")
		}
		if !agg[0].RouteDead() {
			t.Error("routing re-admitted a link still failed by the second outage")
		}
	})
	eng.At(70*sim.Millisecond, func() {
		if agg[0].Down() || agg[0].RouteDead() {
			t.Error("link still dead after the last repair plus reconvergence")
		}
	})
	eng.Run()
	if got, want := agg[0].TimeDown(eng.Now()), 50*sim.Millisecond; got != want {
		t.Errorf("union down time = %v, want %v", got, want)
	}
	// An unmatched repair on a healthy link is a no-op, not a panic or
	// a negative count.
	eng2 := sim.NewEngine()
	net2 := buildNet(eng2)
	up := []Event{{At: sim.Millisecond, Kind: LinkUp, Layer: netem.LayerAgg, Index: 0}}
	if _, err := Install(eng2, target(net2), Config{Events: up}, sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if net2.LinksAtLayer(netem.LayerAgg)[0].Down() {
		t.Error("unmatched repair failed the link")
	}
}

func TestInjectorInstantReconvergence(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	agg := net.LinksAtLayer(netem.LayerAgg)
	cfg := Config{Events: FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 0)}
	if _, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.At(10*sim.Millisecond+1, func() {
		if !agg[0].Down() || !agg[0].RouteDead() {
			t.Error("instant reconvergence did not exclude the link immediately")
		}
	})
	eng.Run()
}

func TestInjectorLayerWideEvent(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	cfg := Config{Events: []Event{{
		At: sim.Millisecond, Kind: Degrade, Layer: netem.LayerAgg,
		Index: -1, CapacityFactor: 0.25,
	}}}
	if _, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i, l := range net.LinksAtLayer(netem.LayerAgg) {
		if l.Rate() != 25_000_000 {
			t.Fatalf("agg link %d rate %d after layer-wide degrade", i, l.Rate())
		}
	}
	// Other layers untouched.
	for _, l := range net.LinksAtLayer(netem.LayerEdge) {
		if l.Rate() != 100_000_000 {
			t.Fatal("edge link degraded by agg-layer event")
		}
	}
}

func TestInjectorDegradeAndRestore(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	agg := net.LinksAtLayer(netem.LayerAgg)
	evs := DegradeCables(netem.LayerAgg, 1, sim.Millisecond, 5*sim.Millisecond,
		0.5, 100*sim.Microsecond, 0.25)
	if _, err := Install(eng, target(net), Config{Events: evs}, sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.At(2*sim.Millisecond, func() {
		if agg[0].Rate() != 50_000_000 {
			t.Errorf("degraded rate = %d", agg[0].Rate())
		}
		if agg[0].PropDelay() != topology.DefaultLinkConfig().Delay+100*sim.Microsecond {
			t.Errorf("degraded delay = %v", agg[0].PropDelay())
		}
	})
	eng.Run()
	if agg[0].Rate() != 100_000_000 || agg[0].PropDelay() != topology.DefaultLinkConfig().Delay {
		t.Error("restore did not reset the link")
	}
}

func TestModelSampleDeterministicAndBounded(t *testing.T) {
	m := Model{Layers: []LayerModel{
		{Layer: netem.LayerAgg, MTBF: 100 * sim.Millisecond, MTTR: 20 * sim.Millisecond},
	}}
	cables := func(netem.Layer) int { return 8 }
	noSwitches := func(netem.Layer) []int { return nil }
	a, err := m.Sample(sim.NewRNG(7), cables, noSwitches, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Sample(sim.NewRNG(7), cables, noSwitches, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed sampled different schedules")
	}
	if len(a) == 0 {
		t.Fatal("MTBF << horizon sampled no failures")
	}
	for _, ev := range a {
		if ev.At >= sim.Second {
			t.Errorf("event at %v beyond horizon", ev.At)
		}
		if ev.Index < 0 || ev.Index >= 16 {
			t.Errorf("event index %d out of cable-pair range", ev.Index)
		}
	}
	c, err := m.Sample(sim.NewRNG(8), cables, noSwitches, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds sampled identical schedules (suspicious)")
	}
	// Horizon field overrides the argument.
	m.Horizon = 10 * sim.Millisecond
	d, err := m.Sample(sim.NewRNG(7), cables, noSwitches, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range d {
		if ev.At >= 10*sim.Millisecond {
			t.Errorf("event at %v beyond Model.Horizon", ev.At)
		}
	}
}

func TestConfigActive(t *testing.T) {
	if (Config{}).Active() {
		t.Error("zero config active")
	}
	if !(Config{Events: []Event{{Kind: LinkDown}}}).Active() {
		t.Error("event config inactive")
	}
	if !(Config{Model: Model{Layers: []LayerModel{{}}}}).Active() {
		t.Error("model config inactive")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		LinkDown: "down", LinkUp: "up", Degrade: "degrade", Restore: "restore", Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFailSwitchesShape(t *testing.T) {
	evs := FailSwitches([]int{3, 7}, 10*sim.Millisecond, 50*sim.Millisecond)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4 (2 switches x crash+restart)", len(evs))
	}
	downs, ups := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case SwitchDown:
			downs++
			if ev.At != 10*sim.Millisecond {
				t.Errorf("crash at %v", ev.At)
			}
		case SwitchUp:
			ups++
			if ev.At != 50*sim.Millisecond {
				t.Errorf("restart at %v", ev.At)
			}
		}
		if ev.Index != 3 && ev.Index != 7 {
			t.Errorf("unexpected switch ordinal %d", ev.Index)
		}
	}
	if downs != 2 || ups != 2 {
		t.Errorf("downs=%d ups=%d, want 2/2", downs, ups)
	}
	// upAt == 0: permanent crashes.
	if evs := FailSwitches([]int{0}, sim.Millisecond, 0); len(evs) != 1 {
		t.Errorf("unrestarted events = %d, want 1", len(evs))
	}
}

func TestSwitchCrashKillsAllPortsAndAccounts(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	// Ordinal 16 is core 0 on the K=4 FatTree (8 edges, 8 aggs, 4 cores):
	// it terminates 8 unidirectional links (4 agg ports, both directions).
	cfg := Config{
		Events:          FailSwitches([]int{16}, 10*sim.Millisecond, 40*sim.Millisecond),
		ReconvergeDelay: 5 * sim.Millisecond,
	}
	inj, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	core := net.Switches[16]
	ports := 0
	eng.At(20*sim.Millisecond, func() {
		if !core.Down() {
			t.Error("switch not down mid-crash")
		}
		for _, l := range net.Links {
			if l.Src().ID() == core.ID() || l.Dst().ID() == core.ID() {
				ports++
				if !l.Down() {
					t.Errorf("incident link %v survived the crash", l)
				}
				if !l.RouteDead() {
					t.Errorf("incident link %v still routable after reconvergence", l)
				}
			} else if l.Down() {
				t.Errorf("non-incident link %v failed by the crash", l)
			}
		}
	})
	eng.Run()
	if ports != 8 {
		t.Errorf("crash covered %d incident links, want 8", ports)
	}
	if core.Down() {
		t.Error("switch still down after restart")
	}
	if core.Crashes != 1 || core.TimeDown(eng.Now()) != 30*sim.Millisecond {
		t.Errorf("crash accounting: crashes=%d downtime=%v, want 1 and 30ms",
			core.Crashes, core.TimeDown(eng.Now()))
	}
	if got := inj.CrashesBySwitch(); len(got) != 1 || got[16] != 1 {
		t.Errorf("per-switch accounting = %v, want map[16:1]", got)
	}
	for _, l := range net.Links {
		if l.Down() || l.RouteDead() {
			t.Fatalf("link %v not healed after restart", l)
		}
	}
}

func TestSwitchCrashOverlapsWithLinkOutage(t *testing.T) {
	eng := sim.NewEngine()
	net := buildNet(eng)
	// Agg-layer cable 0 (links 0 and 1) is agg(0,0)<->core0; core 0 is
	// ordinal 16. The cable outage [10, 60]ms overlaps the switch crash
	// [20, 40]ms; the restart must not resurrect the still-cut cable.
	evs := append(FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 60*sim.Millisecond),
		FailSwitches([]int{16}, 20*sim.Millisecond, 40*sim.Millisecond)...)
	if _, err := Install(eng, target(net), Config{Events: evs}, sim.NewRNG(1), sim.Second); err != nil {
		t.Fatal(err)
	}
	cable := net.LinksAtLayer(netem.LayerAgg)[0]
	eng.At(50*sim.Millisecond, func() {
		if !cable.Down() {
			t.Error("switch restart resurrected a cable still cut by the link outage")
		}
	})
	eng.Run()
	if cable.Down() {
		t.Error("cable still down after both outages ended")
	}
}

func TestSwitchModelSampling(t *testing.T) {
	m := Model{Switches: []SwitchModel{
		{Layer: netem.LayerCore, MTBF: 100 * sim.Millisecond, MTTR: 20 * sim.Millisecond},
	}}
	cables := func(netem.Layer) int { return 8 }
	coreOrds := []int{16, 17, 18, 19}
	switchesAt := func(l netem.Layer) []int {
		if l == netem.LayerCore {
			return coreOrds
		}
		return nil
	}
	evs, err := m.Sample(sim.NewRNG(7), cables, switchesAt, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("MTBF << horizon sampled no crashes")
	}
	for _, ev := range evs {
		if ev.Kind != SwitchDown && ev.Kind != SwitchUp {
			t.Fatalf("unexpected kind %v in switch model sample", ev.Kind)
		}
		if ev.Index < 16 || ev.Index > 19 {
			t.Errorf("sampled ordinal %d outside the core tier", ev.Index)
		}
	}
	// No switches at the tier is an error.
	m2 := Model{Switches: []SwitchModel{{Layer: netem.LayerHost, MTBF: 1, MTTR: 1}}}
	if _, err := m2.Sample(sim.NewRNG(7), cables, switchesAt, sim.Second); err == nil {
		t.Error("sampled crashes on an empty switch tier")
	}
}

func TestGroupModelSamplesCorrelatedFailures(t *testing.T) {
	m := Model{Groups: []GroupModel{
		{Layer: netem.LayerAgg, Size: 4, MTBF: 50 * sim.Millisecond, MTTR: 10 * sim.Millisecond},
	}}
	cables := func(netem.Layer) int { return 8 } // two groups of 4
	evs, err := m.Sample(sim.NewRNG(7), cables, func(netem.Layer) []int { return nil }, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("group model sampled nothing")
	}
	// Correlation: at every firing instant, all four cables (8 link
	// indices) of exactly one group change state together.
	byTime := make(map[sim.Time][]Event)
	for _, ev := range evs {
		byTime[ev.At] = append(byTime[ev.At], ev)
	}
	for at, group := range byTime {
		if len(group) != 8 {
			t.Fatalf("t=%v: %d link events, want 8 (a whole group)", at, len(group))
		}
		lo := group[0].Index / 8 * 8
		for _, ev := range group {
			if ev.Kind != group[0].Kind {
				t.Fatalf("t=%v: mixed kinds within one group instant", at)
			}
			if ev.Index < lo || ev.Index >= lo+8 {
				t.Fatalf("t=%v: link %d outside group [%d,%d)", at, ev.Index, lo, lo+8)
			}
		}
	}
	// Group size must divide sensibly: zero size is an error.
	bad := Model{Groups: []GroupModel{{Layer: netem.LayerAgg, MTBF: 1, MTTR: 1}}}
	if _, err := bad.Sample(sim.NewRNG(1), cables, func(netem.Layer) []int { return nil }, sim.Second); err == nil {
		t.Error("zero group size accepted")
	}
}

func TestSwitchEventValidation(t *testing.T) {
	bad := []Config{
		{Events: []Event{{Kind: SwitchDown, Index: 999}}}, // out of range
		{Events: []Event{{Kind: SwitchUp, Index: -2}}},    // below -1
	}
	for i, cfg := range bad {
		eng := sim.NewEngine()
		net := buildNet(eng)
		if _, err := Install(eng, target(net), cfg, sim.NewRNG(1), sim.Second); err == nil {
			t.Errorf("case %d: Install accepted invalid switch event", i)
		}
	}
	// A network with no switches rejects switch events outright.
	eng := sim.NewEngine()
	net := buildNet(eng)
	cfg := Config{Events: []Event{{Kind: SwitchDown, Index: 0}}}
	if _, err := Install(eng, Target{Links: net.Links}, cfg, sim.NewRNG(1), sim.Second); err == nil {
		t.Error("switch event accepted against a switchless target")
	}
}
