// Package faults is the network-dynamics subsystem: it mutates a built
// topology while the event engine runs. A Schedule holds timed events —
// link down/up, whole-switch crash/restart, capacity reduction, added
// propagation delay, random-loss injection — built either explicitly
// (FailCables, FailSwitches and friends) or sampled from a seeded
// MTBF/MTTR failure model (independent cables, correlated cable groups,
// or whole switch tiers), and an Injector replays them against the
// network on the simulation clock.
//
// The piece that makes failures interesting for the paper's transports
// is the reconvergence delay: when a link dies, its switch keeps
// spraying packets onto it (they blackhole, with accounting in
// netem.LinkStats) until routing notices, ReconvergeDelay later, and
// ECMP sets shrink around the corpse. Single-path TCP flows hashed onto
// the dead path stall for the whole window; MMPTCP's packet scatter
// loses a slice of every window but keeps the rest flowing — exactly
// the robustness claim the paper makes.
//
// Everything is deterministic: events fire at fixed virtual times, model
// sampling and loss draws come from sim.RNG streams derived from the
// run's seed, so identical seeds and schedules yield byte-identical
// results at any sweep worker count.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Kind is the type of a scheduled network mutation.
type Kind uint8

// Fault event kinds.
const (
	// LinkDown fails the target links at the data plane: queued and
	// in-flight packets blackhole, as do new arrivals, and after the
	// schedule's ReconvergeDelay routing excludes the links from ECMP.
	LinkDown Kind = iota
	// LinkUp repairs the target links; routing re-includes them after
	// the reconvergence delay. Down/up pairs are refcounted per link, so
	// overlapping outages from different sources (an explicit schedule
	// plus a sampled model) union: a link is up only once every failure
	// that hit it has been repaired.
	LinkUp
	// Degrade applies capacity reduction, extra propagation delay and/or
	// random loss to the target links (whichever fields are set).
	Degrade
	// Restore resets the target links to their built rate, delay and
	// zero injected loss.
	Restore
	// SwitchDown crashes a whole switch: every incident link (both
	// directions of every port) fails at once and the switch itself stops
	// forwarding. For switch events Index is the switch ordinal in the
	// network's builder order (Index -1 crashes every switch) and Layer
	// is ignored.
	SwitchDown
	// SwitchUp restarts a crashed switch: its ports come back up and
	// routing re-admits them after the reconvergence delay. Crash/restart
	// pairs are refcounted like link outages, so overlapping crashes from
	// different sources union.
	SwitchUp
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one timed network mutation. Link-targeted events are
// addressed by topology layer plus the index of the unidirectional link
// within that layer, in builder order (netem links come in direction
// pairs: cable i at a layer is links 2i and 2i+1 — see FailCables);
// Index -1 targets every link at the layer. Switch-targeted events
// (SwitchDown/SwitchUp) address Index as the switch ordinal in builder
// order and ignore Layer.
type Event struct {
	At    sim.Time
	Kind  Kind
	Layer netem.Layer
	Index int

	// Degrade parameters; zero values leave the corresponding property
	// untouched.
	CapacityFactor float64  // scale link rate to this factor, in (0, 1]
	ExtraDelay     sim.Time // add to propagation delay
	LossRate       float64  // drop each enqueued packet with this probability, in [0, 1)
}

// LayerModel gives one layer's failure statistics for sampled schedules:
// each cable at the layer alternates exponentially distributed up
// intervals (mean MTBF) and down intervals (mean MTTR). Both directions
// of a cable fail and recover together.
type LayerModel struct {
	Layer netem.Layer
	MTBF  sim.Time // mean time between failures per cable; must be positive
	MTTR  sim.Time // mean time to repair; must be positive
}

// GroupModel samples correlated failures: the layer's cables are
// partitioned into consecutive groups of Size (a line card, a power
// domain, a maintenance unit), and each group alternates exponentially
// distributed up intervals (mean MTBF) and down intervals (mean MTTR)
// as a unit — every cable in the group fails and recovers at the same
// instants. This is the correlation structure independent per-cable
// sampling (LayerModel) cannot express.
type GroupModel struct {
	Layer netem.Layer
	Size  int      // cables per group; must be positive. The last group may be smaller.
	MTBF  sim.Time // mean time between failures per group; must be positive
	MTTR  sim.Time // mean time to repair; must be positive
}

// SwitchModel gives one switch tier's failure statistics: each switch at
// the tier alternates exponential up intervals (mean MTBF) and crash
// intervals (mean MTTR). A switch's tier is the layer of its uplinks
// (edge switches are LayerEdge, aggregation LayerAgg, core/intermediate
// LayerCore) as registered by the topology builder.
type SwitchModel struct {
	Layer netem.Layer
	MTBF  sim.Time // mean time between crashes per switch; must be positive
	MTTR  sim.Time // mean time to restart; must be positive
}

// Model samples a failure schedule instead of (or in addition to) an
// explicit event list. The zero value samples nothing.
type Model struct {
	// Layers samples each cable independently.
	Layers []LayerModel
	// Groups samples correlated cable groups (all cables of a group fail
	// and recover together).
	Groups []GroupModel
	// Switches samples whole-switch crash/restart pairs per tier.
	Switches []SwitchModel
	// Horizon bounds sampling; 0 means the run's MaxSimTime.
	Horizon sim.Time
}

// active reports whether the model samples anything.
func (m Model) active() bool {
	return len(m.Layers) > 0 || len(m.Groups) > 0 || len(m.Switches) > 0
}

// Sample draws the model's down/up events over [0, horizon) using rng.
// cablesAt reports how many cables (full-duplex link pairs) exist at a
// layer; switchesAt returns the ordinals of the switches at a tier, in
// builder order. Each cable, group and switch gets its own RNG stream
// split off rng in a fixed order (layers first, then groups, then
// switches), so the draw is independent of everything else in the run —
// and a model without groups or switches consumes exactly the streams it
// did before those fault classes existed.
func (m Model) Sample(rng *sim.RNG, cablesAt func(netem.Layer) int, switchesAt func(netem.Layer) []int, horizon sim.Time) ([]Event, error) {
	if m.Horizon > 0 {
		horizon = m.Horizon
	}
	var out []Event
	for _, lm := range m.Layers {
		if lm.MTBF <= 0 || lm.MTTR <= 0 {
			return nil, fmt.Errorf("faults: layer %v model needs positive MTBF and MTTR", lm.Layer)
		}
		cables := cablesAt(lm.Layer)
		if cables == 0 {
			return nil, fmt.Errorf("faults: no links at layer %v to sample failures on", lm.Layer)
		}
		for c := 0; c < cables; c++ {
			r := rng.Split()
			alternate(r, lm.MTBF, lm.MTTR, horizon, func(kind Kind, t sim.Time) {
				out = append(out, cableEvents(kind, t, lm.Layer, c)...)
			})
		}
	}
	for _, gm := range m.Groups {
		if gm.Size <= 0 {
			return nil, fmt.Errorf("faults: group model at layer %v needs positive group size", gm.Layer)
		}
		if gm.MTBF <= 0 || gm.MTTR <= 0 {
			return nil, fmt.Errorf("faults: group model at layer %v needs positive MTBF and MTTR", gm.Layer)
		}
		cables := cablesAt(gm.Layer)
		if cables == 0 {
			return nil, fmt.Errorf("faults: no links at layer %v to sample group failures on", gm.Layer)
		}
		for start := 0; start < cables; start += gm.Size {
			end := start + gm.Size
			if end > cables {
				end = cables
			}
			r := rng.Split()
			start := start
			alternate(r, gm.MTBF, gm.MTTR, horizon, func(kind Kind, t sim.Time) {
				for c := start; c < end; c++ {
					out = append(out, cableEvents(kind, t, gm.Layer, c)...)
				}
			})
		}
	}
	for _, sm := range m.Switches {
		if sm.MTBF <= 0 || sm.MTTR <= 0 {
			return nil, fmt.Errorf("faults: switch model at tier %v needs positive MTBF and MTTR", sm.Layer)
		}
		ords := switchesAt(sm.Layer)
		if len(ords) == 0 {
			return nil, fmt.Errorf("faults: no switches at tier %v to sample crashes on", sm.Layer)
		}
		for _, s := range ords {
			r := rng.Split()
			s := s
			alternate(r, sm.MTBF, sm.MTTR, horizon, func(kind Kind, t sim.Time) {
				ev := Event{At: t, Kind: SwitchDown, Index: s}
				if kind == LinkUp {
					ev.Kind = SwitchUp
				}
				out = append(out, ev)
			})
		}
	}
	return out, nil
}

// alternate walks one exponential up/down renewal process over
// [0, horizon), emitting LinkDown at each failure and LinkUp at each
// repair (callers translate the kind for non-link targets).
func alternate(r *sim.RNG, mtbf, mttr, horizon sim.Time, emit func(kind Kind, t sim.Time)) {
	t := sim.Time(0)
	for {
		t += sim.Time(float64(mtbf) * r.ExpFloat64())
		if t >= horizon {
			return
		}
		emit(LinkDown, t)
		t += sim.Time(float64(mttr) * r.ExpFloat64())
		if t >= horizon {
			return
		}
		emit(LinkUp, t)
	}
}

// cableEvents returns kind events for both directions of cable c.
func cableEvents(kind Kind, at sim.Time, layer netem.Layer, c int) []Event {
	return []Event{
		{At: at, Kind: kind, Layer: layer, Index: 2 * c},
		{At: at, Kind: kind, Layer: layer, Index: 2*c + 1},
	}
}

// FailCables returns LinkDown events for both directions of the first n
// cables at layer, firing at `at`, plus matching LinkUp events at upAt
// when upAt > 0 (upAt == 0 means the cables stay dead). Topology
// builders wire each full-duplex cable as two consecutive unidirectional
// links, so cable i is layer links 2i and 2i+1.
func FailCables(layer netem.Layer, n int, at, upAt sim.Time) []Event {
	var out []Event
	for c := 0; c < n; c++ {
		out = append(out, cableEvents(LinkDown, at, layer, c)...)
		if upAt > 0 {
			out = append(out, cableEvents(LinkUp, upAt, layer, c)...)
		}
	}
	return out
}

// FailSwitches returns SwitchDown crash events for the given switch
// ordinals (builder order — see topology.Network.Switches) firing at
// `at`, plus matching SwitchUp restart events at upAt when upAt > 0
// (upAt == 0 means the switches stay dead). A crash fails every link
// incident to the switch at once; routing excludes the ports after the
// reconvergence delay, exactly as for cable cuts.
func FailSwitches(switches []int, at, upAt sim.Time) []Event {
	var out []Event
	for _, s := range switches {
		out = append(out, Event{At: at, Kind: SwitchDown, Index: s})
		if upAt > 0 {
			out = append(out, Event{At: upAt, Kind: SwitchUp, Index: s})
		}
	}
	return out
}

// DegradeCables returns Degrade events for both directions of the first
// n cables at layer, applying the given capacity factor, extra delay and
// loss rate at `at`, plus Restore events at restoreAt when restoreAt > 0.
func DegradeCables(layer netem.Layer, n int, at, restoreAt sim.Time, capacityFactor float64, extraDelay sim.Time, lossRate float64) []Event {
	var out []Event
	for c := 0; c < n; c++ {
		for _, ev := range cableEvents(Degrade, at, layer, c) {
			ev.CapacityFactor = capacityFactor
			ev.ExtraDelay = extraDelay
			ev.LossRate = lossRate
			out = append(out, ev)
		}
		if restoreAt > 0 {
			out = append(out, cableEvents(Restore, restoreAt, layer, c)...)
		}
	}
	return out
}

// Config is the public description of a run's network dynamics: an
// explicit event list, an optional sampled failure model, and the
// routing reconvergence delay. The zero value leaves the network
// permanently healthy. Config is plain data — experiment sweeps copy it
// by value unchanged, and the same Config plus the same seed reproduces
// the same dynamics exactly.
type Config struct {
	// Events fire at their timestamps, in timestamp order (ties in
	// listed order).
	Events []Event
	// Model, when it has layers, is sampled into additional events using
	// an RNG stream derived from the run's seed.
	Model Model
	// ReconvergeDelay is how long routing takes to notice a link state
	// change: after a failure, switches keep forwarding onto the dead
	// link (blackholing) for this long before ECMP excludes it, and
	// after a repair the link stays excluded for this long before ECMP
	// re-admits it. Zero means instant reconvergence (no blackhole
	// window beyond in-flight packets).
	ReconvergeDelay sim.Time
}

// Active reports whether the config mutates the network at all.
func (c Config) Active() bool {
	return len(c.Events) > 0 || c.Model.active()
}

// validate checks event parameters against the per-layer link counts and
// the network's switch count.
func validate(events []Event, linksAt func(netem.Layer) int, switches int) error {
	for i, ev := range events {
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d has negative time %v", i, ev.At)
		}
		if ev.Kind == SwitchDown || ev.Kind == SwitchUp {
			if switches == 0 {
				return fmt.Errorf("faults: event %d targets a switch but the network has none", i)
			}
			if ev.Index < -1 || ev.Index >= switches {
				return fmt.Errorf("faults: event %d switch ordinal %d out of range (%d switches)", i, ev.Index, switches)
			}
			continue
		}
		n := linksAt(ev.Layer)
		if n == 0 {
			return fmt.Errorf("faults: event %d targets layer %v with no links", i, ev.Layer)
		}
		if ev.Index < -1 || ev.Index >= n {
			return fmt.Errorf("faults: event %d link index %d out of range for layer %v (%d links)", i, ev.Index, ev.Layer, n)
		}
		switch ev.Kind {
		case LinkDown, LinkUp, Restore:
		case Degrade:
			if ev.CapacityFactor != 0 && (ev.CapacityFactor <= 0 || ev.CapacityFactor > 1) {
				return fmt.Errorf("faults: event %d capacity factor %v out of (0, 1]", i, ev.CapacityFactor)
			}
			if ev.ExtraDelay < 0 {
				return fmt.Errorf("faults: event %d negative extra delay", i)
			}
			if ev.LossRate < 0 || ev.LossRate >= 1 {
				return fmt.Errorf("faults: event %d loss rate %v out of [0, 1)", i, ev.LossRate)
			}
			if ev.CapacityFactor == 0 && ev.ExtraDelay == 0 && ev.LossRate == 0 {
				return fmt.Errorf("faults: event %d degrades nothing", i)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// sortEvents orders events by timestamp, preserving listed order for
// ties, so injection is deterministic however the schedule was composed.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}
