package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("generators with different seeds matched %d/100 outputs", same)
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	a := NewRNGStream(42, 1)
	b := NewRNGStream(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams matched %d/100 outputs", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want about %d", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v negative", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want about 1", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGDerangementHasNoFixedPoints(t *testing.T) {
	r := NewRNG(17)
	for _, n := range []int{2, 3, 5, 16, 100, 512} {
		for trial := 0; trial < 20; trial++ {
			p := r.Derangement(n)
			seen := make([]bool, n)
			for i, v := range p {
				if v == i {
					t.Fatalf("Derangement(%d) has fixed point at %d", n, i)
				}
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("Derangement(%d) is not a permutation: %v", n, p)
				}
				seen[v] = true
			}
		}
	}
}

func TestRNGDerangementPanicsForSmallN(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Error("Derangement(1) did not panic")
		}
	}()
	r.Derangement(1)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(123)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split generators matched %d/100 outputs", same)
	}
}

func TestRNGInt63nRange(t *testing.T) {
	r := NewRNG(21)
	for _, n := range []int64{1, 10, 1 << 40} {
		for i := 0; i < 100; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}
