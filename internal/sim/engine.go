package sim

// Event is a scheduled callback. Events are created by Engine.Schedule,
// Engine.At and their arg-carrying variants, and may be cancelled before
// they fire. An Event must not be used after it has fired or been
// cancelled: the engine recycles fired and discarded events through an
// internal free list, so a stale handle may alias a completely unrelated
// future event.
type Event struct {
	eng *Engine
	at  Time
	seq uint64

	// Exactly one of fn / fnArg is set. The arg-carrying form exists so
	// hot paths (retransmit timers re-armed per ACK, per-packet link
	// events) can schedule a long-lived callback plus a value instead of
	// allocating a fresh closure per event.
	fn    func()
	fnArg func(any)
	arg   any

	// class is the event's horizon class (see SetHorizonClasses): an
	// index into the engine's class-distance table, used to tighten the
	// earliest-output-time promise the sharded coordinator computes.
	// Class 0 ("could take effect anywhere, immediately") is always
	// sound. The class never affects event ordering or execution — only
	// the promise arithmetic — so engines with no classes configured
	// behave identically. Events inherit the class of the event whose
	// callback scheduled them (influence stays put or moves away from a
	// boundary within a node; links re-tag explicitly when a packet hops
	// nodes), and events scheduled from outside any callback get class 0.
	class uint8

	cancelled bool
	fired     bool
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (ev *Event) Cancel() {
	if ev == nil || ev.cancelled || ev.fired {
		return
	}
	ev.cancelled = true
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	if ev.eng != nil {
		if ev.class != 0 {
			ev.eng.classCnt[ev.class]--
		}
		ev.eng.noteCancelled()
	}
}

// Pending reports whether the event is still scheduled to fire.
func (ev *Event) Pending() bool {
	return ev != nil && !ev.cancelled && !ev.fired
}

// compactFloor is the minimum heap size below which cancelled events are
// simply left to be discarded lazily: compaction of a tiny heap saves
// nothing and would only add overhead to short runs.
const compactFloor = 64

// Engine is a single-threaded discrete-event simulator. The zero value is
// not ready for use; call NewEngine.
type Engine struct {
	now       Time
	heap      []*Event
	seq       uint64
	processed uint64
	cancelled int // cancelled events still sitting in the heap
	stopped   bool

	// free recycles fired and discarded events so steady-state scheduling
	// does not allocate. Events enter it from the run loop (after firing
	// or lazy discard of a cancellation) and from compact.
	free []*Event

	// interrupt, when set, is polled every interruptEvery processed
	// events by RunUntil; returning true stops the run (see
	// SetInterrupt).
	interrupt      func() bool
	interruptEvery uint64

	// Horizon-class state (see SetHorizonClasses). classDist[c] is the
	// minimum virtual time an event of class c needs before it can take
	// effect outside this engine; classCnt[c] counts live pending events
	// of class c; execClass is the class of the currently executing
	// event, inherited by everything its callback schedules. All nil /
	// zero when classes are not configured, at zero hot-path cost beyond
	// a predictable branch.
	classDist []Time
	classCnt  []int32
	execClass uint8
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{heap: make([]*Event, 0, 1024)}
}

// MaxTime is the largest representable virtual time. PeekTime returns it
// for an empty queue, and RunUntil treats it as "run to exhaustion".
const MaxTime = Time(1<<63 - 1)

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// PeekTime returns the timestamp of the earliest live event, or MaxTime
// when no live events are pending. Cancelled events sitting at the head
// of the heap are discarded on the way — a stale cancelled timer must not
// masquerade as the next event time, or the sharded coordinator's window
// computation (and AdvanceTo's past-event check) would trip on it.
func (e *Engine) PeekTime() Time {
	for len(e.heap) > 0 {
		ev := e.heap[0]
		if !ev.cancelled {
			return ev.at
		}
		e.pop()
		e.cancelled--
		e.recycle(ev)
	}
	return MaxTime
}

// PeekHorizon returns the earliest time an event this engine executes
// could take effect `delay` later — PeekTime plus delay, saturating at
// MaxTime so an empty queue (PeekTime == MaxTime) stays "never" instead
// of wrapping negative. It is the sharded coordinator's
// earliest-output-time promise primitive: a shard whose next event is at
// t cannot deliver anything across a boundary of propagation delay d
// before t + d.
func (e *Engine) PeekHorizon(delay Time) Time {
	t := e.PeekTime()
	if t >= MaxTime-delay {
		return MaxTime
	}
	return t + delay
}

// SetHorizonClasses configures the engine's horizon-class table for
// earliest-output-time promises. dists[c] is the minimum virtual time an
// event of class c needs before its consequences can leave this engine
// — in the sharded fabric, a node's shortest influence path to a
// boundary link (each hop paying its propagation delay), computed by
// the partitioner. dists[0] must be 0: class 0 is the sound default for
// events whose location is unknown. Classes never affect event order,
// only HorizonBonus. Passing nil clears the table.
func (e *Engine) SetHorizonClasses(dists []Time) {
	if dists == nil {
		e.classDist, e.classCnt, e.execClass = nil, nil, 0
		return
	}
	if dists[0] != 0 {
		panic("sim: horizon class 0 must have distance 0")
	}
	if len(dists) > 256 {
		panic("sim: more than 256 horizon classes")
	}
	e.classDist = append([]Time(nil), dists...)
	e.classCnt = make([]int32, len(dists))
}

// HorizonBonus returns the distance term of this engine's
// earliest-output-time promise: the minimum horizon-class distance over
// live pending events, floored at base (the caller's static bound — the
// minimum outgoing boundary delay). When any live event is class 0, or
// no classes are configured, it degrades to base — the conservative
// promise. The queue being empty returns base too; the caller's
// PeekTime is MaxTime then and saturates the sum.
func (e *Engine) HorizonBonus(base Time) Time {
	if e.classDist == nil {
		return base
	}
	tagged := int32(0)
	best := MaxTime
	for c := 1; c < len(e.classDist); c++ {
		if n := e.classCnt[c]; n > 0 {
			tagged += n
			if d := e.classDist[c]; d < best {
				best = d
			}
		}
	}
	if best == MaxTime || int(tagged) < e.Pending() {
		return base
	}
	if best < base {
		return base
	}
	return best
}

// AdvanceTo raises the clock to t without executing anything. It is the
// conservative-window barrier primitive: after a shard has drained its
// events below the window edge, the coordinator advances every shard
// clock to the barrier time so control-plane callbacks observing Now()
// on paused shards read the barrier instant, not a stale event time.
// Advancing past a pending live event panics — that would reorder it
// into the past.
func (e *Engine) AdvanceTo(t Time) {
	if head := e.PeekTime(); head < t {
		panic("sim: AdvanceTo past a pending event")
	}
	if t > e.now {
		e.now = t
	}
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live events currently scheduled. Cancelled
// events awaiting discard are not counted.
func (e *Engine) Pending() int { return len(e.heap) - e.cancelled }

// SetInterrupt installs a poll function checked every `every` processed
// events during RunUntil; if it returns true the run stops as if Stop had
// been called. Passing a nil fn (or every == 0) removes the hook. Run can
// be resumed afterwards, so this composes with external cancellation
// (e.g. a context) without poisoning the engine.
func (e *Engine) SetInterrupt(every uint64, fn func() bool) {
	if fn == nil || every == 0 {
		e.interrupt, e.interruptEvery = nil, 0
		return
	}
	e.interrupt, e.interruptEvery = fn, every
}

// Schedule runs fn after delay. A negative delay is treated as zero.
// Events scheduled for the same instant fire in scheduling order.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// ScheduleArg runs fn(arg) after delay. It is Schedule for hot paths: the
// callback is typically a long-lived func value (created once per timer,
// link or endpoint) and the per-event state rides in arg, so re-arming
// does not allocate a closure.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.AtArg(e.now+delay, fn, arg)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the protocol stacks built on this engine.
func (e *Engine) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(t)
	ev.fn = fn
	e.push(ev)
	return ev
}

// AtArg runs fn(arg) at absolute time t (the arg-carrying At).
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(t)
	ev.fnArg = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// AtArgClass is AtArg with an explicit horizon class, overriding the
// inherited one. netem links use it to re-tag a packet's delivery with
// the receiving node's class when it hops nodes; everything else relies
// on inheritance. A class for which SetHorizonClasses configured no
// distance panics; class 0 is always valid (and is plain AtArg).
func (e *Engine) AtArgClass(t Time, fn func(any), arg any, class uint8) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if class != 0 && int(class) >= len(e.classDist) {
		panic("sim: horizon class out of range")
	}
	ev := e.alloc(t)
	ev.class = class
	ev.fnArg = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// AtArgKeyed is AtArg with an explicit tie-breaking key in place of the
// insertion sequence. The sharded coordinator uses it to give committed
// cross-shard deliveries an ordering that is intrinsic to the sending
// shard's execution (source shard, send order) rather than to the
// barrier at which the commit happened: barrier placement depends on
// the synchronization policy, and a policy-dependent tie-break would
// make same-nanosecond event order — and hence queue dynamics — differ
// between lookahead modes. Callers must supply keys above any insertion
// sequence the engine can reach (the coordinator sets the top bit), so
// keyed events sort after same-time locally scheduled ones.
// The class parameter is the committed delivery's horizon class on this
// (destination) engine — the receiving node's, exactly as AtArgClass.
func (e *Engine) AtArgKeyed(t Time, fn func(any), arg any, key uint64, class uint8) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if class != 0 && int(class) >= len(e.classDist) {
		panic("sim: horizon class out of range")
	}
	ev := e.alloc(t)
	ev.seq = key
	ev.class = class
	ev.fnArg = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// alloc returns a blank event at time t, reusing the free list when
// possible.
func (e *Engine) alloc(t Time) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled = false
		ev.fired = false
	} else {
		ev = &Event{}
	}
	ev.eng = e
	ev.at = t
	ev.seq = e.seq
	ev.class = e.execClass
	return ev
}

// recycle returns a fired or discarded event to the free list. The
// fired/cancelled flags are deliberately left set until reuse so that a
// stale handle held in violation of the contract still reads as inert.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its initial state — clock at zero, no
// pending events, all counters cleared, no interrupt hook — while keeping
// the allocated capacity (heap backing array and event free list), so a
// pooled engine's steady-state reuse allocates nothing. Pending events
// are discarded without firing; their handles read as cancelled. This is
// the sim half of the run-instance pooling contract: after Reset the
// engine is observationally identical to NewEngine() output.
func (e *Engine) Reset() {
	for i, ev := range e.heap {
		ev.cancelled = true
		e.recycle(ev)
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.cancelled = 0
	e.stopped = false
	e.interrupt = nil
	e.interruptEvery = 0
	e.classDist = nil
	e.classCnt = nil
	e.execClass = 0
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= limit, then sets the clock
// to limit (or leaves it at the last event time if that is later, which
// cannot happen by construction). Cancelled events are discarded without
// being counted as processed.
func (e *Engine) RunUntil(limit Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		ev := e.heap[0]
		if ev.at > limit {
			break
		}
		e.pop()
		if ev.cancelled {
			e.cancelled--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		e.processed++
		if ev.class != 0 {
			e.classCnt[ev.class]--
		}
		e.execClass = ev.class
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		e.execClass = 0
		e.recycle(ev)
		if e.interrupt != nil && e.processed%e.interruptEvery == 0 && e.interrupt() {
			e.stopped = true
		}
	}
	if !e.stopped && e.now < limit && limit < MaxTime {
		e.now = limit
	}
}

// Step executes exactly one non-cancelled event, if any, and reports
// whether one was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.heap[0]
		e.pop()
		if ev.cancelled {
			e.cancelled--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		e.processed++
		if ev.class != 0 {
			e.classCnt[ev.class]--
		}
		e.execClass = ev.class
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		e.execClass = 0
		e.recycle(ev)
		return true
	}
	return false
}

// noteCancelled records an in-heap cancellation and compacts the heap once
// cancelled events outnumber live ones. Without this, a cancelled event
// occupies its heap slot (pinning its closure) until its timestamp is
// reached — for long-lived retransmit timers that are armed and re-armed
// on every ACK, the dead entries dominate the queue of a big run.
func (e *Engine) noteCancelled() {
	e.cancelled++
	if len(e.heap) >= compactFloor && e.cancelled > len(e.heap)/2 {
		e.compact()
	}
}

// compact removes every cancelled event from the heap (returning them to
// the free list) and restores the heap invariant. O(n), amortised against
// the >n/2 cancellations that triggered it.
func (e *Engine) compact() {
	kept := e.heap[:0]
	for _, ev := range e.heap {
		if !ev.cancelled {
			kept = append(kept, ev)
		} else {
			e.recycle(ev)
		}
	}
	// Clear the tail so dropped slots hold no stale references.
	for i := len(kept); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = kept
	e.cancelled = 0
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// trimFloor is the smallest heap capacity maybeTrim bothers shrinking:
// below this the memory is trivial and trimming would only churn.
const trimFloor = 4 * compactFloor

// maybeTrim releases excess queue memory after a burst: when the live
// heap has shrunk below a quarter of its capacity, the backing array is
// reallocated at half size (geometric, so repeated trims cost amortised
// O(1) per pop). Without this a Step- or RunUntil-driven loop that once
// held a million events pins that footprint forever — compact only
// removes cancelled entries, it never shrinks capacity. The free list is
// bounded alongside, since pooled events are the same retired burst.
func (e *Engine) maybeTrim() {
	c := cap(e.heap)
	if c < trimFloor || len(e.heap) >= c/4 {
		return
	}
	heap := make([]*Event, len(e.heap), c/2)
	copy(heap, e.heap)
	e.heap = heap
	if len(e.free) > c/2 {
		free := make([]*Event, c/2)
		copy(free, e.free[:c/2])
		e.free = free
	}
}

// less orders events by time, breaking ties by insertion sequence so that
// simultaneous events fire deterministically in scheduling order.
// Keyed events (AtArgKeyed) carry an explicit key in the sequence slot
// and sort among same-time events by that key instead.
func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	if ev.class != 0 {
		e.classCnt[ev.class]++
	}
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	e.maybeTrim()
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < n && e.less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
