package sim

// Event is a scheduled callback. Events are created by Engine.Schedule and
// Engine.At and may be cancelled before they fire. An Event must not be
// reused after it has fired or been cancelled.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (ev *Event) Cancel() {
	if ev == nil {
		return
	}
	ev.cancelled = true
	ev.fn = nil
}

// Pending reports whether the event is still scheduled to fire.
func (ev *Event) Pending() bool {
	return ev != nil && !ev.cancelled && !ev.fired
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not ready for use; call NewEngine.
type Engine struct {
	now       Time
	heap      []*Event
	seq       uint64
	processed uint64
	stopped   bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{heap: make([]*Event, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay. A negative delay is treated as zero.
// Events scheduled for the same instant fire in scheduling order.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the protocol stacks built on this engine.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.push(ev)
	return ev
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with timestamps <= limit, then sets the clock
// to limit (or leaves it at the last event time if that is later, which
// cannot happen by construction). Cancelled events are discarded without
// being counted as processed.
func (e *Engine) RunUntil(limit Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		ev := e.heap[0]
		if ev.at > limit {
			break
		}
		e.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		e.processed++
		fn()
	}
	if !e.stopped && e.now < limit && limit < Time(1<<63-1) {
		e.now = limit
	}
}

// Step executes exactly one non-cancelled event, if any, and reports
// whether one was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.heap[0]
		e.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		e.processed++
		fn()
		return true
	}
	return false
}

// less orders events by time, breaking ties by insertion sequence so that
// simultaneous events fire deterministically in scheduling order.
func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < n && e.less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
