package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond, 2 * Millisecond} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{Millisecond, 2 * Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.Schedule(Millisecond, func() {
		fired = append(fired, "outer")
		e.Schedule(Millisecond, func() { fired = append(fired, "inner") })
		e.Schedule(0, func() { fired = append(fired, "immediate") })
	})
	e.Run()
	if len(fired) != 3 || fired[0] != "outer" || fired[1] != "immediate" || fired[2] != "inner" {
		t.Fatalf("got order %v", fired)
	}
	if e.Now() != 2*Millisecond {
		t.Errorf("clock = %v, want 2ms", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Millisecond, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending after scheduling")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Processed() != 0 {
		t.Errorf("processed = %d, want 0", e.Processed())
	}
}

// TestEngineCancelCompaction exercises the retransmit-timer pattern: a
// large population of far-future events that are cancelled long before
// their timestamps. The heap must shed them eagerly rather than carrying
// them to their deadlines, and Pending must count only live events.
func TestEngineCancelCompaction(t *testing.T) {
	e := NewEngine()
	const n = 10 * compactFloor
	far := make([]*Event, n)
	for i := range far {
		far[i] = e.Schedule(Time(i+1)*Second, func() { t.Error("cancelled event fired") })
	}
	live := e.Schedule(Millisecond, func() {})
	if got := e.Pending(); got != n+1 {
		t.Fatalf("Pending = %d before cancels, want %d", got, n+1)
	}
	for _, ev := range far {
		ev.Cancel()
	}
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending = %d after cancels, want 1", got)
	}
	// Compaction must have physically shed almost all dead entries: only
	// a below-floor residue may remain for lazy discard.
	if got := len(e.heap); got > compactFloor {
		t.Errorf("heap holds %d events after mass cancel, want <= %d", got, compactFloor)
	}
	if e.cancelled != len(e.heap)-1 {
		t.Errorf("cancelled counter = %d with %d in heap, want %d", e.cancelled, len(e.heap), len(e.heap)-1)
	}
	e.Run()
	if live.Pending() {
		t.Error("live event still pending after Run")
	}
	if e.Processed() != 1 {
		t.Errorf("processed = %d, want 1", e.Processed())
	}
}

// TestEngineCancelSmallHeapLazy checks that below the compaction floor,
// cancelled events are discarded lazily but still never fire and never
// inflate Pending.
func TestEngineCancelSmallHeapLazy(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(Second, func() { t.Error("cancelled event fired") })
	b := e.Schedule(2*Second, func() { t.Error("cancelled event fired") })
	fired := 0
	e.Schedule(3*Second, func() { fired++ })
	a.Cancel()
	b.Cancel()
	a.Cancel() // double-cancel must not double-count
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
	e.Run()
	if fired != 1 || e.Processed() != 1 {
		t.Errorf("fired=%d processed=%d, want 1/1", fired, e.Processed())
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after Run, want 0", got)
	}
}

// TestEngineCancelDuringRun cancels via the pop path (RunUntil discards)
// and checks the counter stays balanced so later compaction still works.
func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 2*compactFloor; i++ {
		evs = append(evs, e.Schedule(Time(i+1)*Millisecond, func() {}))
	}
	// Cancel just under the compaction threshold so the dead events are
	// discarded by the run loop instead.
	for _, ev := range evs[:compactFloor] {
		ev.Cancel()
	}
	e.Run()
	if e.cancelled != 0 {
		t.Errorf("cancelled counter = %d after Run, want 0", e.cancelled)
	}
	if want := uint64(compactFloor); e.Processed() != want {
		t.Errorf("processed = %d, want %d", e.Processed(), want)
	}
}

func TestEngineSetInterrupt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 100; i++ {
		e.Schedule(Time(i)*Millisecond, func() { count++ })
	}
	stop := false
	e.SetInterrupt(10, func() bool { return stop })
	e.Schedule(25*Millisecond, func() { stop = true })
	e.Run()
	// The poll fires every 10 processed events; the stop flag is set at
	// t=25ms (the 26th processed event), so the run halts at the next
	// multiple-of-10 poll after that.
	if count >= 100 {
		t.Fatalf("interrupt did not stop the run (count=%d)", count)
	}
	// Clearing the hook lets the run resume to completion.
	e.SetInterrupt(0, nil)
	e.Run()
	if count != 100 {
		t.Errorf("count = %d after resume, want 100", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Millisecond, func() { count++ })
	}
	e.RunUntil(5 * Millisecond)
	if count != 5 {
		t.Errorf("count = %d after RunUntil(5ms), want 5", count)
	}
	if e.Now() != 5*Millisecond {
		t.Errorf("clock = %v, want 5ms", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Errorf("count = %d after Run, want 10", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("count = %d after Stop at 3, want 3", count)
	}
	// Run resumes where it left off.
	e.Run()
	if count != 10 {
		t.Errorf("count = %d after resume, want 10", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(Millisecond, func() { n++ })
	e.Schedule(2*Millisecond, func() { n++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 {
		t.Fatalf("n = %d after one step, want 1", n)
	}
	if !e.Step() {
		t.Fatal("Step returned false with one pending event")
	}
	if e.Step() {
		t.Fatal("Step returned true with empty queue")
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-Millisecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Errorf("clock = %v, want 0", e.Now())
	}
}

// Property: for any set of delays, events fire in non-decreasing time
// order and the engine processes exactly len(delays) events.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Microsecond, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return e.Processed() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransmissionTime(t *testing.T) {
	tests := []struct {
		bytes int
		rate  int64
		want  Time
	}{
		{1500, 100_000_000, 120 * Microsecond}, // 1500B @ 100Mb/s
		{1500, 1_000_000_000, 12 * Microsecond},
		{0, 100_000_000, 0},
		{1, 1_000_000_000, 8},        // 8ns
		{1460, 10_000_000, 1168_000}, // 1460B @ 10Mb/s = 1.168ms
		{1000, 0, 0},                 // degenerate rate
		{1, 3, 2_666_666_667},        // rounds up
	}
	for _, tc := range tests {
		if got := TransmissionTime(tc.bytes, tc.rate); got != tc.want {
			t.Errorf("TransmissionTime(%d, %d) = %d, want %d", tc.bytes, tc.rate, got, tc.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
		{-1500, "-1.500us"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
}
