package sim

import "testing"

// TestPeekHorizon pins the earliest-output-time primitive: next event
// time plus delay, saturating at MaxTime for empty queues and for sums
// that would overflow.
func TestPeekHorizon(t *testing.T) {
	e := NewEngine()
	if got := e.PeekHorizon(Millisecond); got != MaxTime {
		t.Errorf("empty queue: PeekHorizon = %v, want MaxTime", got)
	}
	ev := e.At(5*Millisecond, func() {})
	if got, want := e.PeekHorizon(2*Millisecond), 7*Millisecond; got != want {
		t.Errorf("PeekHorizon = %v, want %v", got, want)
	}
	if got := e.PeekHorizon(MaxTime - Millisecond); got != MaxTime {
		t.Errorf("near-overflow sum: PeekHorizon = %v, want MaxTime", got)
	}
	// A cancelled head must not anchor the promise.
	ev.Cancel()
	if got := e.PeekHorizon(Millisecond); got != MaxTime {
		t.Errorf("cancelled head: PeekHorizon = %v, want MaxTime", got)
	}
	e.At(9*Millisecond, func() {})
	if got, want := e.PeekHorizon(0), 9*Millisecond; got != want {
		t.Errorf("zero delay: PeekHorizon = %v, want %v", got, want)
	}
}

// TestAtArgKeyedOrdering pins the keyed tie-break: same-time keyed
// events fire after all same-time sequence-ordered events and among
// themselves in key order, regardless of insertion order.
func TestAtArgKeyedOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }
	const at = 3 * Millisecond
	top := uint64(1) << 63
	// Insert in an order hostile to the desired firing order: high key
	// first, locals interleaved.
	e.AtArgKeyed(at, rec, 12, top|7, 0)
	e.AtArg(at, rec, 1)
	e.AtArgKeyed(at, rec, 11, top|2, 0)
	e.AtArg(at, rec, 2)
	e.AtArgKeyed(at, rec, 10, top, 0)
	e.AtArg(at, rec, 3)
	e.Run()
	want := []int{1, 2, 3, 10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v", got, want)
		}
	}
}
