package sim

import "testing"

// TestScheduleArg covers the arg-carrying scheduling variant: the value
// is delivered, ordering interleaves with closure events by scheduling
// order, and cancellation works.
func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	e.ScheduleArg(Millisecond, record, 1)
	e.Schedule(Millisecond, func() { got = append(got, 2) })
	e.AtArg(Millisecond, record, 3)
	ev := e.ScheduleArg(Millisecond, record, 4)
	ev.Cancel()
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d, want 3", e.Processed())
	}
}

// TestEventPoolReuse checks that fired events are recycled: a long
// schedule/run cycle must stop allocating once the pool is primed.
func TestEventPoolReuse(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	tick := func() {
		e.Schedule(Millisecond, fn)
		e.Run()
	}
	for i := 0; i < 64; i++ {
		tick()
	}
	if allocs := testing.AllocsPerRun(200, tick); allocs != 0 {
		t.Errorf("steady-state schedule+run allocates %.1f per cycle, want 0", allocs)
	}
}

// TestTimerReArmAllocationFree is the retransmit-timer regression: once
// warm, re-arming a timer (the per-ACK hot path of every transport) must
// not allocate — no closure per Reset, events recycled through the
// compaction path.
func TestTimerReArmAllocationFree(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	// Warm up: grow the heap to its steady compaction cycle and prime
	// the event free list.
	for i := 0; i < 4*compactFloor; i++ {
		tm.Reset(Millisecond)
	}
	if allocs := testing.AllocsPerRun(500, func() { tm.Reset(Millisecond) }); allocs != 0 {
		t.Errorf("timer re-arm allocates %.2f per Reset, want 0", allocs)
	}
	// The heap must not have grown without bound either: cancelled
	// entries are compacted away.
	if len(e.heap) > 2*compactFloor {
		t.Errorf("heap holds %d entries after re-arm storm, want <= %d", len(e.heap), 2*compactFloor)
	}
}

// TestEngineHeapCapacityTrim checks that the queue's backing array
// shrinks after a burst drains: Step-driven and RunUntil-driven loops
// alike must not pin a big run's worst-case footprint forever.
func TestEngineHeapCapacityTrim(t *testing.T) {
	e := NewEngine()
	const n = 1 << 15
	fn := func() {}
	for i := 0; i < n; i++ {
		e.Schedule(Time(i)*Microsecond, fn)
	}
	if cap(e.heap) < n {
		t.Fatalf("setup: heap cap %d < %d events", cap(e.heap), n)
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
	if got := cap(e.heap); got > 2*trimFloor {
		t.Errorf("heap capacity %d after drain, want <= %d (trimmed)", got, 2*trimFloor)
	}
	if got := len(e.free); got > 2*trimFloor {
		t.Errorf("free list holds %d events after drain, want <= %d (trimmed)", got, 2*trimFloor)
	}
	// The engine keeps working after trimming.
	fired := false
	e.Schedule(Millisecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("event scheduled after trim never fired")
	}
}

// TestRecycledEventStaysInert locks the documented contract boundary: a
// handle to a fired or cancelled event reads as not pending even after
// the engine has recycled the underlying storage.
func TestRecycledEventStaysInert(t *testing.T) {
	e := NewEngine()
	fired := e.Schedule(Millisecond, func() {})
	e.Run()
	if fired.Pending() {
		t.Error("fired event still pending after recycling")
	}
	cancelled := e.Schedule(Millisecond, func() {})
	cancelled.Cancel()
	e.Run()
	if cancelled.Pending() {
		t.Error("cancelled event still pending after recycling")
	}
}
