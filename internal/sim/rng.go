package sim

import "math"

// RNG is a small, fast, deterministic random number generator (PCG-XSH-RR
// 64/32). The experiments require reproducible randomness independent of
// the Go runtime's math/rand seeding behaviour, and frequently need many
// independent streams (one per flow, one per switch); PCG's (state,
// increment) pair gives cheap independent streams.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// NewRNG returns a generator seeded with seed on stream 0.
func NewRNG(seed uint64) *RNG {
	return NewRNGStream(seed, 0)
}

// NewRNGStream returns a generator seeded with seed on the given stream.
// Different streams with the same seed are statistically independent.
func NewRNGStream(seed, stream uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed, stream)
	return r
}

// Reseed reinitialises r in place to exactly the state NewRNGStream(seed,
// stream) would return, without allocating — the reseeding path pooled
// run instances use when a recycled network is re-keyed to a new seed.
func (r *RNG) Reseed(seed, stream uint64) {
	r.inc = stream<<1 | 1
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
}

// Split derives a new independent generator from this one, for giving each
// simulated entity its own stream without coordinating stream numbers.
func (r *RNG) Split() *RNG {
	return NewRNGStream(r.Uint64(), r.Uint64())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.Uint32()
		m := uint64(v) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Int63n returns a uniformly distributed int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	maxV := uint64(1)<<63 - 1
	limit := maxV - maxV%uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < limit {
			return int64(v % uint64(n))
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// for Poisson inter-arrival sampling.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomises the order of n elements using swap, as in
// math/rand.Shuffle (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Derangement returns a random permutation of [0, n) with no fixed points
// (p[i] != i for all i), used for permutation traffic matrices where a
// host must never send to itself. It panics if n < 2.
func (r *RNG) Derangement(n int) []int {
	if n < 2 {
		panic("sim: Derangement needs n >= 2")
	}
	// Rejection sampling: the probability a random permutation is a
	// derangement tends to 1/e, so a handful of attempts suffice.
	for {
		p := r.Perm(n)
		ok := true
		for i, v := range p {
			if v == i {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}
