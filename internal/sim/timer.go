package sim

// Timer is a restartable one-shot timer bound to an engine, used by the
// transport stacks for retransmission timeouts. Unlike a bare Event it can
// be reset and stopped repeatedly; each Reset supersedes the previous
// schedule.
type Timer struct {
	eng *Engine
	ev  *Event
	fn  func()
}

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)schedules the timer to fire after delay, cancelling any
// previously scheduled expiry.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.ev = t.eng.Schedule(delay, t.fire)
}

// ResetAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ev = t.eng.At(at, t.fire)
}

// Stop cancels the pending expiry, if any.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Active reports whether the timer is scheduled to fire.
func (t *Timer) Active() bool { return t.ev.Pending() }

// Deadline returns the absolute expiry time. It is only meaningful while
// the timer is Active.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.at
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}
