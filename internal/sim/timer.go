package sim

// Timer is a restartable one-shot timer bound to an engine, used by the
// transport stacks for retransmission timeouts. Unlike a bare Event it can
// be reset and stopped repeatedly; each Reset supersedes the previous
// schedule. Re-arming is allocation-free: the expiry callback is built
// once at construction and the engine recycles the underlying events.
type Timer struct {
	eng EventScheduler
	ev  *Event
	fn  func()
}

// timerFire is the shared engine callback for all timers; the timer
// itself rides in the event's arg slot. A static function plus an arg is
// what keeps Reset — called per ACK by the retransmit timers — from
// allocating a fresh method-value closure each time.
func timerFire(a any) { a.(*Timer).fire() }

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(eng EventScheduler, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)schedules the timer to fire after delay, cancelling any
// previously scheduled expiry.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.ev = t.eng.ScheduleArg(delay, timerFire, t)
}

// ResetAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ev = t.eng.AtArg(at, timerFire, t)
}

// Stop cancels the pending expiry, if any.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Active reports whether the timer is scheduled to fire.
func (t *Timer) Active() bool { return t.ev.Pending() }

// Deadline returns the absolute expiry time. It is only meaningful while
// the timer is Active.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.at
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}
