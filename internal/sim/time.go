// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock with nanosecond resolution, an event queue ordered by
// (time, insertion sequence), cancellable events, restartable timers and a
// seedable PCG random number generator.
//
// The engine is single-threaded by design. Determinism is a hard
// requirement for the experiments built on top of it: two runs with the
// same seed must produce byte-identical results, so ties between events
// scheduled for the same instant are broken by insertion order.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Duration so that wall
// clock and virtual clock values cannot be mixed by accident.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// TransmissionTime returns the serialisation delay of sizeBytes bytes on a
// link of rate bitsPerSecond. It rounds up to a whole nanosecond so that a
// non-empty packet never takes zero time on a finite-rate link.
func TransmissionTime(sizeBytes int, bitsPerSecond int64) Time {
	if bitsPerSecond <= 0 {
		return 0
	}
	bits := int64(sizeBytes) * 8
	ns := (bits*int64(Second) + bitsPerSecond - 1) / bitsPerSecond
	return Time(ns)
}
