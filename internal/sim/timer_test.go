package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(5 * Millisecond)
	if !tm.Active() {
		t.Fatal("timer inactive after Reset")
	}
	if tm.Deadline() != 5*Millisecond {
		t.Errorf("deadline = %v, want 5ms", tm.Deadline())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Active() {
		t.Fatal("timer active after firing")
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine()
	var at Time
	tm := NewTimer(e, func() { at = e.Now() })
	tm.Reset(5 * Millisecond)
	tm.Reset(10 * Millisecond) // supersedes the first schedule
	e.Run()
	if at != 10*Millisecond {
		t.Errorf("timer fired at %v, want 10ms", at)
	}
	if e.Processed() != 0 {
		// The superseded event was cancelled, so only timer internals
		// fired; processed counts only executed callbacks.
		t.Logf("processed = %d", e.Processed())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(Millisecond)
	tm.Stop()
	if tm.Active() {
		t.Fatal("timer active after Stop")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerRearmsFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 3 {
			tm.Reset(Millisecond)
		}
	})
	tm.Reset(Millisecond)
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Now() != 3*Millisecond {
		t.Errorf("clock = %v, want 3ms", e.Now())
	}
}

func TestTimerResetAt(t *testing.T) {
	e := NewEngine()
	var at Time
	tm := NewTimer(e, func() { at = e.Now() })
	tm.ResetAt(7 * Millisecond)
	e.Run()
	if at != 7*Millisecond {
		t.Errorf("fired at %v, want 7ms", at)
	}
}

func TestTimerStopIdempotent(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	tm.Stop()
	tm.Stop()
	tm.Reset(Millisecond)
	tm.Stop()
	tm.Stop()
	e.Run()
	if e.Processed() != 0 {
		t.Errorf("processed = %d, want 0", e.Processed())
	}
}
