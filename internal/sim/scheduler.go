package sim

// EventScheduler is the scheduling surface the protocol stacks and the
// network emulation program against. The sequential *Engine implements it
// directly; the sharded engine substitutes thin shims (per-shard engine
// views, cross-shard outboxes) so the same transport and link code runs
// unchanged whether a node lives on the single sequential heap or on one
// shard of a partitioned fabric.
//
// The contract matches Engine exactly: Schedule/ScheduleArg are relative
// to Now, At/AtArg are absolute and panic on times in the past, and
// simultaneous events fire in scheduling order. Implementations that
// cross a shard boundary may return a nil *Event — callers that need to
// cancel must therefore tolerate nil handles (Event.Cancel already does).
// AtArgClass is AtArg with an explicit horizon class (see
// Engine.SetHorizonClasses) — the hook netem links use to re-tag a
// packet's delivery with the receiving node's boundary distance.
// Implementations without class tracking treat it as AtArg.
type EventScheduler interface {
	Now() Time
	Schedule(delay Time, fn func()) *Event
	ScheduleArg(delay Time, fn func(any), arg any) *Event
	At(t Time, fn func()) *Event
	AtArg(t Time, fn func(any), arg any) *Event
	AtArgClass(t Time, fn func(any), arg any, class uint8) *Event
}

var _ EventScheduler = (*Engine)(nil)
