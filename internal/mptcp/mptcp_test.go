package mptcp

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
)

func fatTree4(eng *sim.Engine) *topology.FatTree {
	return topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig(), Seed: 1})
}

func TestMPTCPTransferCompletes(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	rng := sim.NewRNG(42)
	const size = 70000
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: size, RNG: rng,
	})
	var doneAt sim.Time
	conn.Receiver().OnComplete = func() { doneAt = eng.Now() }
	acked := false
	conn.OnAllAcked = func() { acked = true }
	conn.Start()
	eng.Run()

	if !conn.Receiver().Complete() {
		t.Fatal("transfer did not complete")
	}
	if conn.Receiver().Delivered() != size {
		t.Fatalf("delivered %d, want %d", conn.Receiver().Delivered(), size)
	}
	if !acked {
		t.Error("OnAllAcked did not fire")
	}
	if doneAt <= 0 {
		t.Error("no completion time recorded")
	}
	if got := conn.Stats().BytesSent; got < size {
		t.Errorf("bytes sent = %d, want >= %d", got, size)
	}
}

func TestMPTCPSpreadsAcrossSubflows(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	rng := sim.NewRNG(7)
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: 70000, RNG: rng,
	})
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	active := 0
	ports := map[uint16]bool{}
	for _, sub := range conn.Subflows() {
		if sub.Stats.SegmentsSent > 0 {
			active++
		}
	}
	if active < 4 {
		t.Errorf("only %d/8 subflows carried data for a 50-segment flow", active)
	}
	_ = ports
}

func TestMPTCPSubflowCountConfig(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	for _, n := range []int{1, 2, 4, 9} {
		cfg := DefaultConfig()
		cfg.Subflows = n
		conn := Dial(eng, cfg, Options{
			SrcHost: ft.Host(0), DstHost: ft.Host(15),
			FlowID: uint64(100 + n), Size: 14000, RNG: sim.NewRNG(uint64(n)),
		})
		if len(conn.Subflows()) != n {
			t.Errorf("subflows = %d, want %d", len(conn.Subflows()), n)
		}
		conn.Start()
		eng.Run()
		if !conn.Receiver().Complete() {
			t.Errorf("n=%d: incomplete", n)
		}
	}
}

func TestMPTCPUnboundedFlowKeepsDelivering(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: -1, RNG: sim.NewRNG(3),
	})
	conn.Start()
	eng.RunUntil(500 * sim.Millisecond)
	d1 := conn.Receiver().Delivered()
	eng.RunUntil(1000 * sim.Millisecond)
	d2 := conn.Receiver().Delivered()
	if d1 <= 0 {
		t.Fatal("no bytes delivered in 500ms")
	}
	if d2 <= d1 {
		t.Fatal("delivery stalled on unbounded flow")
	}
	// Goodput sanity: at most the access-link rate (100 Mb/s = 12.5 MB/s),
	// at least a tenth of it.
	rate := float64(d2) / 1.0 // bytes per second over 1s
	if rate > 13e6 || rate < 1.25e6 {
		t.Errorf("goodput = %.2f MB/s, want within (1.25, 13)", rate/1e6)
	}
}

func TestMPTCPJoinDelayStaggersSubflows(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	cfg := DefaultConfig()
	cfg.Subflows = 4
	cfg.JoinDelay = 10 * sim.Millisecond
	conn := Dial(eng, cfg, Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: -1, RNG: sim.NewRNG(5),
	})
	conn.Start()
	eng.RunUntil(5 * sim.Millisecond)
	if conn.Subflows()[0].Stats.SegmentsSent == 0 {
		t.Error("first subflow idle before join delay")
	}
	for i := 1; i < 4; i++ {
		if conn.Subflows()[i].Stats.SegmentsSent != 0 {
			t.Errorf("subflow %d sent before its join delay", i)
		}
	}
	eng.RunUntil(50 * sim.Millisecond)
	for i := 1; i < 4; i++ {
		if conn.Subflows()[i].Stats.SegmentsSent == 0 {
			t.Errorf("subflow %d never started", i)
		}
	}
}

func TestMPTCPDataStartAndSubflowBase(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	// Receiver expects 70000 bytes; the connection only carries
	// [30000, 70000) — the MMPTCP handover pattern.
	rcv := tcp.NewReceiver(eng, tcp.DefaultConfig(), ft.Host(15), 1, 70000)
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: 70000, DataStart: 30000,
		SubflowBase: 1, RNG: sim.NewRNG(9),
		Receiver: rcv,
	})
	conn.Start()
	eng.Run()
	if rcv.Complete() {
		t.Fatal("receiver complete without the first 30000 bytes")
	}
	if got := rcv.Delivered(); got != 40000 {
		t.Fatalf("delivered = %d, want 40000", got)
	}
	// Now deliver the head as subflow 0 (what the PS phase would do).
	head := tcp.NewSender(eng, tcp.DefaultConfig(), tcp.SenderOptions{
		Host: ft.Host(0), Dst: ft.Host(15).ID(), FlowID: 1, Subflow: 0,
		SrcPort: 9999, DstPort: 80,
		Source: &tcp.BytesSource{Size: 30000},
	})
	head.Start()
	eng.Run()
	if !rcv.Complete() {
		t.Fatal("receiver incomplete after head delivery")
	}
	if got := rcv.Delivered(); got != 70000 {
		t.Fatalf("delivered = %d, want 70000", got)
	}
}

// TestLIAIncrementCoupling checks the RFC 6356 algorithm directly: for
// two subflows with equal windows and RTTs in congestion avoidance,
// alpha = 1/2, so the aggregate growth per window of ACKs is half of
// what two independent Reno flows would add.
func TestLIAIncrementCoupling(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	cfg := DefaultConfig()
	cfg.Subflows = 2
	conn := Dial(eng, cfg, Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: 1_400_000, RNG: sim.NewRNG(11),
	})
	conn.Start()
	eng.Run() // completes losslessly, giving every subflow an RTT sample
	if !conn.Receiver().Complete() {
		t.Fatal("setup transfer incomplete")
	}

	// Freeze both subflows at equal windows in congestion avoidance.
	mss := 1400.0
	const w = 70_000.0 // 50 segments
	for _, sub := range conn.subflows {
		sub.Cwnd = w
		sub.Ssthresh = w // Cwnd >= Ssthresh -> congestion avoidance
	}
	lia := &liaCC{conn: conn}
	sub := conn.subflows[0]

	// Expected alpha from RFC 6356 with the subflows' measured RTTs:
	// alpha = total * max_i(w_i/rtt_i^2) / (sum_i w_i/rtt_i)^2.
	var best, sumRatio float64
	for _, s := range conn.subflows {
		r := s.SRTT().Seconds()
		if v := s.Cwnd / (r * r); v > best {
			best = v
		}
		sumRatio += s.Cwnd / r
	}
	wantAlpha := (2 * w) * best / (sumRatio * sumRatio)
	if a := lia.alpha(2 * w); a < wantAlpha*0.999 || a > wantAlpha*1.001 {
		t.Errorf("alpha = %.4f, want %.4f (spec formula)", a, wantAlpha)
	}
	// With equal windows and near-equal paths alpha stays close to 1/2
	// (exactly 1/2 for identical RTTs, RFC 6356 section 3).
	if wantAlpha < 0.4 || wantAlpha > 0.9 {
		t.Errorf("alpha = %.3f outside the plausible band for symmetric windows", wantAlpha)
	}

	before := sub.Cwnd
	lia.OnAck(sub, int(mss))
	liaInc := sub.Cwnd - before
	wantInc := wantAlpha * mss * mss / (2 * w)
	if solo := mss * mss / w; wantInc > solo {
		wantInc = solo // LIA never exceeds Reno on the same subflow
	}
	if liaInc < wantInc*0.999 || liaInc > wantInc*1.001 {
		t.Errorf("LIA increment = %.3f bytes, want %.3f", liaInc, wantInc)
	}
	// The coupled increase must be clearly below independent Reno.
	renoInc := mss * mss / w
	if liaInc >= renoInc/2 {
		t.Errorf("LIA increment %.3f not clearly below Reno %.3f", liaInc, renoInc)
	}
}

// TestLIASharedBottleneckBounded is the integration-level sanity check:
// a coupled 2-subflow connection sharing one drop-tail bottleneck with a
// plain TCP flow neither starves nor utterly dominates. (Exact fairness
// under synchronised drop-tail losses additionally depends on SACK-style
// recovery, which NewReno lacks; RFC 6356's growth coupling is verified
// deterministically above.)
func TestLIASharedBottleneckBounded(t *testing.T) {
	eng := sim.NewEngine()
	link := topology.DefaultLinkConfig()
	link.RateBps = 1_000_000_000 // fast access links
	d := topology.NewDumbbell(eng, topology.DumbbellConfig{
		HostsPerSide:  2,
		Link:          link,
		BottleneckBps: 100_000_000,
	})
	cfg := DefaultConfig()
	cfg.Subflows = 2
	conn := Dial(eng, cfg, Options{
		SrcHost: d.Left(0), DstHost: d.Right(0),
		FlowID: 1, Size: -1, RNG: sim.NewRNG(11),
	})
	rcv := tcp.NewReceiver(eng, tcp.DefaultConfig(), d.Right(1), 2, -1)
	tcpSnd := tcp.NewSender(eng, tcp.DefaultConfig(), tcp.SenderOptions{
		Host: d.Left(1), Dst: d.Right(1).ID(), FlowID: 2,
		SrcPort: 7777, DstPort: 80,
		Source: &tcp.BytesSource{Size: -1},
	})
	conn.Start()
	tcpSnd.Start()
	eng.RunUntil(5 * sim.Second)

	ratio := float64(conn.Receiver().Delivered()) / float64(rcv.Delivered())
	t.Logf("MPTCP/TCP share ratio = %.2f", ratio)
	if ratio < 0.5 || ratio > 3.5 {
		t.Errorf("share ratio %.2f outside sane co-existence bounds", ratio)
	}
	// The bottleneck must be near-saturated by the pair.
	total := conn.Receiver().Delivered() + rcv.Delivered()
	mbps := float64(total) * 8 / 5 / 1e6
	if mbps < 80 {
		t.Errorf("aggregate goodput %.1f Mb/s; bottleneck underutilised", mbps)
	}
}

func TestMPTCPRequiresRNG(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	defer func() {
		if recover() == nil {
			t.Error("Dial without RNG did not panic")
		}
	}()
	Dial(eng, DefaultConfig(), Options{SrcHost: ft.Host(0), DstHost: ft.Host(1), FlowID: 1, Size: 100})
}

func TestMPTCPCloseUnregisters(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: 70000, RNG: sim.NewRNG(1),
	})
	conn.Start()
	eng.RunUntil(2 * sim.Millisecond)
	conn.Close()
	eng.Run()
	// Whatever was in flight becomes unclaimed on both ends.
	if ft.Host(0).Unclaimed == 0 && ft.Host(15).Unclaimed == 0 {
		t.Error("expected unclaimed packets after Close mid-flight")
	}
}

func TestAggregateSRTT(t *testing.T) {
	eng := sim.NewEngine()
	ft := fatTree4(eng)
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: ft.Host(0), DstHost: ft.Host(15),
		FlowID: 1, Size: 140000, RNG: sim.NewRNG(2),
	})
	if got := conn.aggregateSRTT(); got != 0 {
		t.Errorf("aggregateSRTT before start = %v", got)
	}
	conn.Start()
	eng.Run()
	if got := conn.aggregateSRTT(); got <= 0 {
		t.Error("aggregateSRTT = 0 after transfer")
	}
	_ = netem.FlagData
}

func TestMPTCPSpreadsSubflowsAcrossInterfaces(t *testing.T) {
	eng := sim.NewEngine()
	m := topology.NewMultiHomed(eng, topology.MultiHomedConfig{K: 4, Link: topology.DefaultLinkConfig()})
	conn := Dial(eng, DefaultConfig(), Options{
		SrcHost: m.Hosts[0], DstHost: m.Hosts[15],
		FlowID: 1, Size: 280_000, RNG: sim.NewRNG(5),
	})
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("incomplete")
	}
	// Both uplinks of the dual-homed sender must have carried data.
	for i, up := range m.Hosts[0].Uplinks() {
		if up.Stats.TxPackets == 0 {
			t.Errorf("uplink %d idle; subflows not spread across interfaces", i)
		}
	}
}
