package mptcp

import (
	"repro/internal/sim"
	"repro/internal/tcp"
)

// liaCC implements the Linked Increases Algorithm (RFC 6356): in
// congestion avoidance, for each ACK of acked bytes on subflow r,
//
//	cwnd_r += min( alpha * MSS * acked / cwnd_total , MSS * acked / cwnd_r )
//
// where
//
//	alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / ( sum_i cwnd_i / rtt_i )^2
//
// This caps the multipath connection's aggressiveness at that of a
// single-path TCP on the best path, while shifting traffic away from
// congested paths. Slow start below ssthresh is standard. Window
// decreases are per-subflow halving, implemented by the tcp.Sender.
type liaCC struct {
	conn *Connection
}

// OnAck implements tcp.CongestionControl.
func (l *liaCC) OnAck(s *tcp.Sender, ackedBytes int) {
	mss := float64(s.Config().MSS)
	if s.Cwnd < s.Ssthresh {
		inc := float64(ackedBytes)
		if inc > mss {
			inc = mss
		}
		s.Cwnd += inc
		return
	}
	total := l.totalCwnd()
	if total <= 0 {
		total = s.Cwnd
	}
	alpha := l.alpha(total)
	inc := alpha * mss * float64(ackedBytes) / total
	solo := mss * float64(ackedBytes) / s.Cwnd
	if solo < inc {
		inc = solo
	}
	s.Cwnd += inc
}

func (l *liaCC) totalCwnd() float64 {
	var t float64
	for _, sub := range l.conn.subflows {
		t += sub.Cwnd
	}
	return t
}

// alpha computes the RFC 6356 coupling factor. Subflows without an RTT
// sample yet are skipped; if none has a sample, alpha degenerates to 1
// (plain Reno growth), which matches a fresh connection still in slow
// start on every path.
func (l *liaCC) alpha(total float64) float64 {
	var best float64     // max_i cwnd_i / rtt_i^2
	var sumRatio float64 // sum_i cwnd_i / rtt_i
	for _, sub := range l.conn.subflows {
		rtt := sub.SRTT()
		if rtt <= 0 {
			continue
		}
		sec := rtt.Seconds()
		r := sub.Cwnd / (sec * sec)
		if r > best {
			best = r
		}
		sumRatio += sub.Cwnd / sec
	}
	if sumRatio <= 0 || best <= 0 {
		return 1
	}
	return total * best / (sumRatio * sumRatio)
}

var _ tcp.CongestionControl = (*liaCC)(nil)

// aggregateSRTT returns the mean smoothed RTT across subflows that have
// samples (diagnostics only).
func (c *Connection) aggregateSRTT() sim.Time {
	var sum sim.Time
	var n int
	for _, sub := range c.subflows {
		if rtt := sub.SRTT(); rtt > 0 {
			sum += rtt
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}
