// Package mptcp implements Multipath TCP over the simulated network: a
// connection opens N subflows with independently randomised source ports
// (so hash-based ECMP places them on distinct paths), distributes
// connection-level data across subflows on demand, and couples their
// congestion-avoidance growth with the Linked Increases Algorithm (LIA,
// RFC 6356) — the model the paper evaluates against (its custom ns-3
// MPTCP, reference [5] in the paper).
//
// Allocation is pull-based and permanent: a subflow with window space
// requests the next chunk of data-level sequence space and then owns it,
// including retransmissions. A connection-level receiver (tcp.Receiver)
// acknowledges each subflow cumulatively and tracks data-level delivery.
// This reproduces the failure mode at the heart of the paper's Figure 1:
// with many subflows, each congestion window is tiny, a single loss
// often cannot gather three duplicate ACKs, and the whole connection
// stalls on that subflow's RTO.
package mptcp

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Config parametrises an MPTCP connection.
type Config struct {
	TCP      tcp.Config
	Subflows int // number of subflows; default 8 (the paper's headline setting)
	// JoinDelay staggers the start of subflows after the first; 0 opens
	// all subflows at connection establishment, as the paper's ns-3
	// model does.
	JoinDelay sim.Time
	// Uncoupled replaces LIA with independent Reno per subflow (an
	// ablation knob; the paper's MPTCP is coupled).
	Uncoupled bool
	// SACK enables selective-acknowledgement recovery on every subflow
	// (ablation: the paper's era modelled NewReno).
	SACK bool
}

// DefaultConfig returns the paper's MPTCP configuration: 8 subflows, LIA.
func DefaultConfig() Config {
	return Config{TCP: tcp.DefaultConfig(), Subflows: 8}
}

func (c *Config) applyDefaults() {
	if c.Subflows == 0 {
		c.Subflows = 8
	}
}

// Options identifies a connection's endpoints and data range.
type Options struct {
	SrcHost *netem.Host
	DstHost *netem.Host
	FlowID  uint64
	// Size is the total connection bytes (-1 for an unbounded
	// background flow).
	Size int64
	// DataStart offsets the first data-level byte this connection is
	// responsible for. Plain MPTCP uses 0; MMPTCP hands over the bytes
	// remaining after its packet-scatter phase.
	DataStart int64
	// SubflowBase numbers the first subflow. Plain MPTCP uses 0;
	// MMPTCP reserves subflow 0 for the packet-scatter flow.
	SubflowBase int8
	// DstPort is the destination port (default 80); source ports are
	// drawn from RNG per subflow.
	DstPort uint16
	// RNG seeds subflow source-port randomisation. Required.
	RNG *sim.RNG
	// Receiver, when non-nil, is shared with a pre-existing receive
	// endpoint (MMPTCP's, which also serves the packet-scatter flow).
	// When nil, the connection creates its own tcp.Receiver.
	Receiver *tcp.Receiver
	// Recorder, when non-nil, is handed to every subflow sender so the
	// structured trace sees subflow opens/closes and per-segment events.
	Recorder *trace.Recorder
}

// Connection is the sender side of an MPTCP connection plus its
// (possibly shared) receiver.
type Connection struct {
	eng sim.EventScheduler // the source host's engine: sender-side scheduling
	cfg Config

	flowID   uint64
	subflows []*tcp.Sender
	rcv      *tcp.Receiver
	ownRcv   bool

	// Data-level allocation pool [next, end); end == -1 is unbounded.
	next int64
	end  int64

	doneSubflows int

	// OnAllAcked fires once when every subflow has delivered and had
	// acknowledged all data allocated to it.
	OnAllAcked func()
}

// Dial creates the connection: a receiver on the destination host
// (unless shared) and cfg.Subflows senders on the source host. Subflows
// are idle until Start. Endpoints bind to their own host's engine (the
// receiver to the destination's, the senders to the source's) — the
// same engine sequentially, the owning shards' under a sharded fabric —
// so eng is accepted for compatibility but each endpoint schedules
// where it lives.
func Dial(eng sim.EventScheduler, cfg Config, opt Options) *Connection {
	cfg.applyDefaults()
	if opt.RNG == nil {
		panic("mptcp: Options.RNG is required")
	}
	if opt.DstPort == 0 {
		opt.DstPort = 80
	}
	_ = eng
	c := &Connection{
		eng:    opt.SrcHost.Engine(),
		cfg:    cfg,
		flowID: opt.FlowID,
		next:   opt.DataStart,
		end:    -1,
	}
	if opt.Size >= 0 {
		c.end = opt.Size
		if c.end < c.next {
			panic(fmt.Sprintf("mptcp: DataStart %d beyond Size %d", opt.DataStart, opt.Size))
		}
	}
	c.rcv = opt.Receiver
	if c.rcv == nil {
		c.rcv = tcp.NewReceiver(opt.DstHost.Engine(), cfg.TCP, opt.DstHost, opt.FlowID, opt.Size)
		c.ownRcv = true
	}

	var cc tcp.CongestionControl
	if cfg.Uncoupled {
		cc = tcp.RenoCC{}
	} else {
		cc = &liaCC{conn: c}
	}
	// On multi-homed hosts, spread subflows round-robin across the
	// interfaces (the paper's roadmap: more parallel paths at the
	// access layer).
	ifaces := len(opt.SrcHost.Uplinks())
	if ifaces == 0 {
		ifaces = 1
	}
	for i := 0; i < cfg.Subflows; i++ {
		sub := tcp.NewSender(opt.SrcHost.Engine(), cfg.TCP, tcp.SenderOptions{
			Host:       opt.SrcHost,
			Iface:      i % ifaces,
			Dst:        opt.DstHost.ID(),
			FlowID:     opt.FlowID,
			Subflow:    opt.SubflowBase + int8(i),
			SrcPort:    uint16(10000 + opt.RNG.Intn(50000)),
			DstPort:    opt.DstPort,
			Source:     &subflowSource{conn: c},
			CC:         cc,
			EnableSACK: cfg.SACK,
			Recorder:   opt.Recorder,
		})
		sub.OnAllAcked = c.subflowDone
		c.subflows = append(c.subflows, sub)
	}
	return c
}

// Start opens all subflows (staggered by JoinDelay if configured).
func (c *Connection) Start() {
	for i, sub := range c.subflows {
		if i == 0 || c.cfg.JoinDelay == 0 {
			sub.Start()
			continue
		}
		sub := sub
		c.eng.Schedule(sim.Time(i)*c.cfg.JoinDelay, sub.Start)
	}
}

// Receiver returns the connection's receive endpoint.
func (c *Connection) Receiver() *tcp.Receiver { return c.rcv }

// Subflows returns the subflow senders (read-only use).
func (c *Connection) Subflows() []*tcp.Sender { return c.subflows }

// Stats aggregates sender statistics across subflows.
func (c *Connection) Stats() tcp.SenderStats {
	var agg tcp.SenderStats
	for _, s := range c.subflows {
		st := s.Stats
		agg.SegmentsSent += st.SegmentsSent
		agg.BytesSent += st.BytesSent
		agg.Retransmissions += st.Retransmissions
		agg.FastRetransmits += st.FastRetransmits
		agg.Timeouts += st.Timeouts
		agg.AcksReceived += st.AcksReceived
		agg.DupAcksReceived += st.DupAcksReceived
	}
	return agg
}

// allocate grants up to maxBytes from the connection pool.
func (c *Connection) allocate(maxBytes int) (int64, int, bool) {
	if c.end >= 0 && c.next >= c.end {
		return c.next, 0, true
	}
	n := int64(maxBytes)
	if c.end >= 0 && c.next+n > c.end {
		n = c.end - c.next
	}
	seq := c.next
	c.next += n
	return seq, int(n), c.end >= 0 && c.next >= c.end
}

func (c *Connection) subflowDone() {
	c.doneSubflows++
	if c.doneSubflows == len(c.subflows) && c.OnAllAcked != nil {
		c.OnAllAcked()
	}
}

// Close tears down every subflow and the owned receiver.
func (c *Connection) Close() {
	for _, s := range c.subflows {
		s.Close()
	}
	if c.ownRcv {
		c.rcv.Close()
	}
}

// subflowSource adapts the connection pool to the tcp.DataSource pulled
// by one subflow.
type subflowSource struct{ conn *Connection }

// Next implements tcp.DataSource.
func (s *subflowSource) Next(maxBytes int) (int64, int, bool) {
	return s.conn.allocate(maxBytes)
}
