// Package mptcp implements Multipath TCP over the simulated network: a
// connection opens N subflows with independently randomised source ports
// (so hash-based ECMP places them on distinct paths), distributes
// connection-level data across subflows on demand, and couples their
// congestion-avoidance growth with the Linked Increases Algorithm (LIA,
// RFC 6356) — the model the paper evaluates against (its custom ns-3
// MPTCP, reference [5] in the paper).
//
// Allocation is pull-based and permanent: a subflow with window space
// requests the next chunk of data-level sequence space and then owns it,
// including retransmissions. A connection-level receiver (tcp.Receiver)
// acknowledges each subflow cumulatively and tracks data-level delivery.
// This reproduces the failure mode at the heart of the paper's Figure 1:
// with many subflows, each congestion window is tiny, a single loss
// often cannot gather three duplicate ACKs, and the whole connection
// stalls on that subflow's RTO.
package mptcp

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Config parametrises an MPTCP connection.
type Config struct {
	TCP      tcp.Config
	Subflows int // number of subflows; default 8 (the paper's headline setting)
	// JoinDelay staggers the start of subflows after the first; 0 opens
	// all subflows at connection establishment, as the paper's ns-3
	// model does.
	JoinDelay sim.Time
	// Uncoupled replaces LIA with independent Reno per subflow (an
	// ablation knob; the paper's MPTCP is coupled).
	Uncoupled bool
	// SACK enables selective-acknowledgement recovery on every subflow
	// (ablation: the paper's era modelled NewReno).
	SACK bool

	// DeadRTOs, when > 0, arms subflow re-dialing: a subflow that fires
	// this many consecutive RTOs without a new ACK is declared dead,
	// closed, and replaced by a fresh sender on a new randomised source
	// port (re-hashing onto a hopefully-live ECMP path). The dead
	// subflow's unacknowledged data-level allocation migrates back to
	// the connection for re-pull. Zero disables recovery entirely: no
	// extra RNG draws, no extra events, byte-identical runs.
	DeadRTOs int
	// RedialBackoff is the base delay between repeated re-dials of the
	// same subflow slot: the first replacement dials immediately, the
	// k-th waits min(RedialBackoff << (k-2), 16*RedialBackoff).
	// Default 10ms when recovery is armed.
	RedialBackoff sim.Time
	// RedialBudget caps re-dial attempts per connection (default 4 when
	// recovery is armed). A connection out of budget leaves its stalled
	// subflows backing off exactly as with recovery disabled.
	RedialBudget int
}

// DefaultConfig returns the paper's MPTCP configuration: 8 subflows, LIA.
func DefaultConfig() Config {
	return Config{TCP: tcp.DefaultConfig(), Subflows: 8}
}

func (c *Config) applyDefaults() {
	if c.Subflows == 0 {
		c.Subflows = 8
	}
	if c.DeadRTOs > 0 {
		if c.RedialBackoff == 0 {
			c.RedialBackoff = 10 * sim.Millisecond
		}
		if c.RedialBudget == 0 {
			c.RedialBudget = 4
		}
	}
}

// Options identifies a connection's endpoints and data range.
type Options struct {
	SrcHost *netem.Host
	DstHost *netem.Host
	FlowID  uint64
	// Size is the total connection bytes (-1 for an unbounded
	// background flow).
	Size int64
	// DataStart offsets the first data-level byte this connection is
	// responsible for. Plain MPTCP uses 0; MMPTCP hands over the bytes
	// remaining after its packet-scatter phase.
	DataStart int64
	// SubflowBase numbers the first subflow. Plain MPTCP uses 0;
	// MMPTCP reserves subflow 0 for the packet-scatter flow.
	SubflowBase int8
	// DstPort is the destination port (default 80); source ports are
	// drawn from RNG per subflow.
	DstPort uint16
	// RNG seeds subflow source-port randomisation. Required.
	RNG *sim.RNG
	// Receiver, when non-nil, is shared with a pre-existing receive
	// endpoint (MMPTCP's, which also serves the packet-scatter flow).
	// When nil, the connection creates its own tcp.Receiver.
	Receiver *tcp.Receiver
	// Recorder, when non-nil, is handed to every subflow sender so the
	// structured trace sees subflow opens/closes and per-segment events.
	Recorder *trace.Recorder
}

// Connection is the sender side of an MPTCP connection plus its
// (possibly shared) receiver.
type Connection struct {
	eng sim.EventScheduler // the source host's engine: sender-side scheduling
	cfg Config
	opt Options // retained for re-dialing (endpoints, RNG, recorder)

	flowID   uint64
	subflows []*tcp.Sender
	rcv      *tcp.Receiver
	ownRcv   bool
	cc       tcp.CongestionControl // shared LIA state; replacements re-enter it
	ifaces   int

	// Data-level allocation pool [next, end); end == -1 is unbounded.
	next int64
	end  int64

	// reclaim queues data-level intervals {dataSeq, n} migrated back
	// from dead subflows; allocate serves it before the contiguous pool.
	reclaim [][2]int64

	// Re-dial state: nextSub numbers replacement subflows (fresh IDs so
	// the receiver starts clean per-subflow reorder state), attempts
	// counts re-dials per slot for the backoff schedule, redials counts
	// attempts against cfg.RedialBudget, replacements retains every
	// replacement sender for recovery accounting.
	nextSub      int8
	attempts     []int
	redials      int
	replacements []*tcp.Sender

	doneSubflows int

	// OnAllAcked fires once when every subflow has delivered and had
	// acknowledged all data allocated to it.
	OnAllAcked func()
}

// Dial creates the connection: a receiver on the destination host
// (unless shared) and cfg.Subflows senders on the source host. Subflows
// are idle until Start. Endpoints bind to their own host's engine (the
// receiver to the destination's, the senders to the source's) — the
// same engine sequentially, the owning shards' under a sharded fabric —
// so eng is accepted for compatibility but each endpoint schedules
// where it lives.
func Dial(eng sim.EventScheduler, cfg Config, opt Options) *Connection {
	cfg.applyDefaults()
	if opt.RNG == nil {
		panic("mptcp: Options.RNG is required")
	}
	if opt.DstPort == 0 {
		opt.DstPort = 80
	}
	_ = eng
	c := &Connection{
		eng:    opt.SrcHost.Engine(),
		cfg:    cfg,
		opt:    opt,
		flowID: opt.FlowID,
		next:   opt.DataStart,
		end:    -1,
	}
	if opt.Size >= 0 {
		c.end = opt.Size
		if c.end < c.next {
			panic(fmt.Sprintf("mptcp: DataStart %d beyond Size %d", opt.DataStart, opt.Size))
		}
	}
	c.rcv = opt.Receiver
	if c.rcv == nil {
		c.rcv = tcp.NewReceiver(opt.DstHost.Engine(), cfg.TCP, opt.DstHost, opt.FlowID, opt.Size)
		c.ownRcv = true
	}

	if cfg.Uncoupled {
		c.cc = tcp.RenoCC{}
	} else {
		c.cc = &liaCC{conn: c}
	}
	// On multi-homed hosts, spread subflows round-robin across the
	// interfaces (the paper's roadmap: more parallel paths at the
	// access layer).
	c.ifaces = len(opt.SrcHost.Uplinks())
	if c.ifaces == 0 {
		c.ifaces = 1
	}
	// Replacement subflows get fresh IDs above the initial range so the
	// receiver opens clean per-subflow reorder state for each.
	c.nextSub = opt.SubflowBase + int8(cfg.Subflows)
	if cfg.DeadRTOs > 0 {
		c.attempts = make([]int, cfg.Subflows)
	}
	for i := 0; i < cfg.Subflows; i++ {
		sub := c.newSender(i, opt.SubflowBase+int8(i), uint16(10000+opt.RNG.Intn(50000)))
		c.subflows = append(c.subflows, sub)
	}
	return c
}

// newSender builds the sender for one subflow slot (initial dial and
// re-dial share it) and wires its completion and death hooks.
func (c *Connection) newSender(slot int, subflowID int8, srcPort uint16) *tcp.Sender {
	sub := tcp.NewSender(c.opt.SrcHost.Engine(), c.cfg.TCP, tcp.SenderOptions{
		Host:       c.opt.SrcHost,
		Iface:      slot % c.ifaces,
		Dst:        c.opt.DstHost.ID(),
		FlowID:     c.opt.FlowID,
		Subflow:    subflowID,
		SrcPort:    srcPort,
		DstPort:    c.opt.DstPort,
		Source:     &subflowSource{conn: c},
		CC:         c.cc,
		EnableSACK: c.cfg.SACK,
		DeadRTOs:   c.cfg.DeadRTOs,
		Recorder:   c.opt.Recorder,
	})
	sub.OnAllAcked = c.subflowDone
	if c.cfg.DeadRTOs > 0 {
		sub.OnPersistentRTO = func() { c.subflowDead(slot) }
	}
	return sub
}

// Start opens all subflows (staggered by JoinDelay if configured).
func (c *Connection) Start() {
	for i, sub := range c.subflows {
		if i == 0 || c.cfg.JoinDelay == 0 {
			sub.Start()
			continue
		}
		sub := sub
		c.eng.Schedule(sim.Time(i)*c.cfg.JoinDelay, sub.Start)
	}
}

// Receiver returns the connection's receive endpoint.
func (c *Connection) Receiver() *tcp.Receiver { return c.rcv }

// Subflows returns the subflow senders (read-only use).
func (c *Connection) Subflows() []*tcp.Sender { return c.subflows }

// Stats aggregates sender statistics across subflows.
func (c *Connection) Stats() tcp.SenderStats {
	var agg tcp.SenderStats
	for _, s := range c.subflows {
		st := s.Stats
		agg.SegmentsSent += st.SegmentsSent
		agg.BytesSent += st.BytesSent
		agg.Retransmissions += st.Retransmissions
		agg.FastRetransmits += st.FastRetransmits
		agg.Timeouts += st.Timeouts
		agg.AcksReceived += st.AcksReceived
		agg.DupAcksReceived += st.DupAcksReceived
	}
	return agg
}

// allocate grants up to maxBytes from the connection pool. Reclaimed
// intervals (migrated back from dead subflows) are served first, in
// death order, so re-pulled data reaches the receiver before fresh
// sequence space extends the tail.
func (c *Connection) allocate(maxBytes int) (int64, int, bool) {
	if len(c.reclaim) > 0 {
		iv := &c.reclaim[0]
		seq, n := iv[0], iv[1]
		if n > int64(maxBytes) {
			n = int64(maxBytes)
			iv[0] += n
			iv[1] -= n
		} else {
			c.reclaim = c.reclaim[1:]
		}
		return seq, int(n), c.exhausted()
	}
	if c.end >= 0 && c.next >= c.end {
		return c.next, 0, true
	}
	n := int64(maxBytes)
	if c.end >= 0 && c.next+n > c.end {
		n = c.end - c.next
	}
	seq := c.next
	c.next += n
	return seq, int(n), c.exhausted()
}

// exhausted reports whether the pool has nothing left to grant: the
// contiguous range is spent and no reclaimed intervals are queued.
func (c *Connection) exhausted() bool {
	return len(c.reclaim) == 0 && c.end >= 0 && c.next >= c.end
}

func (c *Connection) subflowDone() {
	c.doneSubflows++
	if c.doneSubflows == len(c.subflows) && c.OnAllAcked != nil {
		c.OnAllAcked()
	}
}

// subflowDead handles a persistent-RTO verdict on slot: close the
// stalled sender, migrate its unacked data-level allocation back to the
// connection, and schedule a replacement dial on a fresh source port
// (immediately for a slot's first death, capped-exponentially backed
// off for repeat deaths). Out of budget — or out of subflow-ID space —
// the stalled sender is left alone to back off exactly as with
// recovery disabled.
func (c *Connection) subflowDead(slot int) {
	if c.redials >= c.cfg.RedialBudget || c.nextSub < 0 {
		return
	}
	old := c.subflows[slot]
	unacked := old.UnackedData()
	if c.opt.Recorder != nil {
		c.opt.Recorder.Record(c.eng.Now(), trace.KindSubflowDead, c.flowID,
			old.Subflow(), int32(c.opt.SrcHost.ID()), int32(c.opt.DstHost.ID()),
			int64(c.cfg.DeadRTOs), old.Acked())
	}
	old.Close()
	c.reclaim = append(c.reclaim, unacked...)
	c.redials++
	k := c.attempts[slot]
	c.attempts[slot] = k + 1
	var delay sim.Time
	if k > 0 {
		delay = c.cfg.RedialBackoff << uint(k-1)
		if lim := 16 * c.cfg.RedialBackoff; delay > lim {
			delay = lim
		}
	}
	attempt := c.redials
	c.eng.Schedule(delay, func() { c.redial(slot, attempt) })
}

// redial replaces the (closed) sender in slot with a fresh one: new
// subflow ID, new randomised source port drawn from the connection's
// own RNG stream (determinism: the stream is private to this flow and
// consumed in event order), same shared congestion coupling.
func (c *Connection) redial(slot, attempt int) {
	sub := c.newSender(slot, c.nextSub, uint16(10000+c.opt.RNG.Intn(50000)))
	c.nextSub++ // wraps negative at 127; subflowDead stops redialing then
	c.subflows[slot] = sub
	c.replacements = append(c.replacements, sub)
	if c.opt.Recorder != nil {
		c.opt.Recorder.Record(c.eng.Now(), trace.KindSubflowRedial, c.flowID,
			sub.Subflow(), int32(c.opt.SrcHost.ID()), int32(c.opt.DstHost.ID()),
			int64(sub.SrcPort()), int64(attempt))
	}
	sub.Start()
}

// RedialStats reports re-dial attempts made and how many replacement
// subflows went on to acknowledge data (recovered the path).
func (c *Connection) RedialStats() (redials, recovered int) {
	redials = c.redials
	for _, s := range c.replacements {
		if s.Acked() > 0 {
			recovered++
		}
	}
	return redials, recovered
}

// Close tears down every subflow and the owned receiver.
func (c *Connection) Close() {
	for _, s := range c.subflows {
		s.Close()
	}
	if c.ownRcv {
		c.rcv.Close()
	}
}

// subflowSource adapts the connection pool to the tcp.DataSource pulled
// by one subflow.
type subflowSource struct{ conn *Connection }

// Next implements tcp.DataSource.
func (s *subflowSource) Next(maxBytes int) (int64, int, bool) {
	return s.conn.allocate(maxBytes)
}
