// Command bench runs the repository's tracked performance suite and
// writes BENCH.json, the machine-readable perf trajectory (ns/op,
// allocs/op, events/sec, routing recompute counters). CI runs it with
// -quick on every push and archives the artifact; full-scale numbers are
// regenerated with the defaults when perf-relevant code changes. The
// format is documented in the README's Performance section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	mmptcp "repro"
	"repro/internal/netem"
	"repro/internal/prof"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Result is one benchmark's measurements as serialised into BENCH.json.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH.json envelope.
type File struct {
	Schema    int      `json:"schema"`
	Generated string   `json:"generated"`
	Go        string   `json:"go"`
	Quick     bool     `json:"quick"`
	Results   []Result `json:"benchmarks"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced scale for CI smoke runs (64-host churn topology, fewer flows)")
	out := flag.String("out", "BENCH.json", "output path for the JSON report")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	var results []Result
	add := func(name string, br testing.BenchmarkResult, metrics map[string]float64) {
		r := Result{
			Name:        name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Metrics:     metrics,
		}
		results = append(results, r)
		fmt.Printf("%-28s %12.0f ns/op %12d allocs/op %12d B/op", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		keys := make([]string, 0, len(metrics))
		for k := range metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%.4g", k, metrics[k])
		}
		fmt.Println()
	}

	engineThroughput(*quick, add)
	churnRecompute(*quick, add)
	staggeredChurn(*quick, add)
	redialChurn(*quick, add)
	sweepScale(*quick, add)
	shardThroughput(*quick, add)
	shardScale(*quick, add)
	microBenches(add)

	stopProf()
	if err := prof.WriteHeap(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	f := File{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Quick:     *quick,
		Results:   results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}

type addFunc func(name string, br testing.BenchmarkResult, metrics map[string]float64)

// engineThroughput is BenchmarkEngineThroughput's workload (shared via
// mmptcp.EngineBenchConfig), reported with events/sec so simulator
// speed is tracked independently of workload size.
func engineThroughput(quick bool, add addFunc) {
	var events uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mmptcp.Run(mmptcp.EngineBenchConfig(quick))
			if err != nil {
				b.Fatal(err)
			}
			events = res.Events
		}
	})
	nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
	add("engine-throughput", br, map[string]float64{
		"events":         float64(events),
		"events_per_sec": float64(events) / (nsPerOp / 1e9),
	})
}

// churnRecompute measures the fault-heavy hot path three ways: local
// repair (no control plane), incremental global repair, and global
// repair with ForceFullRecompute — the pre-incremental behaviour — so
// the BFS and reconciliation savings are printed as a directly measured
// ratio rather than an estimate. The scenario itself is
// mmptcp.ChurnBenchConfig, shared with BenchmarkXChurnRecompute so the
// tracked JSON and the in-repo benchmark measure the same workload.
func churnRecompute(quick bool, add addFunc) {
	variants := []struct {
		name string
		mode mmptcp.RoutingMode
		full bool
	}{
		{"churn-recompute/local", mmptcp.RoutingLocal, false},
		{"churn-recompute/global", mmptcp.RoutingGlobal, false},
		{"churn-recompute/global-full", mmptcp.RoutingGlobal, true},
	}
	stats := make(map[string]mmptcp.RoutingStats)
	for _, v := range variants {
		var last *mmptcp.Results
		routing.ForceFullRecompute = v.full
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := mmptcp.Run(mmptcp.ChurnBenchConfig(v.mode, quick))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		})
		routing.ForceFullRecompute = false
		stats[v.name] = last.Routing
		m := map[string]float64{
			"fault_events":   float64(last.FaultEvents),
			"recomputes":     float64(last.Routing.Recomputes),
			"dst_recomputed": float64(last.Routing.DstRecomputed),
			"dst_skipped":    float64(last.Routing.DstSkipped),
			"bfs_runs":       float64(last.Routing.BFSRuns),
			"noroute":        float64(last.NoRouteDrops),
		}
		if v.name == "churn-recompute/global-full" {
			inc := stats["churn-recompute/global"]
			if inc.BFSRuns > 0 {
				m["bfs_ratio_vs_incremental"] = float64(last.Routing.BFSRuns) / float64(inc.BFSRuns)
			}
			if inc.DstRecomputed > 0 {
				m["dst_ratio_vs_incremental"] = float64(last.Routing.DstRecomputed) / float64(inc.DstRecomputed)
			}
		}
		add(v.name, br, m)
	}
}

// staggeredChurn is the same churn workload under staggered per-switch
// convergence (mmptcp.StaggeredChurnBenchConfig: 2ms of flip delay per
// hop), so the cost of the per-switch scheduling machinery — staged
// table forks, flip events, window accounting — is tracked directly
// against churn-recompute/global, and the transient-window counters
// land in BENCH.json next to it.
func staggeredChurn(quick bool, add addFunc) {
	var last *mmptcp.Results
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mmptcp.Run(mmptcp.StaggeredChurnBenchConfig(quick))
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	})
	add("churn-recompute/staggered", br, map[string]float64{
		"fault_events":   float64(last.FaultEvents),
		"recomputes":     float64(last.Routing.Recomputes),
		"flips":          float64(last.Routing.Flips),
		"transient_ms":   last.Routing.TransientTime.Milliseconds(),
		"loop_drops":     float64(last.LoopDrops),
		"tn_noroute":     float64(last.Routing.TransientNoRoute),
		"stale_lookups":  float64(last.Routing.StaleLookups),
		"dst_recomputed": float64(last.Routing.DstRecomputed),
		"dst_skipped":    float64(last.Routing.DstSkipped),
	})
}

// redialChurn measures transport recovery (subflow re-dialing) on a
// mid-run outage that strands pinned subflows
// (mmptcp.RedialChurnBenchConfig), against the identical scenario with
// the machinery disarmed. The off row is the no-regression baseline CI
// guards against the tracked BENCH.json: recovery-off throughput must
// be unchanged by the recovery code's presence, and the off row must
// never re-dial.
func redialChurn(quick bool, add addFunc) {
	variants := []struct {
		name     string
		recovery bool
	}{
		{"recovery/redial-churn-off", false},
		{"recovery/redial-churn", true},
	}
	for _, v := range variants {
		var last *mmptcp.Results
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := mmptcp.Run(mmptcp.RedialChurnBenchConfig(v.recovery, quick))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		})
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		add(v.name, br, map[string]float64{
			"events":           float64(last.Events),
			"events_per_sec":   float64(last.Events) / (nsPerOp / 1e9),
			"redials":          float64(last.Redials),
			"redial_recovered": float64(last.RedialRecovered),
			"long_tput_mbps":   last.LongThroughputMbps,
		})
	}
}

// sweepScale tracks the memory discipline of replicate sweeps
// (mmptcp.SweepScaleBenchConfig — one Shape, many seeds):
//
//   - setup-unpooled / setup-pooled: per-replicate setup cost as a fresh
//     engine+network build vs a pooled instance reset. setup-pooled's
//     setup_allocs_ratio (unpooled allocs / pooled allocs, with a floor
//     of 1 alloc in the denominator since the reset path allocates
//     nothing in steady state) is the pooling win CI guards at >= 10x.
//   - run-exact / run-streaming: one full run in each metrics mode, with
//     per_flow_bytes = allocated bytes / short flows, tracking the
//     per-flow memory the streaming mode exists to shed.
//   - sweep-unpooled / sweep-pooled: the end-to-end replicate sweep
//     through mmptcp.RunSweep with SweepOptions.Pool off and on.
func sweepScale(quick bool, add addFunc) {
	cfg := mmptcp.SweepScaleBenchConfig(quick)

	brBuild := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mmptcp.NewRunInstance(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("sweep-scale/setup-unpooled", brBuild, nil)

	inst, err := mmptcp.NewRunInstance(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	brReset := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		rcfg := cfg
		for i := 0; i < b.N; i++ {
			rcfg.Seed = uint64(i + 1) // exercise the per-seed ECMP rekeying
			if err := inst.Reset(rcfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	pooledAllocs := brReset.AllocsPerOp()
	denom := pooledAllocs
	if denom < 1 {
		denom = 1
	}
	add("sweep-scale/setup-pooled", brReset, map[string]float64{
		"setup_allocs_ratio": float64(brBuild.AllocsPerOp()) / float64(denom),
	})

	flows := float64(cfg.ShortFlows)
	brExact := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mmptcp.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("sweep-scale/run-exact", brExact, map[string]float64{
		"per_flow_bytes": float64(brExact.AllocedBytesPerOp()) / flows,
	})
	streamCfg := cfg
	streamCfg.Metrics.Mode = mmptcp.MetricsStreaming
	brStream := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mmptcp.Run(streamCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("sweep-scale/run-streaming", brStream, map[string]float64{
		"per_flow_bytes": float64(brStream.AllocedBytesPerOp()) / flows,
	})

	reps := 8
	if quick {
		reps = 4
	}
	configs := make([]mmptcp.Config, reps)
	for i := range configs {
		configs[i] = cfg
		configs[i].Seed = uint64(i + 1)
	}
	for _, pooled := range []bool{false, true} {
		name := "sweep-scale/sweep-unpooled"
		if pooled {
			name = "sweep-scale/sweep-pooled"
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{Pool: pooled}); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(name, br, map[string]float64{"replicates": float64(reps)})
	}
}

// runShardBench benchmarks one config through mmptcp.Run and returns
// the measurement plus the shard-row metrics every variant carries:
// event count, events/sec, and the core count the run had available —
// the context a speedup ratio is meaningless without.
func runShardBench(cfg mmptcp.Config) (testing.BenchmarkResult, map[string]float64) {
	var last *mmptcp.Results
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mmptcp.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	})
	nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
	m := map[string]float64{
		"events":         float64(last.Events),
		"events_per_sec": float64(last.Events) / (nsPerOp / 1e9),
		"cores":          float64(runtime.GOMAXPROCS(0)),
	}
	if last.FaultEvents > 0 {
		m["fault_events"] = float64(last.FaultEvents)
	}
	if s := last.Shard; s.Shards > 1 {
		// Synchronization counters, deterministic per (seed, shards,
		// mode): the adaptive-vs-conservative barrier ratio the CI guard
		// checks is computed across rows from these.
		m["barriers"] = float64(s.Barriers)
		m["elided_wakeups"] = float64(s.ElidedWakeups)
		m["mean_window_ns"] = s.MeanWindowNs
		m["widened_windows"] = float64(s.WidenedWindows)
	}
	return br, m
}

// shardThroughput runs the engine-throughput workload sequentially and
// with 2 and 4 shards (mmptcp.ShardThroughputBenchConfig — the identical
// scenario each time), so the shard rows' speedup_vs_seq is a directly
// measured like-for-like ratio. Each row carries the cores metric: on a
// single-core runner the honest expectation is speedup ~1 or below
// (barrier overhead, nothing to parallelise across), which is why the
// CI speedup guard is core-gated. It then runs the quiet-boundary
// variant in both lookahead modes — the shard-quiet/* and
// shard-adaptive/* rows.
func shardThroughput(quick bool, add addFunc) {
	variants := []struct {
		name   string
		shards int
	}{
		{"shard-throughput/seq", 0},
		{"shard-throughput/2", 2},
		{"shard-throughput/4", 4},
	}
	var seqNs float64
	for _, v := range variants {
		br, m := runShardBench(mmptcp.ShardThroughputBenchConfig(v.shards, quick))
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		if v.shards == 0 {
			seqNs = nsPerOp
		} else {
			m["shards"] = float64(v.shards)
			// A speedup ratio measured on fewer cores than shards is
			// noise (the shards time-slice one core and the barrier
			// overhead reads as a slowdown), so it is only emitted when
			// the run actually had the parallelism it claims to measure.
			if int(m["cores"]) >= v.shards {
				m["speedup_vs_seq"] = seqNs / nsPerOp
			}
		}
		add(v.name, br, m)
	}

	// The quiet-boundary variant (mmptcp.ShardQuietBenchConfig:
	// rack-local shorts, sparse arrivals, no long-flow background) is
	// the workload adaptive lookahead exists for: shard boundaries sit
	// idle between bursts, so EOT promises can stride across the gaps.
	// shard-quiet/{seq,2,4} are the conservative rows; shard-adaptive/
	// {2,4} run the same configs with adaptive lookahead. barrier_ratio
	// (conservative barriers / adaptive barriers, same config) is a
	// virtual-time fact — deterministic per (seed, shards) on any box —
	// and is what the bench-smoke CI guard holds the >= 2x floor on.
	// speedup_vs_conservative compares wall time at equal parallelism,
	// so it is meaningful on any core count; speedup_vs_seq stays
	// core-gated like every other shard row.
	var quietSeqNs float64
	quietNs := map[int]float64{}
	quietBarriers := map[int]float64{}
	for _, shards := range []int{0, 2, 4} {
		cfg := mmptcp.ShardQuietBenchConfig(shards, quick)
		br, m := runShardBench(cfg)
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		name := "shard-quiet/seq"
		if shards == 0 {
			quietSeqNs = nsPerOp
		} else {
			name = fmt.Sprintf("shard-quiet/%d", shards)
			m["shards"] = float64(shards)
			quietNs[shards] = nsPerOp
			quietBarriers[shards] = m["barriers"]
			if int(m["cores"]) >= shards {
				m["speedup_vs_seq"] = quietSeqNs / nsPerOp
			}
		}
		add(name, br, m)
	}
	for _, shards := range []int{2, 4} {
		cfg := mmptcp.ShardQuietBenchConfig(shards, quick)
		cfg.Lookahead = mmptcp.LookaheadAdaptive
		br, m := runShardBench(cfg)
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		m["shards"] = float64(shards)
		m["speedup_vs_conservative"] = quietNs[shards] / nsPerOp
		if b := m["barriers"]; b > 0 {
			m["barrier_ratio"] = quietBarriers[shards] / b
		}
		if int(m["cores"]) >= shards {
			m["speedup_vs_seq"] = quietSeqNs / nsPerOp
		}
		add(fmt.Sprintf("shard-adaptive/%d", shards), br, m)
	}
}

// shardScale is the ROADMAP acceptance row: the K=16 churn scenario
// (mmptcp.ShardScaleBenchConfig) sequential vs 4-shard, with the
// measured speedup on the sharded row. The k16-seq row doubles as the
// sequential K=16 trajectory — the wall time the parallel engine is
// chartered to beat.
func shardScale(quick bool, add addFunc) {
	brSeq, mSeq := runShardBench(mmptcp.ShardScaleBenchConfig(0, quick))
	add("shard-scale/k16-seq", brSeq, mSeq)
	seqNs := float64(brSeq.T.Nanoseconds()) / float64(brSeq.N)

	brSh, mSh := runShardBench(mmptcp.ShardScaleBenchConfig(4, quick))
	consNs := float64(brSh.T.Nanoseconds()) / float64(brSh.N)
	consBarriers := mSh["barriers"]
	mSh["shards"] = 4
	if int(mSh["cores"]) >= 4 {
		mSh["speedup_vs_seq"] = seqNs / consNs
	}
	add("shard-scale/k16-churn", brSh, mSh)

	cfgA := mmptcp.ShardScaleBenchConfig(4, quick)
	cfgA.Lookahead = mmptcp.LookaheadAdaptive
	brA, mA := runShardBench(cfgA)
	nsA := float64(brA.T.Nanoseconds()) / float64(brA.N)
	mA["shards"] = 4
	mA["speedup_vs_conservative"] = consNs / nsA
	if b := mA["barriers"]; b > 0 {
		mA["barrier_ratio"] = consBarriers / b
	}
	if int(mA["cores"]) >= 4 {
		mA["speedup_vs_seq"] = seqNs / nsA
	}
	add("shard-adaptive/k16-churn", brA, mA)
}

// microBenches are the two allocation-free hot paths the regression
// tests assert, measured so their cost is tracked too: one full packet
// journey across the FatTree, and one retransmit-timer re-arm.
func microBenches(add addFunc) {
	{
		eng := sim.NewEngine()
		ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
		src, dst := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]
		var sport uint16 = 1024
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := src.NewPacket()
				p.Src, p.Dst = src.ID(), dst.ID()
				p.SrcPort, p.DstPort = sport, 80
				p.Size, p.PayloadLen = 1500, 1460
				p.FlowID = 1
				p.Flags = netem.FlagData
				sport++
				src.Send(p)
				eng.Run()
			}
		})
		add("forward-journey", br, nil)
	}
	{
		eng := sim.NewEngine()
		tm := sim.NewTimer(eng, func() {})
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tm.Reset(sim.Millisecond)
			}
		})
		add("timer-rearm", br, nil)
	}
}
