// Command figures regenerates every figure and numerical claim from the
// paper's evaluation (and the roadmap experiments it announces), as text
// tables or CSV.
//
// Usage:
//
//	figures -fig 1a|1b|1c|stats|switch|load|hotspot|multihomed|coexist|failure|repair|transient|timeline|anatomy|all
//	        [-scale tiny|small|medium|paper] [-flows N] [-seed S] [-csv]
//	        [-workers N] [-pool]
//
// Scales:
//
//	tiny   — K=4 FatTree, 16 hosts, 100 flows (CI smoke; seconds)
//	small  — K=4 FatTree, 64 hosts, 4:1 (default; minutes of wall time)
//	medium — the paper's 512-host 4:1 FatTree, reduced flow count
//	paper  — 512 hosts and the paper's 100k short flows (hours)
//
// Every multi-config scan runs through mmptcp.RunSweep, so independent
// experiments fan out across all CPUs (-workers caps them; -workers 1
// reproduces the old serial behaviour). Each run is seeded from its own
// Config, so the tables are byte-identical for a given -seed at any
// worker count — parallelism changes only the wall time.
//
// Absolute milliseconds differ from the paper's ns-3 testbed; the shapes
// (who wins, by how much, where the tails are) are the reproduction
// target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	mmptcp "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	figFlag     = flag.String("fig", "all", "artefact to regenerate: 1a, 1b, 1c, stats, switch, load, hotspot, multihomed, coexist, dupthresh, threshold, dctcp, incast, failure, repair, transient, timeline, anatomy, all")
	scaleFlag   = flag.String("scale", "small", "experiment scale: tiny, small, medium, paper")
	flowsFlag   = flag.Int("flows", 0, "override the number of short flows")
	seedFlag    = flag.Uint64("seed", 1, "random seed")
	csvFlag     = flag.Bool("csv", false, "emit per-flow CSV instead of tables where applicable")
	workersFlag = flag.Int("workers", 0, "max concurrent experiments (0 = all CPUs, 1 = serial); sharded experiments each occupy -shards worker slots")
	shardsFlag  = flag.Int("shards", 0, "partition each experiment's fabric across this many parallel event engines (0/1 = sequential)")
	lookaheadFl = flag.String("lookahead", "", "sharded window policy: conservative (default) or adaptive (identical tables, fewer barriers)")
	poolFlag    = flag.Bool("pool", false, "recycle run instances across same-shape configs in every scan (tables are byte-identical either way)")
	cpuProfFlag = flag.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
	memProfFlag = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

func main() {
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch *figFlag {
	case "1a":
		fig1a()
	case "1b":
		fig1bc(mmptcp.ProtoMPTCP, "1b")
	case "1c":
		fig1bc(mmptcp.ProtoMMPTCP, "1c")
	case "stats":
		stats()
	case "switch":
		switching()
	case "load":
		load()
	case "hotspot":
		hotspot()
	case "multihomed":
		multihomed()
	case "coexist":
		coexist()
	case "dupthresh":
		dupthresh()
	case "threshold":
		thresholdSweep()
	case "dctcp":
		dctcpBaseline()
	case "incast":
		incast()
	case "failure":
		failure()
	case "repair":
		repair()
	case "transient":
		transient()
	case "timeline":
		timeline()
	case "anatomy":
		anatomy()
	case "all":
		fig1a()
		fig1bc(mmptcp.ProtoMPTCP, "1b")
		fig1bc(mmptcp.ProtoMMPTCP, "1c")
		stats()
		switching()
		load()
		hotspot()
		multihomed()
		coexist()
		dupthresh()
		thresholdSweep()
		dctcpBaseline()
		incast()
		failure()
		repair()
		transient()
		timeline()
		anatomy()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *figFlag)
		os.Exit(2)
	}
	stopProf()
	if err := prof.WriteHeap(*memProfFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// baseConfig returns the scale-appropriate configuration.
func baseConfig(proto mmptcp.Protocol) mmptcp.Config {
	var cfg mmptcp.Config
	switch *scaleFlag {
	case "tiny":
		// CI smoke scale: 16 hosts, enough flows to exercise every code
		// path in seconds.
		cfg = mmptcp.Config{
			Topology:     mmptcp.TopoFatTree,
			K:            4,
			HostsPerEdge: 2,
			Protocol:     proto,
			ShortFlows:   100,
			ArrivalRate:  2.5,
			// Smoke runs must terminate promptly even when a scenario
			// strands single-path flows in RTO backoff; stragglers are
			// reported as incomplete rather than simulated for minutes.
			MaxSimTime: 30 * sim.Second,
		}
	case "small":
		cfg = mmptcp.SmallConfig(proto, 1000)
	case "medium":
		cfg = mmptcp.PaperConfig(proto, 2000)
	case "paper":
		cfg = mmptcp.PaperConfig(proto, 100_000)
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *flowsFlag > 0 {
		cfg.ShortFlows = *flowsFlag
	}
	cfg.Seed = *seedFlag
	cfg.Shards = *shardsFlag
	cfg.Lookahead = mmptcp.LookaheadMode(*lookaheadFl)
	return cfg
}

func run(cfg mmptcp.Config) *mmptcp.Results {
	res, err := mmptcp.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

// sweep fans a scan's configs across the worker pool and returns the
// results in config order, so the callers' tables print exactly as the
// old serial loops did. Tables appear only once the whole scan is done,
// so progress goes to stderr — at -scale paper a scan is hours of wall
// time and a silent stdout is indistinguishable from a hang.
func sweep(configs []mmptcp.Config) []*mmptcp.Results {
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{
		Workers: *workersFlag,
		Pool:    *poolFlag,
		OnResult: func(done, total, index int) {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d experiments done\n", done, total)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return results
}

// fig1a reproduces Figure 1(a): MPTCP short-flow completion time (mean
// and standard deviation) versus the number of subflows, 1 through 9.
func fig1a() {
	configs := make([]mmptcp.Config, 0, 9)
	for n := 1; n <= 9; n++ {
		cfg := baseConfig(mmptcp.ProtoMPTCP)
		cfg.Subflows = n
		configs = append(configs, cfg)
	}
	results := sweep(configs)
	fmt.Println("== Figure 1(a): MPTCP short-flow FCT vs number of subflows ==")
	fmt.Println("subflows  mean_ms  std_ms   p50_ms   p99_ms   rto_flows  completed")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%8d  %7.1f  %7.1f  %7.1f  %7.1f  %9d  %9d\n",
			configs[i].Subflows, s.MeanMs, s.StdMs, s.P50Ms, s.P99Ms, s.WithRTO, s.Count)
	}
	fmt.Println()
}

// fig1bc reproduces Figure 1(b) (MPTCP, 8 subflows) or 1(c) (MMPTCP):
// the per-flow completion-time scatter.
func fig1bc(proto mmptcp.Protocol, name string) {
	cfg := baseConfig(proto)
	res := run(cfg)
	if *csvFlag {
		fmt.Printf("# Figure 1(%s): %s per-flow completion times\n", name[1:], proto)
		fmt.Println("flow_index,fct_ms,timeouts")
		for i, r := range res.ShortFlows {
			if !r.Completed {
				continue
			}
			fmt.Printf("%d,%.3f,%d\n", i, r.FCT().Milliseconds(), r.Timeouts)
		}
		return
	}
	fmt.Printf("== Figure 1(%s): %s (8 subflows) short-flow completion scatter ==\n", name[1:], proto)
	h := metrics.NewFCTHistogram(50, 100, 200, 500, 1000, 2000, 5000)
	for _, r := range res.ShortFlows {
		if r.Completed {
			h.Observe(r.FCT())
		}
	}
	bounds := []string{"<=50ms", "<=100ms", "<=200ms", "<=500ms", "<=1s", "<=2s", "<=5s", ">5s"}
	fr := h.Fractions()
	for i, b := range bounds {
		fmt.Printf("%8s  %6.2f%%  %s\n", b, fr[i]*100, bar(fr[i]))
	}
	fmt.Printf("summary: %v\n\n", res.ShortSummary)
}

func bar(frac float64) string {
	n := int(frac * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// stats reproduces the §3 numerical claims: mean/std short-flow FCT,
// per-layer loss rates, long-flow throughput and utilisation for MPTCP
// vs MMPTCP under the identical workload.
func stats() {
	protos := []mmptcp.Protocol{mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	configs := make([]mmptcp.Config, len(protos))
	for i, proto := range protos {
		configs[i] = baseConfig(proto)
	}
	results := sweep(configs)
	fmt.Println("== §3 statistics: MPTCP (8 subflows) vs MMPTCP (PS + 8 subflows) ==")
	fmt.Println("proto    mean_ms  std_ms  rto_flows  loss_edge-agg  loss_agg-core  long_tput_mbps  util_agg-core")
	for i, res := range results {
		s := res.ShortSummary
		edge := res.Layers[netem.LayerEdge]
		agg := res.Layers[netem.LayerAgg]
		fmt.Printf("%-7s  %7.1f  %6.1f  %9d  %13.5f  %13.5f  %14.2f  %13.3f\n",
			protos[i], s.MeanMs, s.StdMs, s.WithRTO, edge.LossRate, agg.LossRate,
			res.LongThroughputMbps, agg.Utilisation)
	}
	fmt.Println()
}

// switching compares the two §2 phase-switching strategies.
func switching() {
	strats := []core.Strategy{core.SwitchDataVolume, core.SwitchCongestionEvent}
	configs := make([]mmptcp.Config, len(strats))
	for i, strat := range strats {
		configs[i] = baseConfig(mmptcp.ProtoMMPTCP)
		configs[i].Strategy = strat
	}
	results := sweep(configs)
	fmt.Println("== §2 ablation: MMPTCP switching strategies ==")
	fmt.Println("strategy          mean_ms  std_ms  rto_flows  long_tput_mbps  phase_switches")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%-16s  %7.1f  %6.1f  %9d  %14.2f  %14d\n",
			strats[i], s.MeanMs, s.StdMs, s.WithRTO, res.LongThroughputMbps, res.PhaseSwitches)
	}
	fmt.Println()
}

// load sweeps the short-flow arrival rate (roadmap: "network loads").
func load() {
	type point struct {
		rate  float64
		proto mmptcp.Protocol
	}
	var points []point
	var configs []mmptcp.Config
	for _, rate := range []float64{1, 2.5, 5, 10} {
		for _, proto := range []mmptcp.Protocol{mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP} {
			cfg := baseConfig(proto)
			cfg.ArrivalRate = rate
			points = append(points, point{rate, proto})
			configs = append(configs, cfg)
		}
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: effect of network load (arrival-rate sweep) ==")
	fmt.Println("rate_per_sender  proto    mean_ms  std_ms  rto_flows")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%15.1f  %-7s  %7.1f  %6.1f  %9d\n",
			points[i].rate, points[i].proto, s.MeanMs, s.StdMs, s.WithRTO)
	}
	fmt.Println()
}

// hotspot redirects half the short senders at one host (roadmap:
// "effect of hotspots").
func hotspot() {
	protos := []mmptcp.Protocol{mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	configs := make([]mmptcp.Config, len(protos))
	for i, proto := range protos {
		configs[i] = baseConfig(proto)
		configs[i].HotspotFraction = 0.5
		configs[i].HotspotHost = 0
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: hotspot (50% of short senders target host 0) ==")
	fmt.Println("proto    mean_ms  std_ms  p99_ms   rto_flows")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%-7s  %7.1f  %6.1f  %7.1f  %9d\n", protos[i], s.MeanMs, s.StdMs, s.P99Ms, s.WithRTO)
	}
	fmt.Println()
}

// multihomed compares the plain FatTree against the dual-homed variant
// (roadmap: "multi-homed network topologies ... the more parallel paths
// at the access layer, the higher the burst tolerance").
func multihomed() {
	topos := []mmptcp.TopologyKind{mmptcp.TopoFatTree, mmptcp.TopoMultiHomed}
	configs := make([]mmptcp.Config, len(topos))
	for i, topo := range topos {
		configs[i] = baseConfig(mmptcp.ProtoMMPTCP)
		configs[i].Topology = topo
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: single- vs dual-homed FatTree (MMPTCP) ==")
	fmt.Println("topology    mean_ms  std_ms  p99_ms   rto_flows")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%-10s  %7.1f  %6.1f  %7.1f  %9d\n", topos[i], s.MeanMs, s.StdMs, s.P99Ms, s.WithRTO)
	}
	fmt.Println()
}

// dupthresh ablates the PS duplicate-ACK threshold policy (§2's two
// proposed mechanisms plus the standard-threshold strawman).
func dupthresh() {
	modes := []core.ThresholdMode{
		core.ThresholdStandard, core.ThresholdTopology, core.ThresholdAdaptive,
	}
	configs := make([]mmptcp.Config, len(modes))
	for i, mode := range modes {
		configs[i] = baseConfig(mmptcp.ProtoMMPTCP)
		configs[i].PSThreshold = mode
	}
	results := sweep(configs)
	fmt.Println("== §2 ablation: packet-scatter dup-ACK threshold policy ==")
	fmt.Println("policy    mean_ms  std_ms  rto_flows  short_retx")
	for i, res := range results {
		s := res.ShortSummary
		var retx int64
		for _, r := range res.ShortFlows {
			retx += r.Retransmissions
		}
		fmt.Printf("%-8s  %7.1f  %6.1f  %9d  %10d\n", modes[i], s.MeanMs, s.StdMs, s.WithRTO, retx)
	}
	fmt.Println()
}

// thresholdSweep ablates the data-volume switching threshold.
func thresholdSweep() {
	kbs := []int64{35, 70, 100, 200, 500}
	configs := make([]mmptcp.Config, len(kbs))
	for i, kb := range kbs {
		configs[i] = baseConfig(mmptcp.ProtoMMPTCP)
		configs[i].SwitchBytes = kb * 1000
	}
	results := sweep(configs)
	fmt.Println("== §2 ablation: data-volume switching threshold ==")
	fmt.Println("switch_kb  mean_ms  std_ms  rto_flows  long_tput_mbps")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%9d  %7.1f  %6.1f  %9d  %14.2f\n",
			kbs[i], s.MeanMs, s.StdMs, s.WithRTO, res.LongThroughputMbps)
	}
	fmt.Println()
}

// dctcpBaseline adds the §1 single-path ECN baseline to the comparison.
func dctcpBaseline() {
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoDCTCP, mmptcp.ProtoMMPTCP}
	configs := make([]mmptcp.Config, len(protos))
	for i, proto := range protos {
		configs[i] = baseConfig(proto)
	}
	results := sweep(configs)
	fmt.Println("== §1 context: DCTCP baseline (needs switch ECN) vs MMPTCP ==")
	fmt.Println("proto    mean_ms  std_ms  rto_flows  long_tput_mbps  avg_queue_edge")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%-7s  %7.1f  %6.1f  %9d  %14.2f  %14.2f\n",
			protos[i], s.MeanMs, s.StdMs, s.WithRTO, res.LongThroughputMbps,
			res.Layers[netem.LayerEdge].AvgQueue)
	}
	fmt.Println()
}

// incast fires simultaneous 70 KB flows from many senders at one host
// (§1 objective 3: "tolerance to sudden and high bursts of traffic").
func incast() {
	fmt.Println("== §1 objective 3: incast burst tolerance (24 senders -> 1 host) ==")
	fmt.Println("proto    done    mean_ms  max_ms   timeouts")
	for _, proto := range []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP} {
		eng := sim.NewEngine()
		cfg := mmptcp.Config{Protocol: proto, Topology: mmptcp.TopoFatTree, K: 4, HostsPerEdge: 8}
		net, err := mmptcp.NewNetwork(eng, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rng := sim.NewRNG(*seedFlag)
		const senders = 24
		var fcts []float64
		var timeouts int64
		conns := make([]mmptcp.Conn, 0, senders)
		for i := 1; i <= senders; i++ {
			conn, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
				FlowID: uint64(i), Src: i, Dst: 0, Size: 70_000, RNG: rng.Split(),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			conns = append(conns, conn)
			start := 10 * sim.Millisecond
			conn.Receiver().OnComplete = func() {
				fcts = append(fcts, (eng.Now() - start).Milliseconds())
			}
			eng.At(start, conn.Start)
		}
		eng.RunUntil(60 * sim.Second)
		var mean, max float64
		for _, f := range fcts {
			mean += f
			if f > max {
				max = f
			}
		}
		if len(fcts) > 0 {
			mean /= float64(len(fcts))
		}
		for _, c := range conns {
			timeouts += c.Stats().Timeouts
		}
		fmt.Printf("%-7s  %2d/%-2d  %8.1f  %7.1f  %8d\n",
			proto, len(fcts), senders, mean, max, timeouts)
	}
	fmt.Println()
}

// failure is the network-dynamics scan (roadmap: robustness under
// churn): agg-core cables are cut shortly after the short flows start
// arriving and repaired mid-run, and the scan sweeps (a) how many cables
// die and (b) how long routing takes to reconverge around them, for TCP
// vs MPTCP vs MMPTCP. Short-flow FCT tails show who survives the
// blackhole window; long-flow goodput shows who recovers after repair.
func failure() {
	const (
		failAt   = 200 * sim.Millisecond
		repairAt = 700 * sim.Millisecond
	)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}

	type point struct {
		proto      mmptcp.Protocol
		cables     int
		reconverge sim.Time
	}
	var points []point
	var configs []mmptcp.Config
	seen := make(map[point]bool)
	add := func(proto mmptcp.Protocol, cables int, reconverge sim.Time) {
		if cables == 0 {
			// Healthy baseline: no fault plan is installed, so no
			// reconvergence delay applies — record 0 so the table says
			// what actually ran.
			reconverge = 0
		}
		// The two scans share their crossing point (the fixed-cables /
		// fixed-reconvergence row); run it once.
		p := point{proto, cables, reconverge}
		if seen[p] {
			return
		}
		seen[p] = true
		cfg := baseConfig(proto)
		// A blackholed single-path flow can sit in RTO backoff for
		// hundreds of virtual seconds; cap the run so it surfaces as a
		// deadline miss instead of dominating the scan's wall time.
		if cfg.MaxSimTime == 0 || cfg.MaxSimTime > 60*sim.Second {
			cfg.MaxSimTime = 60 * sim.Second
		}
		if cables > 0 {
			cfg.Faults = mmptcp.FaultsConfig{
				Events:          mmptcp.FailCables(mmptcp.LayerAgg, cables, failAt, repairAt),
				ReconvergeDelay: reconverge,
			}
		}
		points = append(points, p)
		configs = append(configs, cfg)
	}
	// Scan 1: failed-cable count at a fixed 10ms reconvergence delay.
	for _, cables := range []int{0, 1, 2, 4} {
		for _, proto := range protos {
			add(proto, cables, 10*sim.Millisecond)
		}
	}
	// Scan 2: reconvergence delay at a fixed 2 dead cables.
	for _, rc := range []sim.Time{0, 10 * sim.Millisecond, 50 * sim.Millisecond, 200 * sim.Millisecond} {
		for _, proto := range protos {
			add(proto, 2, rc)
		}
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: robustness under core-link failure (agg-core cables cut at 200ms, repaired at 700ms) ==")
	fmt.Println("cables  reconv_ms  proto    mean_ms  p99_ms   max_ms   rto_flows  miss_pct  long_tput_mbps  blackholed  noroute")
	for i, res := range results {
		p := points[i]
		s := res.ShortSummary
		fmt.Printf("%6d  %9.1f  %-7s  %7.1f  %7.1f  %7.1f  %9d  %8.1f  %14.2f  %10d  %7d\n",
			p.cables, p.reconverge.Milliseconds(), p.proto,
			s.MeanMs, s.P99Ms, s.MaxMs, s.WithRTO, res.DeadlineMissRate*100,
			res.LongThroughputMbps, res.Blackholed, res.NoRouteDrops)
	}
	fmt.Println()
}

// repair is the local-vs-global repair experiment the routing control
// plane opens: agg-core cables are cut at 200ms and stay dead until
// 2.5s, and the scan compares the two repair models across failed-cable
// counts for TCP and MMPTCP. Local repair (the PR-2 baseline) only
// excludes each switch's own dead links, so upstream ECMP keeps hashing
// onto cores that lost their sole downlink to a pod — visible as
// NoRoute drops for the whole outage. Global repair recomputes
// reachability 10ms after each transition and steers around the
// cripples; the recompute count and surviving override entries land in
// the table.
func repair() {
	const (
		failAt     = 200 * sim.Millisecond
		repairAt   = 2500 * sim.Millisecond
		reconverge = 10 * sim.Millisecond
	)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMMPTCP}
	modes := []mmptcp.RoutingMode{mmptcp.RoutingLocal, mmptcp.RoutingGlobal}

	type point struct {
		cables   int
		mode     mmptcp.RoutingMode
		proto    mmptcp.Protocol
		recovery bool
	}
	// On the K=4 fabrics cutting the first 4 agg-core cables would sever
	// every pod-0 uplink — a physical partition no routing model can
	// repair — so the scan stops at 3 (pod 0 down to one surviving
	// uplink).
	var points []point
	var configs []mmptcp.Config
	for _, cables := range []int{0, 1, 2, 3} {
		for _, mode := range modes {
			if cables == 0 && mode != mmptcp.RoutingLocal {
				continue // healthy baseline: the mode is irrelevant, run once
			}
			for _, proto := range protos {
				// The recovery axis: multipath transports additionally run
				// with subflow re-dialing armed, so the table shows goodput
				// recovering when a replacement subflow re-hashes onto a
				// live path rather than at RTO-backoff expiry. Single-path
				// TCP has nothing to re-dial; the healthy baseline has
				// nothing to recover from.
				recoveries := []bool{false}
				if cables > 0 && proto != mmptcp.ProtoTCP {
					recoveries = append(recoveries, true)
				}
				for _, recovery := range recoveries {
					cfg := baseConfig(proto)
					// Stranded single-path flows surface as deadline misses
					// rather than dominating the scan's wall time.
					if cfg.MaxSimTime == 0 || cfg.MaxSimTime > 60*sim.Second {
						cfg.MaxSimTime = 60 * sim.Second
					}
					if cables > 0 {
						cfg.Faults = mmptcp.FaultsConfig{
							Events:          mmptcp.FailCables(mmptcp.LayerAgg, cables, failAt, repairAt),
							ReconvergeDelay: reconverge,
						}
						cfg.Routing.Mode = mode
					}
					if recovery {
						cfg.Transport.DeadRTOs = 3
						cfg.Transport.RedialBudget = 8
						if mode == mmptcp.RoutingGlobal {
							cfg.Transport.DeferPhaseSwitch = true
						}
					}
					points = append(points, point{cables, mode, proto, recovery})
					configs = append(configs, cfg)
				}
			}
		}
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: local vs global repair (agg-core cables cut at 200ms, repaired at 2.5s, 10ms reconvergence) ==")
	fmt.Println("cables  mode    proto    recov  mean_ms  p99_ms   max_ms   miss_pct  long_tput_mbps  noroute  blackholed  recomputes  redials  recovered")
	for i, res := range results {
		p := points[i]
		mode := string(p.mode)
		if p.cables == 0 {
			mode = "-"
		}
		recov := "off"
		if p.recovery {
			recov = "on"
		}
		s := res.ShortSummary
		fmt.Printf("%6d  %-6s  %-7s  %-5s  %7.1f  %7.1f  %7.1f  %8.1f  %14.2f  %7d  %10d  %10d  %7d  %9d\n",
			p.cables, mode, p.proto, recov, s.MeanMs, s.P99Ms, s.MaxMs,
			res.DeadlineMissRate*100, res.LongThroughputMbps,
			res.NoRouteDrops, res.Blackholed, res.Routing.Recomputes,
			res.Redials, res.RedialRecovered)
	}
	fmt.Println()
}

// transient is the staged-convergence experiment per-switch FIB epochs
// open: agg-core cables are cut at 200ms and repaired at 900ms under
// global routing with *staggered* convergence, and the scan sweeps the
// per-hop flip propagation delay for TCP vs MPTCP vs MMPTCP. At 0ms per
// hop every switch flips with the recompute (the atomic baseline); as
// the delay grows the fabric spends longer disagreeing with itself, and
// the table splits the damage of that window out of the totals:
// micro-loop deaths (loop_drops, hop-backstop kills while the window is
// open), blackholes bred by the disagreement itself (tn_noroute,
// packets arriving at an already-flipped switch whose new table has no
// way forward), lookups served by stale FIB epochs, and the cumulative
// window duration. Packet scatter rides the window the same way it
// rides the failure — MMPTCP's tail grows far slower with the delay
// than single-path TCP's.
func transient() {
	const (
		failAt   = 200 * sim.Millisecond
		repairAt = 900 * sim.Millisecond
		reconv   = 10 * sim.Millisecond
		cables   = 2
	)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	perHops := []sim.Time{0, 1 * sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond}

	type point struct {
		perHop   sim.Time
		proto    mmptcp.Protocol
		recovery bool
	}
	var points []point
	var configs []mmptcp.Config
	for _, perHop := range perHops {
		for _, proto := range protos {
			// Recovery axis: multipath transports additionally run with
			// re-dialing armed and — for MMPTCP — the phase switch
			// deferring while the staggered convergence window is open,
			// so the table contrasts riding out the transient against
			// actively escaping it.
			recoveries := []bool{false}
			if proto != mmptcp.ProtoTCP {
				recoveries = append(recoveries, true)
			}
			for _, recovery := range recoveries {
				cfg := baseConfig(proto)
				// Stranded single-path flows surface as deadline misses
				// rather than dominating the scan's wall time.
				if cfg.MaxSimTime == 0 || cfg.MaxSimTime > 60*sim.Second {
					cfg.MaxSimTime = 60 * sim.Second
				}
				cfg.Faults = mmptcp.FaultsConfig{
					Events:          mmptcp.FailCables(mmptcp.LayerAgg, cables, failAt, repairAt),
					ReconvergeDelay: reconv,
				}
				cfg.Routing = mmptcp.RoutingConfig{
					Mode:        mmptcp.RoutingGlobal,
					Convergence: mmptcp.ConvergeStaggered,
					PerHopDelay: perHop,
				}
				if recovery {
					cfg.Transport.DeadRTOs = 3
					cfg.Transport.RedialBudget = 8
					if proto == mmptcp.ProtoMMPTCP {
						cfg.Transport.DeferPhaseSwitch = true
					}
				}
				points = append(points, point{perHop, proto, recovery})
				configs = append(configs, cfg)
			}
		}
	}
	results := sweep(configs)
	fmt.Println("== Roadmap: staged convergence transients (2 agg-core cables cut at 200ms, repaired at 900ms, staggered flips) ==")
	fmt.Println("perhop_ms  proto    recov  mean_ms  p99_ms   miss_pct  loop_drops  tn_noroute  stale_lookups  window_ms  flips  redials  defers")
	for i, res := range results {
		p := points[i]
		recov := "off"
		if p.recovery {
			recov = "on"
		}
		s := res.ShortSummary
		fmt.Printf("%9.1f  %-7s  %-5s  %7.1f  %7.1f  %8.1f  %10d  %10d  %13d  %9.1f  %5d  %7d  %6d\n",
			p.perHop.Milliseconds(), p.proto, recov, s.MeanMs, s.P99Ms,
			res.DeadlineMissRate*100, res.LoopDrops, res.Routing.TransientNoRoute,
			res.Routing.StaleLookups, res.Routing.TransientTime.Milliseconds(),
			res.Routing.Flips, res.Redials, res.PhaseDeferrals)
	}
	fmt.Println()
}

// timeline demonstrates the rolling Results snapshots: one MMPTCP run
// under a mid-run cable cut with global repair, streaming metrics and
// periodic snapshots, printed as the percentile trajectory the paper's
// steady-state plots would be cut from. The cumulative drop and
// recompute columns localise the damage to the outage window.
func timeline() {
	cfg := baseConfig(mmptcp.ProtoMMPTCP)
	// Stranded flows surface as deadline misses rather than wall time.
	if cfg.MaxSimTime == 0 || cfg.MaxSimTime > 60*sim.Second {
		cfg.MaxSimTime = 60 * sim.Second
	}
	cfg.Faults = mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*sim.Millisecond, 900*sim.Millisecond),
		ReconvergeDelay: 10 * sim.Millisecond,
	}
	cfg.Routing.Mode = mmptcp.RoutingGlobal
	cfg.Metrics = mmptcp.MetricsConfig{
		Mode:             mmptcp.MetricsStreaming,
		SnapshotInterval: 100 * sim.Millisecond,
	}
	res := run(cfg)
	if *csvFlag {
		fmt.Println("# Roadmap: rolling snapshot timeline (MMPTCP, 2 agg-core cables cut at 200ms)")
		fmt.Println("t_ms,spawned,done,p50_ms,p95_ms,p99_ms,blackholed,noroute,recomputes")
		for _, sn := range res.Snapshots {
			fmt.Printf("%.0f,%d,%d,%.3f,%.3f,%.3f,%d,%d,%d\n",
				sn.At.Milliseconds(), sn.Spawned, sn.Short.Count,
				sn.Short.P50Ms, sn.Short.P95Ms, sn.Short.P99Ms,
				sn.Blackholed, sn.NoRouteDrops, sn.Recomputes)
		}
		return
	}
	fmt.Println("== Roadmap: rolling snapshot timeline (MMPTCP, 2 agg-core cables cut at 200ms, repaired at 900ms, streaming metrics) ==")
	fmt.Println("    t_ms  spawned   done  p50_ms  p95_ms  p99_ms  blackholed  noroute  recomputes")
	for _, sn := range res.Snapshots {
		fmt.Printf("%8.0f  %7d  %5d  %6.1f  %6.1f  %6.1f  %10d  %7d  %10d\n",
			sn.At.Milliseconds(), sn.Spawned, sn.Short.Count,
			sn.Short.P50Ms, sn.Short.P95Ms, sn.Short.P99Ms,
			sn.Blackholed, sn.NoRouteDrops, sn.Recomputes)
	}
	fmt.Printf("final (%d-bit streaming histogram): %v\n\n",
		res.Config.Metrics.HistPrecision, res.ShortSummary)
}

// anatomy is the flow-anatomy figure the structured trace opens: one
// MMPTCP run under a mid-run cable cut with global repair, traced in
// full mode, then the single most-damaged short flow dissected as an
// interleaved timeline of its own transport events (retransmissions,
// timeouts, subflow lifecycle, the phase switch) against the fabric and
// control-plane events that damaged it (faults, link state, drops
// charged to the flow, recomputes, FIB flips). High-volume per-segment
// kinds (sends, ACKs, enqueues, window moves) are elided — the figure
// is the anatomy of the damage, not a packet dump.
func anatomy() {
	cfg := baseConfig(mmptcp.ProtoMMPTCP)
	// Stranded flows surface as deadline misses rather than wall time.
	if cfg.MaxSimTime == 0 || cfg.MaxSimTime > 60*sim.Second {
		cfg.MaxSimTime = 60 * sim.Second
	}
	cfg.Faults = mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*sim.Millisecond, 900*sim.Millisecond),
		ReconvergeDelay: 10 * sim.Millisecond,
	}
	cfg.Routing.Mode = mmptcp.RoutingGlobal
	cfg.Trace.Mode = mmptcp.TraceFull
	res, rec, err := mmptcp.RunTraced(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The victim: the short flow with the most timeouts, retransmissions
	// breaking ties — the tail the paper's Figure 1 scatters are about.
	victim := -1
	for i, r := range res.ShortFlows {
		if victim < 0 ||
			r.Timeouts > res.ShortFlows[victim].Timeouts ||
			(r.Timeouts == res.ShortFlows[victim].Timeouts &&
				r.Retransmissions > res.ShortFlows[victim].Retransmissions) {
			victim = i
		}
	}
	if victim < 0 {
		fmt.Println("== anatomy: no short flows recorded ==")
		return
	}
	v := res.ShortFlows[victim]

	fmt.Printf("== Anatomy of a damaged flow (full trace, %d events kept of %d) ==\n",
		rec.Len(), rec.Total())
	fmt.Printf("victim: flow %d  %d -> %d  %d bytes  fct=%.1fms  timeouts=%d fast_retx=%d retx=%d completed=%t\n",
		v.ID, v.Src, v.Dst, v.Size, v.FCT().Milliseconds(),
		v.Timeouts, v.FastRetransmits, v.Retransmissions, v.Completed)
	fmt.Println("      t_ms  event            sub  node->peer  a           b")

	// Per-segment noise stays out of the timeline.
	elide := map[trace.Kind]bool{
		trace.KindEnqueue:     true,
		trace.KindAck:         true,
		trace.KindSegmentSend: true,
		trace.KindCwnd:        true,
		trace.KindRTO:         true,
		trace.KindECNMark:     true,
	}
	printed := 0
	for _, e := range rec.Events() {
		if e.Flow != v.ID && e.Flow != 0 {
			continue // another flow's transport/fabric event
		}
		if elide[e.Kind] {
			continue
		}
		peer := "    -"
		if e.Peer >= 0 {
			peer = fmt.Sprintf("%5d", e.Peer)
		}
		fmt.Printf("%10.3f  %-15s  %3d  %4d->%s  %-10d  %d\n",
			e.At.Milliseconds(), e.Kind, e.Sub, e.Node, peer, e.A, e.B)
		printed++
	}
	fmt.Printf("%d timeline events (of %d traced; per-segment kinds elided)\n\n",
		printed, rec.Len())
}

// coexist shares one dumbbell bottleneck among a TCP flow, an MPTCP
// connection and an MMPTCP connection (§3: "In-depth investigation of
// how MMPTCP shares network resources with TCP and MPTCP").
func coexist() {
	fmt.Println("== §3: co-existence on a shared 100 Mb/s bottleneck ==")
	eng := sim.NewEngine()
	link := topology.DefaultLinkConfig()
	link.RateBps = 1_000_000_000
	d := topology.NewDumbbell(eng, topology.DumbbellConfig{
		HostsPerSide:  3,
		Link:          link,
		BottleneckBps: 100_000_000,
	})
	rng := sim.NewRNG(*seedFlag)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	conns := make([]mmptcp.Conn, len(protos))
	for i, proto := range protos {
		cfg := mmptcp.Config{Protocol: proto, Subflows: 8}
		conn, err := mmptcp.Dial(eng, &d.Network, cfg, mmptcp.DialConfig{
			FlowID: uint64(i + 1), Src: i, Dst: d.Cfg.HostsPerSide + i, Size: -1, RNG: rng.Split(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conns[i] = conn
		conn.Start()
	}
	const horizon = 10 * sim.Second
	eng.RunUntil(horizon)
	fmt.Println("proto    goodput_mbps  share")
	var total float64
	goodputs := make([]float64, len(conns))
	for i, c := range conns {
		goodputs[i] = float64(c.Receiver().Delivered()) * 8 / horizon.Seconds() / 1e6
		total += goodputs[i]
	}
	for i, proto := range protos {
		fmt.Printf("%-7s  %12.2f  %5.1f%%\n", proto, goodputs[i], goodputs[i]/total*100)
	}
	fmt.Printf("bottleneck utilisation: %.1f%%\n\n",
		d.BottleneckLR.Stats.Utilisation(horizon)*100)
}
