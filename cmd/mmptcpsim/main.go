// Command mmptcpsim runs one experiment of the MMPTCP simulation study
// with every knob exposed as a flag, and prints a full report: short-flow
// completion statistics, long-flow throughput, per-layer loss and
// utilisation, and — under failures — blackhole/no-route accounting and
// the routing control plane's recompute work (-routing local|global,
// -fail-cables, -fail-switches). With -perflow it also emits per-flow
// CSV for plotting.
//
// Example (the paper's headline comparison at small scale):
//
//	mmptcpsim -proto mptcp  -flows 1000
//	mmptcpsim -proto mmptcp -flows 1000
//
// With -seeds N > 1 the same experiment is replicated N times under
// seeds derived from -seed (one independent RNG stream per replicate),
// fanned across CPUs by mmptcp.RunSweep, and summarised with
// across-replicate mean and standard deviation — the cheap way to put
// error bars on any single configuration.
//
//	mmptcpsim -proto mmptcp -flows 1000 -seeds 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	mmptcp "repro"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/prof"
	"repro/internal/sim"
)

// writeTrace exports the recorder to path: JSON lines when the path
// ends in .jsonl, Chrome trace-event JSON (Perfetto loadable) otherwise.
func writeTrace(rec *mmptcp.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = rec.WriteJSONL(f)
	} else {
		err = rec.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		proto    = flag.String("proto", "mmptcp", "transport: tcp, mptcp, mmptcp")
		topo     = flag.String("topo", "fattree", "topology: fattree, multihomed, dumbbell")
		k        = flag.Int("k", 4, "FatTree arity")
		hpe      = flag.Int("hosts-per-edge", 8, "hosts per edge switch (oversubscription = 2*hpe/k)")
		rateBps  = flag.Int64("link-rate", 100_000_000, "link rate, bits/s")
		delayUs  = flag.Int64("link-delay-us", 20, "per-link propagation delay, microseconds")
		queue    = flag.Int("queue", 30, "per-port queue limit, packets")
		subflows = flag.Int("subflows", 8, "MPTCP/MMPTCP subflows")
		strategy = flag.String("switch-strategy", "data-volume", "MMPTCP switching: data-volume, congestion-event")
		psThresh = flag.String("ps-threshold", "topology", "MMPTCP PS dup-ACK policy: topology, adaptive, standard")
		switchKB = flag.Int64("switch-kb", 100, "MMPTCP data-volume threshold, KB")
		flows    = flag.Int("flows", 1000, "number of short flows")
		flowKB   = flag.Int64("flow-kb", 70, "short-flow size, KB")
		rate     = flag.Float64("arrival-rate", 2.5, "short flows per second per sender")
		longFrac = flag.Float64("long-fraction", 1.0/3, "fraction of hosts running long flows (negative: none)")
		hotFrac  = flag.Float64("hotspot-fraction", 0, "fraction of short senders redirected to the hotspot host")
		hotHost  = flag.Int("hotspot-host", 0, "hotspot destination host")
		failN    = flag.Int("fail-cables", 0, "fail both directions of this many cables (0 = healthy network)")
		failLay  = flag.String("fail-layer", "agg", "layer of the failed cables: host, edge, agg, core")
		failAtMs = flag.Float64("fail-at-ms", 200, "failure time, milliseconds")
		repairMs = flag.Float64("repair-at-ms", 0, "repair time, milliseconds (0 = never repaired)")
		reconvMs = flag.Float64("reconverge-ms", 10, "routing reconvergence delay, milliseconds")
		failSw   = flag.String("fail-switches", "", "comma-separated switch ordinals to crash at -fail-at-ms (restart at -repair-at-ms)")
		routing  = flag.String("routing", "local", "repair model under failures: local (per-switch link exclusion) or global (control-plane reconvergence)")
		converge = flag.String("convergence", "atomic", "how recomputed tables reach the switches under -routing global: atomic (one flip) or staggered (per-switch FIB flips)")
		perhopMs = flag.Float64("perhop-ms", 0, "staggered convergence: extra flip delay per hop from the failure, milliseconds")
		holdMs   = flag.Float64("holddown-ms", 0, "flap damping window, milliseconds (0 = no damping)")
		flapThr  = flag.Int("flap-threshold", 0, "transitions within one hold-down window before a link is damped (0 = default 3)")
		deadRTOs = flag.Int("dead-rtos", 0, "declare a subflow dead after this many consecutive RTOs and re-dial it on a fresh source port (0 = recovery off)")
		redialBk = flag.Float64("redial-backoff-ms", 0, "base backoff between repeated re-dials of one subflow slot, milliseconds (0 = default 10 when -dead-rtos is set)")
		redialBg = flag.Int("redial-budget", 0, "re-dial attempts allowed per connection (0 = default 4 when -dead-rtos is set)")
		deferPS  = flag.Bool("defer-phase-switch", false, "hold MMPTCP's phase switch while routing convergence is in progress (requires -routing global)")
		maxDefMs = flag.Float64("max-defer-ms", 0, "bound on the phase-switch deferral, milliseconds (0 = default 50 with -defer-phase-switch)")
		lossRate = flag.Float64("degrade-loss", 0, "degrade the -fail-cables cables with this random-loss probability instead of hard failure")
		capFact  = flag.Float64("degrade-capacity", 0, "scale the -fail-cables cables' capacity by this factor in (0,1] instead of hard failure")
		seed     = flag.Uint64("seed", 1, "random seed (with -seeds: base for derived replicate seeds)")
		seeds    = flag.Int("seeds", 1, "replicate the experiment under this many derived seeds")
		shards   = flag.Int("shards", 0, "partition the fabric across this many parallel event engines (0/1 = sequential; runs are deterministic for a fixed -seed and -shards)")
		lookahd  = flag.String("lookahead", "", "sharded synchronization window policy: conservative (static min boundary delay, the default) or adaptive (widen windows from shard EOT promises, elide idle shards; identical results, fewer barriers)")
		workers  = flag.Int("workers", 0, "max concurrent replicates (0 = all CPUs); sharded replicates each occupy -shards worker slots")
		maxSimS  = flag.Float64("max-sim-seconds", 300, "virtual-time safety cap")
		perflow  = flag.Bool("perflow", false, "emit per-flow CSV to stdout")
		quiet    = flag.Bool("q", false, "suppress the report (useful with -perflow)")
		metricsM = flag.String("metrics", "exact", "measurement accumulation: exact (per-flow records) or streaming (O(1)-memory histograms)")
		histPrec = flag.Int("hist-precision", 0, "streaming histogram sub-bucket bits, percentile error <= 2^-bits (0 = default 10)")
		snapMs   = flag.Float64("snapshot-ms", 0, "record a cumulative snapshot every this many milliseconds of virtual time (0 = off)")
		poolInst = flag.Bool("pool", false, "recycle run instances across replicates sharing a shape (requires -seeds > 1)")
		traceM   = flag.String("trace", "", "record a structured event trace: ring (bounded flight recorder) or full (everything)")
		traceOut = flag.String("trace-out", "trace.json", "trace output path; a .jsonl suffix writes JSON lines, anything else Chrome trace-event JSON (open in Perfetto)")
		traceFl  = flag.String("trace-flows", "", "comma-separated flow IDs to restrict flow-scoped trace events to (default: all flows)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	cfg := mmptcp.Config{
		Topology:        mmptcp.TopologyKind(*topo),
		K:               *k,
		HostsPerEdge:    *hpe,
		LinkRateBps:     *rateBps,
		LinkDelay:       sim.Time(*delayUs) * sim.Microsecond,
		QueueLimit:      *queue,
		Protocol:        mmptcp.Protocol(*proto),
		Subflows:        *subflows,
		SwitchBytes:     *switchKB * 1000,
		ShortFlowSize:   *flowKB * 1000,
		ShortFlows:      *flows,
		ArrivalRate:     *rate,
		LongFraction:    *longFrac,
		HotspotFraction: *hotFrac,
		HotspotHost:     *hotHost,
		Seed:            *seed,
		Shards:          *shards,
		Lookahead:       mmptcp.LookaheadMode(*lookahd),
		MaxSimTime:      sim.FromSeconds(*maxSimS),
		Metrics: mmptcp.MetricsConfig{
			Mode:             mmptcp.MetricsMode(*metricsM),
			HistPrecision:    *histPrec,
			SnapshotInterval: sim.FromSeconds(*snapMs / 1000),
		},
	}
	switch *strategy {
	case "data-volume":
		cfg.Strategy = core.SwitchDataVolume
	case "congestion-event":
		cfg.Strategy = core.SwitchCongestionEvent
	default:
		fmt.Fprintf(os.Stderr, "unknown -switch-strategy %q\n", *strategy)
		os.Exit(2)
	}
	if (*lossRate > 0 || *capFact > 0) && *failN == 0 {
		fmt.Fprintln(os.Stderr, "-degrade-loss/-degrade-capacity need -fail-cables to select how many cables to degrade")
		os.Exit(2)
	}
	// Timing flags feed virtual-time schedules; a negative value would
	// silently schedule events at clamped or wrapped times. Reject them
	// here with a usable message rather than deep in the run.
	for _, check := range []struct {
		name  string
		value float64
	}{
		{"-fail-at-ms", *failAtMs},
		{"-repair-at-ms", *repairMs},
		{"-reconverge-ms", *reconvMs},
		{"-perhop-ms", *perhopMs},
		{"-holddown-ms", *holdMs},
		{"-max-sim-seconds", *maxSimS},
		{"-snapshot-ms", *snapMs},
		{"-redial-backoff-ms", *redialBk},
		{"-max-defer-ms", *maxDefMs},
	} {
		if check.value < 0 {
			fmt.Fprintf(os.Stderr, "%s must not be negative (got %v)\n", check.name, check.value)
			os.Exit(2)
		}
	}
	if *flapThr < 0 {
		fmt.Fprintf(os.Stderr, "-flap-threshold must not be negative (got %d)\n", *flapThr)
		os.Exit(2)
	}
	if *deadRTOs < 0 {
		fmt.Fprintf(os.Stderr, "-dead-rtos must not be negative (got %d); 0 disables recovery\n", *deadRTOs)
		os.Exit(2)
	}
	if *redialBg < 0 {
		fmt.Fprintf(os.Stderr, "-redial-budget must not be negative (got %d)\n", *redialBg)
		os.Exit(2)
	}
	if *deadRTOs == 0 && (*redialBk > 0 || *redialBg > 0) {
		fmt.Fprintln(os.Stderr, "-redial-backoff-ms/-redial-budget need -dead-rtos to arm re-dialing")
		os.Exit(2)
	}
	if !*deferPS && *maxDefMs > 0 {
		fmt.Fprintln(os.Stderr, "-max-defer-ms needs -defer-phase-switch")
		os.Exit(2)
	}
	if *deferPS && *routing != "global" {
		fmt.Fprintln(os.Stderr, "-defer-phase-switch needs -routing global (local repair exposes no convergence signal)")
		os.Exit(2)
	}
	if *histPrec < 0 {
		fmt.Fprintf(os.Stderr, "-hist-precision must not be negative (got %d); 0 selects the default\n", *histPrec)
		os.Exit(2)
	}
	if *perflow && mmptcp.MetricsMode(*metricsM) == mmptcp.MetricsStreaming {
		fmt.Fprintln(os.Stderr, "-perflow needs -metrics exact: streaming mode keeps no per-flow records")
		os.Exit(2)
	}
	if *poolInst && *seeds <= 1 {
		fmt.Fprintln(os.Stderr, "-pool recycles instances across a replicate sweep; add -seeds N > 1")
		os.Exit(2)
	}
	if *traceM != "" {
		if *seeds > 1 {
			fmt.Fprintln(os.Stderr, "-trace records a single run; drop -seeds or -trace")
			os.Exit(2)
		}
		cfg.Trace.Mode = mmptcp.TraceMode(*traceM)
		for _, part := range strings.Split(*traceFl, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.ParseUint(part, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -trace-flows flow ID %q\n", part)
				os.Exit(2)
			}
			cfg.Trace.Flows = append(cfg.Trace.Flows, id)
		}
	} else if *traceFl != "" {
		fmt.Fprintln(os.Stderr, "-trace-flows needs -trace ring or -trace full")
		os.Exit(2)
	}
	cfg.Routing = mmptcp.RoutingConfig{
		Mode:          mmptcp.RoutingMode(*routing),
		Convergence:   mmptcp.ConvergenceMode(*converge),
		PerHopDelay:   sim.FromSeconds(*perhopMs / 1000),
		HoldDown:      sim.FromSeconds(*holdMs / 1000),
		FlapThreshold: *flapThr,
	}
	cfg.Transport = mmptcp.TransportConfig{
		DeadRTOs:         *deadRTOs,
		RedialBackoff:    sim.FromSeconds(*redialBk / 1000),
		RedialBudget:     *redialBg,
		DeferPhaseSwitch: *deferPS,
		MaxDefer:         sim.FromSeconds(*maxDefMs / 1000),
	}
	if *failSw != "" {
		var ords []int
		for _, part := range strings.Split(*failSw, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -fail-switches ordinal %q\n", part)
				os.Exit(2)
			}
			ords = append(ords, n)
		}
		cfg.Faults.Events = append(cfg.Faults.Events, mmptcp.FailSwitches(ords,
			sim.FromSeconds(*failAtMs/1000), sim.FromSeconds(*repairMs/1000))...)
		cfg.Faults.ReconvergeDelay = sim.FromSeconds(*reconvMs / 1000)
	}
	if *failN > 0 {
		var layer mmptcp.Layer
		switch *failLay {
		case "host":
			layer = mmptcp.LayerHost
		case "edge":
			layer = mmptcp.LayerEdge
		case "agg":
			layer = mmptcp.LayerAgg
		case "core":
			layer = mmptcp.LayerCore
		default:
			fmt.Fprintf(os.Stderr, "unknown -fail-layer %q\n", *failLay)
			os.Exit(2)
		}
		at := sim.FromSeconds(*failAtMs / 1000)
		repair := sim.FromSeconds(*repairMs / 1000)
		if *lossRate > 0 || *capFact > 0 {
			factor := *capFact
			if factor == 0 {
				factor = 1 // loss-only degradation keeps full capacity
			}
			cfg.Faults.Events = append(cfg.Faults.Events,
				mmptcp.DegradeCables(layer, *failN, at, repair, factor, 0, *lossRate)...)
		} else {
			cfg.Faults.Events = append(cfg.Faults.Events,
				mmptcp.FailCables(layer, *failN, at, repair)...)
		}
		cfg.Faults.ReconvergeDelay = sim.FromSeconds(*reconvMs / 1000)
	}

	switch *psThresh {
	case "topology":
		cfg.PSThreshold = core.ThresholdTopology
	case "adaptive":
		cfg.PSThreshold = core.ThresholdAdaptive
	case "standard":
		cfg.PSThreshold = core.ThresholdStandard
	default:
		fmt.Fprintf(os.Stderr, "unknown -ps-threshold %q\n", *psThresh)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *seeds > 1 {
		if *perflow {
			fmt.Fprintln(os.Stderr, "-perflow is a single-run report; drop -seeds or -perflow")
			os.Exit(2)
		}
		replicate(cfg, *seeds, *workers, *seed, *poolInst)
		stopProf()
		if err := prof.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var res *mmptcp.Results
	var rec *mmptcp.Recorder
	if *traceM != "" {
		res, rec, err = mmptcp.RunTraced(cfg)
	} else {
		res, err = mmptcp.Run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)
	stopProf()
	if err := prof.WriteHeap(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if rec != nil {
		if err := writeTrace(rec, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "trace: kept %d of %d events -> %s\n",
				rec.Len(), rec.Total(), *traceOut)
		}
	}

	if !*quiet {
		report(res, wall)
	}
	if *perflow {
		fmt.Println("flow_index,src,dst,start_ms,fct_ms,timeouts,fast_retx,retx,completed")
		for i, r := range res.ShortFlows {
			fmt.Printf("%d,%d,%d,%.3f,%.3f,%d,%d,%d,%t\n",
				i, r.Src, r.Dst, r.Start.Milliseconds(), r.FCT().Milliseconds(),
				r.Timeouts, r.FastRetransmits, r.Retransmissions, r.Completed)
		}
	}
}

// replicate runs n copies of cfg under seeds derived from base via
// independent RNG streams, in parallel, and reports each replicate plus
// across-replicate aggregates.
func replicate(cfg mmptcp.Config, n, workers int, base uint64, pool bool) {
	configs := make([]mmptcp.Config, n)
	for i := range configs {
		configs[i] = cfg
		// Same derivation RunSweep's SweepOptions.Seed uses, applied
		// unconditionally so base 0 still yields distinct replicates.
		configs[i].Seed = mmptcp.NewRNGStream(base, uint64(i)).Uint64()
	}
	start := time.Now()
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{
		Workers: workers,
		Pool:    pool,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("protocol=%s topology=%s(k=%d,hosts/edge=%d) queue=%d base-seed=%d replicates=%d\n",
		cfg.Protocol, cfg.Topology, cfg.K, cfg.HostsPerEdge, cfg.QueueLimit, base, n)
	effective := workers
	if effective <= 0 {
		effective = mmptcp.DefaultSweepWorkers()
	}
	if effective > n {
		effective = n // the pool never runs more workers than jobs
	}
	fmt.Printf("ran %d experiments in %v wall (workers=%d)\n\n",
		n, wall.Round(time.Millisecond), effective)
	fmt.Println("replicate        seed  mean_ms  std_ms  p99_ms  rto_flows  miss_pct  long_tput_mbps")
	var means, tputs []float64
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%9d  %10d  %7.1f  %6.1f  %6.1f  %9d  %8.1f  %14.2f\n",
			i, res.Config.Seed, s.MeanMs, s.StdMs, s.P99Ms, s.WithRTO,
			res.DeadlineMissRate*100, res.LongThroughputMbps)
		means = append(means, s.MeanMs)
		tputs = append(tputs, res.LongThroughputMbps)
	}
	mMean, mStd := meanStd(means)
	tMean, tStd := meanStd(tputs)
	fmt.Printf("\nacross replicates: mean FCT %.1f ms (σ=%.1f), long goodput %.2f Mb/s (σ=%.2f)\n",
		mMean, mStd, tMean, tStd)
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

func report(res *mmptcp.Results, wall time.Duration) {
	cfg := res.Config
	fmt.Printf("protocol=%s topology=%s(k=%d,hosts/edge=%d) queue=%d seed=%d",
		cfg.Protocol, cfg.Topology, cfg.K, cfg.HostsPerEdge, cfg.QueueLimit, cfg.Seed)
	if cfg.Shards > 1 {
		fmt.Printf(" shards=%d lookahead=%s", cfg.Shards, res.Shard.Mode)
	}
	fmt.Println()
	fmt.Printf("simulated %v in %v wall (%d events, %.1fM events/s)\n",
		res.Elapsed, wall.Round(time.Millisecond), res.Events,
		float64(res.Events)/wall.Seconds()/1e6)
	if s := res.Shard; s.Shards > 1 {
		fmt.Printf("sync: %d barriers, %d windows (%d widened), %d elided wakeups, mean window %.1fus\n",
			s.Barriers, s.Windows, s.WidenedWindows, s.ElidedWakeups, s.MeanWindowNs/1e3)
	}
	fmt.Printf("\nshort flows (%d spawned):\n  %v\n", res.Spawned, res.ShortSummary)
	fmt.Printf("  deadline (%v) miss rate: %.1f%%\n", res.Config.Deadline, res.DeadlineMissRate*100)

	// FCT distribution sketch.
	var fcts []float64
	for _, r := range res.ShortFlows {
		if r.Completed {
			fcts = append(fcts, r.FCT().Milliseconds())
		}
	}
	sort.Float64s(fcts)
	if len(fcts) > 0 {
		fmt.Printf("  fct quartiles: %.1f / %.1f / %.1f ms\n",
			fcts[len(fcts)/4], fcts[len(fcts)/2], fcts[3*len(fcts)/4])
	}

	if len(res.Snapshots) > 0 {
		fmt.Println("\nsnapshots (cumulative):")
		fmt.Println("      t_ms  spawned  done  p50_ms  p99_ms  blackholed  noroute  recomputes")
		for _, sn := range res.Snapshots {
			fmt.Printf("  %8.0f  %7d  %5d  %6.1f  %6.1f  %10d  %7d  %10d\n",
				sn.At.Milliseconds(), sn.Spawned, sn.Short.Count, sn.Short.P50Ms,
				sn.Short.P99Ms, sn.Blackholed, sn.NoRouteDrops, sn.Recomputes)
		}
	}

	fmt.Printf("\nlong flows (%d):\n  mean goodput %.2f Mb/s\n", len(res.LongFlows), res.LongThroughputMbps)
	if cfg.Protocol == mmptcp.ProtoMMPTCP {
		fmt.Printf("  phase switches: %d\n", res.PhaseSwitches)
		if cfg.Transport.DeferPhaseSwitch {
			fmt.Printf("  switches deferred for convergence: %d\n", res.PhaseDeferrals)
		}
	}
	if cfg.Transport.DeadRTOs > 0 {
		fmt.Printf("\ntransport recovery: %d subflow re-dials, %d recovered a live path\n",
			res.Redials, res.RedialRecovered)
	}

	fmt.Println("\nper-layer (link direction classes):")
	for _, layer := range []netem.Layer{netem.LayerHost, netem.LayerEdge, netem.LayerAgg, netem.LayerCore} {
		ls, ok := res.Layers[layer]
		if !ok {
			continue
		}
		fmt.Printf("  %-4s  links=%-4d loss=%.5f util=%.3f max_queue=%d\n",
			layer, ls.Links, ls.LossRate, ls.Utilisation, ls.MaxQueue)
		if ls.Blackholed > 0 || ls.RandomDrops > 0 || ls.DownLinks > 0 {
			fmt.Printf("        failed: blackholed=%d (%d bytes) random_drops=%d down_links=%d time_in_failure=%v\n",
				ls.Blackholed, ls.BlackholedBytes, ls.RandomDrops, ls.DownLinks, ls.DownTime)
		}
	}
	if res.FaultEvents > 0 {
		fmt.Printf("\nfaults: %d scheduled events, %d packets blackholed, %d no-route drops\n",
			res.FaultEvents, res.Blackholed, res.NoRouteDrops)
		if res.SwitchCrashes > 0 {
			fmt.Printf("  switch crashes: %d (%d packets dropped at crashed forwarding planes)\n",
				res.SwitchCrashes, res.CrashDrops)
		}
		fmt.Printf("  routing: %s repair", res.Routing.Mode)
		if res.Routing.Recomputes > 0 {
			fmt.Printf(", %d recomputes, last convergence at %v, %d overrides live at run end",
				res.Routing.Recomputes, res.Routing.LastConvergence, res.Routing.Overrides)
		}
		fmt.Println()
		if res.Routing.Convergence == string(mmptcp.ConvergeStaggered) {
			fmt.Printf("  staggered convergence: %d per-switch flips, %v cumulative transient window\n",
				res.Routing.Flips, res.Routing.TransientTime)
			fmt.Printf("    window damage: %d loop drops, %d transient no-route, %d stale lookups\n",
				res.LoopDrops, res.Routing.TransientNoRoute, res.Routing.StaleLookups)
		}
		if res.Routing.Damped > 0 {
			fmt.Printf("  flap damping: %d transitions deferred by hold-down\n", res.Routing.Damped)
		}
	}
}
