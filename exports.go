package mmptcp

import (
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Aliases re-export the handful of internal types that appear in the
// public API, so downstream users can drive custom scenarios (single
// flows via Dial, hand-built workloads) without importing internal
// packages.
type (
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// RNG is the deterministic random number generator.
	RNG = sim.RNG
	// SimTime is a point in virtual time (nanoseconds).
	SimTime = sim.Time
	// Network is a built topology (hosts, switches, links).
	Network = topology.Network
	// FlowRecord is one flow's measured outcome.
	FlowRecord = metrics.FlowRecord
	// Summary is aggregate FCT statistics.
	Summary = metrics.Summary
	// Snapshot is one periodic sample of a run's cumulative state (see
	// Results.Snapshots and MetricsConfig.SnapshotInterval).
	Snapshot = metrics.Snapshot
	// Assignment is a workload role/partner assignment.
	Assignment = workload.Assignment
	// IncastBurst schedules an n-to-1 burst of flows.
	IncastBurst = workload.Incast
	// Sampler records time series (cwnd, RTT, queue depth) from a
	// running simulation.
	Sampler = trace.Sampler
	// Recorder is the structured event recorder (flight recorder)
	// enabled by Config.Trace; see RunTraced and RunInstance.Recorder.
	Recorder = trace.Recorder
	// TraceEvent is one recorded structured event.
	TraceEvent = trace.Event
	// TraceKind identifies a trace event's type (trace.Kind* constants).
	TraceKind = trace.Kind

	// FaultsConfig is the network-dynamics section of Config: timed
	// failure/degradation events, an optional sampled failure model, and
	// the routing reconvergence delay.
	FaultsConfig = faults.Config
	// FaultEvent is one timed network mutation (link down/up,
	// degradation, restore) addressed by layer and link index.
	FaultEvent = faults.Event
	// FaultModel samples failures from per-layer MTBF/MTTR statistics,
	// correlated cable groups and per-tier switch crashes.
	FaultModel = faults.Model
	// FaultLayerModel is one layer's MTBF/MTTR failure statistics.
	FaultLayerModel = faults.LayerModel
	// FaultGroupModel samples correlated failures: consecutive groups of
	// same-layer cables (a line card, a power domain) fail and recover
	// as a unit.
	FaultGroupModel = faults.GroupModel
	// FaultSwitchModel samples whole-switch crash/restart pairs for one
	// switch tier.
	FaultSwitchModel = faults.SwitchModel
	// Layer classifies where in the topology a link sits.
	Layer = netem.Layer

	// RoutingMode selects local vs global repair under failures; see
	// Config.Routing.
	RoutingMode = routing.Mode
	// ConvergenceMode selects atomic vs staggered (per-switch FIB flip)
	// table distribution in the global control plane; see RoutingConfig.
	ConvergenceMode = routing.Convergence
	// RoutingStats reports the control plane's work (recompute count,
	// last convergence time, live override entries, staggered flip
	// spread and transient-window damage) in Results.Routing.
	RoutingStats = metrics.RoutingStats
	// ConvergenceObserver is the transport-facing convergence signal
	// (*routing.ControlPlane implements it); DialConfig.Observer takes
	// one for custom drivers using Config.Transport.DeferPhaseSwitch.
	ConvergenceObserver = routing.ConvergenceObserver
)

// Fault event kinds.
const (
	FaultLinkDown   = faults.LinkDown
	FaultLinkUp     = faults.LinkUp
	FaultDegrade    = faults.Degrade
	FaultRestore    = faults.Restore
	FaultSwitchDown = faults.SwitchDown
	FaultSwitchUp   = faults.SwitchUp
)

// Routing repair modes for Config.Routing.Mode.
const (
	RoutingLocal  = routing.Local
	RoutingGlobal = routing.Global
)

// Convergence models for Config.Routing.Convergence.
const (
	ConvergeAtomic    = routing.Atomic
	ConvergeStaggered = routing.Staggered
)

// Topology layers, for addressing fault targets.
const (
	LayerHost = netem.LayerHost
	LayerEdge = netem.LayerEdge
	LayerAgg  = netem.LayerAgg
	LayerCore = netem.LayerCore
)

// FailCables builds LinkDown events for both directions of the first n
// cables at a topology layer at time `at`, with matching LinkUp repair
// events at upAt (0 = never repaired). See faults.FailCables.
func FailCables(layer Layer, n int, at, upAt SimTime) []FaultEvent {
	return faults.FailCables(layer, n, at, upAt)
}

// DegradeCables builds Degrade events (capacity factor, extra delay,
// random loss) for both directions of the first n cables at a layer,
// with Restore events at restoreAt (0 = never restored).
func DegradeCables(layer Layer, n int, at, restoreAt SimTime, capacityFactor float64, extraDelay SimTime, lossRate float64) []FaultEvent {
	return faults.DegradeCables(layer, n, at, restoreAt, capacityFactor, extraDelay, lossRate)
}

// FailSwitches builds SwitchDown crash events for the given switch
// ordinals (builder order) at time `at`, with matching SwitchUp restart
// events at upAt (0 = never restarted). A crash fails every port of the
// switch at once. See faults.FailSwitches.
func FailSwitches(switches []int, at, upAt SimTime) []FaultEvent {
	return faults.FailSwitches(switches, at, upAt)
}

// Virtual-time units for use with SimTime.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewRNGStream returns a deterministic generator on an explicit stream.
// Streams with the same seed are statistically independent — this is the
// derivation RunSweep uses to give each run of a replicate set its own
// seed (see SweepOptions.Seed).
func NewRNGStream(seed, stream uint64) *RNG { return sim.NewRNGStream(seed, stream) }

// NewSampler creates a time-series sampler on the engine.
func NewSampler(eng *Engine, interval SimTime) *Sampler {
	return trace.NewSampler(eng, interval)
}

// NewNetwork builds the topology described by cfg on the engine.
func NewNetwork(eng *Engine, cfg Config) (*Network, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return cfg.buildNetwork(eng)
}

// PathCount returns the number of equal-cost paths between two hosts of
// a built network (the oracle MMPTCP's packet-scatter phase uses for its
// duplicate-ACK threshold).
func PathCount(net *Network, src, dst int) int {
	return net.PathCount(netem.NodeID(src), netem.NodeID(dst))
}

// BuildPermutation draws the paper's permutation traffic matrix over the
// network's hosts: a derangement of destinations with longFraction of
// hosts designated long-flow senders.
func BuildPermutation(rng *RNG, hosts int, longFraction float64) Assignment {
	return workload.BuildPermutation(rng, hosts, longFraction)
}
