package mmptcp

import (
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Aliases re-export the handful of internal types that appear in the
// public API, so downstream users can drive custom scenarios (single
// flows via Dial, hand-built workloads) without importing internal
// packages.
type (
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// RNG is the deterministic random number generator.
	RNG = sim.RNG
	// SimTime is a point in virtual time (nanoseconds).
	SimTime = sim.Time
	// Network is a built topology (hosts, switches, links).
	Network = topology.Network
	// FlowRecord is one flow's measured outcome.
	FlowRecord = metrics.FlowRecord
	// Summary is aggregate FCT statistics.
	Summary = metrics.Summary
	// Assignment is a workload role/partner assignment.
	Assignment = workload.Assignment
	// IncastBurst schedules an n-to-1 burst of flows.
	IncastBurst = workload.Incast
	// Sampler records time series (cwnd, RTT, queue depth) from a
	// running simulation.
	Sampler = trace.Sampler
)

// Virtual-time units for use with SimTime.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewRNGStream returns a deterministic generator on an explicit stream.
// Streams with the same seed are statistically independent — this is the
// derivation RunSweep uses to give each run of a replicate set its own
// seed (see SweepOptions.Seed).
func NewRNGStream(seed, stream uint64) *RNG { return sim.NewRNGStream(seed, stream) }

// NewSampler creates a time-series sampler on the engine.
func NewSampler(eng *Engine, interval SimTime) *Sampler {
	return trace.NewSampler(eng, interval)
}

// NewNetwork builds the topology described by cfg on the engine.
func NewNetwork(eng *Engine, cfg Config) (*Network, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return cfg.buildNetwork(eng)
}

// PathCount returns the number of equal-cost paths between two hosts of
// a built network (the oracle MMPTCP's packet-scatter phase uses for its
// duplicate-ACK threshold).
func PathCount(net *Network, src, dst int) int {
	return net.PathCount(netem.NodeID(src), netem.NodeID(dst))
}

// BuildPermutation draws the paper's permutation traffic matrix over the
// network's hosts: a derangement of destinations with longFraction of
// hosts designated long-flow senders.
func BuildPermutation(rng *RNG, hosts int, longFraction float64) Assignment {
	return workload.BuildPermutation(rng, hosts, longFraction)
}
