package mmptcp

// Benchmarks regenerating every figure and numerical claim in the
// paper's evaluation, at bench-friendly scale (a 4:1 over-subscribed
// K=4 FatTree, hundreds of short flows). The custom metrics reported
// via b.ReportMetric are the quantities the paper plots:
//
//	mean-fct-ms / std-fct-ms  — Figure 1(a) and the §3 statistics
//	rto-flows                 — Figure 1(a)'s error-bar driver
//	long-tput-mbps            — §3 "same average throughput"
//	loss-agg-core-pct         — §3 loss at the core layer
//
// go test -bench=. -benchmem prints them next to the usual ns/op. Run
// cmd/figures -scale medium|paper for full-scale numbers.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// benchConfig is the common reduced-scale setup.
func benchConfig(proto Protocol, flows int) Config {
	cfg := SmallConfig(proto, flows)
	cfg.Seed = 1
	return cfg
}

func reportShort(b *testing.B, res *Results) {
	b.ReportMetric(res.ShortSummary.MeanMs, "mean-fct-ms")
	b.ReportMetric(res.ShortSummary.StdMs, "std-fct-ms")
	b.ReportMetric(float64(res.ShortSummary.WithRTO), "rto-flows")
	b.ReportMetric(res.LongThroughputMbps, "long-tput-mbps")
	b.ReportMetric(res.Layers[netem.LayerAgg].LossRate*100, "loss-agg-core-pct")
	b.ReportMetric(res.DeadlineMissRate*100, "deadline-miss-pct")
}

// BenchmarkFig1aMPTCPSubflowSweep regenerates Figure 1(a): MPTCP
// short-flow FCT versus subflow count. The paper's claim: mean and
// standard deviation grow with the number of subflows.
func BenchmarkFig1aMPTCPSubflowSweep(b *testing.B) {
	for _, subflows := range []int{1, 2, 4, 8, 9} {
		b.Run(fmt.Sprintf("subflows=%d", subflows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(ProtoMPTCP, 300)
				cfg.Subflows = subflows
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
			}
		})
	}
}

// BenchmarkFig1bMPTCP8 regenerates Figure 1(b): the short-flow FCT
// scatter under MPTCP with 8 subflows (heavy RTO tail).
func BenchmarkFig1bMPTCP8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(benchConfig(ProtoMPTCP, 400))
		if err != nil {
			b.Fatal(err)
		}
		reportShort(b, res)
		b.ReportMetric(res.ShortSummary.MaxMs, "max-fct-ms")
	}
}

// BenchmarkFig1cMMPTCP regenerates Figure 1(c): the same workload under
// MMPTCP — the tail collapses, most flows complete quickly.
func BenchmarkFig1cMMPTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(benchConfig(ProtoMMPTCP, 400))
		if err != nil {
			b.Fatal(err)
		}
		reportShort(b, res)
		b.ReportMetric(res.ShortSummary.MaxMs, "max-fct-ms")
	}
}

// BenchmarkStatsTable regenerates the §3 numbers (mean/std for both
// protocols under the identical workload) in a single bench so the pair
// prints side by side.
func BenchmarkStatsTable(b *testing.B) {
	for _, proto := range []Protocol{ProtoMPTCP, ProtoMMPTCP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(benchConfig(proto, 400))
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
			}
		})
	}
}

// BenchmarkXSwitchingStrategies is the §2 ablation: data-volume vs
// congestion-event phase switching.
func BenchmarkXSwitchingStrategies(b *testing.B) {
	for _, strat := range []core.Strategy{core.SwitchDataVolume, core.SwitchCongestionEvent} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(ProtoMMPTCP, 300)
				cfg.Strategy = strat
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
				b.ReportMetric(float64(res.PhaseSwitches), "phase-switches")
			}
		})
	}
}

// BenchmarkXLoadSweep is the roadmap's network-load experiment: the
// whole 6-config scan (3 arrival rates x 2 protocols) runs as one
// RunSweep per iteration, the way cmd/figures -fig load drives it.
func BenchmarkXLoadSweep(b *testing.B) {
	var configs []Config
	for _, rate := range []float64{1, 5, 10} {
		for _, proto := range []Protocol{ProtoMPTCP, ProtoMMPTCP} {
			cfg := benchConfig(proto, 250)
			cfg.ArrivalRate = rate
			configs = append(configs, cfg)
		}
	}
	for i := 0; i < b.N; i++ {
		results, err := RunSweep(configs, SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, res := range results {
			mean += res.ShortSummary.MeanMs
		}
		b.ReportMetric(mean/float64(len(results)), "scan-mean-fct-ms")
	}
}

// BenchmarkRunSweepWorkers measures the sweep layer itself: the same
// fixed scan with one worker (the old serial behaviour) and with every
// CPU. On an N-core machine the parallel variant should complete close
// to N times faster, with identical results (TestRunSweepDeterminism).
func BenchmarkRunSweepWorkers(b *testing.B) {
	var configs []Config
	for i := 0; i < 6; i++ {
		cfg := benchConfig(ProtoMMPTCP, 150)
		cfg.Seed = uint64(i + 1)
		configs = append(configs, cfg)
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunSweep(configs, SweepOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXHotspot is the roadmap's hotspot experiment.
func BenchmarkXHotspot(b *testing.B) {
	for _, proto := range []Protocol{ProtoMPTCP, ProtoMMPTCP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(proto, 250)
				cfg.HotspotFraction = 0.5
				cfg.HotspotHost = 0
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
			}
		})
	}
}

// BenchmarkXMultiHomed is the roadmap's dual-homed topology experiment.
func BenchmarkXMultiHomed(b *testing.B) {
	for _, topo := range []TopologyKind{TopoFatTree, TopoMultiHomed} {
		b.Run(string(topo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(ProtoMMPTCP, 250)
				cfg.Topology = topo
				if topo == TopoMultiHomed {
					cfg.K = 4
					cfg.HostsPerEdge = 8
				}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
			}
		})
	}
}

// BenchmarkXCoexistence shares one dumbbell bottleneck among TCP, MPTCP
// and MMPTCP long flows (§3 co-existence), reporting each goodput.
func BenchmarkXCoexistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		link := topology.DefaultLinkConfig()
		link.RateBps = 1_000_000_000
		d := topology.NewDumbbell(eng, topology.DumbbellConfig{
			HostsPerSide:  3,
			Link:          link,
			BottleneckBps: 100_000_000,
		})
		rng := sim.NewRNG(1)
		protos := []Protocol{ProtoTCP, ProtoMPTCP, ProtoMMPTCP}
		conns := make([]Conn, len(protos))
		for j, proto := range protos {
			conn, err := Dial(eng, &d.Network, Config{Protocol: proto, Subflows: 8}, DialConfig{
				FlowID: uint64(j + 1), Src: j, Dst: d.Cfg.HostsPerSide + j, Size: -1, RNG: rng.Split(),
			})
			if err != nil {
				b.Fatal(err)
			}
			conns[j] = conn
			conn.Start()
		}
		const horizon = 5 * sim.Second
		eng.RunUntil(horizon)
		for j, proto := range protos {
			mbps := float64(conns[j].Receiver().Delivered()) * 8 / horizon.Seconds() / 1e6
			b.ReportMetric(mbps, string(proto)+"-mbps")
		}
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (events/sec) on
// the headline workload, for performance regressions.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(EngineBenchConfig(false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkXChurnRecompute exercises reconvergence at paper scale:
// 512 hosts, K=8, hundreds of sampled link transitions, local vs global
// repair. The global variant reports the incremental control plane's
// work counters — before incremental recompute, every one of those
// recomputes rebuilt all 512 destinations (dst-skipped would read 0 and
// bfs-runs would be recomputes x live signatures).
func BenchmarkXChurnRecompute(b *testing.B) {
	for _, mode := range []RoutingMode{RoutingLocal, RoutingGlobal} {
		b.Run(string(mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(ChurnBenchConfig(mode, false))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FaultEvents), "fault-events")
				b.ReportMetric(float64(res.Routing.Recomputes), "recomputes")
				b.ReportMetric(float64(res.Routing.DstRecomputed), "dst-recomputed")
				b.ReportMetric(float64(res.Routing.DstSkipped), "dst-skipped")
				b.ReportMetric(float64(res.Routing.BFSRuns), "bfs-runs")
				b.ReportMetric(float64(res.NoRouteDrops), "noroute")
			}
		})
	}
}

// BenchmarkXDupThreshPolicies ablates the PS duplicate-ACK threshold
// policy (§2 approaches): standard 3 (strawman), topology-derived, and
// RR-TCP-like adaptive.
func BenchmarkXDupThreshPolicies(b *testing.B) {
	for _, mode := range []core.ThresholdMode{
		core.ThresholdStandard, core.ThresholdTopology, core.ThresholdAdaptive,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(ProtoMMPTCP, 300)
				cfg.PSThreshold = mode
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
				var retx int64
				for _, r := range res.ShortFlows {
					retx += r.Retransmissions
				}
				b.ReportMetric(float64(retx), "short-retx")
			}
		})
	}
}

// BenchmarkXSwitchBytesSweep ablates the data-volume threshold: too low
// and short flows leak into the MPTCP phase (back to tiny windows); too
// high and long flows linger on a single window. The five thresholds run
// as one RunSweep per iteration.
func BenchmarkXSwitchBytesSweep(b *testing.B) {
	kbs := []int64{35, 70, 100, 200, 500}
	configs := make([]Config, len(kbs))
	for i, kb := range kbs {
		configs[i] = benchConfig(ProtoMMPTCP, 300)
		configs[i].SwitchBytes = kb * 1000
	}
	for i := 0; i < b.N; i++ {
		results, err := RunSweep(configs, SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var switches float64
		for _, res := range results {
			switches += float64(res.PhaseSwitches)
		}
		// Summed across the scan — a different quantity from the
		// per-config "phase-switches" other benchmarks report.
		b.ReportMetric(switches, "scan-phase-switches")
	}
}

// BenchmarkXDCTCPBaseline adds the single-path ECN baseline from §1 to
// the comparison: good short flows, but it needs switch support and
// cannot use multiple paths.
func BenchmarkXDCTCPBaseline(b *testing.B) {
	for _, proto := range []Protocol{ProtoTCP, ProtoDCTCP, ProtoMMPTCP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(benchConfig(proto, 300))
				if err != nil {
					b.Fatal(err)
				}
				reportShort(b, res)
			}
		})
	}
}

// BenchmarkXSACK ablates SACK recovery: does the paper's MPTCP damage
// survive modern loss recovery? (It should: subflow windows too small
// for *any* duplicate-ACK feedback still stall on RTOs.)
func BenchmarkXSACK(b *testing.B) {
	for _, proto := range []Protocol{ProtoMPTCP, ProtoMMPTCP} {
		for _, sack := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/sack=%t", proto, sack), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(proto, 300)
					cfg.SACK = sack
					res, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					reportShort(b, res)
				}
			})
		}
	}
}

// BenchmarkXRedialChurn exercises transport recovery on the tracked
// outage scenario (RedialChurnBenchConfig, shared with cmd/bench's
// recovery rows): subflows pinned through the unreachable cores re-dial
// onto live paths instead of waiting out the repair in RTO backoff. The
// off variant is the same scenario with the machinery disarmed — its
// numbers must not move as the recovery code evolves.
func BenchmarkXRedialChurn(b *testing.B) {
	for _, recovery := range []bool{false, true} {
		name := "off"
		if recovery {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(RedialChurnBenchConfig(recovery, false))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Redials), "redials")
				b.ReportMetric(float64(res.RedialRecovered), "redial-recovered")
				b.ReportMetric(res.LongThroughputMbps, "long-tput-mbps")
			}
		})
	}
}
