package mmptcp

import (
	"context"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// TestPooledSweepByteIdentical is the pooling contract: a pooled sweep
// returns byte-identical Results to the unpooled path, serial and
// parallel, across the PR-3 fault suite on both hash-seeded
// multi-rooted topologies (FatTree and VL2) with mixed shapes, protos,
// metrics modes and distinct seeds — so recycled engines, networks,
// ECMP hash seeds and FIB state provably carry nothing between runs.
func TestPooledSweepByteIdentical(t *testing.T) {
	mkConfigs := func() []Config {
		var configs []Config
		for _, proto := range []Protocol{ProtoTCP, ProtoMMPTCP} {
			// Cable failures with global repair on the FatTree.
			fail := faultedConfig(proto, 40)
			fail.Routing.Mode = RoutingGlobal
			configs = append(configs, fail)
			// Degraded (lossy, slow) cables on the FatTree edge.
			deg := tiny(proto, 40)
			deg.Faults = FaultsConfig{
				Events: DegradeCables(LayerEdge, 2, 120*Millisecond, 400*Millisecond,
					0.5, 50*Microsecond, 0.02),
			}
			configs = append(configs, deg)
			// Cable failures on a VL2 fabric — a second pool shape whose
			// per-switch hash seeds use a different derivation salt.
			vl2 := tiny(proto, 40)
			vl2.Topology = TopoVL2
			vl2.K = 4
			vl2.HostsPerEdge = 2
			vl2.Faults = FaultsConfig{
				Events:          FailCables(LayerAgg, 2, 150*Millisecond, 600*Millisecond),
				ReconvergeDelay: 50 * Millisecond,
			}
			configs = append(configs, vl2)
		}
		// A switch crash, and the new metrics modes riding on recycled
		// instances: streaming aggregation and rolling snapshots.
		crash := faultedConfig(ProtoMMPTCP, 40)
		crash.Faults = FaultsConfig{
			Events:          FailSwitches([]int{16}, 200*Millisecond, 800*Millisecond),
			ReconvergeDelay: 50 * Millisecond,
		}
		configs = append(configs, crash)
		strm := faultedConfig(ProtoMMPTCP, 40)
		strm.Metrics.Mode = MetricsStreaming
		configs = append(configs, strm)
		snap := faultedConfig(ProtoTCP, 40)
		snap.Metrics.SnapshotInterval = 100 * Millisecond
		configs = append(configs, snap)
		// Distinct seeds: every instance reuse must re-derive hash seeds
		// and RNG streams, not inherit the previous run's.
		for i := range configs {
			configs[i].Seed = uint64(i + 1)
		}
		return configs
	}

	fresh, err := RunSweep(mkConfigs(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled1, err := RunSweep(mkConfigs(), SweepOptions{Workers: 1, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	pooled4, err := RunSweep(mkConfigs(), SweepOptions{Workers: 4, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if !reflect.DeepEqual(fresh[i], pooled1[i]) {
			t.Errorf("config %d: pooled serial sweep diverged from fresh instances", i)
		}
		if !reflect.DeepEqual(fresh[i], pooled4[i]) {
			t.Errorf("config %d: pooled 4-worker sweep diverged from fresh instances", i)
		}
	}
	// The suite actually exercised what it claims to.
	for i, res := range fresh {
		if res.FaultEvents == 0 {
			t.Errorf("config %d resolved no fault events", i)
		}
	}
	if n := len(fresh); fresh[n-2].ShortFlows != nil {
		t.Error("streaming config kept per-flow records")
	}
	if n := len(fresh); len(fresh[n-1].Snapshots) == 0 {
		t.Error("snapshot config recorded no snapshots")
	}
}

// TestPooledSweepWorkerAllocationFree locks in the pooling payoff: once
// an instance is warm, the worker loop's per-replicate setup —
// pool.Get, Reset for the next seed, pool.Put — allocates nothing.
func TestPooledSweepWorkerAllocationFree(t *testing.T) {
	cfg := tiny(ProtoMMPTCP, 20)
	inst, err := NewRunInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the instance: real runs grow the engine's event free list and
	// the network's internal scratch to steady-state capacity.
	for s := uint64(1); s <= 2; s++ {
		cfg.Seed = s
		if err := inst.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	pool := sweep.NewInstancePool[Shape, *RunInstance]()
	shape := inst.Shape()
	pool.Put(shape, inst)
	seed := uint64(3)
	allocs := testing.AllocsPerRun(100, func() {
		got, ok := pool.Get(shape)
		if !ok {
			panic("pool lost the instance")
		}
		cfg.Seed = seed
		seed++
		if err := got.Reset(cfg); err != nil {
			panic(err)
		}
		pool.Put(shape, got)
	})
	if allocs != 0 {
		t.Errorf("pooled worker setup loop allocates %.1f per replicate, want 0", allocs)
	}
}

// TestRunInstanceShapeMismatch: reusing an instance for a config with a
// different structural Shape must error, not silently run the wrong
// network.
func TestRunInstanceShapeMismatch(t *testing.T) {
	base := tiny(ProtoTCP, 10)
	inst, err := NewRunInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.HostsPerEdge = 4
	if err := inst.Reset(other); err == nil {
		t.Error("Reset with mismatched HostsPerEdge succeeded")
	} else if !strings.Contains(err.Error(), "shape") {
		t.Errorf("mismatch error does not mention shape: %v", err)
	}
	// DCTCP defaults an ECN threshold, so its shape differs from TCP's
	// even with identical explicit fields.
	dctcp := base
	dctcp.Protocol = ProtoDCTCP
	if err := inst.Reset(dctcp); err == nil {
		t.Error("Reset with DCTCP config on a TCP-shaped instance succeeded")
	}
	// Same shape still works, with any seed.
	same := base
	same.Seed = 99
	same.ShortFlows = 5 // workload is not part of the shape
	if err := inst.Reset(same); err != nil {
		t.Errorf("Reset with same-shape config failed: %v", err)
	}
}

// TestMetricsKnobValidation: the new metrics knobs reject nonsense
// cleanly at config time instead of misbehaving mid-run.
func TestMetricsKnobValidation(t *testing.T) {
	run := func(mutate func(*Config)) error {
		cfg := tiny(ProtoTCP, 1)
		mutate(&cfg)
		_, err := Run(cfg)
		return err
	}
	if err := run(func(c *Config) { c.Metrics.Mode = "bogus" }); err == nil {
		t.Error("unknown metrics mode accepted")
	}
	for _, p := range []int{-1, 17, 100} {
		p := p
		if err := run(func(c *Config) { c.Metrics.HistPrecision = p }); err == nil {
			t.Errorf("histogram precision %d accepted", p)
		}
	}
	if err := run(func(c *Config) { c.Metrics.SnapshotInterval = -Millisecond }); err == nil {
		t.Error("negative snapshot interval accepted")
	}
	// Pooled sweeps surface the same validation errors.
	bad := tiny(ProtoTCP, 1)
	bad.Metrics.HistPrecision = -1
	if _, err := RunSweep([]Config{bad}, SweepOptions{Pool: true}); err == nil {
		t.Error("pooled sweep accepted invalid histogram precision")
	}
}

// TestStreamingRunMatchesExact compares a streaming-mode run against the
// exact-mode oracle on the same config: counts, moments and extremes are
// identical, percentiles sit within the documented histogram bound of
// the exact order statistics, and no per-flow records are retained.
func TestStreamingRunMatchesExact(t *testing.T) {
	base := tiny(ProtoMMPTCP, 80)
	exact, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	scfg := base
	scfg.Metrics.Mode = MetricsStreaming
	stream, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if stream.ShortFlows != nil {
		t.Errorf("streaming run kept %d per-flow records", len(stream.ShortFlows))
	}
	es, ss := exact.ShortSummary, stream.ShortSummary
	if ss.Count != es.Count || ss.Incomplete != es.Incomplete || ss.WithRTO != es.WithRTO {
		t.Errorf("counts diverge: streaming %+v exact %+v", ss, es)
	}
	if math.Abs(ss.MeanMs-es.MeanMs) > 1e-9*es.MeanMs {
		t.Errorf("mean: streaming %v exact %v", ss.MeanMs, es.MeanMs)
	}
	if math.Abs(ss.StdMs-es.StdMs) > 1e-6*es.MeanMs {
		t.Errorf("std: streaming %v exact %v", ss.StdMs, es.StdMs)
	}
	if ss.MinMs != es.MinMs || ss.MaxMs != es.MaxMs {
		t.Errorf("min/max: streaming %v/%v exact %v/%v", ss.MinMs, ss.MaxMs, es.MinMs, es.MaxMs)
	}
	if math.Abs(stream.DeadlineMissRate-exact.DeadlineMissRate) > 1e-12 {
		t.Errorf("miss rate: streaming %v exact %v", stream.DeadlineMissRate, exact.DeadlineMissRate)
	}
	// Percentiles against the exact per-flow records' order statistics.
	var fcts []float64
	for _, r := range exact.ShortFlows {
		if r.Completed {
			fcts = append(fcts, r.FCT().Milliseconds())
		}
	}
	sort.Float64s(fcts)
	eps := 1 / math.Pow(2, float64(base.Metrics.HistPrecision)) // 0 → default below
	if base.Metrics.HistPrecision == 0 {
		eps = 1.0 / 1024 // DefaultHistPrecision = 10 bits
	}
	for _, pq := range []struct {
		got float64
		q   float64
	}{{ss.P50Ms, 0.50}, {ss.P95Ms, 0.95}, {ss.P99Ms, 0.99}} {
		pos := pq.q * float64(len(fcts)-1)
		lo := fcts[int(math.Floor(pos))]
		hi := fcts[int(math.Ceil(pos))]
		if pq.got < lo*(1-eps)-1e-9 || pq.got > hi*(1+eps)+1e-9 {
			t.Errorf("q=%v: streaming %v outside order-stat bracket [%v, %v]",
				pq.q, pq.got, lo, hi)
		}
	}
	// Everything outside the short-flow accounting is untouched by the
	// metrics mode: same simulation, same counters.
	if stream.Events != exact.Events || stream.Elapsed != exact.Elapsed || stream.Spawned != exact.Spawned {
		t.Errorf("simulation diverged: streaming events=%d elapsed=%v, exact events=%d elapsed=%v",
			stream.Events, stream.Elapsed, exact.Events, exact.Elapsed)
	}
	if !reflect.DeepEqual(stream.LongFlows, exact.LongFlows) {
		t.Error("long-flow records diverged between metrics modes")
	}
}

// TestRollingSnapshots: a positive SnapshotInterval yields a cumulative
// time series at the configured cadence, and — in exact mode — leaves
// the final per-flow records and summary byte-identical to a
// snapshot-free run.
func TestRollingSnapshots(t *testing.T) {
	iv := 50 * Millisecond
	cfg := tiny(ProtoMMPTCP, 40)
	cfg.Metrics.SnapshotInterval = iv
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots recorded")
	}
	prev := res.Snapshots[0]
	if prev.At != iv {
		t.Errorf("first snapshot at %v, want %v", prev.At, iv)
	}
	for i, snap := range res.Snapshots[1:] {
		if snap.At != prev.At+iv {
			t.Errorf("snapshot %d at %v, want %v", i+1, snap.At, prev.At+iv)
		}
		// Cumulative counters never decrease.
		if snap.Spawned < prev.Spawned || snap.Short.Count < prev.Short.Count ||
			snap.Blackholed < prev.Blackholed || snap.NoRouteDrops < prev.NoRouteDrops {
			t.Errorf("snapshot %d went backwards: %+v after %+v", i+1, snap, prev)
		}
		prev = snap
	}
	last := res.Snapshots[len(res.Snapshots)-1]
	if last.Spawned > res.Spawned || last.Short.Count > res.ShortSummary.Count {
		t.Errorf("last snapshot exceeds final totals: %+v vs spawned=%d count=%d",
			last, res.Spawned, res.ShortSummary.Count)
	}
	// Exact mode with snapshots keeps the exact final statistics.
	plain := cfg
	plain.Metrics.SnapshotInterval = 0
	base, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ShortFlows, base.ShortFlows) {
		t.Error("snapshots perturbed the per-flow records")
	}
	if res.ShortSummary != base.ShortSummary {
		t.Errorf("snapshots perturbed the summary: %+v vs %+v", res.ShortSummary, base.ShortSummary)
	}
}
