package mmptcp

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
)

// repairConfig is the local-vs-global comparison scenario: two agg-core
// cables die at 150ms — crippling agg(0,0) and the pod-0 downlinks of
// cores 0 and 1 — and stay dead until 2.5s, with a 25ms reconvergence
// delay. Local repair leaves upstream ECMP hashing onto the crippled
// cores for the whole outage; global repair steers around them once
// routing converges.
func repairConfig(proto Protocol, flows int, mode RoutingMode) Config {
	cfg := tiny(proto, flows)
	cfg.MaxSimTime = 20 * Second
	cfg.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 2500*Millisecond),
		ReconvergeDelay: 25 * Millisecond,
	}
	cfg.Routing.Mode = mode
	return cfg
}

// TestGlobalRepairShape is the acceptance shape: under the identical
// fault schedule and workload, global repair strictly reduces NoRoute
// drops versus the local baseline (it exists to stop upstream switches
// hashing onto next hops with no way forward), actually does recompute
// work, and does not hurt the long flows.
func TestGlobalRepairShape(t *testing.T) {
	if testing.Short() {
		t.Skip("repair comparison is slow")
	}
	local, err := Run(repairConfig(ProtoMMPTCP, 150, RoutingLocal))
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(repairConfig(ProtoMMPTCP, 150, RoutingGlobal))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("local : %v miss=%.2f long=%.2f noroute=%d blackholed=%d",
		local.ShortSummary, local.DeadlineMissRate, local.LongThroughputMbps,
		local.NoRouteDrops, local.Blackholed)
	t.Logf("global: %v miss=%.2f long=%.2f noroute=%d blackholed=%d recomputes=%d overrides=%d",
		global.ShortSummary, global.DeadlineMissRate, global.LongThroughputMbps,
		global.NoRouteDrops, global.Blackholed, global.Routing.Recomputes, global.Routing.Overrides)

	if local.NoRouteDrops == 0 {
		t.Fatal("local baseline saw no NoRoute drops; the scenario exercises nothing")
	}
	if global.NoRouteDrops >= local.NoRouteDrops {
		t.Errorf("global repair did not reduce NoRoute drops: %d >= %d",
			global.NoRouteDrops, local.NoRouteDrops)
	}
	if global.Routing.Recomputes == 0 {
		t.Error("global mode did no recomputes despite fault events")
	}
	if global.Routing.Mode != string(RoutingGlobal) || local.Routing.Mode != string(RoutingLocal) {
		t.Errorf("modes recorded as %q/%q", global.Routing.Mode, local.Routing.Mode)
	}
	if local.Routing.Recomputes != 0 {
		t.Errorf("local mode recorded %d recomputes", local.Routing.Recomputes)
	}
	// Both transitions healed: after the repair converges no overrides
	// remain.
	if global.Routing.Overrides != 0 {
		t.Errorf("%d overrides left after the network healed", global.Routing.Overrides)
	}
	// Goodput under failure: rerouting must not be worse than dropping.
	if global.LongThroughputMbps < local.LongThroughputMbps*0.95 {
		t.Errorf("global long goodput %.2f fell below local %.2f",
			global.LongThroughputMbps, local.LongThroughputMbps)
	}
}

// TestGlobalRoutingSweepDeterminism extends the faulted-sweep
// determinism guarantee to the control plane and the new fault classes:
// switch crashes, correlated groups, sampled switch models, all under
// global routing, byte-identical serial vs parallel.
func TestGlobalRoutingSweepDeterminism(t *testing.T) {
	mkConfigs := func() []Config {
		var configs []Config
		for _, mode := range []RoutingMode{RoutingLocal, RoutingGlobal} {
			cfg := tiny(ProtoMMPTCP, 40)
			cfg.MaxSimTime = 15 * Second
			cfg.Faults = FaultsConfig{
				Events:          FailCables(LayerAgg, 2, 150*Millisecond, 900*Millisecond),
				ReconvergeDelay: 20 * Millisecond,
			}
			cfg.Routing.Mode = mode
			configs = append(configs, cfg)

			crash := tiny(ProtoTCP, 40)
			crash.MaxSimTime = 15 * Second
			crash.Faults = FaultsConfig{
				Events:          FailSwitches([]int{16}, 200*Millisecond, 800*Millisecond),
				ReconvergeDelay: 10 * Millisecond,
			}
			crash.Routing.Mode = mode
			configs = append(configs, crash)

			model := tiny(ProtoMMPTCP, 40)
			model.MaxSimTime = 15 * Second
			model.Faults = FaultsConfig{
				Model: FaultModel{
					Groups:   []FaultGroupModel{{Layer: LayerAgg, Size: 2, MTBF: 2 * Second, MTTR: 100 * Millisecond}},
					Switches: []FaultSwitchModel{{Layer: LayerCore, MTBF: 3 * Second, MTTR: 100 * Millisecond}},
					Horizon:  4 * Second,
				},
				ReconvergeDelay: 10 * Millisecond,
			}
			model.Routing.Mode = mode
			configs = append(configs, model)
		}
		return configs
	}
	serial, err := RunSweep(mkConfigs(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(mkConfigs(), SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("config %d: global-routing sweep diverged between 1 and 4 workers", i)
		}
	}
	for i, res := range serial {
		if res.FaultEvents == 0 {
			t.Errorf("config %d resolved no fault events", i)
		}
		if res.Routing.Mode == string(RoutingGlobal) && res.Routing.Recomputes == 0 {
			t.Errorf("config %d: global mode never recomputed", i)
		}
	}
}

// TestSwitchCrashRun drives a whole-switch crash/restart pair through
// the public API and checks the crash accounting survives into Results.
func TestSwitchCrashRun(t *testing.T) {
	cfg := tiny(ProtoMMPTCP, 80)
	cfg.MaxSimTime = 20 * Second
	cfg.Faults = FaultsConfig{
		Events:          FailSwitches([]int{16}, 150*Millisecond, 700*Millisecond),
		ReconvergeDelay: 10 * Millisecond,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents != 2 {
		t.Errorf("fault events = %d, want 2 (crash + restart)", res.FaultEvents)
	}
	if res.SwitchCrashes != 1 {
		t.Errorf("switch crashes = %d, want 1", res.SwitchCrashes)
	}
	if res.Blackholed == 0 {
		t.Error("crashing a core switch blackholed nothing")
	}
	agg := res.Layers[netem.LayerAgg]
	if agg.DownLinks == 0 || agg.DownTime == 0 {
		t.Errorf("agg layer shows no downed links after a core crash: %+v", agg)
	}
}

// TestLivePathCountUnderFailure checks the failure-aware oracle MMPTCP's
// duplicate-ACK threshold derives from: once routing has converged
// around a dead agg-core cable, cross-pod path counts shrink from the
// static FatTree formula to the live DAG count, and recover after
// repair.
func TestLivePathCountUnderFailure(t *testing.T) {
	eng := NewEngine()
	cfg := tiny(ProtoMMPTCP, 1)
	net, err := NewNetwork(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Install(eng, faults.Target{
		Links: net.Links, Switches: net.Switches, SwitchLayers: net.SwitchLayers,
	}, faults.Config{
		Events: faults.FailCables(netem.LayerAgg, 1, 10*sim.Millisecond, 50*sim.Millisecond),
	}, NewRNG(1), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	net.SetDegraded(inj.Degraded)

	// Hosts 0 and 8: different pods on the K=4, 8-hosts-per-edge tree.
	src, dst := 0, net.Hosts[len(net.Hosts)-1].ID()
	healthy := PathCount(net, src, int(dst))
	if healthy != 4 {
		t.Fatalf("healthy cross-pod path count = %d, want 4 (K=4)", healthy)
	}
	var during, after int
	eng.At(20*sim.Millisecond, func() { during = PathCount(net, src, int(dst)) })
	eng.At(60*sim.Millisecond, func() { after = PathCount(net, src, int(dst)) })
	eng.Run()
	if during != 3 {
		t.Errorf("degraded path count = %d, want 3 (one agg-core edge dead)", during)
	}
	if after != healthy {
		t.Errorf("path count %d after repair, want %d", after, healthy)
	}
}

// TestRoutingModeValidation rejects unknown modes up front.
func TestRoutingModeValidation(t *testing.T) {
	cfg := tiny(ProtoTCP, 1)
	cfg.Routing.Mode = "quantum"
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown routing mode")
	}
}
