package mmptcp

import (
	"reflect"
	"testing"

	"repro/internal/routing"
)

// incrementalFaultSuite is the PR-3 fault matrix (cable cuts with
// repair, whole-switch crash/restart, sampled correlated groups plus a
// core switch-crash model) under global routing — every fault class that
// drives the control plane.
func incrementalFaultSuite() []Config {
	var configs []Config

	cables := tiny(ProtoMMPTCP, 40)
	cables.MaxSimTime = 15 * Second
	cables.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 900*Millisecond),
		ReconvergeDelay: 20 * Millisecond,
	}
	cables.Routing.Mode = RoutingGlobal
	configs = append(configs, cables)

	crash := tiny(ProtoTCP, 40)
	crash.MaxSimTime = 15 * Second
	crash.Faults = FaultsConfig{
		Events:          FailSwitches([]int{16}, 200*Millisecond, 800*Millisecond),
		ReconvergeDelay: 10 * Millisecond,
	}
	crash.Routing.Mode = RoutingGlobal
	configs = append(configs, crash)

	model := tiny(ProtoMMPTCP, 40)
	model.MaxSimTime = 15 * Second
	model.Faults = FaultsConfig{
		Model: FaultModel{
			Groups:   []FaultGroupModel{{Layer: LayerAgg, Size: 2, MTBF: 2 * Second, MTTR: 100 * Millisecond}},
			Switches: []FaultSwitchModel{{Layer: LayerCore, MTBF: 3 * Second, MTTR: 100 * Millisecond}},
			Horizon:  4 * Second,
		},
		ReconvergeDelay: 10 * Millisecond,
	}
	model.Routing.Mode = RoutingGlobal
	configs = append(configs, model)

	return configs
}

// TestIncrementalRecomputeResultsByteIdentical is the end-to-end half of
// the incremental-recompute safety argument (the routing package's
// torture test is the table-level half): across the PR-3 fault suite,
// the incremental control plane must produce Results byte-identical to a
// forced full recompute. Only the work counters that measure the
// incremental win itself (DstRecomputed/DstSkipped/BFSRuns) are
// excluded from the comparison — they are what changes, by design.
func TestIncrementalRecomputeResultsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fault suite is slow")
	}
	run := func(full bool) []*Results {
		routing.ForceFullRecompute = full
		defer func() { routing.ForceFullRecompute = false }()
		var out []*Results
		for _, cfg := range incrementalFaultSuite() {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Normalise the counters that measure the incremental win.
			res.Routing.DstRecomputed = 0
			res.Routing.DstSkipped = 0
			res.Routing.BFSRuns = 0
			out = append(out, res)
		}
		return out
	}
	incremental := run(false)
	full := run(true)
	for i := range incremental {
		if !reflect.DeepEqual(incremental[i], full[i]) {
			t.Errorf("config %d: incremental recompute diverged from full recompute", i)
		}
	}
}

// TestChurnRecomputeSavings quantifies the incremental win at unit-test
// scale: under the same churn, the incremental plane must run several
// times fewer BFS passes and destination reconciliations than recomputes
// x destinations (the full-recompute cost).
func TestChurnRecomputeSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run is slow")
	}
	cfg := tiny(ProtoTCP, 30)
	cfg.MaxSimTime = 20 * Second
	cfg.Faults = FaultsConfig{
		Model: FaultModel{
			Layers:  []FaultLayerModel{{Layer: LayerHost, MTBF: 2 * Second, MTTR: 50 * Millisecond}},
			Horizon: 10 * Second,
		},
		ReconvergeDelay: 5 * Millisecond,
	}
	cfg.Routing.Mode = RoutingGlobal
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Routing
	if st.Recomputes < 4 {
		t.Fatalf("churn model produced only %d recomputes; scenario too quiet", st.Recomputes)
	}
	// A full recompute reconciles every host of the K=4 FatTree
	// (K pods x K/2 edges x HostsPerEdge) on every pass.
	fullCost := st.Recomputes * cfg.K * cfg.K / 2 * cfg.HostsPerEdge
	touched := st.DstRecomputed
	if touched+st.DstSkipped != fullCost {
		t.Fatalf("recomputed %d + skipped %d destinations != %d visits; host count wrong", touched, st.DstSkipped, fullCost)
	}
	t.Logf("recomputes=%d dst-recomputed=%d dst-skipped=%d bfs-runs=%d (full cost would be %d)",
		st.Recomputes, touched, st.DstSkipped, st.BFSRuns, fullCost)
	if touched*5 > fullCost {
		t.Errorf("incremental pass reconciled %d destinations; want >=5x fewer than the %d a full recompute would", touched, fullCost)
	}
	if st.DstSkipped == 0 {
		t.Error("no destinations were ever skipped under pure host-layer churn")
	}
}
