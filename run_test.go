package mmptcp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topology"
)

// tiny returns a fast-running config for integration tests.
func tiny(proto Protocol, flows int) Config {
	cfg := SmallConfig(proto, flows)
	cfg.Seed = 1
	return cfg
}

func TestRunTCPSmoke(t *testing.T) {
	res, err := Run(tiny(ProtoTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 100 {
		t.Errorf("spawned = %d", res.Spawned)
	}
	if res.ShortSummary.Count+res.ShortSummary.Incomplete != 100 {
		t.Errorf("short accounting: %+v", res.ShortSummary)
	}
	if res.ShortSummary.Count < 95 {
		t.Errorf("only %d/100 short flows completed", res.ShortSummary.Count)
	}
	if res.ShortSummary.MeanMs <= 0 {
		t.Error("zero mean FCT")
	}
	if len(res.LongFlows) == 0 {
		t.Fatal("no long flows")
	}
	if res.LongThroughputMbps <= 0 {
		t.Error("zero long-flow throughput")
	}
	if res.Events == 0 || res.Elapsed == 0 {
		t.Error("no events processed")
	}
	// Every layer of a FatTree must appear in the report.
	for _, layer := range []netem.Layer{netem.LayerHost, netem.LayerEdge, netem.LayerAgg} {
		if _, ok := res.Layers[layer]; !ok {
			t.Errorf("layer %v missing from report", layer)
		}
	}
}

func TestRunRecordsInSpawnOrder(t *testing.T) {
	res, err := Run(tiny(ProtoMMPTCP, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShortFlows) != 60 {
		t.Fatalf("records = %d", len(res.ShortFlows))
	}
	var last sim.Time
	for i, r := range res.ShortFlows {
		if r.Start < last {
			t.Fatalf("record %d out of spawn order", i)
		}
		last = r.Start
		if r.Class != metrics.ShortFlow {
			t.Fatalf("record %d has class %v", i, r.Class)
		}
		if r.Size != 70_000 {
			t.Fatalf("record %d size %d", i, r.Size)
		}
		if r.Completed && r.End < r.Start {
			t.Fatalf("record %d negative FCT", i)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(tiny(ProtoMPTCP, 50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny(ProtoMPTCP, 50))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Elapsed != b.Elapsed {
		t.Fatalf("same seed diverged: events %d vs %d, elapsed %v vs %v",
			a.Events, b.Events, a.Elapsed, b.Elapsed)
	}
	for i := range a.ShortFlows {
		if a.ShortFlows[i].End != b.ShortFlows[i].End {
			t.Fatalf("flow %d FCT differs between identical runs", i)
		}
	}
	c, err := Run(Config{
		Topology: TopoFatTree, K: 4, HostsPerEdge: 8,
		Protocol: ProtoMPTCP, ShortFlows: 50, ArrivalRate: 2.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Events == a.Events {
		t.Error("different seeds produced identical event counts (suspicious)")
	}
}

// TestHeadlineShape asserts the paper's §3 comparison at reduced scale:
// MMPTCP completes short flows with a much smaller standard deviation
// and far fewer RTO-affected connections than MPTCP with 8 subflows,
// without sacrificing long-flow throughput.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline comparison is slow")
	}
	mp, err := Run(tiny(ProtoMPTCP, 300))
	if err != nil {
		t.Fatal(err)
	}
	mm, err := Run(tiny(ProtoMMPTCP, 300))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MPTCP : %v", mp.ShortSummary)
	t.Logf("MMPTCP: %v", mm.ShortSummary)

	if mm.ShortSummary.StdMs >= mp.ShortSummary.StdMs {
		t.Errorf("MMPTCP std %.1f >= MPTCP std %.1f; paper expects a collapse",
			mm.ShortSummary.StdMs, mp.ShortSummary.StdMs)
	}
	if mm.ShortSummary.WithRTO*2 >= mp.ShortSummary.WithRTO {
		t.Errorf("MMPTCP RTO flows %d vs MPTCP %d; want far fewer",
			mm.ShortSummary.WithRTO, mp.ShortSummary.WithRTO)
	}
	if mm.ShortSummary.MeanMs >= mp.ShortSummary.MeanMs {
		t.Errorf("MMPTCP mean %.1f >= MPTCP mean %.1f; paper expects an improvement",
			mm.ShortSummary.MeanMs, mp.ShortSummary.MeanMs)
	}
	// Long-flow throughput within 15% of each other (§3: "the same").
	ratio := mm.LongThroughputMbps / mp.LongThroughputMbps
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("long-flow throughput ratio MMPTCP/MPTCP = %.2f; want about 1", ratio)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{}, // no protocol
		{Protocol: "bogus", ShortFlows: 1, ArrivalRate: 1},
		{Protocol: ProtoTCP},                // no flows
		{Protocol: ProtoTCP, ShortFlows: 5}, // no rate
		{Protocol: ProtoTCP, ShortFlows: 5, ArrivalRate: 1, LongFraction: 1.5},
		{Protocol: ProtoTCP, ShortFlows: 5, ArrivalRate: 1, Topology: "ring"},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: no error for invalid config", i)
		}
	}
}

func TestRunNoLongFlows(t *testing.T) {
	cfg := tiny(ProtoTCP, 50)
	cfg.LongFraction = -1 // disable background traffic
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LongFlows) != 0 {
		t.Fatalf("long flows = %d, want 0", len(res.LongFlows))
	}
	// Without background traffic, short flows finish fast and cleanly.
	if res.ShortSummary.Count != 50 {
		t.Errorf("completed = %d", res.ShortSummary.Count)
	}
	if res.ShortSummary.WithRTO > 2 {
		t.Errorf("unloaded network produced %d RTO flows", res.ShortSummary.WithRTO)
	}
}

func TestRunMMPTCPPhaseSwitchesOnLongFlows(t *testing.T) {
	res, err := Run(tiny(ProtoMMPTCP, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Every unbounded long flow must have switched to the MPTCP phase.
	if res.PhaseSwitches != len(res.LongFlows) {
		t.Errorf("phase switches = %d, long flows = %d", res.PhaseSwitches, len(res.LongFlows))
	}
}

func TestRunHotspot(t *testing.T) {
	cfg := tiny(ProtoMMPTCP, 80)
	cfg.HotspotFraction = 0.5
	cfg.HotspotHost = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, r := range res.ShortFlows {
		if r.Dst == 3 {
			hot++
		}
	}
	if hot < len(res.ShortFlows)/4 {
		t.Errorf("only %d/%d flows hit the hotspot", hot, len(res.ShortFlows))
	}
}

func TestRunDumbbellTopology(t *testing.T) {
	cfg := Config{
		Topology:     TopoDumbbell,
		K:            2,
		HostsPerEdge: 4, // 4 hosts per side
		Protocol:     ProtoTCP,
		ShortFlows:   30,
		ArrivalRate:  5,
		Seed:         3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortSummary.Count == 0 {
		t.Error("no completions on dumbbell")
	}
}

func TestRunMultiHomedTopology(t *testing.T) {
	cfg := Config{
		Topology:     TopoMultiHomed,
		K:            4,
		HostsPerEdge: 2,
		Protocol:     ProtoMMPTCP,
		ShortFlows:   30,
		ArrivalRate:  5,
		Seed:         4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortSummary.Count == 0 {
		t.Error("no completions on multi-homed FatTree")
	}
}

func TestDialSingleFlow(t *testing.T) {
	eng := sim.NewEngine()
	ft := topology.NewFatTree(eng, topology.FatTreeConfig{K: 4, Link: topology.DefaultLinkConfig()})
	cfg := Config{Protocol: ProtoMMPTCP}
	conn, err := Dial(eng, &ft.Network, cfg, DialConfig{
		FlowID: 1, Src: 0, Dst: 15, Size: 70_000, RNG: sim.NewRNG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	mc, ok := MMPTCPConn(conn)
	if !ok {
		t.Fatal("MMPTCPConn failed on an MMPTCP connection")
	}
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("single dialed flow incomplete")
	}
	if mc.Switched() {
		t.Error("70KB flow switched phases")
	}
	if _, ok := MMPTCPConn(&tcpConn{}); ok {
		t.Error("MMPTCPConn succeeded on a TCP connection")
	}
}

func TestRunDCTCPBaseline(t *testing.T) {
	res, err := Run(tiny(ProtoDCTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortSummary.Count < 95 {
		t.Fatalf("only %d/100 DCTCP short flows completed", res.ShortSummary.Count)
	}
	if res.LongThroughputMbps <= 0 {
		t.Error("no long-flow throughput")
	}
	// ECN keeps the fabric's time-averaged queues near the marking
	// threshold, well below what drop-tail Reno sustains.
	tcpRes, err := Run(tiny(ProtoTCP, 100))
	if err != nil {
		t.Fatal(err)
	}
	dq := res.Layers[netem.LayerEdge].AvgQueue
	tq := tcpRes.Layers[netem.LayerEdge].AvgQueue
	if dq >= tq {
		t.Errorf("DCTCP edge avg queue %.2f >= TCP %.2f; ECN not effective", dq, tq)
	}
}

func TestRunVL2Topology(t *testing.T) {
	cfg := Config{
		Topology:     TopoVL2,
		K:            4, // DA = DI = 4, 8 ToRs
		HostsPerEdge: 4, // hosts per ToR -> 32 hosts
		Protocol:     ProtoMMPTCP,
		ShortFlows:   40,
		ArrivalRate:  5,
		Seed:         6,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortSummary.Count < 38 {
		t.Errorf("completed = %d/40 on VL2", res.ShortSummary.Count)
	}
}

func TestRunAdaptiveThresholdMode(t *testing.T) {
	cfg := tiny(ProtoMMPTCP, 80)
	cfg.PSThreshold = core.ThresholdAdaptive
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortSummary.Count < 75 {
		t.Errorf("completed = %d/80 with adaptive threshold", res.ShortSummary.Count)
	}
}

func TestRunDeadlineMissRate(t *testing.T) {
	res, err := Run(tiny(ProtoMPTCP, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMissRate <= 0 || res.DeadlineMissRate >= 1 {
		t.Errorf("deadline miss rate = %v, want in (0,1) under load", res.DeadlineMissRate)
	}
	// Unloaded network: nothing misses a 200ms deadline.
	cfg := tiny(ProtoTCP, 50)
	cfg.LongFraction = -1
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.DeadlineMissRate != 0 {
		t.Errorf("unloaded miss rate = %v, want 0", clean.DeadlineMissRate)
	}
}

func TestRunWithSACK(t *testing.T) {
	cfg := tiny(ProtoMPTCP, 150)
	cfg.SACK = true
	sack, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(tiny(ProtoMPTCP, 150))
	if err != nil {
		t.Fatal(err)
	}
	if sack.ShortSummary.Count < 145 {
		t.Fatalf("only %d/150 completed with SACK", sack.ShortSummary.Count)
	}
	t.Logf("MPTCP  newreno: %v", plain.ShortSummary)
	t.Logf("MPTCP  sack   : %v", sack.ShortSummary)
	// The paper's diagnosis must survive SACK: tiny subflow windows
	// cannot generate feedback at all, so RTO-bound flows remain.
	if sack.ShortSummary.WithRTO == 0 {
		t.Error("SACK eliminated all RTOs; the tiny-window failure mode should persist")
	}
}
