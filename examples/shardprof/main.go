// Shardprof profiles the sharded engine's synchronization overhead —
// the observability walkthrough for the adaptive-lookahead work. It
// runs the quiet-boundary scenario (mmptcp.ShardQuietBenchConfig:
// rack-local short flows, sparse arrivals, no long-flow background — a
// workload whose shard boundaries sit idle between bursts) once under
// conservative lookahead and once under adaptive, writing a CPU
// profile of each run, and prints the coordinator's synchronization
// counters side by side.
//
// The conservative profile is what motivated adaptive lookahead: with
// the window pinned to the minimum boundary-cable propagation delay,
// most barriers flush empty outboxes, and the profile's hot symbols
// are the coordinator loop and the worker channel handshake —
// shard.(*Fabric).runWindow, runtime.chansend/chanrecv/park — rather
// than the simulation itself (sim.(*Engine).RunUntil and the transport
// callbacks under it). Adaptive widens the windows to the shards' EOT
// promises and elides idle shards from the barrier entirely, so the
// same workload commits a fraction of the barriers and the profile's
// weight shifts back into RunUntil. Compare:
//
//	go run ./examples/shardprof [shards]
//	go tool pprof -top shard-conservative.pprof | head -20
//	go tool pprof -top shard-adaptive.pprof | head -20
//
// or diff the two interactively with
// `go tool pprof -base shard-conservative.pprof shard-adaptive.pprof`.
// The printed table carries the virtual-time facts (barriers, windows,
// elided wakeups, mean window width — deterministic per seed and shard
// count); the wall-clock column is hardware-dependent and only the
// ratio between the two modes means anything. On a box with fewer
// cores than shards, expect adaptive to win on barrier count but not
// necessarily on wall time — there is nothing to parallelise across.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"time"
)

import (
	mmptcp "repro"
	"repro/internal/prof"
)

func main() {
	shards := 2
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 2 {
			log.Fatalf("bad shard count %q (need an integer >= 2)", os.Args[1])
		}
		shards = n
	}

	fmt.Printf("quiet-boundary scenario (rack-local shorts, sparse arrivals), %d shards, %d cores\n\n",
		shards, runtime.GOMAXPROCS(0))

	type row struct {
		mode mmptcp.LookaheadMode
		out  string
	}
	rows := []row{
		{mmptcp.LookaheadConservative, "shard-conservative.pprof"},
		{mmptcp.LookaheadAdaptive, "shard-adaptive.pprof"},
	}

	fmt.Printf("%-14s %9s %10s %10s %8s %8s %12s %10s\n",
		"mode", "wall_ms", "barriers", "windows", "elided", "widened", "window_us", "Mev/s")
	var consBarriers uint64
	var consWall time.Duration
	for _, r := range rows {
		cfg := mmptcp.ShardQuietBenchConfig(shards, false)
		cfg.Lookahead = r.mode

		stop, err := prof.Start(r.out)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := mmptcp.Run(cfg)
		wall := time.Since(t0)
		stop()
		if err != nil {
			log.Fatal(err)
		}

		s := res.Shard
		fmt.Printf("%-14s %9.0f %10d %10d %8d %8d %12.1f %10.2f\n",
			s.Mode, float64(wall.Milliseconds()), s.Barriers, s.Windows,
			s.ElidedWakeups, s.WidenedWindows, s.MeanWindowNs/1e3,
			float64(res.Events)/wall.Seconds()/1e6)
		if r.mode == mmptcp.LookaheadConservative {
			consBarriers, consWall = s.Barriers, wall
		} else {
			fmt.Printf("\nbarrier_ratio %.2fx (virtual-time fact), wall %.2fx\n",
				float64(consBarriers)/float64(s.Barriers),
				float64(consWall)/float64(wall))
		}
	}

	fmt.Printf("\nprofiles written: %s, %s\n", rows[0].out, rows[1].out)
	fmt.Println("inspect with:  go tool pprof -top shard-conservative.pprof")
	fmt.Println("diff with:     go tool pprof -base shard-conservative.pprof shard-adaptive.pprof")
}
