// Transient demonstrates staged per-switch convergence: the same fault
// — two agg-core cables cut at 200ms, repaired at 900ms, 10ms routing
// reconvergence — is replayed with the control plane's recomputed
// tables reaching the switches two different ways.
//
// Under atomic convergence (the default) every switch's FIB flips at
// recompute time: the fabric is never internally inconsistent, and the
// only damage is the failure's own blackhole window. Under staggered
// convergence each switch flips at its own time — the further it sits
// from the failed cables, the later its update lands (here 10ms per
// hop) — the way real control planes converge outward from a failure.
// While flips are outstanding the switches disagree: a stale
// aggregation switch still hashes onto a crippled core whose fresh
// table points straight back down, and the packet ping-pongs until the
// hop backstop kills it (loop_drops); an already-flipped switch with no
// way forward drops traffic that stale neighbours keep sending it
// (tn_noroute). Both are accounted separately from steady-state noise,
// along with how many lookups were served by stale FIB epochs and how
// long the fabric spent disagreeing.
//
// The run compares TCP and MMPTCP over the identical workload and
// fault schedule, so every difference in the table is the convergence
// model: packet scatter rides out the transient window the same way it
// rides out the failure itself.
//
//	go run ./examples/transient [flows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	flows := 300
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad flow count %q", os.Args[1])
		}
		flows = n
	}

	faultPlan := mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*mmptcp.Millisecond, 900*mmptcp.Millisecond),
		ReconvergeDelay: 10 * mmptcp.Millisecond,
	}

	fmt.Printf("%d short flows on a 64-host 4:1 FatTree; 2 agg-core cables dead 200..900ms,\n", flows)
	fmt.Println("10ms reconvergence, global repair; atomic vs staggered (10ms/hop) table flips")
	fmt.Println()

	type point struct {
		proto mmptcp.Protocol
		conv  mmptcp.ConvergenceMode
	}
	var points []point
	var configs []mmptcp.Config
	for _, proto := range []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMMPTCP} {
		for _, conv := range []mmptcp.ConvergenceMode{mmptcp.ConvergeAtomic, mmptcp.ConvergeStaggered} {
			cfg := mmptcp.SmallConfig(proto, flows)
			cfg.Seed = 7
			cfg.MaxSimTime = 60 * mmptcp.Second
			cfg.Faults = faultPlan
			cfg.Routing = mmptcp.RoutingConfig{Mode: mmptcp.RoutingGlobal, Convergence: conv}
			if conv == mmptcp.ConvergeStaggered {
				cfg.Routing.PerHopDelay = 10 * mmptcp.Millisecond
			}
			points = append(points, point{proto, conv})
			configs = append(configs, cfg)
		}
	}
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("proto    converge   mean_ms  p99_ms   miss_pct  loop_drops  tn_noroute  stale_lookups  window_ms")
	for i, res := range results {
		p := points[i]
		s := res.ShortSummary
		fmt.Printf("%-7s  %-9s  %7.1f  %7.1f  %8.1f  %10d  %10d  %13d  %9.1f\n",
			p.proto, p.conv, s.MeanMs, s.P99Ms, res.DeadlineMissRate*100,
			res.LoopDrops, res.Routing.TransientNoRoute, res.Routing.StaleLookups,
			res.Routing.TransientTime.Milliseconds())
	}
	fmt.Println("\nAtomic rows show the failure's own damage; the staggered rows add the window")
	fmt.Println("where the fabric disagrees with itself — stale lookups, micro-loop deaths and")
	fmt.Println("disagreement blackholes — which is the regime packet scatter is built to ride.")
}
