// Shortlong runs the paper's headline workload — the battle between
// short and long flows — at laptop scale, for all three transports.
//
// Topology: 4:1 over-subscribed FatTree (K=4, 64 hosts). One third of
// the hosts run long background flows to their permutation partners; the
// rest send 70 KB short flows with Poisson arrivals. The output is the
// §3 comparison: MPTCP wins long flows but mauls short ones (RTO tail);
// MMPTCP keeps the long-flow throughput while collapsing the short-flow
// tail — the battle that both can win.
//
//	go run ./examples/shortlong [flows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	flows := 400
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad flow count %q", os.Args[1])
		}
		flows = n
	}

	fmt.Printf("%d short flows (70KB, Poisson) vs 21 long flows on a 64-host 4:1 FatTree\n\n", flows)
	// The three transports are independent experiments: fan them across
	// the CPUs with RunSweep instead of running them back to back. The
	// table is identical either way — each run is sealed by its seed.
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	configs := make([]mmptcp.Config, len(protos))
	for i, proto := range protos {
		configs[i] = mmptcp.SmallConfig(proto, flows)
		configs[i].Seed = 7
	}
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proto    short_mean  short_std  short_p99  rto_flows  long_tput")
	for i, res := range results {
		s := res.ShortSummary
		fmt.Printf("%-7s  %7.1fms  %7.1fms  %7.1fms  %9d  %6.1f Mb/s\n",
			protos[i], s.MeanMs, s.StdMs, s.P99Ms, s.WithRTO, res.LongThroughputMbps)
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - tcp: decent short flows, poor long-flow throughput (ECMP collisions)")
	fmt.Println("  - mptcp: best long flows, but tiny subflow windows turn losses into RTOs")
	fmt.Println("  - mmptcp: long-flow throughput of MPTCP, short-flow tail collapsed")
}
