// Coexistence examines how MMPTCP shares a bottleneck with legacy TCP
// and MPTCP (§3: "In-depth investigation of how MMPTCP shares network
// resources with TCP and MPTCP is part of our current work. Early
// results suggest that it could co-exist in harmony with them.")
//
// Three long flows — one per protocol — share a single 100 Mb/s
// dumbbell bottleneck for 20 simulated seconds. Harmony means no
// protocol starves: MPTCP's LIA coupling (and MMPTCP's, once switched)
// caps multipath aggressiveness at single-path TCP levels on a shared
// bottleneck.
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"log"

	mmptcp "repro"
)

func main() {
	eng := mmptcp.NewEngine()
	// A dumbbell whose shared 100 Mb/s link is the only contention
	// point: access links are 10x faster, so every flow's losses happen
	// at the shared switch port (100-packet buffer — deep enough that
	// single-window flows are not locked out by pure drop-tail
	// synchronisation against 8 subflows).
	cfg := mmptcp.Config{
		Protocol:      mmptcp.ProtoTCP, // overridden per connection below
		Topology:      mmptcp.TopoDumbbell,
		K:             2,
		HostsPerEdge:  3, // 3 hosts per side
		LinkRateBps:   1_000_000_000,
		BottleneckBps: 100_000_000,
		QueueLimit:    100,
	}
	net, err := mmptcp.NewNetwork(eng, cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := mmptcp.NewRNG(11)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	half := len(net.Hosts) / 2
	conns := make([]mmptcp.Conn, len(protos))
	for i, proto := range protos {
		c := cfg
		c.Protocol = proto
		conn, err := mmptcp.Dial(eng, net, c, mmptcp.DialConfig{
			FlowID: uint64(i + 1),
			Src:    i,
			Dst:    half + i,
			Size:   -1, // unbounded long flows
			RNG:    rng.Split(),
		})
		if err != nil {
			log.Fatal(err)
		}
		conns[i] = conn
		// Stagger starts to break drop-tail synchronisation.
		start := conn.Start
		eng.At(mmptcp.SimTime(i)*500*mmptcp.Millisecond, start)
	}

	const horizon = 20 * mmptcp.Second
	eng.RunUntil(horizon)

	fmt.Println("20s sharing one 100 Mb/s bottleneck:")
	fmt.Println("proto    goodput      share")
	var total float64
	goodput := make([]float64, len(conns))
	for i, c := range conns {
		goodput[i] = float64(c.Receiver().Delivered()) * 8 / horizon.Seconds() / 1e6
		total += goodput[i]
	}
	for i, proto := range protos {
		fmt.Printf("%-7s  %6.2f Mb/s  %5.1f%%\n", proto, goodput[i], goodput[i]/total*100)
	}
	fmt.Printf("\naggregate %.1f Mb/s; harmony = no protocol starved or dominated\n", total)
}
