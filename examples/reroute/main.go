// Reroute demonstrates the routing control plane: the same fault — two
// agg-core cables cut at 200ms and left dead until 2.5s — is replayed
// under the two repair models. With local repair (the default) each
// switch merely stops using its own dead links, so aggregation switches
// in other pods keep ECMP-hashing onto cores that lost their only
// downlink to the wounded pod; those packets die as NoRoute drops for
// the whole outage. With global repair the control plane recomputes
// reachability 10ms after each link transition and overrides exactly
// the equal-cost entries whose reachability changed, so traffic steers
// around the cripples and the NoRoute column collapses to zero.
//
// The comparison runs TCP and MMPTCP over the identical workload and
// fault schedule (fault randomness lives on its own RNG stream), so
// every difference in the table is the repair model.
//
//	go run ./examples/reroute [flows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	flows := 300
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad flow count %q", os.Args[1])
		}
		flows = n
	}

	faultPlan := mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*mmptcp.Millisecond, 2500*mmptcp.Millisecond),
		ReconvergeDelay: 10 * mmptcp.Millisecond,
	}

	fmt.Printf("%d short flows on a 64-host 4:1 FatTree; 2 agg-core cables dead 200ms..2.5s, 10ms reconvergence\n\n", flows)
	type point struct {
		proto mmptcp.Protocol
		mode  mmptcp.RoutingMode
	}
	var points []point
	var configs []mmptcp.Config
	for _, proto := range []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMMPTCP} {
		for _, mode := range []mmptcp.RoutingMode{mmptcp.RoutingLocal, mmptcp.RoutingGlobal} {
			cfg := mmptcp.SmallConfig(proto, flows)
			cfg.Seed = 7
			cfg.MaxSimTime = 60 * mmptcp.Second
			cfg.Faults = faultPlan
			cfg.Routing.Mode = mode
			points = append(points, point{proto, mode})
			configs = append(configs, cfg)
		}
	}
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("proto    repair  mean_ms  p99_ms   miss_pct  long_tput_mbps  noroute  recomputes")
	for i, res := range results {
		p := points[i]
		s := res.ShortSummary
		fmt.Printf("%-7s  %-6s  %7.1f  %7.1f  %8.1f  %14.2f  %7d  %10d\n",
			p.proto, p.mode, s.MeanMs, s.P99Ms, res.DeadlineMissRate*100,
			res.LongThroughputMbps, res.NoRouteDrops, res.Routing.Recomputes)
	}
	fmt.Println("\nGlobal repair turns stranded traffic (noroute) into rerouted traffic: the")
	fmt.Println("short-flow tail and deadline misses collapse toward the healthy baseline,")
	fmt.Println("while the identical fault schedule keeps blackhole losses the same.")
}
