// Anatomy demonstrates the flight-recorder workflow: a ring-mode trace
// stays armed across a pooled sweep at O(1) memory, and only when a run
// trips an anomaly predicate does the recorder's bounded tail get
// exported for post-mortem. This is how you debug the one seed in fifty
// that misbehaves without paying full-trace cost on the forty-nine that
// don't.
//
// The sweep replays a faulted scenario — two agg-core cables dead for
// half a second while short TCP flows arrive — across seeds, reusing a
// single RunInstance (engine, topology, pools and the recorder itself
// are recycled by Reset). The anomaly predicate here is "some flow
// stalled into RTO"; the first offending seed's trace is written as
// Chrome trace-event JSON, loadable at https://ui.perfetto.dev, where
// flows appear as async spans and fault/routing events as instants.
//
// For a full-fidelity dissection of a single victim flow, see
// `go run ./cmd/figures -fig anatomy` which uses full-mode tracing.
//
//	go run ./examples/anatomy [seeds]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	seeds := 8
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad seed count %q", os.Args[1])
		}
		seeds = n
	}

	cfg := mmptcp.SmallConfig(mmptcp.ProtoTCP, 200)
	cfg.MaxSimTime = 30 * mmptcp.Second
	cfg.Faults = mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*mmptcp.Millisecond, 700*mmptcp.Millisecond),
		ReconvergeDelay: 20 * mmptcp.Millisecond,
	}
	// Ring mode: the recorder keeps only the most recent 64k events, so
	// arming it across the whole sweep costs a fixed buffer — no
	// per-run growth, no allocation once warm.
	cfg.Trace = mmptcp.TraceConfig{Mode: mmptcp.TraceRing}

	inst, err := mmptcp.NewRunInstance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying the faulted scenario over %d seeds, flight recorder armed\n\n", seeds)
	fmt.Println("seed  short_mean  short_max  rto_flows  blackholed  verdict")
	dumped := false
	for seed := 1; seed <= seeds; seed++ {
		run := cfg
		run.Seed = uint64(seed)
		if err := inst.Reset(run); err != nil {
			log.Fatal(err)
		}
		res, err := inst.Run(context.Background(), run)
		if err != nil {
			log.Fatal(err)
		}
		s := res.ShortSummary
		verdict := "clean"
		if s.WithRTO > 0 {
			verdict = "ANOMALY: flows stalled into RTO"
			if !dumped {
				rec := inst.Recorder()
				path := fmt.Sprintf("anatomy-seed%d.json", seed)
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := rec.WriteChromeTrace(f); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				verdict += fmt.Sprintf(" -> %s (last %d of %d events)", path, rec.Len(), rec.Total())
				dumped = true
			}
		}
		fmt.Printf("%4d  %8.1fms  %7.1fms  %9d  %10d  %s\n",
			seed, s.MeanMs, s.MaxMs, s.WithRTO, res.Blackholed, verdict)
	}
	if !dumped {
		fmt.Println("\nno seed tripped the predicate; nothing recorded to disk")
	} else {
		fmt.Println("\nload the dump at https://ui.perfetto.dev: flows are async spans,")
		fmt.Println("faults and FIB flips are instants on the fabric/control tracks")
	}
}
