// Quickstart: dial a single MMPTCP connection across a FatTree and watch
// its two phases.
//
// A 300 KB transfer starts in the Packet Scatter phase (source port
// randomised per packet, one congestion window, raised duplicate-ACK
// threshold derived from the 4 equal-cost paths between the hosts). At
// 100 KB the data-volume strategy fires: the connection opens 8 MPTCP
// subflows for the remaining bytes while the scatter flow drains.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mmptcp "repro"
)

func main() {
	eng := mmptcp.NewEngine()
	cfg := mmptcp.Config{
		Protocol: mmptcp.ProtoMMPTCP,
		Topology: mmptcp.TopoFatTree,
		K:        4, // 16 hosts, 4 pods
	}
	net, err := mmptcp.NewNetwork(eng, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One 300 KB flow between hosts in different pods.
	conn, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
		FlowID: 1,
		Src:    0,
		Dst:    len(net.Hosts) - 1, // a different pod
		Size:   300_000,
		RNG:    mmptcp.NewRNG(42),
	})
	if err != nil {
		log.Fatal(err)
	}

	mc, _ := mmptcp.MMPTCPConn(conn)
	mc.OnSwitch = func() {
		fmt.Printf("t=%v  phase switch: PS carried %d bytes, opening %d MPTCP subflows\n",
			eng.Now(), mc.PacketScatter().Granted(), len(mc.MPTCP().Subflows()))
	}
	conn.Receiver().OnComplete = func() {
		fmt.Printf("t=%v  transfer complete (%d bytes delivered)\n",
			eng.Now(), conn.Receiver().Delivered())
	}

	dst := len(net.Hosts) - 1
	fmt.Printf("dialing 300KB MMPTCP flow host 0 -> host %d (%d equal-cost paths, PS dup-ACK threshold %d)\n",
		dst, mmptcp.PathCount(net, 0, dst), mc.PacketScatter().DupThresh())
	conn.Start()
	eng.Run()

	st := conn.Stats()
	fmt.Printf("\nsender stats: %d segments (%d retransmitted), %d fast retransmits, %d timeouts\n",
		st.SegmentsSent, st.Retransmissions, st.FastRetransmits, st.Timeouts)
	fmt.Printf("switched at %v via the %v strategy\n", mc.SwitchedAt(), mmptcp.ProtoMMPTCP)
}
