// Incast demonstrates MMPTCP's burst tolerance (§1 objective 3:
// "tolerance to sudden and high bursts of traffic").
//
// Many senders fire 70 KB flows at one receiver simultaneously — the
// classic partition/aggregate incast pattern. Every flow's packets
// converge on the receiver's single access link. MPTCP's 8 subflows
// per sender multiply the number of tiny windows colliding there, so
// most connections lose their whole window and stall on RTOs. MMPTCP's
// packet-scatter phase keeps one window per sender and spreads packets
// over the fabric's paths, so the burst drains with far fewer timeouts.
//
//	go run ./examples/incast [senders]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	mmptcp "repro"
)

func main() {
	senders := 24
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad sender count %q", os.Args[1])
		}
		senders = n
	}

	fmt.Printf("incast: %d senders -> host 0, 70KB each, fired simultaneously\n\n", senders)
	fmt.Println("proto    done   mean_fct   max_fct    timeouts")
	for _, proto := range []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP} {
		runIncast(proto, senders)
	}
}

func runIncast(proto mmptcp.Protocol, senders int) {
	eng := mmptcp.NewEngine()
	cfg := mmptcp.Config{
		Protocol: proto,
		Topology: mmptcp.TopoFatTree,
		K:        4,
		// 8 hosts per edge, 64 hosts: plenty of distinct senders.
		HostsPerEdge: 8,
	}
	net, err := mmptcp.NewNetwork(eng, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := mmptcp.NewRNG(3)

	type result struct {
		fct      mmptcp.SimTime
		timeouts int64
	}
	var results []result
	var conns []mmptcp.Conn

	// All flows start at t=10ms from hosts 1..senders toward host 0.
	for i := 1; i <= senders; i++ {
		conn, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
			FlowID: uint64(i), Src: i, Dst: 0, Size: 70_000, RNG: rng.Split(),
		})
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, conn)
		start := 10 * mmptcp.Millisecond
		conn.Receiver().OnComplete = func() {
			results = append(results, result{eng.Now() - start, conn.Stats().Timeouts})
		}
		eng.At(start, conn.Start)
	}
	eng.RunUntil(30 * mmptcp.Second)

	var fcts []float64
	var timeouts int64
	for _, c := range conns {
		timeouts += c.Stats().Timeouts
	}
	for _, r := range results {
		fcts = append(fcts, r.fct.Milliseconds())
	}
	sort.Float64s(fcts)
	mean := 0.0
	for _, f := range fcts {
		mean += f
	}
	if len(fcts) > 0 {
		mean /= float64(len(fcts))
	}
	maxFCT := 0.0
	if len(fcts) > 0 {
		maxFCT = fcts[len(fcts)-1]
	}
	fmt.Printf("%-7s  %2d/%-2d  %7.1fms  %7.1fms  %8d\n",
		proto, len(results), senders, mean, maxFCT, timeouts)
}
