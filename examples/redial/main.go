// Redial demonstrates transport recovery closing the loop the routing
// layer cannot: two agg-core cables die at 150ms and stay dead until
// 2.5s under local repair, which leaves every core that lost its only
// downlink into the wounded pod unreachable — upstream ECMP keeps
// hashing onto it regardless. A multipath subflow pinned through such a
// core sits in RTO exponential backoff for the whole outage, holding
// the data-level bytes it already pulled, and the flow completes only
// after the repair.
//
// With Config.Transport.DeadRTOs armed, that subflow is declared dead
// after the configured streak of consecutive timeouts: the connection
// tears it down, reclaims its unacknowledged allocation, and re-dials a
// replacement on a fresh random source port that re-hashes onto a
// (hopefully) live path. The table compares the identical workload and
// fault schedule with recovery off and on — the worst-case FCT and
// deadline-miss columns are the story, and the redial columns show the
// machinery's actual work. Single-path TCP has nothing to re-dial and
// rides along as the reference.
//
//	go run ./examples/redial [flows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	flows := 300
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad flow count %q", os.Args[1])
		}
		flows = n
	}

	// Local repair on purpose: it cannot heal the cores stranded by the
	// cable cut, so dead paths persist for the whole outage — the
	// scenario re-dialing exists for. (Global repair steers around them
	// in one reconvergence delay; re-dialing then has nothing to do.)
	faultPlan := mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 150*mmptcp.Millisecond, 2500*mmptcp.Millisecond),
		ReconvergeDelay: 25 * mmptcp.Millisecond,
	}
	recovery := mmptcp.TransportConfig{DeadRTOs: 2, RedialBudget: 8}

	fmt.Printf("%d short flows on a 64-host 4:1 FatTree; 2 agg-core cables dead 150ms..2.5s, local repair\n", flows)
	fmt.Printf("recovery: %d consecutive RTOs declare a subflow dead, budget %d re-dials per connection\n\n",
		recovery.DeadRTOs, recovery.RedialBudget)

	type point struct {
		proto    mmptcp.Protocol
		recovery bool
	}
	var points []point
	var configs []mmptcp.Config
	for _, proto := range []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP} {
		for _, rec := range []bool{false, true} {
			if rec && proto == mmptcp.ProtoTCP {
				continue // nothing to re-dial on a single path
			}
			cfg := mmptcp.SmallConfig(proto, flows)
			cfg.Seed = 7
			cfg.MaxSimTime = 60 * mmptcp.Second
			cfg.Faults = faultPlan
			if rec {
				cfg.Transport = recovery
			}
			points = append(points, point{proto, rec})
			configs = append(configs, cfg)
		}
	}
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proto    recovery  short_mean  short_max  miss_pct  long_tput  redials  recovered")
	for i, res := range results {
		p := points[i]
		state := "off"
		if p.recovery {
			state = "on"
		}
		s := res.ShortSummary
		fmt.Printf("%-7s  %-8s  %8.1fms  %7.1fms  %7.1f%%  %5.1f Mb/s  %7d  %9d\n",
			p.proto, state, s.MeanMs, s.MaxMs, res.DeadlineMissRate*100,
			res.LongThroughputMbps, res.Redials, res.RedialRecovered)
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - off: a subflow pinned through an unreachable core waits out the outage in RTO")
	fmt.Println("    backoff; the flow finishes only after the 2.5s repair (the short_max column)")
	fmt.Println("  - on: the persistent-RTO streak tears the dead subflow down, its unacked bytes are")
	fmt.Println("    reclaimed, and the replacement's fresh source port re-hashes onto a live core;")
	fmt.Println("    recovered counts replacements that went on to acknowledge data")
	fmt.Println("  - determinism: replacement ports come from each flow's own RNG stream, so the")
	fmt.Println("    table is byte-identical at any -workers count and per seed")
}
