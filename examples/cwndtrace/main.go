// Cwndtrace plots (as CSV on stdout) the congestion-window evolution of
// one MMPTCP connection across its two phases: the single packet-scatter
// window ramps up, freezes at the 100 KB data-volume switch and drains,
// while eight MPTCP subflow windows take over. Feed the output to any
// plotting tool:
//
//	go run ./examples/cwndtrace > trace.csv
//	# columns: time_ms, ps_cwnd_pkts, mptcp_cwnd_pkts, ps_srtt_ms
package main

import (
	"fmt"
	"log"
	"os"

	mmptcp "repro"
)

func main() {
	eng := mmptcp.NewEngine()
	cfg := mmptcp.Config{
		Protocol: mmptcp.ProtoMMPTCP,
		Topology: mmptcp.TopoFatTree,
		K:        4,
	}
	net, err := mmptcp.NewNetwork(eng, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := mmptcp.NewRNG(9)

	// A background long flow congests part of the fabric so the traced
	// flow shows real dynamics.
	bg, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
		FlowID: 99, Src: 1, Dst: len(net.Hosts) - 2, Size: -1, RNG: rng.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	bg.Start()

	conn, err := mmptcp.Dial(eng, net, cfg, mmptcp.DialConfig{
		FlowID: 1, Src: 0, Dst: len(net.Hosts) - 1, Size: 600_000, RNG: rng.Split(),
	})
	if err != nil {
		log.Fatal(err)
	}
	mc, _ := mmptcp.MMPTCPConn(conn)

	const mss = 1400.0
	s := mmptcp.NewSampler(eng, 500*mmptcp.Microsecond)
	s.Add("ps_cwnd_pkts", func() float64 {
		if mc.PacketScatter().Done() {
			return 0
		}
		return mc.PacketScatter().Cwnd / mss
	})
	s.Add("mptcp_cwnd_pkts", func() float64 {
		mp := mc.MPTCP()
		if mp == nil {
			return 0
		}
		var total float64
		for _, sub := range mp.Subflows() {
			if !sub.Done() {
				total += sub.Cwnd
			}
		}
		return total / mss
	})
	s.Add("ps_srtt_ms", func() float64 {
		return mc.PacketScatter().SRTT().Milliseconds()
	})
	s.Start()

	conn.Receiver().OnComplete = func() {
		s.Stop()
		eng.Stop()
	}
	conn.Start()
	eng.RunUntil(30 * mmptcp.Second)

	if err := s.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "switched at %v, completed at %v\n", mc.SwitchedAt(), eng.Now())
}
