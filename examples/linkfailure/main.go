// Linkfailure demonstrates the network-dynamics subsystem: two agg-core
// cables are cut 200ms into the run — while short flows are arriving —
// and repaired at 700ms, with a 20ms routing reconvergence delay. Until
// routing notices, the dead links blackhole everything sprayed onto
// them; afterwards ECMP squeezes around the corpses until the repair
// (plus another reconvergence delay) restores the fabric.
//
// The output is the paper's robustness claim in one table: single-path
// TCP flows hashed onto a dead path stall for the blackhole window plus
// RTO backoff (a catastrophic worst case), while MMPTCP's packet
// scatter loses only a slice of each window and recovers via duplicate
// ACKs on the surviving paths — and its long flows barely notice.
//
//	go run ./examples/linkfailure [flows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
)

import mmptcp "repro"

func main() {
	flows := 300
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad flow count %q", os.Args[1])
		}
		flows = n
	}

	// The failure plan: both directions of the first two agg-core
	// cables die at 200ms and come back at 700ms. Routing takes 20ms to
	// react to each transition — first the blackhole window, then the
	// lag before the repaired links rejoin ECMP.
	faultPlan := mmptcp.FaultsConfig{
		Events:          mmptcp.FailCables(mmptcp.LayerAgg, 2, 200*mmptcp.Millisecond, 700*mmptcp.Millisecond),
		ReconvergeDelay: 20 * mmptcp.Millisecond,
	}

	fmt.Printf("%d short flows on a 64-host 4:1 FatTree; 2 agg-core cables dead 200..700ms, 20ms reconvergence\n\n", flows)
	protos := []mmptcp.Protocol{mmptcp.ProtoTCP, mmptcp.ProtoMPTCP, mmptcp.ProtoMMPTCP}
	var configs []mmptcp.Config
	for _, proto := range protos {
		healthy := mmptcp.SmallConfig(proto, flows)
		healthy.Seed = 7
		healthy.MaxSimTime = 60 * mmptcp.Second
		faulted := healthy
		faulted.Faults = faultPlan // the workload is identical; only the network differs
		configs = append(configs, healthy, faulted)
	}
	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proto    network   short_mean  short_max  rto_flows  miss_pct  long_tput  blackholed  noroute")
	for i, res := range results {
		state := "healthy"
		if i%2 == 1 {
			state = "faulted"
		}
		s := res.ShortSummary
		fmt.Printf("%-7s  %-8s  %8.1fms  %7.1fms  %9d  %7.1f%%  %5.1f Mb/s  %10d  %7d\n",
			protos[i/2], state, s.MeanMs, s.MaxMs, s.WithRTO,
			res.DeadlineMissRate*100, res.LongThroughputMbps,
			res.Blackholed, res.NoRouteDrops)
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - tcp: the unlucky flows hash onto the dead path and stall -> worst-case FCT explodes")
	fmt.Println("  - mptcp: subflows on dead paths go quiet; the rest carry on, but tiny windows still RTO")
	fmt.Println("  - mmptcp: scatter spreads each flow over every path, so the failure costs a slice,")
	fmt.Println("    not a stall; long-flow goodput recovers once routing reconverges after the repair")
}
