package mmptcp

import (
	"reflect"
	"testing"
)

// vl2tiny is tiny() on the VL2 Clos instead of the FatTree: DA=DI=4,
// 8 ToRs, 64 hosts — the same scale, a different routing structure.
func vl2tiny(proto Protocol, flows int) Config {
	cfg := tiny(proto, flows)
	cfg.Topology = TopoVL2
	return cfg
}

// convergenceFaultSuite is the staggered-vs-atomic equivalence matrix:
// the PR-3 fault classes (cable cuts with repair, whole-switch
// crash/restart, sampled correlated groups plus a core switch-crash
// model) on both the FatTree and the VL2 Clos, all under global
// routing.
func convergenceFaultSuite() []Config {
	configs := incrementalFaultSuite()

	cables := vl2tiny(ProtoMMPTCP, 40)
	cables.MaxSimTime = 15 * Second
	cables.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 900*Millisecond),
		ReconvergeDelay: 20 * Millisecond,
	}
	cables.Routing.Mode = RoutingGlobal
	configs = append(configs, cables)

	// Intermediate switch 12 (ToRs 0-7, aggs 8-11, intermediates 12-15).
	crash := vl2tiny(ProtoTCP, 40)
	crash.MaxSimTime = 15 * Second
	crash.Faults = FaultsConfig{
		Events:          FailSwitches([]int{12}, 200*Millisecond, 800*Millisecond),
		ReconvergeDelay: 10 * Millisecond,
	}
	crash.Routing.Mode = RoutingGlobal
	configs = append(configs, crash)

	model := vl2tiny(ProtoMMPTCP, 40)
	model.MaxSimTime = 15 * Second
	model.Faults = FaultsConfig{
		Model: FaultModel{
			Groups:   []FaultGroupModel{{Layer: LayerAgg, Size: 2, MTBF: 2 * Second, MTTR: 100 * Millisecond}},
			Switches: []FaultSwitchModel{{Layer: LayerCore, MTBF: 3 * Second, MTTR: 100 * Millisecond}},
			Horizon:  4 * Second,
		},
		ReconvergeDelay: 10 * Millisecond,
	}
	model.Routing.Mode = RoutingGlobal
	configs = append(configs, model)

	return configs
}

// TestStaggeredAtomicEquivalence is the staged-convergence safety
// argument: with PerHopDelay zero every flip lands inline at recompute
// time, so staggered mode must produce Results byte-identical to atomic
// across the whole fault suite. Only the fields that record which
// distribution mechanism ran (the convergence label and the flip
// schedule counters) are normalised; the window-damage counters are
// deliberately left in the comparison — a zero-delay run must never
// open a window, so they must be zero on both sides.
func TestStaggeredAtomicEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fault suite is slow")
	}
	run := func(staggered bool) []*Results {
		var out []*Results
		for _, cfg := range convergenceFaultSuite() {
			if staggered {
				cfg.Routing.Convergence = ConvergeStaggered
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Normalise what names the mechanism rather than measures
			// the network.
			res.Config.Routing.Convergence = ""
			res.Routing.Convergence = ""
			res.Routing.Flips = 0
			res.Routing.FirstFlip = 0
			res.Routing.LastFlip = 0
			out = append(out, res)
		}
		return out
	}
	atomic := run(false)
	staggered := run(true)
	for i := range atomic {
		if !reflect.DeepEqual(atomic[i], staggered[i]) {
			t.Errorf("config %d: staggered PerHopDelay=0 diverged from atomic", i)
		}
		if staggered[i].Routing.TransientTime != 0 || staggered[i].LoopDrops != 0 ||
			staggered[i].Routing.TransientNoRoute != 0 || staggered[i].Routing.StaleLookups != 0 {
			t.Errorf("config %d: zero-delay staggered opened a transient window: %+v",
				i, staggered[i].Routing)
		}
	}
}

// transientConfig is the staggered-convergence scenario: cables agg-core
// cables die at 150ms and come back at 900ms, routing notices 20ms
// later, and every switch's FIB flip then propagates outward at
// perHop per hop from the failed cables.
func transientConfig(proto Protocol, flows, cables int, perHop SimTime) Config {
	cfg := tiny(proto, flows)
	cfg.MaxSimTime = 20 * Second
	cfg.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, cables, 150*Millisecond, 900*Millisecond),
		ReconvergeDelay: 20 * Millisecond,
	}
	cfg.Routing = RoutingConfig{
		Mode:        RoutingGlobal,
		Convergence: ConvergeStaggered,
		PerHopDelay: perHop,
	}
	return cfg
}

// TestStaggeredTransientShape is the acceptance shape for the new
// subsystem, in two halves.
//
// Blackhole half: severing every pod-0 uplink (4 agg-core cables on the
// K=4 tree) makes the recomputed pod-0 sets empty, so while the flips
// propagate outward, switches that already flipped drop pod-0 traffic
// that stale switches still send them — TransientNoRoute, the
// blackholes bred by the disagreement itself.
//
// Loop half: with only 2 cables cut the recomputed tables are down-up
// detours, and a long flip spread (50ms per hop) lets packets ping-pong
// between a stale switch still pointing at a crippled core and the
// flipped core pointing back down — hop-backstop deaths accounted as
// LoopDrops, not hop-limit noise.
func TestStaggeredTransientShape(t *testing.T) {
	if testing.Short() {
		t.Skip("transient runs are slow")
	}
	sever, err := Run(transientConfig(ProtoMMPTCP, 150, 4, 20*Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rt := sever.Routing
	t.Logf("sever: recomputes=%d flips=%d spread=[%v,%v] window=%v stale=%d transient-noroute=%d loops=%d",
		rt.Recomputes, rt.Flips, rt.FirstFlip, rt.LastFlip, rt.TransientTime,
		rt.StaleLookups, rt.TransientNoRoute, sever.LoopDrops)
	if rt.Convergence != string(ConvergeStaggered) {
		t.Errorf("convergence recorded as %q", rt.Convergence)
	}
	if rt.Flips == 0 {
		t.Error("no per-switch flips applied")
	}
	if rt.TransientTime == 0 {
		t.Error("per-hop delay 20ms opened no transient window")
	}
	if rt.FirstFlip >= rt.LastFlip {
		t.Errorf("flip spread [%v, %v] is not a real spread", rt.FirstFlip, rt.LastFlip)
	}
	if rt.StaleLookups == 0 {
		t.Error("no lookup was ever served by a stale FIB during the window")
	}
	if rt.TransientNoRoute == 0 {
		t.Error("no blackhole was attributed to the transient window")
	}
	// Window damage is a subset of the totals.
	if rt.TransientNoRoute > sever.NoRouteDrops {
		t.Errorf("transient no-route %d exceeds total %d", rt.TransientNoRoute, sever.NoRouteDrops)
	}

	loops, err := Run(transientConfig(ProtoMMPTCP, 150, 2, 50*Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	lt := loops.Routing
	t.Logf("loops: flips=%d window=%v stale=%d loops=%d hop-noise=%d",
		lt.Flips, lt.TransientTime, lt.StaleLookups, loops.LoopDrops, loops.HopDrops)
	if loops.LoopDrops == 0 {
		t.Error("no forwarding micro-loop was caught by the hop backstop during the window")
	}

	// And the atomic twin of the same scenario reports no window at all.
	atomic := transientConfig(ProtoMMPTCP, 150, 4, 0)
	atomic.Routing.Convergence = ConvergeAtomic
	ares, err := Run(atomic)
	if err != nil {
		t.Fatal(err)
	}
	art := ares.Routing
	if art.TransientTime != 0 || art.Flips != 0 || ares.LoopDrops != 0 ||
		art.TransientNoRoute != 0 || art.StaleLookups != 0 {
		t.Errorf("atomic twin reports transient artefacts: %+v", art)
	}
}

// TestStaggeredSweepDeterminism extends the sweep-determinism guarantee
// to staggered convergence and flap damping: per-switch flip schedules
// and hold-down deferrals must be byte-identical serial vs parallel.
// CI runs this test under -race.
func TestStaggeredSweepDeterminism(t *testing.T) {
	mkConfigs := func() []Config {
		var configs []Config
		for _, perHop := range []SimTime{0, 2 * Millisecond} {
			cfg := transientConfig(ProtoMMPTCP, 40, 2, perHop)
			cfg.MaxSimTime = 15 * Second
			configs = append(configs, cfg)
		}
		vl2 := vl2tiny(ProtoTCP, 40)
		vl2.MaxSimTime = 15 * Second
		vl2.Faults = FaultsConfig{
			Events:          FailCables(LayerAgg, 2, 150*Millisecond, 900*Millisecond),
			ReconvergeDelay: 10 * Millisecond,
		}
		vl2.Routing = RoutingConfig{
			Mode:        RoutingGlobal,
			Convergence: ConvergeStaggered,
			PerHopDelay: 3 * Millisecond,
		}
		configs = append(configs, vl2)
		damped := transientConfig(ProtoTCP, 40, 2, 2*Millisecond)
		damped.MaxSimTime = 15 * Second
		damped.Faults = FaultsConfig{
			Model: FaultModel{
				Layers:  []FaultLayerModel{{Layer: LayerAgg, MTBF: 500 * Millisecond, MTTR: 50 * Millisecond}},
				Horizon: 5 * Second,
			},
			ReconvergeDelay: 5 * Millisecond,
		}
		damped.Routing.HoldDown = 200 * Millisecond
		configs = append(configs, damped)
		return configs
	}
	serial, err := RunSweep(mkConfigs(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(mkConfigs(), SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("config %d: staggered sweep diverged between 1 and 4 workers", i)
		}
	}
	for i, res := range serial {
		if res.Routing.Flips == 0 {
			t.Errorf("config %d applied no per-switch flips", i)
		}
	}
}

// TestFlapDampingRun drives the hold-down policy through the public
// API: an aggressively flapping access layer with damping enabled must
// report deferred transitions and still finish the workload.
func TestFlapDampingRun(t *testing.T) {
	cfg := tiny(ProtoTCP, 60)
	cfg.MaxSimTime = 20 * Second
	cfg.Faults = FaultsConfig{
		Model: FaultModel{
			Layers:  []FaultLayerModel{{Layer: LayerHost, MTBF: 200 * Millisecond, MTTR: 20 * Millisecond}},
			Horizon: 5 * Second,
		},
	}
	cfg.Routing = RoutingConfig{
		Mode:          RoutingGlobal,
		HoldDown:      300 * Millisecond,
		FlapThreshold: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	undamped := cfg
	undamped.Routing.HoldDown = 0
	undamped.Routing.FlapThreshold = 0
	ref, err := Run(undamped)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("damped: recomputes=%d damped=%d; undamped: recomputes=%d",
		res.Routing.Recomputes, res.Routing.Damped, ref.Routing.Recomputes)
	if res.Routing.Damped == 0 {
		t.Error("hold-down never deferred a transition under access-layer churn")
	}
	if res.Routing.Recomputes >= ref.Routing.Recomputes {
		t.Errorf("damping did not reduce recomputes: %d >= %d",
			res.Routing.Recomputes, ref.Routing.Recomputes)
	}
	if ref.Routing.Damped != 0 {
		t.Errorf("undamped run reports %d damped transitions", ref.Routing.Damped)
	}
}

// TestConvergenceValidation rejects malformed convergence configs at
// the public surface with clear errors instead of scheduling at weird
// times.
func TestConvergenceValidation(t *testing.T) {
	base := func() Config { return tiny(ProtoTCP, 1) }

	neg := base()
	neg.Faults.ReconvergeDelay = -Millisecond
	if _, err := Run(neg); err == nil {
		t.Error("Run accepted a negative ReconvergeDelay")
	}

	perhop := base()
	perhop.Routing = RoutingConfig{Mode: RoutingGlobal, Convergence: ConvergeStaggered, PerHopDelay: -Millisecond}
	if _, err := Run(perhop); err == nil {
		t.Error("Run accepted a negative PerHopDelay")
	}

	local := base()
	local.Routing = RoutingConfig{Mode: RoutingLocal, Convergence: ConvergeStaggered}
	if _, err := Run(local); err == nil {
		t.Error("Run accepted staggered convergence under local repair")
	}

	atomicPerHop := base()
	atomicPerHop.Routing = RoutingConfig{Mode: RoutingGlobal, PerHopDelay: Millisecond}
	if _, err := Run(atomicPerHop); err == nil {
		t.Error("Run accepted PerHopDelay under atomic convergence")
	}

	hold := base()
	hold.Routing = RoutingConfig{Mode: RoutingGlobal, HoldDown: -Second}
	if _, err := Run(hold); err == nil {
		t.Error("Run accepted a negative HoldDown")
	}

	thr := base()
	thr.Routing = RoutingConfig{Mode: RoutingGlobal, FlapThreshold: 3}
	if _, err := Run(thr); err == nil {
		t.Error("Run accepted FlapThreshold without HoldDown (silently does nothing)")
	}

	localDamp := base()
	localDamp.Routing = RoutingConfig{Mode: RoutingLocal, HoldDown: 100 * Millisecond}
	if _, err := Run(localDamp); err == nil {
		t.Error("Run accepted HoldDown under local repair (no control plane to damp)")
	}

	conv := base()
	conv.Routing = RoutingConfig{Mode: RoutingGlobal, Convergence: "quantum"}
	if _, err := Run(conv); err == nil {
		t.Error("Run accepted an unknown convergence mode")
	}
}
