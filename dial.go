package mmptcp

import (
	"repro/internal/core"
	"repro/internal/dctcp"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Conn is the protocol-independent view of one simulated connection that
// the experiment runner drives. All three protocols (TCP, MPTCP,
// MMPTCP) are adapted to it.
type Conn interface {
	// Start begins transmission.
	Start()
	// Receiver returns the receive endpoint (completion, delivered bytes).
	Receiver() *tcp.Receiver
	// Stats aggregates sender-side statistics across subflows/phases.
	Stats() tcp.SenderStats
	// SetOnAllAcked registers the sender-side completion callback.
	SetOnAllAcked(func())
	// RedialStats reports subflow re-dial attempts and how many
	// replacement subflows recovered (acknowledged data). Always zero
	// for single-path transports and with recovery disabled.
	RedialStats() (redials, recovered int)
	// Close releases endpoints and timers.
	Close()
}

// DialConfig identifies one flow for Dial.
type DialConfig struct {
	FlowID uint64
	Src    int
	Dst    int
	Size   int64 // -1 for unbounded
	RNG    *sim.RNG
	// Recorder, when non-nil, receives the flow's structured trace
	// events (segment sends, ACKs, window changes, subflow lifecycle,
	// phase switches). Nil — the default — costs nothing.
	Recorder *trace.Recorder
	// Observer, when non-nil with Config.Transport.DeferPhaseSwitch,
	// supplies the routing convergence signal MMPTCP's phase switch
	// consults (the run harness passes the installed control plane).
	Observer core.ConvergenceObserver
}

// Dial creates a connection of the configured protocol between two hosts
// of the network. It is exported so examples and tools can drive single
// flows without the full experiment harness. Endpoints schedule on their
// own host's engine — the same engine eng sequentially, the owning
// shards' engines under a sharded fabric.
func Dial(eng sim.EventScheduler, net *topology.Network, cfg Config, d DialConfig) (Conn, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	src, dst := net.Hosts[d.Src], net.Hosts[d.Dst]
	switch cfg.Protocol {
	case ProtoTCP, ProtoDCTCP:
		rcv := tcp.NewReceiver(dst.Engine(), cfg.TCP, dst, d.FlowID, d.Size)
		opt := tcp.SenderOptions{
			Host:       src,
			Dst:        dst.ID(),
			FlowID:     d.FlowID,
			SrcPort:    uint16(10000 + d.RNG.Intn(50000)),
			DstPort:    80,
			Source:     &tcp.BytesSource{Size: d.Size},
			EnableSACK: cfg.SACK,
			Recorder:   d.Recorder,
		}
		if cfg.Protocol == ProtoDCTCP {
			opt.CC = &dctcp.CC{}
		}
		snd := tcp.NewSender(src.Engine(), cfg.TCP, opt)
		return &tcpConn{snd: snd, rcv: rcv}, nil
	case ProtoMPTCP:
		conn := mptcp.Dial(eng, mptcp.Config{
			TCP:           cfg.TCP,
			Subflows:      cfg.Subflows,
			SACK:          cfg.SACK,
			DeadRTOs:      cfg.Transport.DeadRTOs,
			RedialBackoff: cfg.Transport.RedialBackoff,
			RedialBudget:  cfg.Transport.RedialBudget,
		}, mptcp.Options{
			SrcHost:  src,
			DstHost:  dst,
			FlowID:   d.FlowID,
			Size:     d.Size,
			RNG:      d.RNG,
			Recorder: d.Recorder,
		})
		return &mptcpConn{conn}, nil
	case ProtoMMPTCP:
		conn := core.Dial(eng, core.Config{
			TCP:              cfg.TCP,
			Subflows:         cfg.Subflows,
			Strategy:         cfg.Strategy,
			SwitchBytes:      cfg.SwitchBytes,
			Threshold:        cfg.PSThreshold,
			SACK:             cfg.SACK,
			DeadRTOs:         cfg.Transport.DeadRTOs,
			RedialBackoff:    cfg.Transport.RedialBackoff,
			RedialBudget:     cfg.Transport.RedialBudget,
			DeferPhaseSwitch: cfg.Transport.DeferPhaseSwitch,
			MaxDefer:         cfg.Transport.MaxDefer,
		}, core.Options{
			SrcHost:   src,
			DstHost:   dst,
			FlowID:    d.FlowID,
			Size:      d.Size,
			PathCount: net.PathCount(netem.NodeID(d.Src), netem.NodeID(d.Dst)),
			RNG:       d.RNG,
			Recorder:  d.Recorder,
			Observer:  d.Observer,
		})
		return &mmptcpConn{conn}, nil
	}
	panic("unreachable")
}

type tcpConn struct {
	snd *tcp.Sender
	rcv *tcp.Receiver
}

func (c *tcpConn) Start()                  { c.snd.Start() }
func (c *tcpConn) Receiver() *tcp.Receiver { return c.rcv }
func (c *tcpConn) Stats() tcp.SenderStats  { return c.snd.Stats }
func (c *tcpConn) SetOnAllAcked(fn func()) { c.snd.OnAllAcked = fn }
func (c *tcpConn) RedialStats() (int, int) { return 0, 0 }
func (c *tcpConn) Close() {
	c.snd.Close()
	c.rcv.Close()
}

type mptcpConn struct{ conn *mptcp.Connection }

func (c *mptcpConn) Start()                  { c.conn.Start() }
func (c *mptcpConn) Receiver() *tcp.Receiver { return c.conn.Receiver() }
func (c *mptcpConn) Stats() tcp.SenderStats  { return c.conn.Stats() }
func (c *mptcpConn) SetOnAllAcked(fn func()) { c.conn.OnAllAcked = fn }
func (c *mptcpConn) RedialStats() (int, int) { return c.conn.RedialStats() }
func (c *mptcpConn) Close()                  { c.conn.Close() }

type mmptcpConn struct{ conn *core.Conn }

func (c *mmptcpConn) Start()                  { c.conn.Start() }
func (c *mmptcpConn) Receiver() *tcp.Receiver { return c.conn.Receiver() }
func (c *mmptcpConn) Stats() tcp.SenderStats  { return c.conn.Stats() }
func (c *mmptcpConn) SetOnAllAcked(fn func()) { c.conn.OnAllAcked = fn }
func (c *mmptcpConn) RedialStats() (int, int) { return c.conn.RedialStats() }
func (c *mmptcpConn) Close()                  { c.conn.Close() }

// MMPTCPConn exposes the phase-level API of an MMPTCP connection dialed
// through Dial (switch time, PS sender), for examples and ablations.
func MMPTCPConn(c Conn) (*core.Conn, bool) {
	mc, ok := c.(*mmptcpConn)
	if !ok {
		return nil, false
	}
	return mc.conn, true
}
