package mmptcp

// Torture tests: every protocol must deliver every byte exactly, no
// matter what the network does (random loss, heavy jitter, both), as
// long as the simulation runs long enough. These exercise the loss
// recovery machinery far beyond the benign experiment regimes.

import (
	"fmt"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// lossyWire is a two-host harness whose middlebox drops and delays
// packets at seeded random.
type lossyWire struct {
	eng  *sim.Engine
	a, b *netem.Host
	w    *tortureNode
}

type tortureNode struct {
	eng      *sim.Engine
	id       netem.NodeID
	out      map[netem.NodeID]*netem.Link
	rng      *sim.RNG
	dropProb float64  // drop probability per packet
	jitter   sim.Time // max extra delay per packet
	dropped  int64
}

func (w *tortureNode) ID() netem.NodeID { return w.id }
func (w *tortureNode) Receive(p *netem.Packet, from *netem.Link) {
	if w.dropProb > 0 && w.rng.Float64() < w.dropProb {
		w.dropped++
		return
	}
	l := w.out[p.Dst]
	if w.jitter > 0 {
		d := sim.Time(w.rng.Int63n(int64(w.jitter)))
		w.eng.Schedule(d, func() { l.Enqueue(p) })
		return
	}
	l.Enqueue(p)
}

func newLossyWire(seed uint64, dropProb float64, jitter sim.Time) *lossyWire {
	eng := sim.NewEngine()
	a := netem.NewHost(eng, 0)
	b := netem.NewHost(eng, 1)
	w := &tortureNode{
		eng: eng, id: 2, out: make(map[netem.NodeID]*netem.Link),
		rng: sim.NewRNG(seed), dropProb: dropProb, jitter: jitter,
	}
	const rate = 1_000_000_000
	aw := netem.NewLink(eng, a, w, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	bw := netem.NewLink(eng, b, w, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	wa := netem.NewLink(eng, w, a, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	wb := netem.NewLink(eng, w, b, rate, 10*sim.Microsecond, 10000, netem.LayerHost)
	a.AttachUplink(aw)
	b.AttachUplink(bw)
	w.out[a.ID()] = wa
	w.out[b.ID()] = wb
	return &lossyWire{eng: eng, a: a, b: b, w: w}
}

// netStub adapts the lossy wire into the minimal shape Dial needs.
func (lw *lossyWire) network() *Network {
	return &Network{Eng: lw.eng, Hosts: []*netem.Host{lw.a, lw.b}}
}

func TestTortureAllProtocolsDeliverExactly(t *testing.T) {
	const size = 350_000
	protos := []Protocol{ProtoTCP, ProtoMPTCP, ProtoMMPTCP}
	scenarios := []struct {
		name   string
		drop   float64
		jitter sim.Time
	}{
		{"loss5pct", 0.05, 0},
		{"loss15pct", 0.15, 0},
		{"jitter1ms", 0, sim.Millisecond},
		{"loss5pct+jitter", 0.05, 500 * sim.Microsecond},
	}
	for _, sc := range scenarios {
		for _, proto := range protos {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", sc.name, proto, seed)
				t.Run(name, func(t *testing.T) {
					lw := newLossyWire(seed, sc.drop, sc.jitter)
					cfg := Config{Protocol: proto, Subflows: 4}
					conn, err := Dial(lw.eng, lw.network(), cfg, DialConfig{
						FlowID: 1, Src: 0, Dst: 1, Size: size, RNG: sim.NewRNG(seed * 7),
					})
					if err != nil {
						t.Fatal(err)
					}
					conn.Start()
					lw.eng.RunUntil(10 * 60 * sim.Second)
					if !conn.Receiver().Complete() {
						t.Fatalf("incomplete after 10 virtual minutes: delivered %d/%d (wire dropped %d)",
							conn.Receiver().Delivered(), size, lw.w.dropped)
					}
					if got := conn.Receiver().Delivered(); got != size {
						t.Fatalf("delivered %d, want exactly %d", got, size)
					}
					// Sender side must also converge.
					lw.eng.RunUntil(11 * 60 * sim.Second)
					st := conn.Stats()
					if st.BytesSent < size {
						t.Errorf("sent %d < size", st.BytesSent)
					}
				})
			}
		}
	}
}

func TestTortureBlackholeThenHeal(t *testing.T) {
	// Total blackout for 5 seconds mid-transfer: the connection must
	// survive on RTO backoff and finish after the path heals.
	for _, proto := range []Protocol{ProtoTCP, ProtoMPTCP, ProtoMMPTCP} {
		t.Run(string(proto), func(t *testing.T) {
			lw := newLossyWire(1, 0, 0)
			cfg := Config{Protocol: proto, Subflows: 4}
			conn, err := Dial(lw.eng, lw.network(), cfg, DialConfig{
				FlowID: 1, Src: 0, Dst: 1, Size: 700_000, RNG: sim.NewRNG(3),
			})
			if err != nil {
				t.Fatal(err)
			}
			conn.Start()
			lw.eng.At(5*sim.Millisecond, func() { lw.w.dropProb = 1 })
			lw.eng.At(5*sim.Second, func() { lw.w.dropProb = 0 })
			lw.eng.RunUntil(5 * 60 * sim.Second)
			if !conn.Receiver().Complete() {
				t.Fatalf("never recovered from blackout: delivered %d", conn.Receiver().Delivered())
			}
			if conn.Stats().Timeouts == 0 {
				t.Error("no timeouts despite a 5s blackout")
			}
		})
	}
}

func TestTortureManyParallelFlowsOneReceiver(t *testing.T) {
	// 30 concurrent MMPTCP flows into one host, 10% loss: all complete,
	// all deliver exactly their bytes (no cross-flow corruption).
	lw := newLossyWire(9, 0.10, 200*sim.Microsecond)
	net := lw.network()
	cfg := Config{Protocol: ProtoMMPTCP, Subflows: 2}
	const n = 30
	const size = 70_000
	conns := make([]Conn, n)
	rng := sim.NewRNG(5)
	for i := 0; i < n; i++ {
		conn, err := Dial(lw.eng, net, cfg, DialConfig{
			FlowID: uint64(i + 1), Src: 0, Dst: 1, Size: size, RNG: rng.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		conn.Start()
	}
	lw.eng.RunUntil(10 * 60 * sim.Second)
	for i, c := range conns {
		if !c.Receiver().Complete() {
			t.Errorf("flow %d incomplete: %d/%d", i, c.Receiver().Delivered(), size)
			continue
		}
		if c.Receiver().Delivered() != size {
			t.Errorf("flow %d delivered %d", i, c.Receiver().Delivered())
		}
	}
	_ = tcp.DefaultConfig()
}
