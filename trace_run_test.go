package mmptcp

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// traceFaultSuite is the byte-identity matrix: faulted runs with global
// repair on both hash-seeded multi-rooted fabrics (FatTree and VL2), so
// the trace points on every layer — transports, links, switches,
// control plane, fault injector — fire while the comparison runs.
func traceFaultSuite() []Config {
	ft := tiny(ProtoMMPTCP, 40)
	ft.MaxSimTime = 15 * Second
	ft.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 900*Millisecond),
		ReconvergeDelay: 20 * Millisecond,
	}
	ft.Routing.Mode = RoutingGlobal

	vl2 := tiny(ProtoTCP, 40)
	vl2.Topology = TopoVL2
	vl2.K = 4
	vl2.HostsPerEdge = 2
	vl2.MaxSimTime = 15 * Second
	vl2.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 2, 150*Millisecond, 600*Millisecond),
		ReconvergeDelay: 50 * Millisecond,
	}
	vl2.Routing.Mode = RoutingGlobal

	return []Config{ft, vl2}
}

// TestTracedRunByteIdentical is the tracing contract: a traced run's
// Results are byte-identical to the untraced run's — ring or full mode,
// serial or parallel, fresh or pooled instances — because trace points
// only observe (no engine events, no RNG draws, no pool traffic). Only
// the Config echo's Trace section differs, by construction; it is
// normalised before comparison.
func TestTracedRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fault suite is slow")
	}
	mk := func(mode TraceMode) []Config {
		configs := traceFaultSuite()
		for i := range configs {
			configs[i].Trace.Mode = mode
			configs[i].Seed = uint64(i + 1)
		}
		return configs
	}
	baseline, err := RunSweep(mk(TraceOff), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		mode    TraceMode
		workers int
		pool    bool
	}{
		{"ring serial", TraceRing, 1, false},
		{"ring 4 workers", TraceRing, 4, false},
		{"ring pooled", TraceRing, 1, true},
		{"full serial", TraceFull, 1, false},
	} {
		got, err := RunSweep(mk(tc.mode), SweepOptions{Workers: tc.workers, Pool: tc.pool})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			g, b := *got[i], *baseline[i]
			g.Config.Trace = TraceConfig{}
			b.Config.Trace = TraceConfig{}
			if !reflect.DeepEqual(&g, &b) {
				t.Errorf("%s, config %d: traced Results diverged from untraced", tc.name, i)
			}
		}
	}
}

// TestTracedRunCapture: a traced faulted run actually captures the
// storyline — flow lifecycle, fault injection and repair, link state,
// control-plane recomputes — in time order.
func TestTracedRunCapture(t *testing.T) {
	cfg := traceFaultSuite()[0]
	cfg.Trace.Mode = TraceFull
	// The default full-mode cap truncates this run mid-story (~1.9M
	// events); raise it so the late repair events are retained too.
	cfg.Trace.MaxEvents = 4 << 20
	res, rec, err := RunTraced(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("RunTraced returned a nil recorder with tracing on")
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if rec.Lost() != 0 {
		t.Fatalf("full trace lost %d events; raise MaxEvents so the checks below see everything", rec.Lost())
	}
	if res.FaultEvents == 0 {
		t.Fatal("fault suite resolved no fault events; the scenario is broken")
	}
	kinds := make(map[trace.Kind]int)
	last := SimTime(-1)
	for _, e := range rec.Events() {
		kinds[e.Kind]++
		if e.At < last {
			t.Fatalf("events out of order: %v after %v", e.At, last)
		}
		last = e.At
	}
	for _, want := range []trace.Kind{
		trace.KindFlowStart, trace.KindFlowEnd, trace.KindSegmentSend,
		trace.KindAck, trace.KindSubflowOpen, trace.KindEnqueue,
		trace.KindFaultInject, trace.KindFaultRepair, trace.KindLinkDown,
		trace.KindLinkUp, trace.KindRecomputeStart, trace.KindRecomputeEnd,
	} {
		if kinds[want] == 0 {
			t.Errorf("traced faulted run recorded no %v events", want)
		}
	}
	// Every flow the workload spawned starts exactly once.
	if got, want := kinds[trace.KindFlowStart], res.Spawned+len(res.LongFlows); got != want {
		t.Errorf("%d flow-start events, want %d (spawned shorts + longs)", got, want)
	}
}

// TestTraceFlowFilterRun: with a flow filter, flow-scoped events are
// restricted to the requested flows while fabric/control events (flow
// 0) still record.
func TestTraceFlowFilterRun(t *testing.T) {
	cfg := traceFaultSuite()[0]
	cfg.Trace.Mode = TraceFull
	cfg.Trace.Flows = []uint64{1}
	_, rec, err := RunTraced(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flowScoped, fabric int
	for _, e := range rec.Events() {
		switch e.Flow {
		case 0:
			fabric++
		case 1:
			flowScoped++
		default:
			t.Fatalf("filtered trace kept flow %d event %v", e.Flow, e.Kind)
		}
	}
	if flowScoped == 0 {
		t.Error("filter recorded nothing for the requested flow")
	}
	if fabric == 0 {
		t.Error("filter suppressed fabric/control events")
	}
}

// TestRecorderPooledReuse: RunInstance.Reset keeps an armed recorder
// with matching options (reset in place), rebuilds on option changes,
// and disarms when tracing turns off — the flight-recorder-over-sweeps
// lifecycle.
func TestRecorderPooledReuse(t *testing.T) {
	cfg := traceFaultSuite()[0]
	cfg.Trace.Mode = TraceRing
	cfg.Trace.Buffer = 4096
	inst, err := NewRunInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := inst.Recorder()
	if rec1 == nil {
		t.Fatal("instance built with tracing on has no recorder")
	}
	if _, err := inst.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	n1 := rec1.Len()
	if n1 == 0 {
		t.Fatal("armed recorder captured nothing")
	}
	if err := inst.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if inst.Recorder() != rec1 {
		t.Error("Reset with identical trace options rebuilt the recorder")
	}
	if rec1.Len() != 0 {
		t.Error("Reset left events in the recorder")
	}
	if _, err := inst.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := rec1.Len(); got != n1 {
		t.Errorf("replayed run captured %d events, first run %d — reuse is not clean", got, n1)
	}
	// Changed options rebuild; tracing off disarms.
	bigger := cfg
	bigger.Trace.Buffer = 8192
	if err := inst.Reset(bigger); err != nil {
		t.Fatal(err)
	}
	if inst.Recorder() == rec1 {
		t.Error("Reset with a different buffer kept the old recorder")
	}
	off := cfg
	off.Trace = TraceConfig{}
	if err := inst.Reset(off); err != nil {
		t.Fatal(err)
	}
	if inst.Recorder() != nil {
		t.Error("Reset with tracing off left a recorder armed")
	}
}

// TestTraceKnobValidation: the trace section rejects nonsense at config
// time, and accepts the spelled-out "off".
func TestTraceKnobValidation(t *testing.T) {
	run := func(mutate func(*Config)) error {
		cfg := tiny(ProtoTCP, 1)
		mutate(&cfg)
		_, err := Run(cfg)
		return err
	}
	if err := run(func(c *Config) { c.Trace.Mode = "bogus" }); err == nil {
		t.Error("unknown trace mode accepted")
	}
	if err := run(func(c *Config) { c.Trace.Mode = TraceRing; c.Trace.Buffer = -1 }); err == nil {
		t.Error("negative trace buffer accepted")
	}
	if err := run(func(c *Config) { c.Trace.Mode = TraceFull; c.Trace.MaxEvents = -1 }); err == nil {
		t.Error("negative trace max-events accepted")
	}
	if err := run(func(c *Config) { c.Trace.Buffer = 1024 }); err == nil {
		t.Error("trace buffer without a mode accepted")
	}
	if err := run(func(c *Config) { c.Trace.Flows = []uint64{1} }); err == nil {
		t.Error("trace flow filter without a mode accepted")
	}
	if err := run(func(c *Config) { c.Trace.Mode = "off" }); err != nil {
		t.Errorf("spelled-out off mode rejected: %v", err)
	}
}
