package mmptcp

// Parallel experiment sweeps.
//
// The paper's evaluation is not one simulation but dozens: Figure 1(a)
// alone is nine runs (subflow counts 1..9), the §2/§3 ablations sweep
// switching thresholds, arrival rates and topologies, and every scan is
// embarrassingly parallel — runs share no state, each builds its own
// engine, network and RNG streams from its Config. RunSweep exploits
// that: it fans a slice of Configs across a bounded worker pool (one
// sim.Engine per run, never shared) and returns Results in config order.
//
// Determinism guarantee: a Config fully determines its Results — the
// engine is single-threaded, all randomness flows from Config.Seed
// through sim.RNG streams, and no state leaks between runs — so RunSweep
// returns identical Results for the same configs regardless of
// SweepOptions.Workers, including Workers == 1. TestRunSweepDeterminism
// locks this in.
//
// Quick start (after `go build ./...` at the repo root — the module is
// plain `repro`, no vendoring, no dependencies):
//
//	configs := make([]mmptcp.Config, 9)
//	for i := range configs {
//		configs[i] = mmptcp.SmallConfig(mmptcp.ProtoMPTCP, 1000)
//		configs[i].Subflows = i + 1
//		configs[i].Seed = 1
//	}
//	results, err := mmptcp.RunSweep(configs, mmptcp.SweepOptions{})
//
// cmd/figures drives all its multi-config scans through RunSweep; on a
// multi-core machine `figures -fig all` completes in roughly 1/NumCPU of
// the serial wall time with byte-identical tables (see -workers).

import (
	"context"
	"runtime"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// SweepOptions tunes RunSweep. The zero value is ready to use: all CPUs,
// no cancellation, no progress reporting, seeds taken from the configs.
type SweepOptions struct {
	// Workers caps how many experiments run concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0). Each worker owns at most one
	// live simulation, so peak memory scales with Workers, not with
	// len(configs).
	Workers int

	// Context cancels the sweep: in-flight simulations poll it (see
	// RunContext) and abort early. Nil means context.Background().
	Context context.Context

	// Seed, when non-zero, assigns a derived seed to every config whose
	// own Seed is zero: config i receives sim.NewRNGStream(Seed, i)'s
	// first output. Derivation depends only on (Seed, i), so replicate
	// sets are reproducible and statistically independent across i.
	// Configs with explicit seeds are left untouched.
	Seed uint64

	// Pool recycles run instances (engine + built network) across
	// configs that share a structural Shape instead of rebuilding them
	// for every run: replicate sweeps — many seeds over few shapes — cut
	// their per-run setup allocations by orders of magnitude (see
	// cmd/bench's sweep-scale rows). Results are byte-identical to the
	// unpooled path at any worker count (TestPooledSweepByteIdentical);
	// peak live instances stay bounded by Workers per distinct shape.
	Pool bool

	// OnResult, if non-nil, is called after each run completes with the
	// number of runs finished so far, the total, and the finished run's
	// index into configs. Calls are serialised; no locking needed.
	OnResult func(done, total, index int)
}

// RunSweep executes every config as an independent experiment across a
// bounded worker pool and returns the Results in config order (results[i]
// belongs to configs[i]). The first failing run cancels the rest and its
// error is returned, wrapped with the config index.
func RunSweep(configs []Config, opts SweepOptions) ([]*Results, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Seed != 0 {
		derived := make([]Config, len(configs))
		for i, cfg := range configs {
			if cfg.Seed == 0 {
				cfg.Seed = sim.NewRNGStream(opts.Seed, uint64(i)).Uint64()
			}
			derived[i] = cfg
		}
		configs = derived
	}
	// Sharded configs occupy Shards OS threads each; shrink the worker
	// pool so workers × shards stays within the Workers budget
	// (GOMAXPROCS by default) instead of oversubscribing the machine.
	slots := 1
	for _, cfg := range configs {
		if cfg.Shards > slots {
			slots = cfg.Shards
		}
	}
	if opts.Pool {
		pool := sweep.NewInstancePool[Shape, *RunInstance]()
		return sweep.Run(ctx, len(configs), sweep.Options{
			Workers:      opts.Workers,
			SlotsPerTask: slots,
			OnDone:       opts.OnResult,
		}, func(ctx context.Context, i int) (*Results, error) {
			return runPooled(ctx, configs[i], pool)
		})
	}
	return sweep.Run(ctx, len(configs), sweep.Options{
		Workers:      opts.Workers,
		SlotsPerTask: slots,
		OnDone:       opts.OnResult,
	}, func(ctx context.Context, i int) (*Results, error) {
		return RunContext(ctx, configs[i])
	})
}

// DefaultSweepWorkers is the worker count a zero SweepOptions uses:
// runtime.GOMAXPROCS(0), i.e. every available CPU.
func DefaultSweepWorkers() int { return runtime.GOMAXPROCS(0) }
