package mmptcp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// adaptive returns the configs with Lookahead set to adaptive.
func adaptive(configs []Config) []Config {
	out := make([]Config, len(configs))
	copy(out, configs)
	for i := range out {
		out[i].Lookahead = LookaheadAdaptive
	}
	return out
}

// flowCore projects the Results fields that must be identical across
// lookahead modes: everything driven by flow completions and
// control-plane events. Cumulative data-plane counters (Results.Events,
// link/layer totals, drop counts, long-flow delivered bytes, sender-side
// retransmission stats filled after the run) legitimately include the
// post-Stop window overrun, whose width is mode-dependent — those are
// the documented N-shard divergence, widened by adaptive windows, and
// are excluded here exactly as they are excluded from the oracle
// comparison in TestShardedRunByteIdentical.
type flowCore struct {
	Spawned          int
	FaultEvents      int
	SwitchCrashes    int64
	Elapsed          SimTime
	ShortSummary     metrics.Summary
	DeadlineMissRate float64
	Snapshots        []metrics.Snapshot
	Shorts           []shortKey
	LongFlows        int
}

// shortKey is the per-short-flow completion record: identity, timing,
// outcome. Sender-side counters are omitted — a flow whose sender was
// still awaiting ACKs at the Stop barrier has them filled after the
// overrun.
type shortKey struct {
	ID        uint64
	Src, Dst  int32
	Size      int64
	Start     SimTime
	End       SimTime
	Completed bool
}

func coreOf(r *Results) flowCore {
	fc := flowCore{
		Spawned:          r.Spawned,
		FaultEvents:      r.FaultEvents,
		SwitchCrashes:    r.SwitchCrashes,
		Elapsed:          r.Elapsed,
		ShortSummary:     r.ShortSummary,
		DeadlineMissRate: r.DeadlineMissRate,
		Snapshots:        r.Snapshots,
		LongFlows:        len(r.LongFlows),
	}
	// WithRTO counts completed flows with sender-side timeouts — filled
	// post-overrun for senders the Stop caught mid-ACK; every other
	// Summary field derives from completion times alone.
	fc.ShortSummary.WithRTO = 0
	for _, sf := range r.ShortFlows {
		fc.Shorts = append(fc.Shorts, shortKey{
			ID: sf.ID, Src: int32(sf.Src), Dst: int32(sf.Dst), Size: sf.Size,
			Start: sf.Start, End: sf.End, Completed: sf.Completed,
		})
	}
	return fc
}

// TestAdaptiveMatchesConservative is the adaptive engine's correctness
// contract: over the PR-3 fault suite (FatTree and VL2, cable cuts with
// global repair, degraded cables, a core-switch crash, streaming and
// snapshot metrics), fresh and pooled, at 2 and 4 shards, the adaptive
// lookahead produces the same flow-level Results as the conservative
// engine — same spawns, same fault schedule, same completion times, same
// FCT distribution, same snapshots — while actually widening windows.
func TestAdaptiveMatchesConservative(t *testing.T) {
	for _, n := range []int{2, 4} {
		cons, err := RunSweep(shardedSuite(n), SweepOptions{Workers: 1})
		if err != nil {
			t.Fatalf("shards=%d conservative: %v", n, err)
		}
		adpt, err := RunSweep(adaptive(shardedSuite(n)), SweepOptions{Workers: 1})
		if err != nil {
			t.Fatalf("shards=%d adaptive: %v", n, err)
		}
		pooled, err := RunSweep(adaptive(shardedSuite(n)), SweepOptions{Workers: 4, Pool: true})
		if err != nil {
			t.Fatalf("shards=%d adaptive pooled: %v", n, err)
		}
		widened := uint64(0)
		for i := range cons {
			if a, b := coreOf(cons[i]), coreOf(adpt[i]); !reflect.DeepEqual(a, b) {
				t.Errorf("config %d shards=%d: adaptive flow results diverged from conservative\nconservative: %+v\nadaptive:     %+v", i, n, a, b)
			}
			if !reflect.DeepEqual(adpt[i], pooled[i]) {
				t.Errorf("config %d shards=%d: pooled adaptive run diverged from fresh", i, n)
			}
			if got, want := adpt[i].Shard.Mode, string(LookaheadAdaptive); got != want {
				t.Errorf("config %d shards=%d: Shard.Mode = %q, want %q", i, n, got, want)
			}
			if got, want := cons[i].Shard.Mode, string(LookaheadConservative); got != want {
				t.Errorf("config %d shards=%d: Shard.Mode = %q, want %q", i, n, got, want)
			}
			if cons[i].Shard.WidenedWindows != 0 {
				t.Errorf("config %d shards=%d: conservative run reports %d widened windows",
					i, n, cons[i].Shard.WidenedWindows)
			}
			widened += adpt[i].Shard.WidenedWindows
		}
		if widened == 0 {
			t.Errorf("shards=%d: no window in the whole suite widened past the conservative bound — adaptive mode is inert", n)
		}
	}
}

// TestAdaptiveDeterminism pins the determinism contract for adaptive
// mode under every execution regime: repeat serial runs, pooled runs and
// 4-way parallel sweep workers agree byte-for-byte — including the
// overrun-sensitive cumulative counters and the Shard block, which are
// deterministic per (Seed, Shards) even though they differ across modes.
// CI runs this under -race alongside the conservative suite.
func TestAdaptiveDeterminism(t *testing.T) {
	suite := adaptive(shardedSuite(2))
	serial, err := RunSweep(suite, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := RunSweep(suite, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweep(suite, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSweep(suite, SweepOptions{Workers: 4, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], repeat[i]) {
			t.Errorf("config %d: repeat adaptive run diverged (nondeterministic)", i)
		}
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("config %d: parallel-worker adaptive sweep diverged from serial", i)
		}
		if !reflect.DeepEqual(serial[i], pooled[i]) {
			t.Errorf("config %d: pooled adaptive sweep diverged from serial", i)
		}
	}
}

// TestAdaptiveFaultAtBarrier: a fault injection is control-plane work —
// its pending event caps every window edge, so a widened window can
// never jump a scheduled link failure, and the promise a shard published
// before the fault (computed from pre-fault heap state) is never relied
// on past it. The run must apply the full fault schedule at the same
// virtual times as the conservative engine while still widening windows
// in the quiet stretches around the fault.
func TestAdaptiveFaultAtBarrier(t *testing.T) {
	mk := func(mode LookaheadMode) Config {
		cfg := tiny(ProtoMMPTCP, 20)
		cfg.Shards = 2
		cfg.Lookahead = mode
		cfg.MaxSimTime = 2 * Second
		cfg.Faults = FaultsConfig{
			Events:          FailCables(LayerAgg, 2, 150*Millisecond, 600*Millisecond),
			ReconvergeDelay: 50 * Millisecond,
		}
		cfg.Routing.Mode = RoutingGlobal
		return cfg
	}
	cons, err := Run(mk(LookaheadConservative))
	if err != nil {
		t.Fatal(err)
	}
	adpt, err := Run(mk(LookaheadAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	if adpt.FaultEvents != cons.FaultEvents {
		t.Errorf("adaptive resolved %d fault events, conservative %d", adpt.FaultEvents, cons.FaultEvents)
	}
	if !reflect.DeepEqual(coreOf(cons), coreOf(adpt)) {
		t.Errorf("flow results diverged across a fault schedule\nconservative: %+v\nadaptive:     %+v",
			coreOf(cons), coreOf(adpt))
	}
	if adpt.Shard.WidenedWindows == 0 {
		t.Error("no widened windows despite quiet stretches around the fault")
	}
	if adpt.Blackholed == 0 {
		t.Error("no blackholed packets — the fault never took effect")
	}
}

// TestAdaptiveControlEventOnWidenedEdge: periodic snapshot ticks are
// control events landing at arbitrary instants relative to widened
// windows; the edge cap at the control engine's next event time means a
// tick always executes at a barrier with every shard's sub-tick work
// flushed. Snapshots must therefore be identical across modes — same
// count, same cumulative counters, same streaming percentiles.
func TestAdaptiveControlEventOnWidenedEdge(t *testing.T) {
	mk := func(mode LookaheadMode) Config {
		cfg := tiny(ProtoTCP, 30)
		cfg.Shards = 2
		cfg.Lookahead = mode
		cfg.MaxSimTime = 2 * Second
		// A prime-ish interval so ticks land mid-window, not on round
		// numbers the workload might also use.
		cfg.Metrics.SnapshotInterval = 73 * Millisecond
		return cfg
	}
	cons, err := Run(mk(LookaheadConservative))
	if err != nil {
		t.Fatal(err)
	}
	adpt, err := Run(mk(LookaheadAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	if len(adpt.Snapshots) == 0 {
		t.Fatal("no snapshots recorded")
	}
	if !reflect.DeepEqual(cons.Snapshots, adpt.Snapshots) {
		t.Errorf("snapshot series diverged: conservative %d snapshots, adaptive %d",
			len(cons.Snapshots), len(adpt.Snapshots))
	}
	if adpt.Shard.WidenedWindows == 0 {
		t.Error("no widened windows — the control-event cap was never exercised against a widened edge")
	}
}

// TestAdaptiveElisionReentry: a hotspot workload with no long flows
// leaves most shards idle most of the time — their wakeups are elided —
// yet every elided shard must re-enter the moment a cross-shard delivery
// lands in its heap (the commit happens at a barrier, so the next window
// sees the event). All flows completing proves no shard slept through a
// delivery.
func TestAdaptiveElisionReentry(t *testing.T) {
	cfg := tiny(ProtoTCP, 40)
	cfg.Shards = 4
	cfg.Lookahead = LookaheadAdaptive
	cfg.MaxSimTime = 5 * Second
	cfg.LongFraction = -1 // no long flows: boundaries go quiet between shorts
	cfg.HotspotFraction = 0.5
	cfg.HotspotHost = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 40 {
		t.Fatalf("spawned %d/40", res.Spawned)
	}
	if res.ShortSummary.Count != 40 {
		t.Errorf("only %d/40 short flows completed — an elided shard missed a delivery", res.ShortSummary.Count)
	}
	if res.Shard.ElidedWakeups == 0 {
		t.Error("no elided wakeups on a 4-shard hotspot workload")
	}
	if res.Shard.WidenedWindows == 0 {
		t.Error("no widened windows on a quiet-boundary workload")
	}
}

// TestAdaptiveQuietBoundary pins the headline perf claim in-repo: on the
// tracked quiet-boundary scenario (rack-local shorts, sparse arrivals, no
// long-flow background — ShardQuietBenchConfig, the same workload the
// BENCH.json shard-adaptive rows and the bench-smoke CI guard run),
// adaptive lookahead must cut barriers at least 2x versus conservative
// while producing identical flow-level Results. The barrier count is a
// virtual-time fact — a pure function of (Seed, Shards) — so this
// assertion is deterministic on any box, unlike wall-clock speedups.
func TestAdaptiveQuietBoundary(t *testing.T) {
	for _, n := range []int{2, 4} {
		cfg := ShardQuietBenchConfig(n, true)
		cons, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d conservative: %v", n, err)
		}
		cfg.Lookahead = LookaheadAdaptive
		adpt, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d adaptive: %v", n, err)
		}
		if a, b := coreOf(cons), coreOf(adpt); !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: adaptive flow results diverged from conservative on the quiet scenario", n)
		}
		cb, ab := cons.Shard.Barriers, adpt.Shard.Barriers
		if ab == 0 {
			t.Fatalf("shards=%d: adaptive run reports zero barriers", n)
		}
		if ratio := float64(cb) / float64(ab); ratio < 2 {
			t.Errorf("shards=%d: barrier ratio %.2f (conservative %d / adaptive %d), want >= 2",
				n, ratio, cb, ab)
		}
	}
}

// TestLookaheadValidation covers the knob's misuse surface: adaptive on
// a sequential run is a policy with nothing to act on, unknown modes are
// rejected, and weighted partitions demand a real partition.
func TestLookaheadValidation(t *testing.T) {
	seq := tiny(ProtoTCP, 10)
	seq.Lookahead = LookaheadAdaptive
	if _, err := Run(seq); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Errorf("adaptive without shards: err = %v, want mention of Shards", err)
	}

	bad := tiny(ProtoTCP, 10)
	bad.Shards = 2
	bad.Lookahead = "optimistic"
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("unknown lookahead mode: err = %v, want mention of lookahead", err)
	}

	w := tiny(ProtoTCP, 10)
	w.ShardWeights = []float64{1, 2, 3}
	if _, err := Run(w); err == nil || !strings.Contains(err.Error(), "ShardWeights") {
		t.Errorf("weights without shards: err = %v, want mention of ShardWeights", err)
	}

	neg := tiny(ProtoTCP, 10)
	neg.Shards = 2
	neg.ShardWeights = []float64{1, -1}
	if _, err := Run(neg); err == nil || !strings.Contains(err.Error(), "ShardWeights") {
		t.Errorf("negative weight: err = %v, want mention of ShardWeights", err)
	}
}

// TestWeightedPartitionRun: a weighted partition built from a profiling
// run's measured switch loads runs the same workload to the same
// flow-level results (the partition changes the interleaving, not the
// physics is too strong a claim — it changes outcomes like any shard
// count does — so the contract is the spawn/fault invariants plus
// determinism and a distinct Shape key for pooling).
func TestWeightedPartitionRun(t *testing.T) {
	base := tiny(ProtoTCP, 30)
	base.Shards = 2
	base.MaxSimTime = 2 * Second

	inst, err := NewRunInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(nil, base); err != nil {
		t.Fatal(err)
	}
	loads := inst.SwitchLoads()
	nz := 0
	for _, w := range loads {
		if w > 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("profiling run forwarded nothing")
	}

	weighted := base
	weighted.ShardWeights = loads
	weighted.Lookahead = LookaheadAdaptive
	a, err := Run(weighted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(weighted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("weighted adaptive run is nondeterministic")
	}
	if a.Spawned != 30 {
		t.Errorf("weighted run spawned %d/30", a.Spawned)
	}

	sa, err := base.Shape()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := weighted.Shape()
	if err != nil {
		t.Fatal(err)
	}
	if sa == sw {
		t.Error("weighted config shares the unweighted Shape key — pooling would reuse mismatched wiring")
	}
	if err := inst.Reset(weighted); err == nil {
		t.Error("unweighted instance accepted a weighted config")
	}
}
