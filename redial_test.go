package mmptcp

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/sim"
)

// deadPathFCT runs one cross-pod MPTCP flow (63 -> 0 on the small K=4
// tree) under a single agg-core cable cut that leaves core 0 with no way
// into pod 0 — the persistent-blackhole case local repair cannot heal,
// because the re-hash decision sits at the sender-side agg switches that
// never learn about the failure. Any subflow whose ports hash through
// core 0 is dead from 30ms until the 5s repair. Returns the flow's
// completion time and its re-dial accounting.
func deadPathFCT(t *testing.T, transport TransportConfig) (sim.Time, int, int) {
	t.Helper()
	eng := NewEngine()
	cfg := tiny(ProtoMPTCP, 1)
	cfg.Transport = transport
	net, err := NewNetwork(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Install(eng, faults.Target{
		Links: net.Links, Switches: net.Switches, SwitchLayers: net.SwitchLayers,
	}, faults.Config{
		Events:          faults.FailCables(netem.LayerAgg, 1, 30*sim.Millisecond, 5*sim.Second),
		ReconvergeDelay: 25 * sim.Millisecond,
	}, NewRNG(1), 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	net.SetDegraded(inj.Degraded)

	conn, err := Dial(eng, net, cfg, DialConfig{
		FlowID: 1,
		Src:    len(net.Hosts) - 1,
		Dst:    0,
		Size:   4 << 20,
		RNG:    NewRNGStream(1, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Start()
	eng.Run()
	if !conn.Receiver().Complete() {
		t.Fatal("flow never completed")
	}
	fct := conn.Receiver().CompletedAt
	redials, recovered := conn.RedialStats()
	conn.Close()
	return fct, redials, recovered
}

// TestRedialRecoversFromDeadPath is the tentpole's acceptance shape:
// with re-dialing off, a subflow pinned through the unreachable core
// waits out the whole outage in RTO backoff and the flow completes only
// after the 5s repair; with re-dialing on, the persistent-RTO escape
// tears the subflow down after two back-to-back timeouts, the
// replacement's fresh source port re-hashes onto a live core, and the
// flow finishes an order of magnitude earlier.
func TestRedialRecoversFromDeadPath(t *testing.T) {
	off, offRedials, _ := deadPathFCT(t, TransportConfig{})
	if offRedials != 0 {
		t.Fatalf("recovery off reported %d redials", offRedials)
	}
	if off < 5*sim.Second {
		t.Fatalf("baseline FCT %v finished before the 5s repair; no subflow was pinned through the dead core and the scenario exercises nothing", off)
	}

	on, redials, recovered := deadPathFCT(t, TransportConfig{DeadRTOs: 2, RedialBudget: 8})
	t.Logf("FCT off=%v on=%v redials=%d recovered=%d", off, on, redials, recovered)
	if redials == 0 || recovered == 0 {
		t.Fatalf("recovery on: redials=%d recovered=%d, want both > 0", redials, recovered)
	}
	if on >= off/2 {
		t.Errorf("re-dialing FCT %v not well under the RTO-backoff baseline %v", on, off)
	}
	if on >= 2500*sim.Millisecond {
		t.Errorf("re-dialing FCT %v; want completion long before the 5s repair", on)
	}
}

// redialSweepConfigs is the determinism suite for transport recovery:
// the PR-3 fault scenarios with re-dialing armed on both multipath
// transports, plus an MMPTCP config whose phase switches defer behind a
// staggered convergence window opened by an early cable cut.
func redialSweepConfigs() []Config {
	var configs []Config
	for _, proto := range []Protocol{ProtoMPTCP, ProtoMMPTCP} {
		cfg := tiny(proto, 40)
		cfg.MaxSimTime = 20 * Second
		cfg.Faults = FaultsConfig{
			Events:          FailCables(LayerAgg, 2, 150*Millisecond, 2500*Millisecond),
			ReconvergeDelay: 25 * Millisecond,
		}
		cfg.Transport = TransportConfig{DeadRTOs: 2, RedialBudget: 8}
		configs = append(configs, cfg)
	}
	defer1 := tiny(ProtoMMPTCP, 40)
	defer1.MaxSimTime = 20 * Second
	// The cut lands at 2ms so the staggered convergence window is open
	// while the long flows cross SwitchBytes (~8ms in): their phase
	// switches actually defer.
	defer1.Faults = FaultsConfig{
		Events:          FailCables(LayerAgg, 1, 2*Millisecond, 600*Millisecond),
		ReconvergeDelay: 20 * Millisecond,
	}
	defer1.Routing = RoutingConfig{
		Mode:        RoutingGlobal,
		Convergence: ConvergeStaggered,
		PerHopDelay: 5 * Millisecond,
	}
	defer1.Transport = TransportConfig{DeadRTOs: 2, DeferPhaseSwitch: true, MaxDefer: 40 * Millisecond}
	configs = append(configs, defer1)
	return configs
}

// TestRedialDeterminism locks in the tentpole's determinism contract:
// with recovery on, replacement source ports come from each flow's
// private RNG stream in event order, so a recovering sweep is
// byte-identical serial vs parallel and fresh vs pooled.
func TestRedialDeterminism(t *testing.T) {
	serial, err := RunSweep(redialSweepConfigs(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(redialSweepConfigs(), SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSweep(redialSweepConfigs(), SweepOptions{Workers: 4, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("config %d: recovering sweep diverged between 1 and 4 workers", i)
		}
		if !reflect.DeepEqual(serial[i], pooled[i]) {
			t.Errorf("config %d: recovering sweep diverged between fresh and pooled instances", i)
		}
	}
	// The dynamics actually ran: the local-repair configs re-dialed and
	// the staggered config deferred phase switches.
	for i, res := range serial[:2] {
		if res.Redials == 0 {
			t.Errorf("config %d re-dialed nothing under a 2.35s outage", i)
		}
	}
	if serial[2].PhaseDeferrals == 0 {
		t.Error("staggered config deferred no phase switches")
	}
}

// TestRecoveryOffByteIdentity pins the zero-cost contract: arming
// DeadRTOs changes neither the RNG draw sequence nor the event schedule
// until a re-dial actually fires, so a healthy run with recovery armed
// is byte-identical to the same run with recovery off.
func TestRecoveryOffByteIdentity(t *testing.T) {
	off, err := Run(tiny(ProtoMPTCP, 40))
	if err != nil {
		t.Fatal(err)
	}
	armed := tiny(ProtoMPTCP, 40)
	armed.Transport = TransportConfig{DeadRTOs: 3}
	on, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if on.Redials != 0 {
		t.Fatalf("healthy run re-dialed %d times; the identity check needs a redial-free scenario", on.Redials)
	}
	off.Config, on.Config = Config{}, Config{}
	if !reflect.DeepEqual(off, on) {
		t.Error("healthy run diverged between recovery off and recovery armed")
	}
}

// alwaysOpen is a convergence observer that never quiesces — the
// worst-case churn signal for the phase-switch deferral bound.
type alwaysOpen struct{}

func (alwaysOpen) ConvergenceOpen() bool { return true }

// TestDeferPhaseSwitchBounded drives one MMPTCP flow against an
// observer reporting permanently-open convergence and checks MaxDefer is
// a hard bound: the switch still happens, exactly MaxDefer after the
// first deferred attempt, after a non-trivial number of re-checks.
func TestDeferPhaseSwitchBounded(t *testing.T) {
	const maxDefer = 40 * sim.Millisecond
	run := func(observer ConvergenceObserver, transport TransportConfig) (sim.Time, int) {
		eng := NewEngine()
		cfg := tiny(ProtoMMPTCP, 1)
		cfg.Transport = transport
		if transport.DeferPhaseSwitch {
			cfg.Routing.Mode = RoutingGlobal
		}
		net, err := NewNetwork(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var obs = DialConfig{
			FlowID:   1,
			Src:      0,
			Dst:      len(net.Hosts) - 1,
			Size:     1 << 20,
			RNG:      NewRNGStream(1, 7),
			Observer: nil,
		}
		if observer != nil {
			obs.Observer = alwaysOpen{}
		}
		conn, err := Dial(eng, net, cfg, obs)
		if err != nil {
			t.Fatal(err)
		}
		conn.Start()
		eng.Run()
		mc, ok := MMPTCPConn(conn)
		if !ok {
			t.Fatal("not an MMPTCP connection")
		}
		if !mc.Switched() {
			t.Fatal("flow never entered phase two")
		}
		at, deferrals := mc.SwitchedAt(), mc.Deferrals()
		conn.Close()
		return at, deferrals
	}

	base, baseDefers := run(nil, TransportConfig{})
	if baseDefers != 0 {
		t.Fatalf("undeferred run recorded %d deferrals", baseDefers)
	}
	at, deferrals := run(alwaysOpen{}, TransportConfig{DeferPhaseSwitch: true, MaxDefer: maxDefer})
	t.Logf("switch at %v undeferred, %v under open convergence (%d deferrals)", base, at, deferrals)
	if deferrals < 2 {
		t.Errorf("deferrals = %d, want repeated re-checks before the forced switch", deferrals)
	}
	if at != base+maxDefer {
		t.Errorf("deferred switch at %v, want exactly MaxDefer past the undeferred switch at %v", at, base+maxDefer)
	}
}
