package mmptcp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// sweepTestConfigs is a small but heterogeneous scan: three protocols,
// two arrival rates, fixed seeds — enough to catch any cross-run state
// leakage without taking minutes. Every config carries a tight MaxSimTime
// so a run that cannot complete its flows (single-path TCP under loss can
// strand one) still ends quickly and deterministically.
func sweepTestConfigs() []Config {
	var configs []Config
	add := func(proto Protocol, rate float64) {
		cfg := SmallConfig(proto, 30)
		cfg.ArrivalRate = rate
		cfg.Seed = 7
		cfg.MaxSimTime = 4 * Second
		configs = append(configs, cfg)
	}
	add(ProtoTCP, 2.5)
	add(ProtoMPTCP, 2.5)
	add(ProtoMPTCP, 5)
	add(ProtoMMPTCP, 2.5)
	add(ProtoMMPTCP, 5)
	return configs
}

// TestRunSweepDeterminism is the serial-vs-parallel guarantee: the same
// configs produce byte-identical measurements no matter how many workers
// the sweep uses, and identical to plain serial Run calls.
func TestRunSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep in -short mode")
	}
	configs := sweepTestConfigs()

	serial := make([]*Results, len(configs))
	for i, cfg := range configs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = res
	}

	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		got, err := RunSweep(configs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i].ShortSummary != serial[i].ShortSummary {
				t.Errorf("workers=%d run %d: ShortSummary %+v != serial %+v",
					workers, i, got[i].ShortSummary, serial[i].ShortSummary)
			}
			if got[i].LongThroughputMbps != serial[i].LongThroughputMbps {
				t.Errorf("workers=%d run %d: LongThroughputMbps %v != serial %v",
					workers, i, got[i].LongThroughputMbps, serial[i].LongThroughputMbps)
			}
			if !reflect.DeepEqual(got[i].ShortFlows, serial[i].ShortFlows) {
				t.Errorf("workers=%d run %d: per-flow records differ from serial", workers, i)
			}
			if got[i].Events != serial[i].Events {
				t.Errorf("workers=%d run %d: Events %d != serial %d",
					workers, i, got[i].Events, serial[i].Events)
			}
		}
	}
}

// TestRunSweepSeedDerivation checks SweepOptions.Seed: zero-seed configs
// get deterministic, distinct derived seeds; explicit seeds are kept.
func TestRunSweepSeedDerivation(t *testing.T) {
	mk := func() []Config {
		a := SmallConfig(ProtoMPTCP, 20) // Seed 0: derived
		b := SmallConfig(ProtoMPTCP, 20) // Seed 0: derived, must differ from a
		c := SmallConfig(ProtoMPTCP, 20)
		c.Seed = 99 // explicit: untouched
		return []Config{a, b, c}
	}
	first, err := RunSweep(mk(), SweepOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSweep(mk(), SweepOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Config.Seed != second[i].Config.Seed {
			t.Errorf("run %d: derived seed not reproducible: %d vs %d",
				i, first[i].Config.Seed, second[i].Config.Seed)
		}
	}
	if first[0].Config.Seed == first[1].Config.Seed {
		t.Errorf("runs 0 and 1 derived the same seed %d", first[0].Config.Seed)
	}
	if first[2].Config.Seed != 99 {
		t.Errorf("explicit seed overwritten: got %d, want 99", first[2].Config.Seed)
	}
}

// TestRunSweepFirstErrorCancels puts an invalid config mid-sweep and
// checks the error carries its index and the sweep aborts.
func TestRunSweepFirstErrorCancels(t *testing.T) {
	configs := make([]Config, 6)
	for i := range configs {
		configs[i] = SmallConfig(ProtoMPTCP, 20)
		configs[i].Seed = uint64(i + 1)
	}
	configs[2].Protocol = "bogus"
	_, err := RunSweep(configs, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("sweep with invalid config succeeded")
	}
	if want := "job 2"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want it to name %q", err, want)
	}
}

// TestRunSweepContextCancellation cancels mid-sweep and checks in-flight
// simulations abort instead of running to completion.
func TestRunSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	configs := make([]Config, 8)
	for i := range configs {
		configs[i] = SmallConfig(ProtoMPTCP, 60) // long enough to be in flight
		configs[i].Seed = uint64(i + 1)
	}
	var fired bool
	_, err := RunSweep(configs, SweepOptions{
		Workers: 2,
		Context: ctx,
		OnResult: func(done, total, index int) {
			if !fired {
				fired = true
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunSweepProgress checks OnResult fires once per run with a strictly
// increasing done counter.
func TestRunSweepProgress(t *testing.T) {
	configs := make([]Config, 5)
	for i := range configs {
		configs[i] = SmallConfig(ProtoMPTCP, 20)
		configs[i].Seed = uint64(i + 1)
	}
	last := 0
	seen := make(map[int]bool)
	_, err := RunSweep(configs, SweepOptions{
		Workers: 3,
		OnResult: func(done, total, index int) {
			if done != last+1 || total != len(configs) {
				t.Errorf("OnResult(done=%d, total=%d) after done=%d", done, total, last)
			}
			last = done
			if seen[index] {
				t.Errorf("OnResult fired twice for run %d", index)
			}
			seen[index] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(configs) {
		t.Errorf("OnResult fired %d times, want %d", last, len(configs))
	}
}

func ExampleRunSweep() {
	// Figure 1(a)'s scan — MPTCP short-flow FCT vs subflow count — as
	// one parallel sweep. Tiny scale so the example runs fast.
	configs := make([]Config, 3)
	for i := range configs {
		configs[i] = SmallConfig(ProtoMPTCP, 20)
		configs[i].Subflows = 1 << i // 1, 2, 4
		configs[i].Seed = 1
	}
	results, err := RunSweep(configs, SweepOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, res := range results {
		fmt.Printf("subflows=%d completed=%d\n",
			configs[i].Subflows, res.ShortSummary.Count)
	}
	// Output:
	// subflows=1 completed=20
	// subflows=2 completed=20
	// subflows=4 completed=20
}
