// Package mmptcp is a packet-level simulation study of MMPTCP — "Short
// vs. Long Flows: A Battle That Both Can Win" (Kheirkhah, Wakeman,
// Parisis; SIGCOMM 2015) — implemented entirely in Go on a custom
// discrete-event simulator.
//
// MMPTCP is a hybrid data-centre transport: it opens in a Packet Scatter
// phase (per-packet source-port randomisation under a single TCP window,
// spraying packets across all ECMP paths — good for latency-sensitive
// short flows), then switches to standard MPTCP with LIA coupled
// congestion control (good for bandwidth-hungry long flows).
//
// This package is the public API: describe an experiment with Config —
// topology (the paper's 512-server 4:1 over-subscribed FatTree or
// smaller variants), protocol (TCP, MPTCP with N subflows, MMPTCP with
// either switching strategy) and workload (permutation traffic matrix,
// one third of servers running long background flows, the rest sending
// 70 KB short flows with Poisson arrivals) — and Run it to obtain
// per-flow completion times, per-layer loss rates, long-flow throughput
// and link utilisation.
//
// The internal packages implement the substrates: internal/sim (event
// engine), internal/netem (links, queues, ECMP switches), internal/
// topology (FatTree and friends), internal/tcp (NewReno), internal/mptcp
// (LIA), internal/core (MMPTCP itself), internal/workload and
// internal/metrics.
package mmptcp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Protocol selects the transport under test.
type Protocol string

// Supported protocols.
const (
	ProtoTCP    Protocol = "tcp"    // single-path NewReno over per-flow ECMP
	ProtoMPTCP  Protocol = "mptcp"  // MPTCP with Subflows subflows and LIA
	ProtoMMPTCP Protocol = "mmptcp" // the paper's hybrid (PS then MPTCP)
	// ProtoDCTCP is the single-path DCTCP baseline (the §1 class of
	// latency-oriented transports that need switch ECN support).
	// Selecting it enables ECN marking on every link (ECNThreshold).
	ProtoDCTCP Protocol = "dctcp"
)

// LookaheadMode selects the sharded engine's synchronization window
// policy (Config.Lookahead). Irrelevant — and "adaptive" rejected — for
// sequential runs (Shards <= 1), which have no synchronization window.
type LookaheadMode string

// Lookahead policies.
const (
	// LookaheadConservative (the default) pins every window to the
	// minimum boundary-link propagation delay — PR 8's engine,
	// byte-identical to before the adaptive mode existed.
	LookaheadConservative LookaheadMode = "conservative"
	// LookaheadAdaptive widens each shard's window to the other shards'
	// earliest-output-time promises when boundary traffic is quiet, and
	// elides barrier wakeups for shards with nothing to do. Runs remain
	// deterministic per (Seed, Shards); final flow-level results match
	// conservative runs (pinned by TestAdaptiveMatchesConservative),
	// while cumulative counters (Results.Events, link totals) differ
	// within the documented post-Stop window overrun. Prefer it when
	// barriers dominate (coarse flows, quiet boundaries); prefer
	// conservative when reproducing PR 8 numbers bit-for-bit.
	LookaheadAdaptive LookaheadMode = "adaptive"
)

// TopologyKind selects the simulated network.
type TopologyKind string

// Supported topologies.
const (
	TopoFatTree    TopologyKind = "fattree"    // k-ary FatTree (paper: K=8, 16 hosts/edge)
	TopoMultiHomed TopologyKind = "multihomed" // dual-homed FatTree (paper roadmap)
	TopoDumbbell   TopologyKind = "dumbbell"   // two switches, one bottleneck
	TopoVL2        TopologyKind = "vl2"        // VL2-style Clos with a 10x fabric
)

// RoutingConfig is the routing section of Config: which repair model
// runs under failures and how recomputed tables reach the switches.
// The zero value is the PR-2 baseline — local repair, atomic flips.
type RoutingConfig struct {
	// Mode selects the repair model. RoutingLocal (the default) is
	// link-local reconvergence: each switch stops using its own dead
	// links but upstream ECMP stays oblivious, so traffic keeps hashing
	// onto next hops with no way forward (NoRouteDrops). RoutingGlobal
	// installs the control plane that recomputes global reachability
	// after each reconvergence-delayed link state change and steers ECMP
	// around unreachable next hops.
	Mode RoutingMode

	// Convergence picks how the control plane's recomputed tables reach
	// the switches: ConvergeAtomic (default) flips every switch at
	// recompute time; ConvergeStaggered gives each switch its own FIB
	// flip time — recompute time plus PerHopDelay per hop from the
	// nearest failed element — opening the micro-loop and transient-
	// blackhole window real control planes exhibit (accounted in
	// Results.Routing and Results.LoopDrops). Staggered convergence
	// requires Mode RoutingGlobal.
	Convergence ConvergenceMode
	// PerHopDelay is the staggered flip delay per hop of distance from
	// the transition; zero makes staggered degenerate to atomic exactly.
	// Must not be negative.
	PerHopDelay SimTime

	// HoldDown enables flap damping in the control plane: a link whose
	// routing state transitions more than FlapThreshold times within
	// this trailing window stops triggering immediate recomputes; its
	// pending flips fold into one deferred rebuild at window expiry.
	// Zero disables damping.
	HoldDown SimTime
	// FlapThreshold is the number of transitions inside one hold-down
	// window a link may make before it is damped; defaults to 3 when
	// HoldDown is set.
	FlapThreshold int
}

// TransportConfig is the transport-recovery section of Config: whether
// and how the transports react to persistent path failures instead of
// backing off on RTOs until repair. The zero value is off — recovery
// disabled — and off really is off: no extra RNG draws, no extra engine
// events, results byte-identical to builds without the subsystem (the
// recovery-off byte-identity suite pins this).
//
// With DeadRTOs > 0, an MPTCP/MMPTCP subflow that fires that many
// consecutive RTOs without an intervening new ACK is declared dead: its
// sender is closed, its unacknowledged data-level allocation migrates
// back to the connection for re-pull, and a replacement subflow is
// dialed on a fresh randomised source port — re-hashing the 5-tuple
// onto a hopefully-live ECMP path — re-entering LIA coupling. Repeat
// deaths of the same subflow slot back off capped-exponentially
// (RedialBackoff base), and each connection spends at most RedialBudget
// re-dial attempts. Plain TCP and DCTCP have one path and never
// re-dial; the knobs are accepted under any protocol so one experiment
// config can compare transports.
//
// Determinism: replacement source ports are drawn from the
// connection's own per-flow RNG stream, consumed in event order, so
// recovery-on runs are deterministic per (Seed, Shards) and recovery
// stays out of every other flow's draw sequence.
type TransportConfig struct {
	// DeadRTOs is the consecutive-RTO threshold declaring a subflow's
	// path dead. Zero disables recovery; negative is rejected.
	DeadRTOs int
	// RedialBackoff is the base delay between repeated re-dials of the
	// same subflow slot: the first replacement dials immediately, the
	// k-th waits min(RedialBackoff << (k-2), 16*RedialBackoff).
	// Defaults to 10ms when DeadRTOs is set; setting it with recovery
	// off is rejected.
	RedialBackoff SimTime
	// RedialBudget caps re-dial attempts per connection; defaults to 4
	// when DeadRTOs is set. A connection out of budget leaves its
	// stalled subflows backing off as if recovery were off. Setting it
	// with recovery off is rejected.
	RedialBudget int
	// DeferPhaseSwitch holds MMPTCP's packet-scatter→subflow switch
	// open while the routing control plane reports an unconverged state
	// (pending recompute, hold-down, or staged FIB flips), so fresh
	// subflows are not pinned onto mid-flip tables. Requires
	// Routing.Mode global — local repair exposes no convergence signal.
	DeferPhaseSwitch bool
	// MaxDefer bounds the deferral: the switch is forced this long
	// after the first postponement even under sustained churn. Defaults
	// to 50ms when DeferPhaseSwitch is set; setting it without
	// DeferPhaseSwitch is rejected.
	MaxDefer SimTime
}

// Active reports whether any recovery mechanism is armed.
func (t TransportConfig) Active() bool {
	return t.DeadRTOs > 0 || t.DeferPhaseSwitch
}

// MetricsMode selects how Run accumulates per-flow measurements.
type MetricsMode string

// Metrics accumulation modes.
const (
	// MetricsExact (the default) retains one FlowRecord per flow —
	// Results.ShortFlows in spawn order, summarised by sorting the full
	// FCT slice. Memory is O(flows); percentiles are exact. This mode is
	// the oracle the streaming mode is tested against.
	MetricsExact MetricsMode = "exact"
	// MetricsStreaming accumulates short flows into log-bucketed
	// streaming histograms: Results.ShortFlows stays nil and memory is
	// O(1) in flow count, so million-flow sweep replicates cost the same
	// as thousand-flow ones. Counts, mean, stddev, min and max stay
	// exact; percentiles carry a relative error of at most
	// 2^-HistPrecision (see MetricsConfig.HistPrecision).
	MetricsStreaming MetricsMode = "streaming"
)

// MetricsConfig is the measurement section of Config: how per-flow
// results are accumulated and whether the run records a rolling
// time series. The zero value is the historical behaviour — exact
// per-flow records, no snapshots.
type MetricsConfig struct {
	// Mode selects exact per-flow records (default) or O(1)-memory
	// streaming accumulation; see MetricsMode.
	Mode MetricsMode

	// HistPrecision is the streaming histogram's sub-bucket precision in
	// bits: quantile error is bounded by 2^-HistPrecision of the true
	// order statistic. Zero means metrics.DefaultHistPrecision (10 bits,
	// <0.1% error); values outside [metrics.MinHistPrecision,
	// metrics.MaxHistPrecision] are rejected. Used by streaming mode and
	// by snapshot percentiles in either mode.
	HistPrecision int

	// SnapshotInterval, when positive, records a cumulative Snapshot of
	// the run every interval of virtual time into Results.Snapshots:
	// short-flow percentile trajectories plus drop and routing counters.
	// Zero disables (the default); negative is rejected. Enabling
	// snapshots schedules extra engine events, so Results.Events shifts
	// relative to a snapshot-free run; everything else is unchanged.
	SnapshotInterval sim.Time
}

// TraceMode selects how the structured event recorder stores events.
type TraceMode string

// Trace recording modes.
const (
	// TraceOff disables the recorder entirely (the default). Trace
	// points stay compiled in but cost one nil check each; the hot path
	// is allocation-identical to a build without tracing.
	TraceOff TraceMode = ""
	// TraceRing keeps the newest Trace.Buffer events in a preallocated
	// ring — a flight recorder: O(1) memory however long the run, the
	// tail of history available when something goes wrong.
	TraceRing TraceMode = "ring"
	// TraceFull retains every recorded event (up to Trace.MaxEvents) for
	// complete timelines of small runs.
	TraceFull TraceMode = "full"
)

// Default trace storage sizes (see TraceConfig).
const (
	// DefaultTraceBuffer is the ring capacity when Trace.Buffer is zero.
	DefaultTraceBuffer = 65536
	// DefaultTraceMaxEvents caps full-mode retention when
	// Trace.MaxEvents is zero.
	DefaultTraceMaxEvents = 1 << 20
)

// TraceConfig is the observability section of Config: whether a run
// records a structured event trace, how events are stored, and which
// flows are kept. The zero value is off — and off really is free: every
// trace point reduces to a nil-receiver check, pinned by the
// allocation-free forwarding tests and the engine-throughput benchmark.
//
// Tracing observes and never perturbs: a traced run's Results are
// byte-identical to the same config untraced (trace storage lives
// outside the packet pools and consumes no RNG).
type TraceConfig struct {
	// Mode selects off (default), ring, or full storage; the string
	// "off" is accepted as a spelled-out zero value.
	Mode TraceMode

	// Buffer is the ring capacity in events (TraceRing only); zero
	// means DefaultTraceBuffer. One event is 48 bytes, so the default
	// ring holds ~3 MB regardless of run length.
	Buffer int

	// Flows, when non-empty, restricts flow-scoped events to the listed
	// flow IDs (flow IDs start at 1, in spawn order: long flows first).
	// Fabric and control-plane events (drops attributable to no flow,
	// link state, FIB flips, recomputes, faults) are always recorded.
	Flows []uint64

	// MaxEvents bounds full-mode retention; zero means
	// DefaultTraceMaxEvents. Events beyond the cap are counted
	// (Recorder.Lost) but not stored.
	MaxEvents int
}

// recorderOptions translates the public trace section into the
// recorder's own options. Call only after applyDefaults.
func (c *Config) recorderOptions() trace.Options {
	mode := trace.Ring
	if c.Trace.Mode == TraceFull {
		mode = trace.Full
	}
	return trace.Options{
		Mode:      mode,
		Buffer:    c.Trace.Buffer,
		MaxEvents: c.Trace.MaxEvents,
		Flows:     c.Trace.Flows,
	}
}

// Config describes one experiment. The zero value is not runnable; use
// PaperConfig or SmallConfig as starting points, or fill the required
// fields (Protocol, ShortFlows, ArrivalRate).
type Config struct {
	// Topology.
	Topology     TopologyKind // default TopoFatTree
	K            int          // FatTree arity; default 8
	HostsPerEdge int          // hosts per edge switch; default 2*K (4:1 over-subscription)
	LinkRateBps  int64        // default 100 Mb/s
	LinkDelay    sim.Time     // default 20 us per hop
	// QueueLimit is the per-port drop-tail buffer in packets. Default
	// 30 (~3.6 ms of drain at 100 Mb/s): deep enough for bursts, small
	// enough that short flows are not buried in bufferbloat — the
	// regime in which the paper's dynamics (loss -> RTO tails for
	// MPTCP's small subflow windows, reordering-tolerant scatter for
	// MMPTCP) play out.
	QueueLimit int
	// BottleneckBps overrides the inter-switch link rate on the
	// dumbbell topology (0 = same as LinkRateBps). Ignored elsewhere.
	BottleneckBps int64
	// ECNThreshold enables DCTCP-style marking on every queue when
	// positive (packets). Defaults to 10 when Protocol is dctcp.
	ECNThreshold int

	// Protocol.
	Protocol    Protocol
	Subflows    int           // MPTCP/MMPTCP subflows; default 8
	Strategy    core.Strategy // MMPTCP switching strategy
	SwitchBytes int64         // MMPTCP data-volume threshold; default 100 KB
	// PSThreshold selects the packet-scatter duplicate-ACK threshold
	// policy: topology-derived (default) or RR-TCP-like adaptive.
	PSThreshold core.ThresholdMode
	// SACK enables selective-acknowledgement recovery on every sender
	// (ablation: the paper's ns-3 models were NewReno-style).
	SACK bool
	TCP  tcp.Config // segment sizes, RTO bounds; zero fields take defaults

	// Workload: the paper's Figure 1 setup.
	LongFraction  float64  // fraction of hosts running long flows; default 1/3; negative = none
	ShortFlowSize int64    // default 70 KB
	ShortFlows    int      // number of short flows to spawn (required)
	ArrivalRate   float64  // short flows per second per short sender (required)
	Warmup        sim.Time // long-flow head start; default 100 ms

	// Hotspot (roadmap experiment): fraction of short senders
	// redirected to HotspotHost. Zero disables.
	HotspotFraction float64
	HotspotHost     int

	// LocalFraction rewires that fraction of short senders (taken from
	// the opposite end of the sender list to HotspotFraction's) to a
	// partner under the same edge switch — the rack-local share of the
	// traffic matrix. Local flows never cross the aggregation layer,
	// so boundaries between fabric shards stay quiet. Zero disables.
	LocalFraction float64

	// Deadline is the completion deadline against which short flows are
	// scored (Results.DeadlineMissRate); default 200 ms, a typical
	// partition/aggregate budget from the literature the paper cites.
	Deadline sim.Time

	// Faults schedules network dynamics — link failures, repairs,
	// switch crashes, capacity/delay degradation and random loss —
	// applied while the run executes, plus the routing reconvergence
	// delay that opens a blackhole window after each state change. The
	// zero value leaves the network permanently healthy. Fault
	// randomness (model sampling, loss draws) comes from an RNG stream
	// derived from Seed that is disjoint from the workload's, so adding
	// faults never perturbs the traffic pattern, and RunSweep carries
	// the section unchanged. See FaultsConfig and FailCables.
	Faults FaultsConfig

	// Routing selects the repair and convergence model under failures;
	// see RoutingConfig. Irrelevant on a healthy network: the control
	// plane is only installed when Faults is active, so the healthy hot
	// path is identical in every mode.
	Routing RoutingConfig

	// Transport arms transport-layer failure recovery — subflow
	// re-dialing after persistent RTOs and convergence-aware phase
	// switching; see TransportConfig. The zero value disables both and
	// leaves every run byte-identical to builds without the subsystem.
	Transport TransportConfig

	// Metrics selects exact vs streaming measurement accumulation and
	// optional rolling snapshots; see MetricsConfig. The zero value keeps
	// per-flow records (the historical behaviour).
	Metrics MetricsConfig

	// Trace enables the structured event recorder — a typed flight
	// recorder over transports, queues, routing and faults; see
	// TraceConfig. The zero value is off and costs nothing.
	Trace TraceConfig

	// Control.
	Seed       uint64
	MaxSimTime sim.Time // safety cap; default 300 s of virtual time

	// Shards partitions the fabric across that many event engines run in
	// parallel under conservative lookahead (per-pod on FatTrees,
	// contiguous switch groups otherwise). 0 and 1 run the sequential
	// engine unchanged. Runs are deterministic for a fixed (Seed, Shards):
	// cross-shard deliveries commit in (time, source shard, send order) —
	// see internal/shard and the README's "Parallel engine" section.
	// Negative values are rejected, as is a shard count exceeding the
	// topology's switch count. Layer-wide loss degradation (a Degrade
	// fault with Index -1 and LossRate > 0) shares one RNG across the
	// whole layer and is rejected with Shards > 1; per-cable degradation
	// (DegradeCables) composes fine.
	Shards int

	// Lookahead selects the sharded engine's window policy; see
	// LookaheadMode. Default conservative. Adaptive requires Shards > 1
	// (a policy knob on the sequential engine would silently do
	// nothing).
	Lookahead LookaheadMode

	// ShardWeights, when non-empty, weights the fabric partition by
	// per-switch load instead of switch count: a slice parallel to the
	// built topology's switches (typically RunInstance.SwitchLoads from
	// a profiling run of the same workload), balancing summed weight
	// across shard groups while preserving the structural constraints
	// (FatTree pods stay whole). Requires Shards > 1; weights must be
	// finite and non-negative with a positive total. The partition — and
	// therefore the run's event interleaving — changes with the weights,
	// so runs are deterministic per (Seed, Shards, ShardWeights).
	ShardWeights []float64
}

// PaperConfig returns the full-scale setup from the paper's Figure 1:
// 512 servers, 4:1 over-subscription, one third long senders, 70 KB
// short flows. flows sets how many short flows to run (the paper plots
// 100,000; that takes a while — see EXPERIMENTS.md).
func PaperConfig(proto Protocol, flows int) Config {
	return Config{
		Topology:     TopoFatTree,
		K:            8,
		HostsPerEdge: 16,
		Protocol:     proto,
		ShortFlows:   flows,
		ArrivalRate:  2.5,
	}
}

// SmallConfig returns a laptop-scale variant preserving the paper's
// shape: a 4:1 over-subscribed K=4 FatTree with 64 hosts.
func SmallConfig(proto Protocol, flows int) Config {
	return Config{
		Topology:     TopoFatTree,
		K:            4,
		HostsPerEdge: 8,
		Protocol:     proto,
		ShortFlows:   flows,
		ArrivalRate:  2.5,
	}
}

func (c *Config) applyDefaults() error {
	if c.Topology == "" {
		c.Topology = TopoFatTree
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.HostsPerEdge == 0 {
		// 2*K hosts per edge switch is the paper's 4:1 edge
		// over-subscription at any FatTree arity (16 hosts/edge at K=8).
		c.HostsPerEdge = 2 * c.K
	}
	if c.LinkRateBps == 0 {
		c.LinkRateBps = 100_000_000
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 20 * sim.Microsecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 30
	}
	if c.Subflows == 0 {
		c.Subflows = 8
	}
	if c.SwitchBytes == 0 {
		c.SwitchBytes = 100_000
	}
	if c.LongFraction == 0 {
		c.LongFraction = 1.0 / 3
	}
	if c.ShortFlowSize == 0 {
		c.ShortFlowSize = 70_000
	}
	if c.Warmup == 0 {
		c.Warmup = 100 * sim.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = 200 * sim.Millisecond
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 300 * sim.Second
	}
	switch c.Protocol {
	case ProtoTCP, ProtoMPTCP, ProtoMMPTCP:
	case ProtoDCTCP:
		if c.ECNThreshold == 0 {
			c.ECNThreshold = 10
		}
	default:
		return fmt.Errorf("mmptcp: unknown protocol %q", c.Protocol)
	}
	mode, err := routing.ParseMode(string(c.Routing.Mode))
	if err != nil {
		return fmt.Errorf("mmptcp: %w", err)
	}
	c.Routing.Mode = mode
	conv, err := routing.ParseConvergence(string(c.Routing.Convergence))
	if err != nil {
		return fmt.Errorf("mmptcp: %w", err)
	}
	c.Routing.Convergence = conv
	// The value-level rules (negative delays, threshold without window,
	// per-hop delay under atomic) live in one place: routing.Config.
	// Checking here — not only at Install — rejects a bad section even
	// on runs that never install a control plane.
	if err := c.routingConfig().Validate(); err != nil {
		return fmt.Errorf("mmptcp: %w", err)
	}
	// The cross-field rules involving Mode are mmptcp's: everything the
	// control plane implements needs the control plane installed.
	if mode != RoutingGlobal {
		if conv == ConvergeStaggered {
			return fmt.Errorf("mmptcp: staggered convergence requires Routing.Mode %q (local repair has no control plane to stage)", RoutingGlobal)
		}
		if c.Routing.HoldDown > 0 {
			return fmt.Errorf("mmptcp: Routing.HoldDown requires Routing.Mode %q (local repair has no control plane to damp)", RoutingGlobal)
		}
	}
	// Transport recovery: value rules first, then the knobs-while-off
	// rejections (a backoff or budget on disabled recovery would
	// silently do nothing), then the cross-field Mode rule, and only
	// then the defaults for armed mechanisms.
	if c.Transport.DeadRTOs < 0 {
		return fmt.Errorf("mmptcp: negative Transport.DeadRTOs %d (0 disables recovery)", c.Transport.DeadRTOs)
	}
	if c.Transport.RedialBackoff < 0 {
		return fmt.Errorf("mmptcp: negative Transport.RedialBackoff %v", c.Transport.RedialBackoff)
	}
	if c.Transport.RedialBudget < 0 {
		return fmt.Errorf("mmptcp: negative Transport.RedialBudget %d", c.Transport.RedialBudget)
	}
	if c.Transport.MaxDefer < 0 {
		return fmt.Errorf("mmptcp: negative Transport.MaxDefer %v", c.Transport.MaxDefer)
	}
	if c.Transport.DeadRTOs == 0 && (c.Transport.RedialBackoff != 0 || c.Transport.RedialBudget != 0) {
		return fmt.Errorf("mmptcp: Transport.RedialBackoff/RedialBudget set but Transport.DeadRTOs is 0 (re-dialing off)")
	}
	if !c.Transport.DeferPhaseSwitch && c.Transport.MaxDefer != 0 {
		return fmt.Errorf("mmptcp: Transport.MaxDefer set but Transport.DeferPhaseSwitch is off")
	}
	if c.Transport.DeferPhaseSwitch && mode != RoutingGlobal {
		return fmt.Errorf("mmptcp: Transport.DeferPhaseSwitch requires Routing.Mode %q (local repair exposes no convergence signal)", RoutingGlobal)
	}
	if c.Transport.DeadRTOs > 0 {
		if c.Transport.RedialBackoff == 0 {
			c.Transport.RedialBackoff = 10 * sim.Millisecond
		}
		if c.Transport.RedialBudget == 0 {
			c.Transport.RedialBudget = 4
		}
	}
	if c.Transport.DeferPhaseSwitch && c.Transport.MaxDefer == 0 {
		c.Transport.MaxDefer = 50 * sim.Millisecond
	}
	if c.Faults.ReconvergeDelay < 0 {
		return fmt.Errorf("mmptcp: negative Faults.ReconvergeDelay %v", c.Faults.ReconvergeDelay)
	}
	if c.Shards < 0 {
		return fmt.Errorf("mmptcp: negative Shards %d", c.Shards)
	}
	switch c.Lookahead {
	case "":
		c.Lookahead = LookaheadConservative
	case LookaheadConservative:
	case LookaheadAdaptive:
		if c.Shards <= 1 {
			return fmt.Errorf("mmptcp: Lookahead %q requires Shards > 1 (the sequential engine has no synchronization window)", c.Lookahead)
		}
	default:
		return fmt.Errorf("mmptcp: unknown lookahead mode %q (want %q or %q)",
			c.Lookahead, LookaheadConservative, LookaheadAdaptive)
	}
	if len(c.ShardWeights) > 0 && c.Shards <= 1 {
		return fmt.Errorf("mmptcp: ShardWeights set but Shards is %d (no partition to weight)", c.Shards)
	}
	for i, w := range c.ShardWeights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("mmptcp: ShardWeights[%d] = %v (weights must be finite and non-negative)", i, w)
		}
	}
	if c.Shards > 1 {
		for i, ev := range c.Faults.Events {
			if ev.Kind == FaultDegrade && ev.Index == -1 && ev.LossRate > 0 {
				return fmt.Errorf("mmptcp: Faults.Events[%d]: layer-wide loss degradation (Index -1, LossRate %v) shares one RNG across the layer and cannot run with Shards %d; target individual cables (DegradeCables) instead",
					i, ev.LossRate, c.Shards)
			}
		}
	}
	switch c.Metrics.Mode {
	case "":
		c.Metrics.Mode = MetricsExact
	case MetricsExact, MetricsStreaming:
	default:
		return fmt.Errorf("mmptcp: unknown metrics mode %q (want %q or %q)",
			c.Metrics.Mode, MetricsExact, MetricsStreaming)
	}
	if c.Metrics.HistPrecision == 0 {
		c.Metrics.HistPrecision = metrics.DefaultHistPrecision
	}
	if p := c.Metrics.HistPrecision; p < metrics.MinHistPrecision || p > metrics.MaxHistPrecision {
		return fmt.Errorf("mmptcp: Metrics.HistPrecision %d outside [%d, %d]",
			p, metrics.MinHistPrecision, metrics.MaxHistPrecision)
	}
	if c.Metrics.SnapshotInterval < 0 {
		return fmt.Errorf("mmptcp: negative Metrics.SnapshotInterval %v", c.Metrics.SnapshotInterval)
	}
	switch c.Trace.Mode {
	case "off": // spelled-out zero value
		c.Trace.Mode = TraceOff
	case TraceOff, TraceRing, TraceFull:
	default:
		return fmt.Errorf("mmptcp: unknown trace mode %q (want %q, %q or %q)",
			c.Trace.Mode, "off", TraceRing, TraceFull)
	}
	if c.Trace.Buffer < 0 {
		return fmt.Errorf("mmptcp: negative Trace.Buffer %d", c.Trace.Buffer)
	}
	if c.Trace.MaxEvents < 0 {
		return fmt.Errorf("mmptcp: negative Trace.MaxEvents %d", c.Trace.MaxEvents)
	}
	if c.Trace.Mode == TraceOff {
		// A sized buffer or a flow filter on a disabled trace is a config
		// bug (the knobs would silently do nothing); reject it loudly.
		if c.Trace.Buffer != 0 || c.Trace.MaxEvents != 0 || len(c.Trace.Flows) != 0 {
			return fmt.Errorf("mmptcp: Trace.Buffer/MaxEvents/Flows set but Trace.Mode is off")
		}
	} else {
		if c.Trace.Buffer == 0 {
			c.Trace.Buffer = DefaultTraceBuffer
		}
		if c.Trace.MaxEvents == 0 {
			c.Trace.MaxEvents = DefaultTraceMaxEvents
		}
	}
	return nil
}

// Shape is the comparable structural key run-instance pooling uses: the
// Config fields that determine the built engine+network (topology kind
// and size, link parameters, queueing, ECN). Two Configs with equal
// Shapes can recycle one instance; everything else — protocol, workload,
// faults, routing, metrics, seed — is per-run state that RunInstance
// reset restores.
type Shape struct {
	Topology      TopologyKind
	K             int
	HostsPerEdge  int
	LinkRateBps   int64
	LinkDelay     sim.Time
	QueueLimit    int
	BottleneckBps int64
	ECNThreshold  int
	// Shards is structural: the partition wiring (per-shard engines,
	// pools, outbox routing) is built with the instance, so a pooled
	// instance only serves configs sharing its shard count.
	Shards int
	// WeightsKey fingerprints Config.ShardWeights (FNV-1a over the
	// float bits; 0 when unweighted): weighted partitions rewire the
	// fabric, so a pooled instance only serves configs with the same
	// weights. The lookahead mode is deliberately absent — it is a
	// per-run policy on unchanged wiring.
	WeightsKey uint64
}

// Shape returns the config's structural pool key, after applying
// defaults so that configs spelling the same structure differently
// (explicit vs defaulted fields) share a key. It fails on configs that
// would not run at all.
func (c Config) Shape() (Shape, error) {
	if err := c.applyDefaults(); err != nil { // c is a copy
		return Shape{}, err
	}
	return c.shape(), nil
}

// shape assumes defaults have been applied.
func (c *Config) shape() Shape {
	return Shape{
		Topology:      c.Topology,
		K:             c.K,
		HostsPerEdge:  c.HostsPerEdge,
		LinkRateBps:   c.LinkRateBps,
		LinkDelay:     c.LinkDelay,
		QueueLimit:    c.QueueLimit,
		BottleneckBps: c.BottleneckBps,
		ECNThreshold:  c.ECNThreshold,
		Shards:        c.Shards,
		WeightsKey:    weightsKey(c.ShardWeights),
	}
}

// weightsKey hashes a partition-weight vector into Shape's comparable
// fingerprint: FNV-1a over the IEEE-754 bits, 0 reserved for "no
// weights" (a non-empty vector hashing to 0 is nudged to 1).
func weightsKey(w []float64) uint64 {
	if len(w) == 0 {
		return 0
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range w {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= prime
			b >>= 8
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// routingConfig translates the public routing section into the control
// plane's own config (shared by validation and Install-time wiring).
func (c *Config) routingConfig() routing.Config {
	return routing.Config{
		Convergence:   routing.Convergence(c.Routing.Convergence),
		PerHopDelay:   c.Routing.PerHopDelay,
		HoldDown:      c.Routing.HoldDown,
		FlapThreshold: c.Routing.FlapThreshold,
		Workers:       c.Shards,
	}
}

// validateWorkload checks the fields only Run needs.
func (c *Config) validateWorkload() error {
	if c.ShortFlows <= 0 {
		return fmt.Errorf("mmptcp: ShortFlows must be positive, got %d", c.ShortFlows)
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("mmptcp: ArrivalRate must be positive, got %v", c.ArrivalRate)
	}
	if c.LongFraction >= 1 {
		return fmt.Errorf("mmptcp: LongFraction %v must be below 1", c.LongFraction)
	}
	if c.LocalFraction < 0 || c.LocalFraction > 1 {
		return fmt.Errorf("mmptcp: LocalFraction %v out of [0,1]", c.LocalFraction)
	}
	return nil
}

// buildNetwork constructs the configured topology.
func (c *Config) buildNetwork(eng *sim.Engine) (*topology.Network, error) {
	link := topology.LinkConfig{
		RateBps:      c.LinkRateBps,
		Delay:        c.LinkDelay,
		QueueLimit:   c.QueueLimit,
		ECNThreshold: c.ECNThreshold,
	}
	switch c.Topology {
	case TopoFatTree:
		ft := topology.NewFatTree(eng, topology.FatTreeConfig{
			K: c.K, HostsPerEdge: c.HostsPerEdge, Link: link, Seed: c.Seed,
		})
		return &ft.Network, nil
	case TopoMultiHomed:
		m := topology.NewMultiHomed(eng, topology.MultiHomedConfig{
			K: c.K, HostsPerEdge: c.HostsPerEdge, Link: link, Seed: c.Seed,
		})
		return &m.Network, nil
	case TopoDumbbell:
		d := topology.NewDumbbell(eng, topology.DumbbellConfig{
			HostsPerSide:  c.K * c.HostsPerEdge / 2,
			Link:          link,
			BottleneckBps: c.BottleneckBps,
		})
		return &d.Network, nil
	case TopoVL2:
		v := topology.NewVL2(eng, topology.VL2Config{
			DA:          c.K,
			DI:          c.K,
			HostsPerToR: c.HostsPerEdge,
			Link:        link,
			Seed:        c.Seed,
		})
		return &v.Network, nil
	default:
		return nil, fmt.Errorf("mmptcp: unknown topology %q", c.Topology)
	}
}
