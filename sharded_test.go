package mmptcp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// shardedSuite is the PR-3 fault suite (cable cuts with global repair,
// lossy degraded cables, VL2 cable cuts, a core-switch crash, streaming
// and snapshot metrics modes) with every config set to the given shard
// count. It mirrors TestPooledSweepByteIdentical's mkConfigs so the
// parallel engine is exercised against exactly the dynamics the pooling
// contract already locks in.
func shardedSuite(shards int) []Config {
	var configs []Config
	for _, proto := range []Protocol{ProtoTCP, ProtoMMPTCP} {
		fail := faultedConfig(proto, 40)
		fail.Routing.Mode = RoutingGlobal
		configs = append(configs, fail)
		deg := tiny(proto, 40)
		deg.Faults = FaultsConfig{
			Events: DegradeCables(LayerEdge, 2, 120*Millisecond, 400*Millisecond,
				0.5, 50*Microsecond, 0.02),
		}
		configs = append(configs, deg)
		vl2 := tiny(proto, 40)
		vl2.Topology = TopoVL2
		vl2.K = 4
		vl2.HostsPerEdge = 2
		vl2.Faults = FaultsConfig{
			Events:          FailCables(LayerAgg, 2, 150*Millisecond, 600*Millisecond),
			ReconvergeDelay: 50 * Millisecond,
		}
		configs = append(configs, vl2)
	}
	crash := faultedConfig(ProtoMMPTCP, 40)
	crash.Faults = FaultsConfig{
		Events:          FailSwitches([]int{16}, 200*Millisecond, 800*Millisecond),
		ReconvergeDelay: 50 * Millisecond,
	}
	configs = append(configs, crash)
	strm := faultedConfig(ProtoMMPTCP, 40)
	strm.Metrics.Mode = MetricsStreaming
	configs = append(configs, strm)
	snap := faultedConfig(ProtoTCP, 40)
	snap.Metrics.SnapshotInterval = 100 * Millisecond
	configs = append(configs, snap)
	for i := range configs {
		configs[i].Seed = uint64(i + 1)
		configs[i].Shards = shards
		// Cap the horizon: under faults a flow can sit in RTO backoff
		// for a long time, and the default 300 s horizon would make a
		// single unlucky run dominate the suite's wall time.
		configs[i].MaxSimTime = 2 * Second
	}
	return configs
}

// shardNorm clears the one field that legitimately differs between a
// sequential and a sharded run of the same experiment — Config.Shards —
// so the rest of the Results can be compared byte-for-byte.
func shardNorm(r *Results) *Results {
	c := *r
	c.Config.Shards = 0
	return &c
}

// TestShardedRunByteIdentical is the parallel engine's correctness
// contract against the sequential oracle:
//
//   - 1-shard runs are byte-identical to sequential runs (modulo the
//     Config.Shards field itself), fresh and pooled — the fabric in
//     direct mode is provably the same engine.
//   - N-shard runs (N = 2, 4) are deterministic: repeat runs, pooled
//     runs and parallel-worker runs all agree byte-for-byte for a fixed
//     (Seed, Shards). Shard count does change event interleaving — the
//     windowed barrier realises cross-shard deliveries in (time, source
//     shard, send order) and the final Stop lands on a window edge — so
//     N-shard Results are compared to the oracle on the config-driven
//     invariants (spawn and fault-event counts), not byte-for-byte; the
//     shard package documents the divergence.
func TestShardedRunByteIdentical(t *testing.T) {
	seq, err := RunSweep(shardedSuite(0), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunSweep(shardedSuite(1), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	onePooled, err := RunSweep(shardedSuite(1), SweepOptions{Workers: 1, Pool: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], shardNorm(one[i])) {
			t.Errorf("config %d: 1-shard run diverged from sequential oracle", i)
		}
		if !reflect.DeepEqual(seq[i], shardNorm(onePooled[i])) {
			t.Errorf("config %d: pooled 1-shard run diverged from sequential oracle", i)
		}
	}
	for _, n := range []int{2, 4} {
		a, err := RunSweep(shardedSuite(n), SweepOptions{Workers: 1})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		b, err := RunSweep(shardedSuite(n), SweepOptions{Workers: 1})
		if err != nil {
			t.Fatalf("shards=%d repeat: %v", n, err)
		}
		p, err := RunSweep(shardedSuite(n), SweepOptions{Workers: 4, Pool: true})
		if err != nil {
			t.Fatalf("shards=%d pooled: %v", n, err)
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Errorf("config %d: shards=%d repeat run diverged (nondeterministic)", i, n)
			}
			if !reflect.DeepEqual(a[i], p[i]) {
				t.Errorf("config %d: shards=%d pooled parallel run diverged", i, n)
			}
			if a[i].Spawned != seq[i].Spawned {
				t.Errorf("config %d: shards=%d spawned %d flows, oracle %d",
					i, n, a[i].Spawned, seq[i].Spawned)
			}
			if a[i].FaultEvents != seq[i].FaultEvents {
				t.Errorf("config %d: shards=%d resolved %d fault events, oracle %d",
					i, n, a[i].FaultEvents, seq[i].FaultEvents)
			}
		}
	}
}

// TestShardedSweepDeterminism locks in the two parallelism axes
// composing: a sweep of 2-shard configs returns byte-identical Results
// serial and with 4 effective workers (Workers budget 8 / 2 slots per
// sharded task).
func TestShardedSweepDeterminism(t *testing.T) {
	serial, err := RunSweep(shardedSuite(2), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweep(shardedSuite(2), SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("config %d: parallel sharded sweep diverged from serial", i)
		}
	}
}

// TestShardsValidation covers the -shards misuse surface: negative
// counts, more shards than switches, and the one fault knob whose RNG
// stream is inherently cross-shard (layer-wide random loss).
func TestShardsValidation(t *testing.T) {
	neg := tiny(ProtoTCP, 10)
	neg.Shards = -1
	if _, err := Run(neg); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Errorf("negative Shards: err = %v, want mention of Shards", err)
	}

	many := tiny(ProtoTCP, 10)
	many.Shards = 21 // a K=4 fat-tree has 20 switches
	if _, err := Run(many); err == nil {
		t.Error("Shards > switch count accepted")
	}

	loss := tiny(ProtoTCP, 10)
	loss.Shards = 2
	loss.Faults = FaultsConfig{Events: []FaultEvent{{
		At: Millisecond, Kind: FaultDegrade, Layer: LayerEdge, Index: -1, LossRate: 0.01,
	}}}
	if _, err := Run(loss); err == nil || !strings.Contains(err.Error(), "DegradeCables") {
		t.Errorf("layer-wide loss with Shards=2: err = %v, want DegradeCables hint", err)
	}
}

// TestShardedTracedRun: a traced sharded run records into per-shard
// recorders that merge time-ordered at export, with nothing dropped —
// every spawned flow's start event survives the merge — and both export
// formats stay schema-identical to a sequential trace (valid JSONL per
// line; Chrome trace JSON with the flows/fabric/control process metas).
func TestShardedTracedRun(t *testing.T) {
	cfg := traceFaultSuite()[0]
	cfg.MaxSimTime = 2 * Second
	cfg.Trace.Mode = TraceFull
	cfg.Trace.MaxEvents = 4 << 20
	cfg.Shards = 2
	res, rec, err := RunTraced(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Len() == 0 {
		t.Fatal("sharded traced run recorded nothing")
	}
	if rec.Lost() != 0 {
		t.Fatalf("full trace lost %d events", rec.Lost())
	}
	kinds := make(map[trace.Kind]int)
	last := SimTime(-1)
	for _, e := range rec.Events() {
		kinds[e.Kind]++
		if e.At < last {
			t.Fatalf("merged trace out of order: %v after %v", e.At, last)
		}
		last = e.At
	}
	if got, want := kinds[trace.KindFlowStart], res.Spawned+len(res.LongFlows); got != want {
		t.Errorf("%d flow-start events, want %d — the shard merge dropped records", got, want)
	}
	for _, want := range []trace.Kind{
		trace.KindSegmentSend, trace.KindAck, trace.KindEnqueue,
		trace.KindFaultInject, trace.KindLinkDown,
	} {
		if kinds[want] == 0 {
			t.Errorf("sharded traced run recorded no %v events", want)
		}
	}

	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&jsonl)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", lines+1, err)
		}
		lines++
	}
	if lines != rec.Len() {
		t.Errorf("JSONL export wrote %d lines for %d events", lines, rec.Len())
	}

	var chrome bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &envelope); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	metas := 0
	for _, e := range envelope.TraceEvents {
		if e["name"] == "process_name" {
			metas++
		}
	}
	if metas != 3 {
		t.Errorf("Chrome trace has %d process_name metas, want 3 (flows/fabric/control)", metas)
	}
}

// TestShardedShapeMismatch: the shard count is structural — a pooled
// instance built for one count must refuse a config with another.
func TestShardedShapeMismatch(t *testing.T) {
	cfg := tiny(ProtoTCP, 10)
	cfg.Shards = 2
	inst, err := NewRunInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	if err := inst.Reset(cfg); err == nil {
		t.Error("Reset accepted a config with a different shard count")
	}
}
